#!/usr/bin/env bash
# serve_smoke.sh — end-to-end daemon smoke test.
#
# Starts ffetd, fires the same sweep from two concurrent clients, and
# asserts:
#   1. byte-identity: both daemon responses equal the offline -oneshot
#      reference (which shares only the config mapping and Summary
#      encoding with the daemon path);
#   2. coalescing: the two clients built each staged checkpoint exactly
#      once between them (misses == 2 on /debug/stats);
#   3. graceful shutdown: SIGTERM drains and the process exits 0.
#
# Usage: scripts/serve_smoke.sh [port]   (default 18077)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${1:-18077}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
FFETD_PID=""
cleanup() {
  [[ -n "${FFETD_PID}" ]] && kill -9 "${FFETD_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

echo "== build ffetd =="
go build -o "${WORK}/ffetd" ./cmd/ffetd

cat > "${WORK}/req.json" <<'EOF'
{"sweep":{"base":{"front":4,"back":4,"target_ghz":1.4,"util":0.72},"axis":"back_pins","values":[0.2,0.5,0.8]}}
EOF

echo "== offline reference (-oneshot) =="
"${WORK}/ffetd" -oneshot "${WORK}/req.json" -scale quick > "${WORK}/offline.json"

echo "== start daemon on ${ADDR} =="
"${WORK}/ffetd" -addr "${ADDR}" -scale quick -drain 20s &
FFETD_PID=$!
for i in $(seq 1 100); do
  if curl -sf "http://${ADDR}/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "${FFETD_PID}" 2>/dev/null; then
    echo "ffetd died during startup" >&2; exit 1
  fi
  sleep 0.1
  [[ "$i" == 100 ]] && { echo "ffetd never became healthy" >&2; exit 1; }
done

echo "== two concurrent clients, same sweep =="
BODY="$(jq -c .sweep "${WORK}/req.json")"
curl -sf -X POST -d "${BODY}" "http://${ADDR}/v1/sweep" > "${WORK}/client1.json" &
C1=$!
curl -sf -X POST -d "${BODY}" "http://${ADDR}/v1/sweep" > "${WORK}/client2.json" &
C2=$!
wait "${C1}" "${C2}"

for c in client1 client2; do
  if ! cmp -s "${WORK}/${c}.json" "${WORK}/offline.json"; then
    echo "${c} response differs from offline reference:" >&2
    diff "${WORK}/offline.json" "${WORK}/${c}.json" >&2 || true
    exit 1
  fi
done
echo "both clients byte-identical to the offline path"

echo "== checkpoint sharing =="
STATS="$(curl -sf "http://${ADDR}/debug/stats")"
echo "${STATS}"
MISSES="$(echo "${STATS}" | jq .checkpoint.misses)"
SHARED="$(echo "${STATS}" | jq '.checkpoint.hits + .checkpoint.coalesced')"
if [[ "${MISSES}" != 2 ]]; then
  echo "expected exactly 2 checkpoint builds (one synth root, one prefix), got ${MISSES}" >&2
  exit 1
fi
if [[ "${SHARED}" -lt 1 ]]; then
  echo "no checkpoint reuse between the two clients (hits+coalesced=${SHARED})" >&2
  exit 1
fi
echo "2 builds, ${SHARED} shared checkpoint accesses across 2 clients x 3 points"

echo "== warm frequency-axis sweep takes the diff-chain path =="
cat > "${WORK}/freq.json" <<'EOF'
{"sweep":{"base":{"front":4,"back":4,"target_ghz":1.4,"util":0.72,"back_pins":0.5},"axis":"target_ghz","values":[1.4,1.403,1.406]}}
EOF
"${WORK}/ffetd" -oneshot "${WORK}/freq.json" -scale quick > "${WORK}/freq-offline.json"
FREQBODY="$(jq -c .sweep "${WORK}/freq.json")"
curl -sf -X POST -d "${FREQBODY}" "http://${ADDR}/v1/sweep" > "${WORK}/freq-daemon.json"
if ! cmp -s "${WORK}/freq-daemon.json" "${WORK}/freq-offline.json"; then
  echo "diff-chained sweep differs from offline reference:" >&2
  diff "${WORK}/freq-offline.json" "${WORK}/freq-daemon.json" >&2 || true
  exit 1
fi
STATS="$(curl -sf "http://${ADDR}/debug/stats")"
DIFF_FORKS="$(echo "${STATS}" | jq .sweep.diff_forks)"
if [[ "${DIFF_FORKS}" -lt 1 ]]; then
  echo "warm target_ghz sweep never took the synth-diff path: $(echo "${STATS}" | jq .sweep)" >&2
  exit 1
fi
echo "diff-chained sweep byte-identical, sweep counters: $(echo "${STATS}" | jq -c .sweep)"

echo "== graceful shutdown =="
kill -TERM "${FFETD_PID}"
wait "${FFETD_PID}"
FFETD_PID=""
echo "serve smoke: OK"
