#!/usr/bin/env bash
# bench.sh — verification + performance snapshot for the flow.
#
# Runs go vet, the tier-1 test suite, and the Flow benchmarks with
# memory stats, then writes a BENCH_<date>.json snapshot next to the
# repo root so future PRs can track the performance trajectory.
#
# Usage: scripts/bench.sh [--compare OLD.json] [benchtime]   (default 5x)
#
# With --compare OLD.json, after writing the new snapshot the per-
# benchmark ns/op and allocs/op deltas against the old snapshot are
# printed (negative = new run is faster / allocates less). Custom
# benchmark metrics (b.ReportMetric units like samples/sec) are captured
# as sanitized keys (samples_sec) and compared when both snapshots have
# them (positive = new run has higher throughput).
set -euo pipefail
cd "$(dirname "$0")/.."

COMPARE=""
if [[ "${1:-}" == "--compare" ]]; then
  COMPARE="${2:?--compare requires a snapshot path}"
  [[ -f "${COMPARE}" ]] || { echo "no such snapshot: ${COMPARE}" >&2; exit 1; }
  shift 2
fi

BENCHTIME="${1:-5x}"

echo "== go vet =="
go vet ./...

echo "== tier-1: go build && go test =="
go build ./...
go test ./...

echo "== benchmarks (Flow|STAReuse|BuildDEF|BuildTree|SweepShared|SweepIncremental|SweepFreq|VariationMC|ServeSweep, -benchtime=${BENCHTIME}) =="
# Fail fast: a failing bench run (build error, panicking benchmark) must
# exit non-zero without leaving a partial BENCH_<date>.json behind, so
# the snapshot is written to a temp file and only moved into place after
# the run succeeded and at least one benchmark row parsed.
if ! BENCH_OUT="$(go test -run=NONE -bench='Flow|STAReuse|BuildDEF|BuildTree|SweepShared|SweepIncremental|SweepFreq|VariationMC|ServeSweep' -benchmem -benchtime="${BENCHTIME}" . ./internal/core ./internal/route ./internal/serve 2>&1)"; then
  echo "${BENCH_OUT}"
  echo "bench run failed; no snapshot written" >&2
  exit 1
fi
echo "${BENCH_OUT}"

DATE="$(date +%Y%m%d)"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
SNAPSHOT="BENCH_${DATE}.json"
TMP_SNAPSHOT="$(mktemp "${SNAPSHOT}.XXXXXX.tmp")"
trap 'rm -f "${TMP_SNAPSHOT}"' EXIT

# Parse benchmark rows into JSON. Benchmarks that print tables interleave
# their output between the name and the timing fields, so remember the
# last seen Benchmark name and attach it to the next "ns/op" line.
echo "${BENCH_OUT}" | awk -v date="${DATE}" -v commit="${COMMIT}" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchmarks\": [", date, commit; n = 0 }
/^Benchmark/ { name = $1; sub(/-[0-9]+$/, "", name) }
/ ns\/op/ {
    if (name == "") next
    ns = ""; bytes = ""; allocs = ""; extras = ""
    for (i = 1; i < NF; i++) {
        unit = $(i+1)
        if (unit == "ns/op")          ns = $i
        else if (unit == "B/op")      bytes = $i
        else if (unit == "allocs/op") allocs = $i
        else if (unit ~ /^[A-Za-z][A-Za-z0-9._]*\/[A-Za-z]/ && $i ~ /^[0-9.]+$/) {
            # Custom b.ReportMetric unit (e.g. samples/sec): emit it under
            # a sanitized key so snapshots stay plain JSON.
            gsub(/[^A-Za-z0-9]/, "_", unit)
            extras = extras sprintf(", \"%s\": %s", unit, $i)
        }
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"ns_op\": %s", name, ns
    if (bytes != "")  printf ", \"b_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "%s}", extras
    name = ""
}
END { printf "\n  ]\n}\n" }
' > "${TMP_SNAPSHOT}"

# Refuse to publish a snapshot that parsed no benchmark rows — that means
# the awk scrape broke or the bench filter matched nothing.
if ! grep -q '"ns_op"' "${TMP_SNAPSHOT}"; then
  echo "no benchmark rows parsed; no snapshot written" >&2
  exit 1
fi
mv "${TMP_SNAPSHOT}" "${SNAPSHOT}"
trap - EXIT

echo "== snapshot: ${SNAPSHOT} =="
cat "${SNAPSHOT}"

# Snapshot rows are one benchmark per line, so the comparison scrapes
# them with awk instead of requiring a JSON tool in the image.
if [[ -n "${COMPARE}" ]]; then
  echo "== compare: ${COMPARE} -> ${SNAPSHOT} =="
  awk '
  function field(line, key,    v) {
      if (match(line, "\"" key "\": [0-9.]+")) {
          v = substr(line, RSTART, RLENGTH)
          sub(".*: ", "", v)
          return v
      }
      return ""
  }
  /"name":/ {
      line = $0
      match(line, /"name": "[^"]+"/)
      name = substr(line, RSTART + 9, RLENGTH - 10)
      if (NR == FNR) {
          old_ns[name] = field(line, "ns_op")
          old_al[name] = field(line, "allocs_op")
          old_sp[name] = field(line, "samples_sec")
          next
      }
      ns = field(line, "ns_op"); al = field(line, "allocs_op")
      sp = field(line, "samples_sec")
      dns = "n/a"; dal = "n/a"
      if (name in old_ns && old_ns[name] > 0)
          dns = sprintf("%+.1f%%", 100 * (ns - old_ns[name]) / old_ns[name])
      if (name in old_al && old_al[name] > 0 && al != "")
          dal = sprintf("%+.1f%%", 100 * (al - old_al[name]) / old_al[name])
      printf "%-55s ns/op %14s -> %14s (%s)   allocs/op %10s -> %10s (%s)",
          name, old_ns[name], ns, dns, old_al[name], al, dal
      if (sp != "" && name in old_sp && old_sp[name] > 0)
          printf "   samples/sec %s -> %s (%+.1f%%)",
              old_sp[name], sp, 100 * (sp - old_sp[name]) / old_sp[name]
      printf "\n"
  }
  ' "${COMPARE}" "${SNAPSHOT}"
fi
