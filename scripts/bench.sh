#!/usr/bin/env bash
# bench.sh — verification + performance snapshot for the flow.
#
# Runs go vet, the tier-1 test suite, and the Flow benchmarks with
# memory stats, then writes a BENCH_<date>.json snapshot next to the
# repo root so future PRs can track the performance trajectory.
#
# Usage: scripts/bench.sh [benchtime]   (default 5x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"

echo "== go vet =="
go vet ./...

echo "== tier-1: go build && go test =="
go build ./...
go test ./...

echo "== benchmarks (Flow|STAReuse|BuildDEF|BuildTree|SweepShared|SweepIncremental, -benchtime=${BENCHTIME}) =="
BENCH_OUT="$(go test -run=NONE -bench='Flow|STAReuse|BuildDEF|BuildTree|SweepShared|SweepIncremental' -benchmem -benchtime="${BENCHTIME}" . ./internal/core ./internal/route 2>&1)"
echo "${BENCH_OUT}"

DATE="$(date +%Y%m%d)"
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
SNAPSHOT="BENCH_${DATE}.json"

# Parse benchmark rows into JSON. Benchmarks that print tables interleave
# their output between the name and the timing fields, so remember the
# last seen Benchmark name and attach it to the next "ns/op" line.
echo "${BENCH_OUT}" | awk -v date="${DATE}" -v commit="${COMMIT}" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"benchmarks\": [", date, commit; n = 0 }
/^Benchmark/ { name = $1; sub(/-[0-9]+$/, "", name) }
/ ns\/op/ {
    if (name == "") next
    ns = ""; bytes = ""; allocs = ""
    for (i = 1; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"ns_op\": %s", name, ns
    if (bytes != "")  printf ", \"b_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "}"
    name = ""
}
END { printf "\n  ]\n}\n" }
' > "${SNAPSHOT}"

echo "== snapshot: ${SNAPSHOT} =="
cat "${SNAPSHOT}"
