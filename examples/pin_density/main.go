// pin_density explores the input-pin density design space of the paper's
// Fig. 11 / Table III: sweeping the backside pin ratio and layer split at
// fixed utilization, reporting frequency and energy per cycle against the
// single-sided FM12 baseline.
package main

import (
	"fmt"
	"log"

	ffet "repro"
)

func main() {
	lib := ffet.NewFFETLibrary()
	nl, _, err := ffet.GenerateRV32(lib, ffet.RV32Config{Name: "rv32", Registers: 16})
	if err != nil {
		log.Fatal(err)
	}
	util := 0.76
	base, err := ffet.RunFlow(nl, ffet.NewFlowConfig(ffet.Pattern{Front: 12}, 1.5, util))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline FFET FM12: %.3f GHz, %.1f uW\n\n", base.AchievedFreqGHz, base.PowerUW)
	fmt.Println("pin split    pattern    freq diff   E/cycle diff  valid")

	type doe struct {
		bp  float64
		pat ffet.Pattern
	}
	does := []doe{
		{0.04, ffet.Pattern{Front: 10, Back: 2}},
		{0.16, ffet.Pattern{Front: 9, Back: 3}},
		{0.30, ffet.Pattern{Front: 8, Back: 4}},
		{0.40, ffet.Pattern{Front: 7, Back: 5}},
		{0.50, ffet.Pattern{Front: 6, Back: 6}},
		{0.50, ffet.Pattern{Front: 12, Back: 12}},
	}
	baseE := base.PowerUW / base.AchievedFreqGHz
	for _, d := range does {
		cfg := ffet.NewFlowConfig(d.pat, 1.5, util)
		cfg.BackPinFraction = d.bp
		r, err := ffet.RunFlow(nl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e := r.PowerUW / r.AchievedFreqGHz
		fmt.Printf("FP%.2gBP%.2g  %-9s  %+8.1f%%  %+10.1f%%   %v\n",
			1-d.bp, d.bp, d.pat,
			100*(r.AchievedFreqGHz/base.AchievedFreqGHz-1),
			100*(e/baseE-1), r.Valid)
	}
}
