// riscv_ppa reproduces the block-level FFET-vs-CFET comparison of the
// paper's Figs. 8-10 on the full RV32 core: max utilization, core area,
// and power/frequency for single-sided FFET against the CFET baseline.
package main

import (
	"fmt"
	"log"

	ffet "repro"
)

func main() {
	ffetLib, cfetLib := ffet.NewFFETLibrary(), ffet.NewCFETLibrary()
	nlF, _, err := ffet.GenerateRV32(ffetLib, ffet.RV32Config{Name: "rv32", Registers: 32})
	if err != nil {
		log.Fatal(err)
	}
	nlC, err := nlF.Remap(cfetLib)
	if err != nil {
		log.Fatal(err)
	}

	util := 0.76
	fCfg := ffet.NewFlowConfig(ffet.Pattern{Front: 12}, 1.5, util)
	rF, err := ffet.RunFlow(nlF, fCfg)
	if err != nil {
		log.Fatal(err)
	}
	cCfg := ffet.NewFlowConfig(ffet.Pattern{Front: 12}, 1.5, util)
	rC, err := ffet.RunFlow(nlC, cCfg)
	if err != nil {
		log.Fatal(err)
	}
	dCfg := ffet.NewFlowConfig(ffet.Pattern{Front: 12, Back: 12}, 1.5, util)
	dCfg.BackPinFraction = 0.5
	rD, err := ffet.RunFlow(nlF, dCfg)
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, r *ffet.FlowResult) {
		fmt.Printf("%-18s area %6.1f um2  freq %5.3f GHz  power %6.1f uW  E/cyc %5.2f pJ  valid=%v\n",
			name, r.CoreAreaUm2, r.AchievedFreqGHz, r.PowerUW,
			r.PowerUW/r.AchievedFreqGHz/1000, r.Valid)
	}
	fmt.Printf("RV32 core at %.0f%% utilization, 1.5 GHz target\n", util*100)
	row("CFET FM12", rC)
	row("FFET FM12", rF)
	row("FFET FM12BM12", rD)
	fmt.Printf("\nFFET FM12 vs CFET: freq %+.1f%%, energy/cycle %+.1f%%, area %+.1f%%\n",
		100*(rF.AchievedFreqGHz/rC.AchievedFreqGHz-1),
		100*((rF.PowerUW/rF.AchievedFreqGHz)/(rC.PowerUW/rC.AchievedFreqGHz)-1),
		100*(rF.CoreAreaUm2/rC.CoreAreaUm2-1))
	fmt.Printf("dual-sided vs single-sided FFET: freq %+.1f%%\n",
		100*(rD.AchievedFreqGHz/rF.AchievedFreqGHz-1))
}
