// cost_friendly reproduces the BEOL cost study of the paper's Figs. 12-13:
// shrinking the number of routing layers on both sides of an FP0.5BP0.5
// FFET design and tracking routability and power efficiency.
package main

import (
	"fmt"
	"log"

	ffet "repro"
)

func main() {
	lib := ffet.NewFFETLibrary()
	nl, _, err := ffet.GenerateRV32(lib, ffet.RV32Config{Name: "rv32", Registers: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("layers/side   valid@76%   freq GHz   power uW   GHz/W")
	var eff12 float64
	for _, n := range []int{12, 10, 8, 6, 5, 4, 3, 2} {
		cfg := ffet.NewFlowConfig(ffet.Pattern{Front: n, Back: n}, 1.5, 0.76)
		cfg.BackPinFraction = 0.5
		r, err := ffet.RunFlow(nl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if n == 12 {
			eff12 = r.EffGHzPerW
		}
		fmt.Printf("%6d        %-9v   %.3f      %6.1f    %5.1f\n",
			n, r.Valid, r.AchievedFreqGHz, r.PowerUW, r.EffGHzPerW)
	}
	if eff12 > 0 {
		fmt.Println("\npaper: efficiency degrades only 0.68% from 12 to 5 layers/side")
	}
}
