// gatesim runs a program on the generated gate-level RISC-V core and
// verifies it cycle-by-cycle against the instruction-set simulator — the
// functional sign-off for the benchmark netlist used in every experiment.
package main

import (
	"fmt"
	"log"

	ffet "repro"
	"repro/internal/riscv"
)

func main() {
	lib := ffet.NewFFETLibrary()
	nl, info, err := ffet.GenerateRV32(lib, ffet.RV32Config{Name: "cosim", Registers: 8})
	if err != nil {
		log.Fatal(err)
	}
	imem, dmem := riscv.NewMemory(), riscv.NewMemory()
	// Sum the numbers 1..10 into x2, store to memory, and load it back.
	prog := []uint32{
		riscv.ADDI(1, 0, 10),
		riscv.ADDI(2, 0, 0),
		riscv.ADD(2, 2, 1), // loop: acc += n
		riscv.ADDI(1, 1, -1),
		riscv.BNE(1, 0, -8),
		riscv.LUI(3, 0x10),
		riscv.SW(2, 3, 0),
		riscv.LW(4, 3, 0),
	}
	imem.LoadProgram(0, prog)
	h, err := riscv.NewHarness(nl, info, imem, dmem)
	if err != nil {
		log.Fatal(err)
	}
	iss := riscv.NewISS(imem, dmem.Clone(), 8)
	h.Reset()
	cycles := 2 + 3*10 + 3
	for i := 0; i < cycles; i++ {
		h.StepCycle()
		if err := iss.Step(); err != nil {
			log.Fatal(err)
		}
		if h.PC() != iss.PC {
			log.Fatalf("cycle %d: PC mismatch gate=%#x iss=%#x", i, h.PC(), iss.PC)
		}
	}
	fmt.Printf("ran %d cycles on %d gates\n", cycles, len(nl.Instances))
	fmt.Printf("sum(1..10) = %d (gate) vs %d (ISS)\n", h.Reg(2), iss.Regs[2])
	fmt.Printf("memory round-trip x4 = %d\n", h.Reg(4))
	if h.Reg(2) == 55 && h.Reg(4) == 55 && h.DMem.Equal(iss.DMem) {
		fmt.Println("gate-level core matches the ISS — netlist functionally verified")
	} else {
		log.Fatal("mismatch between gate-level core and ISS")
	}
}
