// Quickstart: build the FFET library, generate a small RISC-V core, and
// push it through the full dual-sided physical implementation + PPA flow.
package main

import (
	"fmt"
	"log"

	ffet "repro"
)

func main() {
	lib := ffet.NewFFETLibrary()
	fmt.Printf("library %s: %d cells, INVD1 area %.4f um2\n",
		lib.Name, len(lib.Cells()), lib.MustCell("INVD1").AreaUm2(lib.Stack))

	// A reduced 8-register core keeps the quickstart fast.
	nl, _, err := ffet.GenerateRV32(lib, ffet.RV32Config{Name: "demo", Registers: 8})
	if err != nil {
		log.Fatal(err)
	}
	st := nl.Stats()
	fmt.Printf("core: %d cells, %d flops, %.1f um2\n", st.Instances, st.Flops, st.AreaUm2)

	cfg := ffet.NewFlowConfig(ffet.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
	cfg.BackPinFraction = 0.5 // FP0.5BP0.5 input pin redistribution
	res, err := ffet.RunFlow(nl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P&R %s: valid=%v core=%.1f um2\n", cfg.Pattern, res.Valid, res.CoreAreaUm2)
	fmt.Printf("wire front=%.0f um back=%.0f um, DRVs=%d\n",
		res.WirelenFrontUm, res.WirelenBackUm, res.DRVs())
	fmt.Printf("PPA: %.3f GHz, %.1f uW, %.0f GHz/W\n",
		res.AchievedFreqGHz, res.PowerUW, res.EffGHzPerW)
}
