// Command ffetexp regenerates the paper's tables and figures: text to
// stdout and CSV files under -out. -scale full reproduces the paper's
// sweep resolution on the full RV32 core; -scale quick runs the reduced
// core on coarser sweeps.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "quick or full")
	outDir := flag.String("out", "", "directory for CSV output (optional)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. fig09,table3)")
	flag.Parse()

	scale := exp.Quick
	if *scaleFlag == "full" {
		scale = exp.Full
	}
	suite, err := exp.NewSuite(scale)
	if err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM cancel in-flight sweeps: running experiments drain
	// within one stage per in-flight point, their partial tables still
	// print (cancelled points as error cells), and the exit is non-zero.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	suite.Ctx = ctx
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	// One failed sweep point doesn't kill the report: its table prints
	// with error cells, the failure goes to stderr, and later experiments
	// still run. Only a cancellation stops the whole job list.
	failed := false
	for _, id := range exp.ExperimentIDs() {
		if !sel(id) {
			continue
		}
		run, _ := suite.Experiment(id)
		t0 := time.Now()
		t, err := run()
		if t != nil {
			t.Print(os.Stdout)
			fmt.Printf("  (%s in %s)\n\n", id, time.Since(t0).Round(time.Millisecond))
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					log.Fatal(err)
				}
				path := filepath.Join(*outDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			if cliutil.IsCancel(err) || ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "interrupted; stopping")
				break
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
