// Command ffetflow runs one full physical implementation + PPA flow on the
// generated RISC-V core through the staged pipeline, printing per-stage
// progress and the result summary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cell"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/riscv"
	"repro/internal/tech"
)

func main() {
	arch := flag.String("arch", "ffet", "ffet or cfet")
	front := flag.Int("fm", 12, "frontside routing layers")
	back := flag.Int("bm", 0, "backside routing layers")
	target := flag.Float64("target", 1.5, "synthesis target frequency (GHz)")
	util := flag.Float64("util", 0.76, "placement utilization")
	backPins := flag.Float64("backpins", 0, "backside input pin density ratio")
	regs := flag.Int("regs", 32, "architectural registers (8/16/32)")
	quiet := flag.Bool("quiet", false, "suppress per-stage progress lines")
	flag.Parse()

	st := tech.NewFFET()
	if *arch == "cfet" {
		st = tech.NewCFET()
	}
	lib := cell.NewLibrary(st)
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "rv32", Registers: *regs})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: *front, Back: *back}, *target, *util)
	cfg.BackPinFraction = *backPins
	t0 := time.Now()
	f, err := core.NewFlow(nl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// SIGINT/SIGTERM cancel the in-flight run: the pipeline stops within
	// one stage boundary (or mid-stage inside the long loops), partial
	// stage timings are still reported, and the exit is non-zero with the
	// classified error.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	// Drive the pipeline one stage at a time so progress (and the cost of
	// each stage) is visible as it happens.
	for s := core.StageSynth; int(s) < core.NumStages; s++ {
		if err := f.RunToCtx(ctx, s); err != nil {
			cliutil.PrintPartialStageTimes(os.Stderr, f.Result())
			if cliutil.IsCancel(err) {
				fmt.Fprintf(os.Stderr, "interrupted after %s\n", time.Since(t0).Round(time.Millisecond))
			}
			fmt.Fprintf(os.Stderr, "flow failed: %v\n", err)
			os.Exit(1)
		}
		res := f.Result()
		if !*quiet {
			fmt.Printf("  [%2d/%d] %-9s %8s", int(s)+1, core.NumStages, s,
				res.StageTimes[s].Round(time.Microsecond))
			if f.Halted() {
				fmt.Printf("  (halted: %s)", res.Reason)
			}
			fmt.Println()
		}
		if f.Halted() {
			break
		}
	}
	res := f.Result()
	fmt.Printf("arch=%s pattern=%s target=%.2fGHz util=%.0f%% backpins=%.0f%%\n",
		st.Arch, cfg.Pattern, *target, *util*100, *backPins*100)
	fmt.Printf("valid=%v reason=%q\n", res.Valid, res.Reason)
	fmt.Printf("core=%.1fum2 (%.2fx%.2fum) cells=%.1fum2 realUtil=%.1f%%\n",
		res.CoreAreaUm2, float64(res.CoreW)/1000, float64(res.CoreH)/1000,
		res.CellAreaUm2, res.RealUtilization*100)
	fmt.Printf("HPWL=%.0fum WL front=%.0fum back=%.0fum vias=%d DRV=%d+%d\n",
		res.HPWLUm, res.WirelenFrontUm, res.WirelenBackUm, res.Vias, res.DRVsFront, res.DRVsBack)
	fmt.Printf("freq=%.3fGHz (period %.1fps) power=%.1fuW eff=%.0fGHz/W\n",
		res.AchievedFreqGHz, res.MinPeriodPs, res.PowerUW, res.EffGHzPerW)
	fmt.Printf("ctsbufs=%d synbufs=%d pins F/B=%d/%d rerouted=%d elapsed=%s\n",
		res.CTSBuffers, res.SynthBuffers, res.PinStats.FrontPins, res.PinStats.BackPins,
		res.Rerouted, time.Since(t0).Round(time.Millisecond))
	if res.Power != nil {
		fmt.Printf("power: sw=%.1f int=%.1f clk=%.1f leak=%.2f uW\n",
			res.Power.SwitchingUW, res.Power.InternalUW, res.Power.ClockUW, res.Power.LeakageUW)
	}
}
