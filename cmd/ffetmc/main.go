// Command ffetmc runs a Monte Carlo overlay-variation STA study on the
// generated RISC-V core: one physical-implementation flow to the timing
// checkpoint, then thousands of re-timed samples under per-side overlay
// and parasitic perturbations, reporting the WNS/TNS distribution.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/cell"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/riscv"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	front := flag.Int("fm", 6, "frontside routing layers")
	back := flag.Int("bm", 6, "backside routing layers")
	target := flag.Float64("target", 1.5, "synthesis target frequency (GHz)")
	util := flag.Float64("util", 0.72, "placement utilization")
	backPins := flag.Float64("backpins", 0.5, "backside input pin density ratio")
	regs := flag.Int("regs", 16, "architectural registers (8/16/32)")
	samples := flag.Int("samples", 0, "Monte Carlo samples (0 = default)")
	workers := flag.Int("workers", 0, "sampling goroutines (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 0, "PRNG seed (0 = default)")
	sigma := flag.Float64("sigma", 0, "per-side overlay sigma in nm (0 = default)")
	floor := flag.Float64("floor", 0, "screening floor in fF (0 = default)")
	flag.Parse()

	// SIGINT/SIGTERM cancel both the flow and the sampling loop; a
	// cancelled run exits non-zero.
	ctx, stop := cliutil.SignalContext()
	defer stop()

	lib := cell.NewLibrary(tech.NewFFET())
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "rv32", Registers: *regs})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: *front, Back: *back}, *target, *util)
	cfg.BackPinFraction = *backPins
	f, err := core.NewFlow(nl, cfg)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if err := f.RunToCtx(ctx, core.StageSTA); err != nil {
		fail(f, err)
	}
	if f.Halted() {
		log.Fatalf("flow halted: %s", f.Result().Reason)
	}
	basis, err := f.VariationBasis()
	if err != nil {
		log.Fatal(err)
	}
	flowDur := time.Since(t0)

	opt := variation.DefaultOptions()
	if *samples > 0 {
		opt.Samples = *samples
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *sigma > 0 {
		opt.SigmaNm = *sigma
	}
	if *floor > 0 {
		opt.FloorFF = *floor
	}
	t1 := time.Now()
	sum, err := variation.Study(ctx, basis, opt)
	if err != nil {
		fail(f, err)
	}
	mcDur := time.Since(t1)

	fmt.Printf("design: pattern=%s backpins=%.0f%% nets=%d period=%.1fps (flow %s)\n",
		cfg.Pattern, *backPins*100, len(basis.NetRC), basis.PeriodPs,
		flowDur.Round(time.Millisecond))
	fmt.Printf("model: sigma=%gnm/side capsens=%g/nm parasitic=%g floor=%gfF seed=%d\n",
		opt.SigmaNm, opt.CapSensPerNm, opt.ParasiticSigma, opt.FloorFF, opt.Seed)
	fmt.Printf("%d samples in %s (%.0f samples/sec, %d workers)\n",
		sum.Samples, mcDur.Round(time.Millisecond),
		float64(sum.Samples)/mcDur.Seconds(), opt.Workers)
	fmt.Printf("WNS ps: mean=%.2f sigma=%.2f P50=%.2f P95=%.2f P99.7=%.2f\n",
		sum.MeanWNSPs, sum.SigmaWNSPs, sum.P50WNSPs, sum.P95WNSPs, sum.P997WNSPs)
	fmt.Printf("TNS ps: mean=%.2f sigma=%.2f P50=%.2f P95=%.2f P99.7=%.2f\n",
		sum.MeanTNSPs, sum.SigmaTNSPs, sum.P50TNSPs, sum.P95TNSPs, sum.P997TNSPs)
}

// fail reports a run error with the flow's partial stage timings (an
// interrupted flow still shows the work it paid for) and exits 1.
func fail(f *core.Flow, err error) {
	cliutil.PrintPartialStageTimes(os.Stderr, f.Result())
	cliutil.Fail("ffetmc", err)
}
