// Command ffetcal sweeps utilization for the key configurations and prints
// DRV counts — the router-calibration companion to the experiment suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/cell"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/route"
	"repro/internal/tech"
)

func main() {
	cf := flag.Float64("cf", 1.77, "capacity factor")
	pb := flag.Float64("pb", 85, "pin saturation per um2")
	pexp := flag.Float64("pexp", 6, "pin crowding exponent")
	sdc := flag.Float64("sdc", 1.3, "CFET pin access factor")
	regs := flag.Int("regs", 32, "register count")
	flag.Parse()

	// SIGINT/SIGTERM cancel the sweep: in-flight runs stop within one
	// stage, their cells report the cancellation, and the exit is non-zero.
	ctx, stop := cliutil.SignalContext()
	defer stop()

	ffet := cell.NewLibrary(tech.NewFFET())
	cfet := cell.NewLibrary(tech.NewCFET())
	nlF, _, _ := riscv.Generate(ffet, riscv.Config{Name: "rv32", Registers: *regs})
	nlC, _ := nlF.Remap(cfet)

	type cfgSpec struct {
		label string
		nl    *netlist.Netlist
		pat   tech.Pattern
		bp    float64
	}
	specs := []cfgSpec{
		{"FFET_FM12      ", nlF, tech.Pattern{Front: 12}, 0},
		{"CFET_FM12      ", nlC, tech.Pattern{Front: 12}, 0},
		{"FFET_FM12BM12  ", nlF, tech.Pattern{Front: 12, Back: 12}, 0.5},
		{"FFET_FM4BM4    ", nlF, tech.Pattern{Front: 4, Back: 4}, 0.5},
		{"FFET_FM2BM2    ", nlF, tech.Pattern{Front: 2, Back: 2}, 0.5},
	}
	utils := []float64{0.68, 0.72, 0.76, 0.80, 0.84, 0.86}

	type result struct {
		si, ui int
		drv    int
		valid  bool
		reason string
		wlF    float64
		wlB    float64
	}
	results := make([]result, len(specs)*len(utils))
	sem := make(chan struct{}, 12)
	var wg sync.WaitGroup
	for si, sp := range specs {
		for ui, u := range utils {
			wg.Add(1)
			go func(si, ui int, sp cfgSpec, u float64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cfg := core.DefaultFlowConfig(sp.pat, 1.5, u)
				cfg.BackPinFraction = sp.bp
				ropt := route.DefaultOptions()
				ropt.CapacityFactor = *cf
				ropt.PinSaturation = *pb
				ropt.PinCrowdingExp = *pexp
				if sp.label[0] == 'C' {
					ropt.PinAccessFactor = *sdc
				}
				cfg.Route = ropt
				res, err := core.RunFlowCtx(ctx, sp.nl, cfg)
				if err != nil {
					results[si*len(utils)+ui] = result{si, ui, -1, false, err.Error(), 0, 0}
					return
				}
				results[si*len(utils)+ui] = result{si, ui, res.DRVs(), res.Valid, res.Reason,
					res.WirelenFrontUm, res.WirelenBackUm}
			}(si, ui, sp, u)
		}
	}
	wg.Wait()
	fmt.Printf("cf=%.2f pb=%.2f\n%-16s", *cf, *pb, "config")
	for _, u := range utils {
		fmt.Printf("  u%.0f%%      ", u*100)
	}
	fmt.Println()
	for si, sp := range specs {
		fmt.Printf("%-16s", sp.label)
		for ui := range utils {
			r := results[si*len(utils)+ui]
			mark := "OK "
			if !r.valid {
				mark = "X  "
			}
			fmt.Printf("  %s d=%-5d", mark, r.drv)
		}
		fmt.Println()
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted: sweep incomplete")
		os.Exit(1)
	}
}
