// Command ffetd serves the staged implementation flow over HTTP: single
// flows, sweeps and Monte Carlo variation studies, with a cross-request
// checkpoint cache, request coalescing, NDJSON progress streaming and an
// exact-config result memo. SIGINT/SIGTERM drain in-flight work before
// exit; a second signal cancels it immediately (cancelled requests still
// report their partial stage timings in the error payload).
//
// -oneshot FILE bypasses the daemon entirely: the request JSON in FILE
// runs through the offline from-scratch path and the response body is
// printed to stdout — the reference the CI smoke test compares daemon
// responses against, byte for byte.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/serve"
	"repro/internal/variation"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	scaleFlag := flag.String("scale", "quick", "workload scale: quick or full")
	cacheMB := flag.Int64("cache-mb", 256, "checkpoint cache budget (MiB)")
	workers := flag.Int("workers", 0, "max concurrent flow executions (0 = min(GOMAXPROCS, 12))")
	queue := flag.Int("queue", 0, "admission queue bound beyond in-flight workers (0 = 64)")
	memoEntries := flag.Int("memo-entries", 0, "exact-config result memo LRU bound (0 = 4096)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain timeout on SIGTERM")
	oneshot := flag.String("oneshot", "", "run the request JSON in FILE offline and print the response body")
	flag.Parse()

	scale := exp.Quick
	if *scaleFlag == "full" {
		scale = exp.Full
	}
	if *oneshot != "" {
		if err := runOneshot(*oneshot, scale); err != nil {
			cliutil.Fail("ffetd", err)
		}
		return
	}

	s, err := serve.New(serve.Options{
		Scale:       scale,
		CacheBytes:  *cacheMB << 20,
		MaxWorkers:  *workers,
		MaxQueue:    *queue,
		MemoEntries: *memoEntries,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := cliutil.SignalContext()
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// First signal: stop admitting, drain in-flight requests. stop()
		// restores default signal handling, so a second signal kills the
		// process outright.
		stop()
		log.Printf("ffetd: draining (timeout %s)", *drain)
		s.StartDrain()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(dctx); err != nil {
			// Drain timed out: cancel the base context so in-flight flows
			// die at their next stage boundary and report partial stage
			// timings, then give their handlers a moment to flush.
			log.Printf("ffetd: drain incomplete (%v), cancelling in-flight work", err)
			s.Close()
			fctx, fcancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer fcancel()
			httpSrv.Shutdown(fctx)
		}
		s.Close()
	}()

	log.Printf("ffetd: listening on %s (scale=%s, cache=%dMiB)", *addr, *scaleFlag, *cacheMB)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Printf("ffetd: bye")
}

// oneshotRequest is the -oneshot input: exactly one of the fields set.
type oneshotRequest struct {
	Flow  *serve.FlowSpec     `json:"flow,omitempty"`
	Sweep *serve.SweepRequest `json:"sweep,omitempty"`
	MC    *serve.MCRequest    `json:"mc,omitempty"`
}

// runOneshot executes the request through the offline from-scratch path
// — core.RunFlowCtx per point, no sessions, no forking, no caches — and
// prints exactly the bytes the daemon would respond with. This is the
// independent reference for the byte-identity smoke test: the two paths
// share only the config mapping and the Summary encoding.
func runOneshot(path string, scale exp.Scale) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var req oneshotRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return err
	}
	suite, err := exp.NewSuite(scale)
	if err != nil {
		return err
	}
	ctx, stop := cliutil.SignalContext()
	defer stop()

	runPoint := func(sp serve.FlowSpec) (json.RawMessage, error) {
		arch, cfg, err := sp.Config()
		if err != nil {
			return nil, err
		}
		res, err := core.RunFlowCtx(ctx, suite.Netlist(arch), cfg)
		if err != nil {
			return nil, err
		}
		return json.Marshal(serve.NewSummary(res))
	}

	var body []byte
	switch {
	case req.Flow != nil:
		point, err := runPoint(*req.Flow)
		if err != nil {
			return err
		}
		body, err = json.Marshal(struct {
			Result json.RawMessage `json:"result"`
		}{point})
		if err != nil {
			return err
		}
	case req.Sweep != nil:
		specs, err := req.Sweep.Points()
		if err != nil {
			return err
		}
		results := make([]json.RawMessage, len(specs))
		for i, sp := range specs {
			if results[i], err = runPoint(sp); err != nil {
				return err
			}
		}
		body, err = json.Marshal(struct {
			Results []json.RawMessage `json:"results"`
		}{results})
		if err != nil {
			return err
		}
	case req.MC != nil:
		arch, cfg, err := req.MC.Base.Config()
		if err != nil {
			return err
		}
		f, err := core.NewFlow(suite.Netlist(arch), cfg)
		if err != nil {
			return err
		}
		if _, err := f.RunCtx(ctx); err != nil {
			return err
		}
		basis, err := f.VariationBasis()
		if err != nil {
			return err
		}
		opt := variation.DefaultOptions()
		if req.MC.Samples > 0 {
			opt.Samples = req.MC.Samples
		}
		if req.MC.Workers > 0 {
			opt.Workers = req.MC.Workers
		}
		if req.MC.Seed != 0 {
			opt.Seed = req.MC.Seed
		}
		if req.MC.SigmaNm > 0 {
			opt.SigmaNm = req.MC.SigmaNm
		}
		if req.MC.FloorFF > 0 {
			opt.FloorFF = req.MC.FloorFF
		}
		sum, err := variation.Study(ctx, basis, opt)
		if err != nil {
			return err
		}
		body, err = json.Marshal(struct {
			MC serve.MCSummary `json:"mc"`
		}{serve.NewMCSummary(sum)})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("oneshot request must set one of flow, sweep, mc")
	}
	fmt.Println(string(body))
	return nil
}
