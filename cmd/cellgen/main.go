// Command cellgen prints the generated standard-cell libraries: Fig. 4 area
// comparison, Table I characterization diffs, and optional LEF/.lib dumps.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/cell"
	"repro/internal/lef"
	"repro/internal/tech"
)

func main() {
	outDir := flag.String("out", "", "write <arch>.lib and <arch>.lef files here")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ffet := cell.NewLibrary(tech.NewFFET())
	cfet := cell.NewLibrary(tech.NewCFET())
	fmt.Println("== Fig 4: area gain w.r.t 4T CFET ==")
	for _, name := range ffet.CellNames() {
		f, c := ffet.Cell(name), cfet.Cell(name)
		gain := 100 * (1 - f.AreaUm2(ffet.Stack)/c.AreaUm2(cfet.Stack))
		fmt.Printf("%-10s FFET %.4f um2  CFET %.4f um2  gain %+.1f%%\n", name, f.AreaUm2(ffet.Stack), c.AreaUm2(cfet.Stack), gain)
	}
	fmt.Println("== Table I: KPI diff of FFET vs CFET (slew=20ps, load=1fF*drive) ==")
	for _, name := range []string{"INVD1", "INVD2", "INVD4", "BUFD1", "BUFD2", "BUFD4"} {
		f, c := ffet.Cell(name), cfet.Cell(name)
		slew, load := 20.0, 1.0*float64(f.Drive)
		fa, ca := f.Arc("I"), c.Arc("I")
		d := func(x, y float64) float64 { return 100 * (x/y - 1) }
		fe := fa.EnergyRise.Lookup(slew, load) + fa.EnergyFall.Lookup(slew, load)
		ce := ca.EnergyRise.Lookup(slew, load) + ca.EnergyFall.Lookup(slew, load)
		fmt.Printf("%-6s transPwr %+6.1f%%  riseT %+6.1f%%  fallT %+6.1f%%  riseS %+6.1f%%  fallS %+6.1f%%  leak %+6.1f%%\n",
			name,
			d(fe, ce),
			d(fa.DelayRise.Lookup(slew, load), ca.DelayRise.Lookup(slew, load)),
			d(fa.DelayFall.Lookup(slew, load), ca.DelayFall.Lookup(slew, load)),
			d(fa.SlewRise.Lookup(slew, load), ca.SlewRise.Lookup(slew, load)),
			d(fa.SlewFall.Lookup(slew, load), ca.SlewFall.Lookup(slew, load)),
			d(f.LeakageNW, c.LeakageNW))
	}
	inv := ffet.Cell("INVD1")
	fo4 := inv.Arc("I").DelayFall.Lookup(20, 4*inv.InputCap("I"))
	fmt.Printf("FFET INVD1 FO4-ish fall delay: %.2f ps, Cin=%.3f fF\n", fo4, inv.InputCap("I"))
	dff := ffet.Cell("DFFD1")
	fmt.Printf("FFET DFF clkq %.2f ps setup %.2f | CFET clkq %.2f setup %.2f\n",
		dff.Seq.ClkQWorst(20, 1), dff.Seq.SetupPs,
		cfet.Cell("DFFD1").Seq.ClkQWorst(20, 1), cfet.Cell("DFFD1").Seq.SetupPs)

	if *outDir != "" {
		// Don't start writing library files into an interrupted run's
		// output directory.
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted: skipping library dump")
			os.Exit(1)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, lib := range []*cell.Library{ffet, cfet} {
			name := "ffet"
			if lib.Arch == tech.CFET {
				name = "cfet"
			}
			libF, err := os.Create(filepath.Join(*outDir, name+".lib"))
			if err != nil {
				log.Fatal(err)
			}
			if err := cell.WriteLiberty(libF, lib); err != nil {
				log.Fatal(err)
			}
			libF.Close()
			lefF, err := os.Create(filepath.Join(*outDir, name+".lef"))
			if err != nil {
				log.Fatal(err)
			}
			if err := lef.Write(lefF, lib, lef.SideConfig{}); err != nil {
				log.Fatal(err)
			}
			lefF.Close()
			fmt.Printf("wrote %s/%s.{lib,lef}\n", *outDir, name)
		}
	}
}
