// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates its artifact through the
// experiment suite and prints the rows/series the paper reports (once per
// run). `go test -bench=. -benchmem` therefore reproduces the whole
// evaluation at Quick scale; run cmd/ffetexp for the Full-scale sweeps.
package ffet_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/exp"
	"repro/internal/riscv"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

var (
	suiteOnce sync.Once
	suite     *exp.Suite
	suiteErr  error
)

func getSuite(b *testing.B) *exp.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = exp.NewSuite(exp.Quick)
	})
	if suiteErr != nil {
		b.Fatalf("suite: %v", suiteErr)
	}
	return suite
}

// printOnce renders a table to stdout on the first benchmark iteration.
func printOnce(i int, t *exp.Table) {
	if i == 0 {
		t.Print(os.Stdout)
	}
}

func BenchmarkFig04CellArea(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		printOnce(i, s.Fig04())
	}
}

func BenchmarkTable1LibChar(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		printOnce(i, s.Table1())
	}
}

func BenchmarkTable2DesignRules(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		printOnce(i, s.Table2())
	}
}

func benchFlow(b *testing.B, run func() (*exp.Table, error), metric func(t *exp.Table)) {
	s := getSuite(b)
	_ = s
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, t)
		if metric != nil && i == 0 {
			metric(t)
		}
	}
}

func BenchmarkFig08aAreaUtil(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig08a, nil)
}

func BenchmarkFig08bLayout(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig08b, nil)
}

func BenchmarkFig08cAreaUtil(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig08c, nil)
}

func BenchmarkFig09PowerFreq(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig09, nil)
}

func BenchmarkFig10FreqArea(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig10, nil)
}

func BenchmarkFig11PinDensityDoE(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig11, nil)
}

func BenchmarkTable3CoOpt(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Table3, nil)
}

func BenchmarkFig12MaxUtilLayers(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig12, nil)
}

func BenchmarkFig13PowerEff(b *testing.B) {
	s := getSuite(b)
	benchFlow(b, s.Fig13, nil)
}

// BenchmarkSTAReuse measures repeated timing analysis of one design
// through a prebuilt sta.Engine — the unit of work behind incremental
// frequency sweeps. The levelized order and all arrival scratch are
// reused, so steady-state iterations should report ~0 allocs/op.
func BenchmarkSTAReuse(b *testing.B) {
	s := getSuite(b)
	nl, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32sta", Registers: 16})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sta.NewEngine(nl)
	if err != nil {
		b.Fatal(err)
	}
	in := sta.Input{}
	opt := sta.DefaultOptions()
	if _, err := eng.Analyze(in, opt); err != nil { // warm the path buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepShared contrasts the two ways of running the paper's
// back-pin-fraction DoE (Fig. 11): "forked" runs the shared prefix
// (synthesis through CTS) once in a staged core.Flow session and forks a
// child per FP(1-x)BP(x) point at StagePartition; "independent" runs one
// complete RunFlow per point, recomputing the prefix every time. Results
// are bit-identical between the two; the forked sweep must show
// measurably less work (allocs/op and ns/op) per sweep.
func BenchmarkSweepShared(b *testing.B) {
	s := getSuite(b)
	nl, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32sweep", Registers: 16})
	if err != nil {
		b.Fatal(err)
	}
	bps := []float64{0.5, 0.4, 0.3, 0.16, 0.04}
	base := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = bps[0]

	b.Run("forked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := core.NewFlow(nl, base)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.RunTo(core.StageCTS); err != nil {
				b.Fatal(err)
			}
			for _, bp := range bps {
				g, err := f.Fork(func(c *core.FlowConfig) { c.BackPinFraction = bp })
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bp := range bps {
				cfg := base
				cfg.BackPinFraction = bp
				if _, err := core.RunFlow(nl, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSweepIncrementalSTA measures the incremental re-timing path on
// the same back-pin DoE BenchmarkSweepShared runs: "incremental" runs the
// first point through the whole pipeline once and forks every other point
// off that completed session, so each sibling inherits the leader's
// post-STA engine + RC baseline and re-propagates only the timing cones
// its partition delta dirtied; "fullSTA" forks the same points off a
// parent stopped at StageCTS (PR 4's BenchmarkSweepShared/forked shape),
// so every point rebuilds an engine and re-times the whole design.
// Results are bit-identical between the two; the incremental sweep must
// show fewer allocs/op and less wall-clock per sweep.
func BenchmarkSweepIncrementalSTA(b *testing.B) {
	s := getSuite(b)
	nl, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32inc", Registers: 16})
	if err != nil {
		b.Fatal(err)
	}
	bps := []float64{0.5, 0.4, 0.3, 0.16, 0.04}
	base := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = bps[0]

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			leader, err := core.NewFlow(nl, base)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := leader.Run(); err != nil {
				b.Fatal(err)
			}
			for _, bp := range bps[1:] {
				g, err := leader.Fork(func(c *core.FlowConfig) { c.BackPinFraction = bp })
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("fullSTA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := core.NewFlow(nl, base)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.RunTo(core.StageCTS); err != nil {
				b.Fatal(err)
			}
			for _, bp := range bps {
				g, err := f.Fork(func(c *core.FlowConfig) { c.BackPinFraction = bp })
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSweepFreqIncremental measures the frequency-axis diff-chain
// path on a dense 5-point target sweep (the Fig. 9 power/frequency axis
// sampled finely around one operating point): "diffchain" runs the first
// point through the whole pipeline once and walks to each neighboring
// target via core.Flow.ForkSynthDiff — the hop re-synthesizes at its own
// target (the unavoidable cost), then re-stamps the neighbor's placement
// and adopts its partition/route/DEF/STA state wherever the netlist diff
// gates hold; "forkAtSynth" forks every later point off the first
// completed session at StageSynth, re-running the entire back end per
// point (the pre-diff sweep shape). Results are bit-identical between
// the two (pinned by core.TestSynthDiffForkMatchesScratch); the chained
// sweep must show materially less wall-clock per sweep.
func BenchmarkSweepFreqIncremental(b *testing.B) {
	s := getSuite(b)
	nl, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32freq", Registers: 16})
	if err != nil {
		b.Fatal(err)
	}
	targets := []float64{2.0, 2.02, 2.04, 2.06, 2.08}
	base := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, targets[0], 0.72)
	base.BackPinFraction = 0.5

	b.Run("diffchain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			prev, err := core.NewFlow(nl, base)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := prev.Run(); err != nil {
				b.Fatal(err)
			}
			for _, tgt := range targets[1:] {
				g, st, err := prev.ForkSynthDiff(func(c *core.FlowConfig) { c.TargetFreqGHz = tgt })
				if err != nil {
					b.Fatal(err)
				}
				if !st.DiffPath {
					b.Fatalf("tgt %v fell off the diff path: %q", tgt, st.Fallback)
				}
				if _, err := g.Run(); err != nil {
					b.Fatal(err)
				}
				prev = g
			}
		}
	})
	b.Run("forkAtSynth", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			leader, err := core.NewFlow(nl, base)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := leader.Run(); err != nil {
				b.Fatal(err)
			}
			for _, tgt := range targets[1:] {
				g, err := leader.Fork(func(c *core.FlowConfig) { c.TargetFreqGHz = tgt })
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSweepIncrementalPlace measures the incremental placement path
// on a CTS-option sweep (a MaxLeafFanout DoE — the fork-at-StageCTS
// shape behind clock-tree exploration): both arms run the parent to
// StagePlace once and fork a child per fanout point at StageCTS.
// "incremental" hands each child the parent's retained legalization +
// refinement bases, so its StageCTS re-legalizes only the inserted
// buffer delta and re-collects refinement endpoints only for the clock
// cone; "replay" disables the fast path and replays full legalization +
// the 3-pass refinement collection from the post-place snapshot.
// Placements are bit-identical between the two (pinned by
// core.TestFlowForkIncrementalPlacement); the incremental sweep must
// show materially less wall-clock per sweep.
func BenchmarkSweepIncrementalPlace(b *testing.B) {
	s := getSuite(b)
	nl, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32incp", Registers: 16})
	if err != nil {
		b.Fatal(err)
	}
	fanouts := []int{24, 16, 12, 20, 8}
	base := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5

	// The parent (synthesis through global placement, basis build for
	// the incremental arm) is built once per arm outside the timed loop:
	// it is identical work in both arms and amortized over the
	// thousands-of-points sweeps this path serves, while the measured
	// unit — fork a point, run its StageCTS — is what every sweep point
	// pays per configuration.
	run := func(b *testing.B, incremental bool) {
		parent, err := core.NewFlow(nl, base)
		if err != nil {
			b.Fatal(err)
		}
		parent.SetIncrementalPlacement(incremental)
		if err := parent.RunTo(core.StagePlace); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, mf := range fanouts {
				g, err := parent.Fork(func(c *core.FlowConfig) {
					c.CTS = cts.Options{MaxLeafFanout: mf, BufferDrive: 4}
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := g.RunTo(core.StageCTS); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, true) })
	b.Run("replay", func(b *testing.B) { run(b, false) })
}

// BenchmarkFlowSingleRun measures one complete physical implementation +
// PPA flow on the quick-scale core (the unit of work behind every figure).
// Each iteration varies the seed so memoization never short-circuits it.
func BenchmarkFlowSingleRun(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
		cfg.BackPinFraction = 0.5
		cfg.Seed = int64(i + 1)
		res, err := s.Run(tech.FFET, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("single flow: %.3f GHz, %.1f uW, %.1f um2, valid=%v\n",
				res.AchievedFreqGHz, res.PowerUW, res.CoreAreaUm2, res.Valid)
		}
	}
}

// BenchmarkVariationMC measures the Monte Carlo overlay-variation STA
// sampling engine on the default quick-scale RISC-V design at the
// default sigma: one placed-and-clocked flow provides the StageSTA
// checkpoint, the sampler is built once, and each iteration runs a full
// default-size study through it. The custom samples/sec metric is the
// headline throughput number (target: >= 10,000 samples/sec); the
// per-sample inner loop itself is pinned at 0 allocs/op by
// variation.TestAllocsPerRunZero.
func BenchmarkVariationMC(b *testing.B) {
	s := getSuite(b)
	nl, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32mc", Registers: 16})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
	cfg.BackPinFraction = 0.5
	f, err := core.NewFlow(nl, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		b.Fatal(err)
	}
	basis, err := f.VariationBasis()
	if err != nil {
		b.Fatal(err)
	}
	opt := variation.DefaultOptions()
	sampler, err := variation.NewSampler(basis, opt)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sampler.Run(ctx); err != nil { // warm worker scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampler.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*opt.Samples)/b.Elapsed().Seconds(), "samples/sec")
}
