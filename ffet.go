// Package ffet is the public API of the FFET dual-sided physical
// implementation and block-level PPA evaluation framework — a from-scratch
// Go reproduction of "A Tale of Two Sides of Wafer: Physical Implementation
// and Block-Level PPA on Flip FET with Dual-Sided Signals" (DATE 2025).
//
// The facade re-exports the pieces a downstream user needs:
//
//   - technology stacks (Table II) and characterized cell libraries
//     (Fig. 4 / Table I) for the 3.5T FFET and 4T CFET;
//   - the gate-level RV32I benchmark core generator with ISS co-simulation;
//   - the full physical flow (Fig. 7): synthesis sizing, floorplan, BSPDN
//     power planning with Power Tap Cells, placement, CTS, the Algorithm 1
//     dual-sided netlist partition and per-side routing, DEF merge,
//     dual-sided RC extraction, STA and power analysis — as a one-shot
//     RunFlow or as a checkpointable staged Flow session;
//   - the experiment suite reproducing every table and figure of the
//     paper's evaluation, with sweep points forked off shared flow
//     prefixes.
//
// Quick start:
//
//	lib := ffet.NewFFETLibrary()
//	nl, _, _ := ffet.GenerateRV32(lib, ffet.RV32Config{Registers: 32})
//	cfg := ffet.NewFlowConfig(ffet.Pattern{Front: 6, Back: 6}, 1.5, 0.76)
//	cfg.BackPinFraction = 0.5
//	res, _ := ffet.RunFlow(nl, cfg)
//	fmt.Println(res.AchievedFreqGHz, res.PowerUW)
//
// Staged sessions make parameter sweeps near-incremental: run the shared
// prefix once, fork at the divergence stage:
//
//	f, _ := ffet.NewFlow(nl, cfg)
//	f.RunTo(ffet.StageCTS) // synth + floorplan + powerplan + place + CTS
//	for _, bp := range []float64{0.5, 0.3, 0.16} {
//	    g, _ := f.Fork(func(c *ffet.FlowConfig) { c.BackPinFraction = bp })
//	    res, _ := g.Run() // resumes at StagePartition; bit-identical to scratch
//	    fmt.Println(bp, res.AchievedFreqGHz)
//	}
package ffet

import (
	"context"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/tech"
)

// Re-exported technology types.
type (
	// Stack is a metal stack + cell grid for one architecture.
	Stack = tech.Stack
	// Pattern selects routing layer counts per side (e.g. FM6BM6).
	Pattern = tech.Pattern
	// Library is a characterized standard-cell library.
	Library = cell.Library
	// Netlist is a gate-level design.
	Netlist = netlist.Netlist
	// FlowConfig parameterizes a physical implementation run.
	FlowConfig = core.FlowConfig
	// FlowResult is the complete P&R + PPA outcome.
	FlowResult = core.FlowResult
	// Flow is a checkpointable staged flow session (RunTo / Fork / Run).
	Flow = core.Flow
	// Stage identifies one step of the staged pipeline.
	Stage = core.Stage
	// RV32Config sizes the generated benchmark core.
	RV32Config = riscv.Config
	// CoreInfo records generated core structure for co-simulation.
	CoreInfo = riscv.CoreInfo
	// Suite runs the paper's experiments.
	Suite = exp.Suite
	// Table is a printable experiment result.
	Table = exp.Table
	// FlowError is the classified error every failed flow run returns:
	// errors.Is-matchable against the Err* sentinels below, carrying the
	// failing stage and config name.
	FlowError = core.FlowError
)

// Error taxonomy: every error a flow session returns wraps exactly one of
// these sentinels (match with errors.Is).
var (
	// ErrInvalidConfig rejects a structurally impossible FlowConfig.
	ErrInvalidConfig = core.ErrInvalidConfig
	// ErrCancelled reports a run stopped by its context.
	ErrCancelled = core.ErrCancelled
	// ErrStagePanic reports a panic contained at a stage boundary.
	ErrStagePanic = core.ErrStagePanic
	// ErrStageFailed reports a stage's own hard error.
	ErrStageFailed = core.ErrStageFailed
	// ErrSessionDead rejects use of a session after a hard error.
	ErrSessionDead = core.ErrSessionDead
	// ErrForkRace rejects a Fork or RunTo that overlapped a RunTo.
	ErrForkRace = core.ErrForkRace
)

// Architecture constants.
const (
	FFET = tech.FFET
	CFET = tech.CFET
)

// Experiment scales.
const (
	Quick = exp.Quick
	Full  = exp.Full
)

// Pipeline stages, in execution order.
const (
	StageSynth     = core.StageSynth
	StageFloorplan = core.StageFloorplan
	StagePowerplan = core.StagePowerplan
	StagePlace     = core.StagePlace
	StageCTS       = core.StageCTS
	StagePartition = core.StagePartition
	StageRoute     = core.StageRoute
	StageDEF       = core.StageDEF
	StageExtract   = core.StageExtract
	StageSTA       = core.StageSTA
	StagePower     = core.StagePower
	// NumStages is the pipeline length (FlowResult.StageTimes size).
	NumStages = core.NumStages
)

// NewFFETStack returns the 3.5T FFET stack of the paper's Table II.
func NewFFETStack() *Stack { return tech.NewFFET() }

// NewCFETStack returns the 4T CFET stack of the paper's Table II.
func NewCFETStack() *Stack { return tech.NewCFET() }

// NewFFETLibrary generates and characterizes the 28-cell FFET library.
func NewFFETLibrary() *Library { return cell.NewLibrary(tech.NewFFET()) }

// NewCFETLibrary generates and characterizes the 28-cell CFET library.
func NewCFETLibrary() *Library { return cell.NewLibrary(tech.NewCFET()) }

// GenerateRV32 builds the gate-level RISC-V benchmark core over a library.
func GenerateRV32(lib *Library, cfg RV32Config) (*Netlist, *CoreInfo, error) {
	return riscv.Generate(lib, cfg)
}

// NewFlowConfig returns evaluation defaults for a pattern, synthesis
// target (GHz) and placement utilization.
func NewFlowConfig(p Pattern, targetGHz, util float64) FlowConfig {
	return core.DefaultFlowConfig(p, targetGHz, util)
}

// RunFlow executes the full physical implementation + PPA flow.
func RunFlow(nl *Netlist, cfg FlowConfig) (*FlowResult, error) {
	return core.RunFlow(nl, cfg)
}

// RunFlowCtx is RunFlow under a context: cancellation stops the pipeline
// within one stage boundary (or inside the long route/place/STA loops)
// and returns an ErrCancelled-classified FlowError.
func RunFlowCtx(ctx context.Context, nl *Netlist, cfg FlowConfig) (*FlowResult, error) {
	return core.RunFlowCtx(ctx, nl, cfg)
}

// NewFlow opens a checkpointable staged flow session: RunTo executes to
// a stage boundary, Fork clones the session at the deepest stage a
// config change leaves intact, Run completes the pipeline.
func NewFlow(nl *Netlist, cfg FlowConfig) (*Flow, error) {
	return core.NewFlow(nl, cfg)
}

// NewSuite builds the experiment suite at the given scale.
func NewSuite(scale exp.Scale) (*Suite, error) { return exp.NewSuite(scale) }
