package synth

import (
	"fmt"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

func fanoutNetlist(t *testing.T, fanout int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("fan", lib)
	nl.AddPort("a", netlist.In)
	nl.MustAdd("drv", lib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "big"})
	for i := 0; i < fanout; i++ {
		nl.MustAdd(fmt.Sprintf("s%d", i), lib.MustCell("INVD1"),
			map[string]string{"I": "big", "ZN": fmt.Sprintf("o%d", i)})
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestBufferInsertionCapsFanout(t *testing.T) {
	nl := fanoutNetlist(t, 60)
	res, err := Run(nl, DefaultOptions(1.0))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	out := res.Netlist
	if err := out.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
	if res.BuffersAdded == 0 {
		t.Fatal("expected buffers on a fanout-60 net")
	}
	for _, n := range out.Nets {
		if n.IsClock {
			continue
		}
		if n.Fanout() > 8 {
			t.Errorf("net %s fanout %d exceeds max 8", n.Name, n.Fanout())
		}
	}
	// All 60 original sinks must still be combinationally reachable.
	levels, cyclic := out.TopoLevels()
	if len(cyclic) > 0 {
		t.Fatal("buffering created cycles")
	}
	if len(levels) < 2 {
		t.Error("expected buffer levels in the graph")
	}
}

func TestSizingRespondsToTarget(t *testing.T) {
	core, _, err := riscv.Generate(lib, riscv.Config{Name: "c", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(core, DefaultOptions(0.4))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(core, DefaultOptions(3.0))
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.AreaUm2 > slow.AreaUm2) {
		t.Errorf("3 GHz target area (%.1f µm²) should exceed 0.4 GHz area (%.1f µm²)",
			fast.AreaUm2, slow.AreaUm2)
	}
	if fast.Upsized <= slow.Upsized {
		t.Errorf("fast target should upsize more cells (%d vs %d)",
			fast.Upsized, slow.Upsized)
	}
	if err := fast.Netlist.Validate(); err != nil {
		t.Fatalf("sized netlist invalid: %v", err)
	}
}

func TestSynthesisPreservesFunction(t *testing.T) {
	// Build the reduced core, synthesize at a high target, and check the
	// sized netlist still executes a program correctly (sizing must be
	// purely electrical).
	core, info, err := riscv.Generate(lib, riscv.Config{Name: "c", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(core, DefaultOptions(2.0))
	if err != nil {
		t.Fatal(err)
	}
	imem, dmem := riscv.NewMemory(), riscv.NewMemory()
	prog := []uint32{
		riscv.ADDI(1, 0, 21),
		riscv.ADDI(2, 0, 2),
		riscv.ADD(3, 1, 1),
		riscv.SLL(4, 1, 2),
	}
	imem.LoadProgram(0, prog)
	h, err := riscv.NewHarness(res.Netlist, info, imem, dmem)
	if err != nil {
		t.Fatalf("harness on synthesized netlist: %v", err)
	}
	h.Reset()
	h.Run(len(prog))
	if got := h.Reg(3); got != 42 {
		t.Errorf("x3 = %d, want 42 after synthesis", got)
	}
	if got := h.Reg(4); got != 84 {
		t.Errorf("x4 = %d, want 84 after synthesis", got)
	}
}

func TestClockNetNotBuffered(t *testing.T) {
	nl := netlist.New("clk", lib)
	nl.AddPort("clk", netlist.In)
	nl.AddPort("d", netlist.In)
	nl.MarkClock("clk")
	prev := "d"
	for i := 0; i < 30; i++ {
		q := fmt.Sprintf("q%d", i)
		nl.MustAdd(fmt.Sprintf("ff%d", i), lib.MustCell("DFFD1"),
			map[string]string{"D": prev, "CP": "clk", "Q": q})
		prev = q
	}
	res, err := Run(nl, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	ck := res.Netlist.Net("clk")
	if ck.Fanout() != 30 {
		t.Errorf("clock fanout = %d, want 30 untouched (CTS owns the clock)", ck.Fanout())
	}
}

func TestInvalidTargetRejected(t *testing.T) {
	nl := fanoutNetlist(t, 3)
	if _, err := Run(nl, DefaultOptions(0)); err == nil {
		t.Fatal("zero target must be rejected")
	}
}

func TestOriginalUntouched(t *testing.T) {
	nl := fanoutNetlist(t, 60)
	before := nl.Stats()
	if _, err := Run(nl, DefaultOptions(2.0)); err != nil {
		t.Fatal(err)
	}
	after := nl.Stats()
	if before.Instances != after.Instances || before.AreaUm2 != after.AreaUm2 {
		t.Error("Run must not mutate its input netlist")
	}
}
