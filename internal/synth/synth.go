// Package synth implements the logic-synthesis backend of the evaluation
// flow: target-frequency-driven gate sizing and high-fanout buffering over
// a technology-mapped netlist. It substitutes for the commercial synthesis
// step the paper runs before P&R (the netlist itself comes from the
// generator in internal/riscv, which plays the role of the RTL).
//
// The sizing algorithm is logical-effort flavored: the clock period is
// split into per-stage delay budgets using the design's combinational
// depth; each gate is then sized so its switched-RC delay under the
// estimated load (sink pin caps + a fanout-based wire-load model) meets
// the budget. Tighter targets therefore grow area and power smoothly,
// which is what produces the power/frequency trade-off curves of the
// paper's Figs. 9-11.
package synth

import (
	"fmt"

	"repro/internal/netlist"
)

// Options configures synthesis.
type Options struct {
	TargetFreqGHz float64
	// MaxFanout bounds signal-net fanout; larger nets get buffer trees.
	MaxFanout int
	// WireCapPerFanout is the wire-load model: estimated wire capacitance
	// added per sink, in fF.
	WireCapPerFanout float64
	// WireCapBase is the constant term of the wire-load model, in fF.
	WireCapBase float64
	// Passes is the number of sizing sweeps (load estimates converge as
	// sink sizes settle).
	Passes int
}

// DefaultOptions returns the flow defaults.
func DefaultOptions(targetGHz float64) Options {
	return Options{
		TargetFreqGHz:    targetGHz,
		MaxFanout:        8,
		WireCapPerFanout: 0.12,
		WireCapBase:      0.15,
		Passes:           3,
	}
}

// Result reports what synthesis did.
type Result struct {
	Netlist       *netlist.Netlist
	TargetFreqGHz float64
	Depth         int // combinational levels
	BuffersAdded  int
	Upsized       int
	AreaUm2       float64
}

// Run returns a sized and buffered copy of the input netlist.
func Run(nl *netlist.Netlist, opt Options) (*Result, error) {
	if opt.TargetFreqGHz <= 0 {
		return nil, fmt.Errorf("synth: target frequency must be positive")
	}
	if opt.MaxFanout < 2 {
		opt.MaxFanout = 8
	}
	if opt.Passes <= 0 {
		opt.Passes = 3
	}
	out := nl.Clone()
	res := &Result{Netlist: out, TargetFreqGHz: opt.TargetFreqGHz}

	nb, err := bufferHighFanout(out, opt)
	if err != nil {
		return nil, err
	}
	res.BuffersAdded = nb

	levels, cyclic := out.TopoLevels()
	if len(cyclic) > 0 {
		return nil, fmt.Errorf("synth: combinational cycles present")
	}
	res.Depth = len(levels)

	res.Upsized = size(out, levels, opt)
	res.AreaUm2 = out.CellAreaUm2()
	return res, nil
}

// bufferHighFanout splits nets whose fanout exceeds MaxFanout with buffer
// trees. Clock nets are left to CTS.
func bufferHighFanout(nl *netlist.Netlist, opt Options) (int, error) {
	added := 0
	// Iterate until stable; inserted buffer nets can themselves be fine
	// (each new net has <= MaxFanout sinks by construction).
	nets := append([]*netlist.Net(nil), nl.Nets...)
	for _, n := range nets {
		if n.IsClock || n.Fanout() <= opt.MaxFanout {
			continue
		}
		// Only instance sinks are regrouped; port sinks stay on the root.
		var instSinks []netlist.PinRef
		for _, s := range n.Sinks {
			if !s.IsPort() {
				instSinks = append(instSinks, s)
			}
		}
		if len(instSinks) <= opt.MaxFanout {
			continue
		}
		level := append([]netlist.PinRef(nil), instSinks...)
		for len(level) > opt.MaxFanout {
			groups := (len(level) + opt.MaxFanout - 1) / opt.MaxFanout
			var next []netlist.PinRef
			for g := 0; g < groups; g++ {
				lo := g * opt.MaxFanout
				hi := lo + opt.MaxFanout
				if hi > len(level) {
					hi = len(level)
				}
				bufName := fmt.Sprintf("synbuf_%s_%d_%d", sanitize(n.Name), added, g)
				netName := bufName + "_z"
				buf := nl.Lib.PickDrive("BUF", 4)
				inst, err := nl.AddInstance(bufName, buf, map[string]string{"Z": netName})
				if err != nil {
					return added, err
				}
				bn := nl.Net(netName)
				for _, s := range level[lo:hi] {
					if err := nl.Reconnect(s.Inst, s.Pin, bn); err != nil {
						return added, err
					}
				}
				// Buffer input joins the next level up.
				next = append(next, netlist.PinRef{Inst: inst, Pin: "I"})
				added++
			}
			level = next
		}
		// Attach the top buffer level to the original net.
		for _, s := range level {
			if s.Inst.Conn("I") == nil {
				if err := nl.Reconnect(s.Inst, "I", n); err != nil {
					return added, err
				}
			}
		}
	}
	return added, nil
}

func sanitize(s string) string {
	clean := func(r rune) bool {
		return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_'
	}
	dirty := false
	for _, r := range s {
		if !clean(r) {
			dirty = true
			break
		}
	}
	if !dirty { // the common case: generator names are already clean
		return s
	}
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if clean(r) {
			out = append(out, r)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// loadOn estimates the capacitive load on an instance's output: sink input
// pin caps plus the wire-load model.
func loadOn(n *netlist.Net, opt Options) float64 {
	load := opt.WireCapBase + opt.WireCapPerFanout*float64(n.Fanout())
	for _, s := range n.Sinks {
		if s.IsPort() {
			load += 1.0 // nominal external pin load, fF
			continue
		}
		load += s.Inst.Cell.InputCap(s.Pin)
	}
	return load
}

// size performs budget-driven drive selection. Returns upsized count.
func size(nl *netlist.Netlist, levels [][]*netlist.Instance, opt Options) int {
	depth := len(levels)
	if depth == 0 {
		return 0
	}
	periodPs := 1000.0 / opt.TargetFreqGHz
	// Reserve a fraction for clocking overhead (clk->q, setup, skew) and
	// wires; split the rest across logic stages.
	budget := periodPs * 0.72 / float64(depth)
	if budget < 1 {
		budget = 1
	}
	// A stage with drive resistance R(kΩ) and load L(fF) has delay
	// ~0.7·R·L; require drive so that R1/drive·L·0.7 <= budget.
	const rDrive1 = 8.0 // kΩ, matches the characterization anchor
	upsized := 0
	for pass := 0; pass < opt.Passes; pass++ {
		changed := 0
		// Reverse topological order so sink sizes settle first.
		for li := len(levels) - 1; li >= 0; li-- {
			for _, inst := range levels[li] {
				out := inst.OutputNet()
				if out == nil || out.IsClock {
					continue
				}
				load := loadOn(out, opt)
				needR := budget / (0.7 * load)
				want := 1
				if needR > 0 {
					for want = 1; want < 8; want *= 2 {
						if rDrive1/float64(want) <= needR {
							break
						}
					}
				} else {
					want = 8
				}
				c := nl.Lib.PickDrive(inst.Cell.Base, want)
				if c != nil && c != inst.Cell {
					if c.Drive > inst.Cell.Drive {
						upsized++
					}
					_ = nl.Resize(inst, c)
					changed++
				}
			}
		}
		// Flops can also be considered fixed-drive; stop when stable.
		if changed == 0 {
			break
		}
	}
	return upsized
}
