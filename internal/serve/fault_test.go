package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/exp"
	"repro/internal/faultinject"
)

// TestFaultSchedulesThroughHandlers drives seeded fault schedules —
// errors and panics at the serve admission/memo/checkpoint/leaf sites and
// inside every core stage — through live HTTP handlers. For every seed:
// failures must surface as classified JSON error bodies (never an
// unclassified kind, never a daemon crash), and with the schedule
// deactivated the daemon must immediately serve offline-identical bytes
// again from a cache that still respects its budget. Run with -race.
func TestFaultSchedulesThroughHandlers(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, Options{Scale: exp.Quick, MaxWorkers: 3})
	ts := httptest.NewServer(s.Handler())

	probe := baseSpec
	probe.BackPins = 0.25
	want := wrapResult(t, offlineBody(t, s, probe))

	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	var faulted, served int
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		sched := faultinject.New(seed,
			faultinject.WithRate(2+seed%6),
			faultinject.WithKinds(faultinject.Error, faultinject.Panic))
		deactivate := faultinject.Activate(sched)

		// A single flow and a small sweep per seed: the sweep exercises the
		// coalescing path under faults (waiters must see the builder's
		// error, not hang).
		sp := baseSpec
		sp.BackPins = float64(seed%4) * 0.2
		status, got := post(t, ts, "/v1/flow", sp)
		checkFaultResponse(t, seed, "/v1/flow", status, got, &faulted, &served)

		sw := SweepRequest{Base: baseSpec, Axis: "util",
			Values: []float64{0.70, 0.74, 0.78}}
		status, got = post(t, ts, "/v1/sweep", sw)
		if status == http.StatusOK {
			// Sweeps report per-point failures inline: every errored point
			// must still carry a classified kind.
			var out struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(got, &out); err != nil {
				t.Fatalf("seed %d: bad sweep body: %v: %s", seed, err, got)
			}
			for i, raw := range out.Results {
				var pt struct {
					Error *ErrorBody `json:"error"`
				}
				if err := json.Unmarshal(raw, &pt); err != nil {
					t.Fatalf("seed %d point %d: %v", seed, i, err)
				}
				if pt.Error != nil {
					faulted++
					if pt.Error.Kind == "" || pt.Error.Kind == "unclassified" {
						t.Errorf("seed %d point %d: unclassified sweep error: %s", seed, i, raw)
					}
				} else {
					served++
				}
			}
		} else {
			checkFaultResponse(t, seed, "/v1/sweep", status, got, &faulted, &served)
		}
		deactivate()

		// Faults off: the daemon must be healthy right now.
		status, got = post(t, ts, "/v1/flow", probe)
		if status != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("seed %d: post-fault probe broken: status %d\n got %s\nwant %s", seed, status, got, want)
		}
		if st := getStats(t, ts).Checkpoint; st.ResidentBytes > st.BudgetBytes {
			t.Fatalf("seed %d: resident %d > budget %d", seed, st.ResidentBytes, st.BudgetBytes)
		}
	}
	if faulted == 0 {
		t.Error("no injected fault surfaced across all seeds; schedule rates too low to test anything")
	}
	t.Logf("fault sweep: %d failures surfaced, %d points served clean", faulted, served)

	ts.Close()
	s.Close()
	checkGoroutines(t, base)
}

// checkFaultResponse asserts a handler response under fault injection is
// either a success or a classified error body.
func checkFaultResponse(t *testing.T, seed uint64, path string, status int, body []byte, faulted, served *int) {
	t.Helper()
	if status == http.StatusOK {
		*served++
		return
	}
	*faulted++
	var eb struct {
		Error *ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil {
		t.Errorf("seed %d %s: status %d body not an error envelope: %s", seed, path, status, body)
		return
	}
	if eb.Error.Kind == "" || eb.Error.Kind == "unclassified" {
		t.Errorf("seed %d %s: unclassified error (status %d): %s", seed, path, status, body)
	}
}
