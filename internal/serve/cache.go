package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/exp"
)

// ckKind distinguishes the two checkpoint depths the cache retains,
// mirroring exp's two sharing classes.
type ckKind uint8

const (
	ckSynth  ckKind = iota // post-synthesis root (StageSynth)
	ckPrefix               // placed-and-clocked prefix (StageCTS)
)

func (k ckKind) String() string {
	if k == ckSynth {
		return "synth"
	}
	return "prefix"
}

// ckKey is the comparable identity of one checkpoint: the sharing class
// of the staged work it holds. pc is the zero value for synth roots.
type ckKey struct {
	kind ckKind
	sc   exp.SynthClass
	pc   exp.PrefixClass
}

// ckEntry is one cached checkpoint. Until ready closes, the entry is a
// pending build owned by the goroutine that inserted it — concurrent
// requests for the same key coalesce by waiting on ready instead of
// building their own copy. Failed builds never stay cached: the builder
// removes the entry before closing ready, so the next request retries
// from scratch (the same never-cache-failures contract as exp's
// synthesis roots).
type ckEntry struct {
	key   ckKey
	ready chan struct{}
	flow  *core.Flow // set before ready closes on success
	err   error      // set before ready closes on failure

	bytes  int64 // measured footprint (core.Flow.FootprintBytes)
	costNs int64 // rebuild cost: sum of the checkpoint's StageTimes
	elem   *list.Element
}

// ckStats is a point-in-time snapshot of the cache counters.
type ckStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Coalesced     int64 `json:"coalesced"`
	Evictions     int64 `json:"evictions"`
	Entries       int   `json:"entries"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// ckCache is the cross-request checkpoint cache: an LRU of staged
// core.Flow sessions keyed by sharing class, bounded by the measured
// byte footprint of the retained sessions. Eviction is cost-aware: among
// the least-recently-used tail it drops the entry with the worst
// bytes-per-rebuild-nanosecond, so a cheap-to-rebuild synthesis root goes
// before an expensive placed prefix of the same size. Evicted sessions
// stay valid for requests already forking off them — the cache drops its
// reference, the garbage collector waits for theirs.
type ckCache struct {
	mu      sync.Mutex
	budget  int64
	entries map[ckKey]*ckEntry
	lru     *list.List // Front = most recently used; values are *ckEntry

	resident                           int64
	hits, misses, coalesced, evictions int64
}

func newCkCache(budgetBytes int64) *ckCache {
	return &ckCache{
		budget:  budgetBytes,
		entries: make(map[ckKey]*ckEntry),
		lru:     list.New(),
	}
}

// getOrBuild returns the checkpoint session for key, building it with
// build on first use. Exactly one goroutine builds a given key at a time;
// the others coalesce onto the pending build and wait for it under their
// own request context (waitCtx), so a client disconnect abandons the wait
// without disturbing the shared build. The reported hit is true when the
// session came from cache (including a coalesced wait) and false when
// this call built it.
func (c *ckCache) getOrBuild(waitCtx context.Context, key ckKey, build func() (*core.Flow, error)) (flow *core.Flow, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			// Only successful builds stay in the map once ready closes.
			c.hits++
			c.touchLocked(e)
			c.mu.Unlock()
			return e.flow, true, nil
		default:
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err != nil {
					return nil, false, e.err
				}
				c.mu.Lock()
				if c.entries[key] == e {
					c.touchLocked(e)
				}
				c.mu.Unlock()
				return e.flow, true, nil
			case <-waitCtx.Done():
				return nil, false, waitCtx.Err()
			}
		}
	}
	e := &ckEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	flow, err = runBuild(build)
	if err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		e.err = err
		close(e.ready)
		c.mu.Unlock()
		return nil, false, err
	}
	e.flow = flow
	e.bytes = flow.FootprintBytes()
	e.costNs = checkpointCostNs(flow)
	c.mu.Lock()
	c.resident += e.bytes
	e.elem = c.lru.PushFront(e)
	close(e.ready)
	c.evictLocked()
	c.mu.Unlock()
	return flow, false, nil
}

// runBuild contains builder panics the same way exp contains sweep-point
// panics: a panicking stage body must kill only this build, not the
// daemon.
func runBuild(build func() (*core.Flow, error)) (flow *core.Flow, err error) {
	defer func() {
		if r := recover(); r != nil {
			flow, err = nil, core.NewPanicError("serve.checkpoint", r)
		}
	}()
	return build()
}

// touchLocked moves e to the LRU front.
func (c *ckCache) touchLocked(e *ckEntry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evictLocked drops entries until the resident footprint fits the
// budget. The victim is chosen from the least-recently-used tail (a
// small window, so recency still dominates): the entry with the lowest
// rebuild-cost-per-byte goes first. An entry larger than the whole
// budget is evicted immediately — its waiters already hold the session
// reference, the cache just declines to retain it.
func (c *ckCache) evictLocked() {
	const window = 4
	for c.resident > c.budget && c.lru.Len() > 0 {
		victim := c.lru.Back()
		best := victim.Value.(*ckEntry)
		bestScore := score(best)
		for el, i := victim.Prev(), 1; el != nil && i < window; el, i = el.Prev(), i+1 {
			if e := el.Value.(*ckEntry); score(e) < bestScore {
				victim, best, bestScore = el, e, score(e)
			}
		}
		c.lru.Remove(victim)
		delete(c.entries, best.key)
		best.elem = nil
		c.resident -= best.bytes
		c.evictions++
	}
}

// score ranks eviction candidates: rebuild nanoseconds bought per
// resident byte. Lower is a better victim.
func score(e *ckEntry) float64 {
	b := e.bytes
	if b <= 0 {
		b = 1
	}
	return float64(e.costNs) / float64(b)
}

// checkpointCostNs sums the stage times the checkpoint retains — the
// wall-clock a rebuild would pay again.
func checkpointCostNs(f *core.Flow) int64 {
	var total int64
	for _, d := range f.Result().StageTimes {
		total += d.Nanoseconds()
	}
	return total
}

func (c *ckCache) stats() ckStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ckStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Evictions:     c.evictions,
		Entries:       len(c.entries),
		ResidentBytes: c.resident,
		BudgetBytes:   c.budget,
	}
}
