package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/exp"
)

// benchSweep posts one 5-point sweep through the handler and fails the
// benchmark on any non-200.
func benchSweep(b *testing.B, h http.Handler, req SweepRequest) {
	b.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/sweep", bytes.NewReader(body))
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeSweep measures a 5-point back-pin sweep through the
// daemon handler. The cold arm pays everything per iteration — suite
// construction, synthesis root, placed prefix, five tails. The warm arm
// reuses one daemon and shifts the sweep values each iteration, so the
// result memo never answers but the checkpoint cache serves the staged
// prefix: the delta between the arms is what the cross-request cache
// buys a repeat client.
func BenchmarkServeSweep(b *testing.B) {
	mkReq := func(offset float64) SweepRequest {
		return SweepRequest{
			Base: FlowSpec{Front: 4, Back: 4, TargetGHz: 1.4, Util: 0.72},
			Axis: "back_pins",
			Values: []float64{
				0.10 + offset, 0.28 + offset, 0.46 + offset, 0.64 + offset, 0.82 + offset,
			},
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := New(Options{Scale: exp.Quick})
			if err != nil {
				b.Fatal(err)
			}
			benchSweep(b, s.Handler(), mkReq(0))
			s.Close()
		}
	})

	b.Run("warm", func(b *testing.B) {
		s, err := New(Options{Scale: exp.Quick})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		h := s.Handler()
		benchSweep(b, h, mkReq(0)) // charge the checkpoint cache outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh offset per iteration keeps every leaf config novel
			// (memo misses) while the sharing classes stay fixed
			// (checkpoint hits).
			benchSweep(b, h, mkReq(float64(i%1000+1)*0.0001))
		}
	})
}
