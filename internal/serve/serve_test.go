package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/tech"
	"repro/internal/variation"
)

// baseSpec is the cheap quick-scale point the tests revolve around.
var baseSpec = FlowSpec{Front: 4, Back: 4, TargetGHz: 1.4, Util: 0.72, BackPins: 0.4}

func newTestServer(t testing.TB, opt Options) *Server {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// offlineBody runs sp through the from-scratch offline path — no staged
// sessions, no forks, no caches — and returns the marshaled Summary. The
// daemon path shares only the config mapping and the Summary encoding, so
// byte-equality against this is the golden contract.
func offlineBody(t testing.TB, s *Server, sp FlowSpec) json.RawMessage {
	t.Helper()
	arch, cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunFlowCtx(context.Background(), s.suite.Netlist(arch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(NewSummary(res))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func wrapResult(t testing.TB, b json.RawMessage) []byte {
	t.Helper()
	resp, err := json.Marshal(struct {
		Result json.RawMessage `json:"result"`
	}{b})
	if err != nil {
		t.Fatal(err)
	}
	return append(resp, '\n')
}

func wrapResults(t testing.TB, bs []json.RawMessage) []byte {
	t.Helper()
	resp, err := json.Marshal(struct {
		Results []json.RawMessage `json:"results"`
	}{bs})
	if err != nil {
		t.Fatal(err)
	}
	return append(resp, '\n')
}

func post(t testing.TB, ts *httptest.Server, path string, req any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, got
}

func getStats(t testing.TB, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFlowGoldenMemoAndStream: a /v1/flow response is byte-identical to
// the offline path, an exact repeat is served from the result memo with
// the same bytes, and the streaming variant's terminal "done" event
// carries those bytes verbatim.
func TestFlowGoldenMemoAndStream(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := wrapResult(t, offlineBody(t, s, baseSpec))
	status, got := post(t, ts, "/v1/flow", baseSpec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon response differs from offline path:\n got %s\nwant %s", got, want)
	}

	// Exact repeat: memo hit, identical bytes.
	status, again := post(t, ts, "/v1/flow", baseSpec)
	if status != http.StatusOK || !bytes.Equal(again, got) {
		t.Fatalf("memoized repeat differs: status %d\n got %s\nwant %s", status, again, got)
	}
	st := getStats(t, ts)
	if st.Memo.Hits < 1 || st.Memo.Entries != 1 {
		t.Fatalf("memo counters after repeat: %+v", st.Memo)
	}

	// Streaming: NDJSON events terminated by a "done" event whose Data is
	// the exact non-streaming body.
	body, _ := json.Marshal(baseSpec)
	resp, err := ts.Client().Post(ts.URL+"/v1/flow?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var last event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad final event %q: %v", lines[len(lines)-1], err)
	}
	if last.Event != "done" {
		t.Fatalf("final event %q, want done (lines: %v)", last.Event, lines)
	}
	if !bytes.Equal(append(last.Data, '\n'), want) {
		t.Fatalf("stream done payload differs from plain body:\n got %s\nwant %s", last.Data, want)
	}
	// Single-flow events are not sweep points: the point field must be
	// omitted so stream consumers can tell them from a sweep's point 0.
	for _, ln := range lines {
		if strings.Contains(ln, `"point"`) {
			t.Errorf("single-flow stream event carries a sweep point field: %s", ln)
		}
	}
}

// TestHaltedFlowTerminates: an API-valid but infeasible config — util
// past the FFET powerplan's tap ceiling — halts mid-pipeline, and a
// halted session stops advancing its stage cursor. Regression test for
// the handler busy-loop: the daemon must answer with the offline path's
// Valid=false summary (and a finite stream) instead of spinning on
// NextStage forever, and an MC study on the halted base must come back
// as a classified error.
func TestHaltedFlowTerminates(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sp := baseSpec
	sp.Util = 0.99

	// The config must actually halt offline, or this test degenerates
	// into a second copy of the plain golden check.
	arch, cfg, err := sp.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunFlowCtx(context.Background(), s.suite.Netlist(arch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid || res.Reason == "" {
		t.Fatalf("util %.2f did not halt offline (valid=%v reason=%q)", sp.Util, res.Valid, res.Reason)
	}
	b, err := json.Marshal(NewSummary(res))
	if err != nil {
		t.Fatal(err)
	}
	want := wrapResult(t, b)

	// Bound every request so a reintroduced busy-loop fails the test
	// instead of hanging it (and the suite) forever.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	do := func(path string, payload any) (int, []byte) {
		t.Helper()
		body, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s with halted config did not complete: %v", path, err)
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("%s with halted config: body read: %v", path, err)
		}
		return resp.StatusCode, got
	}

	status, got := do("/v1/flow", sp)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("halted flow: status %d\n got %s\nwant %s", status, got, want)
	}

	// The streaming variant must terminate with the same done payload,
	// not an unbounded stage-event stream.
	status, raw := do("/v1/flow?stream=1", sp)
	if status != http.StatusOK {
		t.Fatalf("halted stream: status %d: %s", status, raw)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var last event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad final event %q: %v", lines[len(lines)-1], err)
	}
	if last.Event != "done" || !bytes.Equal(append(last.Data, '\n'), want) {
		t.Fatalf("halted stream final event %q payload differs:\n got %s\nwant %s", last.Event, last.Data, want)
	}

	// MC on a halted base: VariationBasis rejects the invalid flow, and
	// the rejection must surface as a classified error body.
	status, got = do("/v1/mc", MCRequest{Base: sp, Samples: 16, Seed: 7})
	if status != http.StatusInternalServerError {
		t.Fatalf("mc on halted base: status %d: %s", status, got)
	}
	var eb struct {
		Error *ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(got, &eb); err != nil || eb.Error == nil ||
		eb.Error.Kind == "" || eb.Error.Kind == "unclassified" {
		t.Fatalf("mc on halted base: not a classified error body: %s", got)
	}
}

// TestMemoEviction: the exact-config result memo is an entry-count LRU
// bounded by MemoEntries — regression test for unbounded growth in a
// long-running daemon. An evicted config recomputes through the
// still-cached checkpoints to identical bytes and re-enters the memo.
func TestMemoEviction(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick, MemoEntries: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pins := []float64{0.1, 0.5, 0.9}
	wants := make([][]byte, len(pins))
	for i, bp := range pins {
		sp := baseSpec
		sp.BackPins = bp
		wants[i] = wrapResult(t, offlineBody(t, s, sp))
		status, got := post(t, ts, "/v1/flow", sp)
		if status != http.StatusOK || !bytes.Equal(got, wants[i]) {
			t.Fatalf("point %d: status %d\n got %s\nwant %s", i, status, got, wants[i])
		}
	}
	st := getStats(t, ts)
	if st.Memo.Entries != 2 || st.Memo.Evictions != 1 || st.Memo.MaxEntries != 2 {
		t.Fatalf("memo not LRU-bounded after %d distinct configs: %+v", len(pins), st.Memo)
	}

	// The first config is the LRU victim; re-requesting it must
	// recompute the same bytes and evict the next-oldest in turn.
	sp := baseSpec
	sp.BackPins = pins[0]
	status, got := post(t, ts, "/v1/flow", sp)
	if status != http.StatusOK || !bytes.Equal(got, wants[0]) {
		t.Fatalf("evicted config recompute: status %d\n got %s\nwant %s", status, got, wants[0])
	}
	if m := getStats(t, ts).Memo; m.Entries != 2 || m.Evictions != 2 {
		t.Fatalf("memo after recompute: %+v", m)
	}
}

// TestSweepGoldenAndCheckpointSharing: a 5-point back-pin sweep through
// the daemon is byte-identical to the offline per-point path, and the
// points share one synth root and one placed-and-clocked prefix (two
// cache misses total, every other checkpoint access a hit or a coalesced
// wait).
func TestSweepGoldenAndCheckpointSharing(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SweepRequest{Base: baseSpec, Axis: "back_pins", Values: []float64{0.1, 0.3, 0.5, 0.7, 0.9}}
	specs, err := req.Points()
	if err != nil {
		t.Fatal(err)
	}
	offline := make([]json.RawMessage, len(specs))
	for i, sp := range specs {
		offline[i] = offlineBody(t, s, sp)
	}
	want := wrapResults(t, offline)

	status, got := post(t, ts, "/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sweep response differs from offline path:\n got %s\nwant %s", got, want)
	}

	st := getStats(t, ts)
	ck := st.Checkpoint
	if ck.Misses != 2 {
		t.Fatalf("checkpoint misses = %d, want 2 (one synth root + one prefix): %+v", ck.Misses, ck)
	}
	if ck.Hits+ck.Coalesced != 2*int64(len(specs))-2 {
		t.Fatalf("hits %d + coalesced %d, want %d: %+v", ck.Hits, ck.Coalesced, 2*len(specs)-2, ck)
	}
	if ck.Entries != 2 {
		t.Fatalf("checkpoint entries = %d, want 2", ck.Entries)
	}
	if ck.ResidentBytes <= 0 || ck.ResidentBytes > ck.BudgetBytes {
		t.Fatalf("resident %d outside (0, budget %d]", ck.ResidentBytes, ck.BudgetBytes)
	}
	if st.Memo.Entries != len(specs) {
		t.Fatalf("memo entries = %d, want %d", st.Memo.Entries, len(specs))
	}

	// Streamed repeat (all memo hits): per-point events carry their
	// point index — unlike single-flow streams, which omit it — and the
	// terminal done event is the exact non-streaming body.
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var sawPoint bool
	for _, ln := range lines {
		var ev event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad stream event %q: %v", ln, err)
		}
		sawPoint = sawPoint || ev.Point != nil
	}
	if !sawPoint {
		t.Fatalf("no sweep stream event carried a point index: %s", raw)
	}
	var last event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "done" || !bytes.Equal(append(last.Data, '\n'), want) {
		t.Fatalf("sweep stream final event %q payload differs from plain body", last.Event)
	}
}

// TestSweepFreqDiffChain: a dense target_ghz sweep chains its later
// points through the synth-diff fork — the sweep counters and the
// "synthdiff" stream events prove it — while every point's bytes stay
// identical to the offline from-scratch path, cold and warm.
func TestSweepFreqDiffChain(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	checkOffline := func(req SweepRequest, got []byte) {
		t.Helper()
		specs, err := req.Points()
		if err != nil {
			t.Fatal(err)
		}
		offline := make([]json.RawMessage, len(specs))
		for i, sp := range specs {
			offline[i] = offlineBody(t, s, sp)
		}
		if want := wrapResults(t, offline); !bytes.Equal(got, want) {
			t.Fatalf("chained sweep differs from offline path:\n got %s\nwant %s", got, want)
		}
	}

	cold := SweepRequest{Base: baseSpec, Axis: "target_ghz", Values: []float64{1.4, 1.403, 1.406}}
	status, got := post(t, ts, "/v1/sweep", cold)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	checkOffline(cold, got)

	st := getStats(t, ts)
	if st.Sweep.FullSynthForks != 1 {
		t.Fatalf("cold chain must run exactly one full leader, got %+v", st.Sweep)
	}
	if n := st.Sweep.DiffForks + st.Sweep.DiffFallbacks; n != 2 {
		t.Fatalf("cold chain must attempt 2 diff hops, got %d: %+v", n, st.Sweep)
	}
	if st.Sweep.DiffForks == 0 {
		t.Fatalf("no cold hop stayed on the diff path: %+v", st.Sweep)
	}

	// Warm daemon, fresh neighboring targets: the checkpoint cache feeds
	// the chain's first point, the second diff-forks it, and the stream
	// says so.
	warm := SweepRequest{Base: baseSpec, Axis: "target_ghz", Values: []float64{1.4015, 1.4045}}
	body, _ := json.Marshal(warm)
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var sawDiff bool
	for _, ln := range lines {
		var ev event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad stream event %q: %v", ln, err)
		}
		if ev.Event == "checkpoint" && ev.Kind == "synthdiff" && ev.Hit != nil && *ev.Hit {
			sawDiff = true
		}
	}
	var last event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "done" {
		t.Fatalf("stream ended with %q: %s", last.Event, raw)
	}
	checkOffline(warm, append(last.Data, '\n'))
	if !sawDiff {
		t.Fatalf("warm sweep stream carried no taken synthdiff event:\n%s", raw)
	}
	wst := getStats(t, ts)
	if wst.Sweep.FullSynthForks != 2 {
		t.Fatalf("warm chain must add exactly one full leader, got %+v", wst.Sweep)
	}
	if wst.Sweep.DiffForks <= st.Sweep.DiffForks {
		t.Fatalf("warm sweep did not take the diff path: cold %+v warm %+v", st.Sweep, wst.Sweep)
	}
}

// TestConcurrentClientsShareCheckpoints: N clients firing the same sweep
// at once still build each checkpoint exactly once (misses stays 2, the
// rest coalesce or hit) and every client reads identical bytes.
func TestConcurrentClientsShareCheckpoints(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SweepRequest{Base: baseSpec, Axis: "back_pins", Values: []float64{0.15, 0.45, 0.75}}
	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, got := post(t, ts, "/v1/sweep", req)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, got)
				return
			}
			bodies[i] = got
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d response differs from client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	st := getStats(t, ts)
	if st.Checkpoint.Misses != 2 {
		t.Fatalf("%d clients caused %d checkpoint builds, want 2: %+v", clients, st.Checkpoint.Misses, st.Checkpoint)
	}
	if st.Memo.Entries != len(req.Values) {
		t.Fatalf("memo entries = %d, want %d", st.Memo.Entries, len(req.Values))
	}
}

// TestEvictionUnderPressure: with a budget sized for roughly one sharing
// class, flows across three synth classes force evictions, the resident
// footprint never exceeds the budget, and an evicted class rebuilds
// correctly on re-request.
func TestEvictionUnderPressure(t *testing.T) {
	// Measure one class's retained footprint on an unconstrained server.
	probe := newTestServer(t, Options{Scale: exp.Quick})
	pts := httptest.NewServer(probe.Handler())
	status, got := post(t, pts, "/v1/flow", baseSpec)
	if status != http.StatusOK {
		t.Fatalf("probe flow: status %d: %s", status, got)
	}
	classBytes := getStats(t, pts).Checkpoint.ResidentBytes
	pts.Close()
	probe.Close()
	if classBytes <= 0 {
		t.Fatalf("probe resident bytes = %d", classBytes)
	}

	// Budget: one class plus 25% headroom — two classes cannot coexist.
	s := newTestServer(t, Options{Scale: exp.Quick, CacheBytes: classBytes + classBytes/4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	targets := []float64{1.2, 1.5, 1.8} // distinct synth classes
	wants := make([][]byte, len(targets))
	for i, tg := range targets {
		sp := baseSpec
		sp.TargetGHz = tg
		wants[i] = wrapResult(t, offlineBody(t, s, sp))
		status, got := post(t, ts, "/v1/flow", sp)
		if status != http.StatusOK {
			t.Fatalf("target %.1f: status %d: %s", tg, status, got)
		}
		if !bytes.Equal(got, wants[i]) {
			t.Fatalf("target %.1f differs from offline path", tg)
		}
		if st := getStats(t, ts).Checkpoint; st.ResidentBytes > st.BudgetBytes {
			t.Fatalf("after target %.1f: resident %d > budget %d", tg, st.ResidentBytes, st.BudgetBytes)
		}
	}
	st := getStats(t, ts).Checkpoint
	if st.Evictions == 0 {
		t.Fatalf("three classes under a one-class budget caused no evictions: %+v", st)
	}

	// Re-request the first (long evicted) class with a fresh leaf config
	// so the memo can't answer: the checkpoints must rebuild cleanly.
	sp := baseSpec
	sp.TargetGHz = targets[0]
	sp.BackPins = 0.9
	want := wrapResult(t, offlineBody(t, s, sp))
	status, got = post(t, ts, "/v1/flow", sp)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("rebuild after eviction: status %d\n got %s\nwant %s", status, got, want)
	}
	if st := getStats(t, ts).Checkpoint; st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("after rebuild: resident %d > budget %d", st.ResidentBytes, st.BudgetBytes)
	}
}

// TestEvictionScoring exercises the cost-aware LRU-tail policy on
// synthetic entries: the cheapest-to-rebuild-per-byte entry in the tail
// window goes first, and an entry larger than the whole budget is dropped
// immediately.
func TestEvictionScoring(t *testing.T) {
	mkKey := func(target float64) ckKey {
		cfg := core.DefaultFlowConfig(tech.Pattern{Front: 4, Back: 4}, target, 0.7)
		sc, _ := exp.ClassKeys(tech.FFET, cfg)
		return ckKey{kind: ckSynth, sc: sc}
	}
	c := newCkCache(100)
	add := func(target float64, bytes, costNs int64) *ckEntry {
		e := &ckEntry{key: mkKey(target), ready: make(chan struct{}), bytes: bytes, costNs: costNs}
		close(e.ready)
		c.mu.Lock()
		c.entries[e.key] = e
		c.resident += bytes
		e.elem = c.lru.PushFront(e)
		c.evictLocked()
		c.mu.Unlock()
		return e
	}

	a := add(1.0, 40, 400) // score 10 ns/byte
	b := add(1.1, 40, 40)  // score 1 — the designated victim
	cc := add(1.2, 40, 4000)
	c.mu.Lock()
	_, hasA := c.entries[a.key]
	_, hasB := c.entries[b.key]
	_, hasC := c.entries[cc.key]
	resident, evictions := c.resident, c.evictions
	c.mu.Unlock()
	if !hasA || hasB || !hasC {
		t.Fatalf("victim selection wrong: a=%v b=%v c=%v", hasA, hasB, hasC)
	}
	if resident != 80 || evictions != 1 {
		t.Fatalf("resident %d evictions %d, want 80/1", resident, evictions)
	}

	// An entry bigger than the entire budget cannot be retained.
	d := add(1.3, 200, 1)
	c.mu.Lock()
	_, hasD := c.entries[d.key]
	resident = c.resident
	c.mu.Unlock()
	if hasD {
		t.Fatal("over-budget entry retained")
	}
	if resident > 100 {
		t.Fatalf("resident %d > budget after over-budget insert", resident)
	}
}

// TestAdmissionAndDrain: requests past the queue bound are rejected with
// 429, a draining server answers 503, and freed slots admit again.
func TestAdmissionAndDrain(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick, MaxWorkers: 1, MaxQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker slot so real requests queue behind it. The
	// admission bound is MaxWorkers+MaxQueue = 2 waiters, so two blocked
	// clients fill it and a third must bounce.
	s.sem <- struct{}{}

	ctx, cancel := context.WithCancel(context.Background())
	const waiters = 2
	// A cancelled waiter either errors client-side or races the server's
	// 499 response; both count as a clean abandon.
	blocked := make(chan int, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			body, _ := json.Marshal(baseSpec)
			req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/flow", bytes.NewReader(body))
			resp, err := ts.Client().Do(req)
			if err != nil {
				blocked <- -1
				return
			}
			resp.Body.Close()
			blocked <- resp.StatusCode
		}()
	}
	// Wait until both are actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests queued", s.queued.Load(), waiters)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next request exceeds MaxQueue+MaxWorkers and must bounce.
	status, got := post(t, ts, "/v1/flow", baseSpec)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d: %s", status, got)
	}
	var eb struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(got, &eb); err != nil || eb.Error.Kind == "" {
		t.Fatalf("429 body not a classified error: %s (%v)", got, err)
	}

	// Abandon the queued clients and free the worker slot.
	cancel()
	for i := 0; i < waiters; i++ {
		if code := <-blocked; code != -1 && code != 499 {
			t.Errorf("cancelled queued request finished with status %d", code)
		}
	}
	<-s.sem

	s.StartDrain()
	status, got = post(t, ts, "/v1/flow", baseSpec)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining request: status %d: %s", status, got)
	}
	s.draining.Store(false)

	want := wrapResult(t, offlineBody(t, s, baseSpec))
	status, got = post(t, ts, "/v1/flow", baseSpec)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-drain request: status %d\n got %s\nwant %s", status, got, want)
	}
}

// TestInvalidRequests: malformed specs are 400 invalid_config before any
// flow work is admitted.
func TestInvalidRequests(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		body string
	}{
		{"/v1/flow", `{"front":4,"target_ghz":0,"util":0.7}`},
		{"/v1/flow", `{"front":4,"target_ghz":1.4,"util":0.7,"arch":"GAA"}`},
		{"/v1/flow", `{"front":4,"target_ghz":1.4,"util":0.7,"bogus":1}`},
		{"/v1/sweep", `{"base":{"front":4,"target_ghz":1.4,"util":0.7},"axis":"nm","values":[1]}`},
		{"/v1/sweep", `{"base":{"front":4,"target_ghz":1.4,"util":0.7},"axis":"util","values":[]}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400: %s", tc.path, tc.body, resp.StatusCode, got)
		}
		if !bytes.Contains(got, []byte("invalid_config")) {
			t.Errorf("%s %s: body lacks invalid_config: %s", tc.path, tc.body, got)
		}
	}
	if st := getStats(t, ts); st.Requests.Accepted != 0 {
		t.Fatalf("invalid requests were admitted: %+v", st.Requests)
	}
}

// TestCancelDisconnectStress hammers the daemon with clients that vanish
// at varied points of the flow — while queued, mid-build, mid-tail — and
// asserts the server stays coherent: later requests still produce
// offline-identical bytes, the cache respects its budget, and no
// goroutines are left behind. Run with -race.
func TestCancelDisconnectStress(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, Options{Scale: exp.Quick, MaxWorkers: 3, MaxQueue: 32})
	ts := httptest.NewServer(s.Handler())

	iters := 28
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for i := 0; i < iters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deterministically varied deadlines: some die while queued,
			// some mid-stage, some finish.
			timeout := time.Duration(5+i*17%140) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			sp := baseSpec
			sp.BackPins = float64(i%5) * 0.2
			body, _ := json.Marshal(sp)
			req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/flow", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				return // client-side cancellation: expected
			}
			defer resp.Body.Close()
			got, _ := io.ReadAll(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
			case 499:
				var eb struct {
					Error ErrorBody `json:"error"`
				}
				if err := json.Unmarshal(got, &eb); err != nil || eb.Error.Kind != "cancelled" {
					t.Errorf("499 body not a cancelled error: %s", got)
				}
			default:
				t.Errorf("iter %d: unexpected status %d: %s", i, resp.StatusCode, got)
			}
		}(i)
	}
	wg.Wait()

	// The daemon must still serve correct bytes after the carnage.
	sp := baseSpec
	sp.BackPins = 0.6
	want := wrapResult(t, offlineBody(t, s, sp))
	status, got := post(t, ts, "/v1/flow", sp)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-stress request: status %d\n got %s\nwant %s", status, got, want)
	}
	st := getStats(t, ts)
	if st.Checkpoint.ResidentBytes > st.Checkpoint.BudgetBytes {
		t.Fatalf("resident %d > budget %d", st.Checkpoint.ResidentBytes, st.Checkpoint.BudgetBytes)
	}
	if st.Requests.Inflight != 0 || st.Requests.Queued != 0 {
		t.Fatalf("leftover inflight/queued work: %+v", st.Requests)
	}

	ts.Close()
	s.Close()
	checkGoroutines(t, base)
}

// checkGoroutines waits for the goroutine count to settle back near base.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMCEndpoint: /v1/mc through the daemon matches the offline basis +
// variation.Study path byte for byte (summaries are worker-count
// independent by the variation package's contract).
func TestMCEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := MCRequest{Base: baseSpec, Samples: 256, Seed: 7}
	status, got := post(t, ts, "/v1/mc", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}

	arch, cfg, err := req.Base.Config()
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFlow(s.suite.Netlist(arch), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	basis, err := f.VariationBasis()
	if err != nil {
		t.Fatal(err)
	}
	opt := variation.DefaultOptions()
	opt.Samples = req.Samples
	opt.Seed = req.Seed
	sum, err := variation.Study(context.Background(), basis, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(struct {
		MC MCSummary `json:"mc"`
	}{NewMCSummary(sum)})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(got, want) {
		t.Fatalf("mc response differs from offline path:\n got %s\nwant %s", got, want)
	}
}

// TestExpEndpoint: /v1/exp serves an experiment table and the stats
// endpoint republishes the suite's synth-root counters.
func TestExpEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tables are slow; skipped under -short")
	}
	s := newTestServer(t, Options{Scale: exp.Quick})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/exp?id=fig04")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	var out struct {
		Table *exp.Table `json:"table"`
		Err   string     `json:"error"`
	}
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatal(err)
	}
	if out.Table == nil || out.Err != "" || len(out.Table.Rows) == 0 {
		t.Fatalf("bad table payload: %s", got)
	}

	// fig04 is a cell-area table (no flows); a sweep experiment must leave
	// synth-root traffic in the suite counters /debug/stats republishes.
	resp, err = ts.Client().Get(ts.URL + "/v1/exp?id=fig08a")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig08a: status %d", resp.StatusCode)
	}
	if st := getStats(t, ts); st.Exp.SynthRootMisses == 0 {
		t.Fatalf("exp synth-root counters not published: %+v", st.Exp)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/exp?id=nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
}
