// Package serve implements the ffetd daemon: a long-running HTTP+JSON
// front end over the staged flow. It accepts single-flow, sweep and
// Monte Carlo variation requests, dedupes concurrent requests whose
// sharing classes match onto one in-flight staged prefix (the checkpoint
// cache), streams per-stage progress as NDJSON, memoizes exact-config
// results, and bounds admission with a worker pool. Responses are
// byte-identical to the offline ffetexp/ffetflow paths: the daemon runs
// the same staged sessions, forked at the same class boundaries, under
// the same configs.
package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/tech"
	"repro/internal/variation"
)

// FlowSpec is the wire form of one flow configuration. It maps onto
// core.DefaultFlowConfig exactly the way the CLIs do, so a daemon run
// and an offline run of the same spec execute the same FlowConfig.
// TargetGHz, Util and Front are required; zero Aspect, Seed and MaxDRVs
// take the flow defaults (1.0, 1, 10).
type FlowSpec struct {
	Arch      string  `json:"arch,omitempty"` // "FFET" (default) or "CFET"
	Front     int     `json:"front"`
	Back      int     `json:"back,omitempty"`
	TargetGHz float64 `json:"target_ghz"`
	Util      float64 `json:"util"`
	Aspect    float64 `json:"aspect,omitempty"`
	BackPins  float64 `json:"back_pins,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	MaxDRVs   int     `json:"max_drvs,omitempty"`
}

// Config resolves the spec to the architecture and full flow config.
// The config name is rendered from the config fields alone, so identical
// specs — from any client — produce identical configs, results and
// response bytes.
func (sp FlowSpec) Config() (tech.Arch, core.FlowConfig, error) {
	var arch tech.Arch
	switch strings.ToUpper(sp.Arch) {
	case "", "FFET":
		arch = tech.FFET
	case "CFET":
		arch = tech.CFET
	default:
		return 0, core.FlowConfig{}, fmt.Errorf("serve: unknown arch %q (want FFET or CFET)", sp.Arch)
	}
	if sp.TargetGHz <= 0 {
		return 0, core.FlowConfig{}, fmt.Errorf("serve: target_ghz must be > 0")
	}
	if sp.Util <= 0 {
		return 0, core.FlowConfig{}, fmt.Errorf("serve: util must be > 0")
	}
	if sp.Front <= 0 {
		return 0, core.FlowConfig{}, fmt.Errorf("serve: front metal count must be > 0")
	}
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: sp.Front, Back: sp.Back}, sp.TargetGHz, sp.Util)
	if sp.Aspect > 0 {
		cfg.AspectRatio = sp.Aspect
	}
	cfg.BackPinFraction = sp.BackPins
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}
	if sp.MaxDRVs > 0 {
		cfg.MaxDRVs = sp.MaxDRVs
	}
	cfg.Name = fmt.Sprintf("%s-F%dB%d-t%.3g-u%.3g-a%.3g-bp%.3g-s%d",
		arch, cfg.Pattern.Front, cfg.Pattern.Back, cfg.TargetFreqGHz,
		cfg.Utilization, cfg.AspectRatio, cfg.BackPinFraction, cfg.Seed)
	return arch, cfg, nil
}

// SweepRequest sweeps one axis of a base spec. The points share staged
// prefixes through the checkpoint cache exactly like an exp sweep group.
type SweepRequest struct {
	Base   FlowSpec  `json:"base"`
	Axis   string    `json:"axis"` // back_pins | util | target_ghz | aspect | seed
	Values []float64 `json:"values"`
}

// Points expands the sweep into one spec per value.
func (r SweepRequest) Points() ([]FlowSpec, error) {
	if len(r.Values) == 0 {
		return nil, fmt.Errorf("serve: sweep needs at least one value")
	}
	out := make([]FlowSpec, len(r.Values))
	for i, v := range r.Values {
		sp := r.Base
		switch r.Axis {
		case "back_pins":
			sp.BackPins = v
		case "util":
			sp.Util = v
		case "target_ghz":
			sp.TargetGHz = v
		case "aspect":
			sp.Aspect = v
		case "seed":
			sp.Seed = int64(v)
		default:
			return nil, fmt.Errorf("serve: unknown sweep axis %q", r.Axis)
		}
		out[i] = sp
	}
	return out, nil
}

// MCRequest runs a Monte Carlo overlay-variation study on the flow the
// base spec describes. Zero option fields take variation.DefaultOptions.
type MCRequest struct {
	Base    FlowSpec `json:"base"`
	Samples int      `json:"samples,omitempty"`
	Workers int      `json:"workers,omitempty"`
	Seed    uint64   `json:"seed,omitempty"`
	SigmaNm float64  `json:"sigma_nm,omitempty"`
	FloorFF float64  `json:"floor_ff,omitempty"`
}

// Summary is the deterministic result payload of one flow run: the PPA
// metrics the paper's tables report, with stable field order and Go's
// shortest-round-trip float rendering. Deliberately excluded: StageTimes
// (wall-clock, nondeterministic) and the DEF artifacts (megabytes; the
// offline CLIs write those). Byte-identity between daemon and offline
// paths is asserted over this encoding.
type Summary struct {
	Arch   string `json:"arch"`
	Name   string `json:"name"`
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`

	CoreAreaUm2     float64 `json:"core_area_um2"`
	RealUtilization float64 `json:"real_utilization"`
	CellAreaUm2     float64 `json:"cell_area_um2"`
	HPWLUm          float64 `json:"hpwl_um"`
	WirelenFrontUm  float64 `json:"wirelen_front_um"`
	WirelenBackUm   float64 `json:"wirelen_back_um"`
	DRVsFront       int     `json:"drvs_front"`
	DRVsBack        int     `json:"drvs_back"`
	Vias            int     `json:"vias"`
	CTSBuffers      int     `json:"cts_buffers"`
	SynthBuffers    int     `json:"synth_buffers"`

	AchievedFreqGHz float64 `json:"achieved_freq_ghz"`
	MinPeriodPs     float64 `json:"min_period_ps"`
	PowerUW         float64 `json:"power_uw"`
	EffGHzPerW      float64 `json:"eff_ghz_per_w"`
}

// NewSummary projects a flow result onto the wire form.
func NewSummary(res *core.FlowResult) Summary {
	return Summary{
		Arch:            res.Arch.String(),
		Name:            res.Config.Name,
		Valid:           res.Valid,
		Reason:          res.Reason,
		CoreAreaUm2:     res.CoreAreaUm2,
		RealUtilization: res.RealUtilization,
		CellAreaUm2:     res.CellAreaUm2,
		HPWLUm:          res.HPWLUm,
		WirelenFrontUm:  res.WirelenFrontUm,
		WirelenBackUm:   res.WirelenBackUm,
		DRVsFront:       res.DRVsFront,
		DRVsBack:        res.DRVsBack,
		Vias:            res.Vias,
		CTSBuffers:      res.CTSBuffers,
		SynthBuffers:    res.SynthBuffers,
		AchievedFreqGHz: res.AchievedFreqGHz,
		MinPeriodPs:     res.MinPeriodPs,
		PowerUW:         res.PowerUW,
		EffGHzPerW:      res.EffGHzPerW,
	}
}

// MCSummary is the wire form of a variation study: the distribution
// statistics, not the per-sample vectors.
type MCSummary struct {
	Samples    int     `json:"samples"`
	MeanWNSPs  float64 `json:"mean_wns_ps"`
	SigmaWNSPs float64 `json:"sigma_wns_ps"`
	P50WNSPs   float64 `json:"p50_wns_ps"`
	P95WNSPs   float64 `json:"p95_wns_ps"`
	P997WNSPs  float64 `json:"p997_wns_ps"`
	MeanTNSPs  float64 `json:"mean_tns_ps"`
	SigmaTNSPs float64 `json:"sigma_tns_ps"`
	P50TNSPs   float64 `json:"p50_tns_ps"`
	P95TNSPs   float64 `json:"p95_tns_ps"`
	P997TNSPs  float64 `json:"p997_tns_ps"`
}

// NewMCSummary projects a variation study onto the wire form.
func NewMCSummary(sum *variation.Summary) MCSummary {
	return MCSummary{
		Samples:    sum.Samples,
		MeanWNSPs:  sum.MeanWNSPs,
		SigmaWNSPs: sum.SigmaWNSPs,
		P50WNSPs:   sum.P50WNSPs,
		P95WNSPs:   sum.P95WNSPs,
		P997WNSPs:  sum.P997WNSPs,
		MeanTNSPs:  sum.MeanTNSPs,
		SigmaTNSPs: sum.SigmaTNSPs,
		P50TNSPs:   sum.P50TNSPs,
		P95TNSPs:   sum.P95TNSPs,
		P997TNSPs:  sum.P997TNSPs,
	}
}

// ErrorBody is the wire form of a classified failure. PartialStageMs
// reports the stage timings a cancelled or failed session completed
// before dying — the daemon-side mirror of the CLIs' partial-timings
// report on SIGTERM.
type ErrorBody struct {
	Kind           string             `json:"kind"`
	Message        string             `json:"message"`
	PartialStageMs map[string]float64 `json:"partial_stage_ms,omitempty"`
}

// newErrorBody classifies err and, when a partially-run session is
// available, attaches its completed stage timings.
func newErrorBody(name string, err error, partial *core.Flow) *ErrorBody {
	cerr := core.Classify(name, err)
	body := &ErrorBody{Kind: exp.ErrClass(cerr), Message: cerr.Error()}
	if partial != nil {
		times := partial.Result().StageTimes
		for s, d := range times {
			if d > 0 {
				if body.PartialStageMs == nil {
					body.PartialStageMs = make(map[string]float64, len(times))
				}
				body.PartialStageMs[core.Stage(s).String()] = float64(d) / float64(time.Millisecond)
			}
		}
	}
	return body
}

// event is one NDJSON progress line. The final "done" event carries the
// full response body — the same bytes a non-streaming request receives.
type event struct {
	Event string          `json:"event"`
	Point *int            `json:"point,omitempty"` // sweep point index; absent on single-flow/MC streams
	Kind  string          `json:"kind,omitempty"`
	Hit   *bool           `json:"hit,omitempty"`
	Stage string          `json:"stage,omitempty"`
	Ms    float64         `json:"ms,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
	Error *ErrorBody      `json:"error,omitempty"`
}
