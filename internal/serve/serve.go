package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/tech"
	"repro/internal/variation"
)

// Options configures a Server. Zero values take the documented defaults.
type Options struct {
	// Scale selects the benchmark workload size (exp.Quick or exp.Full).
	Scale exp.Scale
	// CacheBytes bounds the checkpoint cache's measured resident
	// footprint (default 256 MiB).
	CacheBytes int64
	// MaxWorkers bounds concurrent flow executions (default
	// min(GOMAXPROCS, 12), matching exp's pool).
	MaxWorkers int
	// MaxQueue bounds admitted requests waiting for a worker slot beyond
	// the in-flight ones; past it requests are rejected with 429
	// (default 64).
	MaxQueue int
	// MemoEntries bounds the exact-config result memo: past it the
	// least-recently-used marshaled Summary is evicted (default 4096).
	MemoEntries int
}

func (o Options) withDefaults() Options {
	if o.CacheBytes <= 0 {
		o.CacheBytes = 256 << 20
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = min(runtime.GOMAXPROCS(0), 12)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.MemoEntries <= 0 {
		o.MemoEntries = 4096
	}
	return o
}

// Server is the ffetd daemon state: the exp suite (libraries, netlists,
// the experiment tables and their synth-root/memo caches), the checkpoint
// cache, the result memo, and the admission pool. Create with New, mount
// Handler on an http.Server, and Close on shutdown.
type Server struct {
	opt   Options
	suite *exp.Suite
	// suiteMu serializes /v1/exp table runs: the suite's sweeps already
	// parallelize internally, so concurrent tables would only fight over
	// the pool.
	suiteMu sync.Mutex
	cache   *ckCache

	// memo holds the marshaled Summary of completed exact-config runs,
	// keyed by the same memo key as exp's result cache and bounded by an
	// entry-count LRU (Options.MemoEntries) — bodies are a few hundred
	// bytes, so a count bound suffices where the checkpoint cache next
	// door needs measured bytes. Error responses are never memoized.
	memoMu                              sync.Mutex
	memo                                map[exp.RunKey]*list.Element
	memoLRU                             list.List // Front = most recent; values are memoEntry
	memoHits, memoMisses, memoEvictions int64

	// baseCtx bounds every shared build and outlives any single request;
	// Close cancels it, killing in-flight work.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	sem      chan struct{}
	queued   atomic.Int64
	draining atomic.Bool

	accepted, rejected atomic.Int64
	inflight           atomic.Int64

	// Sweep diff-chain outcomes: leaders forked through the synth-diff
	// path (and whether it held), vs leaders built from the checkpoint
	// cache with a full back end.
	diffForks, diffFallbacks, fullSynthForks atomic.Int64
}

// New builds a daemon: libraries and benchmark netlists for both
// architectures plus an empty checkpoint cache.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	suite, err := exp.NewSuite(opt.Scale)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	suite.Ctx = ctx
	return &Server{
		opt:        opt,
		suite:      suite,
		cache:      newCkCache(opt.CacheBytes),
		memo:       make(map[exp.RunKey]*list.Element),
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, opt.MaxWorkers),
	}, nil
}

// StartDrain rejects new requests with 503 while in-flight ones finish.
// The HTTP layer's Shutdown does the actual waiting.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Close cancels the base context: every in-flight build and leaf run
// dies with ErrCancelled at its next stage boundary.
func (s *Server) Close() { s.baseCancel() }

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/flow", s.handleFlow)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/mc", s.handleMC)
	mux.HandleFunc("GET /v1/exp", s.handleExp)
	mux.HandleFunc("GET /debug/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Errors the admission gate reports.
var (
	errBusy     = errors.New("serve: request queue full")
	errDraining = errors.New("serve: draining")
)

// acquire admits one flow execution into the worker pool, waiting for a
// slot under the request context. It fails fast when the queue bound is
// exceeded or the daemon is draining.
func (s *Server) acquire(ctx context.Context) error {
	if err := faultinject.Fire("serve.admit"); err != nil {
		return err
	}
	if s.draining.Load() {
		return errDraining
	}
	if int(s.queued.Add(1)) > s.opt.MaxQueue+s.opt.MaxWorkers {
		s.queued.Add(-1)
		return errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-s.baseCtx.Done():
		return errDraining
	}
}

func (s *Server) release() { <-s.sem }

// reqCtx derives the context one request's flow work runs under: the
// request context (client disconnect cancels it) joined with the daemon
// base context (Close cancels everything).
func (s *Server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// point runs one flow config through the memo → checkpoint-cache → fork
// path and returns the marshaled Summary. The returned session is the
// completed leaf when the point actually ran one (nil on a memo hit) —
// sweep chains fork the next frequency point off it — or, on failure,
// the partially-run leaf for partial stage timings.
// The build of a shared checkpoint deliberately runs to completion even
// if this request's context dies while waiting — the result is cache
// warmth for the next request — but the per-request leaf tail stops at
// the next stage boundary after cancellation.
// pt is the sweep point index carried on progress events, nil for
// single-flow requests (the field is omitted from their streams).
func (s *Server) point(ctx context.Context, arch tech.Arch, cfg core.FlowConfig, pt *int, emit func(event)) (json.RawMessage, *core.Flow, error) {
	if err := faultinject.Fire("serve.memo"); err != nil {
		return nil, nil, err
	}
	key := exp.MemoKey(arch, cfg)
	if body := s.memoGet(key); body != nil {
		hit := true
		emit(event{Event: "checkpoint", Point: pt, Kind: "memo", Hit: &hit})
		return body, nil, nil
	}

	sc, pc := exp.ClassKeys(arch, cfg)
	root, rootHit, err := s.cache.getOrBuild(ctx, ckKey{kind: ckSynth, sc: sc}, func() (*core.Flow, error) {
		if err := faultinject.Fire("serve.synthroot"); err != nil {
			return nil, err
		}
		f, err := core.NewFlow(s.suite.Netlist(arch), sc.RootConfig())
		if err != nil {
			return nil, err
		}
		return f, f.RunToCtx(s.baseCtx, core.StageSynth)
	})
	emit(event{Event: "checkpoint", Point: pt, Kind: "synth", Hit: &rootHit})
	if err != nil {
		return nil, nil, err
	}

	prefix, prefHit, err := s.cache.getOrBuild(ctx, ckKey{kind: ckPrefix, sc: sc, pc: pc}, func() (*core.Flow, error) {
		if err := faultinject.Fire("serve.prefix"); err != nil {
			return nil, err
		}
		pcfg := pc.Config()
		f, err := root.Fork(func(c *core.FlowConfig) { *c = pcfg })
		if err != nil {
			return nil, err
		}
		return f, f.RunToCtx(s.baseCtx, core.StageCTS)
	})
	emit(event{Event: "checkpoint", Point: pt, Kind: "prefix", Hit: &prefHit})
	if err != nil {
		return nil, nil, err
	}

	if err := faultinject.Fire("serve.leaf"); err != nil {
		return nil, nil, err
	}
	leaf, err := prefix.Fork(func(c *core.FlowConfig) { *c = cfg })
	if err != nil {
		return nil, nil, err
	}
	body, err := s.runLeafTail(ctx, key, leaf, pt, emit)
	if err != nil {
		return nil, leaf, err
	}
	return body, leaf, nil
}

// runLeafTail drives a forked leaf session's remaining stages one at a
// time — each boundary is a progress event and a cancellation point —
// then marshals and memoizes its Summary. A halted session (infeasible
// powerplan, placement violation — both reachable from valid API
// configs) stops advancing NextStage, so the loop must also break on
// Halted or it would spin forever; the Valid=false Summary then matches
// the offline path's early return.
func (s *Server) runLeafTail(ctx context.Context, key exp.RunKey, leaf *core.Flow, pt *int, emit func(event)) (json.RawMessage, error) {
	for st := leaf.NextStage(); int(st) < core.NumStages && !leaf.Halted(); st = leaf.NextStage() {
		t0 := time.Now()
		if err := leaf.RunToCtx(ctx, st); err != nil {
			return nil, err
		}
		emit(event{Event: "stage", Point: pt, Stage: st.String(),
			Ms: float64(time.Since(t0)) / float64(time.Millisecond)})
	}
	body, err := json.Marshal(NewSummary(leaf.Result()))
	if err != nil {
		return nil, err
	}
	s.memoPut(key, body)
	return body, nil
}

// memoEntry is one LRU-listed memo record.
type memoEntry struct {
	key  exp.RunKey
	body json.RawMessage
}

func (s *Server) memoGet(key exp.RunKey) json.RawMessage {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	el, ok := s.memo[key]
	if !ok {
		s.memoMisses++
		return nil
	}
	s.memoHits++
	s.memoLRU.MoveToFront(el)
	return el.Value.(memoEntry).body
}

func (s *Server) memoPut(key exp.RunKey, body json.RawMessage) {
	s.memoMu.Lock()
	defer s.memoMu.Unlock()
	if _, ok := s.memo[key]; ok {
		return
	}
	s.memo[key] = s.memoLRU.PushFront(memoEntry{key: key, body: body})
	for len(s.memo) > s.opt.MemoEntries {
		back := s.memoLRU.Back()
		delete(s.memo, back.Value.(memoEntry).key)
		s.memoLRU.Remove(back)
		s.memoEvictions++
	}
}

// streamer serializes NDJSON event lines onto one response. A nil
// streamer discards events (non-streaming requests).
type streamer struct {
	mu sync.Mutex
	w  http.ResponseWriter
	fl http.Flusher
}

func newStreamer(w http.ResponseWriter, r *http.Request) *streamer {
	if r.URL.Query().Get("stream") == "" {
		return nil
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	return &streamer{w: w, fl: fl}
}

func (st *streamer) emit(ev event) {
	if st == nil {
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.w.Write(append(line, '\n'))
	if st.fl != nil {
		st.fl.Flush()
	}
}

// writeBody terminates a request: streaming responses get the final body
// as a "done" event line, plain responses get it as the entire payload.
// The body bytes are identical either way.
func (st *streamer) writeBody(w http.ResponseWriter, body []byte) {
	if st != nil {
		st.emit(event{Event: "done", Data: body})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// httpError maps a failure onto a status + JSON error body. Once a
// stream has started the status line is gone; the error becomes a
// terminal event instead.
func (st *streamer) httpError(w http.ResponseWriter, status int, body *ErrorBody) {
	if st != nil {
		st.emit(event{Event: "error", Error: body})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, _ := json.Marshal(struct {
		Error *ErrorBody `json:"error"`
	}{body})
	w.Write(append(b, '\n'))
}

// containPanic converts a panicking request path into a classified 500
// error response: an injected or organic panic kills the request, never
// the daemon. Deferred before admission so even admission-gate panics
// (faultinject's serve.admit site) are contained.
func containPanic(st *streamer, w http.ResponseWriter, name string) {
	if r := recover(); r != nil {
		st.httpError(w, http.StatusInternalServerError, newErrorBody(name, core.NewPanicError(name, r), nil))
	}
}

// admissionStatus maps an admission failure to its HTTP status.
func admissionStatus(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	default:
		// Not an admission verdict (client disconnected while queued,
		// injected fault, ...): classify like any flow error.
		return errStatus(err)
	}
}

func errStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrCancelled), errors.Is(err, context.Canceled):
		return 499 // client closed request (or daemon shutdown)
	default:
		return http.StatusInternalServerError
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":{"kind":"invalid_config","message":%q}}`, "bad request body: "+err.Error()), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleFlow(w http.ResponseWriter, r *http.Request) {
	var spec FlowSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	arch, cfg, err := spec.Config()
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":{"kind":"invalid_config","message":%q}}`, err.Error()), http.StatusBadRequest)
		return
	}
	st := newStreamer(w, r)
	defer containPanic(st, w, cfg.Name)
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejected.Add(1)
		st.httpError(w, admissionStatus(err), newErrorBody(cfg.Name, err, nil))
		return
	}
	s.accepted.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.release()
	st.emit(event{Event: "accepted"})

	body, partial, err := s.point(ctx, arch, cfg, nil, st.emit)
	if err != nil {
		st.httpError(w, errStatus(err), newErrorBody(cfg.Name, err, partial))
		return
	}
	resp, _ := json.Marshal(struct {
		Result json.RawMessage `json:"result"`
	}{body})
	st.writeBody(w, resp)
}

// sweepPoint is one decoded /v1/sweep config.
type sweepPoint struct {
	arch tech.Arch
	cfg  core.FlowConfig
}

// sweepChains partitions a sweep's point indices into frequency chains:
// points identical up to the synthesis target (and name), sorted by
// target and split wherever consecutive targets sit further apart than
// exp.DiffChainMaxRelGap. Points within one chain run sequentially so
// each can diff-fork its completed neighbor; every other point pair
// stays parallel.
func sweepChains(pts []sweepPoint) [][]int {
	type chainKey struct {
		arch tech.Arch
		cfg  core.FlowConfig
	}
	groups := make(map[chainKey][]int)
	var order []chainKey
	for i, p := range pts {
		k := chainKey{p.arch, p.cfg}
		k.cfg.Name = ""
		k.cfg.TargetFreqGHz = 0
		k.cfg.Synth.TargetFreqGHz = 0
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	var chains [][]int
	for _, k := range order {
		idxs := groups[k]
		sort.SliceStable(idxs, func(a, b int) bool {
			return pts[idxs[a]].cfg.TargetFreqGHz < pts[idxs[b]].cfg.TargetFreqGHz
		})
		var run []int
		for j, i := range idxs {
			if j > 0 {
				lo := pts[idxs[j-1]].cfg.TargetFreqGHz
				if lo <= 0 || pts[i].cfg.TargetFreqGHz-lo > exp.DiffChainMaxRelGap*lo {
					chains = append(chains, run)
					run = nil
				}
			}
			run = append(run, i)
		}
		chains = append(chains, run)
	}
	return chains
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	specs, err := req.Points()
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":{"kind":"invalid_config","message":%q}}`, err.Error()), http.StatusBadRequest)
		return
	}
	pts := make([]sweepPoint, len(specs))
	for i, sp := range specs {
		arch, cfg, err := sp.Config()
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":{"kind":"invalid_config","message":%q}}`, fmt.Sprintf("point %d: %v", i, err)), http.StatusBadRequest)
			return
		}
		pts[i] = sweepPoint{arch, cfg}
	}
	st := newStreamer(w, r)
	// Per-point goroutines contain their own panics below; this catches
	// the outer sweep path (result assembly, marshal) so those too die as
	// a classified 500 instead of a dropped connection.
	defer containPanic(st, w, "sweep")
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	st.emit(event{Event: "accepted"})

	// Each point takes its own pool slot: a sweep is N admissions, so a
	// big sweep cannot starve single-flow clients for its whole duration.
	type slot struct {
		body json.RawMessage
		err  *ErrorBody
	}
	out := make([]slot, len(pts))
	// runPoint executes one sweep point and returns the session the
	// chain's next point should diff-fork from: the completed leaf, or
	// prev unchanged on a memo hit, or nil when the point died. When prev
	// is non-nil the point forks it through the synth-diff path
	// (core.Flow.ForkSynthDiff) — the child re-synthesizes at its own
	// target but adopts the neighbor's placement/partition/route/STA
	// state wherever the diff gates hold, bit-identically — and the
	// "synthdiff" checkpoint event plus the sweep counters record which
	// way it went.
	runPoint := func(i int, prev *core.Flow) (done *core.Flow) {
		p := pts[i]
		// Panics in a per-point goroutine would kill the process, not
		// just a handler — contain them into the point's error slot.
		defer func() {
			if r := recover(); r != nil {
				out[i] = slot{err: newErrorBody(p.cfg.Name, core.NewPanicError(p.cfg.Name, r), nil)}
				done = nil
			}
		}()
		if err := s.acquire(ctx); err != nil {
			s.rejected.Add(1)
			out[i] = slot{err: newErrorBody(p.cfg.Name, err, nil)}
			return nil
		}
		s.accepted.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		defer s.release()
		if prev != nil {
			key := exp.MemoKey(p.arch, p.cfg)
			if body := s.memoGet(key); body != nil {
				hit := true
				st.emit(event{Event: "checkpoint", Point: &i, Kind: "memo", Hit: &hit})
				out[i] = slot{body: body}
				st.emit(event{Event: "point", Point: &i, Data: body})
				return prev
			}
			if child, dst, err := prev.ForkSynthDiffCtx(ctx, func(c *core.FlowConfig) { *c = p.cfg }); err == nil {
				if dst.DiffPath {
					s.diffForks.Add(1)
				} else {
					s.diffFallbacks.Add(1)
				}
				st.emit(event{Event: "checkpoint", Point: &i, Kind: "synthdiff", Hit: &dst.DiffPath})
				body, err := s.runLeafTail(ctx, key, child, &i, st.emit)
				if err != nil {
					out[i] = slot{err: newErrorBody(p.cfg.Name, err, child)}
					return nil
				}
				out[i] = slot{body: body}
				st.emit(event{Event: "point", Point: &i, Data: body})
				return child
			}
			// A hard fork failure (race, cancellation) falls through to
			// the checkpoint-cache path, which classifies its own errors.
		}
		body, leaf, err := s.point(ctx, p.arch, p.cfg, &i, st.emit)
		if err != nil {
			out[i] = slot{err: newErrorBody(p.cfg.Name, err, leaf)}
			return nil
		}
		if leaf != nil {
			s.fullSynthForks.Add(1)
		}
		out[i] = slot{body: body}
		st.emit(event{Event: "point", Point: &i, Data: body})
		return leaf
	}
	// Frequency chains run sequentially — each point diff-forks the
	// nearest completed lower-target neighbor — while distinct chains
	// (different non-target config axes, or target clusters further apart
	// than the diff gates plausibly reach) keep fanning out in parallel.
	var wg sync.WaitGroup
	for _, chain := range sweepChains(pts) {
		wg.Add(1)
		go func(chain []int) {
			defer wg.Done()
			var prev *core.Flow
			for _, i := range chain {
				prev = runPoint(i, prev)
			}
		}(chain)
	}
	wg.Wait()

	results := make([]json.RawMessage, len(out))
	for i, sl := range out {
		if sl.err != nil {
			b, _ := json.Marshal(struct {
				Error *ErrorBody `json:"error"`
			}{sl.err})
			results[i] = b
			continue
		}
		results[i] = sl.body
	}
	resp, _ := json.Marshal(struct {
		Results []json.RawMessage `json:"results"`
	}{results})
	st.writeBody(w, resp)
}

func (s *Server) handleMC(w http.ResponseWriter, r *http.Request) {
	var req MCRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	arch, cfg, err := req.Base.Config()
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":{"kind":"invalid_config","message":%q}}`, err.Error()), http.StatusBadRequest)
		return
	}
	st := newStreamer(w, r)
	defer containPanic(st, w, cfg.Name)
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejected.Add(1)
		st.httpError(w, admissionStatus(err), newErrorBody(cfg.Name, err, nil))
		return
	}
	s.accepted.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.release()
	st.emit(event{Event: "accepted"})

	// The MC basis is the completed flow of the base spec — staged
	// through the same checkpoint path as /v1/flow, so concurrent MC
	// requests on one design share its prefix. The basis needs the live
	// session (engine + RC), so this never reads the result memo.
	sc, pc := exp.ClassKeys(arch, cfg)
	body, partial, err := s.mcPoint(ctx, arch, cfg, sc, pc, req, st.emit)
	if err != nil {
		st.httpError(w, errStatus(err), newErrorBody(cfg.Name, err, partial))
		return
	}
	st.writeBody(w, body)
}

// mcPoint stages the base flow through the checkpoint cache, runs it to
// completion, and samples the variation study off its basis.
func (s *Server) mcPoint(ctx context.Context, arch tech.Arch, cfg core.FlowConfig, sc exp.SynthClass, pc exp.PrefixClass, req MCRequest, emit func(event)) (json.RawMessage, *core.Flow, error) {
	root, _, err := s.cache.getOrBuild(ctx, ckKey{kind: ckSynth, sc: sc}, func() (*core.Flow, error) {
		f, err := core.NewFlow(s.suite.Netlist(arch), sc.RootConfig())
		if err != nil {
			return nil, err
		}
		return f, f.RunToCtx(s.baseCtx, core.StageSynth)
	})
	if err != nil {
		return nil, nil, err
	}
	prefix, hit, err := s.cache.getOrBuild(ctx, ckKey{kind: ckPrefix, sc: sc, pc: pc}, func() (*core.Flow, error) {
		pcfg := pc.Config()
		f, err := root.Fork(func(c *core.FlowConfig) { *c = pcfg })
		if err != nil {
			return nil, err
		}
		return f, f.RunToCtx(s.baseCtx, core.StageCTS)
	})
	emit(event{Event: "checkpoint", Kind: "prefix", Hit: &hit})
	if err != nil {
		return nil, nil, err
	}
	leaf, err := prefix.Fork(func(c *core.FlowConfig) { *c = cfg })
	if err != nil {
		return nil, nil, err
	}
	// Halted sessions stop advancing NextStage — break instead of
	// spinning; VariationBasis then rejects the invalid flow cleanly.
	for st := leaf.NextStage(); int(st) < core.NumStages && !leaf.Halted(); st = leaf.NextStage() {
		t0 := time.Now()
		if err := leaf.RunToCtx(ctx, st); err != nil {
			return nil, leaf, err
		}
		emit(event{Event: "stage", Stage: st.String(),
			Ms: float64(time.Since(t0)) / float64(time.Millisecond)})
	}
	basis, err := leaf.VariationBasis()
	if err != nil {
		return nil, leaf, err
	}
	opt := variation.DefaultOptions()
	if req.Samples > 0 {
		opt.Samples = req.Samples
	}
	if req.Workers > 0 {
		opt.Workers = req.Workers
	}
	if req.Seed != 0 {
		opt.Seed = req.Seed
	}
	if req.SigmaNm > 0 {
		opt.SigmaNm = req.SigmaNm
	}
	if req.FloorFF > 0 {
		opt.FloorFF = req.FloorFF
	}
	sum, err := variation.Study(ctx, basis, opt)
	if err != nil {
		return nil, leaf, err
	}
	body, err := json.Marshal(struct {
		MC MCSummary `json:"mc"`
	}{NewMCSummary(sum)})
	return body, nil, err
}

// handleExp runs one experiment table (?id=fig09) through the embedded
// exp suite — the batch runner served over HTTP. Tables share the
// suite's synth-root cache and result memo across requests; /debug/stats
// republishes those counters.
func (s *Server) handleExp(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	run, ok := s.suite.Experiment(id)
	if !ok {
		http.Error(w, fmt.Sprintf(`{"error":{"kind":"invalid_config","message":%q}}`, "unknown experiment id "+id), http.StatusBadRequest)
		return
	}
	defer containPanic(nil, w, id)
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.rejected.Add(1)
		(*streamer)(nil).httpError(w, admissionStatus(err), newErrorBody(id, err, nil))
		return
	}
	s.accepted.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.release()

	s.suiteMu.Lock()
	table, err := run()
	s.suiteMu.Unlock()
	if err != nil && table == nil {
		(*streamer)(nil).httpError(w, errStatus(err), newErrorBody(id, err, nil))
		return
	}
	resp, _ := json.Marshal(struct {
		Table *exp.Table `json:"table"`
		Err   string     `json:"error,omitempty"`
	}{table, errString(err)})
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(resp, '\n'))
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Stats is the /debug/stats payload.
type Stats struct {
	Checkpoint ckStats        `json:"checkpoint"`
	Memo       memoStats      `json:"memo"`
	Exp        exp.CacheStats `json:"exp"`
	Sweep      sweepStats     `json:"sweep"`
	Requests   reqStats       `json:"requests"`
}

type memoStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
}

// sweepStats counts /v1/sweep frequency-chain outcomes. (The exp section
// next door counts the same split for /v1/exp table sweeps.)
type sweepStats struct {
	DiffForks      int64 `json:"diff_forks"`
	DiffFallbacks  int64 `json:"diff_fallbacks"`
	FullSynthForks int64 `json:"full_synth_forks"`
}

type reqStats struct {
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Draining bool  `json:"draining"`
}

// StatsSnapshot collects every cache and admission counter.
func (s *Server) StatsSnapshot() Stats {
	s.memoMu.Lock()
	memo := memoStats{Hits: s.memoHits, Misses: s.memoMisses,
		Evictions: s.memoEvictions, Entries: len(s.memo), MaxEntries: s.opt.MemoEntries}
	s.memoMu.Unlock()
	return Stats{
		Checkpoint: s.cache.stats(),
		Memo:       memo,
		Exp:        s.suite.Stats(),
		Sweep: sweepStats{
			DiffForks:      s.diffForks.Load(),
			DiffFallbacks:  s.diffFallbacks.Load(),
			FullSynthForks: s.fullSynthForks.Load(),
		},
		Requests: reqStats{
			Accepted: s.accepted.Load(),
			Rejected: s.rejected.Load(),
			Inflight: s.inflight.Load(),
			Queued:   s.queued.Load(),
			Draining: s.draining.Load(),
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	body, _ := json.Marshal(s.StatsSnapshot())
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
