// Package powerplan builds the backside power delivery network (BSPDN) and
// places the paper's novel Power Tap Cells.
//
// Both architectures are powered from the wafer backside (Section III.B):
//
//   - FFET: backside M0 VDD rails tap the BSPDN directly; frontside VSS M0
//     rails connect through Power Tap Cells — fixed cells placed in columns
//     directly above the backside VSS power stripes. The tap columns (plus
//     legalization halo) consume row sites, which is what caps achievable
//     placement utilization at ~86% in the paper's Fig. 8(a).
//   - CFET: the buried power rails (BPR) connect to the BSPDN through
//     nTSVs under the rails; no row sites are consumed, so CFET
//     utilization is limited by routability instead.
package powerplan

import (
	"fmt"

	"repro/internal/def"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/tech"
)

// Tap cell geometry (CPP units).
const (
	TapWidthCPP = 4 // Power Tap Cell footprint width
	TapHaloCPP  = 1 // keep-out on each side for legalization
)

// TapCell is one fixed Power Tap Cell.
type TapCell struct {
	Name string
	Pos  geom.Point // lower-left, on a row
}

// Stripe is one BSPDN power stripe (vertical, backside).
type Stripe struct {
	Net     string // "VDD" or "VSS"
	X       int64  // centerline
	WidthNm int64
	Layer   string
}

// Result is the power plan.
type Result struct {
	Arch     tech.Arch
	Stripes  []Stripe
	Taps     []TapCell
	NTSVs    []geom.Point // CFET: nTSV locations under the BPRs
	Feasible bool
	Reason   string
	// Blockages are row intervals consumed by tap cells + halos, used by
	// the legalizer: Blockages[rowIndex] lists blocked X intervals.
	Blockages map[int][]geom.Interval

	tapComps []*def.Component // lazily built by TapComponents
}

// MaxUtilization returns the highest placement utilization the tap-cell
// pattern admits for the architecture (1.0 when no sites are consumed).
// The 1.5% legalization margin reflects discrete site fragmentation.
func MaxUtilization(arch tech.Arch, stack *tech.Stack) float64 {
	if arch != tech.FFET {
		return 1.0
	}
	blocked := float64(TapWidthCPP+2*TapHaloCPP) / float64(stack.PowerStripePitchCPP)
	return (1 - blocked) * 0.97
}

// Plan builds the BSPDN for the floorplan.
func Plan(fp *floorplan.Plan, pattern tech.Pattern) (*Result, error) {
	st := fp.Stack
	if err := st.Validate(pattern); err != nil {
		return nil, err
	}
	res := &Result{
		Arch:      st.Arch,
		Feasible:  true,
		Blockages: make(map[int][]geom.Interval),
	}
	pitch := st.PowerStripePitchNm() // same-net pitch, 64 CPP
	half := pitch / 2                // VSS and VDD interleave
	stripeW := int64(240)            // wide backside stripes
	topLayer := fmt.Sprintf("BM%d", st.HighestPDNLayer(pattern))

	// Vertical stripes across the core: VSS at k*pitch, VDD offset by half.
	for x := int64(0); x <= fp.Core.Hi.X; x += pitch {
		res.Stripes = append(res.Stripes, Stripe{Net: "VSS", X: x, WidthNm: stripeW, Layer: topLayer})
		if x+half <= fp.Core.Hi.X {
			res.Stripes = append(res.Stripes, Stripe{Net: "VDD", X: x + half, WidthNm: stripeW, Layer: topLayer})
		}
	}

	switch st.Arch {
	case tech.FFET:
		// One Power Tap Cell per row per VSS stripe, centered on the stripe.
		tapW := int64(TapWidthCPP) * st.CPPNm
		haloW := int64(TapHaloCPP) * st.CPPNm
		for _, s := range res.Stripes {
			if s.Net != "VSS" {
				continue
			}
			x := geom.SnapDown(s.X-tapW/2, 0, st.CPPNm)
			if x < fp.Core.Lo.X {
				x = fp.Core.Lo.X
			}
			if x+tapW > fp.Core.Hi.X {
				continue
			}
			for _, row := range fp.Rows {
				res.Taps = append(res.Taps, TapCell{
					Name: fmt.Sprintf("tap_x%d_r%d", s.X, row.Index),
					Pos:  geom.Pt(x, row.Y),
				})
				res.Blockages[row.Index] = append(res.Blockages[row.Index],
					geom.Interval{Lo: x - haloW, Hi: x + tapW + haloW})
			}
		}
	case tech.CFET:
		// nTSVs under the BPRs at every stripe crossing; no site cost.
		for _, s := range res.Stripes {
			for _, row := range fp.Rows {
				res.NTSVs = append(res.NTSVs, geom.Pt(s.X, row.Y))
			}
		}
	}

	// Feasibility: requested utilization against tap-consumed area.
	if maxU := MaxUtilization(st.Arch, st); fp.Utilization > maxU {
		res.Feasible = false
		res.Reason = fmt.Sprintf(
			"utilization %.0f%% exceeds %.0f%% cap from Power Tap Cell placement (64 CPP stripe pitch)",
			fp.Utilization*100, maxU*100)
	}
	return res, nil
}

// SpecialNets renders the plan's stripes as DEF special nets.
func (r *Result) SpecialNets(fp *floorplan.Plan) []*def.SNet {
	vdd := &def.SNet{Name: "VDD", Use: "POWER"}
	vss := &def.SNet{Name: "VSS", Use: "GROUND"}
	for _, s := range r.Stripes {
		w := def.Wire{
			Layer:   s.Layer,
			WidthNm: s.WidthNm,
			From:    geom.Pt(s.X, fp.Core.Lo.Y),
			To:      geom.Pt(s.X, fp.Core.Hi.Y),
		}
		if s.Net == "VDD" {
			vdd.Wires = append(vdd.Wires, w)
		} else {
			vss.Wires = append(vss.Wires, w)
		}
	}
	return []*def.SNet{vdd, vss}
}

// TapComponents renders the tap cells as fixed DEF components.
func (r *Result) TapComponents() []*def.Component {
	// Taps are frozen once Plan returns, so the DEF components are built
	// once and shared by every caller (both side DEFs reference the same
	// read-only components; def.Merge copies them when combining).
	if r.tapComps == nil {
		r.tapComps = make([]*def.Component, 0, len(r.Taps))
		for _, t := range r.Taps {
			r.tapComps = append(r.tapComps, &def.Component{Name: t.Name, Macro: "PWRTAP", Pos: t.Pos, Fixed: true})
		}
	}
	return r.tapComps
}
