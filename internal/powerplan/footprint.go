package powerplan

import (
	"unsafe"

	"repro/internal/def"
	"repro/internal/geom"
)

// FootprintBytes estimates the power plan's retained heap bytes: stripes,
// tap cells, nTSVs, the legalizer blockage map, and the lazily built tap
// component list. An accounting estimate for cache budgeting, not an
// exact heap measurement.
func (r *Result) FootprintBytes() int64 {
	if r == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*r)) + int64(len(r.Reason))
	b += int64(len(r.Stripes)) * int64(unsafe.Sizeof(Stripe{}))
	for i := range r.Stripes {
		b += int64(len(r.Stripes[i].Net) + len(r.Stripes[i].Layer))
	}
	b += int64(len(r.Taps)) * int64(unsafe.Sizeof(TapCell{}))
	for i := range r.Taps {
		b += int64(len(r.Taps[i].Name))
	}
	b += int64(len(r.NTSVs)) * int64(unsafe.Sizeof(geom.Point{}))
	for _, ivs := range r.Blockages {
		b += 24 + int64(unsafe.Sizeof([]geom.Interval{})) // map slot share
		b += int64(len(ivs)) * int64(unsafe.Sizeof(geom.Interval{}))
	}
	// tapComps aliases name strings counted with Taps above; count the
	// slice of pointers plus the component structs themselves.
	b += int64(len(r.tapComps)) * (int64(unsafe.Sizeof(uintptr(0))) + int64(unsafe.Sizeof(def.Component{})))
	return b
}
