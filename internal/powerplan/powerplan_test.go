package powerplan

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/tech"
)

func ffetPlan(t *testing.T, util float64) (*floorplan.Plan, *Result) {
	t.Helper()
	st := tech.NewFFET()
	fp, err := floorplan.New(st, 300_000_000, util, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(fp, tech.Pattern{Front: 12, Back: 12})
	if err != nil {
		t.Fatal(err)
	}
	return fp, res
}

func TestFFETTapsOnVSSStripes(t *testing.T) {
	fp, res := ffetPlan(t, 0.7)
	if len(res.Taps) == 0 {
		t.Fatal("FFET plan has no Power Tap Cells")
	}
	if len(res.NTSVs) != 0 {
		t.Error("FFET must not use nTSVs")
	}
	// One tap per row per VSS stripe inside the core.
	var vssInCore int
	tapW := int64(TapWidthCPP) * fp.Stack.CPPNm
	for _, s := range res.Stripes {
		if s.Net == "VSS" && s.X-tapW/2 >= 0 && s.X+tapW/2 <= fp.Core.Hi.X {
			vssInCore++
		}
	}
	wantMin := (vssInCore - 1) * len(fp.Rows)
	if len(res.Taps) < wantMin {
		t.Errorf("taps = %d, want >= %d (stripes %d x rows %d)",
			len(res.Taps), wantMin, vssInCore, len(fp.Rows))
	}
	// Taps sit on rows and near VSS stripe centerlines.
	rowH := fp.Stack.CellHeightNm()
	for _, tap := range res.Taps {
		if tap.Pos.Y%rowH != 0 {
			t.Errorf("tap %s not on a row boundary (y=%d)", tap.Name, tap.Pos.Y)
		}
	}
}

func TestStripesInterleave(t *testing.T) {
	fp, res := ffetPlan(t, 0.7)
	_ = fp
	pitch := fp.Stack.PowerStripePitchNm()
	var lastVSS, lastVDD int64 = -1, -1
	for _, s := range res.Stripes {
		switch s.Net {
		case "VSS":
			if lastVSS >= 0 && s.X-lastVSS != pitch {
				t.Errorf("VSS pitch %d, want %d (64 CPP)", s.X-lastVSS, pitch)
			}
			lastVSS = s.X
		case "VDD":
			if lastVDD >= 0 && s.X-lastVDD != pitch {
				t.Errorf("VDD pitch %d, want %d", s.X-lastVDD, pitch)
			}
			lastVDD = s.X
		}
	}
	if lastVSS < 0 || lastVDD < 0 {
		t.Fatal("missing stripes")
	}
}

func TestUtilizationCap(t *testing.T) {
	st := tech.NewFFET()
	maxU := MaxUtilization(tech.FFET, st)
	// The paper's limit: ~86%.
	if maxU < 0.85 || maxU > 0.88 {
		t.Errorf("FFET max utilization = %.3f, want ≈0.86 (paper Fig. 8a)", maxU)
	}
	if got := MaxUtilization(tech.CFET, tech.NewCFET()); got != 1.0 {
		t.Errorf("CFET max utilization = %.3f, want 1.0 (no tap cells)", got)
	}

	_, res := ffetPlan(t, 0.84)
	if !res.Feasible {
		t.Errorf("84%% should be feasible: %s", res.Reason)
	}
	_, res = ffetPlan(t, 0.88)
	if res.Feasible {
		t.Error("88% must be infeasible (tap-cell violation)")
	}
}

func TestCFETUsesNTSVs(t *testing.T) {
	st := tech.NewCFET()
	fp, err := floorplan.New(st, 300_000_000, 0.9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(fp, tech.Pattern{Front: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Taps) != 0 {
		t.Error("CFET must not place Power Tap Cells")
	}
	if len(res.NTSVs) == 0 {
		t.Error("CFET plan needs nTSVs")
	}
	if !res.Feasible {
		t.Errorf("CFET at 90%% should pass powerplan: %s", res.Reason)
	}
	if len(res.Blockages) != 0 {
		t.Error("CFET must not block row sites")
	}
}

func TestPDNLayerFollowsPattern(t *testing.T) {
	st := tech.NewFFET()
	fp, _ := floorplan.New(st, 300_000_000, 0.7, 1.0)
	res, err := Plan(fp, tech.Pattern{Front: 6, Back: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stripes {
		if s.Layer != "BM8" {
			t.Errorf("stripe layer = %s, want BM8 (2 above BM6 signals)", s.Layer)
		}
	}
}

func TestInvalidPatternRejected(t *testing.T) {
	st := tech.NewCFET()
	fp, _ := floorplan.New(st, 300_000_000, 0.7, 1.0)
	if _, err := Plan(fp, tech.Pattern{Front: 12, Back: 12}); err == nil {
		t.Fatal("CFET with backside signals must be rejected")
	}
}

func TestSpecialNetsAndComponents(t *testing.T) {
	fp, res := ffetPlan(t, 0.7)
	snets := res.SpecialNets(fp)
	if len(snets) != 2 {
		t.Fatalf("special nets = %d", len(snets))
	}
	for _, sn := range snets {
		if len(sn.Wires) == 0 {
			t.Errorf("%s has no stripes", sn.Name)
		}
		for _, w := range sn.Wires {
			if w.From.X != w.To.X {
				t.Errorf("%s stripe not vertical", sn.Name)
			}
		}
	}
	comps := res.TapComponents()
	if len(comps) != len(res.Taps) {
		t.Errorf("components = %d, taps = %d", len(comps), len(res.Taps))
	}
	for _, c := range comps {
		if !c.Fixed || c.Macro != "PWRTAP" {
			t.Errorf("tap component %+v must be FIXED PWRTAP", c)
		}
	}
}
