// Package tech describes the virtual 5 nm technology used by the FFET /
// CFET evaluation: metal layer stacks on the frontside and backside of the
// wafer (paper Table II), per-layer electrical models, cell grid geometry
// (CPP, routing tracks) and supply parameters.
//
// Two stacks are provided:
//
//   - 4T CFET: signal metals FM1..FM12 on the frontside only; BM1/BM2 exist
//     but are reserved for the backside power delivery network (BSPDN).
//   - 3.5T FFET: a symmetric stack — FM0..FM12 mirrored by BM0..BM12, with
//     signal routing possible on both sides.
//
// FM0/BM0 are intra-cell layers and never used for inter-cell routing,
// matching the paper's evaluation rules.
package tech

import (
	"fmt"
	"math"
	"sort"
)

// Side distinguishes the two faces of the wafer.
type Side int

const (
	// Front is the frontside of the wafer (nFET side in this work).
	Front Side = iota
	// Back is the backside of the wafer (pFET side in this work).
	Back
)

// String returns "F" or "B", matching the layer naming convention.
func (s Side) String() string {
	if s == Front {
		return "F"
	}
	return "B"
}

// Opposite returns the other wafer side.
func (s Side) Opposite() Side {
	if s == Front {
		return Back
	}
	return Front
}

// Arch identifies the transistor architecture under evaluation.
type Arch int

const (
	// FFET is the 3.5T Flip FET with symmetric dual-sided metals.
	FFET Arch = iota
	// CFET is the 4T Complementary FET with frontside signals and a
	// backside reserved for power delivery.
	CFET
)

func (a Arch) String() string {
	if a == FFET {
		return "FFET"
	}
	return "CFET"
}

// Direction is the preferred routing direction of a metal layer.
type Direction int

const (
	// Horizontal wires run along the X axis (cell row direction).
	Horizontal Direction = iota
	// Vertical wires run along the Y axis.
	Vertical
)

func (d Direction) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// Layer is one metal layer of a stack.
type Layer struct {
	Name    string    // e.g. "FM2", "BM0", "BPR"
	Side    Side      // which wafer face the layer is on
	Index   int       // metal index: 0 for M0, 1 for M1, ...
	PitchNm int64     // minimum wire pitch
	WidthNm int64     // default wire width
	Dir     Direction // preferred routing direction
	RPerUm  float64   // wire resistance, kΩ per µm of wire
	CPerUm  float64   // wire capacitance, fF per µm of wire
	PDNOnly bool      // layer reserved for power delivery (CFET BM1/BM2, BPR)
}

// Signal reports whether the layer may carry inter-cell signal routing.
// M0 layers are intra-cell only; PDN-only layers carry power.
func (l Layer) Signal() bool { return !l.PDNOnly && l.Index >= 1 }

// Stack is a complete metal stack for one architecture.
type Stack struct {
	Arch   Arch
	Layers []Layer // sorted by (Side, Index)

	// Cell grid geometry.
	CPPNm        int64   // contacted poly pitch (cell width quantum)
	TrackNm      int64   // routing track pitch = M2 pitch (1T)
	HeightTracks float64 // standard-cell height in tracks (3.5 or 4)

	// Electrical environment.
	VDD      float64 // supply voltage, volts
	ViaRKOhm float64 // resistance of one via cut between adjacent layers, kΩ
	ViaCfF   float64 // capacitance added per via, fF

	// Power planning.
	PowerStripePitchCPP int64 // BSPDN stripe pitch in CPP units (paper: 64)

	index map[string]int // layer name -> position in Layers
}

// Electrical model anchors. Resistance scales roughly with 1/(w·t) and both
// width and thickness track the pitch, giving R ∝ pitch⁻²; capacitance per
// µm is nearly pitch-independent with a mild increase for thick wires.
const (
	refPitchNm = 30.0
	refRKOhm   = 0.55 // kΩ/µm at the 30 nm reference pitch
	refCfF     = 0.20 // fF/µm baseline
)

// wireR returns the per-µm resistance (kΩ/µm) model for a given pitch.
func wireR(pitchNm int64) float64 {
	r := refRKOhm * math.Pow(refPitchNm/float64(pitchNm), 2)
	return math.Max(r, 0.0008)
}

// wireC returns the per-µm capacitance (fF/µm) model for a given pitch.
// Tight-pitch lower metals are dominated by lateral coupling to dense
// neighbors, so capacitance per µm falls slightly as pitch relaxes.
func wireC(pitchNm int64) float64 {
	c := refCfF - 0.035*math.Log10(float64(pitchNm)/refPitchNm)
	return math.Max(c, 0.14)
}

// table2 holds the published pitch table (paper Table II). Index 0 is M0.
// FFET backside mirrors the frontside exactly; CFET backside has only the
// PDN-only BM1/BM2 with relaxed pitches plus the BPR.
var table2FrontPitch = []int64{
	28,  // M0 (intra-cell)
	34,  // M1
	30,  // M2
	42,  // M3
	42,  // M4
	76,  // M5
	76,  // M6
	76,  // M7
	76,  // M8
	76,  // M9
	76,  // M10
	126, // M11
	720, // M12
}

// MaxMetal is the highest metal index available in either stack.
const MaxMetal = 12

// PolyPitchNm is the contacted poly pitch from Table II.
const PolyPitchNm = 50

// layerDir returns the preferred direction for a metal index. M0 runs
// horizontally along the cell; directions alternate above it.
func layerDir(index int) Direction {
	if index%2 == 0 {
		return Horizontal
	}
	return Vertical
}

func makeLayer(side Side, index int, pitch int64, pdnOnly bool) Layer {
	return Layer{
		Name:    fmt.Sprintf("%sM%d", side, index),
		Side:    side,
		Index:   index,
		PitchNm: pitch,
		WidthNm: pitch / 2,
		Dir:     layerDir(index),
		RPerUm:  wireR(pitch),
		CPerUm:  wireC(pitch),
		PDNOnly: pdnOnly,
	}
}

func newStack(arch Arch) *Stack {
	s := &Stack{
		Arch:                arch,
		CPPNm:               PolyPitchNm,
		TrackNm:             30, // M2 pitch defines 1T
		VDD:                 0.7,
		ViaRKOhm:            0.020, // 20 Ω per cut
		ViaCfF:              0.02,
		PowerStripePitchCPP: 64,
	}
	for i, p := range table2FrontPitch {
		s.Layers = append(s.Layers, makeLayer(Front, i, p, false))
	}
	switch arch {
	case FFET:
		s.HeightTracks = 3.5
		for i, p := range table2FrontPitch {
			s.Layers = append(s.Layers, makeLayer(Back, i, p, false))
		}
	case CFET:
		s.HeightTracks = 4.0
		// Buried power rail inside the cell, plus PDN-only backside metals.
		bpr := Layer{
			Name: "BPR", Side: Back, Index: 0, PitchNm: 120, WidthNm: 60,
			Dir: Horizontal, RPerUm: wireR(120), CPerUm: wireC(120), PDNOnly: true,
		}
		s.Layers = append(s.Layers, bpr)
		s.Layers = append(s.Layers, makeLayer(Back, 1, 3200, true))
		s.Layers = append(s.Layers, makeLayer(Back, 2, 2400, true))
	}
	sort.SliceStable(s.Layers, func(i, j int) bool {
		a, b := s.Layers[i], s.Layers[j]
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		return a.Index < b.Index
	})
	s.index = make(map[string]int, len(s.Layers))
	for i, l := range s.Layers {
		s.index[l.Name] = i
	}
	return s
}

// NewFFET returns the 3.5T FFET stack of Table II.
func NewFFET() *Stack { return newStack(FFET) }

// NewCFET returns the 4T CFET stack of Table II.
func NewCFET() *Stack { return newStack(CFET) }

// New returns the stack for the given architecture.
func New(arch Arch) *Stack { return newStack(arch) }

// Layer returns the named layer, or false if the stack does not have it.
func (s *Stack) Layer(name string) (Layer, bool) {
	i, ok := s.index[name]
	if !ok {
		return Layer{}, false
	}
	return s.Layers[i], true
}

// MustLayer returns the named layer and panics if it does not exist. It is
// intended for layer names constructed from validated patterns.
func (s *Stack) MustLayer(name string) Layer {
	l, ok := s.Layer(name)
	if !ok {
		panic("tech: unknown layer " + name)
	}
	return l
}

// Metal returns the layer with the given side and index.
func (s *Stack) Metal(side Side, index int) (Layer, bool) {
	return s.Layer(fmt.Sprintf("%sM%d", side, index))
}

// CellHeightNm returns the standard-cell height in nm.
func (s *Stack) CellHeightNm() int64 {
	return int64(s.HeightTracks * float64(s.TrackNm))
}

// PowerStripePitchNm returns the BSPDN stripe pitch in nm.
func (s *Stack) PowerStripePitchNm() int64 {
	return s.PowerStripePitchCPP * s.CPPNm
}

// Pattern selects how many signal routing layers are used on each side,
// e.g. Pattern{Front:12, Back:12} is the paper's "FM12BM12" and
// Pattern{Front:12, Back:0} is "FM12". Counts refer to the highest metal
// index used; M0 never routes inter-cell signals.
type Pattern struct {
	Front int
	Back  int
}

// String renders the pattern in the paper's notation, e.g. "FM6BM6".
func (p Pattern) String() string {
	if p.Back == 0 {
		return fmt.Sprintf("FM%d", p.Front)
	}
	return fmt.Sprintf("FM%dBM%d", p.Front, p.Back)
}

// Total returns the total number of signal routing layers in the pattern.
func (p Pattern) Total() int { return p.Front + p.Back }

// Validate checks the pattern against a stack: layer counts must exist and
// PDN-only layers cannot route signals.
func (s *Stack) Validate(p Pattern) error {
	if p.Front < 0 || p.Front > MaxMetal {
		return fmt.Errorf("tech: frontside layer count %d out of range [0,%d]", p.Front, MaxMetal)
	}
	if p.Back < 0 || p.Back > MaxMetal {
		return fmt.Errorf("tech: backside layer count %d out of range [0,%d]", p.Back, MaxMetal)
	}
	if p.Front == 0 && p.Back == 0 {
		return fmt.Errorf("tech: pattern %v has no routing layers", p)
	}
	if s.Arch == CFET && p.Back > 0 {
		return fmt.Errorf("tech: CFET backside is PDN-only; pattern %v invalid", p)
	}
	return nil
}

// RoutingLayers returns the signal routing layers selected by the pattern,
// ordered by (side, index). M1 is the lowest inter-cell routing layer.
func (s *Stack) RoutingLayers(p Pattern) []Layer {
	var out []Layer
	for _, l := range s.Layers {
		if !l.Signal() {
			continue
		}
		max := p.Front
		if l.Side == Back {
			max = p.Back
		}
		if l.Index <= max {
			out = append(out, l)
		}
	}
	return out
}

// SideRoutingLayers returns the signal routing layers on one side.
func (s *Stack) SideRoutingLayers(p Pattern, side Side) []Layer {
	var out []Layer
	for _, l := range s.RoutingLayers(p) {
		if l.Side == side {
			out = append(out, l)
		}
	}
	return out
}

// HighestPDNLayer returns the index of the highest backside layer occupied
// by the PDN. For CFET this is BM2 (fixed); for FFET it sits above the
// highest backside signal layer, per the paper's Section IV.
func (s *Stack) HighestPDNLayer(p Pattern) int {
	if s.Arch == CFET {
		return 2
	}
	h := p.Back + 2
	if h > MaxMetal {
		h = MaxMetal
	}
	if h < 2 {
		h = 2
	}
	return h
}

// TracksPerGCell returns how many routing tracks of layer l fit across a
// gcell of the given span. Used by the global router for edge capacity.
func TracksPerGCell(l Layer, gcellNm int64) int {
	if l.PitchNm <= 0 {
		return 0
	}
	return int(gcellNm / l.PitchNm)
}

// ViaStackR returns the resistance of a via stack traversing |to-from|
// layer boundaries on one side, in kΩ.
func (s *Stack) ViaStackR(from, to int) float64 {
	d := from - to
	if d < 0 {
		d = -d
	}
	return float64(d) * s.ViaRKOhm
}

// AllPatternsTotal enumerates every front/back split of exactly total
// routing layers with at least minPerSide on each side, in descending
// frontside count (the order used in the paper's Table III exploration).
func AllPatternsTotal(total, minPerSide int) []Pattern {
	var out []Pattern
	for f := total - minPerSide; f >= minPerSide; f-- {
		b := total - f
		if f > MaxMetal || b > MaxMetal {
			continue
		}
		out = append(out, Pattern{Front: f, Back: b})
	}
	return out
}
