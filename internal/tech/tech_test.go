package tech

import (
	"testing"
	"testing/quick"
)

func TestTable2FFETStack(t *testing.T) {
	s := NewFFET()
	if s.Arch != FFET {
		t.Fatalf("arch = %v", s.Arch)
	}
	// Symmetric stack: 13 layers per side.
	if got := len(s.Layers); got != 26 {
		t.Fatalf("FFET layer count = %d, want 26", got)
	}
	wantPitch := map[string]int64{
		"FM0": 28, "FM1": 34, "FM2": 30, "FM3": 42, "FM4": 42,
		"FM5": 76, "FM10": 76, "FM11": 126, "FM12": 720,
		"BM0": 28, "BM1": 34, "BM2": 30, "BM3": 42, "BM4": 42,
		"BM5": 76, "BM10": 76, "BM11": 126, "BM12": 720,
	}
	for name, p := range wantPitch {
		l, ok := s.Layer(name)
		if !ok {
			t.Errorf("missing layer %s", name)
			continue
		}
		if l.PitchNm != p {
			t.Errorf("%s pitch = %d, want %d", name, l.PitchNm, p)
		}
		if l.PDNOnly {
			t.Errorf("%s must not be PDN-only in FFET", name)
		}
	}
	if h := s.CellHeightNm(); h != 105 {
		t.Errorf("FFET cell height = %d nm, want 105 (3.5T x 30nm)", h)
	}
}

func TestTable2CFETStack(t *testing.T) {
	s := NewCFET()
	// Frontside 13 + BPR + BM1 + BM2.
	if got := len(s.Layers); got != 16 {
		t.Fatalf("CFET layer count = %d, want 16", got)
	}
	bm1 := s.MustLayer("BM1")
	bm2 := s.MustLayer("BM2")
	if bm1.PitchNm != 3200 || bm2.PitchNm != 2400 {
		t.Errorf("CFET PDN pitches = %d/%d, want 3200/2400", bm1.PitchNm, bm2.PitchNm)
	}
	if !bm1.PDNOnly || !bm2.PDNOnly {
		t.Error("CFET BM1/BM2 must be PDN-only")
	}
	bpr, ok := s.Layer("BPR")
	if !ok || bpr.PitchNm != 120 || !bpr.PDNOnly {
		t.Errorf("BPR = %+v ok=%v, want pitch 120 PDN-only", bpr, ok)
	}
	if h := s.CellHeightNm(); h != 120 {
		t.Errorf("CFET cell height = %d nm, want 120 (4T x 30nm)", h)
	}
}

func TestSignalLayerRules(t *testing.T) {
	for _, s := range []*Stack{NewFFET(), NewCFET()} {
		for _, l := range s.Layers {
			if l.Index == 0 && l.Signal() {
				t.Errorf("%s %s: M0 must never be a signal routing layer", s.Arch, l.Name)
			}
			if l.PDNOnly && l.Signal() {
				t.Errorf("%s %s: PDN-only layer cannot be signal", s.Arch, l.Name)
			}
		}
	}
}

func TestRoutingLayersPattern(t *testing.T) {
	ffet := NewFFET()
	got := ffet.RoutingLayers(Pattern{Front: 12, Back: 12})
	if len(got) != 24 {
		t.Errorf("FM12BM12 routing layers = %d, want 24", len(got))
	}
	got = ffet.RoutingLayers(Pattern{Front: 6, Back: 6})
	if len(got) != 12 {
		t.Errorf("FM6BM6 routing layers = %d, want 12", len(got))
	}
	for _, l := range got {
		if l.Index < 1 || l.Index > 6 {
			t.Errorf("FM6BM6 contains %s", l.Name)
		}
	}
	cfet := NewCFET()
	got = cfet.RoutingLayers(Pattern{Front: 12})
	if len(got) != 12 {
		t.Errorf("CFET FM12 routing layers = %d, want 12", len(got))
	}
	for _, l := range got {
		if l.Side != Front {
			t.Errorf("CFET routing layer on backside: %s", l.Name)
		}
	}
}

func TestPatternValidate(t *testing.T) {
	ffet, cfet := NewFFET(), NewCFET()
	if err := ffet.Validate(Pattern{Front: 12, Back: 12}); err != nil {
		t.Errorf("FM12BM12 on FFET: %v", err)
	}
	if err := ffet.Validate(Pattern{Front: 2, Back: 2}); err != nil {
		t.Errorf("FM2BM2 on FFET: %v", err)
	}
	if err := cfet.Validate(Pattern{Front: 12, Back: 1}); err == nil {
		t.Error("CFET with backside signals must be invalid")
	}
	if err := cfet.Validate(Pattern{Front: 12}); err != nil {
		t.Errorf("FM12 on CFET: %v", err)
	}
	if err := ffet.Validate(Pattern{}); err == nil {
		t.Error("empty pattern must be invalid")
	}
	if err := ffet.Validate(Pattern{Front: 13}); err == nil {
		t.Error("13 layers must be invalid")
	}
}

func TestPatternString(t *testing.T) {
	cases := []struct {
		p    Pattern
		want string
	}{
		{Pattern{Front: 12, Back: 12}, "FM12BM12"},
		{Pattern{Front: 12}, "FM12"},
		{Pattern{Front: 6, Back: 6}, "FM6BM6"},
		{Pattern{Front: 8, Back: 4}, "FM8BM4"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%+v String = %q, want %q", c.p, got, c.want)
		}
	}
}

func TestElectricalMonotonicity(t *testing.T) {
	// Wider-pitch layers must have strictly lower resistance per µm.
	s := NewFFET()
	fm2 := s.MustLayer("FM2")
	fm5 := s.MustLayer("FM5")
	fm12 := s.MustLayer("FM12")
	if !(fm2.RPerUm > fm5.RPerUm && fm5.RPerUm > fm12.RPerUm) {
		t.Errorf("R/µm not monotone: FM2=%.4f FM5=%.4f FM12=%.4f",
			fm2.RPerUm, fm5.RPerUm, fm12.RPerUm)
	}
	// Sanity bands for a 5 nm node.
	if fm2.RPerUm < 0.1 || fm2.RPerUm > 2.0 {
		t.Errorf("FM2 R/µm = %.3f kΩ/µm outside plausible band", fm2.RPerUm)
	}
	if fm2.CPerUm < 0.1 || fm2.CPerUm > 0.4 {
		t.Errorf("FM2 C/µm = %.3f fF/µm outside plausible band", fm2.CPerUm)
	}
}

func TestStackSymmetryFFET(t *testing.T) {
	s := NewFFET()
	for i := 0; i <= MaxMetal; i++ {
		f, okF := s.Metal(Front, i)
		b, okB := s.Metal(Back, i)
		if !okF || !okB {
			t.Fatalf("missing metal %d: front=%v back=%v", i, okF, okB)
		}
		if f.PitchNm != b.PitchNm || f.RPerUm != b.RPerUm || f.CPerUm != b.CPerUm {
			t.Errorf("M%d asymmetric: front=%+v back=%+v", i, f, b)
		}
		if f.Dir != b.Dir {
			t.Errorf("M%d direction asymmetric", i)
		}
	}
}

func TestDirectionsAlternate(t *testing.T) {
	s := NewFFET()
	for i := 1; i <= MaxMetal; i++ {
		l, _ := s.Metal(Front, i)
		prev, _ := s.Metal(Front, i-1)
		if l.Dir == prev.Dir {
			t.Errorf("layers M%d and M%d share direction %v", i-1, i, l.Dir)
		}
	}
}

func TestHighestPDNLayer(t *testing.T) {
	ffet, cfet := NewFFET(), NewCFET()
	if got := cfet.HighestPDNLayer(Pattern{Front: 12}); got != 2 {
		t.Errorf("CFET highest PDN = %d, want 2", got)
	}
	if got := ffet.HighestPDNLayer(Pattern{Front: 6, Back: 6}); got != 8 {
		t.Errorf("FFET FM6BM6 highest PDN = %d, want 8", got)
	}
	if got := ffet.HighestPDNLayer(Pattern{Front: 12, Back: 12}); got != 12 {
		t.Errorf("FFET FM12BM12 highest PDN = %d, want 12 (clamped)", got)
	}
}

func TestPowerStripePitch(t *testing.T) {
	s := NewFFET()
	if got := s.PowerStripePitchNm(); got != 64*50 {
		t.Errorf("power stripe pitch = %d, want 3200", got)
	}
}

func TestTracksPerGCell(t *testing.T) {
	s := NewFFET()
	fm2 := s.MustLayer("FM2")
	if got := TracksPerGCell(fm2, 1500); got != 50 {
		t.Errorf("tracks per 1.5µm gcell at 30nm pitch = %d, want 50", got)
	}
	fm12 := s.MustLayer("FM12")
	if got := TracksPerGCell(fm12, 1500); got != 2 {
		t.Errorf("FM12 tracks = %d, want 2", got)
	}
}

func TestAllPatternsTotal(t *testing.T) {
	ps := AllPatternsTotal(12, 2)
	if len(ps) != 9 {
		t.Fatalf("got %d patterns, want 9 (10..2 front)", len(ps))
	}
	for _, p := range ps {
		if p.Total() != 12 {
			t.Errorf("pattern %v total = %d", p, p.Total())
		}
		if p.Front < 2 || p.Back < 2 {
			t.Errorf("pattern %v violates minPerSide", p)
		}
	}
	if ps[0] != (Pattern{Front: 10, Back: 2}) {
		t.Errorf("first pattern = %v, want FM10BM2", ps[0])
	}
}

// Property: wire R decreases and C decreases (weakly, coupling-dominated)
// with pitch, and both stay in plausible bands.
func TestWireModelProperties(t *testing.T) {
	prop := func(a, b uint16) bool {
		p1 := int64(a%3000) + 20
		p2 := int64(b%3000) + 20
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return wireR(p1) >= wireR(p2) && wireC(p1) >= wireC(p2) &&
			wireC(p1) <= 0.4 && wireC(p2) >= 0.14
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestViaStackR(t *testing.T) {
	s := NewFFET()
	if got := s.ViaStackR(1, 5); got != 4*s.ViaRKOhm {
		t.Errorf("via stack R = %v", got)
	}
	if got := s.ViaStackR(5, 1); got != 4*s.ViaRKOhm {
		t.Errorf("via stack R reversed = %v", got)
	}
	if got := s.ViaStackR(3, 3); got != 0 {
		t.Errorf("zero-hop via stack R = %v", got)
	}
}
