// Package liberty implements NLDM-style (non-linear delay model) lookup
// tables and timing arcs, the characterization format produced by the
// library generator and consumed by static timing analysis.
//
// A Table is indexed by input slew (ps) and output load (fF) and stores
// delay (ps), output slew (ps) or switching energy (fJ). Lookups use
// bilinear interpolation inside the characterized grid and linear
// extrapolation outside it, matching common STA engine behaviour.
package liberty

import (
	"fmt"
	"sort"
)

// Table is a 2-D characterization table over (input slew, output load).
type Table struct {
	Slews  []float64   // ps, strictly ascending
	Loads  []float64   // fF, strictly ascending
	Values [][]float64 // Values[i][j] for Slews[i], Loads[j]
}

// NewTable evaluates f over the given axes to build a table.
// It panics if either axis is empty or not strictly ascending.
func NewTable(slews, loads []float64, f func(slew, load float64) float64) *Table {
	checkAxis("slews", slews)
	checkAxis("loads", loads)
	t := &Table{
		Slews:  append([]float64(nil), slews...),
		Loads:  append([]float64(nil), loads...),
		Values: make([][]float64, len(slews)),
	}
	for i, s := range slews {
		t.Values[i] = make([]float64, len(loads))
		for j, l := range loads {
			t.Values[i][j] = f(s, l)
		}
	}
	return t
}

func checkAxis(name string, axis []float64) {
	if len(axis) == 0 {
		panic("liberty: empty " + name + " axis")
	}
	for i := 1; i < len(axis); i++ {
		if axis[i] <= axis[i-1] {
			panic(fmt.Sprintf("liberty: %s axis not strictly ascending at %d", name, i))
		}
	}
}

// segment finds the interpolation cell for v in axis: the index i such that
// axis[i] <= v <= axis[i+1], clamped to the boundary cells so out-of-range
// values extrapolate along the edge segment.
func segment(axis []float64, v float64) int {
	n := len(axis)
	if n == 1 {
		return 0
	}
	i := sort.SearchFloat64s(axis, v)
	switch {
	case i <= 0:
		return 0
	case i >= n:
		return n - 2
	default:
		return i - 1
	}
}

// Lookup returns the bilinearly interpolated value at (slew, load),
// linearly extrapolating when the query lies outside the grid.
func (t *Table) Lookup(slew, load float64) float64 {
	i := segment(t.Slews, slew)
	j := segment(t.Loads, load)
	if len(t.Slews) == 1 && len(t.Loads) == 1 {
		return t.Values[0][0]
	}
	var fs, fl float64
	i2, j2 := i, j
	if len(t.Slews) > 1 {
		i2 = i + 1
		fs = (slew - t.Slews[i]) / (t.Slews[i2] - t.Slews[i])
	}
	if len(t.Loads) > 1 {
		j2 = j + 1
		fl = (load - t.Loads[j]) / (t.Loads[j2] - t.Loads[j])
	}
	v00 := t.Values[i][j]
	v01 := t.Values[i][j2]
	v10 := t.Values[i2][j]
	v11 := t.Values[i2][j2]
	return v00*(1-fs)*(1-fl) + v10*fs*(1-fl) + v01*(1-fs)*fl + v11*fs*fl
}

// MaxValue returns the largest characterized value.
func (t *Table) MaxValue() float64 {
	max := t.Values[0][0]
	for _, row := range t.Values {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// Scale returns a copy of the table with every value multiplied by k.
func (t *Table) Scale(k float64) *Table {
	out := &Table{
		Slews:  append([]float64(nil), t.Slews...),
		Loads:  append([]float64(nil), t.Loads...),
		Values: make([][]float64, len(t.Values)),
	}
	for i, row := range t.Values {
		out.Values[i] = make([]float64, len(row))
		for j, v := range row {
			out.Values[i][j] = v * k
		}
	}
	return out
}

// Unateness describes how an output transition relates to the triggering
// input transition through a timing arc.
type Unateness int

const (
	// NegativeUnate arcs invert: a rising input causes a falling output.
	NegativeUnate Unateness = iota
	// PositiveUnate arcs buffer: a rising input causes a rising output.
	PositiveUnate
	// NonUnate arcs (e.g. MUX select, XOR inputs) can cause either edge.
	NonUnate
)

func (u Unateness) String() string {
	switch u {
	case NegativeUnate:
		return "negative_unate"
	case PositiveUnate:
		return "positive_unate"
	default:
		return "non_unate"
	}
}

// Arc is one combinational timing arc of a cell: input pin -> output pin.
// Delay and output-slew tables are split by the *output* transition edge;
// energy tables give the internal switching energy per output transition.
type Arc struct {
	From  string
	To    string
	Unate Unateness

	DelayRise *Table // output rising
	DelayFall *Table // output falling
	SlewRise  *Table
	SlewFall  *Table

	EnergyRise *Table // fJ per output rise (internal, excludes load)
	EnergyFall *Table // fJ per output fall
}

// WorstDelay returns the larger of the rise/fall delays at an operating
// point; STA uses it for graph construction before edge-accurate analysis.
func (a *Arc) WorstDelay(slew, load float64) float64 {
	r := a.DelayRise.Lookup(slew, load)
	f := a.DelayFall.Lookup(slew, load)
	if r > f {
		return r
	}
	return f
}

// SeqSpec describes sequential behaviour of a flip-flop cell.
type SeqSpec struct {
	ClockPin string  // e.g. "CP"
	DataPin  string  // e.g. "D"
	SetupPs  float64 // setup time requirement at D vs CP rise
	HoldPs   float64 // hold time requirement
	// Clock-to-Q arcs (indexed by clock slew and Q load).
	ClkQRise *Table
	ClkQFall *Table
	// Internal energy per clock toggle (clock-pin power).
	ClockEnergy float64 // fJ per clock edge pair
}

// ClkQWorst returns the worse of the two clock-to-Q delays.
func (s *SeqSpec) ClkQWorst(slew, load float64) float64 {
	r := s.ClkQRise.Lookup(slew, load)
	f := s.ClkQFall.Lookup(slew, load)
	if r > f {
		return r
	}
	return f
}
