package liberty

import (
	"math"
	"testing"
	"testing/quick"
)

func linTable() *Table {
	// v = 2*slew + 3*load, exactly bilinear so interpolation is exact.
	return NewTable(
		[]float64{5, 10, 20, 40},
		[]float64{0.5, 1, 2, 4},
		func(s, l float64) float64 { return 2*s + 3*l },
	)
}

func TestLookupOnGridPoints(t *testing.T) {
	tb := linTable()
	for i, s := range tb.Slews {
		for j, l := range tb.Loads {
			got := tb.Lookup(s, l)
			want := tb.Values[i][j]
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Lookup(%v,%v) = %v, want %v", s, l, got, want)
			}
		}
	}
}

func TestLookupInterpolatesBilinear(t *testing.T) {
	tb := linTable()
	cases := []struct{ s, l float64 }{
		{7.5, 0.75}, {15, 3}, {12, 1.4}, {39, 0.6},
	}
	for _, c := range cases {
		got := tb.Lookup(c.s, c.l)
		want := 2*c.s + 3*c.l
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Lookup(%v,%v) = %v, want %v", c.s, c.l, got, want)
		}
	}
}

func TestLookupExtrapolates(t *testing.T) {
	tb := linTable()
	// Linear extrapolation of a linear function stays exact.
	cases := []struct{ s, l float64 }{
		{2, 0.25}, {80, 8}, {5, 10}, {100, 0.5},
	}
	for _, c := range cases {
		got := tb.Lookup(c.s, c.l)
		want := 2*c.s + 3*c.l
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("extrapolated Lookup(%v,%v) = %v, want %v", c.s, c.l, got, want)
		}
	}
}

func TestSingleCellAxes(t *testing.T) {
	tb := NewTable([]float64{10}, []float64{1}, func(s, l float64) float64 { return 42 })
	if got := tb.Lookup(3, 7); got != 42 {
		t.Errorf("constant table lookup = %v", got)
	}
	row := NewTable([]float64{10}, []float64{1, 2}, func(s, l float64) float64 { return l })
	if got := row.Lookup(99, 1.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("1-row table lookup = %v, want 1.5", got)
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-ascending axis")
		}
	}()
	NewTable([]float64{10, 10}, []float64{1}, func(s, l float64) float64 { return 0 })
}

func TestScale(t *testing.T) {
	tb := linTable()
	s := tb.Scale(2)
	if got, want := s.Lookup(10, 1), 2*(2*10+3*1.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("scaled lookup = %v, want %v", got, want)
	}
	// Original untouched.
	if got := tb.Lookup(10, 1); math.Abs(got-23) > 1e-12 {
		t.Errorf("original mutated: %v", got)
	}
}

func TestMaxValue(t *testing.T) {
	tb := linTable()
	want := 2*40 + 3*4.0
	if got := tb.MaxValue(); got != want {
		t.Errorf("MaxValue = %v, want %v", got, want)
	}
}

func TestArcWorstDelay(t *testing.T) {
	rise := NewTable([]float64{10}, []float64{1}, func(s, l float64) float64 { return 5 })
	fall := NewTable([]float64{10}, []float64{1}, func(s, l float64) float64 { return 7 })
	a := &Arc{DelayRise: rise, DelayFall: fall}
	if got := a.WorstDelay(10, 1); got != 7 {
		t.Errorf("WorstDelay = %v, want 7", got)
	}
}

func TestSeqClkQWorst(t *testing.T) {
	r := NewTable([]float64{10}, []float64{1}, func(s, l float64) float64 { return 12 })
	f := NewTable([]float64{10}, []float64{1}, func(s, l float64) float64 { return 9 })
	s := &SeqSpec{ClkQRise: r, ClkQFall: f}
	if got := s.ClkQWorst(10, 1); got != 12 {
		t.Errorf("ClkQWorst = %v, want 12", got)
	}
}

// Property: for a monotone characterization function, lookups inside the
// grid are bounded by the table min/max and monotone in load.
func TestLookupMonotoneInLoad(t *testing.T) {
	tb := NewTable(
		[]float64{5, 10, 20, 40, 80},
		[]float64{0.25, 0.5, 1, 2, 4},
		func(s, l float64) float64 { return 0.69 * 8 * (0.2 + l) * (1 + s/100) },
	)
	prop := func(sRaw, l1Raw, l2Raw uint16) bool {
		s := 5 + float64(sRaw%750)/10.0
		l1 := 0.25 + float64(l1Raw%375)/100.0
		l2 := 0.25 + float64(l2Raw%375)/100.0
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		return tb.Lookup(s, l1) <= tb.Lookup(s, l2)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: interpolation of a bilinear function is exact everywhere,
// including in extrapolation regions.
func TestLookupBilinearExactProperty(t *testing.T) {
	tb := linTable()
	prop := func(sRaw, lRaw int16) bool {
		s := float64(sRaw) / 100.0
		l := float64(lRaw) / 1000.0
		got := tb.Lookup(s, l)
		want := 2*s + 3*l
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
