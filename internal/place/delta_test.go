package place

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cts"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/powerplan"
	"repro/internal/tech"
)

// deltaFixture is a globally-placed (pre-legalization) design plus its
// retained legalization basis.
type deltaFixture struct {
	nl    *netlist.Netlist
	fp    *floorplan.Plan
	pp    *powerplan.Result
	basis *LegalBasis
}

func newDeltaFixture(t *testing.T, util float64) *deltaFixture {
	t.Helper()
	nl := smallDesign(t)
	fp, err := floorplan.New(lib.Stack, nl.CellAreaNm2(), util, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
	if err != nil {
		t.Fatal(err)
	}
	Global(nl, fp, DefaultOptions())
	basis := NewLegalBasis(nl, fp, pp.Blockages)
	if basis == nil {
		t.Fatal("NewLegalBasis failed on a legalizable design")
	}
	return &deltaFixture{nl: nl, fp: fp, pp: pp, basis: basis}
}

// runBoth applies mutate to two identical snapshots, legalizes one through
// the delta path and one through the full path, and asserts bit-identical
// positions plus a clean CheckLegal after the incremental path. mutate
// returns the moved set (over the snapshot it is given).
func (fx *deltaFixture) runBoth(t *testing.T, name string, mutate func(w *netlist.Netlist) []*netlist.Instance) {
	t.Helper()
	wantDelta := fx.nl.Snapshot()
	wantFull := fx.nl.Snapshot()
	moved := mutate(wantDelta)
	mutate(wantFull)

	if err := LegalizeDelta(wantDelta, fx.fp, fx.pp.Blockages, fx.basis, moved); err != nil {
		t.Fatalf("%s: LegalizeDelta: %v", name, err)
	}
	if err := CheckLegal(wantDelta, fx.fp, fx.pp.Blockages); err != nil {
		t.Fatalf("%s: delta placement illegal: %v", name, err)
	}
	if err := Legalize(wantFull, fx.fp, fx.pp.Blockages); err != nil {
		t.Fatalf("%s: full Legalize: %v", name, err)
	}
	if len(wantDelta.Instances) != len(wantFull.Instances) {
		t.Fatalf("%s: instance count diverged", name)
	}
	for i, a := range wantDelta.Instances {
		b := wantFull.Instances[i]
		if a.Pos != b.Pos {
			t.Fatalf("%s: %s delta=%v full=%v — incremental placement not bit-identical",
				name, a.Name, a.Pos, b.Pos)
		}
	}
}

// TestLegalizeDeltaMatchesFull is the property test pinning the delta
// legalizer to the full path: random moved-cell subsets (including empty
// and all-moved), blockage-adjacent targets, and the CTS buffer-insertion
// shape the flow actually produces must all legalize bit-identically.
func TestLegalizeDeltaMatchesFull(t *testing.T) {
	fx := newDeltaFixture(t, 0.7)
	W, H := fx.fp.Core.W(), fx.fp.Core.H()

	movable := make([]*netlist.Instance, 0, len(fx.nl.Instances))
	for _, inst := range fx.nl.Instances {
		if !inst.Fixed {
			movable = append(movable, inst)
		}
	}

	fx.runBoth(t, "empty", func(w *netlist.Netlist) []*netlist.Instance { return nil })

	for _, size := range []int{1, 5, 50, len(movable)} {
		rng := rand.New(rand.NewSource(int64(size)))
		// The seq/position choices must be identical across the two
		// snapshots, so draw them once against the fixture.
		picks := make([]int, size)
		targets := make([]geom.Point, size)
		perm := rng.Perm(len(movable))
		for i := 0; i < size; i++ {
			picks[i] = movable[perm[i]].Seq
			targets[i] = geom.Pt(rng.Int63n(W+1), rng.Int63n(H+1))
		}
		fx.runBoth(t, "random", func(w *netlist.Netlist) []*netlist.Instance {
			moved := make([]*netlist.Instance, size)
			for i, seq := range picks {
				inst := w.Instances[seq]
				inst.Pos = targets[i]
				moved[i] = inst
			}
			return moved
		})
	}

	// Blockage-adjacent: park moved cells exactly at blocked-interval
	// edges of blocked rows, where probe/take boundary behavior is
	// touchiest.
	rowH := fx.fp.Stack.CellHeightNm()
	type edge struct {
		seq int
		pos geom.Point
	}
	var edges []edge
	i := 0
	for ri := 0; ri < len(fx.fp.Rows) && len(edges) < 12; ri++ {
		for _, b := range fx.pp.Blockages[ri] {
			if i >= len(movable) {
				break
			}
			edges = append(edges,
				edge{movable[i].Seq, geom.Pt(b.Lo, int64(ri)*rowH)},
				edge{movable[(i+1)%len(movable)].Seq, geom.Pt(b.Hi, int64(ri)*rowH)})
			i += 2
		}
	}
	if len(edges) == 0 {
		t.Fatal("no blockages to test against")
	}
	fx.runBoth(t, "blockage-adjacent", func(w *netlist.Netlist) []*netlist.Instance {
		seen := make(map[int]bool)
		var moved []*netlist.Instance
		for _, e := range edges {
			inst := w.Instances[e.seq]
			inst.Pos = e.pos
			if !seen[e.seq] {
				seen[e.seq] = true
				moved = append(moved, inst)
			}
		}
		return moved
	})

	// CTS buffer insertion: the exact structural delta the flow's
	// StageCTS produces — new buffers at cluster centroids, base cells
	// untouched.
	nBase := len(fx.nl.Instances)
	fx.runBoth(t, "cts-buffers", func(w *netlist.Netlist) []*netlist.Instance {
		if _, err := cts.Run(w, fx.fp, cts.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		moved := make([]*netlist.Instance, 0, len(w.Instances)-nBase)
		for _, inst := range w.Instances[nBase:] {
			if !inst.Fixed {
				moved = append(moved, inst)
			}
		}
		return moved
	})

	// CTS insertion under a non-default fanout limit (the sweep shape).
	fx.runBoth(t, "cts-buffers-fanout8", func(w *netlist.Netlist) []*netlist.Instance {
		if _, err := cts.Run(w, fx.fp, cts.Options{MaxLeafFanout: 8, BufferDrive: 4}); err != nil {
			t.Fatal(err)
		}
		moved := make([]*netlist.Instance, 0, len(w.Instances)-nBase)
		for _, inst := range w.Instances[nBase:] {
			if !inst.Fixed {
				moved = append(moved, inst)
			}
		}
		return moved
	})
}

// TestLegalizeDeltaBasisMismatch pins the fallback contract: a basis that
// does not describe the netlist is rejected with ErrBasisMismatch and the
// placement is left untouched for the caller's full Legalize.
func TestLegalizeDeltaBasisMismatch(t *testing.T) {
	fx := newDeltaFixture(t, 0.7)

	// An undeclared move must be caught by verification.
	w := fx.nl.Snapshot()
	var victim *netlist.Instance
	for _, inst := range w.Instances {
		if !inst.Fixed {
			victim = inst
			break
		}
	}
	before := victim.Pos
	victim.Pos = geom.Pt(before.X+fx.fp.Stack.CPPNm, before.Y)
	err := LegalizeDelta(w, fx.fp, fx.pp.Blockages, fx.basis, nil)
	if !errors.Is(err, ErrBasisMismatch) {
		t.Fatalf("undeclared move: err = %v, want ErrBasisMismatch", err)
	}
	if victim.Pos.X != before.X+fx.fp.Stack.CPPNm {
		t.Error("mismatch rejection must not mutate positions")
	}

	// A nil basis and a Fixed moved cell are both mismatches.
	if err := LegalizeDelta(w, fx.fp, fx.pp.Blockages, nil, nil); !errors.Is(err, ErrBasisMismatch) {
		t.Fatalf("nil basis: err = %v, want ErrBasisMismatch", err)
	}
	var fixed *netlist.Instance
	for _, inst := range w.Instances {
		if inst.Fixed {
			fixed = inst
			break
		}
	}
	if fixed != nil {
		err := LegalizeDelta(w, fx.fp, fx.pp.Blockages, fx.basis, []*netlist.Instance{fixed})
		if !errors.Is(err, ErrBasisMismatch) {
			t.Fatalf("fixed moved cell: err = %v, want ErrBasisMismatch", err)
		}
	}
}

// TestRefineRefsMatchesRefine pins the retained-refs refinement to the
// direct path: a patched basis over a CTS delta must slide every cell to
// the same position RefineCtx computes from scratch.
func TestRefineRefsMatchesRefine(t *testing.T) {
	fx := newDeltaFixture(t, 0.7)
	basis := NewRefineBasis(fx.nl, fx.fp)

	run := func(patched bool) *netlist.Netlist {
		w := fx.nl.Snapshot()
		var dirty []int32
		if clk := w.ClockNet(); clk != nil {
			if clk.Driver.Inst != nil {
				dirty = append(dirty, int32(clk.Driver.Inst.Seq))
			}
			for _, s := range clk.Sinks {
				if s.Inst != nil {
					dirty = append(dirty, int32(s.Inst.Seq))
				}
			}
		}
		if _, err := cts.Run(w, fx.fp, cts.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		if clk := w.ClockNet(); clk != nil {
			for _, s := range clk.Sinks {
				if s.Inst != nil {
					dirty = append(dirty, int32(s.Inst.Seq))
				}
			}
		}
		if err := Legalize(w, fx.fp, fx.pp.Blockages); err != nil {
			t.Fatal(err)
		}
		if patched {
			refs, widths, ok := basis.PatchedRefs(w, fx.fp, dirty)
			if !ok {
				t.Fatal("PatchedRefs rejected a grown netlist")
			}
			if err := RefineRefsCtx(context.Background(), w, fx.fp, fx.pp.Blockages, 3, refs, widths); err != nil {
				t.Fatal(err)
			}
		} else {
			Refine(w, fx.fp, fx.pp.Blockages, 3)
		}
		if err := CheckLegal(w, fx.fp, fx.pp.Blockages); err != nil {
			t.Fatalf("refined placement illegal: %v", err)
		}
		return w
	}
	a, b := run(true), run(false)
	for i, ia := range a.Instances {
		if ia.Pos != b.Instances[i].Pos {
			t.Fatalf("%s: patched refine %v != direct refine %v", ia.Name, ia.Pos, b.Instances[i].Pos)
		}
	}
}
