package place

import (
	"unsafe"

	"repro/internal/geom"
)

// FootprintBytes estimates the retained heap bytes of the legalization
// basis: the pristine per-row free intervals and the recorded fold. An
// accounting estimate for cache budgeting, not an exact heap measurement.
func (b *LegalBasis) FootprintBytes() int64 {
	if b == nil {
		return 0
	}
	n := int64(unsafe.Sizeof(*b))
	n += int64(len(b.initFree)) * int64(unsafe.Sizeof([]geom.Interval{}))
	for _, row := range b.initFree {
		n += int64(len(row)) * int64(unsafe.Sizeof(geom.Interval{}))
	}
	n += int64(len(b.order)+len(b.wcpp)) * int64(unsafe.Sizeof(int32(0)))
	n += int64(len(b.px)+len(b.py)+len(b.w)) * int64(unsafe.Sizeof(int64(0)))
	n += int64(len(b.rec)) * int64(unsafe.Sizeof(legalRec{}))
	return n
}

// FootprintBytes estimates the retained heap bytes of the refinement
// basis: the per-instance endpoint collections and widths.
func (b *RefineBasis) FootprintBytes() int64 {
	if b == nil {
		return 0
	}
	n := int64(unsafe.Sizeof(*b))
	n += int64(len(b.refs)) * int64(unsafe.Sizeof([]int64{}))
	for _, r := range b.refs {
		n += int64(len(r)) * int64(unsafe.Sizeof(int64(0)))
	}
	n += int64(len(b.widths)) * int64(unsafe.Sizeof(int64(0)))
	return n
}
