package place

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/floorplan"
	"repro/internal/riscv"
	"repro/internal/synth"
	"repro/internal/tech"
)

func TestPlacementHPWLQuality(t *testing.T) {
	lib2 := cell.NewLibrary(tech.NewFFET())
	nl, _, _ := riscv.Generate(lib2, riscv.Config{Name: "q", Registers: 32})
	syn, _ := synth.Run(nl, synth.DefaultOptions(1.5))
	nl = syn.Netlist
	fp, _ := floorplan.New(lib2.Stack, nl.CellAreaNm2(), 0.76, 1.0)
	Global(nl, fp, DefaultOptions())
	h := HPWL(nl, fp)
	t.Logf("global HPWL = %.0f um (%.2f um/net), core %.1f um2",
		float64(h)/1000, float64(h)/1000/float64(len(nl.Nets)), fp.CoreAreaUm2())
	if err := Legalize(nl, fp, nil); err != nil {
		t.Fatal(err)
	}
	h2 := HPWL(nl, fp)
	t.Logf("legal HPWL = %.0f um (%.2f um/net), blowup %.2fx",
		float64(h2)/1000, float64(h2)/1000/float64(len(nl.Nets)), float64(h2)/float64(h))
	Refine(nl, fp, nil, 3)
	if err := CheckLegal(nl, fp, nil); err != nil {
		t.Fatalf("Refine broke legality: %v", err)
	}
	h3 := HPWL(nl, fp)
	t.Logf("refined HPWL = %.0f um (%.2f um/net)",
		float64(h3)/1000, float64(h3)/1000/float64(len(nl.Nets)))
}
