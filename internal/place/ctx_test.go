package place

import (
	"context"
	"errors"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/powerplan"
	"repro/internal/tech"
)

// TestPlaceCtxCancelled pins the placement cancellation contract for both
// the global and refinement passes: a cancelled context aborts promptly
// with the context cause in the chain.
func TestPlaceCtxCancelled(t *testing.T) {
	nl := smallDesign(t)
	fp, err := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := GlobalCtx(ctx, nl, fp, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled GlobalCtx = %v, want context.Canceled in chain", err)
	}

	// A full placement over a live context still works on the same design,
	// and the refinement entrypoint observes cancellation too.
	Global(nl, fp, DefaultOptions())
	if err := Legalize(nl, fp, pp.Blockages); err != nil {
		t.Fatal(err)
	}
	if err := RefineCtx(ctx, nl, fp, pp.Blockages, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RefineCtx = %v, want context.Canceled in chain", err)
	}
	if err := RefineCtx(context.Background(), nl, fp, pp.Blockages, 1); err != nil {
		t.Fatalf("RefineCtx on live context: %v", err)
	}
	if err := CheckLegal(nl, fp, pp.Blockages); err != nil {
		t.Fatalf("placement illegal after refine: %v", err)
	}
}
