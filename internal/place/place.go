// Package place implements standard-cell placement for the evaluation
// flow: a force-directed global placement with density spreading, followed
// by row legalization that honors the Power Tap Cell blockages from the
// powerplan. Legalization failure at high utilization is the "placement
// violations between standard cells and Power Tap Cells" mechanism that
// caps FFET utilization in the paper's Fig. 8(a).
package place

import (
	"cmp"
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// pollCtx returns ctx's error once it is cancelled, nil before. done is
// ctx.Done(), hoisted by the caller; a nil done (Background context)
// makes the check free.
func pollCtx(ctx context.Context, done <-chan struct{}) error {
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return fmt.Errorf("place: cancelled: %w", ctx.Err())
	default:
		return nil
	}
}

// Options tunes placement.
type Options struct {
	Seed        int64
	GlobalIters int
	// BinCount is the density grid resolution per axis.
	BinCount int
	// MaxAttractFanout excludes huge nets (pre-CTS clock, reset) from the
	// attraction model.
	MaxAttractFanout int
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{Seed: 1, GlobalIters: 24, BinCount: 28, MaxAttractFanout: 48}
}

// Result summarizes a placement.
type Result struct {
	HPWLNm    int64
	Rows      int
	Legalized int
}

// Place runs global placement and legalization in sequence. Blockages maps
// row index to blocked X intervals (tap cells + halos).
func Place(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, opt Options) (*Result, error) {
	if opt.GlobalIters <= 0 {
		opt = DefaultOptions()
	}
	Global(nl, fp, opt)
	if err := Legalize(nl, fp, blockages); err != nil {
		return nil, err
	}
	Refine(nl, fp, blockages, 3)
	return &Result{
		HPWLNm:    HPWL(nl, fp),
		Rows:      len(fp.Rows),
		Legalized: len(nl.Instances),
	}, nil
}

// center returns the instance center for wirelength models.
func center(inst *netlist.Instance, fp *floorplan.Plan) geom.Point {
	w := inst.Cell.WidthNm(fp.Stack)
	return geom.Pt(inst.Pos.X+w/2, inst.Pos.Y+fp.Stack.CellHeightNm()/2)
}

// pinPoint returns a net endpoint position.
func pinPoint(ref netlist.PinRef, fp *floorplan.Plan) geom.Point {
	if ref.IsPort() {
		return ref.Port.Pos
	}
	return center(ref.Inst, fp)
}

// HPWL computes the total half-perimeter wirelength of all signal nets.
func HPWL(nl *netlist.Netlist, fp *floorplan.Plan) int64 {
	var total int64
	pts := make([]geom.Point, 0, 16)
	for _, n := range nl.Nets {
		pts = pts[:0]
		if n.Driver != (netlist.PinRef{}) {
			pts = append(pts, pinPoint(n.Driver, fp))
		}
		for _, s := range n.Sinks {
			pts = append(pts, pinPoint(s, fp))
		}
		total += geom.HPWL(pts)
	}
	return total
}

// Global computes rough overlapping positions: seeded scatter, then
// alternating attraction (move to connected centroid) and density
// spreading passes. Fixed instances are never moved.
func Global(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) {
	// A Background context never cancels, so the error is unreachable.
	_ = GlobalCtx(context.Background(), nl, fp, opt)
}

// GlobalCtx is Global under a context: cancellation is observed between
// refinement iterations and the pass is abandoned mid-placement (the
// netlist holds partial positions — callers must treat a cancelled
// placement as unusable).
func GlobalCtx(ctx context.Context, nl *netlist.Netlist, fp *floorplan.Plan, opt Options) error {
	done := ctx.Done()
	rng := rand.New(rand.NewSource(opt.Seed))
	W, H := fp.Core.W(), fp.Core.H()
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		inst.Pos = geom.Pt(rng.Int63n(W+1), rng.Int63n(H+1))
	}
	fp.PlaceIOPorts(nl)

	// One workspace shared by every pass of the whole placement: centroid
	// accumulators indexed by Instance.Seq (flat int64 slices instead of
	// the pointer-keyed maps that dominated allocation volume and GC time
	// of the whole flow), the movable-cell list every rankSpread pass
	// re-sorts, and the spread density grid with its per-bin cell lists —
	// all rebuilt in place instead of reallocated per pass.
	ws := newGlobalWorkspace(len(nl.Instances))
	for it := 0; it < opt.GlobalIters; it++ {
		if err := pollCtx(ctx, done); err != nil {
			return err
		}
		ws.attract(nl, fp, opt)
		ws.attract(nl, fp, opt)
		if it%2 == 1 || it == opt.GlobalIters-1 {
			ws.rankSpread(nl, fp)
		}
	}
	// Local density cleanup then a last pull.
	ws.spread(nl, fp, opt)
	ws.attract(nl, fp, opt)
	return nil
}

// rankSpread redistributes cells uniformly along each axis by rank,
// preserving relative order (Gordian-style linear scaling). It undoes the
// central collapse of pure attraction while keeping neighborhoods intact.
func (ws *globalWorkspace) rankSpread(nl *netlist.Netlist, fp *floorplan.Plan) {
	cells := ws.movableCells(nl)
	if len(cells) < 2 {
		return
	}
	W, H := fp.Core.W(), fp.Core.H()
	// The (position, name) keys are total orders, so the unstable pdqsort
	// produces the same permutation the seed's stable merge sort did —
	// without its O(n log² n) rotations.
	slices.SortFunc(cells, func(a, b *netlist.Instance) int {
		if a.Pos.X != b.Pos.X {
			return cmp.Compare(a.Pos.X, b.Pos.X)
		}
		return strings.Compare(a.Name, b.Name)
	})
	n := int64(len(cells) - 1)
	for i, inst := range cells {
		x := int64(i) * W / n
		// Blend: 60% rank position, 40% attracted position.
		inst.Pos = geom.Pt((x*3+inst.Pos.X*2)/5, inst.Pos.Y)
	}
	slices.SortFunc(cells, func(a, b *netlist.Instance) int {
		if a.Pos.Y != b.Pos.Y {
			return cmp.Compare(a.Pos.Y, b.Pos.Y)
		}
		return strings.Compare(a.Name, b.Name)
	})
	for i, inst := range cells {
		y := int64(i) * H / n
		inst.Pos = geom.Pt(inst.Pos.X, (y*3+inst.Pos.Y*2)/5)
	}
}

// globalWorkspace holds every buffer the global-placement passes reuse:
// centroid accumulators indexed by Instance.Seq, per-net endpoint
// buffers, the movable-cell list, and the spread density grid. One
// workspace serves a whole Global call, so repeated passes allocate
// nothing.
type globalWorkspace struct {
	sumX, sumY, cnt []int64
	pts             []geom.Point
	insts           []*netlist.Instance
	cells           []*netlist.Instance // movable cells, rebuilt in place per pass
	bins            []densityBin        // spread density grid, per-bin lists reused
}

func newGlobalWorkspace(n int) *globalWorkspace {
	return &globalWorkspace{
		sumX: make([]int64, n),
		sumY: make([]int64, n),
		cnt:  make([]int64, n),
	}
}

// movableCells rebuilds the reusable movable-cell list in instance order
// (the order every pass's sort starts from, so reuse is bit-invisible).
func (ws *globalWorkspace) movableCells(nl *netlist.Netlist) []*netlist.Instance {
	cells := ws.cells[:0]
	for _, inst := range nl.Instances {
		if !inst.Fixed {
			cells = append(cells, inst)
		}
	}
	ws.cells = cells
	return cells
}

// attract moves each movable instance toward the centroid of everything
// it connects to.
func (ws *globalWorkspace) attract(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) {
	for i := range ws.cnt {
		ws.sumX[i] = 0
		ws.sumY[i] = 0
		ws.cnt[i] = 0
	}
	for _, n := range nl.Nets {
		if n.IsClock || n.Fanout() > opt.MaxAttractFanout {
			continue
		}
		pts := ws.pts[:0]
		insts := ws.insts[:0]
		if n.Driver != (netlist.PinRef{}) {
			pts = append(pts, pinPoint(n.Driver, fp))
			insts = append(insts, n.Driver.Inst)
		}
		for _, s := range n.Sinks {
			pts = append(pts, pinPoint(s, fp))
			insts = append(insts, s.Inst)
		}
		ws.pts, ws.insts = pts, insts
		// Each endpoint is pulled toward the centroid of the others.
		var cx, cy int64
		for _, p := range pts {
			cx += p.X
			cy += p.Y
		}
		n64 := int64(len(pts))
		for i, inst := range insts {
			if inst == nil || inst.Fixed {
				continue
			}
			// Centroid excluding self.
			ox := (cx - pts[i].X) / (n64 - 1 + boolTo64(n64 == 1))
			oy := (cy - pts[i].Y) / (n64 - 1 + boolTo64(n64 == 1))
			ws.sumX[inst.Seq] += ox
			ws.sumY[inst.Seq] += oy
			ws.cnt[inst.Seq]++
		}
	}
	for _, inst := range nl.Instances {
		if inst.Fixed || ws.cnt[inst.Seq] == 0 {
			continue
		}
		tx := ws.sumX[inst.Seq] / ws.cnt[inst.Seq]
		ty := ws.sumY[inst.Seq] / ws.cnt[inst.Seq]
		// Damped move.
		inst.Pos = geom.Pt(
			geom.Clamp64(inst.Pos.X+(tx-inst.Pos.X)*3/4, fp.Core.Lo.X, fp.Core.Hi.X),
			geom.Clamp64(inst.Pos.Y+(ty-inst.Pos.Y)*3/4, fp.Core.Lo.Y, fp.Core.Hi.Y),
		)
	}
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// spread relieves overfull density bins by pushing cells toward the least
// loaded neighbor bin. The grid and its per-bin cell lists live in the
// workspace: reset in place each call, never reallocated.
func (ws *globalWorkspace) spread(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) {
	nb := opt.BinCount
	if nb < 4 {
		nb = 4
	}
	W, H := fp.Core.W(), fp.Core.H()
	binW := (W + int64(nb) - 1) / int64(nb)
	binH := (H + int64(nb) - 1) / int64(nb)
	if binW == 0 || binH == 0 {
		return
	}
	if cap(ws.bins) < nb*nb {
		ws.bins = make([]densityBin, nb*nb)
	}
	bins := ws.bins[:nb*nb]
	for i := range bins {
		bins[i].area = 0
		bins[i].cells = bins[i].cells[:0]
	}
	ws.bins = bins
	idx := func(p geom.Point) int {
		bx := int(geom.Clamp64(p.X/binW, 0, int64(nb-1)))
		by := int(geom.Clamp64(p.Y/binH, 0, int64(nb-1)))
		return by*nb + bx
	}
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		i := idx(inst.Pos)
		bins[i].area += inst.Cell.AreaNm2(fp.Stack)
		bins[i].cells = append(bins[i].cells, inst)
	}
	capArea := binW * binH // 100% local density budget
	for by := 0; by < nb; by++ {
		for bx := 0; bx < nb; bx++ {
			b := &bins[by*nb+bx]
			if b.area <= capArea {
				continue
			}
			// Push the overflow (cells beyond capacity) to the least-dense
			// of the 4 neighbors, deterministically.
			sort.Slice(b.cells, func(i, j int) bool { return b.cells[i].Name < b.cells[j].Name })
			over := b.area - capArea
			for _, inst := range b.cells {
				if over <= 0 {
					break
				}
				tx, ty := bestNeighbor(bins, nb, bx, by)
				nx := geom.Clamp64(int64(tx)*binW+binW/2, 0, W)
				ny := geom.Clamp64(int64(ty)*binH+binH/2, 0, H)
				inst.Pos = geom.Pt((inst.Pos.X+nx)/2, (inst.Pos.Y+ny)/2)
				over -= inst.Cell.AreaNm2(fp.Stack)
			}
		}
	}
}

type densityBin struct {
	area  int64
	cells []*netlist.Instance
}

func bestNeighbor(bins []densityBin, nb, bx, by int) (int, int) {
	bestA := int64(1) << 62
	tx, ty := bx, by
	for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}} {
		x, y := bx+d[0], by+d[1]
		if x < 0 || y < 0 || x >= nb || y >= nb {
			continue
		}
		if a := bins[y*nb+x].area; a < bestA {
			bestA = a
			tx, ty = x, y
		}
	}
	return tx, ty
}

// Legalize snaps every movable instance onto row sites without overlaps,
// avoiding blocked intervals. It fails when the design cannot be legalized
// (e.g. utilization above the tap-cell cap).
func Legalize(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval) error {
	cpp := fp.Stack.CPPNm
	rowH := fp.Stack.CellHeightNm()

	// Free intervals per row.
	free := make([][]geom.Interval, len(fp.Rows))
	for i, r := range fp.Rows {
		ivs := []geom.Interval{{Lo: r.X0, Hi: r.X1}}
		blocked := append([]geom.Interval(nil), blockages[i]...)
		sort.Slice(blocked, func(a, b int) bool { return blocked[a].Lo < blocked[b].Lo })
		for _, b := range blocked {
			var next []geom.Interval
			for _, f := range ivs {
				if !f.Overlaps(b) {
					next = append(next, f)
					continue
				}
				if b.Lo > f.Lo {
					next = append(next, geom.Interval{Lo: f.Lo, Hi: b.Lo})
				}
				if b.Hi < f.Hi {
					next = append(next, geom.Interval{Lo: b.Hi, Hi: f.Hi})
				}
			}
			ivs = next
		}
		free[i] = ivs
	}

	// Place wide cells first within global-X order bands for stability.
	movable := make([]*netlist.Instance, 0, len(nl.Instances))
	for _, inst := range nl.Instances {
		if !inst.Fixed {
			movable = append(movable, inst)
		}
	}
	sort.Slice(movable, func(i, j int) bool {
		a, b := movable[i], movable[j]
		if a.Pos.X != b.Pos.X {
			return a.Pos.X < b.Pos.X
		}
		if a.Cell.WidthCPP != b.Cell.WidthCPP {
			return a.Cell.WidthCPP > b.Cell.WidthCPP
		}
		return a.Name < b.Name
	})

	for _, inst := range movable {
		w := inst.Cell.WidthNm(fp.Stack)
		targetRow := int(geom.Clamp64(inst.Pos.Y/rowH, 0, int64(len(fp.Rows)-1)))
		placed := false
		// Jointly minimize X displacement and row distance over windows of
		// increasing size, so a full local row spills to a neighbor row
		// instead of teleporting along its own row.
		for _, window := range []int{3, 8, len(fp.Rows)} {
			bestCost := int64(1) << 62
			bestRow, bestX := -1, int64(0)
			for d := 0; d <= window; d++ {
				rowPenalty := int64(d) * rowH
				if rowPenalty >= bestCost {
					break
				}
				for _, ri := range []int{targetRow - d, targetRow + d} {
					if ri < 0 || ri >= len(fp.Rows) || (d == 0 && ri != targetRow) {
						continue
					}
					if x, cost, ok := probe(free[ri], inst.Pos.X, w, cpp); ok {
						if total := cost + rowPenalty; total < bestCost {
							bestCost = total
							bestRow, bestX = ri, x
						}
					}
				}
			}
			if bestRow >= 0 {
				take(&free[bestRow], bestX, w)
				inst.Pos = geom.Pt(bestX, fp.Rows[bestRow].Y)
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("place: cannot legalize %s (%d sites): placement violation",
				inst.Name, inst.Cell.WidthCPP)
		}
	}
	return nil
}

// probe finds the best slot in a row's free list without committing.
func probe(free []geom.Interval, target, w, cpp int64) (int64, int64, bool) {
	bestCost := int64(1) << 62
	var bestX int64
	found := false
	for _, f := range free {
		lo := geom.SnapDown(f.Lo+cpp-1, 0, cpp)
		hi := f.Hi - w
		if hi < lo {
			continue
		}
		x := geom.Clamp64(target, lo, hi)
		x = geom.SnapDown(x, 0, cpp)
		if x < lo {
			x = lo
		}
		if cost := geom.Abs64(x - target); cost < bestCost {
			bestCost, bestX, found = cost, x, true
		}
	}
	return bestX, bestCost, found
}

// take commits a slot previously returned by probe, splicing the free
// list in place instead of rebuilding it.
func take(free *[]geom.Interval, x, w int64) {
	f := *free
	for i := range f {
		iv := f[i]
		if x < iv.Lo || x+w > iv.Hi {
			continue
		}
		hasL := x > iv.Lo
		hasR := x+w < iv.Hi
		switch {
		case hasL && hasR:
			f[i] = geom.Interval{Lo: iv.Lo, Hi: x}
			*free = slices.Insert(f, i+1, geom.Interval{Lo: x + w, Hi: iv.Hi})
		case hasL:
			f[i] = geom.Interval{Lo: iv.Lo, Hi: x}
		case hasR:
			f[i] = geom.Interval{Lo: x + w, Hi: iv.Hi}
		default:
			*free = append(f[:i], f[i+1:]...)
		}
		return
	}
	panic("place: take without matching probe")
}

// allocate finds a site-aligned slot of width w in the free list closest
// to target, removes it from the list, and returns its position.
func allocate(free *[]geom.Interval, target, w, cpp int64) (int64, bool) {
	bestCost := int64(1) << 62
	bestIdx := -1
	var bestX int64
	for i, f := range *free {
		lo := geom.SnapDown(f.Lo+cpp-1, 0, cpp) // first site boundary inside
		hi := f.Hi - w
		if hi < lo {
			continue
		}
		x := geom.Clamp64(target, lo, hi)
		x = geom.SnapDown(x, 0, cpp)
		if x < lo {
			x = lo
		}
		cost := geom.Abs64(x - target)
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
			bestX = x
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	f := (*free)[bestIdx]
	var repl []geom.Interval
	if bestX > f.Lo {
		repl = append(repl, geom.Interval{Lo: f.Lo, Hi: bestX})
	}
	if bestX+w < f.Hi {
		repl = append(repl, geom.Interval{Lo: bestX + w, Hi: f.Hi})
	}
	out := append([]geom.Interval{}, (*free)[:bestIdx]...)
	out = append(out, repl...)
	out = append(out, (*free)[bestIdx+1:]...)
	*free = out
	return bestX, true
}

// CheckLegal verifies that no two instances overlap, that all instances
// sit on rows inside the core, and that no instance intersects a blockage.
func CheckLegal(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval) error {
	rowH := fp.Stack.CellHeightNm()
	type span struct {
		lo, hi int64
		name   string
	}
	rows := make(map[int][]span)
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		if inst.Pos.Y%rowH != 0 {
			return fmt.Errorf("place: %s not on a row (y=%d)", inst.Name, inst.Pos.Y)
		}
		ri := int(inst.Pos.Y / rowH)
		if ri < 0 || ri >= len(fp.Rows) {
			return fmt.Errorf("place: %s outside core rows", inst.Name)
		}
		w := inst.Cell.WidthNm(fp.Stack)
		if inst.Pos.X < fp.Rows[ri].X0 || inst.Pos.X+w > fp.Rows[ri].X1 {
			return fmt.Errorf("place: %s outside row span", inst.Name)
		}
		s := span{inst.Pos.X, inst.Pos.X + w, inst.Name}
		for _, b := range blockages[ri] {
			if s.lo < b.Hi && b.Lo < s.hi {
				return fmt.Errorf("place: %s overlaps tap blockage in row %d", inst.Name, ri)
			}
		}
		rows[ri] = append(rows[ri], s)
	}
	for ri, spans := range rows {
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
		for i := 1; i < len(spans); i++ {
			if spans[i].lo < spans[i-1].hi {
				return fmt.Errorf("place: %s overlaps %s in row %d",
					spans[i].name, spans[i-1].name, ri)
			}
		}
	}
	return nil
}

// Refine improves a legal placement without breaking legality: cells slide
// within their row gaps toward the median X of their connected pins.
// Typical detailed-placement cleanup after legalization. Blockages are
// honored by clamping each slide against the row's blocked intervals.
func Refine(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, passes int) {
	// A Background context never cancels, so the error is unreachable.
	_ = RefineCtx(context.Background(), nl, fp, blockages, passes)
}

// RefineCtx is Refine under a context: cancellation is observed between
// row-sliding passes and at every row within a pass. A cancelled
// refinement leaves the placement legal (each completed slide preserves
// legality) but callers treat it as unusable for determinism.
func RefineCtx(ctx context.Context, nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, passes int) error {
	rowH := fp.Stack.CellHeightNm()
	type rowCells struct {
		cells []*netlist.Instance
	}
	rows := make(map[int64]*rowCells)
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		r, ok := rows[inst.Pos.Y]
		if !ok {
			r = &rowCells{}
			rows[inst.Pos.Y] = r
		}
		r.cells = append(r.cells, inst)
	}
	// Connectivity is static during refinement, so the "other endpoint"
	// pin refs of every instance are collected once up front; only their
	// positions are re-read per pass. The xs scratch is shared across all
	// median computations.
	others := make([][]netlist.PinRef, len(nl.Instances))
	collect := func(inst *netlist.Instance) []netlist.PinRef {
		refs := make([]netlist.PinRef, 0, 8)
		consider := func(n *netlist.Net) {
			if n == nil || n.Fanout() > 24 {
				return
			}
			if n.Driver != (netlist.PinRef{}) && n.Driver.Inst != inst {
				refs = append(refs, n.Driver)
			}
			for _, s := range n.Sinks {
				if s.Inst != inst {
					refs = append(refs, s)
				}
			}
		}
		for _, p := range inst.Cell.Inputs {
			consider(inst.Conn(p.Name))
		}
		consider(inst.OutputNet())
		return refs
	}
	for _, inst := range nl.Instances {
		if !inst.Fixed {
			others[inst.Seq] = collect(inst)
		}
	}
	var xs []int64
	desired := func(inst *netlist.Instance) int64 {
		refs := others[inst.Seq]
		xs = xs[:0]
		for _, ref := range refs {
			xs = append(xs, pinPoint(ref, fp).X)
		}
		if len(xs) == 0 {
			return inst.Pos.X
		}
		slices.Sort(xs)
		return xs[len(xs)/2]
	}
	cpp := fp.Stack.CPPNm
	var rowYs []int64
	for y := range rows {
		rowYs = append(rowYs, y)
	}
	sort.Slice(rowYs, func(i, j int) bool { return rowYs[i] < rowYs[j] })
	done := ctx.Done()
	for pass := 0; pass < passes; pass++ {
		for _, y := range rowYs {
			if err := pollCtx(ctx, done); err != nil {
				return err
			}
			r := rows[y]
			sort.Slice(r.cells, func(i, j int) bool { return r.cells[i].Pos.X < r.cells[j].Pos.X })
			for i, inst := range r.cells {
				w := inst.Cell.WidthNm(fp.Stack)
				lo := fp.Core.Lo.X
				if i > 0 {
					prev := r.cells[i-1]
					lo = prev.Pos.X + prev.Cell.WidthNm(fp.Stack)
				}
				hi := fp.Core.Hi.X - w
				if i+1 < len(r.cells) {
					hi = r.cells[i+1].Pos.X - w
				}
				if hi < lo {
					continue
				}
				// Clamp the slide span against tap blockages in this row.
				ri := int(inst.Pos.Y / rowH)
				for _, b := range blockages[ri] {
					if b.Hi <= inst.Pos.X && b.Hi > lo {
						lo = b.Hi
					}
					if b.Lo >= inst.Pos.X+w && b.Lo-w < hi {
						hi = b.Lo - w
					}
				}
				if hi < lo {
					continue
				}
				want := geom.Clamp64(desired(inst)-w/2, lo, hi)
				want = geom.SnapDown(want, 0, cpp)
				if want < lo {
					want += cpp
				}
				if want >= lo && want <= hi {
					inst.Pos = geom.Pt(want, inst.Pos.Y)
				}
			}
		}
	}
	_ = rowH
	return nil
}
