// Package place implements standard-cell placement for the evaluation
// flow: a force-directed global placement with density spreading, followed
// by row legalization that honors the Power Tap Cell blockages from the
// powerplan. Legalization failure at high utilization is the "placement
// violations between standard cells and Power Tap Cells" mechanism that
// caps FFET utilization in the paper's Fig. 8(a).
package place

import (
	"cmp"
	"context"
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// pollCtx returns ctx's error once it is cancelled, nil before. done is
// ctx.Done(), hoisted by the caller; a nil done (Background context)
// makes the check free.
func pollCtx(ctx context.Context, done <-chan struct{}) error {
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return fmt.Errorf("place: cancelled: %w", ctx.Err())
	default:
		return nil
	}
}

// Options tunes placement.
type Options struct {
	Seed        int64
	GlobalIters int
	// BinCount is the density grid resolution per axis.
	BinCount int
	// MaxAttractFanout excludes huge nets (pre-CTS clock, reset) from the
	// attraction model.
	MaxAttractFanout int
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{Seed: 1, GlobalIters: 24, BinCount: 28, MaxAttractFanout: 48}
}

// Result summarizes a placement.
type Result struct {
	HPWLNm    int64
	Rows      int
	Legalized int
}

// Place runs global placement and legalization in sequence. Blockages maps
// row index to blocked X intervals (tap cells + halos).
func Place(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, opt Options) (*Result, error) {
	if opt.GlobalIters <= 0 {
		opt = DefaultOptions()
	}
	Global(nl, fp, opt)
	if err := Legalize(nl, fp, blockages); err != nil {
		return nil, err
	}
	Refine(nl, fp, blockages, 3)
	return &Result{
		HPWLNm:    HPWL(nl, fp),
		Rows:      len(fp.Rows),
		Legalized: len(nl.Instances),
	}, nil
}

// center returns the instance center for wirelength models.
func center(inst *netlist.Instance, fp *floorplan.Plan) geom.Point {
	w := inst.Cell.WidthNm(fp.Stack)
	return geom.Pt(inst.Pos.X+w/2, inst.Pos.Y+fp.Stack.CellHeightNm()/2)
}

// pinPoint returns a net endpoint position.
func pinPoint(ref netlist.PinRef, fp *floorplan.Plan) geom.Point {
	if ref.IsPort() {
		return ref.Port.Pos
	}
	return center(ref.Inst, fp)
}

// HPWL computes the total half-perimeter wirelength of all signal nets.
func HPWL(nl *netlist.Netlist, fp *floorplan.Plan) int64 {
	var total int64
	pts := make([]geom.Point, 0, 16)
	for _, n := range nl.Nets {
		pts = pts[:0]
		if n.Driver != (netlist.PinRef{}) {
			pts = append(pts, pinPoint(n.Driver, fp))
		}
		for _, s := range n.Sinks {
			pts = append(pts, pinPoint(s, fp))
		}
		total += geom.HPWL(pts)
	}
	return total
}

// Global computes rough overlapping positions: seeded scatter, then
// alternating attraction (move to connected centroid) and density
// spreading passes. Fixed instances are never moved.
//
// Global models every cell at its base-drive footprint (the lowest-drive
// variant of the same logical cell), not its sized footprint: rough
// placement only needs relative cell extents, and drive-independent
// footprints make the result a pure function of (topology, floorplan,
// seed). Frequency-sweep siblings whose synthesized netlists differ only
// in drive resizing therefore share bit-identical global placements,
// which is what lets core.Flow.ForkSynthDiff re-stamp a neighbor's
// placement instead of re-placing. Legalization and all downstream
// metrics (HPWL, refinement) still use exact sized widths.
func Global(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) {
	// A Background context never cancels, so the error is unreachable.
	_ = GlobalCtx(context.Background(), nl, fp, opt)
}

// GlobalCtx is Global under a context: cancellation is observed between
// refinement iterations and the pass is abandoned mid-placement (the
// netlist holds partial positions — callers must treat a cancelled
// placement as unusable).
func GlobalCtx(ctx context.Context, nl *netlist.Netlist, fp *floorplan.Plan, opt Options) error {
	done := ctx.Done()
	rng := rand.New(rand.NewSource(opt.Seed))
	W, H := fp.Core.W(), fp.Core.H()
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		inst.Pos = geom.Pt(rng.Int63n(W+1), rng.Int63n(H+1))
	}
	fp.PlaceIOPorts(nl)

	// One workspace shared by every pass of the whole placement: centroid
	// accumulators indexed by Instance.Seq (flat int64 slices instead of
	// the pointer-keyed maps that dominated allocation volume and GC time
	// of the whole flow), the movable-cell list every rankSpread pass
	// re-sorts, and the spread density grid with its per-bin cell lists —
	// all rebuilt in place instead of reallocated per pass.
	ws := newGlobalWorkspace(len(nl.Instances))
	ws.buildRanks(nl)
	ws.buildFootprints(nl, fp)
	for it := 0; it < opt.GlobalIters; it++ {
		if err := pollCtx(ctx, done); err != nil {
			return err
		}
		ws.attract(nl, fp, opt)
		ws.attract(nl, fp, opt)
		if it%2 == 1 || it == opt.GlobalIters-1 {
			ws.rankSpread(nl, fp)
		}
	}
	// Local density cleanup then a last pull.
	ws.spread(nl, fp, opt)
	ws.attract(nl, fp, opt)
	return nil
}

// rankSpread redistributes cells uniformly along each axis by rank,
// preserving relative order (Gordian-style linear scaling). It undoes the
// central collapse of pure attraction while keeping neighborhoods intact.
// The rank order comes from the workspace's retained axis buckets: only
// buckets whose membership or keys changed since the previous pass are
// re-sorted, and the (position, name) tiebreak compares precomputed
// integer name ranks, never strings. Both are bit-invisible: names are
// unique, so (position, nameRank) is the same total order as (position,
// Name), and the concatenated per-bucket orders equal the full sort.
func (ws *globalWorkspace) rankSpread(nl *netlist.Netlist, fp *floorplan.Plan) {
	cells := ws.movableCells(nl)
	if len(cells) < 2 {
		return
	}
	W, H := fp.Core.W(), fp.Core.H()
	insts := nl.Instances
	n := int64(len(cells) - 1)
	for i, seq := range ws.rankOrder(&ws.bx, cells, W, true) {
		inst := insts[seq]
		x := int64(i) * W / n
		// Blend: 60% rank position, 40% attracted position.
		inst.Pos = geom.Pt((x*3+inst.Pos.X*2)/5, inst.Pos.Y)
	}
	for i, seq := range ws.rankOrder(&ws.by, cells, H, false) {
		inst := insts[seq]
		y := int64(i) * H / n
		inst.Pos = geom.Pt(inst.Pos.X, (y*3+inst.Pos.Y*2)/5)
	}
}

// globalWorkspace holds every buffer the global-placement passes reuse:
// centroid accumulators indexed by Instance.Seq, per-net endpoint
// buffers, the movable-cell list, and the spread density grid. One
// workspace serves a whole Global call, so repeated passes allocate
// nothing.
type globalWorkspace struct {
	sumX, sumY, cnt []int64
	pts             []geom.Point
	insts           []*netlist.Instance
	cells           []*netlist.Instance // movable cells, rebuilt in place per pass
	bins            []densityBin        // spread density grid, per-bin lists reused

	// nameRank[seq] is the instance's position in the Name-sorted order,
	// computed once per Global call. Every per-pass tiebreak that used to
	// compare Name strings compares these ints instead; names are unique,
	// so any (key, nameRank) order is exactly the (key, Name) order.
	nameRank []int32
	// baseW/baseA[seq] are the base-drive footprint width and area used by
	// the attraction and spread models, computed once per Global call.
	// Drive-independent by construction: resizing a cell to another drive
	// of the same base leaves both unchanged.
	baseW, baseA []int64
	// axisKey[seq] is the current rankSpread pass's coordinate on the axis
	// being ordered, snapshotted flat so bucket sorts read a contiguous
	// array instead of chasing instance pointers.
	axisKey []int64
	// bx, by are the retained per-axis rank-order buckets: rankSpread
	// re-sorts only buckets whose membership changed between passes.
	bx, by axisBuckets
}

func newGlobalWorkspace(n int) *globalWorkspace {
	return &globalWorkspace{
		sumX:     make([]int64, n),
		sumY:     make([]int64, n),
		cnt:      make([]int64, n),
		nameRank: make([]int32, n),
		axisKey:  make([]int64, n),
		baseW:    make([]int64, n),
		baseA:    make([]int64, n),
	}
}

// buildFootprints fills baseW/baseA with each instance's base-drive
// footprint: the lowest-drive library variant of the instance's Base cell.
// Hand-built cells outside a library (or netlists without one) fall back
// to their own sized footprint.
func (ws *globalWorkspace) buildFootprints(nl *netlist.Netlist, fp *floorplan.Plan) {
	for _, inst := range nl.Instances {
		c := inst.Cell
		if nl.Lib != nil {
			if base := nl.Lib.PickDrive(c.Base, 1); base != nil {
				c = base
			}
		}
		ws.baseW[inst.Seq] = c.WidthNm(fp.Stack)
		ws.baseA[inst.Seq] = c.AreaNm2(fp.Stack)
	}
}

// endpoint is pinPoint over base-drive footprints: the attraction model's
// view of a net endpoint.
func (ws *globalWorkspace) endpoint(ref netlist.PinRef, fp *floorplan.Plan) geom.Point {
	if ref.IsPort() {
		return ref.Port.Pos
	}
	inst := ref.Inst
	return geom.Pt(inst.Pos.X+ws.baseW[inst.Seq]/2, inst.Pos.Y+fp.Stack.CellHeightNm()/2)
}

// buildRanks fills nameRank with each instance's position in the
// Name-sorted order. One string sort per Global call replaces the string
// compares of every later spread/rankSpread tiebreak.
func (ws *globalWorkspace) buildRanks(nl *netlist.Netlist) {
	insts := nl.Instances
	ord := make([]int32, len(insts))
	for i := range ord {
		ord[i] = int32(i)
	}
	slices.SortFunc(ord, func(a, b int32) int {
		return strings.Compare(insts[a].Name, insts[b].Name)
	})
	for i, seq := range ord {
		ws.nameRank[seq] = int32(i)
	}
}

// axisBuckets is the retained bucketed order of one rankSpread axis. Cells
// are binned by coordinate into equal-width buckets whose ranges partition
// the axis, so concatenating the per-bucket sorted runs yields the full
// (key, nameRank) order. Between passes the previous generation's
// membership, keys and sorted runs are kept: a bucket whose member list
// and keys are unchanged reuses its stored run verbatim, so a pass
// re-sorts only the buckets attraction actually disturbed.
type axisBuckets struct {
	start, members, sorted []int32
	keys                   []int64
	cursor                 []int32

	prevStart, prevMembers, prevSorted []int32
	prevKeys                           []int64
	valid                              bool
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// axisBucketOf maps a clamped coordinate to its bucket. Equal keys always
// land in the same bucket and the mapping is monotonic, so bucket ranges
// never split a run of equal keys across a sort boundary.
func axisBucketOf(k, span int64, nb int) int {
	if k < 0 {
		k = 0
	} else if k > span {
		k = span
	}
	return int(k * int64(nb) / (span + 1))
}

// rankOrder returns the movable cells as Instance.Seq values in ascending
// (axis coordinate, nameRank) order, reusing ab's retained buckets.
func (ws *globalWorkspace) rankOrder(ab *axisBuckets, cells []*netlist.Instance, span int64, axisX bool) []int32 {
	n := len(cells)
	nb := n/48 + 1
	if nb > 256 {
		nb = 256
	}
	ab.start = growI32(ab.start, nb+1)
	ab.members = growI32(ab.members, n)
	ab.sorted = growI32(ab.sorted, n)
	ab.keys = growI64(ab.keys, n)
	ab.cursor = growI32(ab.cursor, nb)
	for i := range ab.start {
		ab.start[i] = 0
	}
	key := ws.axisKey
	for _, inst := range cells {
		k := inst.Pos.X
		if !axisX {
			k = inst.Pos.Y
		}
		key[inst.Seq] = k
		ab.start[axisBucketOf(k, span, nb)+1]++
	}
	for b := 1; b <= nb; b++ {
		ab.start[b] += ab.start[b-1]
	}
	copy(ab.cursor, ab.start[:nb])
	// Fill members in instance order within each bucket: the deterministic
	// membership signature a clean-bucket check compares against.
	for _, inst := range cells {
		k := key[inst.Seq]
		b := axisBucketOf(k, span, nb)
		ab.members[ab.cursor[b]] = int32(inst.Seq)
		ab.keys[ab.cursor[b]] = k
		ab.cursor[b]++
	}
	rank := ws.nameRank
	for b := 0; b < nb; b++ {
		lo, hi := ab.start[b], ab.start[b+1]
		seg := ab.sorted[lo:hi]
		if ab.valid {
			plo, phi := ab.prevStart[b], ab.prevStart[b+1]
			if phi-plo == hi-lo &&
				slices.Equal(ab.prevMembers[plo:phi], ab.members[lo:hi]) &&
				slices.Equal(ab.prevKeys[plo:phi], ab.keys[lo:hi]) {
				copy(seg, ab.prevSorted[plo:phi])
				continue
			}
		}
		copy(seg, ab.members[lo:hi])
		slices.SortFunc(seg, func(a, c int32) int {
			if key[a] != key[c] {
				return cmp.Compare(key[a], key[c])
			}
			return cmp.Compare(rank[a], rank[c])
		})
	}
	out := ab.sorted[:n]
	// Retain this pass as the next pass's clean reference by swapping the
	// generations; the returned slice stays untouched until the next call.
	ab.start, ab.prevStart = ab.prevStart, ab.start
	ab.members, ab.prevMembers = ab.prevMembers, ab.members
	ab.keys, ab.prevKeys = ab.prevKeys, ab.keys
	ab.sorted, ab.prevSorted = ab.prevSorted, ab.sorted
	ab.valid = true
	return out
}

// movableCells rebuilds the reusable movable-cell list in instance order
// (the order every pass's sort starts from, so reuse is bit-invisible).
func (ws *globalWorkspace) movableCells(nl *netlist.Netlist) []*netlist.Instance {
	cells := ws.cells[:0]
	for _, inst := range nl.Instances {
		if !inst.Fixed {
			cells = append(cells, inst)
		}
	}
	ws.cells = cells
	return cells
}

// attract moves each movable instance toward the centroid of everything
// it connects to.
func (ws *globalWorkspace) attract(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) {
	for i := range ws.cnt {
		ws.sumX[i] = 0
		ws.sumY[i] = 0
		ws.cnt[i] = 0
	}
	for _, n := range nl.Nets {
		if n.IsClock || n.Fanout() > opt.MaxAttractFanout {
			continue
		}
		pts := ws.pts[:0]
		insts := ws.insts[:0]
		if n.Driver != (netlist.PinRef{}) {
			pts = append(pts, ws.endpoint(n.Driver, fp))
			insts = append(insts, n.Driver.Inst)
		}
		for _, s := range n.Sinks {
			pts = append(pts, ws.endpoint(s, fp))
			insts = append(insts, s.Inst)
		}
		ws.pts, ws.insts = pts, insts
		// Each endpoint is pulled toward the centroid of the others.
		var cx, cy int64
		for _, p := range pts {
			cx += p.X
			cy += p.Y
		}
		n64 := int64(len(pts))
		for i, inst := range insts {
			if inst == nil || inst.Fixed {
				continue
			}
			// Centroid excluding self.
			ox := (cx - pts[i].X) / (n64 - 1 + boolTo64(n64 == 1))
			oy := (cy - pts[i].Y) / (n64 - 1 + boolTo64(n64 == 1))
			ws.sumX[inst.Seq] += ox
			ws.sumY[inst.Seq] += oy
			ws.cnt[inst.Seq]++
		}
	}
	for _, inst := range nl.Instances {
		if inst.Fixed || ws.cnt[inst.Seq] == 0 {
			continue
		}
		tx := ws.sumX[inst.Seq] / ws.cnt[inst.Seq]
		ty := ws.sumY[inst.Seq] / ws.cnt[inst.Seq]
		// Damped move.
		inst.Pos = geom.Pt(
			geom.Clamp64(inst.Pos.X+(tx-inst.Pos.X)*3/4, fp.Core.Lo.X, fp.Core.Hi.X),
			geom.Clamp64(inst.Pos.Y+(ty-inst.Pos.Y)*3/4, fp.Core.Lo.Y, fp.Core.Hi.Y),
		)
	}
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// spread relieves overfull density bins by pushing cells toward the least
// loaded neighbor bin. The grid and its per-bin cell lists live in the
// workspace: reset in place each call, never reallocated.
func (ws *globalWorkspace) spread(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) {
	nb := opt.BinCount
	if nb < 4 {
		nb = 4
	}
	W, H := fp.Core.W(), fp.Core.H()
	binW := (W + int64(nb) - 1) / int64(nb)
	binH := (H + int64(nb) - 1) / int64(nb)
	if binW == 0 || binH == 0 {
		return
	}
	if cap(ws.bins) < nb*nb {
		ws.bins = make([]densityBin, nb*nb)
	}
	bins := ws.bins[:nb*nb]
	for i := range bins {
		bins[i].area = 0
		bins[i].cells = bins[i].cells[:0]
	}
	ws.bins = bins
	idx := func(p geom.Point) int {
		bx := int(geom.Clamp64(p.X/binW, 0, int64(nb-1)))
		by := int(geom.Clamp64(p.Y/binH, 0, int64(nb-1)))
		return by*nb + bx
	}
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		i := idx(inst.Pos)
		bins[i].area += ws.baseA[inst.Seq]
		bins[i].cells = append(bins[i].cells, inst)
	}
	capArea := binW * binH // 100% local density budget
	for by := 0; by < nb; by++ {
		for bx := 0; bx < nb; bx++ {
			b := &bins[by*nb+bx]
			if b.area <= capArea {
				continue
			}
			// Push the overflow (cells beyond capacity) to the least-dense
			// of the 4 neighbors, deterministically. Ordering by the
			// precomputed name rank is the Name order without the string
			// compares.
			rank := ws.nameRank
			slices.SortFunc(b.cells, func(x, y *netlist.Instance) int {
				return cmp.Compare(rank[x.Seq], rank[y.Seq])
			})
			over := b.area - capArea
			for _, inst := range b.cells {
				if over <= 0 {
					break
				}
				tx, ty := bestNeighbor(bins, nb, bx, by)
				nx := geom.Clamp64(int64(tx)*binW+binW/2, 0, W)
				ny := geom.Clamp64(int64(ty)*binH+binH/2, 0, H)
				inst.Pos = geom.Pt((inst.Pos.X+nx)/2, (inst.Pos.Y+ny)/2)
				over -= ws.baseA[inst.Seq]
			}
		}
	}
}

type densityBin struct {
	area  int64
	cells []*netlist.Instance
}

func bestNeighbor(bins []densityBin, nb, bx, by int) (int, int) {
	bestA := int64(1) << 62
	tx, ty := bx, by
	for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}} {
		x, y := bx+d[0], by+d[1]
		if x < 0 || y < 0 || x >= nb || y >= nb {
			continue
		}
		if a := bins[y*nb+x].area; a < bestA {
			bestA = a
			tx, ty = x, y
		}
	}
	return tx, ty
}

// buildFreeLists computes each row's free intervals after subtracting its
// blocked intervals (tap cells + halos).
func buildFreeLists(fp *floorplan.Plan, blockages map[int][]geom.Interval) [][]geom.Interval {
	free := make([][]geom.Interval, len(fp.Rows))
	for i, r := range fp.Rows {
		ivs := []geom.Interval{{Lo: r.X0, Hi: r.X1}}
		blocked := append([]geom.Interval(nil), blockages[i]...)
		slices.SortFunc(blocked, func(a, b geom.Interval) int { return cmp.Compare(a.Lo, b.Lo) })
		for _, b := range blocked {
			var next []geom.Interval
			for _, f := range ivs {
				if !f.Overlaps(b) {
					next = append(next, f)
					continue
				}
				if b.Lo > f.Lo {
					next = append(next, geom.Interval{Lo: f.Lo, Hi: b.Lo})
				}
				if b.Hi < f.Hi {
					next = append(next, geom.Interval{Lo: b.Hi, Hi: f.Hi})
				}
			}
			ivs = next
		}
		free[i] = ivs
	}
	return free
}

// legalCmp is the legalization processing order: wide cells first within
// global-X order bands for stability, names breaking the remaining ties.
func legalCmp(a, b *netlist.Instance) int {
	if a.Pos.X != b.Pos.X {
		return cmp.Compare(a.Pos.X, b.Pos.X)
	}
	if a.Cell.WidthCPP != b.Cell.WidthCPP {
		return cmp.Compare(b.Cell.WidthCPP, a.Cell.WidthCPP)
	}
	return strings.Compare(a.Name, b.Name)
}

// legalOrder returns the movable instances in legalization order.
func legalOrder(nl *netlist.Netlist) []*netlist.Instance {
	movable := make([]*netlist.Instance, 0, len(nl.Instances))
	for _, inst := range nl.Instances {
		if !inst.Fixed {
			movable = append(movable, inst)
		}
	}
	slices.SortFunc(movable, legalCmp)
	return movable
}

// legalWindows are the escalating row-search windows of placeOne: a full
// local row spills to a neighbor row instead of teleporting along its own
// row. The last window is replaced by the row count at probe time.
var legalWindows = [3]int{3, 8, -1}

// placeOne finds a cell's legal slot: it jointly minimizes X displacement
// and row distance over windows of increasing size, returning the chosen
// row/X, the winning total cost, and the index of the window that
// succeeded. It never commits — callers take the slot. Every legalization
// path (full, basis recording, delta) funnels through this one decision
// procedure, so their placements cannot diverge.
func placeOne(free [][]geom.Interval, nRows int, rowH, cpp int64, targetRow int, tx, w int64) (row int, x, cost int64, wnd int, ok bool) {
	for wi, window := range legalWindows {
		if window < 0 {
			window = nRows
		}
		bestCost := int64(1) << 62
		bestRow, bestX := -1, int64(0)
		for d := 0; d <= window; d++ {
			rowPenalty := int64(d) * rowH
			if rowPenalty >= bestCost {
				break
			}
			for _, ri := range [2]int{targetRow - d, targetRow + d} {
				if ri < 0 || ri >= nRows || (d == 0 && ri != targetRow) {
					continue
				}
				if px, pcost, pok := probe(free[ri], tx, w, cpp); pok {
					if total := pcost + rowPenalty; total < bestCost {
						bestCost = total
						bestRow, bestX = ri, px
					}
				}
			}
		}
		if bestRow >= 0 {
			return bestRow, bestX, bestCost, wi, true
		}
	}
	return 0, 0, 0, 0, false
}

// Legalize snaps every movable instance onto row sites without overlaps,
// avoiding blocked intervals. It fails when the design cannot be legalized
// (e.g. utilization above the tap-cell cap).
func Legalize(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval) error {
	cpp := fp.Stack.CPPNm
	rowH := fp.Stack.CellHeightNm()
	free := buildFreeLists(fp, blockages)
	for _, inst := range legalOrder(nl) {
		w := inst.Cell.WidthNm(fp.Stack)
		targetRow := int(geom.Clamp64(inst.Pos.Y/rowH, 0, int64(len(fp.Rows)-1)))
		row, x, _, _, ok := placeOne(free, len(fp.Rows), rowH, cpp, targetRow, inst.Pos.X, w)
		if !ok {
			return fmt.Errorf("place: cannot legalize %s (%d sites): placement violation",
				inst.Name, inst.Cell.WidthCPP)
		}
		take(&free[row], x, w)
		inst.Pos = geom.Pt(x, fp.Rows[row].Y)
	}
	return nil
}

// probe finds the best slot in a row's free list without committing.
func probe(free []geom.Interval, target, w, cpp int64) (int64, int64, bool) {
	bestCost := int64(1) << 62
	var bestX int64
	found := false
	for _, f := range free {
		lo := geom.SnapDown(f.Lo+cpp-1, 0, cpp)
		hi := f.Hi - w
		if hi < lo {
			continue
		}
		x := geom.Clamp64(target, lo, hi)
		x = geom.SnapDown(x, 0, cpp)
		if x < lo {
			x = lo
		}
		if cost := geom.Abs64(x - target); cost < bestCost {
			bestCost, bestX, found = cost, x, true
		}
	}
	return bestX, bestCost, found
}

// take commits a slot previously returned by probe, splicing the free
// list in place instead of rebuilding it.
func take(free *[]geom.Interval, x, w int64) {
	if !takeAt(free, x, w) {
		panic("place: take without matching probe")
	}
}

// takeAt is take reporting success instead of panicking: the delta
// legalizer uses it to detect (impossible by construction, but gated
// anyway) loss of a recorded slot and fall back to the full path.
func takeAt(free *[]geom.Interval, x, w int64) bool {
	f := *free
	for i := range f {
		iv := f[i]
		if x < iv.Lo || x+w > iv.Hi {
			continue
		}
		hasL := x > iv.Lo
		hasR := x+w < iv.Hi
		switch {
		case hasL && hasR:
			f[i] = geom.Interval{Lo: iv.Lo, Hi: x}
			*free = slices.Insert(f, i+1, geom.Interval{Lo: x + w, Hi: iv.Hi})
		case hasL:
			f[i] = geom.Interval{Lo: iv.Lo, Hi: x}
		case hasR:
			f[i] = geom.Interval{Lo: x + w, Hi: iv.Hi}
		default:
			*free = append(f[:i], f[i+1:]...)
		}
		return true
	}
	return false
}

// allocate finds a site-aligned slot of width w in the free list closest
// to target, removes it from the list, and returns its position.
func allocate(free *[]geom.Interval, target, w, cpp int64) (int64, bool) {
	bestCost := int64(1) << 62
	bestIdx := -1
	var bestX int64
	for i, f := range *free {
		lo := geom.SnapDown(f.Lo+cpp-1, 0, cpp) // first site boundary inside
		hi := f.Hi - w
		if hi < lo {
			continue
		}
		x := geom.Clamp64(target, lo, hi)
		x = geom.SnapDown(x, 0, cpp)
		if x < lo {
			x = lo
		}
		cost := geom.Abs64(x - target)
		if cost < bestCost {
			bestCost = cost
			bestIdx = i
			bestX = x
		}
	}
	if bestIdx < 0 {
		return 0, false
	}
	f := (*free)[bestIdx]
	var repl []geom.Interval
	if bestX > f.Lo {
		repl = append(repl, geom.Interval{Lo: f.Lo, Hi: bestX})
	}
	if bestX+w < f.Hi {
		repl = append(repl, geom.Interval{Lo: bestX + w, Hi: f.Hi})
	}
	out := append([]geom.Interval{}, (*free)[:bestIdx]...)
	out = append(out, repl...)
	out = append(out, (*free)[bestIdx+1:]...)
	*free = out
	return bestX, true
}

// CheckLegal verifies that no two instances overlap, that all instances
// sit on rows inside the core, and that no instance intersects a blockage.
func CheckLegal(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval) error {
	rowH := fp.Stack.CellHeightNm()
	nRows := len(fp.Rows)
	type span struct {
		lo, hi int64
		seq    int32
	}
	// Counting layout into one flat arena, rows as sub-slices: the check
	// runs once per delta legalization, so it avoids the per-row map and
	// string traffic of the naive bucketing (names resolve from Seq only
	// on the failure path).
	cnt := make([]int32, nRows+1)
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		if inst.Pos.Y%rowH != 0 {
			return fmt.Errorf("place: %s not on a row (y=%d)", inst.Name, inst.Pos.Y)
		}
		ri := int(inst.Pos.Y / rowH)
		if ri < 0 || ri >= nRows {
			return fmt.Errorf("place: %s outside core rows", inst.Name)
		}
		cnt[ri+1]++
	}
	for i := 0; i < nRows; i++ {
		cnt[i+1] += cnt[i]
	}
	spans := make([]span, cnt[nRows])
	fill := make([]int32, nRows)
	copy(fill, cnt[:nRows])
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		ri := int(inst.Pos.Y / rowH)
		w := inst.Cell.WidthNm(fp.Stack)
		if inst.Pos.X < fp.Rows[ri].X0 || inst.Pos.X+w > fp.Rows[ri].X1 {
			return fmt.Errorf("place: %s outside row span", inst.Name)
		}
		for _, b := range blockages[ri] {
			if inst.Pos.X < b.Hi && b.Lo < inst.Pos.X+w {
				return fmt.Errorf("place: %s overlaps tap blockage in row %d", inst.Name, ri)
			}
		}
		spans[fill[ri]] = span{inst.Pos.X, inst.Pos.X + w, int32(inst.Seq)}
		fill[ri]++
	}
	for ri := 0; ri < nRows; ri++ {
		rs := spans[cnt[ri]:cnt[ri+1]]
		slices.SortFunc(rs, func(a, b span) int { return cmp.Compare(a.lo, b.lo) })
		for i := 1; i < len(rs); i++ {
			if rs[i].lo < rs[i-1].hi {
				return fmt.Errorf("place: %s overlaps %s in row %d",
					nl.Instances[rs[i].seq].Name, nl.Instances[rs[i-1].seq].Name, ri)
			}
		}
	}
	return nil
}

// Refine improves a legal placement without breaking legality: cells slide
// within their row gaps toward the median X of their connected pins.
// Typical detailed-placement cleanup after legalization. Blockages are
// honored by clamping each slide against the row's blocked intervals.
func Refine(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, passes int) {
	// A Background context never cancels, so the error is unreachable.
	_ = RefineCtx(context.Background(), nl, fp, blockages, passes)
}

// RefineCtx is Refine under a context: cancellation is observed between
// row-sliding passes and at every row within a pass. A cancelled
// refinement leaves the placement legal (each completed slide preserves
// legality) but callers treat it as unusable for determinism.
func RefineCtx(ctx context.Context, nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, passes int) error {
	return RefineRefsCtx(ctx, nl, fp, blockages, passes, CollectRefineRefs(nl), InstWidths(nl, fp))
}

// packRef encodes a refine endpoint as an int64: non-negative values are
// an Instance.Seq, negative values are a bit-complemented Port.Seq. Only
// the endpoint's X position feeds the slide median, so the pin name can
// be dropped.
func packRef(r netlist.PinRef) int64 {
	if r.IsPort() {
		return int64(^r.Port.Seq)
	}
	return int64(r.Inst.Seq)
}

// appendInstRefs appends inst's refine endpoints — the other endpoints of
// its small nets (fanout ≤ 24) — to the arena in deterministic pin order.
func appendInstRefs(arena []int64, inst *netlist.Instance) []int64 {
	consider := func(n *netlist.Net) {
		if n == nil || n.Fanout() > 24 {
			return
		}
		if n.Driver != (netlist.PinRef{}) && n.Driver.Inst != inst {
			arena = append(arena, packRef(n.Driver))
		}
		for _, s := range n.Sinks {
			if s.Inst != inst {
				arena = append(arena, packRef(s))
			}
		}
	}
	for pi := range inst.Cell.Inputs {
		consider(inst.ConnAt(pi))
	}
	consider(inst.OutputNet())
	return arena
}

// CollectRefineRefs gathers every movable instance's refine endpoints
// into one flat arena (three allocations for the whole netlist instead of
// one slice per instance) and returns per-instance views indexed by Seq.
// Connectivity is static during refinement, so the refs are collected
// once; only endpoint positions are re-read per pass. core.Flow retains
// the result across forks (RefineBasis) and re-collects only the
// instances CTS rewired.
func CollectRefineRefs(nl *netlist.Netlist) [][]int64 {
	refs := make([][]int64, len(nl.Instances))
	ends := make([]int, len(nl.Instances))
	arena := make([]int64, 0, 8*len(nl.Instances))
	for _, inst := range nl.Instances {
		if !inst.Fixed {
			arena = appendInstRefs(arena, inst)
		}
		ends[inst.Seq] = len(arena)
	}
	start := 0
	for seq, end := range ends {
		refs[seq] = arena[start:end:end]
		start = end
	}
	return refs
}

// InstWidths returns every instance's width in nm, indexed by Seq.
func InstWidths(nl *netlist.Netlist, fp *floorplan.Plan) []int64 {
	widths := make([]int64, len(nl.Instances))
	for _, inst := range nl.Instances {
		widths[inst.Seq] = inst.Cell.WidthNm(fp.Stack)
	}
	return widths
}

// RefineRefsCtx is the refinement core over pre-collected endpoint refs
// (CollectRefineRefs) and widths (InstWidths), both indexed by
// Instance.Seq. It produces exactly the slides RefineCtx does — the
// median only depends on the endpoint multiset — while letting callers
// retain the collection across repeated refinements of the same
// connectivity.
func RefineRefsCtx(ctx context.Context, nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, passes int, refs [][]int64, widths []int64) error {
	rowH := fp.Stack.CellHeightNm()
	nRows := len(fp.Rows)
	rows := make([][]*netlist.Instance, nRows)
	for _, inst := range nl.Instances {
		if inst.Fixed {
			continue
		}
		ri := int(geom.Clamp64(inst.Pos.Y/rowH, 0, int64(nRows-1)))
		rows[ri] = append(rows[ri], inst)
	}
	insts, ports := nl.Instances, nl.Ports
	var xs []int64
	desired := func(inst *netlist.Instance) int64 {
		xs = xs[:0]
		for _, r := range refs[inst.Seq] {
			if r >= 0 {
				xs = append(xs, insts[r].Pos.X+widths[r]/2)
			} else {
				xs = append(xs, ports[^r].Pos.X)
			}
		}
		if len(xs) == 0 {
			return inst.Pos.X
		}
		return medianInt64(xs)
	}
	// Post-legalization X positions in a row are unique (cells never
	// overlap), so the unstable sort is deterministic; each slide stays
	// strictly between its neighbors, so one sort covers every pass.
	for _, cellsInRow := range rows {
		slices.SortFunc(cellsInRow, func(a, b *netlist.Instance) int {
			return cmp.Compare(a.Pos.X, b.Pos.X)
		})
	}
	// Median cache with reverse-adjacency invalidation: a cell's median
	// depends only on its refs' live positions, so it stays valid until
	// one of those refs slides (ports never move). Passes after the
	// first recompute only the cells a slide actually dirtied, which is
	// the bulk of the refinement cost once the placement settles.
	nInst := len(insts)
	med := make([]int64, nInst)
	medOK := make([]bool, nInst)
	depCnt := make([]int32, nInst+1)
	for j := range refs {
		for _, r := range refs[j] {
			if r >= 0 {
				depCnt[r+1]++
			}
		}
	}
	for i := 0; i < nInst; i++ {
		depCnt[i+1] += depCnt[i]
	}
	deps := make([]int32, depCnt[nInst])
	fill := make([]int32, nInst)
	copy(fill, depCnt[:nInst])
	for j := range refs {
		for _, r := range refs[j] {
			if r >= 0 {
				deps[fill[r]] = int32(j)
				fill[r]++
			}
		}
	}
	cpp := fp.Stack.CPPNm
	done := ctx.Done()
	for pass := 0; pass < passes; pass++ {
		movedAny := false
		for ri := 0; ri < nRows; ri++ {
			cellsInRow := rows[ri]
			if len(cellsInRow) == 0 {
				continue
			}
			if err := pollCtx(ctx, done); err != nil {
				return err
			}
			for i, inst := range cellsInRow {
				w := widths[inst.Seq]
				lo := fp.Core.Lo.X
				if i > 0 {
					prev := cellsInRow[i-1]
					lo = prev.Pos.X + widths[prev.Seq]
				}
				hi := fp.Core.Hi.X - w
				if i+1 < len(cellsInRow) {
					hi = cellsInRow[i+1].Pos.X - w
				}
				if hi < lo {
					continue
				}
				// Clamp the slide span against tap blockages in this row.
				for _, b := range blockages[ri] {
					if b.Hi <= inst.Pos.X && b.Hi > lo {
						lo = b.Hi
					}
					if b.Lo >= inst.Pos.X+w && b.Lo-w < hi {
						hi = b.Lo - w
					}
				}
				if hi < lo {
					continue
				}
				seq := inst.Seq
				if !medOK[seq] {
					med[seq] = desired(inst)
					medOK[seq] = true
				}
				want := geom.Clamp64(med[seq]-w/2, lo, hi)
				want = geom.SnapDown(want, 0, cpp)
				if want < lo {
					want += cpp
				}
				if want >= lo && want <= hi && want != inst.Pos.X {
					inst.Pos = geom.Pt(want, inst.Pos.Y)
					movedAny = true
					for _, j := range deps[depCnt[seq]:depCnt[seq+1]] {
						medOK[j] = false
					}
					if len(refs[seq]) == 0 {
						// No refs: desired() falls back to the cell's
						// own X, which this slide just changed.
						medOK[seq] = false
					}
				}
			}
		}
		// A pass with zero slides is a fixed point: every later pass
		// recomputes the same medians over the same positions, so the
		// remaining passes are provable no-ops.
		if !movedAny {
			break
		}
	}
	return nil
}

// medianInt64 returns the (len/2)-th smallest element — the value a full
// sort would leave at xs[len(xs)/2] — via iterative quickselect,
// scrambling xs in the process. Refinement medians run once per cell per
// pass, and typical endpoint sets are large enough that selection beats
// a full sort.
func medianInt64(xs []int64) int64 {
	k := len(xs) / 2
	lo, hi := 0, len(xs)-1
	for {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			return xs[k]
		}
		mid := (lo + hi) / 2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		p := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return xs[k]
		}
	}
}
