// Retained placement state for incremental re-legalization.
//
// The staged flow re-runs legalization + refinement at StageCTS for every
// forked sweep point, even though CTS only appends a few dozen clock
// buffers to a placement of thousands of cells. A LegalBasis records the
// full greedy legalization of the base (pre-CTS) cells — per-row free
// intervals and each cell's chosen slot — so LegalizeDelta can replay it:
// moved/new cells are placed by the real probe, unaffected base cells
// reuse their recorded slots, and a per-row dirty-interval set tracks
// exactly where the replayed fold could deviate from the recording. The
// skip conditions are proven conservative (any cell whose decision could
// change is re-probed through the same placeOne procedure the full path
// uses), CheckLegal gates every delta result, and any doubt falls back to
// full Legalize — mirroring the sta.Reanalyze fallback contract, so the
// delta path is bit-identical to the full path by construction.
package place

import (
	"errors"
	"math"
	"slices"
	"sync"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// ErrBasisMismatch reports that a retained basis does not describe the
// netlist handed to LegalizeDelta (positions drifted, the floorplan
// changed, or the delta fold could not be proven equivalent). Callers
// fall back to full Legalize, which reproduces the from-scratch result —
// including its failure message — exactly.
var ErrBasisMismatch = errors.New("place: legalization basis mismatch")

// legalRec is one recorded legalization decision.
type legalRec struct {
	x    int64 // chosen site-aligned X
	cost int64 // winning total cost (X displacement + row penalty)
	row  int32 // chosen row index
	wnd  int8  // index into legalWindows of the window that succeeded
}

// LegalBasis is the retained legalization state of a base placement:
// the pristine per-row free intervals and the recorded fold over the base
// movable cells in legalization order. It is immutable once built, so
// forked flow sessions share one basis concurrently.
type LegalBasis struct {
	nInst     int
	nRows     int
	rowH, cpp int64
	initFree  [][]geom.Interval
	order     []int32 // base movable cells, legalization order (Instance.Seq)
	px, py    []int64 // basis position per order entry
	w         []int64 // cell width (nm) per order entry
	wcpp      []int32 // cell width (CPP) per order entry, for the order key
	rec       []legalRec
}

// NumBaseInstances returns the instance count of the basis netlist; cells
// with Seq at or beyond it were appended after the basis was built.
func (b *LegalBasis) NumBaseInstances() int { return b.nInst }

// DivergedWidthSeqs returns the Seqs of base cells whose current width no
// longer matches the recording — cells resized since the basis was built
// (a synth-diff fork re-stamping a neighbor's basis over a re-sized
// netlist). Such cells must be declared moved to LegalizeDelta: their
// recorded slot no longer fits them, so they are re-probed fresh like
// appended cells, and the unmoved-width verification never trips.
func (b *LegalBasis) DivergedWidthSeqs(nl *netlist.Netlist, fp *floorplan.Plan) []int32 {
	var out []int32
	insts := nl.Instances
	for i, seq := range b.order {
		if int(seq) < len(insts) && insts[seq].Cell.WidthNm(fp.Stack) != b.w[i] {
			out = append(out, seq)
		}
	}
	return out
}

// NewLegalBasis records the legalization of nl's movable cells at their
// current (post-global-placement) positions without committing any
// position. Returns nil when the base placement itself cannot be
// legalized — callers then run full Legalize and surface its failure.
func NewLegalBasis(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval) *LegalBasis {
	cpp := fp.Stack.CPPNm
	rowH := fp.Stack.CellHeightNm()
	nRows := len(fp.Rows)
	free := buildFreeLists(fp, blockages)
	cells := legalOrder(nl)
	b := &LegalBasis{
		nInst:    len(nl.Instances),
		nRows:    nRows,
		rowH:     rowH,
		cpp:      cpp,
		initFree: cloneFree(free),
		order:    make([]int32, 0, len(cells)),
		px:       make([]int64, 0, len(cells)),
		py:       make([]int64, 0, len(cells)),
		w:        make([]int64, 0, len(cells)),
		wcpp:     make([]int32, 0, len(cells)),
		rec:      make([]legalRec, 0, len(cells)),
	}
	for _, inst := range cells {
		w := inst.Cell.WidthNm(fp.Stack)
		targetRow := int(geom.Clamp64(inst.Pos.Y/rowH, 0, int64(nRows-1)))
		row, x, cost, wnd, ok := placeOne(free, nRows, rowH, cpp, targetRow, inst.Pos.X, w)
		if !ok {
			return nil
		}
		take(&free[row], x, w)
		b.order = append(b.order, int32(inst.Seq))
		b.px = append(b.px, inst.Pos.X)
		b.py = append(b.py, inst.Pos.Y)
		b.w = append(b.w, w)
		b.wcpp = append(b.wcpp, int32(inst.Cell.WidthCPP))
		b.rec = append(b.rec, legalRec{x: x, cost: cost, row: int32(row), wnd: int8(wnd)})
	}
	return b
}

// cloneFree deep-copies per-row free lists into one arena. Each row is
// capacity-limited so a later in-place splice reallocates instead of
// clobbering its neighbor.
func cloneFree(src [][]geom.Interval) [][]geom.Interval {
	total := 0
	for _, r := range src {
		total += len(r)
	}
	arena := make([]geom.Interval, total)
	out := make([][]geom.Interval, len(src))
	off := 0
	for i, r := range src {
		seg := arena[off : off+len(r) : off+len(r)]
		copy(seg, r)
		out[i] = seg
		off += len(r)
	}
	return out
}

// deltaScratch holds LegalizeDelta's per-call working state. A
// fork-heavy sweep runs one delta legalization per point, and recycling
// the backing arrays (free-list clone, dirty marks, rollback log)
// through a pool removes ~0.5MB of allocation per point. Nothing in the
// scratch escapes the call, and concurrent forks each take their own.
type deltaScratch struct {
	movedF    []bool
	savedSeq  []int32
	savedPos  []geom.Point
	free      [][]geom.Interval
	freeArena []geom.Interval
	takenD    [][]geom.Interval
	freedD    [][]geom.Interval
	takenHull []geom.Interval
	freedHull []geom.Interval
	mv        []*netlist.Instance
}

var deltaPool = sync.Pool{New: func() any { return new(deltaScratch) }}

// grownRows returns rows resized to n sub-slices, each reset to length
// zero but keeping whatever capacity earlier uses grew.
func grownRows(rows [][]geom.Interval, n int) [][]geom.Interval {
	if cap(rows) < n {
		return make([][]geom.Interval, n)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i] = rows[i][:0]
	}
	return rows
}

// dirtySlotDist returns the smallest X displacement from tx of any
// width-w slot whose span could intersect the dirty interval iv (the
// closed hull is used, which is conservative).
func dirtySlotDist(tx int64, iv geom.Interval, w int64) int64 {
	lo, hi := iv.Lo-w, iv.Hi
	if tx < lo {
		return lo - tx
	}
	if tx > hi {
		return tx - hi
	}
	return 0
}

// liveFit mirrors probe's per-interval candidate selection: the slot a
// width-w probe targeting tx would pick inside the free piece f, or
// ok=false when f cannot host w.
func liveFit(f geom.Interval, tx, w, cpp int64) (x, dist int64, ok bool) {
	lo := geom.SnapDown(f.Lo+cpp-1, 0, cpp)
	hi := f.Hi - w
	if hi < lo {
		return 0, 0, false
	}
	x = geom.SnapDown(geom.Clamp64(tx, lo, hi), 0, cpp)
	if x < lo {
		x = lo
	}
	return x, geom.Abs64(x - tx), true
}

// pieceEndingAt returns the free piece whose Hi equals x, if any. Free
// lists are sorted and disjoint, so Hi is monotone and a binary search
// applies.
func pieceEndingAt(fr []geom.Interval, x int64) (geom.Interval, bool) {
	lo, hi := 0, len(fr)
	for lo < hi {
		mid := (lo + hi) / 2
		if fr[mid].Hi < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(fr) && fr[lo].Hi == x {
		return fr[lo], true
	}
	return geom.Interval{}, false
}

// pieceIndexFrom returns the index of the first free piece with Hi > x.
func pieceIndexFrom(fr []geom.Interval, x int64) int {
	lo, hi := 0, len(fr)
	for lo < hi {
		mid := (lo + hi) / 2
		if fr[mid].Hi <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// canSkip reports whether a recorded decision provably survives the dirty
// intervals accumulated so far — in which case the true fold at this
// position would probe the same candidates and pick the same slot.
//
// The two dirt kinds are asymmetric. TAKEN intervals (space the recording
// thought free that an earlier fold step occupied) can only remove probe
// candidates or shift a piece's clamp point onto the occupation's edges:
// best-so-far during a replay scan is otherwise pointwise no better than
// the recording's, so breaks happen no earlier, the recorded winner —
// which displaced its predecessor under placeOne's strict-improvement
// rule — still wins once its row is reached, and occupation can never
// create a fit in a window that failed during recording. Taken dirt
// therefore matters when it overlaps the winner's own slot, or when the
// far-side edge it exposes (marks are grid-aligned, so only the edge
// across the target from the piece is a genuinely new clamp point) would
// offer a candidate at cost ≤ rec.cost — confirmed against the live free
// list, since the edge candidate only exists if an adjacent piece
// actually ends at the mark and can host w.
//
// FREED intervals (space the recording thought occupied that is now
// free) can create better candidates and new fits in failed windows, but
// only inside live pieces overlapping the freed span's influence zone
// [Lo-w, Hi] — any new fit window must intersect the freed space, or it
// would have existed during recording. Rows inside a window that FAILED
// during recording (every window before rec.wnd) refuse on any such
// piece that fits w at all; rows inside the window that succeeded refuse
// when the piece's probe candidate costs ≤ rec.cost — a tie (≤) must
// refuse to preserve probe tie-breaking.
// Per-row hulls of the dirty marks (empty = Lo > Hi sentinel) screen
// whole rows in O(1): every mark-derived candidate lies inside the
// hull's influence zone, so a hull too far from the target admits no
// refusal and the mark scan is skipped.
func canSkip(live, freed, taken [][]geom.Interval, freedHull, takenHull []geom.Interval, rec legalRec, nRows int, rowH, cpp int64, targetRow int, tx, w int64) bool {
	for _, iv := range taken[rec.row] {
		if iv.Lo < rec.x+w && iv.Hi > rec.x {
			return false
		}
	}
	cleanRadius := -1
	if rec.wnd > 0 {
		cleanRadius = legalWindows[rec.wnd-1]
	}
	maxD := legalWindows[rec.wnd]
	if maxD < 0 {
		maxD = nRows
	}
	for d := 0; d <= maxD; d++ {
		penalty := int64(d) * rowH
		if d > cleanRadius && penalty > rec.cost {
			// Beyond the clean windows, any freed candidate already costs
			// more than the recorded winner from row distance alone; a
			// taken split's edge candidates cost even more (they sit at
			// the boundary of removed space, never nearer the target than
			// the interval they split).
			break
		}
		for _, ri := range [2]int{targetRow - d, targetRow + d} {
			if ri < 0 || ri >= nRows || (d == 0 && ri != targetRow) {
				continue
			}
			if h := takenHull[ri]; penalty <= rec.cost &&
				h.Lo <= h.Hi && h.Lo-w <= tx+(rec.cost-penalty) && h.Hi >= tx-(rec.cost-penalty) {
				for _, iv := range taken[ri] {
					if edLo := tx - (iv.Lo - w); edLo > 0 && edLo+penalty <= rec.cost {
						if p, ok := pieceEndingAt(live[ri], iv.Lo); ok {
							if _, _, fits := liveFit(p, tx, w, cpp); fits {
								return false
							}
						}
					}
					if edHi := iv.Hi - tx; edHi > 0 && edHi+penalty <= rec.cost {
						fr := live[ri]
						if j := pieceIndexFrom(fr, iv.Hi); j < len(fr) && fr[j].Lo == iv.Hi {
							if _, _, fits := liveFit(fr[j], tx, w, cpp); fits {
								return false
							}
						}
					}
				}
			}
			if h := freedHull[ri]; h.Lo > h.Hi ||
				(d > cleanRadius && dirtySlotDist(tx, h, w)+penalty > rec.cost+cpp) {
				continue
			}
			for _, iv := range freed[ri] {
				// The +cpp margin keeps the screen sound for the
				// winner-piece hazard below: an off-grid piece boundary
				// (blockage or core edge) puts the snapped clamp point up
				// to cpp-1 past the freed span's hull.
				if d > cleanRadius && dirtySlotDist(tx, iv, w)+penalty > rec.cost+cpp {
					continue
				}
				fr := live[ri]
				for j := pieceIndexFrom(fr, iv.Lo-w); j < len(fr) && fr[j].Lo <= iv.Hi; j++ {
					x, dist, fits := liveFit(fr[j], tx, w, cpp)
					if !fits {
						continue
					}
					if d <= cleanRadius || dist+penalty <= rec.cost {
						return false
					}
					// probe yields ONE candidate per piece: a merge that
					// grew the winner's own piece can move its clamp
					// point off the recorded slot even though the slot
					// itself is still free.
					if int32(ri) == rec.row && fr[j].Lo <= rec.x && rec.x+w <= fr[j].Hi && x != rec.x {
						return false
					}
				}
			}
		}
	}
	return true
}

// LegalizeDelta re-legalizes nl against a retained basis: every cell in
// moved (plus every cell appended after the basis was built, which must
// be listed in moved) is placed by the real probe; base cells whose
// recorded decision provably still holds reuse it without probing. The
// result is bit-identical to full Legalize on the same netlist — gated by
// a CheckLegal oracle — or the placement is rolled back and
// ErrBasisMismatch returned so the caller can run full Legalize.
func LegalizeDelta(nl *netlist.Netlist, fp *floorplan.Plan, blockages map[int][]geom.Interval, basis *LegalBasis, moved []*netlist.Instance) error {
	if basis == nil {
		return ErrBasisMismatch
	}
	cpp := fp.Stack.CPPNm
	rowH := fp.Stack.CellHeightNm()
	nRows := len(fp.Rows)
	insts := nl.Instances
	if basis.nRows != nRows || basis.rowH != rowH || basis.cpp != cpp || len(insts) < basis.nInst {
		return ErrBasisMismatch
	}
	scr := deltaPool.Get().(*deltaScratch)
	defer func() {
		clear(scr.mv[:cap(scr.mv)]) // drop instance pointers so the pool retains no netlist
		deltaPool.Put(scr)
	}()
	if cap(scr.movedF) < len(insts) {
		scr.movedF = make([]bool, len(insts))
	} else {
		scr.movedF = scr.movedF[:len(insts)]
		clear(scr.movedF)
	}
	movedF := scr.movedF
	for _, m := range moved {
		if m.Fixed {
			return ErrBasisMismatch
		}
		movedF[m.Seq] = true
	}
	// Verify the basis describes this netlist: the base movable set and
	// the recorded order must coincide, and every unmoved base cell must
	// still sit at its basis position. Appended cells must all be declared
	// moved (they have no recording).
	movableBase := 0
	for _, inst := range insts[:basis.nInst] {
		if !inst.Fixed {
			movableBase++
		}
	}
	if movableBase != len(basis.order) {
		return ErrBasisMismatch
	}
	for i, seq := range basis.order {
		inst := insts[seq]
		if inst.Fixed {
			return ErrBasisMismatch
		}
		if movedF[seq] {
			continue
		}
		if inst.Pos.X != basis.px[i] || inst.Pos.Y != basis.py[i] || inst.Cell.WidthNm(fp.Stack) != basis.w[i] {
			return ErrBasisMismatch
		}
	}
	for _, inst := range insts[basis.nInst:] {
		if !inst.Fixed && !movedF[inst.Seq] {
			return ErrBasisMismatch
		}
	}

	// Roll-back state: the delta fold mutates positions as it goes, so a
	// late mismatch must restore every movable cell before falling back.
	savedSeq := scr.savedSeq[:0]
	savedPos := scr.savedPos[:0]
	for _, inst := range insts {
		if !inst.Fixed {
			savedSeq = append(savedSeq, int32(inst.Seq))
			savedPos = append(savedPos, inst.Pos)
		}
	}
	scr.savedSeq, scr.savedPos = savedSeq, savedPos
	rollback := func() {
		for i, seq := range savedSeq {
			insts[seq].Pos = savedPos[i]
		}
	}

	total := 0
	for _, r := range basis.initFree {
		total += len(r)
	}
	if cap(scr.freeArena) < total {
		scr.freeArena = make([]geom.Interval, total)
	}
	if cap(scr.free) < nRows {
		scr.free = make([][]geom.Interval, nRows)
	}
	arena, free := scr.freeArena[:total], scr.free[:nRows]
	off := 0
	for i, r := range basis.initFree {
		seg := arena[off : off+len(r) : off+len(r)]
		copy(seg, r)
		free[i] = seg
		off += len(r)
	}
	// Dirt is tracked by kind — see canSkip for why occupations and
	// vacations have different blast radii.
	takenD := grownRows(scr.takenD, nRows)
	freedD := grownRows(scr.freedD, nRows)
	if cap(scr.takenHull) < nRows {
		scr.takenHull = make([]geom.Interval, nRows)
		scr.freedHull = make([]geom.Interval, nRows)
	}
	takenHull, freedHull := scr.takenHull[:nRows], scr.freedHull[:nRows]
	for i := range takenHull {
		empty := geom.Interval{Lo: math.MaxInt64, Hi: math.MinInt64}
		takenHull[i], freedHull[i] = empty, empty
	}
	scr.takenD, scr.freedD = takenD, freedD
	markTaken := func(row int32, lo, hi int64) {
		takenD[row] = append(takenD[row], geom.Interval{Lo: lo, Hi: hi})
		takenHull[row] = geom.Interval{Lo: min(takenHull[row].Lo, lo), Hi: max(takenHull[row].Hi, hi)}
	}
	markFreed := func(row int32, lo, hi int64) {
		freedD[row] = append(freedD[row], geom.Interval{Lo: lo, Hi: hi})
		freedHull[row] = geom.Interval{Lo: min(freedHull[row].Lo, lo), Hi: max(freedHull[row].Hi, hi)}
	}
	mv := append(scr.mv[:0], moved...)
	scr.mv = mv
	slices.SortFunc(mv, legalCmp)

	// probeCommit runs the real decision procedure for one cell.
	probeCommit := func(inst *netlist.Instance) (int32, int64, bool) {
		w := inst.Cell.WidthNm(fp.Stack)
		targetRow := int(geom.Clamp64(inst.Pos.Y/rowH, 0, int64(nRows-1)))
		row, x, _, _, ok := placeOne(free, nRows, rowH, cpp, targetRow, inst.Pos.X, w)
		if !ok {
			return 0, 0, false
		}
		take(&free[row], x, w)
		inst.Pos = geom.Pt(x, fp.Rows[row].Y)
		return int32(row), x, true
	}

	// The merged fold: basis entries in recorded order, moved cells
	// interleaved by the same (X, width desc, Name) key full Legalize
	// sorts by. The keys are total orders (names are unique), so the merge
	// is exactly the full path's processing order.
	movedBefore := func(m *netlist.Instance, i int) bool {
		if m.Pos.X != basis.px[i] {
			return m.Pos.X < basis.px[i]
		}
		if int32(m.Cell.WidthCPP) != basis.wcpp[i] {
			return int32(m.Cell.WidthCPP) > basis.wcpp[i]
		}
		return m.Name < insts[basis.order[i]].Name
	}
	mi := 0
	for i, seq := range basis.order {
		for mi < len(mv) && movedBefore(mv[mi], i) {
			m := mv[mi]
			w := m.Cell.WidthNm(fp.Stack)
			row, x, ok := probeCommit(m)
			if !ok {
				rollback()
				return ErrBasisMismatch
			}
			markTaken(row, x, x+w)
			mi++
		}
		rec := basis.rec[i]
		if movedF[seq] {
			// The recorded slot is never taken in this fold: from here on
			// it is free space the recording did not see.
			markFreed(rec.row, rec.x, rec.x+basis.w[i])
			continue
		}
		inst := insts[seq]
		w := basis.w[i]
		targetRow := int(geom.Clamp64(basis.py[i]/rowH, 0, int64(nRows-1)))
		if canSkip(free, freedD, takenD, freedHull, takenHull, rec, nRows, rowH, cpp, targetRow, basis.px[i], w) {
			if !takeAt(&free[rec.row], rec.x, w) {
				rollback()
				return ErrBasisMismatch
			}
			inst.Pos = geom.Pt(rec.x, fp.Rows[rec.row].Y)
			continue
		}
		row, x, ok := probeCommit(inst)
		if !ok {
			rollback()
			return ErrBasisMismatch
		}
		if row != rec.row || x != rec.x {
			markTaken(row, x, x+w)
			markFreed(rec.row, rec.x, rec.x+w)
		}
	}
	for ; mi < len(mv); mi++ {
		m := mv[mi]
		w := m.Cell.WidthNm(fp.Stack)
		row, x, ok := probeCommit(m)
		if !ok {
			rollback()
			return ErrBasisMismatch
		}
		markTaken(row, x, x+w)
	}

	// Oracle: the delta fold must have produced a legal placement; any
	// violation means the equivalence argument was broken somewhere, and
	// the caller's full Legalize is the authority.
	if err := CheckLegal(nl, fp, blockages); err != nil {
		rollback()
		return ErrBasisMismatch
	}
	return nil
}

// RefineBasis retains the refinement endpoint collection of a base
// netlist so repeated refinements after small structural deltas (CTS
// buffer insertion) re-collect only the rewired instances. Immutable
// once built; forked flow sessions share one basis concurrently.
type RefineBasis struct {
	nInst  int
	refs   [][]int64
	widths []int64
}

// NewRefineBasis collects nl's refinement endpoints as a retained basis.
func NewRefineBasis(nl *netlist.Netlist, fp *floorplan.Plan) *RefineBasis {
	return &RefineBasis{
		nInst:  len(nl.Instances),
		refs:   CollectRefineRefs(nl),
		widths: InstWidths(nl, fp),
	}
}

// PatchedRefs returns a refs/widths view of nl — a netlist grown from the
// basis netlist by appended instances — for RefineRefsCtx: entries for
// the dirty seqs and for every appended instance are re-collected,
// everything else is shared with the basis. Reports false when nl cannot
// have grown from the basis netlist (fewer instances than the basis).
func (b *RefineBasis) PatchedRefs(nl *netlist.Netlist, fp *floorplan.Plan, dirty []int32) ([][]int64, []int64, bool) {
	n := len(nl.Instances)
	if n < b.nInst {
		return nil, nil, false
	}
	refs := make([][]int64, n)
	copy(refs, b.refs)
	widths := make([]int64, n)
	copy(widths, b.widths)
	// One pre-sized arena for the re-collected rows: dirty sets skew
	// toward leaf-net endpoints (fanout ≤ 24 each way), so size for that
	// and let append grow past the estimate in the rare overflow.
	arena := make([]int64, 0, 26*(len(dirty)+n-b.nInst))
	recollect := func(inst *netlist.Instance) {
		if inst.Fixed {
			refs[inst.Seq] = nil
			return
		}
		start := len(arena)
		arena = appendInstRefs(arena, inst)
		refs[inst.Seq] = arena[start:len(arena):len(arena)]
	}
	seen := make([]bool, n)
	for _, seq := range dirty {
		if int(seq) >= n || seen[seq] {
			continue
		}
		seen[seq] = true
		recollect(nl.Instances[seq])
		// Dirty cells may also have been resized since the basis (synth-diff
		// forks); re-read the width. Identical for pure rewires.
		widths[seq] = nl.Instances[seq].Cell.WidthNm(fp.Stack)
	}
	for seq := b.nInst; seq < n; seq++ {
		inst := nl.Instances[seq]
		if !seen[seq] {
			recollect(inst)
		}
		widths[seq] = inst.Cell.WidthNm(fp.Stack)
	}
	return refs, widths, true
}
