package place

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/powerplan"
	"repro/internal/riscv"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

func smallDesign(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "p", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestPlaceLegalizesRISCVCore(t *testing.T) {
	nl := smallDesign(t)
	fp, err := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Place(nl, fp, pp.Blockages, DefaultOptions())
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := CheckLegal(nl, fp, pp.Blockages); err != nil {
		t.Fatalf("CheckLegal: %v", err)
	}
	if res.HPWLNm <= 0 {
		t.Error("zero HPWL")
	}
	t.Logf("placed %d cells, HPWL = %.1f µm", res.Legalized, float64(res.HPWLNm)/1000)
}

func TestPlacementQualityBeatsRandom(t *testing.T) {
	nl := smallDesign(t)
	fp, _ := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.65, 1.0)
	pp, _ := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})

	// Random-only placement: skip attraction by using zero iterations via
	// Global with 1 iteration then measuring, against the full flow.
	opt := DefaultOptions()
	Global(nl, fp, Options{Seed: 9, GlobalIters: 1, BinCount: 24, MaxAttractFanout: 2})
	if err := Legalize(nl, fp, pp.Blockages); err != nil {
		t.Fatal(err)
	}
	randomHPWL := HPWL(nl, fp)

	nl2 := smallDesign(t)
	res, err := Place(nl2, fp, pp.Blockages, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLNm >= randomHPWL {
		t.Errorf("optimized HPWL %.0f should beat near-random %.0f",
			float64(res.HPWLNm), float64(randomHPWL))
	}
}

func TestLegalizeRespectsBlockages(t *testing.T) {
	nl := smallDesign(t)
	// Very tight floorplan with blockages: every placement must avoid them.
	fp, _ := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.80, 1.0)
	pp, _ := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
	if len(pp.Blockages) == 0 {
		t.Fatal("no blockages generated")
	}
	if _, err := Place(nl, fp, pp.Blockages, DefaultOptions()); err != nil {
		t.Fatalf("80%% should legalize: %v", err)
	}
	if err := CheckLegal(nl, fp, pp.Blockages); err != nil {
		t.Fatal(err)
	}
}

func TestLegalizeFailsAboveTapCap(t *testing.T) {
	nl := smallDesign(t)
	// 97% utilization with ~12.5% of sites blocked cannot legalize.
	fp, _ := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.97, 1.0)
	pp, _ := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
	_, err := Place(nl, fp, pp.Blockages, DefaultOptions())
	if err == nil {
		t.Fatal("97% utilization must fail legalization against tap cells")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		nl := smallDesign(t)
		fp, _ := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.7, 1.0)
		pp, _ := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
		res, err := Place(nl, fp, pp.Blockages, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.HPWLNm
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("placement not deterministic: %d vs %d", a, b)
	}
}

func TestAllocate(t *testing.T) {
	free := []geom.Interval{{Lo: 0, Hi: 1000}}
	x, ok := allocate(&free, 400, 100, 50)
	if !ok || x != 400 {
		t.Fatalf("allocate = %d,%v want 400", x, ok)
	}
	if len(free) != 2 || free[0].Hi != 400 || free[1].Lo != 500 {
		t.Errorf("free after allocate = %v", free)
	}
	// Slot too small.
	small := []geom.Interval{{Lo: 0, Hi: 80}}
	if _, ok := allocate(&small, 0, 100, 50); ok {
		t.Error("allocation in too-small interval must fail")
	}
	// Snapped to site grid.
	free2 := []geom.Interval{{Lo: 130, Hi: 1000}}
	x2, ok := allocate(&free2, 0, 100, 50)
	if !ok || x2%50 != 0 || x2 < 130 {
		t.Errorf("allocate snapped = %d,%v (must be on 50nm sites >= 150)", x2, ok)
	}
}
