// Package geom provides integer-nanometer geometry primitives shared by the
// physical-design substrates: points, rectangles, closed intervals and
// Manhattan metrics. All coordinates are in database units of 1 nm.
package geom

import "fmt"

// Point is a location on one side of the wafer, in nanometers.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int64 {
	return Abs64(p.X-q.X) + Abs64(p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Abs returns |v| for any signed-integer type. It is the shared
// replacement for the hand-rolled abs helpers that used to live in the
// consumer packages.
func Abs[T ~int | ~int32 | ~int64](v T) T {
	if v < 0 {
		return -v
	}
	return v
}

// Abs64 returns |v|.
func Abs64(v int64) int64 { return Abs(v) }

// Min64 returns the smaller of a and b.
func Min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Max64 returns the larger of a and b.
func Max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Clamp64 limits v to [lo, hi].
func Clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Rect is an axis-aligned rectangle with inclusive lower-left and exclusive
// upper-right corners, in nanometers. A Rect with Lo == Hi is empty.
type Rect struct {
	Lo, Hi Point
}

// R builds a Rect from coordinates, normalizing the corner order.
func R(x0, y0, x1, y1 int64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// W returns the rectangle width.
func (r Rect) W() int64 { return r.Hi.X - r.Lo.X }

// H returns the rectangle height.
func (r Rect) H() int64 { return r.Hi.Y - r.Lo.Y }

// Area returns the rectangle area in nm².
func (r Rect) Area() int64 { return r.W() * r.H() }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.W() <= 0 || r.H() <= 0 }

// Center returns the rectangle center (rounded down).
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// Contains reports whether p lies inside r (half-open on the high edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X < r.Hi.X && p.Y >= r.Lo.Y && p.Y < r.Hi.Y
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.Lo.X < s.Hi.X && s.Lo.X < r.Hi.X && r.Lo.Y < s.Hi.Y && s.Lo.Y < r.Hi.Y
}

// Intersect returns the shared area of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{Max64(r.Lo.X, s.Lo.X), Max64(r.Lo.Y, s.Lo.Y)},
		Point{Min64(r.Hi.X, s.Hi.X), Min64(r.Hi.Y, s.Hi.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the bounding box of r and s. Empty rectangles are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{Min64(r.Lo.X, s.Lo.X), Min64(r.Lo.Y, s.Lo.Y)},
		Point{Max64(r.Hi.X, s.Hi.X), Max64(r.Hi.Y, s.Hi.Y)},
	}
}

// Translate returns r shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Lo.Add(d), r.Hi.Add(d)}
}

// Expand grows the rectangle by m on every edge (shrinks for negative m).
func (r Rect) Expand(m int64) Rect {
	return Rect{Point{r.Lo.X - m, r.Lo.Y - m}, Point{r.Hi.X + m, r.Hi.Y + m}}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Lo, r.Hi)
}

// BBox returns the bounding box of the given points. It returns an empty
// Rect when pts is empty.
func BBox(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r.Lo.X = Min64(r.Lo.X, p.X)
		r.Lo.Y = Min64(r.Lo.Y, p.Y)
		r.Hi.X = Max64(r.Hi.X, p.X)
		r.Hi.Y = Max64(r.Hi.Y, p.Y)
	}
	return r
}

// HPWL returns the half-perimeter wirelength of the points' bounding box.
func HPWL(pts []Point) int64 {
	if len(pts) < 2 {
		return 0
	}
	b := BBox(pts)
	return b.W() + b.H()
}

// Interval is a 1-D closed-open range [Lo, Hi).
type Interval struct {
	Lo, Hi int64
}

// Len returns the interval length.
func (iv Interval) Len() int64 { return iv.Hi - iv.Lo }

// Empty reports whether the interval covers nothing.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Overlaps reports whether two intervals share interior length.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

// Intersect clips iv to o.
func (iv Interval) Intersect(o Interval) Interval {
	out := Interval{Max64(iv.Lo, o.Lo), Min64(iv.Hi, o.Hi)}
	if out.Empty() {
		return Interval{}
	}
	return out
}

// Contains reports whether v lies in [Lo, Hi).
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v < iv.Hi }

// SnapDown rounds v down to the nearest multiple of step at or below v,
// relative to origin. step must be positive.
func SnapDown(v, origin, step int64) int64 {
	d := v - origin
	q := d / step
	if d < 0 && d%step != 0 {
		q--
	}
	return origin + q*step
}

// SnapNearest rounds v to the nearest multiple of step relative to origin.
func SnapNearest(v, origin, step int64) int64 {
	lo := SnapDown(v, origin, step)
	if v-lo >= step-(v-lo) {
		return lo + step
	}
	return lo
}

// NmToUm converts nanometers to micrometers.
func NmToUm(nm int64) float64 { return float64(nm) / 1000.0 }

// UmToNm converts micrometers to nanometers (rounded to nearest).
func UmToNm(um float64) int64 {
	if um >= 0 {
		return int64(um*1000.0 + 0.5)
	}
	return -int64(-um*1000.0 + 0.5)
}

// Um2 converts an nm² area to µm².
func Um2(nm2 int64) float64 { return float64(nm2) / 1e6 }
