package geom

import (
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Pt(3, -4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, -2) {
		t.Errorf("Add = %v, want (2,-2)", got)
	}
	if got := p.Sub(q); got != Pt(4, -6) {
		t.Errorf("Sub = %v, want (4,-6)", got)
	}
	if got := p.ManhattanDist(q); got != 10 {
		t.Errorf("ManhattanDist = %d, want 10", got)
	}
	if got := p.ManhattanDist(p); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 4, 6)
	if r.Lo != Pt(4, 6) || r.Hi != Pt(10, 20) {
		t.Fatalf("R did not normalize: %v", r)
	}
	if r.W() != 6 || r.H() != 14 {
		t.Errorf("W,H = %d,%d want 6,14", r.W(), r.H())
	}
	if r.Area() != 84 {
		t.Errorf("Area = %d want 84", r.Area())
	}
}

func TestRectContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},
		{Pt(9, 9), true},
		{Pt(10, 10), false}, // high edge exclusive
		{Pt(-1, 5), false},
		{Pt(5, 10), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectOverlapIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	c := R(10, 0, 20, 10) // touching edge, no interior overlap
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Overlaps(c) {
		t.Error("edge-touching rects must not overlap")
	}
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(c).Empty() {
		t.Error("Intersect of touching rects should be empty")
	}
}

func TestRectUnion(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(10, 10, 12, 12)
	if got := a.Union(b); got != R(0, 0, 12, 12) {
		t.Errorf("Union = %v", got)
	}
	var empty Rect
	if got := empty.Union(b); got != b {
		t.Errorf("empty union = %v, want %v", got, b)
	}
	if got := b.Union(empty); got != b {
		t.Errorf("union empty = %v, want %v", got, b)
	}
}

func TestBBoxHPWL(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(5, 3), Pt(2, 8)}
	b := BBox(pts)
	if b != R(1, 1, 5, 8) {
		t.Errorf("BBox = %v", b)
	}
	if got := HPWL(pts); got != 4+7 {
		t.Errorf("HPWL = %d want 11", got)
	}
	if HPWL(nil) != 0 || HPWL(pts[:1]) != 0 {
		t.Error("HPWL of <2 points must be 0")
	}
}

func TestSnap(t *testing.T) {
	if got := SnapDown(107, 0, 50); got != 100 {
		t.Errorf("SnapDown = %d want 100", got)
	}
	if got := SnapDown(-7, 0, 50); got != -50 {
		t.Errorf("SnapDown(-7) = %d want -50", got)
	}
	if got := SnapDown(100, 0, 50); got != 100 {
		t.Errorf("SnapDown exact = %d want 100", got)
	}
	if got := SnapNearest(126, 0, 50); got != 150 {
		t.Errorf("SnapNearest = %d want 150", got)
	}
	if got := SnapNearest(124, 0, 50); got != 100 {
		t.Errorf("SnapNearest = %d want 100", got)
	}
	if got := SnapDown(107, 7, 50); got != 107 {
		t.Errorf("SnapDown w/ origin = %d want 107", got)
	}
}

func TestInterval(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{10, 20}
	if a.Overlaps(b) {
		t.Error("touching intervals must not overlap")
	}
	c := Interval{5, 15}
	if !a.Overlaps(c) {
		t.Error("a should overlap c")
	}
	if got := a.Intersect(c); got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Contains(0) || a.Contains(10) {
		t.Error("Contains must be half-open")
	}
	if a.Len() != 10 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestUnitConversions(t *testing.T) {
	if got := NmToUm(1500); got != 1.5 {
		t.Errorf("NmToUm = %v", got)
	}
	if got := UmToNm(1.5); got != 1500 {
		t.Errorf("UmToNm = %v", got)
	}
	if got := UmToNm(-1.5); got != -1500 {
		t.Errorf("UmToNm(-1.5) = %v", got)
	}
	if got := Um2(3_000_000); got != 3.0 {
		t.Errorf("Um2 = %v", got)
	}
}

// Property: Manhattan distance is a metric (symmetry + triangle inequality).
func TestManhattanMetricProperties(t *testing.T) {
	small := func(v int64) int64 { return v % 1_000_000 }
	sym := func(x1, y1, x2, y2 int64) bool {
		p, q := Pt(small(x1), small(y1)), Pt(small(x2), small(y2))
		return p.ManhattanDist(q) == q.ManhattanDist(p)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	tri := func(x1, y1, x2, y2, x3, y3 int64) bool {
		p, q, r := Pt(small(x1), small(y1)), Pt(small(x2), small(y2)), Pt(small(x3), small(y3))
		return p.ManhattanDist(r) <= p.ManhattanDist(q)+q.ManhattanDist(r)
	}
	if err := quick.Check(tri, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersect result is contained in both inputs and Overlaps is
// consistent with a non-empty intersection.
func TestIntersectProperties(t *testing.T) {
	mk := func(a, b, c, d int64) Rect {
		m := int64(10000)
		return R(a%m, b%m, c%m, d%m)
	}
	prop := func(a, b, c, d, e, f, g, h int64) bool {
		r1, r2 := mk(a, b, c, d), mk(e, f, g, h)
		in := r1.Intersect(r2)
		if r1.Overlaps(r2) != !in.Empty() {
			// Degenerate (zero-area) inputs never overlap.
			if r1.Empty() || r2.Empty() {
				return in.Empty()
			}
			return false
		}
		if in.Empty() {
			return true
		}
		return in.Lo.X >= r1.Lo.X && in.Hi.X <= r1.Hi.X &&
			in.Lo.X >= r2.Lo.X && in.Hi.X <= r2.Hi.X &&
			in.Lo.Y >= r1.Lo.Y && in.Hi.Y <= r1.Hi.Y &&
			in.Lo.Y >= r2.Lo.Y && in.Hi.Y <= r2.Hi.Y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union contains both inputs.
func TestUnionContainsInputs(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h int64) bool {
		m := int64(10000)
		r1 := R(a%m, b%m, c%m, d%m)
		r2 := R(e%m, f%m, g%m, h%m)
		u := r1.Union(r2)
		within := func(inner, outer Rect) bool {
			if inner.Empty() {
				return true
			}
			return inner.Lo.X >= outer.Lo.X && inner.Lo.Y >= outer.Lo.Y &&
				inner.Hi.X <= outer.Hi.X && inner.Hi.Y <= outer.Hi.Y
		}
		return within(r1, u) && within(r2, u)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: SnapDown lands on-grid and within one step below v.
func TestSnapDownProperties(t *testing.T) {
	prop := func(v, origin int64, stepRaw uint16) bool {
		step := int64(stepRaw%1000) + 1
		v %= 1_000_000_000
		origin %= 1_000_000
		s := SnapDown(v, origin, step)
		if (s-origin)%step != 0 {
			return false
		}
		return s <= v && v-s < step
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
