package extract

import "unsafe"

// FootprintBytes estimates the retained heap bytes of a per-net RC table
// (the slice of extracted views a flow session keeps as its incremental
// timing baseline). An accounting estimate for cache budgeting, not an
// exact heap measurement.
func FootprintBytes(rcs []*NetRC) int64 {
	b := int64(len(rcs)) * int64(unsafe.Sizeof(uintptr(0)))
	for _, rc := range rcs {
		if rc == nil {
			continue
		}
		b += int64(unsafe.Sizeof(*rc)) + int64(len(rc.Name))
		b += int64(len(rc.ElmorePs)) * int64(unsafe.Sizeof(float64(0)))
	}
	return b
}
