// Package extract implements parasitic extraction for the evaluation flow:
// per-net RC trees built from routed topologies, Elmore delay from the
// driver to every sink, and total net capacitance for delay and power
// models.
//
// For FFET nets routed on both wafer sides, the front and back trees are
// joined at the driver through the Drain Merge via — the paper's
// "dual-sided RC extraction" after the per-side DEFs are merged
// (Section III.C). The merged-DEF path itself is exercised through
// def.Merge; extraction consumes the same routed topology.
package extract

import (
	"math"

	"repro/internal/route"
	"repro/internal/tech"
)

// Options tunes extraction.
type Options struct {
	// DrainMergeRKOhm is the series resistance of the Drain Merge via
	// joining the two sides of a dual-sided output pin.
	DrainMergeRKOhm float64
	// PinStubRKOhm models the local M0 stub + via landing at each pin.
	PinStubRKOhm float64
	// PinStubCfF is the local stub capacitance at each routed pin.
	PinStubCfF float64
	// EscapeK scales the driver escape resistance with pin crowding:
	// R_escape = PinStubRKOhm * EscapeK * crowding². Crowded pin fields
	// (dense single-sided cells) force long scenic M0/M1 escapes; the
	// dual-sided FFET halves crowding per side.
	EscapeK float64
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{
		DrainMergeRKOhm: 0.05,
		PinStubRKOhm:    0.12,
		PinStubCfF:      0.05,
		EscapeK:         8.0,
	}
}

// NetInput describes one net to extract. SinkPos and SinkCapFF are
// parallel slices over the net's sinks, in the netlist's canonical sink
// order; SinkPos locates each sink in the per-side routed trees by
// dense position — no name-keyed lookup anywhere in extraction.
type NetInput struct {
	Name  string
	Front *route.Tree // nil when the net has no frontside routing
	Back  *route.Tree // nil when single-sided
	// SinkPos packs each sink's routed location as
	// (index into its side sub-net's Pins << 1) | side bit
	// (0 front, 1 back); Tree.PinNode[index] is the sink's tree node.
	// Aligned with SinkCapFF and with NetRC.ElmorePs.
	SinkPos []int32
	// SinkCapFF is the input capacitance (fF) of each sink.
	SinkCapFF []float64
	// Order is the canonical sink visit order (indices into the sink
	// slices). Float accumulation into the capacitance totals follows
	// it, so one fixed order keeps results reproducible no matter how
	// sinks are listed; the flow passes the legacy sorted-by-pin-name
	// order. nil means index order.
	Order []int32
}

// NetRC is the extracted view consumed by STA and power analysis.
type NetRC struct {
	Name string
	// TotalCapFF includes wire, via, stub and sink pin capacitance — the
	// load seen by the driver and the switched capacitance for power.
	TotalCapFF float64
	// WireCapFF is the wire+stub portion only.
	WireCapFF float64
	// ElmorePs is the Elmore delay from the driver output to each sink,
	// aligned with NetInput.SinkPos/SinkCapFF (the net's canonical sink
	// order).
	ElmorePs []float64
	// WirelenNm is the total routed length across both sides.
	WirelenNm int64
}

// Equal reports whether two extracted net views are bit-identical: every
// float field compared by its IEEE-754 bit pattern, the Elmore tables
// element-wise. This is the cleanliness predicate of the incremental
// timing path — a net whose re-extracted view is Equal to the baseline
// cannot perturb any downstream arrival by even one ULP.
func (n *NetRC) Equal(o *NetRC) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Name != o.Name || n.WirelenNm != o.WirelenNm ||
		math.Float64bits(n.TotalCapFF) != math.Float64bits(o.TotalCapFF) ||
		math.Float64bits(n.WireCapFF) != math.Float64bits(o.WireCapFF) ||
		len(n.ElmorePs) != len(o.ElmorePs) {
		return false
	}
	for i, v := range n.ElmorePs {
		if math.Float64bits(v) != math.Float64bits(o.ElmorePs[i]) {
			return false
		}
	}
	return true
}

// DiffRC compares two dense net-Seq-indexed extraction databases and
// appends to dst the Seqs of every net whose view changed — the dirty set
// sta.Engine.Reanalyze consumes. Slots present in only one database (the
// views disagree on the design size) are reported dirty. dst is reused
// scratch; pass dst[:0] to rebuild in place.
func DiffRC(dst []int32, old, new []*NetRC) []int32 {
	n := len(new)
	if len(old) > n {
		n = len(old)
	}
	for i := 0; i < n; i++ {
		var o, w *NetRC
		if i < len(old) {
			o = old[i]
		}
		if i < len(new) {
			w = new[i]
		}
		if !o.Equal(w) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// MaxElmore returns the worst sink delay.
func (n *NetRC) MaxElmore() float64 {
	m := 0.0
	for _, v := range n.ElmorePs {
		if v > m {
			m = v
		}
	}
	return m
}

// Extractor owns reusable per-net scratch so extracting thousands of
// nets in a flow allocates only the returned NetRC values. The zero
// value is ready to use; an Extractor is not safe for concurrent use.
type Extractor struct {
	childStart []int32 // children of u: childList[childStart[u]:childStart[u+1]]
	childList  []int32
	cursor     []int32
	edgeIdx    []int32 // index into t.Edges of the edge reaching the node, -1 at roots
	nodeCap    []float64
	down       []float64
	elmore     []float64
	order      []int32
	idx        []int32 // identity visit order when NetInput.Order is nil
}

// NewExtractor returns an empty reusable extractor.
func NewExtractor() *Extractor { return &Extractor{} }

// Extract builds the RC view of one net.
func Extract(stack *tech.Stack, in NetInput, opt Options) *NetRC {
	return NewExtractor().Extract(stack, in, opt)
}

// Extract builds the RC view of one net, reusing the extractor scratch.
func (x *Extractor) Extract(stack *tech.Stack, in NetInput, opt Options) *NetRC {
	out := &NetRC{}
	x.ExtractInto(out, stack, in, opt)
	return out
}

// ExtractInto builds the RC view of one net into dst, reusing both the
// extractor scratch and dst's Elmore storage when its capacity suffices
// (flow callers pre-carve ElmorePs from one design-wide arena, so filling
// a dense net-Seq-indexed []NetRC allocates nothing per net).
func (x *Extractor) ExtractInto(dst *NetRC, stack *tech.Stack, in NetInput, opt Options) {
	nSinks := len(in.SinkCapFF)
	el := dst.ElmorePs
	if cap(el) < nSinks {
		el = make([]float64, nSinks)
	} else {
		el = el[:nSinks]
	}
	for i := range el {
		el[i] = -1 // not reached by a routed tree yet
	}
	*dst = NetRC{Name: in.Name, ElmorePs: el}

	// Sink visit order is the caller's canonical order everywhere below:
	// float accumulation into TotalCapFF must follow one fixed order, or
	// results drift by ULPs between otherwise-identical runs.
	order := in.Order
	if order == nil {
		idx := x.idx[:0]
		for i := 0; i < nSinks; i++ {
			idx = append(idx, int32(i))
		}
		x.idx = idx
		order = idx
	}

	for side, t := range [2]*route.Tree{in.Front, in.Back} {
		if t == nil {
			continue
		}
		x.extractSide(stack, t, in, opt, dst, int32(side), order)
		dst.WirelenNm += t.WirelenNm
	}
	// Sinks with no routed tree (same-gcell or unrouted): local stub only.
	for _, i := range order {
		if dst.ElmorePs[i] < 0 {
			c := in.SinkCapFF[i]
			dst.ElmorePs[i] = opt.PinStubRKOhm * (c + opt.PinStubCfF)
			dst.TotalCapFF += c + opt.PinStubCfF
			dst.WireCapFF += opt.PinStubCfF
		}
	}
}

// ensure sizes the scratch for an n-node tree.
func (x *Extractor) ensure(n int) {
	if cap(x.childStart) < n+1 {
		x.childStart = make([]int32, n+1)
		x.childList = make([]int32, n)
		x.edgeIdx = make([]int32, n)
		x.nodeCap = make([]float64, n)
		x.down = make([]float64, n)
		x.elmore = make([]float64, n)
		x.order = make([]int32, 0, n)
	}
	x.childStart = x.childStart[:n+1]
	x.childList = x.childList[:n]
	x.edgeIdx = x.edgeIdx[:n]
	x.nodeCap = x.nodeCap[:n]
	x.down = x.down[:n]
	x.elmore = x.elmore[:n]
}

// extractSide runs Elmore analysis over one side's tree and merges the
// results into out. side is the tree's side bit (0 front, 1 back); only
// sinks whose SinkPos carries that bit live in this tree.
func (x *Extractor) extractSide(stack *tech.Stack, t *route.Tree, in NetInput, opt Options, out *NetRC, side int32, order []int32) {
	n := len(t.Nodes)
	if n == 0 {
		return
	}
	x.ensure(n)
	// Children adjacency (edges are parent->child by construction), as a
	// counting-sorted flat list preserving t.Edges order per parent.
	for i := 0; i <= n; i++ {
		x.childStart[i] = 0
	}
	for i := range x.edgeIdx {
		x.edgeIdx[i] = -1
		x.nodeCap[i] = 0
		x.elmore[i] = 0
	}
	for _, e := range t.Edges {
		x.childStart[e.From+1]++
	}
	for i := 0; i < n; i++ {
		x.childStart[i+1] += x.childStart[i]
	}
	cursor := x.cursor[:0]
	cursor = append(cursor, x.childStart[:n]...)
	x.cursor = cursor
	for ei, e := range t.Edges {
		x.childList[cursor[e.From]] = int32(e.To)
		cursor[e.From]++
		x.edgeIdx[e.To] = int32(ei)
	}

	// Node capacitance: edge wire cap lands at the child node; sink pin
	// caps and stubs land at their pin node.
	for _, e := range t.Edges {
		lenUm := float64(e.LenNm) / 1000.0
		c := e.Layer.CPerUm * lenUm
		if e.Layer.Name == "" {
			c = 0.2 * lenUm
		}
		c += float64(e.Vias) * stack.ViaCfF
		x.nodeCap[e.To] += c
		out.WireCapFF += c
		out.TotalCapFF += c
	}
	// Canonical-order walk: nodeCap/TotalCapFF are float accumulators,
	// so the visit order must be the caller's fixed order.
	for _, i := range order {
		sp := in.SinkPos[i]
		if sp&1 != side {
			continue // sink lives in the other side's tree
		}
		node := t.PinNode[sp>>1]
		c := in.SinkCapFF[i]
		x.nodeCap[node] += c + opt.PinStubCfF
		out.TotalCapFF += c + opt.PinStubCfF
		out.WireCapFF += opt.PinStubCfF
	}

	// Downstream capacitance (post-order via reverse BFS order). The
	// children graph is a tree rooted at DriverNode, so plain BFS needs no
	// visited set.
	bfs := x.order[:0]
	bfs = append(bfs, int32(t.DriverNode))
	for qh := 0; qh < len(bfs); qh++ {
		u := bfs[qh]
		for _, v := range x.childList[x.childStart[u]:x.childStart[u+1]] {
			bfs = append(bfs, v)
		}
	}
	x.order = bfs
	copy(x.down, x.nodeCap)
	for i := len(bfs) - 1; i >= 0; i-- {
		u := bfs[i]
		for _, v := range x.childList[x.childStart[u]:x.childStart[u+1]] {
			x.down[u] += x.down[v]
		}
	}

	// Edge resistance includes the wire run plus via hops; the driver's
	// escape (M0 up to the first routing layer + Drain Merge when the net
	// reaches the backside) is a series resistance at the root.
	rootR := opt.PinStubRKOhm * (1 + opt.EscapeK*t.EscapeCrowding*t.EscapeCrowding)
	if in.Back != nil && in.Front != nil {
		rootR += opt.DrainMergeRKOhm
	}
	if len(t.Edges) > 0 {
		first := t.Edges[0]
		if first.Layer.Name != "" {
			rootR += stack.ViaStackR(0, first.Layer.Index)
		}
	}

	x.elmore[t.DriverNode] = rootR * x.down[t.DriverNode]
	for _, u := range bfs {
		for _, v := range x.childList[x.childStart[u]:x.childStart[u+1]] {
			e := t.Edges[x.edgeIdx[v]]
			lenUm := float64(e.LenNm) / 1000.0
			r := 0.3 * lenUm
			if e.Layer.Name != "" {
				r = e.Layer.RPerUm * lenUm
			}
			r += float64(e.Vias) * stack.ViaRKOhm
			x.elmore[v] = x.elmore[u] + r*x.down[v]
		}
	}

	for _, i := range order {
		sp := in.SinkPos[i]
		if sp&1 != side {
			continue
		}
		node := t.PinNode[sp>>1]
		c := in.SinkCapFF[i]
		// Sink escape: via stack back down to the pin.
		descend := 0.0
		if ei := x.edgeIdx[node]; ei >= 0 && t.Edges[ei].Layer.Name != "" {
			descend = stack.ViaStackR(t.Edges[ei].Layer.Index, 0)
		}
		d := x.elmore[node] + (opt.PinStubRKOhm+descend)*(c+opt.PinStubCfF)
		if d > out.ElmorePs[i] {
			out.ElmorePs[i] = d
		}
	}
}

// SlewDegrade approximates output-transition degradation along a wire with
// the given Elmore delay (Bakoglu-style RMS blend).
func SlewDegrade(slewPs, elmorePs float64) float64 {
	return math.Sqrt(slewPs*slewPs + (2.2*elmorePs)*(2.2*elmorePs))
}
