// Package extract implements parasitic extraction for the evaluation flow:
// per-net RC trees built from routed topologies, Elmore delay from the
// driver to every sink, and total net capacitance for delay and power
// models.
//
// For FFET nets routed on both wafer sides, the front and back trees are
// joined at the driver through the Drain Merge via — the paper's
// "dual-sided RC extraction" after the per-side DEFs are merged
// (Section III.C). The merged-DEF path itself is exercised through
// def.Merge; extraction consumes the same routed topology.
package extract

import (
	"math"

	"repro/internal/route"
	"repro/internal/tech"
)

// Options tunes extraction.
type Options struct {
	// DrainMergeRKOhm is the series resistance of the Drain Merge via
	// joining the two sides of a dual-sided output pin.
	DrainMergeRKOhm float64
	// PinStubRKOhm models the local M0 stub + via landing at each pin.
	PinStubRKOhm float64
	// PinStubCfF is the local stub capacitance at each routed pin.
	PinStubCfF float64
	// EscapeK scales the driver escape resistance with pin crowding:
	// R_escape = PinStubRKOhm * EscapeK * crowding². Crowded pin fields
	// (dense single-sided cells) force long scenic M0/M1 escapes; the
	// dual-sided FFET halves crowding per side.
	EscapeK float64
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{
		DrainMergeRKOhm: 0.05,
		PinStubRKOhm:    0.12,
		PinStubCfF:      0.05,
		EscapeK:         8.0,
	}
}

// NetInput describes one net to extract.
type NetInput struct {
	Name     string
	Front    *route.Tree // nil when the net has no frontside routing
	Back     *route.Tree // nil when single-sided
	DriverID string
	// SinkCaps maps sink pin ID -> input capacitance (fF).
	SinkCaps map[string]float64
}

// NetRC is the extracted view consumed by STA and power analysis.
type NetRC struct {
	Name string
	// TotalCapFF includes wire, via, stub and sink pin capacitance — the
	// load seen by the driver and the switched capacitance for power.
	TotalCapFF float64
	// WireCapFF is the wire+stub portion only.
	WireCapFF float64
	// ElmorePs maps sink pin ID -> Elmore delay from the driver output.
	ElmorePs map[string]float64
	// WirelenNm is the total routed length across both sides.
	WirelenNm int64
}

// MaxElmore returns the worst sink delay.
func (n *NetRC) MaxElmore() float64 {
	m := 0.0
	for _, v := range n.ElmorePs {
		if v > m {
			m = v
		}
	}
	return m
}

// Extract builds the RC view of one net.
func Extract(stack *tech.Stack, in NetInput, opt Options) *NetRC {
	out := &NetRC{Name: in.Name, ElmorePs: make(map[string]float64, len(in.SinkCaps))}

	type sideTree struct {
		t *route.Tree
	}
	for _, st := range []sideTree{{in.Front}, {in.Back}} {
		if st.t == nil {
			continue
		}
		extractSide(stack, st.t, in, opt, out)
		out.WirelenNm += st.t.WirelenNm
	}
	// Sinks with no routed tree (same-gcell or unrouted): local stub only.
	for id, c := range in.SinkCaps {
		if _, ok := out.ElmorePs[id]; !ok {
			out.ElmorePs[id] = opt.PinStubRKOhm * (c + opt.PinStubCfF)
			out.TotalCapFF += c + opt.PinStubCfF
			out.WireCapFF += opt.PinStubCfF
		}
	}
	return out
}

// extractSide runs Elmore analysis over one side's tree and merges the
// results into out.
func extractSide(stack *tech.Stack, t *route.Tree, in NetInput, opt Options, out *NetRC) {
	n := len(t.Nodes)
	if n == 0 {
		return
	}
	// children adjacency (edges are parent->child by construction).
	children := make([][]int, n)
	edgeOf := make([]route.TreeEdge, n) // edge reaching node i (To == i)
	hasEdge := make([]bool, n)
	for _, e := range t.Edges {
		children[e.From] = append(children[e.From], e.To)
		edgeOf[e.To] = e
		hasEdge[e.To] = true
	}

	// Node capacitance: edge wire cap lands at the child node; sink pin
	// caps and stubs land at their pin node.
	nodeCap := make([]float64, n)
	for _, e := range t.Edges {
		lenUm := float64(e.LenNm) / 1000.0
		c := e.Layer.CPerUm * lenUm
		if e.Layer.Name == "" {
			c = 0.2 * lenUm
		}
		c += float64(e.Vias) * stack.ViaCfF
		nodeCap[e.To] += c
		out.WireCapFF += c
		out.TotalCapFF += c
	}
	sinksHere := make(map[int][]string)
	for id, node := range t.PinNode {
		if id == in.DriverID {
			continue
		}
		c, isSink := in.SinkCaps[id]
		if !isSink {
			continue
		}
		nodeCap[node] += c + opt.PinStubCfF
		out.TotalCapFF += c + opt.PinStubCfF
		out.WireCapFF += opt.PinStubCfF
		sinksHere[node] = append(sinksHere[node], id)
	}

	// Downstream capacitance (post-order via reverse BFS order).
	order := bfsOrder(children, t.DriverNode, n)
	down := make([]float64, n)
	copy(down, nodeCap)
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, v := range children[u] {
			down[u] += down[v]
		}
	}

	// Edge resistance includes the wire run plus via hops; the driver's
	// escape (M0 up to the first routing layer + Drain Merge when the net
	// reaches the backside) is a series resistance at the root.
	rootR := opt.PinStubRKOhm * (1 + opt.EscapeK*t.EscapeCrowding*t.EscapeCrowding)
	if in.Back != nil && in.Front != nil {
		rootR += opt.DrainMergeRKOhm
	}
	if len(t.Edges) > 0 {
		first := t.Edges[0]
		if first.Layer.Name != "" {
			rootR += stack.ViaStackR(0, first.Layer.Index)
		}
	}

	elmore := make([]float64, n)
	elmore[t.DriverNode] = rootR * down[t.DriverNode]
	for _, u := range order {
		for _, v := range children[u] {
			e := edgeOf[v]
			lenUm := float64(e.LenNm) / 1000.0
			r := 0.3 * lenUm
			if e.Layer.Name != "" {
				r = e.Layer.RPerUm * lenUm
			}
			r += float64(e.Vias) * stack.ViaRKOhm
			elmore[v] = elmore[u] + r*down[v]
		}
	}
	_ = hasEdge

	for node, ids := range sinksHere {
		// Sink escape: via stack back down to the pin.
		descend := 0.0
		if hasEdge[node] && edgeOf[node].Layer.Name != "" {
			descend = stack.ViaStackR(edgeOf[node].Layer.Index, 0)
		}
		for _, id := range ids {
			d := elmore[node] + (opt.PinStubRKOhm+descend)*(in.SinkCaps[id]+opt.PinStubCfF)
			if prev, ok := out.ElmorePs[id]; !ok || d > prev {
				out.ElmorePs[id] = d
			}
		}
	}
}

// bfsOrder returns nodes reachable from root in BFS order.
func bfsOrder(children [][]int, root, n int) []int {
	order := make([]int, 0, n)
	queue := []int{root}
	seen := make([]bool, n)
	seen[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range children[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// SlewDegrade approximates output-transition degradation along a wire with
// the given Elmore delay (Bakoglu-style RMS blend).
func SlewDegrade(slewPs, elmorePs float64) float64 {
	return math.Sqrt(slewPs*slewPs + (2.2*elmorePs)*(2.2*elmorePs))
}
