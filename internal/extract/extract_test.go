package extract

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/tech"
)

var st = tech.NewFFET()

// lineTree builds a 3-node path: driver - n1 - n2, 1µm per edge on FM2.
// Pin positions: 0 = driver, 1 = near sink, 2 = far sink.
func lineTree(layer tech.Layer) *route.Tree {
	return &route.Tree{
		Name:  "n",
		Nodes: []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 0), geom.Pt(2000, 0)},
		Edges: []route.TreeEdge{
			{From: 0, To: 1, Layer: layer, LenNm: 1000},
			{From: 1, To: 2, Layer: layer, LenNm: 1000},
		},
		PinNode:    []int32{0, 1, 2},
		DriverNode: 0,
		WirelenNm:  2000,
	}
}

// frontPos packs a frontside sink position; backPos the backside.
func frontPos(pos int32) int32 { return pos << 1 }
func backPos(pos int32) int32  { return pos<<1 | 1 }

// twoSinks is the canonical dense sink table for lineTree nets:
// index 0 = near sink (pin position 1), index 1 = far sink (position 2).
func twoSinks() ([]int32, []float64) {
	return []int32{frontPos(1), frontPos(2)}, []float64{0.2, 0.2}
}

func TestElmoreOrdering(t *testing.T) {
	fm2 := st.MustLayer("FM2")
	pos, caps := twoSinks()
	rc := Extract(st, NetInput{
		Name:      "n",
		Front:     lineTree(fm2),
		SinkPos:   pos,
		SinkCapFF: caps,
	}, DefaultOptions())
	if len(rc.ElmorePs) != 2 {
		t.Fatalf("ElmorePs entries = %d, want one per sink", len(rc.ElmorePs))
	}
	if rc.ElmorePs[0] <= 0 {
		t.Fatal("zero Elmore at near sink")
	}
	if !(rc.ElmorePs[1] > rc.ElmorePs[0]) {
		t.Errorf("far sink %.3f must exceed near sink %.3f",
			rc.ElmorePs[1], rc.ElmorePs[0])
	}
	// Total cap: 2µm wire + 2 sinks + stubs.
	wantWire := 2 * fm2.CPerUm
	if rc.WireCapFF < wantWire || rc.WireCapFF > wantWire+0.2 {
		t.Errorf("wire cap = %.3f, want ≈ %.3f", rc.WireCapFF, wantWire)
	}
	if rc.TotalCapFF <= rc.WireCapFF {
		t.Error("total cap must include sink pins")
	}
}

func TestUpperLayerIsFaster(t *testing.T) {
	pos, caps := twoSinks()
	lo := Extract(st, NetInput{Name: "n", Front: lineTree(st.MustLayer("FM2")),
		SinkPos: pos, SinkCapFF: caps}, DefaultOptions())
	hi := Extract(st, NetInput{Name: "n", Front: lineTree(st.MustLayer("FM10")),
		SinkPos: pos, SinkCapFF: caps}, DefaultOptions())
	if !(hi.ElmorePs[1] < lo.ElmorePs[1]) {
		t.Errorf("FM10 (%.3f ps) must beat FM2 (%.3f ps)",
			hi.ElmorePs[1], lo.ElmorePs[1])
	}
}

func TestDualSidedJoinsAtDriver(t *testing.T) {
	fm2, bm2 := st.MustLayer("FM2"), st.MustLayer("BM2")
	front := lineTree(fm2)
	back := lineTree(bm2)
	back.PinNode = []int32{0, 2} // driver, then one sink at the far node
	rc := Extract(st, NetInput{
		Name: "n", Front: front, Back: back,
		SinkPos:   []int32{frontPos(1), frontPos(2), backPos(1)},
		SinkCapFF: []float64{0.2, 0.2, 0.2},
	}, DefaultOptions())
	if len(rc.ElmorePs) != 3 {
		t.Fatalf("sinks extracted = %d, want 3 across both sides", len(rc.ElmorePs))
	}
	for i, d := range rc.ElmorePs {
		if d <= 0 {
			t.Errorf("sink %d Elmore = %.3f, want > 0", i, d)
		}
	}
	if rc.WirelenNm != 4000 {
		t.Errorf("wirelength = %d, want 4000 (both sides)", rc.WirelenNm)
	}
}

func TestUnroutedSinkGetsStub(t *testing.T) {
	rc := Extract(st, NetInput{
		Name:      "n",
		SinkCapFF: []float64{0.3},
	}, DefaultOptions())
	if rc.ElmorePs[0] <= 0 {
		t.Error("unrouted sink needs a stub delay")
	}
}

func TestEscapeCrowdingRaisesDelay(t *testing.T) {
	pos, caps := twoSinks()
	mk := func(crowd float64) float64 {
		tr := lineTree(st.MustLayer("FM2"))
		tr.EscapeCrowding = crowd
		rc := Extract(st, NetInput{Name: "n", Front: tr,
			SinkPos: pos, SinkCapFF: caps}, DefaultOptions())
		return rc.ElmorePs[1]
	}
	if !(mk(1.0) > mk(0.0)) {
		t.Error("pin crowding must increase driver escape delay")
	}
}

// TestExtractIntoReusesStorage pins the dense-database contract: repeated
// ExtractInto on one destination reuses its Elmore backing array and
// produces identical values run to run.
func TestExtractIntoReusesStorage(t *testing.T) {
	pos, caps := twoSinks()
	in := NetInput{Name: "n", Front: lineTree(st.MustLayer("FM2")),
		SinkPos: pos, SinkCapFF: caps}
	x := NewExtractor()
	var rc NetRC
	x.ExtractInto(&rc, st, in, DefaultOptions())
	first := append([]float64(nil), rc.ElmorePs...)
	firstCap := rc.TotalCapFF
	ptr := &rc.ElmorePs[0]
	x.ExtractInto(&rc, st, in, DefaultOptions())
	if &rc.ElmorePs[0] != ptr {
		t.Error("ExtractInto reallocated the Elmore array on reuse")
	}
	if rc.TotalCapFF != firstCap {
		t.Errorf("TotalCapFF drifted on re-extract: %v vs %v", rc.TotalCapFF, firstCap)
	}
	for i := range first {
		if rc.ElmorePs[i] != first[i] {
			t.Errorf("ElmorePs[%d] drifted on re-extract: %v vs %v", i, rc.ElmorePs[i], first[i])
		}
	}
}

func TestSlewDegrade(t *testing.T) {
	if got := SlewDegrade(10, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("no wire -> unchanged slew, got %v", got)
	}
	if !(SlewDegrade(10, 5) > 10) {
		t.Error("wire delay must degrade slew")
	}
}
