package extract

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/tech"
)

var st = tech.NewFFET()

// lineTree builds a 3-node path: driver - n1 - n2, 1µm per edge on FM2.
func lineTree(layer tech.Layer) *route.Tree {
	return &route.Tree{
		Name:  "n",
		Nodes: []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 0), geom.Pt(2000, 0)},
		Edges: []route.TreeEdge{
			{From: 0, To: 1, Layer: layer, LenNm: 1000},
			{From: 1, To: 2, Layer: layer, LenNm: 1000},
		},
		PinNode:    map[string]int{"d/Z": 0, "a/I": 1, "b/I": 2},
		DriverNode: 0,
		WirelenNm:  2000,
	}
}

func TestElmoreOrdering(t *testing.T) {
	fm2 := st.MustLayer("FM2")
	rc := Extract(st, NetInput{
		Name:     "n",
		Front:    lineTree(fm2),
		DriverID: "d/Z",
		SinkCaps: map[string]float64{"a/I": 0.2, "b/I": 0.2},
	}, DefaultOptions())
	if rc.ElmorePs["a/I"] <= 0 {
		t.Fatal("zero Elmore at near sink")
	}
	if !(rc.ElmorePs["b/I"] > rc.ElmorePs["a/I"]) {
		t.Errorf("far sink %.3f must exceed near sink %.3f",
			rc.ElmorePs["b/I"], rc.ElmorePs["a/I"])
	}
	// Total cap: 2µm wire + 2 sinks + stubs.
	wantWire := 2 * fm2.CPerUm
	if rc.WireCapFF < wantWire || rc.WireCapFF > wantWire+0.2 {
		t.Errorf("wire cap = %.3f, want ≈ %.3f", rc.WireCapFF, wantWire)
	}
	if rc.TotalCapFF <= rc.WireCapFF {
		t.Error("total cap must include sink pins")
	}
}

func TestUpperLayerIsFaster(t *testing.T) {
	lo := Extract(st, NetInput{Name: "n", Front: lineTree(st.MustLayer("FM2")),
		DriverID: "d/Z", SinkCaps: map[string]float64{"a/I": 0.2, "b/I": 0.2}}, DefaultOptions())
	hi := Extract(st, NetInput{Name: "n", Front: lineTree(st.MustLayer("FM10")),
		DriverID: "d/Z", SinkCaps: map[string]float64{"a/I": 0.2, "b/I": 0.2}}, DefaultOptions())
	if !(hi.ElmorePs["b/I"] < lo.ElmorePs["b/I"]) {
		t.Errorf("FM10 (%.3f ps) must beat FM2 (%.3f ps)",
			hi.ElmorePs["b/I"], lo.ElmorePs["b/I"])
	}
}

func TestDualSidedJoinsAtDriver(t *testing.T) {
	fm2, bm2 := st.MustLayer("FM2"), st.MustLayer("BM2")
	front := lineTree(fm2)
	back := lineTree(bm2)
	back.PinNode = map[string]int{"d/Z": 0, "c/I": 2}
	rc := Extract(st, NetInput{
		Name: "n", Front: front, Back: back, DriverID: "d/Z",
		SinkCaps: map[string]float64{"a/I": 0.2, "b/I": 0.2, "c/I": 0.2},
	}, DefaultOptions())
	if len(rc.ElmorePs) != 3 {
		t.Fatalf("sinks extracted = %d, want 3 across both sides", len(rc.ElmorePs))
	}
	if rc.WirelenNm != 4000 {
		t.Errorf("wirelength = %d, want 4000 (both sides)", rc.WirelenNm)
	}
}

func TestUnroutedSinkGetsStub(t *testing.T) {
	rc := Extract(st, NetInput{
		Name: "n", DriverID: "d/Z",
		SinkCaps: map[string]float64{"a/I": 0.3},
	}, DefaultOptions())
	if rc.ElmorePs["a/I"] <= 0 {
		t.Error("unrouted sink needs a stub delay")
	}
}

func TestEscapeCrowdingRaisesDelay(t *testing.T) {
	mk := func(crowd float64) float64 {
		tr := lineTree(st.MustLayer("FM2"))
		tr.EscapeCrowding = crowd
		rc := Extract(st, NetInput{Name: "n", Front: tr, DriverID: "d/Z",
			SinkCaps: map[string]float64{"a/I": 0.2, "b/I": 0.2}}, DefaultOptions())
		return rc.ElmorePs["b/I"]
	}
	if !(mk(1.0) > mk(0.0)) {
		t.Error("pin crowding must increase driver escape delay")
	}
}

func TestSlewDegrade(t *testing.T) {
	if got := SlewDegrade(10, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("no wire -> unchanged slew, got %v", got)
	}
	if !(SlewDegrade(10, 5) > 10) {
		t.Error("wire delay must degrade slew")
	}
}
