package extract

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/tech"
)

var st = tech.NewFFET()

// lineTree builds a 3-node path: driver - n1 - n2, 1µm per edge on FM2.
// Pin positions: 0 = driver, 1 = near sink, 2 = far sink.
func lineTree(layer tech.Layer) *route.Tree {
	return &route.Tree{
		Name:  "n",
		Nodes: []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 0), geom.Pt(2000, 0)},
		Edges: []route.TreeEdge{
			{From: 0, To: 1, Layer: layer, LenNm: 1000},
			{From: 1, To: 2, Layer: layer, LenNm: 1000},
		},
		PinNode:    []int32{0, 1, 2},
		DriverNode: 0,
		WirelenNm:  2000,
	}
}

// frontPos packs a frontside sink position; backPos the backside.
func frontPos(pos int32) int32 { return pos << 1 }
func backPos(pos int32) int32  { return pos<<1 | 1 }

// twoSinks is the canonical dense sink table for lineTree nets:
// index 0 = near sink (pin position 1), index 1 = far sink (position 2).
func twoSinks() ([]int32, []float64) {
	return []int32{frontPos(1), frontPos(2)}, []float64{0.2, 0.2}
}

func TestElmoreOrdering(t *testing.T) {
	fm2 := st.MustLayer("FM2")
	pos, caps := twoSinks()
	rc := Extract(st, NetInput{
		Name:      "n",
		Front:     lineTree(fm2),
		SinkPos:   pos,
		SinkCapFF: caps,
	}, DefaultOptions())
	if len(rc.ElmorePs) != 2 {
		t.Fatalf("ElmorePs entries = %d, want one per sink", len(rc.ElmorePs))
	}
	if rc.ElmorePs[0] <= 0 {
		t.Fatal("zero Elmore at near sink")
	}
	if !(rc.ElmorePs[1] > rc.ElmorePs[0]) {
		t.Errorf("far sink %.3f must exceed near sink %.3f",
			rc.ElmorePs[1], rc.ElmorePs[0])
	}
	// Total cap: 2µm wire + 2 sinks + stubs.
	wantWire := 2 * fm2.CPerUm
	if rc.WireCapFF < wantWire || rc.WireCapFF > wantWire+0.2 {
		t.Errorf("wire cap = %.3f, want ≈ %.3f", rc.WireCapFF, wantWire)
	}
	if rc.TotalCapFF <= rc.WireCapFF {
		t.Error("total cap must include sink pins")
	}
}

func TestUpperLayerIsFaster(t *testing.T) {
	pos, caps := twoSinks()
	lo := Extract(st, NetInput{Name: "n", Front: lineTree(st.MustLayer("FM2")),
		SinkPos: pos, SinkCapFF: caps}, DefaultOptions())
	hi := Extract(st, NetInput{Name: "n", Front: lineTree(st.MustLayer("FM10")),
		SinkPos: pos, SinkCapFF: caps}, DefaultOptions())
	if !(hi.ElmorePs[1] < lo.ElmorePs[1]) {
		t.Errorf("FM10 (%.3f ps) must beat FM2 (%.3f ps)",
			hi.ElmorePs[1], lo.ElmorePs[1])
	}
}

func TestDualSidedJoinsAtDriver(t *testing.T) {
	fm2, bm2 := st.MustLayer("FM2"), st.MustLayer("BM2")
	front := lineTree(fm2)
	back := lineTree(bm2)
	back.PinNode = []int32{0, 2} // driver, then one sink at the far node
	rc := Extract(st, NetInput{
		Name: "n", Front: front, Back: back,
		SinkPos:   []int32{frontPos(1), frontPos(2), backPos(1)},
		SinkCapFF: []float64{0.2, 0.2, 0.2},
	}, DefaultOptions())
	if len(rc.ElmorePs) != 3 {
		t.Fatalf("sinks extracted = %d, want 3 across both sides", len(rc.ElmorePs))
	}
	for i, d := range rc.ElmorePs {
		if d <= 0 {
			t.Errorf("sink %d Elmore = %.3f, want > 0", i, d)
		}
	}
	if rc.WirelenNm != 4000 {
		t.Errorf("wirelength = %d, want 4000 (both sides)", rc.WirelenNm)
	}
}

func TestUnroutedSinkGetsStub(t *testing.T) {
	rc := Extract(st, NetInput{
		Name:      "n",
		SinkCapFF: []float64{0.3},
	}, DefaultOptions())
	if rc.ElmorePs[0] <= 0 {
		t.Error("unrouted sink needs a stub delay")
	}
}

func TestEscapeCrowdingRaisesDelay(t *testing.T) {
	pos, caps := twoSinks()
	mk := func(crowd float64) float64 {
		tr := lineTree(st.MustLayer("FM2"))
		tr.EscapeCrowding = crowd
		rc := Extract(st, NetInput{Name: "n", Front: tr,
			SinkPos: pos, SinkCapFF: caps}, DefaultOptions())
		return rc.ElmorePs[1]
	}
	if !(mk(1.0) > mk(0.0)) {
		t.Error("pin crowding must increase driver escape delay")
	}
}

// TestExtractIntoReusesStorage pins the dense-database contract: repeated
// ExtractInto on one destination reuses its Elmore backing array and
// produces identical values run to run.
func TestExtractIntoReusesStorage(t *testing.T) {
	pos, caps := twoSinks()
	in := NetInput{Name: "n", Front: lineTree(st.MustLayer("FM2")),
		SinkPos: pos, SinkCapFF: caps}
	x := NewExtractor()
	var rc NetRC
	x.ExtractInto(&rc, st, in, DefaultOptions())
	first := append([]float64(nil), rc.ElmorePs...)
	firstCap := rc.TotalCapFF
	ptr := &rc.ElmorePs[0]
	x.ExtractInto(&rc, st, in, DefaultOptions())
	if &rc.ElmorePs[0] != ptr {
		t.Error("ExtractInto reallocated the Elmore array on reuse")
	}
	if rc.TotalCapFF != firstCap {
		t.Errorf("TotalCapFF drifted on re-extract: %v vs %v", rc.TotalCapFF, firstCap)
	}
	for i := range first {
		if rc.ElmorePs[i] != first[i] {
			t.Errorf("ElmorePs[%d] drifted on re-extract: %v vs %v", i, rc.ElmorePs[i], first[i])
		}
	}
}

func TestSlewDegrade(t *testing.T) {
	if got := SlewDegrade(10, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("no wire -> unchanged slew, got %v", got)
	}
	if !(SlewDegrade(10, 5) > 10) {
		t.Error("wire delay must degrade slew")
	}
}

// TestNetRCEqualBitExact pins the cleanliness predicate of the
// incremental timing path: Equal must be true only for bit-identical
// views — any field differing by even one ULP marks the net dirty.
func TestNetRCEqualBitExact(t *testing.T) {
	mk := func() *NetRC {
		return &NetRC{Name: "n", TotalCapFF: 3.25, WireCapFF: 1.5,
			ElmorePs: []float64{2, 4, 8}, WirelenNm: 120}
	}
	a, b := mk(), mk()
	if !a.Equal(b) || !a.Equal(a) {
		t.Fatal("identical views must compare Equal")
	}
	var nilRC *NetRC
	if !nilRC.Equal(nil) || a.Equal(nil) || nilRC.Equal(a) {
		t.Error("nil handling wrong")
	}
	ulp := func(v float64) float64 { return math.Nextafter(v, math.Inf(1)) }
	cases := map[string]func(*NetRC){
		"name":    func(n *NetRC) { n.Name = "m" },
		"cap":     func(n *NetRC) { n.TotalCapFF = ulp(n.TotalCapFF) },
		"wirecap": func(n *NetRC) { n.WireCapFF = ulp(n.WireCapFF) },
		"elmore":  func(n *NetRC) { n.ElmorePs[1] = ulp(n.ElmorePs[1]) },
		"sinks":   func(n *NetRC) { n.ElmorePs = n.ElmorePs[:2] },
		"wirelen": func(n *NetRC) { n.WirelenNm++ },
	}
	for name, mut := range cases {
		c := mk()
		mut(c)
		if a.Equal(c) {
			t.Errorf("%s change not detected", name)
		}
	}
}

// TestDiffRC pins the changed-net reporting: exactly the mutated Seqs,
// in ascending order, with nil/missing slots treated as dirty.
func TestDiffRC(t *testing.T) {
	mk := func(capFF float64) *NetRC {
		return &NetRC{Name: "n", TotalCapFF: capFF, ElmorePs: []float64{1}}
	}
	old := []*NetRC{mk(1), mk(2), nil, mk(4), mk(5)}
	new := []*NetRC{mk(1), mk(9), nil, mk(4), mk(5)}
	if d := DiffRC(nil, old, old); len(d) != 0 {
		t.Errorf("self-diff = %v, want empty", d)
	}
	if d := DiffRC(nil, old, new); len(d) != 1 || d[0] != 1 {
		t.Errorf("diff = %v, want [1]", d)
	}
	// A nil slot on one side only is dirty; equal *values* in distinct
	// allocations are clean.
	new2 := []*NetRC{mk(1), mk(2), mk(3), mk(4), nil}
	if d := DiffRC(nil, old, new2); len(d) != 2 || d[0] != 2 || d[1] != 4 {
		t.Errorf("diff = %v, want [2 4]", d)
	}
	// Length mismatch: the tail is dirty.
	if d := DiffRC(nil, old[:3], old); len(d) != 2 || d[0] != 3 || d[1] != 4 {
		t.Errorf("tail diff = %v, want [3 4]", d)
	}
	// dst reuse appends into the provided scratch.
	scratch := make([]int32, 0, 8)
	d := DiffRC(scratch, old, new)
	if len(d) != 1 || cap(d) != 8 {
		t.Errorf("scratch reuse failed: len=%d cap=%d", len(d), cap(d))
	}
}
