// Package cts implements clock tree synthesis: recursive geometric
// bisection of the flop population into a balanced buffer tree, clock
// buffer insertion into the netlist, and per-flop insertion-delay / skew
// estimation consumed by timing analysis. The stage mirrors the paper's
// conventional CTS step ("the CTS stage is performed, which is the same as
// the conventional flow", Section III.C).
package cts

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Options configures tree construction.
type Options struct {
	// MaxLeafFanout is the most CP pins a leaf buffer may drive.
	MaxLeafFanout int
	// BufferDrive selects the clock buffer strength.
	BufferDrive int
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options { return Options{MaxLeafFanout: 24, BufferDrive: 4} }

// Result describes the synthesized tree.
type Result struct {
	Buffers int
	Depth   int
	// ArrivalPs is the clock insertion delay (ps) per instance, indexed
	// by Instance.Seq over the post-CTS netlist (buffers included). Only
	// flop entries are meaningful; everything else stays 0. The dense
	// layout is what STA consumes directly — no name lookups on the
	// timing hot path.
	ArrivalPs []float64
	// Sinks is the number of clock sinks (flop CP pins) driven by the tree.
	Sinks  int
	SkewPs float64
	// MeanInsertionPs is the average insertion delay.
	MeanInsertionPs float64
}

// Run builds the clock tree in place: the clock net keeps driving the root
// buffer only; flop CP pins are reconnected to leaf buffer nets. Buffers
// are positioned at cluster centroids (legalize afterwards).
func Run(nl *netlist.Netlist, fp *floorplan.Plan, opt Options) (*Result, error) {
	if opt.MaxLeafFanout <= 1 {
		opt = DefaultOptions()
	}
	clk := nl.ClockNet()
	if clk == nil {
		return nil, fmt.Errorf("cts: no clock net marked")
	}
	// Collect clock sinks (flop CP pins).
	var sinks []netlist.PinRef
	for _, s := range clk.Sinks {
		if !s.IsPort() && s.Inst.Cell.IsSeq() {
			sinks = append(sinks, s)
		}
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("cts: clock net has no flop sinks")
	}
	slices.SortFunc(sinks, func(a, b netlist.PinRef) int { return strings.Compare(a.Inst.Name, b.Inst.Name) })
	// Strip every collected sink from the clock net in one
	// order-preserving pass. The tree build reattaches each to its leaf
	// net via Reconnect, which then finds nothing left to remove on the
	// clock net — one linear pass instead of a quadratic
	// remove-one-at-a-time over a root net with thousands of sinks.
	keep := clk.Sinks[:0]
	for _, s := range clk.Sinks {
		if s.IsPort() || !s.Inst.Cell.IsSeq() {
			keep = append(keep, s)
		}
	}
	clk.Sinks = keep

	t := &treeBuilder{nl: nl, fp: fp, opt: opt}
	rootNode, err := t.build(sinks, 0)
	if err != nil {
		return nil, err
	}
	// Root buffer input connects to the original clock net.
	if err := nl.Reconnect(rootNode.buf, "I", clk); err != nil {
		return nil, err
	}

	res := &Result{
		Buffers:   t.count,
		Depth:     t.depth,
		Sinks:     len(sinks),
		ArrivalPs: make([]float64, len(nl.Instances)),
	}
	t.minArr, t.maxArr = math.Inf(1), math.Inf(-1)
	t.computeArrivals(rootNode, 0, res)
	res.SkewPs = t.maxArr - t.minArr
	res.MeanInsertionPs = t.sumArr / float64(len(sinks))
	return res, nil
}

type node struct {
	buf      *netlist.Instance
	out      *netlist.Net
	children []*node
	leaves   []netlist.PinRef // flop CPs (leaf nodes only)
	pos      geom.Point
}

type treeBuilder struct {
	nl    *netlist.Netlist
	fp    *floorplan.Plan
	opt   Options
	count int
	depth int
	// Leaf arrival statistics, accumulated in deterministic tree-walk
	// order by computeArrivals.
	minArr, maxArr, sumArr float64
}

// build recursively constructs the tree over the sink set and returns the
// subtree root (a buffer). The buffer's input pin is left unconnected for
// the parent to wire.
func (t *treeBuilder) build(sinks []netlist.PinRef, depth int) (*node, error) {
	if depth > t.depth {
		t.depth = depth
	}
	c := centroid(sinks, t.fp)
	bufCell := t.nl.Lib.PickDrive("BUF", t.opt.BufferDrive)
	name := fmt.Sprintf("ctsbuf_%d", t.count)
	t.count++
	outName := name + "_z"
	buf, err := t.nl.AddInstance(name, bufCell, map[string]string{"Z": outName})
	if err != nil {
		return nil, err
	}
	buf.Pos = c
	out := t.nl.Net(outName)
	n := &node{buf: buf, out: out, pos: c}

	if len(sinks) <= t.opt.MaxLeafFanout {
		for _, s := range sinks {
			if err := t.nl.Reconnect(s.Inst, s.Pin, out); err != nil {
				return nil, err
			}
		}
		n.leaves = sinks
		return n, nil
	}
	// Split along the longer bounding-box dimension at the median.
	pts := make([]geom.Point, len(sinks))
	for i, s := range sinks {
		pts[i] = s.Inst.Pos
	}
	bb := geom.BBox(pts)
	byX := bb.W() >= bb.H()
	order := append([]netlist.PinRef(nil), sinks...)
	slices.SortStableFunc(order, func(x, y netlist.PinRef) int {
		a, b := x.Inst.Pos, y.Inst.Pos
		if byX {
			if a.X != b.X {
				return cmp.Compare(a.X, b.X)
			}
		} else {
			if a.Y != b.Y {
				return cmp.Compare(a.Y, b.Y)
			}
		}
		return strings.Compare(x.Inst.Name, y.Inst.Name)
	})
	mid := len(order) / 2
	left, err := t.build(order[:mid], depth+1)
	if err != nil {
		return nil, err
	}
	right, err := t.build(order[mid:], depth+1)
	if err != nil {
		return nil, err
	}
	for _, child := range []*node{left, right} {
		if err := t.nl.Reconnect(child.buf, "I", out); err != nil {
			return nil, err
		}
	}
	n.children = []*node{left, right}
	return n, nil
}

func centroid(sinks []netlist.PinRef, fp *floorplan.Plan) geom.Point {
	var sx, sy int64
	for _, s := range sinks {
		sx += s.Inst.Pos.X
		sy += s.Inst.Pos.Y
	}
	n := int64(len(sinks))
	return geom.Pt(sx/n, sy/n)
}

// Electrical estimates for arrival computation.
const (
	clockWireRPerUm = 0.09 // kΩ/µm (FM5-class trunk layer)
	clockWireCPerUm = 0.22 // fF/µm
	flopCPCapFF     = 0.30
)

// computeArrivals walks the tree accumulating buffer + wire delay.
func (t *treeBuilder) computeArrivals(n *node, acc float64, res *Result) {
	// Buffer stage delay under its actual fan-out load.
	load := 0.0
	maxDist := 0.0
	if len(n.children) > 0 {
		for _, ch := range n.children {
			load += ch.buf.Cell.InputCap("I")
			d := float64(n.pos.ManhattanDist(ch.pos)) / 1000.0
			if d > maxDist {
				maxDist = d
			}
		}
	} else {
		for _, leaf := range n.leaves {
			load += flopCPCapFF
			d := float64(n.pos.ManhattanDist(leaf.Inst.Pos)) / 1000.0
			if d > maxDist {
				maxDist = d
			}
		}
	}
	wireCap := clockWireCPerUm * maxDist
	arc := n.buf.Cell.Arc("I")
	stage := arc.DelayRise.Lookup(15, load+wireCap)
	// Distributed-RC wire term to the farthest child.
	wire := 0.5 * clockWireRPerUm * clockWireCPerUm * maxDist * maxDist
	total := acc + stage + wire
	if len(n.children) == 0 {
		for _, leaf := range n.leaves {
			res.ArrivalPs[leaf.Inst.Seq] = total
			t.minArr = math.Min(t.minArr, total)
			t.maxArr = math.Max(t.maxArr, total)
			t.sumArr += total
		}
		return
	}
	for _, ch := range n.children {
		t.computeArrivals(ch, total, res)
	}
}
