package cts

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/floorplan"
	"repro/internal/place"
	"repro/internal/powerplan"
	"repro/internal/riscv"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

func TestCTSBuildsBalancedTree(t *testing.T) {
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "c", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	place.Global(nl, fp, place.DefaultOptions())
	flops := len(nl.Flops())

	res, err := Run(nl, fp, DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid after CTS: %v", err)
	}
	if res.Buffers == 0 {
		t.Fatal("no clock buffers inserted")
	}
	// Clock net now drives only the root buffer.
	if got := nl.ClockNet().Fanout(); got != 1 {
		t.Errorf("clock net fanout = %d, want 1 (root buffer only)", got)
	}
	// Every flop got an arrival, dense over the post-CTS instance list.
	if res.Sinks != flops {
		t.Errorf("clock sinks = %d, want %d flops", res.Sinks, flops)
	}
	if len(res.ArrivalPs) != len(nl.Instances) {
		t.Errorf("arrival table spans %d instances, want %d", len(res.ArrivalPs), len(nl.Instances))
	}
	for _, ff := range nl.Flops() {
		if a := res.ArrivalPs[ff.Seq]; a <= 0 || a > 500 {
			t.Errorf("flop %s arrival = %.1f ps implausible", ff.Name, a)
		}
	}
	// Balanced bisection keeps skew well below insertion delay.
	if res.SkewPs < 0 {
		t.Error("negative skew")
	}
	if res.SkewPs > res.MeanInsertionPs {
		t.Errorf("skew %.1f ps exceeds mean insertion %.1f ps — tree unbalanced",
			res.SkewPs, res.MeanInsertionPs)
	}
	// Leaf fanout constraint.
	for _, n := range nl.Nets {
		count := 0
		for _, s := range n.Sinks {
			if !s.IsPort() && s.Inst.Cell.IsSeq() && s.Pin == "CP" {
				count++
			}
		}
		if count > DefaultOptions().MaxLeafFanout {
			t.Errorf("net %s drives %d CP pins, max %d", n.Name, count, DefaultOptions().MaxLeafFanout)
		}
	}
	t.Logf("CTS: %d buffers, depth %d, skew %.2f ps, insertion %.2f ps",
		res.Buffers, res.Depth, res.SkewPs, res.MeanInsertionPs)
}

func TestCTSThenLegalize(t *testing.T) {
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "c", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.65, 1.0)
	pp, _ := powerplan.Plan(fp, tech.Pattern{Front: 12, Back: 12})
	place.Global(nl, fp, place.DefaultOptions())
	if _, err := Run(nl, fp, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if err := place.Legalize(nl, fp, pp.Blockages); err != nil {
		t.Fatalf("legalization after CTS: %v", err)
	}
	if err := place.CheckLegal(nl, fp, pp.Blockages); err != nil {
		t.Fatal(err)
	}
}

func TestCTSRequiresClock(t *testing.T) {
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "c", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	nl.ClockNet().IsClock = false
	fp, _ := floorplan.New(lib.Stack, nl.CellAreaNm2(), 0.7, 1.0)
	if _, err := Run(nl, fp, DefaultOptions()); err == nil {
		t.Fatal("CTS without a clock must fail")
	}
}
