package route

import "math"

// scratch is the router's reusable search workspace. Every array is
// allocated once (sized to the grid when the Router is built) and
// recycled across all 2-pin searches via epoch stamping: a cell's
// dist/prev entries are valid only while visitEpoch[cell] equals the
// current epoch, so each search starts from a logically cleared state
// without an O(w·h) memset and without any per-call allocation. The
// seed allocated and re-initialized two full-grid arrays per 2-pin
// connection; on a quick-scale core that was the single largest source
// of both allocation volume and wasted memory bandwidth in the flow.
type scratch struct {
	// A* state, one slot per gcell.
	epoch      uint32
	visitEpoch []uint32
	dist       []float64 // g-cost, valid iff visitEpoch matches epoch
	prev       []int32   // predecessor cell id, valid iff visitEpoch matches

	// Per-net edge ownership, one slot per grid edge. An edge belongs to
	// the net currently being routed iff ownEpoch[eid] == netEpoch; the
	// epoch is bumped once per routeNet pass, which retires the previous
	// net's marks for free.
	netEpoch uint32
	ownEpoch []uint32

	pq frontier

	// Prim workspace, sized to the largest pin count seen so far.
	pinX, pinY []int32
	inTree     []bool
	minDist    []int32

	// Reusable overflowed-edge id list for the negotiation loop.
	over []int32

	// Tree-building workspace (buildTree), one slot per gcell, epoch
	// stamped like the A* state.
	tEpoch     uint32
	tStamp     []uint32
	tNode      []int32 // tree node index of the cell, -1 if none yet
	tAdj       []int32 // up to 4 neighbor cells, at cell*4
	tAdjN      []uint8
	tVisited   []bool
	tParentDir []int8 // -1 none, 0 horizontal, 1 vertical
	tQueue     []int32
}

func newScratch(cells, edges int) *scratch {
	return &scratch{
		visitEpoch: make([]uint32, cells),
		dist:       make([]float64, cells),
		prev:       make([]int32, cells),
		ownEpoch:   make([]uint32, edges),
		tStamp:     make([]uint32, cells),
		tNode:      make([]int32, cells),
		tAdj:       make([]int32, 4*cells),
		tAdjN:      make([]uint8, cells),
		tVisited:   make([]bool, cells),
		tParentDir: make([]int8, cells),
	}
}

// beginSearch opens a fresh A* epoch, lazily invalidating all dist/prev
// state. On uint32 wraparound (once per ~4e9 searches) the stamp array
// is hard-cleared so stale stamps can never alias the new epoch.
func (s *scratch) beginSearch() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.visitEpoch {
			s.visitEpoch[i] = 0
		}
		s.epoch = 1
	}
}

// beginNet opens a fresh net-ownership epoch (same wraparound care).
func (s *scratch) beginNet() {
	s.netEpoch++
	if s.netEpoch == 0 {
		for i := range s.ownEpoch {
			s.ownEpoch[i] = 0
		}
		s.netEpoch = 1
	}
}

// touch ensures a cell's dist/prev are initialized in the current epoch.
func (s *scratch) touch(cell int32) {
	if s.visitEpoch[cell] != s.epoch {
		s.visitEpoch[cell] = s.epoch
		s.dist[cell] = math.MaxFloat64
		s.prev[cell] = -1
	}
}

// beginTree opens a fresh tree-building epoch.
func (s *scratch) beginTree() {
	s.tEpoch++
	if s.tEpoch == 0 {
		for i := range s.tStamp {
			s.tStamp[i] = 0
		}
		s.tEpoch = 1
	}
}

// touchTree ensures a cell's tree-building state is initialized.
func (s *scratch) touchTree(cell int32) {
	if s.tStamp[cell] != s.tEpoch {
		s.tStamp[cell] = s.tEpoch
		s.tNode[cell] = -1
		s.tAdjN[cell] = 0
		s.tVisited[cell] = false
		s.tParentDir[cell] = -1
	}
}

// ensurePins sizes the Prim workspace for a k-pin net.
func (s *scratch) ensurePins(k int) {
	if cap(s.pinX) < k {
		s.pinX = make([]int32, k)
		s.pinY = make([]int32, k)
		s.inTree = make([]bool, k)
		s.minDist = make([]int32, k)
	}
	s.pinX = s.pinX[:k]
	s.pinY = s.pinY[:k]
	s.inTree = s.inTree[:k]
	s.minDist = s.minDist[:k]
	for i := 0; i < k; i++ {
		s.inTree[i] = false
	}
}
