package route

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func ffetFrontLayers(n int) []tech.Layer {
	st := tech.NewFFET()
	return st.SideRoutingLayers(tech.Pattern{Front: n, Back: n}, tech.Front)
}

func mkNet(seq int, name string, pts ...geom.Point) *Net {
	n := &Net{Name: name, Seq: seq}
	for i, p := range pts {
		n.Pins = append(n.Pins, Pin{
			ID:     netlist.InstPinID(i, 0),
			At:     p,
			Driver: i == 0,
			CapFF:  0.2,
		})
	}
	return n
}

func TestTwoPinRoute(t *testing.T) {
	core := geom.R(0, 0, 10000, 10000)
	r, err := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	net := mkNet(0, "n1", geom.Pt(500, 500), geom.Pt(8500, 6500))
	res, err := r.Run([]*Net{net})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree(0)
	if tr == nil {
		t.Fatal("no tree")
	}
	// Minimum wirelength = Manhattan distance in gcells.
	wantMin := int64(8 + 6)
	gotCells := tr.WirelenNm / 1000
	if gotCells < wantMin || gotCells > wantMin+4 {
		t.Errorf("route length = %d gcells, want ~%d (Manhattan)", gotCells, wantMin)
	}
	if res.DRVs != 0 {
		t.Errorf("DRVs = %d on an empty grid", res.DRVs)
	}
	// Tree must connect both pins to the driver node.
	if len(tr.PinNode) != 2 {
		t.Fatalf("pin nodes = %d", len(tr.PinNode))
	}
	assertConnected(t, tr)
}

func assertConnected(t *testing.T, tr *Tree) {
	t.Helper()
	adj := make(map[int][]int)
	for _, e := range tr.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := map[int]bool{tr.DriverNode: true}
	stack := []int{tr.DriverNode}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for i, node := range tr.PinNode {
		if !seen[int(node)] {
			t.Errorf("pin %v (pos %d) node %d unreachable from driver", tr.Pins[i].ID, i, node)
		}
	}
}

func TestMultiPinSteinerish(t *testing.T) {
	core := geom.R(0, 0, 20000, 20000)
	r, _ := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	net := mkNet(0, "fan",
		geom.Pt(10000, 10000),
		geom.Pt(2000, 2000), geom.Pt(18000, 2000),
		geom.Pt(2000, 18000), geom.Pt(18000, 18000))
	res, err := r.Run([]*Net{net})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tree(0)
	assertConnected(t, tr)
	// Tree sharing must beat 4 independent 2-pin routes.
	independent := int64(4 * (8 + 8))
	if tr.WirelenNm/1000 >= independent {
		t.Errorf("tree length %d gcells >= unshared %d", tr.WirelenNm/1000, independent)
	}
}

func TestCongestionForcesDetours(t *testing.T) {
	// Narrow capacity: 2 layers only, many parallel nets through one row.
	core := geom.R(0, 0, 30000, 4000)
	opt := DefaultOptions()
	r, _ := NewRouter(core, tech.Front, ffetFrontLayers(2), opt)
	var nets []*Net
	for i := 0; i < 260; i++ {
		y := int64(500 + (i%4)*1000)
		nets = append(nets, mkNet(i, fmt.Sprintf("n%d", i),
			geom.Pt(500, y), geom.Pt(29500, y)))
	}
	res, err := r.Run(nets)
	if err != nil {
		t.Fatal(err)
	}
	minWL := int64(len(nets)) * 29
	if res.WirelenNm/1000 <= minWL {
		t.Errorf("congestion should force detours: %d <= %d gcells",
			res.WirelenNm/1000, minWL)
	}
	t.Logf("260 nets, 2 layers: WL=%d gcells (min %d), DRVs=%d",
		res.WirelenNm/1000, minWL, res.DRVs)
}

func TestMoreLayersResolveCongestion(t *testing.T) {
	core := geom.R(0, 0, 30000, 3000)
	build := func(layers int) int {
		r, _ := NewRouter(core, tech.Front, ffetFrontLayers(layers), DefaultOptions())
		var nets []*Net
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 160; i++ {
			x1 := rng.Int63n(30000)
			x2 := rng.Int63n(30000)
			y1 := rng.Int63n(3000)
			y2 := rng.Int63n(3000)
			nets = append(nets, mkNet(i, fmt.Sprintf("n%d", i),
				geom.Pt(x1, y1), geom.Pt(x2, y2)))
		}
		res, err := r.Run(nets)
		if err != nil {
			t.Fatal(err)
		}
		return res.DRVs
	}
	few := build(2)
	many := build(12)
	if many > few {
		t.Errorf("12 layers (%d DRVs) should not be worse than 2 layers (%d DRVs)", many, few)
	}
	if few == 0 {
		t.Log("note: even 2 layers routed cleanly at this load")
	}
}

func TestLayerAssignmentByNetLength(t *testing.T) {
	core := geom.R(0, 0, 60000, 60000)
	r, _ := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	short := mkNet(0, "short", geom.Pt(500, 500), geom.Pt(2500, 500))
	long := mkNet(1, "long", geom.Pt(500, 1500), geom.Pt(58000, 55000))
	res, err := r.Run([]*Net{short, long})
	if err != nil {
		t.Fatal(err)
	}
	maxIdx := func(tr *Tree) int {
		m := 0
		for _, e := range tr.Edges {
			if e.Layer.Index > m {
				m = e.Layer.Index
			}
		}
		return m
	}
	si := maxIdx(res.Tree(0))
	li := maxIdx(res.Tree(1))
	if si > 4 {
		t.Errorf("short net on M%d, want low metal", si)
	}
	if li < 9 {
		t.Errorf("long net on M%d, want upper metal", li)
	}
}

func TestReducedPatternClampsLayers(t *testing.T) {
	core := geom.R(0, 0, 60000, 60000)
	r, _ := NewRouter(core, tech.Front, ffetFrontLayers(3), DefaultOptions())
	long := mkNet(1, "long", geom.Pt(500, 1500), geom.Pt(58000, 55000))
	res, err := r.Run([]*Net{long})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Tree(1).Edges {
		if e.Layer.Index > 3 {
			t.Fatalf("edge on %s exceeds FM3 pattern", e.Layer.Name)
		}
	}
}

func TestPinBlockageReducesCapacity(t *testing.T) {
	core := geom.R(0, 0, 8000, 8000)
	// Dense pins in one gcell, none elsewhere.
	var nets []*Net
	for i := 0; i < 30; i++ {
		nets = append(nets, mkNet(i, fmt.Sprintf("p%d", i),
			geom.Pt(4100, 4100), geom.Pt(4300+int64(i), 4500)))
	}
	r, _ := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	r.applyPinBlockage(nets)
	g := r.g
	x, y := r.cellOf(geom.Pt(4100, 4100))
	full := g.cap[g.hIdx(0, 0)]
	local := g.cap[g.hIdx(x, y)]
	if !(local < full) {
		t.Errorf("pin-dense gcell capacity %v should be below clean %v", local, full)
	}
}

func TestDriverCountValidation(t *testing.T) {
	core := geom.R(0, 0, 8000, 8000)
	r, _ := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	bad := &Net{Name: "bad", Pins: []Pin{
		{ID: netlist.InstPinID(0, 0), At: geom.Pt(0, 0)},
		{ID: netlist.InstPinID(1, 0), At: geom.Pt(100, 100)},
	}}
	if _, err := r.Run([]*Net{bad}); err == nil {
		t.Fatal("net without driver must be rejected")
	}
}

func TestDeterministicRouting(t *testing.T) {
	run := func() int64 {
		core := geom.R(0, 0, 20000, 20000)
		r, _ := NewRouter(core, tech.Front, ffetFrontLayers(4), DefaultOptions())
		rng := rand.New(rand.NewSource(7))
		var nets []*Net
		for i := 0; i < 100; i++ {
			nets = append(nets, mkNet(i, fmt.Sprintf("n%d", i),
				geom.Pt(rng.Int63n(20000), rng.Int63n(20000)),
				geom.Pt(rng.Int63n(20000), rng.Int63n(20000))))
		}
		res, err := r.Run(nets)
		if err != nil {
			t.Fatal(err)
		}
		return res.WirelenNm
	}
	if a, b := run(), run(); a != b {
		t.Errorf("routing not deterministic: %d vs %d", a, b)
	}
}
