package route

// pqItem is one A* frontier entry. node is the packed gcell id (y*w+x),
// cost the g-value at push time, est the f-value (cost + Manhattan h).
type pqItem struct {
	node int32
	cost float64
	est  float64
}

// frontier is a typed binary min-heap ordered by est.
//
// The sift implementations mirror container/heap's `up`/`down` exactly —
// same comparison (`est <`), same swap pattern, same child selection — so
// the pop order, including among equal-est ties, is identical to the
// seed's interface-boxed container/heap frontier. That identity is what
// keeps routed results bit-for-bit stable across the rewrite: equal-cost
// L-shapes are committed in the same order, so congestion evolves the
// same way net after net. (A 4-ary layout would pop ties in a different
// order and perturb every downstream detour; the win here is removing
// the interface{} boxing on every push/pop, which dominates the old
// heap's cost, not the arity.)
type frontier struct {
	items []pqItem
}

func (f *frontier) reset()   { f.items = f.items[:0] }
func (f *frontier) len() int { return len(f.items) }

func (f *frontier) push(it pqItem) {
	f.items = append(f.items, it)
	f.up(len(f.items) - 1)
}

func (f *frontier) pop() pqItem {
	n := len(f.items) - 1
	f.items[0], f.items[n] = f.items[n], f.items[0]
	f.down(0, n)
	it := f.items[n]
	f.items = f.items[:n]
	return it
}

func (f *frontier) up(j int) {
	items := f.items
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(items[j].est < items[i].est) {
			break
		}
		items[i], items[j] = items[j], items[i]
		j = i
	}
}

func (f *frontier) down(i0, n int) {
	items := f.items
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && items[j2].est < items[j1].est {
			j = j2 // = 2*i + 2  // right child
		}
		if !(items[j].est < items[i].est) {
			break
		}
		items[i], items[j] = items[j], items[i]
		i = j
	}
}
