package route

import (
	"hash/fnv"
	"math"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Layer assignment: nets are binned by total routed length; longer nets
// ride higher (thicker, lower-R) layers, clamped to what the routing
// pattern actually provides. Reducing the pattern's layer count therefore
// forces long nets onto resistive low metals — the power/performance cost
// mechanism of the paper's Figs. 12-13.
const (
	shortNetUm = 3.0
	midNetUm   = 10.0
	longNetUm  = 30.0
)

// classIndex returns the desired metal index band for a net length.
func classIndex(lenUm float64) int {
	switch {
	case lenUm <= shortNetUm:
		return 2
	case lenUm <= midNetUm:
		return 4
	case lenUm <= longNetUm:
		return 9
	default:
		return 12
	}
}

// pickLayer selects the routing layer for a direction: the highest layer
// with Index <= want, alternating between the top two candidates by net
// hash for balance.
func pickLayer(layers []tech.Layer, dir tech.Direction, want int, salt uint32) (tech.Layer, bool) {
	var cands []tech.Layer
	for _, l := range layers {
		if l.Dir == dir && l.Index <= want {
			cands = append(cands, l)
		}
	}
	if len(cands) == 0 {
		// Nothing at or below the class: take the lowest available in dir.
		for _, l := range layers {
			if l.Dir == dir {
				if cands == nil || l.Index < cands[0].Index {
					cands = []tech.Layer{l}
				}
			}
		}
		if len(cands) == 0 {
			return tech.Layer{}, false
		}
		return cands[0], true
	}
	// cands are in ascending index order (stack order); take one of the two
	// highest for load balance.
	if len(cands) >= 2 && salt&1 == 1 {
		return cands[len(cands)-2], true
	}
	return cands[len(cands)-1], true
}

func netSalt(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// buildTree converts a net's committed grid edges into a rooted RC tree
// with layer assignment.
func (r *Router) buildTree(nr *netRoute) *Tree {
	g := r.g
	t := &Tree{Name: nr.net.Name, PinNode: make(map[string]int)}

	cellID := func(x, y int) int { return y*g.w + x }
	cellPos := func(x, y int) geom.Point {
		return geom.Pt(int64(x)*g.gc+g.gc/2, int64(y)*g.gc+g.gc/2)
	}
	nodeOf := make(map[int]int)
	ensureNode := func(x, y int) int {
		id := cellID(x, y)
		if n, ok := nodeOf[id]; ok {
			return n
		}
		n := len(t.Nodes)
		t.Nodes = append(t.Nodes, cellPos(x, y))
		nodeOf[id] = n
		return n
	}

	// Adjacency from committed edges.
	adj := make(map[int][]int)
	for k := range nr.edges {
		a := cellID(k[0], k[1])
		b := cellID(k[2], k[3])
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}

	// Driver cell is the BFS root.
	var droot int
	for _, p := range nr.net.Pins {
		if p.Driver {
			x, y := r.cellOf(p.At)
			droot = cellID(x, y)
			break
		}
	}
	t.DriverNode = ensureNode(droot%g.w, droot/g.w)

	// Deterministic BFS. Nets that route through congested regions are
	// demoted one layer class: when upper tracks are contended the
	// assignment falls back to lower, more resistive metals. This couples
	// congestion to delay (and hence achieved frequency), the effect the
	// paper's dual-sided routing relieves.
	totalLenUm := float64(len(nr.edges)) * float64(g.gc) / 1000.0
	want := classIndex(totalLenUm)
	// Congestion demotion: heavy contention on the net's route pushes it
	// off the upper tracks onto resistive low metals.
	if r.congestedShare(nr) > 0.45 {
		want = demote(want)
	}
	// Record driver-side pin crowding for the extraction escape model.
	if g.pinsEff != nil && g.pinSat > 0 {
		kappa := r.opt.PinAccessFactor
		if kappa < 1 {
			kappa = 1
		}
		t.EscapeCrowding = g.pinsEff[droot] / g.pinSat * math.Sqrt(kappa)
	}
	salt := netSalt(nr.net.Name)

	visited := map[int]bool{droot: true}
	queue := []int{droot}
	parentDir := map[int]tech.Direction{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		cx, cy := cur%g.w, cur/g.w
		nbrs := adj[cur]
		sortInts(nbrs)
		for _, nb := range nbrs {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			nx, ny := nb%g.w, nb/g.w
			dir := tech.Horizontal
			if nx == cx {
				dir = tech.Vertical
			}
			layer, ok := pickLayer(r.layers, dir, want, salt)
			vias := 0
			if pd, seen := parentDir[cur]; seen && pd != dir {
				vias = 1 // bend between the two assigned layers
			}
			e := TreeEdge{
				From:  ensureNode(cx, cy),
				To:    ensureNode(nx, ny),
				LenNm: g.gc,
				Vias:  vias,
			}
			if ok {
				e.Layer = layer
			}
			t.Edges = append(t.Edges, e)
			t.WirelenNm += g.gc
			parentDir[nb] = dir
			queue = append(queue, nb)
		}
	}

	// Bind pins to their gcell nodes.
	for _, p := range nr.net.Pins {
		x, y := r.cellOf(p.At)
		t.PinNode[p.ID] = ensureNode(x, y)
	}
	return t
}

// demote drops one layer class.
func demote(want int) int {
	switch {
	case want >= 12:
		return 9
	case want >= 9:
		return 4
	case want >= 4:
		return 2
	default:
		return 1
	}
}

// congestedShare returns the fraction of the net's grid edges whose
// utilization exceeds 80% of capacity.
func (r *Router) congestedShare(nr *netRoute) float64 {
	if len(nr.edges) == 0 {
		return 0
	}
	g := r.g
	hot := 0
	for k := range nr.edges {
		x1, y1, x2, y2 := k[0], k[1], k[2], k[3]
		var use, cap float64
		if y1 == y2 {
			i := g.hIdx(minInt(x1, x2), y1)
			use, cap = g.useH[i], g.capH[i]
		} else {
			i := g.vIdx(x1, minInt(y1, y2))
			use, cap = g.useV[i], g.capV[i]
		}
		if cap <= 0 || use > 0.8*cap {
			hot++
		}
	}
	return float64(hot) / float64(len(nr.edges))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
