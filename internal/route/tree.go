package route

import (
	"hash/fnv"
	"math"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Layer assignment: nets are binned by total routed length; longer nets
// ride higher (thicker, lower-R) layers, clamped to what the routing
// pattern actually provides. Reducing the pattern's layer count therefore
// forces long nets onto resistive low metals — the power/performance cost
// mechanism of the paper's Figs. 12-13.
const (
	shortNetUm = 3.0
	midNetUm   = 10.0
	longNetUm  = 30.0
)

// classIndex returns the desired metal index band for a net length.
func classIndex(lenUm float64) int {
	switch {
	case lenUm <= shortNetUm:
		return 2
	case lenUm <= midNetUm:
		return 4
	case lenUm <= longNetUm:
		return 9
	default:
		return 12
	}
}

// pickLayer selects the routing layer for a direction: the highest layer
// with Index <= want, alternating between the top two candidates by net
// hash for balance. It tracks the last two matching layers in slice
// order instead of materializing a candidate slice (this runs once per
// routed tree edge).
func pickLayer(layers []tech.Layer, dir tech.Direction, want int, salt uint32) (tech.Layer, bool) {
	var last, secondLast tech.Layer
	count := 0
	for _, l := range layers {
		if l.Dir == dir && l.Index <= want {
			secondLast = last
			last = l
			count++
		}
	}
	if count == 0 {
		// Nothing at or below the class: take the lowest available in dir.
		var lowest tech.Layer
		found := false
		for _, l := range layers {
			if l.Dir == dir && (!found || l.Index < lowest.Index) {
				lowest = l
				found = true
			}
		}
		return lowest, found
	}
	// Matches are visited in ascending index order (stack order); take one
	// of the two highest for load balance.
	if count >= 2 && salt&1 == 1 {
		return secondLast, true
	}
	return last, true
}

func netSalt(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()
}

// buildTree converts a net's committed grid edges into a rooted RC tree
// with layer assignment, filling the caller-provided Tree, pin-node
// table, and Nodes/Edges payload slices (pinNode must have
// len(nr.net.Pins) slots; nodes/edges must be empty with capacity for
// len(nr.edges)+1 and len(nr.edges) entries — Run carves all three from
// result-owned arenas). All intermediate state (node ids, adjacency, BFS
// bookkeeping) lives in the router's epoch-stamped scratch arrays, so
// this allocates nothing.
func (r *Router) buildTree(nr *netRoute, t *Tree, pinNode []int32, nodes []geom.Point, edges []TreeEdge) {
	g, s := r.g, r.sc
	*t = Tree{
		Name:    nr.net.Name,
		Nodes:   nodes,
		Edges:   edges,
		Pins:    nr.net.Pins,
		PinNode: pinNode,
	}
	s.beginTree()

	cellPos := func(c int32) geom.Point {
		x, y := int64(int(c)%g.w), int64(int(c)/g.w)
		return geom.Pt(x*g.gc+g.gc/2, y*g.gc+g.gc/2)
	}
	ensureNode := func(c int32) int {
		s.touchTree(c)
		if n := s.tNode[c]; n >= 0 {
			return int(n)
		}
		n := len(t.Nodes)
		t.Nodes = append(t.Nodes, cellPos(c))
		s.tNode[c] = int32(n)
		return n
	}

	// Adjacency from committed edges (a tree cell has at most 4 nbrs).
	addAdj := func(a, b int32) {
		s.touchTree(a)
		s.tAdj[4*int(a)+int(s.tAdjN[a])] = b
		s.tAdjN[a]++
	}
	for _, eid := range nr.edges {
		x1, y1, x2, y2 := g.edgeCells(eid)
		a := int32(y1*g.w + x1)
		b := int32(y2*g.w + x2)
		addAdj(a, b)
		addAdj(b, a)
	}

	// Driver cell is the BFS root.
	var droot int32
	for _, p := range nr.net.Pins {
		if p.Driver {
			x, y := r.cellOf(p.At)
			droot = int32(y*g.w + x)
			break
		}
	}
	t.DriverNode = ensureNode(droot)

	// Deterministic BFS. Nets that route through congested regions are
	// demoted one layer class: when upper tracks are contended the
	// assignment falls back to lower, more resistive metals. This couples
	// congestion to delay (and hence achieved frequency), the effect the
	// paper's dual-sided routing relieves.
	totalLenUm := float64(len(nr.edges)) * float64(g.gc) / 1000.0
	want := classIndex(totalLenUm)
	// Congestion demotion: heavy contention on the net's route pushes it
	// off the upper tracks onto resistive low metals.
	if r.congestedShare(nr) > 0.45 {
		want = demote(want)
	}
	// Record driver-side pin crowding for the extraction escape model.
	if g.pinsEff != nil && g.pinSat > 0 {
		kappa := r.opt.PinAccessFactor
		if kappa < 1 {
			kappa = 1
		}
		t.EscapeCrowding = g.pinsEff[droot] / g.pinSat * math.Sqrt(kappa)
	}
	salt := netSalt(nr.net.Name)

	s.tVisited[droot] = true // droot was touched by ensureNode above
	queue := s.tQueue[:0]
	queue = append(queue, droot)
	for qh := 0; qh < len(queue); qh++ {
		cur := queue[qh]
		cx := int(cur) % g.w
		nbrs := s.tAdj[4*int(cur) : 4*int(cur)+int(s.tAdjN[cur])]
		sortNbrs(nbrs)
		for _, nb := range nbrs {
			if s.tVisited[nb] {
				continue
			}
			s.tVisited[nb] = true
			nx := int(nb) % g.w
			dir := tech.Horizontal
			dirCode := int8(0)
			if nx == cx {
				dir = tech.Vertical
				dirCode = 1
			}
			layer, ok := pickLayer(r.layers, dir, want, salt)
			vias := 0
			if pd := s.tParentDir[cur]; pd >= 0 && pd != dirCode {
				vias = 1 // bend between the two assigned layers
			}
			e := TreeEdge{
				From:  ensureNode(cur),
				To:    ensureNode(nb),
				LenNm: g.gc,
				Vias:  vias,
			}
			if ok {
				e.Layer = layer
			}
			t.Edges = append(t.Edges, e)
			t.WirelenNm += g.gc
			s.tParentDir[nb] = dirCode
			queue = append(queue, nb)
		}
	}
	s.tQueue = queue

	// Bind pins to their gcell nodes, by pin position.
	for i, p := range nr.net.Pins {
		x, y := r.cellOf(p.At)
		t.PinNode[i] = int32(ensureNode(int32(y*g.w + x)))
	}
}

// demote drops one layer class.
func demote(want int) int {
	switch {
	case want >= 12:
		return 9
	case want >= 9:
		return 4
	case want >= 4:
		return 2
	default:
		return 1
	}
}

// congestedShare returns the fraction of the net's grid edges whose
// utilization exceeds 80% of capacity.
func (r *Router) congestedShare(nr *netRoute) float64 {
	if len(nr.edges) == 0 {
		return 0
	}
	g := r.g
	hot := 0
	for _, eid := range nr.edges {
		use, cap := g.use[eid], g.cap[eid]
		if cap <= 0 || use > 0.8*cap {
			hot++
		}
	}
	return float64(hot) / float64(len(nr.edges))
}

// sortNbrs insertion-sorts a tiny (≤4) neighbor list ascending, matching
// the deterministic BFS expansion order of the tree builder.
func sortNbrs(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
