// Package route implements the global signal router of the evaluation
// flow: a 2.5-D gcell-grid router with PathFinder-style negotiated
// congestion, followed by layer assignment over the side's metal stack.
//
// The router works on one wafer side at a time; the dual-sided flow
// (internal/core) partitions the netlist per Algorithm 1 and routes the
// frontside and backside tasks independently, exactly as the paper
// describes ("the global & detailed routing are performed independently on
// both sides and two separate DEF files are generated").
//
// Congestion modeling reproduces the paper's routability mechanisms:
//
//   - edge capacity per gcell boundary = usable tracks summed over the
//     side's routing layers in that direction (so fewer layers ⇒ less
//     capacity, Figs. 12-13);
//   - cell pins consume local capacity (pin-density blockage, which is why
//     the smaller FFET cells congest the frontside when all signals stay
//     on one side, Fig. 8(c));
//   - unresolved overflow after negotiation counts as design-rule
//     violations; a run is valid only if DRV < 10 (Section IV).
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Options tunes the router.
type Options struct {
	GCellNm int64 // gcell edge length
	// Iterations bounds the rip-up-and-reroute negotiation rounds.
	Iterations int
	// CapacityFactor derates raw track counts to usable routing capacity
	// (pitch DRCs, via landing, power rails).
	CapacityFactor float64
	// PinSaturation is the pin-access limit per gcell: local capacity is
	// derated by (pins/PinSaturation)^PinCrowdingExp, collapsing as the
	// gcell's pin count approaches the access limit. This is the paper's
	// routability mechanism — dense single-sided pins (small FFET cells,
	// or CFET's one-sided access) exhaust pin-access resources long
	// before raw track counts do.
	PinSaturation float64
	// PinCrowdingExp sharpens the saturation knee (>= 1).
	PinCrowdingExp float64
	// PinAccessFactor scales effective pin weight per architecture: the
	// CFET flow uses >1 because every pin must be reached from the single
	// frontside through a 4T-tall cell whose drain supervias block access
	// tracks; the FFET's symmetric structure removes them (Section II.B).
	PinAccessFactor float64
	// StaticDerate removes a fraction of every edge's capacity before
	// routing (reserved; 0 by default).
	StaticDerate float64
	// HistoryGain scales the accumulated congestion history cost.
	HistoryGain float64
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{
		GCellNm:         1000,
		Iterations:      16,
		CapacityFactor:  2.68,
		PinSaturation:   97,
		PinCrowdingExp:  6,
		PinAccessFactor: 1.0,
		StaticDerate:    0,
		HistoryGain:     1.0,
	}
}

// Pin is one net endpoint on this side.
type Pin struct {
	ID     string // "inst/pin" or "PIN/<port>"
	At     geom.Point
	CapFF  float64 // sink input capacitance (0 for the driver)
	Driver bool
}

// Net is one routing task on this side.
type Net struct {
	Name string
	Pins []Pin // exactly one Driver pin
}

// TreeEdge is one edge of a routed net's RC topology.
type TreeEdge struct {
	From, To int // node indices
	Layer    tech.Layer
	LenNm    int64
	Vias     int // layer-change vias paid on this edge
}

// Tree is the routed result for one net.
type Tree struct {
	Name  string
	Nodes []geom.Point
	Edges []TreeEdge // tree edges, rooted at the driver node
	// PinNode maps pin IDs to node indices.
	PinNode map[string]int
	// DriverNode is the root node index.
	DriverNode int
	WirelenNm  int64
	// EscapeCrowding is the access-weighted pin crowding (pins_eff/limit,
	// scaled by sqrt of the access factor) at the driver's gcell. RC
	// extraction turns it into a driver escape resistance: crowded pin
	// fields force long scenic M0/M1 escapes. Splitting pins across both
	// wafer sides halves it — the paper's dual-sided timing gain.
	EscapeCrowding float64
}

// Result is the outcome of routing one side.
type Result struct {
	Side        tech.Side
	Trees       map[string]*Tree
	WirelenNm   int64
	ByLayerNm   map[string]int64
	ViaCount    int
	DRVs        int // overflowed gcell edges after negotiation
	MaxOverflow int
	GridW       int
	GridH       int
}

// grid is the 2.5-D routing graph for one side.
type grid struct {
	w, h    int
	gc      int64
	capH    []float64 // [(w-1)*h] edges (x,y)-(x+1,y)
	capV    []float64 // [w*(h-1)] edges (x,y)-(x,y+1)
	useH    []float64
	useV    []float64
	histH   []float64
	histV   []float64
	hLayers []tech.Layer
	vLayers []tech.Layer
	// pinsEff holds the access-weighted pin count per gcell (set by
	// applyPinBlockage) for escape-penalty decisions in layer assignment.
	pinsEff []float64
	pinSat  float64
}

// layerUsable is the usable fraction of a layer's raw tracks: M1 is
// consumed by pin access and via ladders, M2 partially, upper layers are
// nearly free for routing.
func layerUsable(index int) float64 {
	switch {
	case index <= 1:
		return 0.65
	case index == 2:
		return 0.70
	case index <= 4:
		return 0.90
	default:
		return 1.0
	}
}

func (g *grid) hIdx(x, y int) int { return y*(g.w-1) + x }
func (g *grid) vIdx(x, y int) int { return x*(g.h-1) + y }

// Router routes one side.
type Router struct {
	opt    Options
	side   tech.Side
	layers []tech.Layer
	core   geom.Rect
	g      *grid
}

// NewRouter builds the routing grid for a side of the core area. layers
// must be the side's signal routing layers (from tech.SideRoutingLayers).
func NewRouter(core geom.Rect, side tech.Side, layers []tech.Layer, opt Options) (*Router, error) {
	if opt.GCellNm <= 0 {
		opt = DefaultOptions()
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("route: no routing layers on side %v", side)
	}
	w := int((core.W() + opt.GCellNm - 1) / opt.GCellNm)
	h := int((core.H() + opt.GCellNm - 1) / opt.GCellNm)
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	g := &grid{w: w, h: h, gc: opt.GCellNm}
	var capHPer, capVPer float64
	derate := 1 - opt.StaticDerate
	if derate <= 0 {
		derate = 1
	}
	for _, l := range layers {
		tracks := float64(tech.TracksPerGCell(l, opt.GCellNm)) *
			opt.CapacityFactor * derate * layerUsable(l.Index)
		if l.Dir == tech.Horizontal {
			capHPer += tracks
			g.hLayers = append(g.hLayers, l)
		} else {
			capVPer += tracks
			g.vLayers = append(g.vLayers, l)
		}
	}
	g.capH = make([]float64, (w-1)*h)
	g.useH = make([]float64, (w-1)*h)
	g.histH = make([]float64, (w-1)*h)
	for i := range g.capH {
		g.capH[i] = capHPer
	}
	g.capV = make([]float64, w*(h-1))
	g.useV = make([]float64, w*(h-1))
	g.histV = make([]float64, w*(h-1))
	for i := range g.capV {
		g.capV[i] = capVPer
	}
	return &Router{opt: opt, side: side, layers: layers, core: core, g: g}, nil
}

// cellOf maps a point to its gcell.
func (r *Router) cellOf(p geom.Point) (int, int) {
	x := int(geom.Clamp64(p.X/r.opt.GCellNm, 0, int64(r.g.w-1)))
	y := int(geom.Clamp64(p.Y/r.opt.GCellNm, 0, int64(r.g.h-1)))
	return x, y
}

// applyPinBlockage derates local capacity around every pin cluster: each
// gcell loses a (pins_eff/PinSaturation)^PinCrowdingExp fraction of the
// capacity on its adjacent edges. Access collapses sharply as the local
// pin count approaches the saturation limit — pin-dense gcells
// (single-sided FFET, one-side-accessed CFET) congest first.
func (r *Router) applyPinBlockage(nets []*Net) {
	g := r.g
	exp := r.opt.PinCrowdingExp
	if exp < 1 {
		exp = 1
	}
	sat := r.opt.PinSaturation
	if sat <= 0 {
		sat = 85
	}
	// Normalize the saturation limit to the gcell area (limit is per µm²).
	sat *= float64(r.opt.GCellNm) / 1000 * float64(r.opt.GCellNm) / 1000
	kappa := r.opt.PinAccessFactor
	if kappa <= 0 {
		kappa = 1
	}
	pins := make([]float64, g.w*g.h)
	for _, n := range nets {
		for _, p := range n.Pins {
			x, y := r.cellOf(p.At)
			pins[y*g.w+x]++
		}
	}
	g.pinsEff = make([]float64, len(pins))
	for i := range pins {
		g.pinsEff[i] = pins[i] * kappa
	}
	g.pinSat = sat
	derate := func(idx int, caps []float64, frac float64) {
		caps[idx] = math.Max(0, caps[idx]*(1-frac))
	}
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			c := pins[y*g.w+x] * kappa
			if c == 0 {
				continue
			}
			frac := math.Pow(c/sat, exp) / 2 // each of 4 edges carries half
			// Deepest clusters keep some access; the floor is lower for
			// architectures with harder pin access (kappa > 1).
			ceil := 0.44 * math.Sqrt(kappa)
			if ceil > 0.62 {
				ceil = 0.62
			}
			if frac > ceil {
				frac = ceil
			}
			if x > 0 {
				derate(g.hIdx(x-1, y), g.capH, frac)
			}
			if x < g.w-1 {
				derate(g.hIdx(x, y), g.capH, frac)
			}
			if y > 0 {
				derate(g.vIdx(x, y-1), g.capV, frac)
			}
			if y < g.h-1 {
				derate(g.vIdx(x, y), g.capV, frac)
			}
		}
	}
}

// netRoute is internal per-net routing state.
type netRoute struct {
	net   *Net
	edges map[[4]int]bool // (x1,y1,x2,y2) canonical grid edges
	hpwl  int64
}

// Run routes all nets and returns the result with layer-assigned trees.
func (r *Router) Run(nets []*Net) (*Result, error) {
	for _, n := range nets {
		drivers := 0
		for _, p := range n.Pins {
			if p.Driver {
				drivers++
			}
		}
		if drivers != 1 {
			return nil, fmt.Errorf("route: net %s has %d drivers", n.Name, drivers)
		}
	}
	r.applyPinBlockage(nets)

	order := make([]*netRoute, 0, len(nets))
	for _, n := range nets {
		pts := make([]geom.Point, len(n.Pins))
		for i, p := range n.Pins {
			pts[i] = p.At
		}
		order = append(order, &netRoute{net: n, hpwl: geom.HPWL(pts)})
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].hpwl != order[j].hpwl {
			return order[i].hpwl < order[j].hpwl
		}
		return order[i].net.Name < order[j].net.Name
	})

	presFac := 1.0
	for _, nr := range order {
		r.routeNet(nr, presFac)
	}
	prevOver := 1 << 30
	stale := 0
	for it := 0; it < r.opt.Iterations; it++ {
		over := r.overflowedEdges()
		if len(over) == 0 {
			break
		}
		// Abandon hopeless negotiations early: the run is invalid anyway
		// once overflow stops improving.
		if len(over) >= prevOver {
			stale++
			if stale >= 4 {
				break
			}
		} else {
			stale = 0
		}
		prevOver = len(over)
		r.accumulateHistory()
		presFac *= 1.7
		// Rip up and reroute nets that cross overflowed edges.
		for _, nr := range order {
			if !r.crossesOverflow(nr) {
				continue
			}
			r.unroute(nr)
			r.routeNet(nr, presFac)
		}
	}

	res := &Result{
		Side:      r.side,
		Trees:     make(map[string]*Tree, len(nets)),
		ByLayerNm: make(map[string]int64),
		GridW:     r.g.w,
		GridH:     r.g.h,
	}
	for _, nr := range order {
		t := r.buildTree(nr)
		res.Trees[nr.net.Name] = t
		res.WirelenNm += t.WirelenNm
		for _, e := range t.Edges {
			if e.Layer.Name != "" {
				res.ByLayerNm[e.Layer.Name] += e.LenNm
			}
			res.ViaCount += e.Vias
		}
	}
	res.DRVs, res.MaxOverflow = r.countOverflow()
	return res, nil
}

// routeNet routes the net's MST topology with A*, updating usage.
func (r *Router) routeNet(nr *netRoute, presFac float64) {
	nr.edges = make(map[[4]int]bool)
	n := nr.net
	type cellPt struct{ x, y int }
	cells := make([]cellPt, len(n.Pins))
	for i, p := range n.Pins {
		x, y := r.cellOf(p.At)
		cells[i] = cellPt{x, y}
	}
	// Prim MST over pin gcells (Manhattan metric).
	inTree := make([]bool, len(cells))
	inTree[0] = true
	connected := 1
	for connected < len(cells) {
		best, bestFrom, bestD := -1, -1, math.MaxInt64
		for i := range cells {
			if inTree[i] {
				continue
			}
			for j := range cells {
				if !inTree[j] {
					continue
				}
				d := abs(cells[i].x-cells[j].x) + abs(cells[i].y-cells[j].y)
				if d < bestD {
					bestD, best, bestFrom = d, i, j
				}
			}
		}
		r.astar(nr, cells[bestFrom].x, cells[bestFrom].y, cells[best].x, cells[best].y, presFac)
		inTree[best] = true
		connected++
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// edgeKey canonicalizes a grid edge.
func edgeKey(x1, y1, x2, y2 int) [4]int {
	if x1 > x2 || (x1 == x2 && y1 > y2) {
		x1, y1, x2, y2 = x2, y2, x1, y1
	}
	return [4]int{x1, y1, x2, y2}
}

// pqItem is the A* frontier entry.
type pqItem struct {
	x, y int
	cost float64
	est  float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].est < p[j].est }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// edgeCost is the negotiated-congestion cost of taking a grid edge.
func (r *Router) edgeCost(horizontal bool, idx int, presFac float64) float64 {
	g := r.g
	var cap, use, hist float64
	if horizontal {
		cap, use, hist = g.capH[idx], g.useH[idx], g.histH[idx]
	} else {
		cap, use, hist = g.capV[idx], g.useV[idx], g.histV[idx]
	}
	cost := 1.0 + r.opt.HistoryGain*hist
	if cap <= 0 {
		return cost + 8*presFac
	}
	u := (use + 1) / cap
	if u > 1 {
		cost += presFac * (2 + 4*(u-1))
	} else if u > 0.6 {
		cost += 0.8 * (u - 0.6) / 0.4
	}
	return cost
}

// astar routes one 2-pin connection and commits its edges to the net.
func (r *Router) astar(nr *netRoute, sx, sy, tx, ty int, presFac float64) {
	g := r.g
	if sx == tx && sy == ty {
		return
	}
	const unvisited = math.MaxFloat64
	dist := make([]float64, g.w*g.h)
	for i := range dist {
		dist[i] = unvisited
	}
	prev := make([]int32, g.w*g.h)
	for i := range prev {
		prev[i] = -1
	}
	id := func(x, y int) int { return y*g.w + x }
	h := func(x, y int) float64 { return float64(abs(x-tx) + abs(y-ty)) }

	frontier := &pq{{x: sx, y: sy, cost: 0, est: h(sx, sy)}}
	dist[id(sx, sy)] = 0
	for frontier.Len() > 0 {
		cur := heap.Pop(frontier).(pqItem)
		if cur.x == tx && cur.y == ty {
			break
		}
		if cur.cost > dist[id(cur.x, cur.y)] {
			continue
		}
		type step struct {
			nx, ny int
			horiz  bool
			idx    int
		}
		var steps []step
		if cur.x > 0 {
			steps = append(steps, step{cur.x - 1, cur.y, true, g.hIdx(cur.x-1, cur.y)})
		}
		if cur.x < g.w-1 {
			steps = append(steps, step{cur.x + 1, cur.y, true, g.hIdx(cur.x, cur.y)})
		}
		if cur.y > 0 {
			steps = append(steps, step{cur.x, cur.y - 1, false, g.vIdx(cur.x, cur.y-1)})
		}
		if cur.y < g.h-1 {
			steps = append(steps, step{cur.x, cur.y + 1, false, g.vIdx(cur.x, cur.y)})
		}
		for _, s := range steps {
			// Edges already owned by this net are free (shared trunk).
			var c float64
			if nr.edges[edgeKey(cur.x, cur.y, s.nx, s.ny)] {
				c = 0.05
			} else {
				c = r.edgeCost(s.horiz, s.idx, presFac)
			}
			nd := cur.cost + c
			if nd < dist[id(s.nx, s.ny)] {
				dist[id(s.nx, s.ny)] = nd
				prev[id(s.nx, s.ny)] = int32(id(cur.x, cur.y))
				heap.Push(frontier, pqItem{x: s.nx, y: s.ny, cost: nd, est: nd + h(s.nx, s.ny)})
			}
		}
	}
	// Walk back and commit edges.
	cx, cy := tx, ty
	for !(cx == sx && cy == sy) {
		p := prev[id(cx, cy)]
		if p < 0 {
			return // unreachable; should not happen on a connected grid
		}
		px, py := int(p)%g.w, int(p)/g.w
		k := edgeKey(px, py, cx, cy)
		if !nr.edges[k] {
			nr.edges[k] = true
			if py == cy {
				g.useH[g.hIdx(min(px, cx), cy)]++
			} else {
				g.useV[g.vIdx(cx, min(py, cy))]++
			}
		}
		cx, cy = px, py
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// unroute removes the net's edges from usage.
func (r *Router) unroute(nr *netRoute) {
	g := r.g
	for k := range nr.edges {
		x1, y1, x2, y2 := k[0], k[1], k[2], k[3]
		if y1 == y2 {
			g.useH[g.hIdx(min(x1, x2), y1)]--
		} else {
			g.useV[g.vIdx(x1, min(y1, y2))]--
		}
	}
	nr.edges = nil
}

// crossesOverflow reports whether the net uses an overflowed edge.
func (r *Router) crossesOverflow(nr *netRoute) bool {
	g := r.g
	for k := range nr.edges {
		x1, y1, x2, y2 := k[0], k[1], k[2], k[3]
		if y1 == y2 {
			i := g.hIdx(min(x1, x2), y1)
			if g.useH[i] > g.capH[i] {
				return true
			}
		} else {
			i := g.vIdx(x1, min(y1, y2))
			if g.useV[i] > g.capV[i] {
				return true
			}
		}
	}
	return false
}

func (r *Router) overflowedEdges() []int {
	g := r.g
	var out []int
	for i := range g.capH {
		if g.useH[i] > g.capH[i] {
			out = append(out, i)
		}
	}
	for i := range g.capV {
		if g.useV[i] > g.capV[i] {
			out = append(out, len(g.capH)+i)
		}
	}
	return out
}

func (r *Router) accumulateHistory() {
	g := r.g
	for i := range g.capH {
		if g.useH[i] > g.capH[i] {
			g.histH[i] += (g.useH[i] - g.capH[i]) / math.Max(g.capH[i], 1)
		}
	}
	for i := range g.capV {
		if g.useV[i] > g.capV[i] {
			g.histV[i] += (g.useV[i] - g.capV[i]) / math.Max(g.capV[i], 1)
		}
	}
}

// drvThreshold is the overflow (in tracks) above which an edge counts as
// a design-rule violation. Overflow at or below the threshold is assumed
// recoverable by detailed routing (track swaps, off-grid jogs).
const drvThreshold = 1.5

// countOverflow returns (violating edge count, max overflow amount).
func (r *Router) countOverflow() (int, int) {
	g := r.g
	n := 0
	maxOv := 0.0
	for i := range g.capH {
		if ov := g.useH[i] - g.capH[i]; ov > drvThreshold {
			n++
		} else if ov > 0 {
			// recoverable
		}
		if ov := g.useH[i] - g.capH[i]; ov > 0 {
			maxOv = math.Max(maxOv, ov)
		}
	}
	for i := range g.capV {
		if ov := g.useV[i] - g.capV[i]; ov > drvThreshold {
			n++
		}
		if ov := g.useV[i] - g.capV[i]; ov > 0 {
			maxOv = math.Max(maxOv, ov)
		}
	}
	return n, int(maxOv + 0.5)
}
