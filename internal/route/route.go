// Package route implements the global signal router of the evaluation
// flow: a 2.5-D gcell-grid router with PathFinder-style negotiated
// congestion, followed by layer assignment over the side's metal stack.
//
// The router works on one wafer side at a time; the dual-sided flow
// (internal/core) partitions the netlist per Algorithm 1 and routes the
// frontside and backside tasks independently, exactly as the paper
// describes ("the global & detailed routing are performed independently on
// both sides and two separate DEF files are generated").
//
// Congestion modeling reproduces the paper's routability mechanisms:
//
//   - edge capacity per gcell boundary = usable tracks summed over the
//     side's routing layers in that direction (so fewer layers ⇒ less
//     capacity, Figs. 12-13);
//   - cell pins consume local capacity (pin-density blockage, which is why
//     the smaller FFET cells congest the frontside when all signals stay
//     on one side, Fig. 8(c));
//   - unresolved overflow after negotiation counts as design-rule
//     violations; a run is valid only if DRV < 10 (Section IV).
//
// The inner engine is built for speed without changing routed results:
// grid edges are flat int32 ids into combined capacity/usage/history
// arrays, per-net edge sets are compact id slices with epoch-stamped
// ownership marks, the A* core runs zero-allocation over a reusable
// scratch arena (see scratch.go, heap.go), short nets search a pin
// bounding-box window that provably expands to cover the unwindowed
// optimum, and rip-up iterations use an edge→nets reverse index so only
// nets touching overflow are revisited.
package route

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Options tunes the router.
type Options struct {
	GCellNm int64 // gcell edge length
	// Iterations bounds the rip-up-and-reroute negotiation rounds.
	Iterations int
	// CapacityFactor derates raw track counts to usable routing capacity
	// (pitch DRCs, via landing, power rails).
	CapacityFactor float64
	// PinSaturation is the pin-access limit per gcell: local capacity is
	// derated by (pins/PinSaturation)^PinCrowdingExp, collapsing as the
	// gcell's pin count approaches the access limit. This is the paper's
	// routability mechanism — dense single-sided pins (small FFET cells,
	// or CFET's one-sided access) exhaust pin-access resources long
	// before raw track counts do.
	PinSaturation float64
	// PinCrowdingExp sharpens the saturation knee (>= 1).
	PinCrowdingExp float64
	// PinAccessFactor scales effective pin weight per architecture: the
	// CFET flow uses >1 because every pin must be reached from the single
	// frontside through a 4T-tall cell whose drain supervias block access
	// tracks; the FFET's symmetric structure removes them (Section II.B).
	PinAccessFactor float64
	// StaticDerate removes a fraction of every edge's capacity before
	// routing (reserved; 0 by default).
	StaticDerate float64
	// HistoryGain scales the accumulated congestion history cost.
	HistoryGain float64
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{
		GCellNm:         1000,
		Iterations:      16,
		CapacityFactor:  2.68,
		PinSaturation:   97,
		PinCrowdingExp:  6,
		PinAccessFactor: 1.0,
		StaticDerate:    0,
		HistoryGain:     1.0,
	}
}

// Pin is one net endpoint on this side. The router treats the packed
// identity opaquely — it is carried through to the Tree so extraction
// and DEF emission can resolve pins without any string plumbing.
type Pin struct {
	ID     netlist.PinID // packed instance-pin or port identity
	At     geom.Point
	CapFF  float64 // sink input capacitance (0 for the driver)
	Driver bool
}

// Net is one routing task on this side.
type Net struct {
	Name string
	// Seq is the design net's dense id (netlist.Net.Seq). The router
	// treats it opaquely except for indexing Result.Trees by it; ids must
	// be unique within one Run's net population. Both sub-nets of a
	// partitioned dual-sided net carry the same Seq — they are routed in
	// different Runs (one per side).
	Seq  int
	Pins []Pin // exactly one Driver pin
}

// TreeEdge is one edge of a routed net's RC topology.
type TreeEdge struct {
	From, To int // node indices
	Layer    tech.Layer
	LenNm    int64
	Vias     int // layer-change vias paid on this edge
}

// Tree is the routed result for one net.
type Tree struct {
	Name  string
	Nodes []geom.Point
	Edges []TreeEdge // tree edges, rooted at the driver node
	// Pins aliases the routed net's pin slice (driver first, then this
	// side's sinks); PinNode[i] is the tree node index of Pins[i]. The
	// flat table replaces the seed's per-net map[string]int keyed by
	// rendered pin names.
	Pins    []Pin
	PinNode []int32
	// DriverNode is the root node index.
	DriverNode int
	WirelenNm  int64
	// EscapeCrowding is the access-weighted pin crowding (pins_eff/limit,
	// scaled by sqrt of the access factor) at the driver's gcell. RC
	// extraction turns it into a driver escape resistance: crowded pin
	// fields force long scenic M0/M1 escapes. Splitting pins across both
	// wafer sides halves it — the paper's dual-sided timing gain.
	EscapeCrowding float64
}

// Result is the outcome of routing one side.
type Result struct {
	Side tech.Side
	// Trees is indexed by the routed net's Seq (dense design-net id);
	// entries for nets absent from this side's population are nil. Use
	// Tree for a bounds- and nil-safe lookup.
	Trees       []*Tree
	WirelenNm   int64
	ByLayerNm   map[string]int64
	ViaCount    int
	DRVs        int // overflowed gcell edges after negotiation
	MaxOverflow int
	GridW       int
	GridH       int
}

// Tree returns the routed tree of the design net with the given Seq, or
// nil when the net was not part of this side's population (or the
// receiver itself is nil — a side with no routing task).
func (r *Result) Tree(seq int) *Tree {
	if r == nil || seq < 0 || seq >= len(r.Trees) {
		return nil
	}
	return r.Trees[seq]
}

// grid is the 2.5-D routing graph for one side. Edges are addressed by
// flat int32 ids: horizontal boundary (x,y)-(x+1,y) is id hIdx(x,y) in
// [0,nH); vertical boundary (x,y)-(x,y+1) is id vIdx(x,y) in [nH,nE).
// Capacity, usage, and congestion history live in single combined
// arrays indexed by edge id, so every per-edge lookup in the hot path
// is one bounds-checked load instead of a map probe.
type grid struct {
	w, h    int
	gc      int64
	nH      int // horizontal edge count; ids >= nH are vertical
	cap     []float64
	cap0    []float64 // pristine per-edge capacity, before pin blockage
	use     []float64
	hist    []float64
	hLayers []tech.Layer
	vLayers []tech.Layer
	// pinsEff holds the access-weighted pin count per gcell (set by
	// applyPinBlockage) for escape-penalty decisions in layer assignment.
	pinsEff []float64
	pinSat  float64
}

// layerUsable is the usable fraction of a layer's raw tracks: M1 is
// consumed by pin access and via ladders, M2 partially, upper layers are
// nearly free for routing.
func layerUsable(index int) float64 {
	switch {
	case index <= 1:
		return 0.65
	case index == 2:
		return 0.70
	case index <= 4:
		return 0.90
	default:
		return 1.0
	}
}

func (g *grid) hIdx(x, y int) int32 { return int32(y*(g.w-1) + x) }
func (g *grid) vIdx(x, y int) int32 { return int32(g.nH + x*(g.h-1) + y) }
func (g *grid) numEdges() int       { return g.nH + g.w*(g.h-1) }

// edgeCells decodes an edge id into its canonical (x1,y1,x2,y2) cells.
func (g *grid) edgeCells(eid int32) (x1, y1, x2, y2 int) {
	if int(eid) < g.nH {
		e := int(eid)
		y := e / (g.w - 1)
		x := e % (g.w - 1)
		return x, y, x + 1, y
	}
	e := int(eid) - g.nH
	x := e / (g.h - 1)
	y := e % (g.h - 1)
	return x, y, x, y + 1
}

// edgeOwner is one entry of the edge→nets reverse index: the net at
// routing-order position pos owned this edge when its generation was
// gen. Entries go stale when the net is ripped up (gen bump); stale
// entries are pruned lazily whenever a list is touched.
type edgeOwner struct {
	pos int32
	gen uint32
}

// Router routes one side.
type Router struct {
	opt    Options
	side   tech.Side
	layers []tech.Layer
	core   geom.Rect
	g      *grid
	sc     *scratch

	// Negotiation state: nets in routing order, the edge→nets reverse
	// index, per-order-position rip-up candidates, and the current sweep
	// position (-1 outside a rip-up sweep).
	nets     []*netRoute
	edgeNets [][]edgeOwner
	cand     []bool
	sweepPos int

	// Cancellation state for the Run in flight: done is the context's
	// Done channel (nil when the run is not cancellable, making every
	// poll a single comparison), pollCtr rate-limits the channel check to
	// one in cancelCheckEvery A* expansions.
	ctx     context.Context
	done    <-chan struct{}
	pollCtr uint32
}

// cancelCheckEvery is the A*-expansion interval between cancellation
// checks: small enough that a cancel lands within a few thousand pops,
// large enough that the check never shows up in a profile. Must be a
// power of two.
const cancelCheckEvery = 4096

// pollCancel returns the run's cancellation error at a bounded interval
// of calls, nil otherwise.
func (r *Router) pollCancel() error {
	if r.done == nil {
		return nil
	}
	r.pollCtr++
	if r.pollCtr&(cancelCheckEvery-1) != 0 {
		return nil
	}
	select {
	case <-r.done:
		return fmt.Errorf("route: cancelled: %w", r.ctx.Err())
	default:
		return nil
	}
}

// NewRouter builds the routing grid for a side of the core area. layers
// must be the side's signal routing layers (from tech.SideRoutingLayers).
func NewRouter(core geom.Rect, side tech.Side, layers []tech.Layer, opt Options) (*Router, error) {
	if opt.GCellNm <= 0 {
		opt = DefaultOptions()
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("route: no routing layers on side %v", side)
	}
	w := int((core.W() + opt.GCellNm - 1) / opt.GCellNm)
	h := int((core.H() + opt.GCellNm - 1) / opt.GCellNm)
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	g := &grid{w: w, h: h, gc: opt.GCellNm, nH: (w - 1) * h}
	var capHPer, capVPer float64
	derate := 1 - opt.StaticDerate
	if derate <= 0 {
		derate = 1
	}
	for _, l := range layers {
		tracks := float64(tech.TracksPerGCell(l, opt.GCellNm)) *
			opt.CapacityFactor * derate * layerUsable(l.Index)
		if l.Dir == tech.Horizontal {
			capHPer += tracks
			g.hLayers = append(g.hLayers, l)
		} else {
			capVPer += tracks
			g.vLayers = append(g.vLayers, l)
		}
	}
	nE := g.numEdges()
	g.cap = make([]float64, nE)
	g.cap0 = make([]float64, nE)
	g.use = make([]float64, nE)
	g.hist = make([]float64, nE)
	for i := 0; i < g.nH; i++ {
		g.cap0[i] = capHPer
	}
	for i := g.nH; i < nE; i++ {
		g.cap0[i] = capVPer
	}
	copy(g.cap, g.cap0)
	return &Router{
		opt: opt, side: side, layers: layers, core: core, g: g,
		sc:       newScratch(w*h, nE),
		edgeNets: make([][]edgeOwner, nE),
		sweepPos: -1,
	}, nil
}

// cellOf maps a point to its gcell.
func (r *Router) cellOf(p geom.Point) (int, int) {
	x := int(geom.Clamp64(p.X/r.opt.GCellNm, 0, int64(r.g.w-1)))
	y := int(geom.Clamp64(p.Y/r.opt.GCellNm, 0, int64(r.g.h-1)))
	return x, y
}

// applyPinBlockage derates local capacity around every pin cluster: each
// gcell loses a (pins_eff/PinSaturation)^PinCrowdingExp fraction of the
// capacity on its adjacent edges. Access collapses sharply as the local
// pin count approaches the saturation limit — pin-dense gcells
// (single-sided FFET, one-side-accessed CFET) congest first.
func (r *Router) applyPinBlockage(nets []*Net) {
	g := r.g
	exp := r.opt.PinCrowdingExp
	if exp < 1 {
		exp = 1
	}
	sat := r.opt.PinSaturation
	if sat <= 0 {
		sat = 85
	}
	// Normalize the saturation limit to the gcell area (limit is per µm²).
	sat *= float64(r.opt.GCellNm) / 1000 * float64(r.opt.GCellNm) / 1000
	kappa := r.opt.PinAccessFactor
	if kappa <= 0 {
		kappa = 1
	}
	pins := make([]float64, g.w*g.h)
	for _, n := range nets {
		for _, p := range n.Pins {
			x, y := r.cellOf(p.At)
			pins[y*g.w+x]++
		}
	}
	g.pinsEff = make([]float64, len(pins))
	for i := range pins {
		g.pinsEff[i] = pins[i] * kappa
	}
	g.pinSat = sat
	derate := func(eid int32, frac float64) {
		g.cap[eid] = math.Max(0, g.cap[eid]*(1-frac))
	}
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			c := pins[y*g.w+x] * kappa
			if c == 0 {
				continue
			}
			frac := math.Pow(c/sat, exp) / 2 // each of 4 edges carries half
			// Deepest clusters keep some access; the floor is lower for
			// architectures with harder pin access (kappa > 1).
			ceil := 0.44 * math.Sqrt(kappa)
			if ceil > 0.62 {
				ceil = 0.62
			}
			if frac > ceil {
				frac = ceil
			}
			if x > 0 {
				derate(g.hIdx(x-1, y), frac)
			}
			if x < g.w-1 {
				derate(g.hIdx(x, y), frac)
			}
			if y > 0 {
				derate(g.vIdx(x, y-1), frac)
			}
			if y < g.h-1 {
				derate(g.vIdx(x, y), frac)
			}
		}
	}
}

// netRoute is internal per-net routing state.
type netRoute struct {
	net *Net
	// edges holds the net's committed grid-edge ids in commit order,
	// without duplicates (ownership marks in the scratch arena dedup
	// commits). The slice is recycled across reroutes.
	edges []int32
	hpwl  int64
	pos   int32  // position in the router's net order
	gen   uint32 // bumped on every rip-up; stales reverse-index entries
}

// Run routes all nets and returns the result with layer-assigned trees.
func (r *Router) Run(nets []*Net) (*Result, error) {
	return r.RunCtx(context.Background(), nets)
}

// RunCtx is Run under a context: cancellation is observed per routed net,
// per negotiation iteration, and — inside the A* core — every
// cancelCheckEvery expansions, so even a single huge net aborts within a
// bounded number of inner iterations. A cancelled router holds partial
// usage state; Run resets the grid, so the Router itself stays reusable.
func (r *Router) RunCtx(ctx context.Context, nets []*Net) (*Result, error) {
	r.ctx = ctx
	r.done = ctx.Done()
	r.pollCtr = 0
	defer func() { r.ctx, r.done = nil, nil }()
	for _, n := range nets {
		drivers := 0
		for _, p := range n.Pins {
			if p.Driver {
				drivers++
			}
		}
		if drivers != 1 {
			return nil, fmt.Errorf("route: net %s has %d drivers", n.Name, drivers)
		}
	}
	// Restore pristine grid state so a reused Router routes exactly like
	// a fresh one: usage and history from a previous Run would otherwise
	// act as phantom congestion, and pin blockage would derate capacity
	// cumulatively.
	g := r.g
	copy(g.cap, g.cap0)
	for i := range g.use {
		g.use[i] = 0
		g.hist[i] = 0
	}
	r.applyPinBlockage(nets)

	order := make([]*netRoute, 0, len(nets))
	var pts []geom.Point
	for _, n := range nets {
		pts = pts[:0]
		for _, p := range n.Pins {
			pts = append(pts, p.At)
		}
		order = append(order, &netRoute{net: n, hpwl: geom.HPWL(pts)})
	}
	// (hpwl, name) is a total order over a side's nets, so the unstable
	// pdqsort yields the same routing order the seed's stable sort did.
	sort.Slice(order, func(i, j int) bool {
		if order[i].hpwl != order[j].hpwl {
			return order[i].hpwl < order[j].hpwl
		}
		return order[i].net.Name < order[j].net.Name
	})
	for i, nr := range order {
		nr.pos = int32(i)
	}
	r.nets = order
	r.cand = make([]bool, len(order))
	// Retire reverse-index entries from any previous Run on this router:
	// their positions/generations refer to the old net order and would
	// otherwise alias the fresh nets' generation 0.
	for i := range r.edgeNets {
		r.edgeNets[i] = r.edgeNets[i][:0]
	}

	presFac := 1.0
	for _, nr := range order {
		if err := r.routeNet(nr, presFac); err != nil {
			return nil, err
		}
	}
	prevOver := 1 << 30
	stale := 0
	for it := 0; it < r.opt.Iterations; it++ {
		if r.done != nil {
			select {
			case <-r.done:
				return nil, fmt.Errorf("route: cancelled: %w", ctx.Err())
			default:
			}
		}
		over := r.overflowedEdges()
		if len(over) == 0 {
			break
		}
		// Abandon hopeless negotiations early: the run is invalid anyway
		// once overflow stops improving.
		if len(over) >= prevOver {
			stale++
			if stale >= 4 {
				break
			}
		} else {
			stale = 0
		}
		prevOver = len(over)
		r.accumulateHistory()
		presFac *= 1.7
		// Rip up and reroute nets that cross overflowed edges. The
		// reverse index narrows the sweep to nets actually touching
		// overflow; the live crossesOverflow check below then makes the
		// rip decision at the net's sweep position, exactly as a full
		// scan over every net would (usage committed earlier in the same
		// sweep is visible, and overflow created mid-sweep re-marks the
		// not-yet-visited owners of the offending edge).
		for i := range r.cand {
			r.cand[i] = false
		}
		for _, eid := range over {
			for _, o := range r.edgeNets[eid] {
				if int(o.pos) < len(order) && order[o.pos].gen == o.gen {
					r.cand[o.pos] = true
				}
			}
		}
		for i, nr := range order {
			if !r.cand[i] {
				continue
			}
			r.sweepPos = i
			if !r.crossesOverflow(nr) {
				continue
			}
			r.unroute(nr)
			if err := r.routeNet(nr, presFac); err != nil {
				r.sweepPos = -1
				return nil, err
			}
		}
		r.sweepPos = -1
	}

	maxSeq := -1
	for _, n := range nets {
		if n.Seq > maxSeq {
			maxSeq = n.Seq
		}
	}
	res := &Result{
		Side:      r.side,
		Trees:     make([]*Tree, maxSeq+1),
		ByLayerNm: make(map[string]int64),
		GridW:     r.g.w,
		GridH:     r.g.h,
	}
	// Tree structs, pin-node tables and the Nodes/Edges payloads are all
	// carved from flat arenas sized up front: the result owns them, and
	// per-net allocation inside the tree-build loop drops to zero. A
	// routed tree has at most len(edges)+1 nodes (it is a tree; pins bind
	// to cells already on it), and the carves are capacity-capped so a
	// stray append reallocates instead of clobbering the next net.
	totalPins, totalEdges := 0, 0
	for _, n := range nets {
		totalPins += len(n.Pins)
	}
	for _, nr := range order {
		totalEdges += len(nr.edges)
	}
	treeStore := make([]Tree, len(order))
	pinNodeArena := make([]int32, totalPins)
	nodeArena := make([]geom.Point, totalEdges+len(order))
	edgeArena := make([]TreeEdge, totalEdges)
	carved, nodeAt, edgeAt := 0, 0, 0
	for i, nr := range order {
		k := len(nr.net.Pins)
		nn, ne := len(nr.edges)+1, len(nr.edges)
		t := &treeStore[i]
		r.buildTree(nr, t, pinNodeArena[carved:carved+k:carved+k],
			nodeArena[nodeAt:nodeAt:nodeAt+nn],
			edgeArena[edgeAt:edgeAt:edgeAt+ne])
		carved += k
		nodeAt += nn
		edgeAt += ne
		if res.Trees[nr.net.Seq] != nil {
			return nil, fmt.Errorf("route: duplicate net Seq %d (%s and %s)",
				nr.net.Seq, res.Trees[nr.net.Seq].Name, nr.net.Name)
		}
		res.Trees[nr.net.Seq] = t
		res.WirelenNm += t.WirelenNm
		for _, e := range t.Edges {
			if e.Layer.Name != "" {
				res.ByLayerNm[e.Layer.Name] += e.LenNm
			}
			res.ViaCount += e.Vias
		}
	}
	res.DRVs, res.MaxOverflow = r.countOverflow()
	return res, nil
}

// routeNet routes the net's MST topology with A*, updating usage. On
// cancellation the net's partial commits stay in the usage arrays; the
// caller abandons the whole Run (the next Run resets the grid).
func (r *Router) routeNet(nr *netRoute, presFac float64) error {
	s := r.sc
	s.beginNet()
	nr.edges = nr.edges[:0]
	n := nr.net
	k := len(n.Pins)
	s.ensurePins(k)
	for i, p := range n.Pins {
		x, y := r.cellOf(p.At)
		s.pinX[i], s.pinY[i] = int32(x), int32(y)
	}
	// Prim MST over pin gcells (Manhattan metric), O(k²) via cached
	// nearest-tree distances. Tie-breaking matches the seed's O(k³)
	// scan exactly: the joining pin is the lowest index achieving the
	// minimum distance, and its tree anchor the lowest index realizing
	// that distance.
	dist := func(i, j int) int32 {
		return geom.Abs(s.pinX[i]-s.pinX[j]) + geom.Abs(s.pinY[i]-s.pinY[j])
	}
	s.inTree[0] = true
	for i := 1; i < k; i++ {
		s.minDist[i] = dist(i, 0)
	}
	for connected := 1; connected < k; connected++ {
		best, bestD := -1, int32(math.MaxInt32)
		for i := 1; i < k; i++ {
			if !s.inTree[i] && s.minDist[i] < bestD {
				bestD, best = s.minDist[i], i
			}
		}
		bestFrom := -1
		for j := 0; j < k; j++ {
			if s.inTree[j] && dist(best, j) == bestD {
				bestFrom = j
				break
			}
		}
		if err := r.astar(nr, int(s.pinX[bestFrom]), int(s.pinY[bestFrom]),
			int(s.pinX[best]), int(s.pinY[best]), presFac); err != nil {
			return err
		}
		s.inTree[best] = true
		for i := 1; i < k; i++ {
			if !s.inTree[i] {
				if d := dist(i, best); d < s.minDist[i] {
					s.minDist[i] = d
				}
			}
		}
	}
	return nil
}

// ownedEdgeCost is the near-free cost of re-riding an edge the net
// already committed (shared trunk).
const ownedEdgeCost = 0.05

// edgeCost is the negotiated-congestion cost of taking a grid edge.
func (r *Router) edgeCost(eid int32, presFac float64) float64 {
	g := r.g
	cap, use, hist := g.cap[eid], g.use[eid], g.hist[eid]
	cost := 1.0 + r.opt.HistoryGain*hist
	if cap <= 0 {
		return cost + 8*presFac
	}
	u := (use + 1) / cap
	if u > 1 {
		cost += presFac * (2 + 4*(u-1))
	} else if u > 0.6 {
		cost += 0.8 * (u - 0.6) / 0.4
	}
	return cost
}

// astarWindowMargin is the initial bounding-box margin (in gcells) for
// windowed 2-pin searches.
const astarWindowMargin = 4

// astar routes one 2-pin connection and commits its edges to the net.
//
// When the net owns no edges yet (every 2-pin net, and the first segment
// of every multi-pin net) the search runs inside the pin bounding box
// plus a margin, expanding until the result is provably identical to an
// unwindowed search: with every non-owned edge costing ≥ 1 the Manhattan
// heuristic is consistent, so the full search only pops cells v with
// dist(s,v)+h(v) ≤ C*, i.e. cells at most (C*−manhattan)/2 outside the
// pin bbox (and pushes one ring further). If the windowed cost C
// satisfies C − manhattan ≤ 2·(margin−1), then C* ≤ C implies the window
// already contained every cell the full search would have touched, hence
// C = C* and the pop order — and committed path — are bit-identical.
// Otherwise the margin grows and the search re-runs. Segments of nets
// with owned (near-free) edges break the cost ≥ 1 premise and run
// unwindowed.
func (r *Router) astar(nr *netRoute, sx, sy, tx, ty int, presFac float64) error {
	g, s := r.g, r.sc
	if sx == tx && sy == ty {
		return nil
	}
	manh := float64(geom.Abs(sx-tx) + geom.Abs(sy-ty))
	lox, loy, hix, hiy := 0, 0, g.w-1, g.h-1
	windowed := len(nr.edges) == 0
	margin := astarWindowMargin
	for {
		if windowed {
			lox = max(min(sx, tx)-margin, 0)
			loy = max(min(sy, ty)-margin, 0)
			hix = min(max(sx, tx)+margin, g.w-1)
			hiy = min(max(sy, ty)+margin, g.h-1)
		}
		cost, found, err := r.search(nr, sx, sy, tx, ty, presFac, lox, loy, hix, hiy)
		if err != nil {
			return err
		}
		if !windowed {
			break
		}
		full := lox == 0 && loy == 0 && hix == g.w-1 && hiy == g.h-1
		if full || (found && cost-manh <= float64(2*(margin-1))) {
			break
		}
		need := int((cost-manh)/2) + 2
		margin *= 2
		if margin < need {
			margin = need
		}
	}

	// Walk back and commit edges.
	cx, cy := tx, ty
	for !(cx == sx && cy == sy) {
		cell := int32(cy*g.w + cx)
		if s.visitEpoch[cell] != s.epoch {
			return nil // unreachable; should not happen on a connected grid
		}
		p := s.prev[cell]
		if p < 0 {
			return nil
		}
		px, py := int(p)%g.w, int(p)/g.w
		var eid int32
		if py == cy {
			eid = g.hIdx(min(px, cx), cy)
		} else {
			eid = g.vIdx(cx, min(py, cy))
		}
		if s.ownEpoch[eid] != s.netEpoch {
			s.ownEpoch[eid] = s.netEpoch
			nr.edges = append(nr.edges, eid)
			wasOver := g.use[eid] > g.cap[eid]
			g.use[eid]++
			r.addOwner(eid, nr)
			if r.sweepPos >= 0 && !wasOver && g.use[eid] > g.cap[eid] {
				// This commit just overflowed the edge mid-sweep: the
				// edge's other owners later in the order must be
				// re-examined, as a full rip-up scan would have done.
				for _, o := range r.edgeNets[eid] {
					if int(o.pos) > r.sweepPos && int(o.pos) < len(r.nets) &&
						r.nets[o.pos].gen == o.gen {
						r.cand[o.pos] = true
					}
				}
			}
		}
		cx, cy = px, py
	}
	return nil
}

// search runs one A* pass restricted to the [lox,hix]×[loy,hiy] window,
// leaving dist/prev in the scratch arena, and returns the target's
// g-cost. It allocates nothing once the frontier slice has warmed up.
func (r *Router) search(nr *netRoute, sx, sy, tx, ty int, presFac float64, lox, loy, hix, hiy int) (float64, bool, error) {
	g, s := r.g, r.sc
	s.beginSearch()
	s.pq.reset()
	sid := int32(sy*g.w + sx)
	tid := int32(ty*g.w + tx)
	s.pq.push(pqItem{node: sid, cost: 0,
		est: float64(geom.Abs(sx-tx) + geom.Abs(sy-ty))})
	s.touch(sid)
	s.dist[sid] = 0
	for s.pq.len() > 0 {
		if err := r.pollCancel(); err != nil {
			return 0, false, err
		}
		cur := s.pq.pop()
		if cur.node == tid {
			return cur.cost, true, nil
		}
		if cur.cost > s.dist[cur.node] {
			continue
		}
		cx, cy := int(cur.node)%g.w, int(cur.node)/g.w
		// Neighbors in the seed's relaxation order: -x, +x, -y, +y.
		var nx, ny, eids [4]int32
		steps := 0
		if cx > lox {
			nx[steps], ny[steps], eids[steps] = int32(cx-1), int32(cy), g.hIdx(cx-1, cy)
			steps++
		}
		if cx < hix {
			nx[steps], ny[steps], eids[steps] = int32(cx+1), int32(cy), g.hIdx(cx, cy)
			steps++
		}
		if cy > loy {
			nx[steps], ny[steps], eids[steps] = int32(cx), int32(cy-1), g.vIdx(cx, cy-1)
			steps++
		}
		if cy < hiy {
			nx[steps], ny[steps], eids[steps] = int32(cx), int32(cy+1), g.vIdx(cx, cy)
			steps++
		}
		for i := 0; i < steps; i++ {
			// Edges already owned by this net are free (shared trunk).
			var c float64
			if s.ownEpoch[eids[i]] == s.netEpoch {
				c = ownedEdgeCost
			} else {
				c = r.edgeCost(eids[i], presFac)
			}
			nd := cur.cost + c
			nid := ny[i]*int32(g.w) + nx[i]
			s.touch(nid)
			if nd < s.dist[nid] {
				s.dist[nid] = nd
				s.prev[nid] = cur.node
				s.pq.push(pqItem{node: nid, cost: nd,
					est: nd + float64(geom.Abs(int(nx[i])-tx)+geom.Abs(int(ny[i])-ty))})
			}
		}
	}
	return math.MaxFloat64, false, nil
}

// addOwner records the net as an owner of the edge in the reverse index,
// pruning entries staled by rip-ups so lists stay bounded and the append
// reuses capacity in steady state.
func (r *Router) addOwner(eid int32, nr *netRoute) {
	owners := r.edgeNets[eid]
	kept := owners[:0]
	for _, o := range owners {
		if int(o.pos) < len(r.nets) && r.nets[o.pos].gen == o.gen {
			kept = append(kept, o)
		}
	}
	r.edgeNets[eid] = append(kept, edgeOwner{pos: nr.pos, gen: nr.gen})
}

// unroute removes the net's edges from usage.
func (r *Router) unroute(nr *netRoute) {
	g := r.g
	for _, eid := range nr.edges {
		g.use[eid]--
	}
	nr.edges = nr.edges[:0]
	nr.gen++ // stales this net's reverse-index entries
}

// crossesOverflow reports whether the net uses an overflowed edge.
func (r *Router) crossesOverflow(nr *netRoute) bool {
	g := r.g
	for _, eid := range nr.edges {
		if g.use[eid] > g.cap[eid] {
			return true
		}
	}
	return false
}

// overflowedEdges returns the ids of all currently overflowed edges,
// reusing the scratch slice.
func (r *Router) overflowedEdges() []int32 {
	g := r.g
	out := r.sc.over[:0]
	for i := range g.cap {
		if g.use[i] > g.cap[i] {
			out = append(out, int32(i))
		}
	}
	r.sc.over = out
	return out
}

func (r *Router) accumulateHistory() {
	g := r.g
	for i := range g.cap {
		if g.use[i] > g.cap[i] {
			g.hist[i] += (g.use[i] - g.cap[i]) / math.Max(g.cap[i], 1)
		}
	}
}

// drvThreshold is the overflow (in tracks) above which an edge counts as
// a design-rule violation. Overflow at or below the threshold is assumed
// recoverable by detailed routing (track swaps, off-grid jogs).
const drvThreshold = 1.5

// countOverflow returns (violating edge count, max overflow amount).
func (r *Router) countOverflow() (int, int) {
	g := r.g
	n := 0
	maxOv := 0.0
	for i := range g.cap {
		ov := g.use[i] - g.cap[i]
		if ov > drvThreshold {
			n++
		}
		if ov > maxOv {
			maxOv = ov
		}
	}
	return n, int(maxOv + 0.5)
}
