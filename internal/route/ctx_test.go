package route

import (
	"context"
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// TestRunCtxCancelled pins the router's cancellation contract: a cancelled
// context aborts the run with the context cause in the chain, and the
// Router stays reusable — the next Run resets the grid and routes exactly
// like a fresh router.
func TestRunCtxCancelled(t *testing.T) {
	core := geom.R(0, 0, 10000, 10000)
	r, err := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nets := []*Net{
		mkNet(0, "n1", geom.Pt(500, 500), geom.Pt(8500, 6500)),
		mkNet(1, "n2", geom.Pt(1500, 9500), geom.Pt(9500, 500)),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunCtx(ctx, nets); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run = %v, want context.Canceled in chain", err)
	}

	// Partial usage state from the aborted run must not leak into the
	// next one: the reused router's result must match a fresh router's.
	got, err := r.Run(nets)
	if err != nil {
		t.Fatalf("Run after cancel: %v", err)
	}
	fresh, err := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(nets)
	if err != nil {
		t.Fatal(err)
	}
	if got.DRVs != want.DRVs || got.WirelenNm != want.WirelenNm {
		t.Errorf("post-cancel run (drv=%d wl=%d) != fresh (drv=%d wl=%d)",
			got.DRVs, got.WirelenNm, want.DRVs, want.WirelenNm)
	}
}
