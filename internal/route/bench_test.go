package route

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

// benchNets builds a reproducible random 2-pin net population.
func benchNets(n int, span int64, seed int64) []*Net {
	rng := rand.New(rand.NewSource(seed))
	nets := make([]*Net, 0, n)
	for i := 0; i < n; i++ {
		nets = append(nets, mkNet(i, fmt.Sprintf("n%d", i),
			geom.Pt(rng.Int63n(span), rng.Int63n(span)),
			geom.Pt(rng.Int63n(span), rng.Int63n(span))))
	}
	return nets
}

// BenchmarkAstarShortNet measures the steady-state cost of routing one
// short 2-pin connection on a large, mostly idle grid — the windowed
// zero-alloc A* fast path that dominates real netlists.
func BenchmarkAstarShortNet(b *testing.B) {
	core := geom.R(0, 0, 200_000, 200_000)
	r, err := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	net := mkNet(0, "short", geom.Pt(100_500, 100_500), geom.Pt(106_500, 104_500))
	nr := &netRoute{net: net}
	r.nets = []*netRoute{nr}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.routeNet(nr, 1)
		r.unroute(nr)
	}
}

// BenchmarkRouterQuickCore measures a full Run (initial routing +
// negotiation + tree building) at quick-core scale, including router
// construction, as one benchmark unit of the evaluation flow.
func BenchmarkRouterQuickCore(b *testing.B) {
	core := geom.R(0, 0, 60_000, 60_000)
	layers := ffetFrontLayers(6)
	nets := benchNets(600, 60_000, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewRouter(core, tech.Front, layers, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(nets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildTree measures converting committed grid edges into
// layer-assigned RC trees for a routed quick-core-scale population — the
// post-negotiation tail of every Run. The flat position-indexed pin-node
// tables replaced the seed's per-net map[string]int; tree payloads and
// the pin-node arena are preallocated outside the loop so the benchmark
// isolates buildTree itself.
func BenchmarkBuildTree(b *testing.B) {
	core := geom.R(0, 0, 60_000, 60_000)
	r, err := NewRouter(core, tech.Front, ffetFrontLayers(6), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	nets := benchNets(600, 60_000, 11)
	if _, err := r.Run(nets); err != nil {
		b.Fatal(err)
	}
	totalPins, totalEdges := 0, 0
	for _, n := range nets {
		totalPins += len(n.Pins)
	}
	for _, nr := range r.nets {
		totalEdges += len(nr.edges)
	}
	pinArena := make([]int32, totalPins)
	nodeArena := make([]geom.Point, totalEdges+len(r.nets))
	edgeArena := make([]TreeEdge, totalEdges)
	trees := make([]Tree, len(r.nets))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		carved, nodeAt, edgeAt := 0, 0, 0
		for j, nr := range r.nets {
			k := len(nr.net.Pins)
			nn, ne := len(nr.edges)+1, len(nr.edges)
			r.buildTree(nr, &trees[j], pinArena[carved:carved+k:carved+k],
				nodeArena[nodeAt:nodeAt:nodeAt+nn],
				edgeArena[edgeAt:edgeAt:edgeAt+ne])
			carved += k
			nodeAt += nn
			edgeAt += ne
		}
	}
}

// TestAstarZeroAlloc pins the zero-allocation invariant of the A* core:
// once the router's scratch arena and the net's edge slice have warmed
// up, rip-up + reroute cycles must not allocate at all.
func TestAstarZeroAlloc(t *testing.T) {
	core := geom.R(0, 0, 100_000, 100_000)
	r, err := NewRouter(core, tech.Front, ffetFrontLayers(12), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	net := mkNet(0, "zn",
		geom.Pt(20_500, 20_500), geom.Pt(44_500, 31_500), geom.Pt(28_500, 47_500))
	nr := &netRoute{net: net}
	r.nets = []*netRoute{nr}
	// Warm up the scratch arena, frontier, edge slice and reverse index.
	r.routeNet(nr, 1)
	r.unroute(nr)
	allocs := testing.AllocsPerRun(100, func() {
		r.routeNet(nr, 1)
		r.unroute(nr)
	})
	if allocs != 0 {
		t.Errorf("rip-up+reroute allocates %v objects per run, want 0", allocs)
	}
}

// TestRouterReuse guards the Run-reset contract: a router reused for a
// second Run (fewer nets, stale reverse-index entries, leftover usage,
// history and pin-blockage derates from the first population) must
// behave exactly like a freshly built router.
func TestRouterReuse(t *testing.T) {
	core := geom.R(0, 0, 30_000, 4_000)
	r, err := NewRouter(core, tech.Front, ffetFrontLayers(2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// First run: congested population that exercises rip-up.
	var nets []*Net
	for i := 0; i < 260; i++ {
		y := int64(500 + (i%4)*1000)
		nets = append(nets, mkNet(i, fmt.Sprintf("n%d", i), geom.Pt(500, y), geom.Pt(29500, y)))
	}
	if _, err := r.Run(nets); err != nil {
		t.Fatal(err)
	}
	// Second run on the same router with far fewer nets: stale reverse
	// index positions exceed the new net count.
	small := benchNets(20, 4_000, 9)
	reused, err := r.Run(small)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRouter(core, tech.Front, ffetFrontLayers(2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if reused.WirelenNm != want.WirelenNm || reused.DRVs != want.DRVs ||
		reused.ViaCount != want.ViaCount {
		t.Errorf("reused router diverges from fresh: WL %d vs %d, DRVs %d vs %d, vias %d vs %d",
			reused.WirelenNm, want.WirelenNm, reused.DRVs, want.DRVs,
			reused.ViaCount, want.ViaCount)
	}
}

// TestRunTwiceSameNetsDeterministic guards the determinism contract the
// parallel dual-side flow relies on: routing the same nets on two fresh
// routers yields identical wirelength and DRV counts.
func TestRunTwiceSameNetsDeterministic(t *testing.T) {
	core := geom.R(0, 0, 30_000, 8_000)
	nets := benchNets(300, 8_000, 3)
	run := func() (int64, int) {
		r, err := NewRouter(core, tech.Front, ffetFrontLayers(3), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(nets)
		if err != nil {
			t.Fatal(err)
		}
		return res.WirelenNm, res.DRVs
	}
	wl1, drv1 := run()
	wl2, drv2 := run()
	if wl1 != wl2 || drv1 != drv2 {
		t.Errorf("two Run calls diverge: WL %d vs %d, DRVs %d vs %d", wl1, wl2, drv1, drv2)
	}
}
