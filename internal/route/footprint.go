package route

import (
	"unsafe"

	"repro/internal/geom"
)

// FootprintBytes estimates the tree's retained heap bytes: the node,
// edge, pin and pin-node tables plus the name string.
func (t *Tree) FootprintBytes() int64 {
	if t == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*t)) + int64(len(t.Name))
	b += int64(len(t.Nodes)) * int64(unsafe.Sizeof(geom.Point{}))
	b += int64(len(t.Edges)) * int64(unsafe.Sizeof(TreeEdge{}))
	b += int64(len(t.Pins)) * int64(unsafe.Sizeof(Pin{}))
	b += int64(len(t.PinNode)) * int64(unsafe.Sizeof(int32(0)))
	return b
}

// FootprintBytes estimates the retained heap bytes of one side's routing
// result: every routed tree plus the per-layer wirelength map. An
// accounting estimate for cache budgeting, not an exact heap measurement.
func (r *Result) FootprintBytes() int64 {
	if r == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*r))
	b += int64(len(r.Trees)) * int64(unsafe.Sizeof(uintptr(0)))
	for _, t := range r.Trees {
		b += t.FootprintBytes()
	}
	for layer := range r.ByLayerNm {
		b += int64(unsafe.Sizeof("")) + int64(len(layer)) + int64(unsafe.Sizeof(int64(0))) + 24
	}
	return b
}
