// Package cliutil holds the shutdown plumbing every ffet command shares:
// the SIGINT/SIGTERM-cancelled root context, the partial-stage-timings
// report an interrupted flow prints, and the classified-failure exit
// path. Extracted from the four CLIs (ffetflow, ffetexp, ffetmc,
// ffetcal), and used by the ffetd daemon for the same drain semantics.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
)

// SignalContext returns a context cancelled by SIGINT or SIGTERM. After
// cancellation a second signal falls back to the default handler (the
// stop function has been invoked by then in every CLI's defer), so a
// stuck drain can always be killed with a second ^C.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// IsCancel reports whether err is a cancellation (the flow taxonomy's
// ErrCancelled or a bare context error).
func IsCancel(err error) bool {
	return errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled)
}

// PrintPartialStageTimes writes the completed stage timings of a
// partially-run flow — the shutdown report an interrupted run leaves
// behind so the paid work is visible even when the result is not.
func PrintPartialStageTimes(w io.Writer, res *core.FlowResult) {
	fmt.Fprintln(w, "partial stage timings:")
	for d := core.StageSynth; int(d) < core.NumStages; d++ {
		if res.StageTimes[d] > 0 {
			fmt.Fprintf(w, "  %-9v %8s\n", d, res.StageTimes[d].Round(time.Microsecond))
		}
	}
}

// Fail reports a run error on stderr — marking interrupts so a ^C reads
// as one — and exits 1.
func Fail(tool string, err error) {
	if IsCancel(err) {
		fmt.Fprintln(os.Stderr, "interrupted")
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
