// Package lef writes and parses a LEF (Library Exchange Format) subset for
// the generated standard-cell libraries. Following the paper's methodology
// ("their locations defined in the modified standard cell LEF files can be
// flexibly adjusted", Section III.A), each pin carries a SIDE property
// (FRONT, BACK, or BOTH) so input-pin redistribution is expressed as LEF
// rewriting, exactly as the authors describe.
package lef

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cell"
)

// PinSide is the wafer-side placement of a pin in a LEF macro.
type PinSide int

// Pin side values.
const (
	SideFront PinSide = iota
	SideBack
	SideBoth // dual-sided output pins (Drain Merge)
)

func (s PinSide) String() string {
	switch s {
	case SideFront:
		return "FRONT"
	case SideBack:
		return "BACK"
	default:
		return "BOTH"
	}
}

// ParseSide converts the LEF SIDE token.
func ParseSide(s string) (PinSide, error) {
	switch s {
	case "FRONT":
		return SideFront, nil
	case "BACK":
		return SideBack, nil
	case "BOTH":
		return SideBoth, nil
	}
	return SideFront, fmt.Errorf("lef: unknown side %q", s)
}

// SideConfig assigns a side to each input pin of each cell: cell name ->
// pin name -> side. Missing entries default to FRONT. Output pins in an
// FFET library are always BOTH; in a CFET library everything is FRONT.
type SideConfig map[string]map[string]PinSide

// Get returns the configured side for a cell pin.
func (sc SideConfig) Get(cellName, pin string) PinSide {
	if m, ok := sc[cellName]; ok {
		if s, ok := m[pin]; ok {
			return s
		}
	}
	return SideFront
}

// Set records a side assignment.
func (sc SideConfig) Set(cellName, pin string, s PinSide) {
	m, ok := sc[cellName]
	if !ok {
		m = make(map[string]PinSide)
		sc[cellName] = m
	}
	m[pin] = s
}

// Macro is a parsed LEF macro.
type Macro struct {
	Name     string
	Class    string
	WidthNm  int64
	HeightNm int64
	Pins     []MacroPin
}

// MacroPin is a parsed LEF pin with the SIDE extension.
type MacroPin struct {
	Name      string
	Direction string // INPUT or OUTPUT
	Use       string // SIGNAL or CLOCK
	Side      PinSide
	Layer     string
	OffsetNm  int64 // pin x-offset within the macro
}

// Library is a parsed LEF file.
type Library struct {
	SiteName   string
	SiteWidth  int64
	SiteHeight int64
	Macros     []*Macro
}

// Macro returns the named macro, or nil.
func (l *Library) Macro(name string) *Macro {
	for _, m := range l.Macros {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Write emits the library as LEF, applying the side configuration to
// input pins (the paper's "input pin redistribution" artifact).
func Write(w io.Writer, lib *cell.Library, sides SideConfig) error {
	bw := bufio.NewWriter(w)
	st := lib.Stack
	fmt.Fprintf(bw, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n")
	fmt.Fprintf(bw, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n")
	site := strings.ToLower(st.Arch.String()) + "_site"
	fmt.Fprintf(bw, "SITE %s\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\nEND %s\n",
		site, float64(st.CPPNm)/1000, float64(st.CellHeightNm())/1000, site)
	names := lib.CellNames()
	sort.Strings(names)
	for _, name := range names {
		c := lib.Cell(name)
		fmt.Fprintf(bw, "MACRO %s\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\n  SITE %s ;\n",
			c.Name, float64(c.WidthNm(st))/1000, float64(st.CellHeightNm())/1000, site)
		writePin := func(p cell.Pin, dir string, side PinSide) {
			use := "SIGNAL"
			if p.Clock {
				use = "CLOCK"
			}
			layer := "FM0"
			if side == SideBack {
				layer = "BM0"
			}
			off := int64(p.OffsetCPP * float64(st.CPPNm))
			fmt.Fprintf(bw, "  PIN %s\n    DIRECTION %s ;\n    USE %s ;\n    SIDE %s ;\n",
				p.Name, dir, use, side)
			fmt.Fprintf(bw, "    PORT\n      LAYER %s ;\n      RECT %d 0 %d %d ;\n    END\n  END %s\n",
				layer, off, off+14, st.TrackNm, p.Name)
		}
		for _, p := range c.Inputs {
			side := sides.Get(c.Name, p.Name)
			if !p.DualSided && side != SideFront {
				return fmt.Errorf("lef: %s/%s is frontside-only but configured %v",
					c.Name, p.Name, side)
			}
			writePin(p, "INPUT", side)
		}
		outSide := SideFront
		if c.Out.DualSided {
			outSide = SideBoth
		}
		writePin(c.Out, "OUTPUT", outSide)
		fmt.Fprintf(bw, "END %s\n", c.Name)
	}
	fmt.Fprintln(bw, "END LIBRARY")
	return bw.Flush()
}

// Parse reads the LEF subset produced by Write.
func Parse(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var toks []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		toks = append(toks, strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	lib := &Library{}
	pos := 0
	peek := func() string {
		if pos >= len(toks) {
			return ""
		}
		return toks[pos]
	}
	next := func() string { t := peek(); pos++; return t }
	skipToSemi := func() {
		for peek() != ";" && peek() != "" {
			pos++
		}
		pos++
	}
	umToNm := func(s string) (int64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("lef: bad number %q", s)
		}
		return int64(v*1000 + 0.5), nil
	}
	for peek() != "" {
		switch next() {
		case "SITE":
			lib.SiteName = next()
			for peek() != "END" && peek() != "" {
				if next() == "SIZE" {
					w, err := umToNm(next())
					if err != nil {
						return nil, err
					}
					next() // BY
					h, err := umToNm(next())
					if err != nil {
						return nil, err
					}
					lib.SiteWidth, lib.SiteHeight = w, h
					skipToSemi()
				}
			}
			next() // END
			next() // site name
		case "MACRO":
			m := &Macro{Name: next()}
			for {
				tok := next()
				if tok == "END" && peek() == m.Name {
					next()
					break
				}
				switch tok {
				case "CLASS":
					m.Class = next()
					skipToSemi()
				case "SIZE":
					w, err := umToNm(next())
					if err != nil {
						return nil, err
					}
					next() // BY
					h, err := umToNm(next())
					if err != nil {
						return nil, err
					}
					m.WidthNm, m.HeightNm = w, h
					skipToSemi()
				case "SITE":
					skipToSemi()
				case "PIN":
					p, err := parsePin(m.Name, next, peek)
					if err != nil {
						return nil, err
					}
					m.Pins = append(m.Pins, p)
				case "":
					return nil, fmt.Errorf("lef: unexpected EOF in macro %s", m.Name)
				}
			}
			lib.Macros = append(lib.Macros, m)
		default:
			// Header statements (VERSION, UNITS blocks, END LIBRARY...).
		}
	}
	return lib, nil
}

func parsePin(macro string, next func() string, peek func() string) (MacroPin, error) {
	p := MacroPin{Name: next(), Side: SideFront}
	for {
		tok := next()
		switch tok {
		case "DIRECTION":
			p.Direction = next()
		case "USE":
			p.Use = next()
		case "SIDE":
			s, err := ParseSide(next())
			if err != nil {
				return p, err
			}
			p.Side = s
		case "LAYER":
			p.Layer = next()
		case "RECT":
			v, err := strconv.ParseInt(next(), 10, 64)
			if err != nil {
				return p, fmt.Errorf("lef: bad rect in %s/%s", macro, p.Name)
			}
			p.OffsetNm = v
			// consume remaining three coordinates
			next()
			next()
			next()
		case "END":
			if peek() == p.Name {
				next()
				return p, nil
			}
			// Bare END closes the PORT block; keep scanning the pin.
		case "":
			return p, fmt.Errorf("lef: unexpected EOF in pin %s/%s", macro, p.Name)
		}
	}
}
