package lef

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/tech"
)

var (
	ffetLib = cell.NewLibrary(tech.NewFFET())
	cfetLib = cell.NewLibrary(tech.NewCFET())
)

func TestWriteParseRoundTripFFET(t *testing.T) {
	sides := SideConfig{}
	sides.Set("INVD1", "I", SideBack)
	sides.Set("NAND2D1", "A2", SideBack)
	var buf bytes.Buffer
	if err := Write(&buf, ffetLib, sides); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"SITE ffet_site", "MACRO INVD1", "SIDE BACK ;", "SIDE BOTH ;",
		"SIZE 0.100 BY 0.105 ;",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("LEF missing %q", want)
		}
	}
	lib, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(lib.Macros); got != 28 {
		t.Fatalf("parsed %d macros, want 28", got)
	}
	inv := lib.Macro("INVD1")
	if inv == nil {
		t.Fatal("INVD1 missing")
	}
	if inv.WidthNm != 100 || inv.HeightNm != 105 {
		t.Errorf("INVD1 size = %dx%d, want 100x105", inv.WidthNm, inv.HeightNm)
	}
	var iPin, zPin *MacroPin
	for i := range inv.Pins {
		switch inv.Pins[i].Name {
		case "I":
			iPin = &inv.Pins[i]
		case "ZN":
			zPin = &inv.Pins[i]
		}
	}
	if iPin == nil || zPin == nil {
		t.Fatalf("pins = %+v", inv.Pins)
	}
	if iPin.Side != SideBack {
		t.Errorf("I side = %v, want BACK (redistributed)", iPin.Side)
	}
	if iPin.Layer != "BM0" {
		t.Errorf("I layer = %q, want BM0 for a backside pin", iPin.Layer)
	}
	if zPin.Side != SideBoth {
		t.Errorf("ZN side = %v, want BOTH (Drain Merge)", zPin.Side)
	}
	nand := lib.Macro("NAND2D1")
	for _, p := range nand.Pins {
		want := SideFront
		switch p.Name {
		case "A2":
			want = SideBack
		case "ZN":
			want = SideBoth
		}
		if p.Side != want {
			t.Errorf("NAND2D1/%s side = %v, want %v", p.Name, p.Side, want)
		}
	}
	if lib.SiteWidth != 50 || lib.SiteHeight != 105 {
		t.Errorf("site = %dx%d", lib.SiteWidth, lib.SiteHeight)
	}
}

func TestCFETPinsAreFrontOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, cfetLib, SideConfig{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	lib, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, m := range lib.Macros {
		for _, p := range m.Pins {
			if p.Side != SideFront {
				t.Errorf("CFET %s/%s side = %v, want FRONT", m.Name, p.Name, p.Side)
			}
		}
	}
}

func TestCFETRejectsBacksideConfig(t *testing.T) {
	sides := SideConfig{}
	sides.Set("INVD1", "I", SideBack)
	var buf bytes.Buffer
	if err := Write(&buf, cfetLib, sides); err == nil {
		t.Fatal("backside pin on CFET must be rejected")
	}
}

func TestClockPinUse(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, ffetLib, SideConfig{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	lib, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	dff := lib.Macro("DFFD1")
	found := false
	for _, p := range dff.Pins {
		if p.Name == "CP" {
			found = true
			if p.Use != "CLOCK" {
				t.Errorf("CP use = %q, want CLOCK", p.Use)
			}
		}
	}
	if !found {
		t.Error("DFFD1 has no CP pin")
	}
}

func TestSideConfigDefaults(t *testing.T) {
	sc := SideConfig{}
	if got := sc.Get("INVD1", "I"); got != SideFront {
		t.Errorf("default side = %v, want FRONT", got)
	}
	sc.Set("INVD1", "I", SideBack)
	if got := sc.Get("INVD1", "I"); got != SideBack {
		t.Errorf("side = %v after Set", got)
	}
	if got := sc.Get("INVD1", "ZN"); got != SideFront {
		t.Errorf("unset pin side = %v", got)
	}
}

func TestParseSide(t *testing.T) {
	for s, want := range map[string]PinSide{"FRONT": SideFront, "BACK": SideBack, "BOTH": SideBoth} {
		got, err := ParseSide(s)
		if err != nil || got != want {
			t.Errorf("ParseSide(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSide("SIDEWAYS"); err == nil {
		t.Error("invalid side must error")
	}
}

func TestAllMacroPinCounts(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, ffetLib, SideConfig{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	lib, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, c := range ffetLib.Cells() {
		m := lib.Macro(c.Name)
		if m == nil {
			t.Errorf("macro %s missing", c.Name)
			continue
		}
		if got, want := len(m.Pins), len(c.Inputs)+1; got != want {
			t.Errorf("%s pin count = %d, want %d", c.Name, got, want)
		}
	}
}
