package core

import (
	"testing"

	"repro/internal/tech"
)

// TestFlowDeterministicDualSide guards run-to-run reproducibility of
// the flow with its concurrent front/back routing: netlist construction
// and every stage must iterate in canonical order (never map order),
// and the goroutine schedule must not be able to influence results.
// (Equivalence of concurrent vs. the seed's sequential routing was
// established by an old-vs-new differential at rewrite time; this test
// cannot see it, since both runs use the concurrent path. The sides
// stay disjoint tasks over independent grids — route.Router shares no
// state between instances.)
func TestFlowDeterministicDualSide(t *testing.T) {
	type snap struct {
		frontWL, backWL float64
		drvF, drvB      int
		vias            int
		freq, power     float64
	}
	run := func() snap {
		nl := smallCore(t, ffetLib)
		cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
		cfg.BackPinFraction = 0.5
		cfg.Seed = 4
		res, err := RunFlow(nl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return snap{
			frontWL: res.WirelenFrontUm, backWL: res.WirelenBackUm,
			drvF: res.DRVsFront, drvB: res.DRVsBack,
			vias: res.Vias, freq: res.AchievedFreqGHz, power: res.PowerUW,
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("flow not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}
