// Synth-diff forking: frequency-axis incremental sweeps.
//
// Neighboring frequency targets synthesize netlists that differ almost
// purely by drive resizing (the generator and buffering passes are
// target-independent), so most of a neighboring point's back end is
// recomputable from the completed neighbor instead of from scratch.
// ForkSynthDiff runs the child's own synthesis, establishes the resize
// correspondence with netlist.Diff, and — when the gates hold — re-stamps
// the parent's global placement over the child's netlist and hands the
// patched stage bodies the parent artifacts they can adopt: the
// legalization/refinement bases (with resized cells re-probed as moved),
// the partition's dense sink tables (changed nets recomputed), the routed
// trees (adopted whole when every pin gcell and the negotiation order are
// provably unchanged), the DEF nets sections, and the timing engine
// (re-stamped over the child's instances, re-propagating only dirtied
// cones). Every gate failure falls back to the normal stage body, so a
// diff fork is bit-identical to a from-scratch fork by construction —
// core.TestSynthDiffForkMatchesScratch holds both paths to the same
// artifacts byte for byte.
package core

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/def"
	"repro/internal/faultinject"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// SynthDiffMaxResizedFrac bounds the resized-instance fraction above which
// a synth diff is considered too large to patch: past it the changed-net
// closure touches most of the design and the patched path's bookkeeping
// costs more than it saves, so the fork falls back to the full pipeline.
// Tunable; see ROADMAP ("diff-size threshold tuning").
var SynthDiffMaxResizedFrac = 0.25

// SynthDiffStats reports which patched paths one synth-diff fork took.
// The struct returned by ForkSynthDiff is updated live as the child's
// stages execute; read it after the child's Run completes.
type SynthDiffStats struct {
	// DiffPath is set when the fork took the patched path (parent
	// placement re-stamped); Fallback then stays empty. When the gates
	// failed, DiffPath is false and Fallback says why — the returned child
	// is still a healthy session that simply runs the full pipeline.
	DiffPath bool
	Fallback string

	Resized     int // resized instances between the two synth netlists
	ChangedNets int // nets touching a resized instance

	// Per-stage adoption outcomes (meaningful only when DiffPath).
	PartitionPatched  bool
	RouteAdoptedFront bool
	RouteAdoptedBack  bool
	DEFNetsShared     int // sides whose DEF nets section was shared
	STARestamped      bool
}

// synthDiffState carries the parent artifacts the patched stage bodies
// consult. It is installed on the child by ForkSynthDiff and cleared at
// the end of StageSTA, so a long diff chain does not retain every
// ancestor's netlist and routing state.
type synthDiffState struct {
	resized     []int32 // resized instance Seqs (valid in both netlists)
	changedNets []int32 // net Seqs with a resized endpoint

	parentWork *netlist.Netlist // parent's final (post-CTS) netlist
	pa         *PinAssignment
	sides      *SideNets
	frontRes   *route.Result
	backRes    *route.Result
	frontDEF   *def.Design
	backDEF    *def.Design
	eng        *sta.Engine // parent's engine; re-stamped at StageSTA

	stats *SynthDiffStats
}

// ForkSynthDiff forks a completed parent toward a neighboring synthesis
// target through the netlist-diff path; see ForkSynthDiffCtx.
func (f *Flow) ForkSynthDiff(mutate func(*FlowConfig)) (*Flow, *SynthDiffStats, error) {
	return f.ForkSynthDiffCtx(context.Background(), mutate)
}

// ForkSynthDiffCtx forks the session under a mutated config whose delta
// re-runs synthesis (a frequency re-target), runs the child's synthesis,
// floorplan and powerplan, and — when the child's netlist is a bounded
// pure resize of the parent's and the floorplans coincide — re-stamps the
// parent's placement instead of re-placing, leaving the child positioned
// at StageCTS with the parent's partition/routing/DEF/STA state staged
// for adoption. Callers then Run the child normally.
//
// The returned stats say which path was taken. On any gate failure the
// child is still returned, healthy, and simply continues as a full
// from-scratch fork (its synthesis — the unavoidable cost — has already
// run); the error return is reserved for hard failures. Results are
// bit-identical between the two paths.
//
// The parent must be quiescent: a completed, valid, checkpointed session
// (the exp sweep and serve daemon chains satisfy this by construction).
func (f *Flow) ForkSynthDiffCtx(ctx context.Context, mutate func(*FlowConfig)) (*Flow, *SynthDiffStats, error) {
	st := &SynthDiffStats{}
	child, err := f.Fork(mutate)
	if err != nil {
		return nil, st, err
	}
	fallback := func(why string) (*Flow, *SynthDiffStats, error) {
		st.Fallback = why
		return child, st, nil
	}

	f.mu.Lock()
	ready := f.err == nil && !f.running && !f.halted && f.res.Reason == "" &&
		int(f.next) == NumStages && !f.noIncPlace &&
		f.synthSnap != nil && f.placeSnap != nil &&
		f.placeBasis != nil && f.refineBasis != nil &&
		f.staEng != nil && f.baseRC != nil
	f.mu.Unlock()
	if !ready {
		return fallback("parent is not a completed valid incremental checkpoint")
	}
	if child.NextStage() != StageSynth {
		return fallback("config delta does not re-run synthesis")
	}
	if diffDeltaBeyondSynth(f.cfg, child.cfg) {
		return fallback("config delta reaches past the synthesis stage")
	}

	// The unavoidable work: the child's own synthesis (plus the cheap
	// floorplan/powerplan), through the normal stage bodies.
	if err := child.RunToCtx(ctx, StagePowerplan); err != nil {
		return nil, st, err
	}
	if child.Halted() {
		return fallback("child halted before placement")
	}
	if err := faultinject.Fire("core.forkdiff.diff"); err != nil {
		return fallback(fmt.Sprintf("fault injected: %v", err))
	}

	d := netlist.Diff(f.synthSnap, child.synthSnap)
	st.Resized, st.ChangedNets = len(d.Resized), len(d.ChangedNets)
	if !d.ResizeOnly() {
		return fallback("synth netlists diverge structurally")
	}
	if n := len(child.synthSnap.Instances); n > 0 {
		if frac := float64(len(d.Resized)) / float64(n); frac > SynthDiffMaxResizedFrac {
			return fallback(fmt.Sprintf("diff too large: %.0f%% of instances resized", frac*100))
		}
	}
	if !samePlan(f.fp, child.fp) {
		return fallback("floorplans differ between the targets")
	}
	if err := faultinject.Fire("core.forkdiff.place"); err != nil {
		return fallback(fmt.Sprintf("fault injected: %v", err))
	}

	// Re-stamp the parent's global placement. Global placement models
	// cells at base-drive footprints (see place.Global), so over a
	// resize-only correspondence and an identical floorplan it is a pure
	// function of inputs the two runs share — the child's own StagePlace
	// would reproduce these exact positions.
	t0 := time.Now()
	for i, inst := range f.placeSnap.Instances {
		child.work.Instances[i].Pos = inst.Pos
	}
	for i, p := range f.placeSnap.Ports {
		child.work.Ports[i].Pos = p.Pos
	}
	child.placeSnap = child.work.Snapshot()
	// The parent's bases describe these positions at the parent's widths;
	// StageCTS declares width-diverged (resized) cells moved, so the delta
	// legalizer re-probes them and the refinement patch re-reads them.
	child.placeBasis = f.placeBasis
	child.refineBasis = f.refineBasis
	child.res.StageTimes[StagePlace] = time.Since(t0)

	child.baseRC = f.baseRC
	child.diff = &synthDiffState{
		resized:     d.Resized,
		changedNets: d.ChangedNets,
		parentWork:  f.work,
		pa:          f.pa,
		sides:       f.sides,
		frontRes:    f.frontRes,
		backRes:     f.backRes,
		frontDEF:    f.res.FrontDEF,
		backDEF:     f.res.BackDEF,
		eng:         f.staEng,
		stats:       st,
	}
	child.mu.Lock()
	child.next = StageCTS
	child.epoch++
	child.mu.Unlock()
	st.DiffPath = true
	return child, st, nil
}

// diffDeltaBeyondSynth reports whether two configs differ anywhere other
// than the fields StageSynth consumes (target frequency, synth options)
// and the cosmetic Name. Any other delta would invalidate adopting the
// parent's floorplan/placement/partition state.
func diffDeltaBeyondSynth(a, b FlowConfig) bool {
	a.Name, b.Name = "", ""
	a.TargetFreqGHz, b.TargetFreqGHz = 0, 0
	a.Synth, b.Synth = synth.Options{}, synth.Options{}
	return a != b
}

// samePlan reports structural floorplan equality: same core rectangle and
// row geometry (the fields every later stage reads).
func samePlan(a, b *floorplan.Plan) bool {
	return a != nil && b != nil && a.Core == b.Core && slices.Equal(a.Rows, b.Rows)
}

// tryPatchPartition rebuilds the Algorithm 1 partition by patching the
// parent's dense sink tables: unchanged nets share the parent's arenas
// and routing tasks outright, nets with a resized endpoint are recomputed
// exactly as Partition would. Returns nil (caller runs the full
// partition) when the pin-side assignment shifted with the re-sized
// master histogram or the netlists stopped corresponding.
func (d *synthDiffState) tryPatchPartition(f *Flow, pa *PinAssignment, pinAt func(netlist.PinRef) geom.Point) *SideNets {
	if faultinject.Fire("core.partition.patch") != nil {
		return nil
	}
	par, pw, cw := d.sides, d.parentWork, f.work
	if par == nil || pw == nil ||
		len(pw.Instances) != len(cw.Instances) || len(pw.Nets) != len(cw.Nets) {
		return nil
	}
	// The greedy pin-side fill is weighted by the design's master
	// histogram, which resizing shifts: adopting the parent's per-net data
	// is only sound when every (master, pin) class landed on the same side.
	if !samePinSides(d.pa, pa) {
		return nil
	}
	frontOK := f.cfg.Pattern.Front > 0
	backOK := f.cfg.Pattern.Back > 0
	if !frontOK && !backOK {
		return nil
	}
	changed := make([]bool, len(cw.Nets))
	for _, seq := range d.changedNets {
		if int(seq) >= len(changed) {
			return nil
		}
		changed[seq] = true
	}
	// Legalization displacement cascades past the resized cells: a grown
	// cell can push unresized row neighbors to new slots, moving pins of
	// nets the synth diff never touched. Any net with a position-changed
	// endpoint must be recomputed — its parent route.Net carries stale
	// coordinates.
	movedPos := make([]bool, len(cw.Instances))
	for i := range cw.Instances {
		if cw.Instances[i].Pos != pw.Instances[i].Pos {
			movedPos[i] = true
		}
	}
	for i := range cw.Ports {
		if cw.Ports[i].Pos != pw.Ports[i].Pos {
			return nil
		}
	}
	for _, n := range cw.Nets {
		if changed[n.Seq] {
			continue
		}
		hit := n.Driver.Inst != nil && movedPos[n.Driver.Inst.Seq]
		if !hit {
			for _, s := range n.Sinks {
				if s.Inst != nil && movedPos[s.Inst.Seq] {
					hit = true
					break
				}
			}
		}
		if hit {
			changed[n.Seq] = true
		}
	}
	pf := make([]*route.Net, len(cw.Nets))
	pb := make([]*route.Net, len(cw.Nets))
	for _, n := range par.Front {
		if n.Seq < 0 || n.Seq >= len(pf) {
			return nil
		}
		pf[n.Seq] = n
	}
	for _, n := range par.Back {
		if n.Seq < 0 || n.Seq >= len(pb) {
			return nil
		}
		pb[n.Seq] = n
	}
	// reroutedOf mirrors Partition's side-fallback accounting for one net.
	reroutedOf := func(n *netlist.Net) int {
		c := 0
		for _, s := range n.Sinks {
			side := tech.Front
			if !s.IsPort() {
				side = pa.Side(s.Inst.Cell.Name, s.Pin)
			}
			if side == tech.Back && !backOK {
				side = tech.Front
				c++
			}
			if side == tech.Front && !frontOK {
				c++
			}
		}
		return c
	}
	out := &SideNets{
		Front:     make([]*route.Net, 0, len(par.Front)),
		Back:      make([]*route.Net, 0, len(par.Back)),
		SinkIDs:   make([][]netlist.PinID, len(cw.Nets)),
		SinkCapFF: make([][]float64, len(cw.Nets)),
		SinkPos:   make([][]int32, len(cw.Nets)),
		SinkOrder: make([][]int32, len(cw.Nets)),
		Rerouted:  par.Rerouted,
	}
	var sideOf []tech.Side
	for _, n := range cw.Nets {
		if !changed[n.Seq] {
			out.SinkIDs[n.Seq] = par.SinkIDs[n.Seq]
			out.SinkCapFF[n.Seq] = par.SinkCapFF[n.Seq]
			out.SinkPos[n.Seq] = par.SinkPos[n.Seq]
			out.SinkOrder[n.Seq] = par.SinkOrder[n.Seq]
			if fn := pf[n.Seq]; fn != nil {
				out.Front = append(out.Front, fn)
			}
			if bn := pb[n.Seq]; bn != nil {
				out.Back = append(out.Back, bn)
			}
			continue
		}
		if n.Driver == (netlist.PinRef{}) {
			return nil // the full partition surfaces the proper error
		}
		// Recompute this net exactly as Partition's loop body does, minus
		// the parent's contribution to the fallback counter.
		out.Rerouted -= reroutedOf(pw.Nets[n.Seq])
		k := len(n.Sinks)
		ids := make([]netlist.PinID, 0, k)
		caps := make([]float64, 0, k)
		sideOf = sideOf[:0]
		nFront, nBack := 0, 0
		for _, s := range n.Sinks {
			capFF := 1.0
			side := tech.Front
			if !s.IsPort() {
				capFF = s.Inst.Cell.InputCap(s.Pin)
				side = pa.Side(s.Inst.Cell.Name, s.Pin)
			}
			ids = append(ids, s.ID())
			caps = append(caps, capFF)
			if side == tech.Back && !backOK {
				side = tech.Front
				out.Rerouted++
			}
			if side == tech.Front && !frontOK {
				side = tech.Back
				out.Rerouted++
			}
			if side == tech.Back {
				nBack++
			} else {
				nFront++
			}
			sideOf = append(sideOf, side)
		}
		out.SinkIDs[n.Seq] = ids
		out.SinkCapFF[n.Seq] = caps
		out.SinkOrder[n.Seq] = sortSinksByLegacyName(make([]int32, 0, k), n.Sinks)
		drv := route.Pin{ID: n.Driver.ID(), At: pinAt(n.Driver), Driver: true}
		var frontPins, backPins []route.Pin
		if nFront > 0 {
			frontPins = append(make([]route.Pin, 0, nFront+1), drv)
		}
		if nBack > 0 {
			backPins = append(make([]route.Pin, 0, nBack+1), drv)
		}
		pos := make([]int32, 0, k)
		for i, s := range n.Sinks {
			p := route.Pin{ID: ids[i], At: pinAt(s), CapFF: caps[i]}
			if sideOf[i] == tech.Back {
				pos = append(pos, int32(len(backPins))<<1|1)
				backPins = append(backPins, p)
			} else {
				pos = append(pos, int32(len(frontPins))<<1)
				frontPins = append(frontPins, p)
			}
		}
		out.SinkPos[n.Seq] = pos
		if nFront > 0 {
			out.Front = append(out.Front, &route.Net{Name: n.Name, Seq: n.Seq, Pins: frontPins})
		}
		if nBack > 0 {
			out.Back = append(out.Back, &route.Net{Name: n.Name, Seq: n.Seq, Pins: backPins})
		}
	}
	return out
}

// samePinSides compares two pin-side assignments for exact equality.
func samePinSides(a, b *PinAssignment) bool {
	if a == nil || b == nil || len(a.sides) != len(b.sides) {
		return false
	}
	for k, v := range a.sides {
		if bv, ok := b.sides[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// tryAdoptRoute adopts the parent's routed result for one side when the
// routing computation is provably identical: the router consumes only pin
// gcells (search, MST, pin blockage) and the (hpwl, name) negotiation
// order, so if every pin's gcell and the order are unchanged, every
// committed edge — and hence every tree, layer assignment and overflow
// count — is bit-identical. The adopted trees are re-pointed at the
// child's pin slices (exact positions and sink caps differ on resized
// nets; extraction reads them from Tree.Pins).
func (d *synthDiffState) tryAdoptRoute(f *Flow, side tech.Side, childNets []*route.Net, ropt route.Options) (*route.Result, bool) {
	if faultinject.Fire("core.route.adopt") != nil {
		return nil, false
	}
	var parNets []*route.Net
	var parRes *route.Result
	if side == tech.Back {
		parNets, parRes = d.sides.Back, d.backRes
	} else {
		parNets, parRes = d.sides.Front, d.frontRes
	}
	if len(childNets) != len(parNets) {
		return nil, false
	}
	if len(childNets) == 0 {
		return nil, parRes == nil
	}
	if parRes == nil {
		return nil, false
	}
	// Replicate the router's gcell quantization (grid dims + clamping).
	gc := ropt.GCellNm
	if gc <= 0 {
		return nil, false
	}
	core := f.fp.Core
	w := int((core.W() + gc - 1) / gc)
	h := int((core.H() + gc - 1) / gc)
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	cellOf := func(p geom.Point) (int64, int64) {
		return geom.Clamp64(p.X/gc, 0, int64(w-1)), geom.Clamp64(p.Y/gc, 0, int64(h-1))
	}
	for i, cn := range childNets {
		pn := parNets[i]
		if cn.Seq != pn.Seq || cn.Name != pn.Name || len(cn.Pins) != len(pn.Pins) {
			return nil, false
		}
		if cn == pn {
			continue // shared by the partition patch: trivially identical
		}
		for j := range cn.Pins {
			cp, pp := &cn.Pins[j], &pn.Pins[j]
			if cp.ID != pp.ID || cp.Driver != pp.Driver {
				return nil, false
			}
			cx, cy := cellOf(cp.At)
			px, py := cellOf(pp.At)
			if cx != px || cy != py {
				return nil, false
			}
		}
	}
	// The negotiation order is the (hpwl, name) sort over exact pin
	// positions; a resized pin can shift a net's hpwl. Identical gcells
	// only imply identical routing if the order sequence is unchanged.
	co := routeOrderIdx(childNets)
	po := routeOrderIdx(parNets)
	for i := range co {
		if co[i] != po[i] {
			return nil, false
		}
	}
	res := &route.Result{
		Side:        parRes.Side,
		Trees:       make([]*route.Tree, len(parRes.Trees)),
		WirelenNm:   parRes.WirelenNm,
		ByLayerNm:   parRes.ByLayerNm,
		ViaCount:    parRes.ViaCount,
		DRVs:        parRes.DRVs,
		MaxOverflow: parRes.MaxOverflow,
		GridW:       parRes.GridW,
		GridH:       parRes.GridH,
	}
	store := make([]route.Tree, len(childNets))
	for i, cn := range childNets {
		pt := parRes.Tree(cn.Seq)
		if pt == nil {
			return nil, false
		}
		store[i] = *pt
		store[i].Pins = cn.Pins
		res.Trees[cn.Seq] = &store[i]
	}
	return res, true
}

// routeOrderIdx returns the side's nets' indices in routing order — the
// same (hpwl, name) total order Router.Run sorts by.
func routeOrderIdx(nets []*route.Net) []int32 {
	hpwl := make([]int64, len(nets))
	idx := make([]int32, len(nets))
	var pts []geom.Point
	for i, n := range nets {
		pts = pts[:0]
		for _, p := range n.Pins {
			pts = append(pts, p.At)
		}
		hpwl[i] = geom.HPWL(pts)
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if hpwl[i] != hpwl[j] {
			return hpwl[i] < hpwl[j]
		}
		return nets[i].Name < nets[j].Name
	})
	return idx
}
