package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cts"
	"repro/internal/tech"
)

// TestFlowRunToMatchesGolden drives the staged pipeline checkpoint by
// checkpoint (RunTo at several stage boundaries, then completion) over
// every golden config and holds the assembled result to the same
// artifacts the monolithic RunFlow is locked to: the stage split must
// not be observable in a single byte of DEF text or any metric ULP.
func TestFlowRunToMatchesGolden(t *testing.T) {
	for _, gc := range goldenConfigs {
		t.Run(gc.name, func(t *testing.T) {
			lib := ffetLib
			if gc.arch == tech.CFET {
				lib = cfetLib
			}
			nl := smallCore(t, lib)
			cfg := DefaultFlowConfig(gc.pattern, gc.tgt, gc.util)
			cfg.BackPinFraction = gc.bp
			cfg.Seed = gc.seed
			f, err := NewFlow(nl, cfg)
			if err != nil {
				t.Fatalf("NewFlow: %v", err)
			}
			// Resume in chunks across the two netlist-mutation
			// checkpoints and the analysis tail.
			for _, stop := range []Stage{StagePowerplan, StageCTS, StageRoute, StagePower} {
				if err := f.RunTo(stop); err != nil {
					t.Fatalf("RunTo(%v): %v", stop, err)
				}
			}
			if got := f.NextStage(); int(got) != NumStages {
				t.Fatalf("NextStage = %v after full run", got)
			}
			got := flowArtifact(t, f.Result())
			want, err := os.ReadFile(filepath.Join("testdata", "golden_"+gc.name+".txt"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("staged pipeline drifted from golden:\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestFlowRunToIsIdempotent locks the checkpoint contract: re-running to
// an already-reached stage must execute nothing (the working netlist and
// stage outputs are the same objects).
func TestFlowRunToIsIdempotent(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
	cfg.BackPinFraction = 0.5
	cfg.Seed = 4
	f, err := NewFlow(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunTo(StageCTS); err != nil {
		t.Fatal(err)
	}
	work, fp := f.work, f.fp
	if err := f.RunTo(StageCTS); err != nil {
		t.Fatal(err)
	}
	if f.work != work || f.fp != fp {
		t.Error("RunTo to a reached stage re-executed work")
	}
	if !f.Done(StageCTS) || f.Done(StagePartition) {
		t.Errorf("Done reporting wrong: cts=%v partition=%v", f.Done(StageCTS), f.Done(StagePartition))
	}
	if got := f.NextStage(); got != StagePartition {
		t.Fatalf("NextStage = %v, want %v", got, StagePartition)
	}
}

// forkCase is one config mutation and the stage the fork must resume at.
type forkCase struct {
	name   string
	mutate func(*FlowConfig)
	resume Stage
}

var forkCases = []forkCase{
	{"backpins", func(c *FlowConfig) { c.BackPinFraction = 0.16 }, StagePartition},
	{"util", func(c *FlowConfig) { c.Utilization = 0.68 }, StageFloorplan},
	{"pattern", func(c *FlowConfig) { c.Pattern = tech.Pattern{Front: 8, Back: 4} }, StagePowerplan},
	{"seed", func(c *FlowConfig) { c.Seed = 7 }, StagePlace},
	// Resuming at StageCTS is the one fork path that consumes the
	// post-global-placement checkpoint (placeSnap.Snapshot).
	{"cts", func(c *FlowConfig) { c.CTS = cts.Options{MaxLeafFanout: 12, BufferDrive: 4} }, StageCTS},
	{"target", func(c *FlowConfig) { c.TargetFreqGHz = 2.0 }, StageSynth},
	{"maxdrvs", func(c *FlowConfig) { c.MaxDRVs = 1 }, StageRoute},
	{"identity", func(c *FlowConfig) { c.Name = "renamed" }, Stage(NumStages)},
}

// TestFlowForkMatchesScratch is the fork-correctness contract: for every
// kind of config delta, a session forked off a fully-run parent must
// produce a result byte-identical (flowArtifact: every metric at full
// precision + DEF SHA-256s) to a from-scratch run of the mutated config
// — and must actually resume at the documented stage, sharing the
// parent's prefix objects.
func TestFlowForkMatchesScratch(t *testing.T) {
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5
	base.Seed = 1
	parent, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Run(); err != nil {
		t.Fatal(err)
	}

	for _, fc := range forkCases {
		t.Run(fc.name, func(t *testing.T) {
			child, err := parent.Fork(fc.mutate)
			if err != nil {
				t.Fatal(err)
			}
			if child.next != fc.resume && !(int(fc.resume) == NumStages && int(child.next) == NumStages) {
				t.Fatalf("fork resumes at %v, want %v", child.next, fc.resume)
			}
			// Prefix objects must be shared, not recomputed.
			if fc.resume > StageFloorplan && child.fp != parent.fp {
				t.Error("floorplan not shared across fork")
			}
			if fc.resume > StageCTS && child.work != parent.work {
				t.Error("post-CTS netlist not shared across fork")
			}
			if fc.resume <= StageCTS && fc.resume > StageSynth && child.work == parent.work {
				t.Error("fork into a mutating stage must not share the live netlist")
			}
			got, err := child.Run()
			if err != nil {
				t.Fatal(err)
			}

			scratchCfg := base
			fc.mutate(&scratchCfg)
			want, err := RunFlow(smallCore(t, ffetLib), scratchCfg)
			if err != nil {
				t.Fatal(err)
			}
			if ga, wa := flowArtifact(t, got), flowArtifact(t, want); ga != wa {
				t.Errorf("forked run differs from scratch run:\n--- scratch\n%s--- forked\n%s", wa, ga)
			}
		})
	}
}

// TestFlowForkChain exercises the sweep topology exp uses: a root run to
// StageSynth, per-utilization parents forked to StageCTS, per-fraction
// children — two levels of sharing — all byte-identical to scratch.
func TestFlowForkChain(t *testing.T) {
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0
	root, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.RunTo(StageSynth); err != nil {
		t.Fatal(err)
	}
	for _, util := range []float64{0.70, 0.72} {
		mid, err := root.Fork(func(c *FlowConfig) { c.Utilization = util })
		if err != nil {
			t.Fatal(err)
		}
		if err := mid.RunTo(StageCTS); err != nil {
			t.Fatal(err)
		}
		for _, bp := range []float64{0.5, 0.16} {
			leaf, err := mid.Fork(func(c *FlowConfig) { c.BackPinFraction = bp })
			if err != nil {
				t.Fatal(err)
			}
			got, err := leaf.Run()
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Utilization = util
			cfg.BackPinFraction = bp
			want, err := RunFlow(smallCore(t, ffetLib), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ga, wa := flowArtifact(t, got), flowArtifact(t, want); ga != wa {
				t.Errorf("util %.2f bp %.2f: chained fork differs from scratch:\n--- scratch\n%s--- forked\n%s",
					util, bp, wa, ga)
			}
		}
	}
}

// TestFlowForkParentUnaffected runs children off a parent mid-pipeline,
// then finishes the parent and holds it to its golden artifact: forking
// must never perturb the session being forked.
func TestFlowForkParentUnaffected(t *testing.T) {
	gc := goldenConfigs[0] // ffet_fm12bm12_bp50
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(gc.pattern, gc.tgt, gc.util)
	cfg.BackPinFraction = gc.bp
	cfg.Seed = gc.seed
	parent, err := NewFlow(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(StageCTS); err != nil {
		t.Fatal(err)
	}
	for _, bp := range []float64{0.04, 0.3} {
		child, err := parent.Fork(func(c *FlowConfig) { c.BackPinFraction = bp })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := child.Run(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := parent.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := flowArtifact(t, res)
	want, err := os.ReadFile(filepath.Join("testdata", "golden_"+gc.name+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("parent drifted from golden after forking children:\n--- want\n%s--- got\n%s", want, got)
	}
}

// TestFlowForkFromHaltedParent covers invalid-run inheritance: a parent
// halted by an infeasible powerplan hands the halt to children whose
// delta only touches later stages, while a delta at or before the
// halting stage re-runs it — both matching scratch runs exactly.
func TestFlowForkFromHaltedParent(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.92)
	cfg.BackPinFraction = 0.5
	parent, err := NewFlow(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := parent.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid || res.Reason == "" {
		t.Fatalf("92%% utilization should be tap-infeasible, got valid=%v reason=%q", res.Valid, res.Reason)
	}

	// Delta after the halting stage: the child inherits the halt.
	child, err := parent.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.16 })
	if err != nil {
		t.Fatal(err)
	}
	got, err := child.Run()
	if err != nil {
		t.Fatal(err)
	}
	scratchCfg := cfg
	scratchCfg.BackPinFraction = 0.16
	want, err := RunFlow(smallCore(t, ffetLib), scratchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ga, wa := flowArtifact(t, got), flowArtifact(t, want); ga != wa {
		t.Errorf("halted fork differs from scratch:\n--- scratch\n%s--- forked\n%s", wa, ga)
	}

	// Delta at an earlier stage: the child re-runs and becomes valid.
	fixed, err := parent.Fork(func(c *FlowConfig) { c.Utilization = 0.70 })
	if err != nil {
		t.Fatal(err)
	}
	fres, err := fixed.Run()
	if err != nil {
		t.Fatal(err)
	}
	fixedCfg := cfg
	fixedCfg.Utilization = 0.70
	fwant, err := RunFlow(smallCore(t, ffetLib), fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fres.Valid {
		t.Errorf("lowered-utilization fork still invalid: %q", fres.Reason)
	}
	if ga, wa := flowArtifact(t, fres), flowArtifact(t, fwant); ga != wa {
		t.Errorf("recovered fork differs from scratch:\n--- scratch\n%s--- forked\n%s", wa, ga)
	}
}

// TestFlowStageTimes checks the per-stage timing satellite: a complete
// run records a time for every stage, and a forked child inherits the
// prefix entries it did not re-run.
func TestFlowStageTimes(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
	cfg.BackPinFraction = 0.5
	cfg.Seed = 4
	f, err := NewFlow(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for s := StageSynth; int(s) < NumStages; s++ {
		if res.StageTimes[s] <= 0 {
			t.Errorf("stage %v recorded no time", s)
		}
	}
	child, err := f.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.3 })
	if err != nil {
		t.Fatal(err)
	}
	cres, err := child.Run()
	if err != nil {
		t.Fatal(err)
	}
	for s := StageSynth; s < StagePartition; s++ {
		if cres.StageTimes[s] != res.StageTimes[s] {
			t.Errorf("stage %v time not inherited across fork", s)
		}
	}
}

// TestFlowForkRejectsBadConfig ensures a fork mutation passes the same
// validation as a fresh session.
func TestFlowForkRejectsBadConfig(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	cfg.BackPinFraction = 0.5
	f, err := NewFlow(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fork(func(c *FlowConfig) { c.Pattern = tech.Pattern{Front: 12} }); err == nil {
		t.Fatal("fork to a frontside-only pattern with backside pins must be rejected")
	}
}
