package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/riscv"
	"repro/internal/synth"
	"repro/internal/tech"
)

// completedFlow builds and fully runs a session over nl.
func completedFlow(t *testing.T, cfg FlowConfig, scale string) *Flow {
	t.Helper()
	var f *Flow
	var err error
	if scale == "riscv" {
		nl, _, gerr := riscv.Generate(ffetLib, riscv.Config{Name: "diffbase", Registers: 16})
		if gerr != nil {
			t.Fatal(gerr)
		}
		f, err = NewFlow(nl, cfg)
	} else {
		f, err = NewFlow(smallCore(t, ffetLib), cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res, err := f.Run(); err != nil {
		t.Fatal(err)
	} else if !res.Valid {
		t.Fatalf("base run invalid: %s", res.Reason)
	}
	return f
}

// diffVsScratch forks parent both ways under the same mutation, runs both
// children to completion and requires byte-identical artifacts (every
// FlowResult metric at full precision plus the DEF SHA-256s).
func diffVsScratch(t *testing.T, parent *Flow, mutate func(*FlowConfig)) (*Flow, *SynthDiffStats) {
	t.Helper()
	diffChild, st, err := parent.ForkSynthDiff(mutate)
	if err != nil {
		t.Fatalf("ForkSynthDiff: %v", err)
	}
	scratch, err := parent.Fork(mutate)
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	// The scratch arm re-runs the full pipeline from StageSynth with no
	// inherited placement/partition/route/STA state.
	scratch.SetIncrementalPlacement(false)
	dres, err := diffChild.Run()
	if err != nil {
		t.Fatalf("diff child run: %v", err)
	}
	sres, err := scratch.Run()
	if err != nil {
		t.Fatalf("scratch child run: %v", err)
	}
	da, sa := flowArtifact(t, dres), flowArtifact(t, sres)
	if da != sa {
		t.Errorf("diff fork diverged from scratch fork (stats %+v)\n--- diff\n%s--- scratch\n%s", st, da, sa)
	}
	return diffChild, st
}

// TestSynthDiffForkMatchesScratch is the tentpole property test: across
// neighboring-target pairs — resize-free, genuinely resized, chained,
// fallback-distance and topology-changed — the synth-diff fork's complete
// artifact set is byte-identical to a from-scratch fork's.
func TestSynthDiffForkMatchesScratch(t *testing.T) {
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 2.0, 0.72)
	cfg.BackPinFraction = 0.5
	parent := completedFlow(t, cfg, "riscv")

	t.Run("degenerate_resize_free", func(t *testing.T) {
		// Tiny re-target: synthesis re-runs but picks identical drives;
		// the whole back end is adopted.
		_, st := diffVsScratch(t, parent, func(c *FlowConfig) { c.TargetFreqGHz = 2.005 })
		if !st.DiffPath || st.Resized != 0 {
			t.Errorf("want resize-free diff path, got %+v", st)
		}
		if !st.PartitionPatched || !st.RouteAdoptedFront || !st.RouteAdoptedBack ||
			st.DEFNetsShared != 2 || !st.STARestamped {
			t.Errorf("resize-free diff should adopt everything: %+v", st)
		}
	})

	var chained *Flow
	t.Run("resized_neighbors", func(t *testing.T) {
		for _, tgt := range []float64{2.02, 2.06, 2.1} {
			child, st := diffVsScratch(t, parent, func(c *FlowConfig) { c.TargetFreqGHz = tgt })
			if !st.DiffPath {
				t.Errorf("tgt %v: expected diff path, fell back: %q", tgt, st.Fallback)
				continue
			}
			if st.Resized == 0 || !st.PartitionPatched || !st.STARestamped {
				t.Errorf("tgt %v: expected resized diff with patched partition + restamped STA: %+v", tgt, st)
			}
			chained = child
		}
	})

	t.Run("chained", func(t *testing.T) {
		// A completed diff child is itself a diffable checkpoint: chain a
		// second hop off it (its legalization basis still carries the
		// grandparent's widths — DivergedWidthSeqs covers the superset).
		if chained == nil {
			t.Skip("no diff child to chain from")
		}
		_, st := diffVsScratch(t, chained, func(c *FlowConfig) { c.TargetFreqGHz = 2.12 })
		if !st.DiffPath {
			t.Errorf("chained hop fell back: %q", st.Fallback)
		}
	})

	t.Run("fallback_far_target", func(t *testing.T) {
		// A coarse re-target grows the cell area enough to move the
		// floorplan: the fork must fall back and still match scratch.
		_, st := diffVsScratch(t, parent, func(c *FlowConfig) { c.TargetFreqGHz = 1.5 })
		if st.DiffPath {
			t.Errorf("far target should fall back, got %+v", st)
		}
	})

	t.Run("fallback_topology_change", func(t *testing.T) {
		// A synthesis-option change rebuilds different buffer trees: the
		// netlists diverge structurally and the diff gate must refuse.
		_, st := diffVsScratch(t, parent, func(c *FlowConfig) {
			c.Synth = defaultSynthWith(c.TargetFreqGHz, 4)
		})
		if st.DiffPath {
			t.Errorf("topology change should fall back, got %+v", st)
		}
	})

	t.Run("fallback_delta_beyond_synth", func(t *testing.T) {
		// A delta that also moves a later-stage knob (utilization) cannot
		// adopt the parent's floorplan-derived state.
		_, st := diffVsScratch(t, parent, func(c *FlowConfig) {
			c.TargetFreqGHz = 2.02
			c.Utilization = 0.68
		})
		if st.DiffPath {
			t.Errorf("cross-stage delta should fall back, got %+v", st)
		}
	})
}

func defaultSynthWith(tgt float64, maxFanout int) synth.Options {
	o := synth.DefaultOptions(tgt)
	o.MaxFanout = maxFanout
	return o
}

// TestSynthDiffForkFaultFallback drives an injected fault into each
// diff/patch boundary and requires the run to degrade to the equivalent
// full computation with bit-identical artifacts.
func TestSynthDiffForkFaultFallback(t *testing.T) {
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 2.0, 0.70)
	cfg.BackPinFraction = 0.5
	parent := completedFlow(t, cfg, "small")
	mutate := func(c *FlowConfig) { c.TargetFreqGHz = 2.001 }

	cases := []struct {
		site  string
		check func(t *testing.T, st *SynthDiffStats)
	}{
		{"core.forkdiff.diff", func(t *testing.T, st *SynthDiffStats) {
			if st.DiffPath || st.Fallback == "" {
				t.Errorf("diff-gate fault must force fallback: %+v", st)
			}
		}},
		{"core.forkdiff.place", func(t *testing.T, st *SynthDiffStats) {
			if st.DiffPath || st.Fallback == "" {
				t.Errorf("place-gate fault must force fallback: %+v", st)
			}
		}},
		{"core.partition.patch", func(t *testing.T, st *SynthDiffStats) {
			if !st.DiffPath || st.PartitionPatched {
				t.Errorf("partition fault must run the full partition on the diff path: %+v", st)
			}
		}},
		{"core.route.adopt", func(t *testing.T, st *SynthDiffStats) {
			if !st.DiffPath || st.RouteAdoptedFront || st.RouteAdoptedBack || st.DEFNetsShared != 0 {
				t.Errorf("route fault must re-route both sides: %+v", st)
			}
		}},
		{"core.sta.restamp", func(t *testing.T, st *SynthDiffStats) {
			if !st.DiffPath || st.STARestamped {
				t.Errorf("restamp fault must rebuild the engine: %+v", st)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			deactivate := faultinject.Activate(faultinject.New(1,
				faultinject.WithRate(1),
				faultinject.WithKinds(faultinject.Error),
				faultinject.WithSites(tc.site)))
			defer deactivate()
			_, st := diffVsScratch(t, parent, mutate)
			tc.check(t, st)
		})
	}
}

// TestSynthDiffForkConcurrent fans several diff forks off one completed
// parent concurrently (the daemon's warm-sweep shape) and checks each
// against a scratch fork. Run under -race in CI.
func TestSynthDiffForkConcurrent(t *testing.T) {
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 2.0, 0.70)
	cfg.BackPinFraction = 0.5
	parent := completedFlow(t, cfg, "small")

	targets := []float64{2.0005, 2.001, 2.005, 2.01}
	arts := make([]string, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child, st, err := parent.ForkSynthDiff(func(c *FlowConfig) { c.TargetFreqGHz = tgt })
			if err != nil {
				errs[i] = err
				return
			}
			if !st.DiffPath {
				errs[i] = fmt.Errorf("tgt %v fell back: %q", tgt, st.Fallback)
				return
			}
			res, err := child.Run()
			if err != nil {
				errs[i] = err
				return
			}
			arts[i] = flowArtifact(t, res)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tgt %v: %v", targets[i], err)
		}
	}
	for i, tgt := range targets {
		scratch, err := parent.Fork(func(c *FlowConfig) { c.TargetFreqGHz = tgt })
		if err != nil {
			t.Fatal(err)
		}
		scratch.SetIncrementalPlacement(false)
		res, err := scratch.Run()
		if err != nil {
			t.Fatal(err)
		}
		if sa := flowArtifact(t, res); sa != arts[i] {
			t.Errorf("tgt %v: concurrent diff fork diverged from scratch", tgt)
		}
	}
}
