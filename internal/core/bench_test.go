package core

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/powerplan"
	"repro/internal/route"
	"repro/internal/synth"
	"repro/internal/tech"
)

// BenchmarkBuildDEF measures rendering both per-side physical databases
// from a routed quick-scale design — the DEF serialization boundary
// where pin names are now resolved from packed PinIDs instead of being
// split out of "inst/pin" strings. The flow prefix (synthesis, floorplan,
// powerplan, placement, partition, routing) runs once outside the loop.
func BenchmarkBuildDEF(b *testing.B) {
	nl := smallCore(b, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
	cfg.BackPinFraction = 0.5
	st := ffetLib.Stack

	syn, err := synth.Run(nl, synth.DefaultOptions(cfg.TargetFreqGHz))
	if err != nil {
		b.Fatal(err)
	}
	work := syn.Netlist
	fp, err := floorplan.New(st, int64(float64(work.CellAreaNm2())*1.025), cfg.Utilization, cfg.AspectRatio)
	if err != nil {
		b.Fatal(err)
	}
	pp, err := powerplan.Plan(fp, cfg.Pattern)
	if err != nil {
		b.Fatal(err)
	}
	popt := place.DefaultOptions()
	popt.Seed = cfg.Seed
	place.Global(work, fp, popt)
	if err := place.Legalize(work, fp, pp.Blockages); err != nil {
		b.Fatal(err)
	}
	place.Refine(work, fp, pp.Blockages, 3)

	pa, err := AssignPins(ffetLib, cfg.BackPinFraction, cfg.Seed, work)
	if err != nil {
		b.Fatal(err)
	}
	pinAt := func(ref netlist.PinRef) geom.Point { return pinLocation(ref, fp) }
	sides, err := Partition(work, pa, cfg.Pattern, pinAt)
	if err != nil {
		b.Fatal(err)
	}
	ropt := route.DefaultOptions()
	runSide := func(side tech.Side, nets []*route.Net) *route.Result {
		r, err := route.NewRouter(fp.Core, side, st.SideRoutingLayers(cfg.Pattern, side), ropt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run(nets)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	frontRes := runSide(tech.Front, sides.Front)
	backRes := runSide(tech.Back, sides.Back)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = buildDEF(work, fp, pp, frontRes, tech.Front, cfg, nil)
		_ = buildDEF(work, fp, pp, backRes, tech.Back, cfg, nil)
	}
}
