package core

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/def"
	"repro/internal/tech"
)

// -update regenerates the golden artifacts. The committed files were
// captured before the PinID refactor (string pin identities), so a clean
// run proves the string-free flow emits bit-identical DEF text and
// FlowResult metrics.
var updateGolden = flag.Bool("update", false, "rewrite golden flow artifacts")

// goldenConfigs spans the paper's main knobs: dual-sided vs single-sided
// patterns, both architectures, several pin-density fractions and seeds.
var goldenConfigs = []struct {
	name    string
	arch    tech.Arch
	pattern tech.Pattern
	bp      float64
	tgt     float64
	util    float64
	seed    int64
}{
	{"ffet_fm12bm12_bp50", tech.FFET, tech.Pattern{Front: 12, Back: 12}, 0.5, 1.5, 0.70, 1},
	{"ffet_fm6bm6_bp50", tech.FFET, tech.Pattern{Front: 6, Back: 6}, 0.5, 1.5, 0.72, 4},
	{"ffet_fm12_front", tech.FFET, tech.Pattern{Front: 12}, 0, 1.5, 0.70, 2},
	{"cfet_fm12", tech.CFET, tech.Pattern{Front: 12}, 0, 1.5, 0.70, 1},
	{"ffet_fm8bm4_bp16", tech.FFET, tech.Pattern{Front: 8, Back: 4}, 0.16, 2.0, 0.68, 3},
}

// flowArtifact renders the run's complete observable outcome: every
// FlowResult metric at full float precision plus the SHA-256 of the
// front, back and merged DEF texts (the DEFs themselves are too large to
// commit per config; the hash pins them byte-for-byte).
func flowArtifact(t *testing.T, res *FlowResult) string {
	t.Helper()
	var b strings.Builder
	g := func(k string, v float64) { fmt.Fprintf(&b, "%s %.17g\n", k, v) }
	d := func(k string, v int) { fmt.Fprintf(&b, "%s %d\n", k, v) }
	fmt.Fprintf(&b, "valid %v\n", res.Valid)
	fmt.Fprintf(&b, "reason %q\n", res.Reason)
	g("core_area_um2", res.CoreAreaUm2)
	fmt.Fprintf(&b, "core_wh_nm %d %d\n", res.CoreW, res.CoreH)
	g("real_util", res.RealUtilization)
	g("cell_area_um2", res.CellAreaUm2)
	g("hpwl_um", res.HPWLUm)
	g("wirelen_front_um", res.WirelenFrontUm)
	g("wirelen_back_um", res.WirelenBackUm)
	d("drvs_front", res.DRVsFront)
	d("drvs_back", res.DRVsBack)
	d("vias", res.Vias)
	d("cts_buffers", res.CTSBuffers)
	d("synth_buffers", res.SynthBuffers)
	d("rerouted", res.Rerouted)
	g("achieved_ghz", res.AchievedFreqGHz)
	g("min_period_ps", res.MinPeriodPs)
	g("power_uw", res.PowerUW)
	g("eff_ghz_per_w", res.EffGHzPerW)
	fmt.Fprintf(&b, "pin_stats %d %d %d %d\n",
		res.PinStats.FrontNets, res.PinStats.BackNets,
		res.PinStats.FrontPins, res.PinStats.BackPins)
	hash := func(k string, dd *def.Design) {
		if dd == nil {
			// Halted runs carry no DEF artifacts; keep the row so
			// partial results stay comparable.
			fmt.Fprintf(&b, "%s_def nil\n", k)
			return
		}
		var buf bytes.Buffer
		if err := dd.Write(&buf); err != nil {
			t.Fatalf("write %s DEF: %v", k, err)
		}
		fmt.Fprintf(&b, "%s_def sha256:%x bytes:%d wirelen_nm:%d\n",
			k, sha256.Sum256(buf.Bytes()), buf.Len(), dd.TotalWirelengthNm())
	}
	hash("front", res.FrontDEF)
	hash("back", res.BackDEF)
	hash("merged", res.MergedDEF)
	return b.String()
}

// TestFlowGolden locks the flow's emitted DEF text and every FlowResult
// metric to artifacts captured before the string-free PinID refactor.
// Any byte of drift in the front/back/merged DEF or any metric ULP is a
// failure: the pin-identity representation must not be observable.
func TestFlowGolden(t *testing.T) {
	for _, gc := range goldenConfigs {
		t.Run(gc.name, func(t *testing.T) {
			lib := ffetLib
			if gc.arch == tech.CFET {
				lib = cfetLib
			}
			nl := smallCore(t, lib)
			cfg := DefaultFlowConfig(gc.pattern, gc.tgt, gc.util)
			cfg.BackPinFraction = gc.bp
			cfg.Seed = gc.seed
			res, err := RunFlow(nl, cfg)
			if err != nil {
				t.Fatalf("RunFlow: %v", err)
			}
			got := flowArtifact(t, res)
			path := filepath.Join("testdata", "golden_"+gc.name+".txt")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("flow artifact drifted from golden:\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestFrontBackDEFGoldenText keeps one full DEF pair as committed text
// (not just a hash) so drift is diffable: the smallest config's front and
// back DEF bodies, byte for byte.
func TestFrontBackDEFGoldenText(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.72)
	cfg.BackPinFraction = 0.5
	cfg.Seed = 4
	res, err := RunFlow(nl, cfg)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	for _, side := range []struct {
		name string
		d    *def.Design
	}{{"front", res.FrontDEF}, {"back", res.BackDEF}} {
		var buf bytes.Buffer
		if err := side.d.Write(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "golden_def_"+side.name+".def")
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s DEF text drifted from golden (%d vs %d bytes)",
				side.name, buf.Len(), len(want))
		}
	}
}
