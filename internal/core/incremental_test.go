package core

import (
	"sync"
	"testing"

	"repro/internal/tech"
)

// TestFlowForkIncrementalSTA pins the StageSTA checkpoint mechanics: a
// fully-run parent persists its timing engine, a child forked at
// StagePartition inherits an independent clone plus the parent's RC
// baseline, and the child's own STA takes the incremental cone path —
// while producing the same result a scratch run does (the byte-level
// comparison lives in TestFlowForkMatchesScratch; here we assert the
// mechanism actually engaged, so that test keeps meaning something).
func TestFlowForkIncrementalSTA(t *testing.T) {
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5
	parent, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Run(); err != nil {
		t.Fatal(err)
	}
	if parent.staEng == nil || parent.baseRC == nil {
		t.Fatal("completed parent must persist its timing engine and RC baseline")
	}
	fullCells := parent.staEng.Stats().RecomputedCells
	if fullCells == 0 {
		t.Fatal("parent's full analysis recomputed nothing?")
	}

	child, err := parent.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.16 })
	if err != nil {
		t.Fatal(err)
	}
	if child.staEng == nil {
		t.Fatal("child resuming at StagePartition did not inherit a timing basis")
	}
	if child.staEng == parent.staEng {
		t.Fatal("child must re-time on a clone, never the parent's own engine")
	}
	if _, err := child.Run(); err != nil {
		t.Fatal(err)
	}
	if !child.haveDirty {
		t.Fatal("child's StageExtract did not report a changed-net set")
	}
	if st := child.staEng.Stats(); !st.Incremental {
		t.Fatalf("child's STA did not take the incremental path: %+v", st)
	}

	// A delta that leaves routing untouched (MaxDRVs is only a validity
	// threshold) re-runs route -> extract deterministically, so the
	// re-extracted view is bit-identical: the diff must come back empty
	// and the re-timing must recompute no cones at all.
	clean, err := parent.Fork(func(c *FlowConfig) { c.MaxDRVs = 500 })
	if err != nil {
		t.Fatal(err)
	}
	if clean.NextStage() != StageRoute {
		t.Fatalf("MaxDRVs fork resumes at %v, want %v", clean.NextStage(), StageRoute)
	}
	if _, err := clean.Run(); err != nil {
		t.Fatal(err)
	}
	if !clean.haveDirty || len(clean.dirtyRC) != 0 {
		t.Fatalf("identical re-route must diff clean: haveDirty=%v dirty=%d",
			clean.haveDirty, len(clean.dirtyRC))
	}
	if st := clean.staEng.Stats(); !st.Incremental || st.RecomputedCells != 0 || st.RecomputedEndpoints != 0 {
		t.Fatalf("clean re-route still recomputed cones: %+v", st)
	}
	// Timing must nonetheless be exactly the parent's.
	if clean.res.MinPeriodPs != parent.res.MinPeriodPs ||
		clean.res.AchievedFreqGHz != parent.res.AchievedFreqGHz {
		t.Fatalf("clean re-time drifted: %.17g vs %.17g",
			clean.res.MinPeriodPs, parent.res.MinPeriodPs)
	}

	// A grandchild forks off the child's own post-STA state, not the
	// original parent's.
	grand, err := child.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.3 })
	if err != nil {
		t.Fatal(err)
	}
	if grand.staEng == nil || grand.staEng == child.staEng {
		t.Fatal("grandchild must inherit a fresh clone of the child's engine")
	}
	if _, err := grand.Run(); err != nil {
		t.Fatal(err)
	}
	if st := grand.staEng.Stats(); !st.Incremental {
		t.Fatalf("grandchild STA not incremental: %+v", st)
	}

	// The parent, by contrast, must not have been handed anyone's dirty
	// state: its session-level flags stay those of a base run.
	if parent.haveDirty {
		t.Fatal("parent picked up a child's dirty set")
	}

	// A child that will never re-time (its delta starts after StageSTA)
	// shares the parent's engine read-only instead of paying for a
	// clone — and still passes a valid basis to its own forks.
	pwr, err := parent.Fork(func(c *FlowConfig) { c.Power.Activity = 0.21 })
	if err != nil {
		t.Fatal(err)
	}
	if pwr.NextStage() != StagePower {
		t.Fatalf("power fork resumes at %v, want %v", pwr.NextStage(), StagePower)
	}
	if pwr.staEng != parent.staEng {
		t.Fatal("post-STA fork must share the engine, not clone it")
	}
	if _, err := pwr.Run(); err != nil {
		t.Fatal(err)
	}
	pg, err := pwr.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.04 })
	if err != nil {
		t.Fatal(err)
	}
	if pg.staEng == nil || pg.staEng == parent.staEng {
		t.Fatal("re-timing fork off a shared-engine child must clone")
	}
	if _, err := pg.Run(); err != nil {
		t.Fatal(err)
	}
	if st := pg.staEng.Stats(); !st.Incremental {
		t.Fatalf("grandchild of shared-engine child not incremental: %+v", st)
	}
}

// TestFlowForkMidPipelineBasis is the regression test for the stale-basis
// bug: a child that has re-extracted (new netRC) but not yet re-timed
// still holds an engine state computed under the parent's RC view, so a
// grandchild forked at that exact moment must diff against the parent's
// view, not the child's newer one — or cones dirtied by the child's own
// delta would silently keep the grandparent's arrivals.
func TestFlowForkMidPipelineBasis(t *testing.T) {
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5
	parent, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Run(); err != nil {
		t.Fatal(err)
	}

	child, err := parent.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.16 })
	if err != nil {
		t.Fatal(err)
	}
	// Stop exactly between StageExtract and StageSTA: child.netRC is the
	// BP0.16 view, but the inherited engine state is still over BP0.50.
	if err := child.RunTo(StageExtract); err != nil {
		t.Fatal(err)
	}
	grand, err := child.Fork(func(c *FlowConfig) { c.BackPinFraction = 0.3 })
	if err != nil {
		t.Fatal(err)
	}
	if grand.staEng == nil || grand.baseRC == nil {
		t.Fatal("grandchild lost the timing basis")
	}
	if &grand.baseRC[0] != &parent.netRC[0] {
		t.Fatal("grandchild basis must be the view the engine state was timed under (the parent's), not the child's newer extraction")
	}
	got, err := grand.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st := grand.staEng.Stats(); !st.Incremental {
		t.Fatalf("grandchild STA not incremental: %+v", st)
	}
	scratchCfg := base
	scratchCfg.BackPinFraction = 0.3
	want, err := RunFlow(smallCore(t, ffetLib), scratchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ga, wa := flowArtifact(t, got), flowArtifact(t, want); ga != wa {
		t.Errorf("mid-pipeline fork drifted from scratch:\n--- scratch\n%s--- forked\n%s", wa, ga)
	}
	// The halted-at-extract child can still finish correctly afterwards.
	res, err := child.Run()
	if err != nil {
		t.Fatal(err)
	}
	scratchCfg.BackPinFraction = 0.16
	want, err = RunFlow(smallCore(t, ffetLib), scratchCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ga, wa := flowArtifact(t, res), flowArtifact(t, want); ga != wa {
		t.Errorf("resumed child drifted from scratch:\n--- scratch\n%s--- forked\n%s", wa, ga)
	}
}

// TestConcurrentForkedRetiming is the race test for the clone-on-fork
// contract: several children forked off one completed parent re-time
// concurrently (each on its own engine clone, sharing only the immutable
// graph tables and the read-only netlist), and every result must match a
// from-scratch run of the same config. Run with -race to make the
// isolation claim meaningful.
func TestConcurrentForkedRetiming(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow test in -short mode")
	}
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5
	parent, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parent.Run(); err != nil {
		t.Fatal(err)
	}

	bps := []float64{0.4, 0.3, 0.16, 0.04}
	arts := make([]string, len(bps))
	errs := make([]error, len(bps))
	var wg sync.WaitGroup
	for i, bp := range bps {
		wg.Add(1)
		go func(i int, bp float64) {
			defer wg.Done()
			child, err := parent.Fork(func(c *FlowConfig) { c.BackPinFraction = bp })
			if err != nil {
				errs[i] = err
				return
			}
			res, err := child.Run()
			if err != nil {
				errs[i] = err
				return
			}
			if st := child.staEng.Stats(); !st.Incremental {
				t.Errorf("bp=%.2f: concurrent child not incremental: %+v", bp, st)
			}
			arts[i] = flowArtifact(t, res)
		}(i, bp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("bp=%.2f: %v", bps[i], err)
		}
	}
	for i, bp := range bps {
		cfg := base
		cfg.BackPinFraction = bp
		want, err := RunFlow(smallCore(t, ffetLib), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if wa := flowArtifact(t, want); arts[i] != wa {
			t.Errorf("bp=%.2f: concurrent forked run differs from scratch:\n--- scratch\n%s--- forked\n%s",
				bp, wa, arts[i])
		}
	}
}
