package core

import (
	"sync"
	"testing"

	"repro/internal/cts"
	"repro/internal/tech"
)

// TestFlowForkIncrementalPlacement pins the StagePlace checkpoint
// mechanics for placement: a checkpointed session retains the
// legalization + refinement bases, children forked at StageCTS share
// them by pointer, and their StageCTS goes through the delta legalizer —
// while producing results byte-identical to scratch runs with the fast
// path disabled (so SetIncrementalPlacement(false) really is the same
// flow, and the identity suite keeps meaning something).
func TestFlowForkIncrementalPlacement(t *testing.T) {
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5
	base.Seed = 1
	parent, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(StagePlace); err != nil {
		t.Fatal(err)
	}
	if parent.placeBasis == nil || parent.refineBasis == nil {
		t.Fatal("checkpointed session did not retain placement bases at StagePlace")
	}

	for _, mf := range []int{12, 8, 20} {
		child, err := parent.Fork(func(c *FlowConfig) {
			c.CTS = cts.Options{MaxLeafFanout: mf, BufferDrive: 4}
		})
		if err != nil {
			t.Fatal(err)
		}
		if child.next != StageCTS {
			t.Fatalf("CTS fork resumes at %v, want %v", child.next, StageCTS)
		}
		if child.placeBasis != parent.placeBasis || child.refineBasis != parent.refineBasis {
			t.Fatal("StageCTS fork must share the parent's placement bases")
		}
		got, err := child.Run()
		if err != nil {
			t.Fatal(err)
		}
		if child.placeDeltaHits != 1 {
			t.Fatalf("fanout %d: child took the delta path %d times, want 1", mf, child.placeDeltaHits)
		}

		cfg := base
		cfg.CTS = cts.Options{MaxLeafFanout: mf, BufferDrive: 4}
		scratch, err := NewFlow(smallCore(t, ffetLib), cfg)
		if err != nil {
			t.Fatal(err)
		}
		scratch.SetIncrementalPlacement(false)
		want, err := scratch.Run()
		if err != nil {
			t.Fatal(err)
		}
		if scratch.placeBasis != nil || scratch.placeDeltaHits != 0 {
			t.Fatal("SetIncrementalPlacement(false) must force the full replay path")
		}
		if ga, wa := flowArtifact(t, got), flowArtifact(t, want); ga != wa {
			t.Errorf("fanout %d: incremental fork differs from full-path scratch run:\n--- scratch\n%s--- forked\n%s",
				mf, wa, ga)
		}
	}
}

// TestFlowForkConcurrentIncrementalPlacement runs sibling CTS forks
// concurrently off one shared placement basis (the sweep-leader shape;
// meaningful under -race: the bases are shared read-only) and checks each
// against a sequential scratch run with the fast path off.
func TestFlowForkConcurrentIncrementalPlacement(t *testing.T) {
	nl := smallCore(t, ffetLib)
	base := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	base.BackPinFraction = 0.5
	base.Seed = 2
	parent, err := NewFlow(nl, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(StagePlace); err != nil {
		t.Fatal(err)
	}

	fanouts := []int{24, 16, 12, 8}
	children := make([]*Flow, len(fanouts))
	for i, mf := range fanouts {
		mf := mf
		child, err := parent.Fork(func(c *FlowConfig) {
			c.CTS = cts.Options{MaxLeafFanout: mf, BufferDrive: 4}
		})
		if err != nil {
			t.Fatal(err)
		}
		children[i] = child
	}
	var wg sync.WaitGroup
	errs := make([]error, len(children))
	for i, child := range children {
		wg.Add(1)
		go func(i int, child *Flow) {
			defer wg.Done()
			_, errs[i] = child.Run()
		}(i, child)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fanout %d: %v", fanouts[i], err)
		}
	}

	for i, mf := range fanouts {
		if children[i].placeDeltaHits != 1 {
			t.Errorf("fanout %d: delta path not taken", mf)
		}
		cfg := base
		cfg.CTS = cts.Options{MaxLeafFanout: mf, BufferDrive: 4}
		scratch, err := NewFlow(smallCore(t, ffetLib), cfg)
		if err != nil {
			t.Fatal(err)
		}
		scratch.SetIncrementalPlacement(false)
		want, err := scratch.Run()
		if err != nil {
			t.Fatal(err)
		}
		if ga, wa := flowArtifact(t, children[i].Result()), flowArtifact(t, want); ga != wa {
			t.Errorf("fanout %d: concurrent incremental fork differs from scratch:\n--- scratch\n%s--- forked\n%s",
				mf, wa, ga)
		}
	}
}
