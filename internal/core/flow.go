package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"repro/internal/cts"
	"repro/internal/def"
	"repro/internal/extract"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/powerplan"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// FlowConfig parameterizes one physical implementation + PPA run.
type FlowConfig struct {
	Name          string
	Pattern       tech.Pattern // routing layers per side (e.g. FM12BM12)
	TargetFreqGHz float64
	Utilization   float64
	AspectRatio   float64
	// BackPinFraction is the backside input-pin density ratio
	// (FP(1-x)BP(x)); must be 0 for CFET or frontside-only patterns.
	BackPinFraction float64
	Seed            int64
	// MaxDRVs is the validity rule: a P&R result is valid only if the
	// total design-rule violation count stays below this (paper: 10).
	MaxDRVs int

	// Stage options (zero values pick defaults).
	Synth synth.Options
	Place place.Options
	Route route.Options
	CTS   cts.Options
	STA   sta.Options
	Power power.Options
}

// DefaultFlowConfig returns the evaluation defaults for a target.
func DefaultFlowConfig(pattern tech.Pattern, targetGHz, util float64) FlowConfig {
	return FlowConfig{
		Pattern:       pattern,
		TargetFreqGHz: targetGHz,
		Utilization:   util,
		AspectRatio:   1.0,
		Seed:          1,
		MaxDRVs:       10,
	}
}

// FlowResult is the complete outcome of one run.
type FlowResult struct {
	Config FlowConfig
	Arch   tech.Arch

	Valid  bool
	Reason string // why the run is invalid, if it is

	// Physical metrics.
	CoreAreaUm2     float64
	CoreW, CoreH    int64 // nm
	RealUtilization float64
	CellAreaUm2     float64
	HPWLUm          float64
	WirelenFrontUm  float64
	WirelenBackUm   float64
	DRVsFront       int
	DRVsBack        int
	Vias            int
	CTSBuffers      int
	SynthBuffers    int
	Rerouted        int

	// PPA.
	AchievedFreqGHz float64
	MinPeriodPs     float64
	PowerUW         float64
	EffGHzPerW      float64

	// Artifacts.
	FrontDEF  *def.Design
	BackDEF   *def.Design
	MergedDEF *def.Design
	STA       *sta.Result
	Power     *power.Result
	PinStats  PartitionStats
}

// DRVs returns the total violation count.
func (r *FlowResult) DRVs() int { return r.DRVsFront + r.DRVsBack }

// RunFlow executes the full Fig. 7 framework over a technology-mapped
// netlist: synthesis sizing -> floorplan -> powerplan (BSPDN + Power Tap
// Cells) -> placement -> CTS -> Algorithm 1 partition -> dual-sided
// routing -> DEF merge -> dual-sided RC extraction -> STA -> power.
//
// Invalid runs (tap-cell placement violations or DRVs >= MaxDRVs) return a
// FlowResult with Valid=false rather than an error; errors indicate
// malformed inputs.
func RunFlow(nl *netlist.Netlist, cfg FlowConfig) (*FlowResult, error) {
	lib := nl.Lib
	st := lib.Stack
	if err := st.Validate(cfg.Pattern); err != nil {
		return nil, err
	}
	if cfg.BackPinFraction > 0 && cfg.Pattern.Back == 0 {
		return nil, fmt.Errorf("core: backside pins need backside routing layers")
	}
	if cfg.MaxDRVs <= 0 {
		cfg.MaxDRVs = 10
	}
	res := &FlowResult{Config: cfg, Arch: st.Arch}

	// --- Synthesis sizing --------------------------------------------------
	sopt := cfg.Synth
	if sopt.TargetFreqGHz == 0 {
		sopt = synth.DefaultOptions(cfg.TargetFreqGHz)
	}
	syn, err := synth.Run(nl, sopt)
	if err != nil {
		return nil, err
	}
	work := syn.Netlist
	res.SynthBuffers = syn.BuffersAdded

	// --- Floorplan ----------------------------------------------------------
	// Reserve ~2.5% headroom for clock tree buffers inserted after the
	// floorplan is frozen, so the requested utilization refers to the
	// post-CTS cell area (as the paper reports it).
	fpArea := int64(float64(work.CellAreaNm2()) * 1.025)
	fp, err := floorplan.New(st, fpArea, cfg.Utilization, cfg.AspectRatio)
	if err != nil {
		return nil, err
	}
	res.CoreAreaUm2 = fp.CoreAreaUm2()
	res.CoreW, res.CoreH = fp.Core.W(), fp.Core.H()
	res.CellAreaUm2 = work.CellAreaUm2()

	// --- Powerplan ------------------------------------------------------------
	pp, err := powerplan.Plan(fp, cfg.Pattern)
	if err != nil {
		return nil, err
	}
	if !pp.Feasible {
		res.Reason = pp.Reason
		return res, nil
	}

	// --- Placement + CTS ---------------------------------------------------------
	popt := cfg.Place
	if popt.GlobalIters == 0 {
		popt = place.DefaultOptions()
		popt.Seed = cfg.Seed
	}
	place.Global(work, fp, popt)
	copt := cfg.CTS
	if copt.MaxLeafFanout == 0 {
		copt = cts.DefaultOptions()
	}
	ctsRes, err := cts.Run(work, fp, copt)
	if err != nil {
		return nil, err
	}
	res.CTSBuffers = ctsRes.Buffers
	res.RealUtilization = float64(work.CellAreaNm2()) / float64(fp.Core.Area())
	if err := place.Legalize(work, fp, pp.Blockages); err != nil {
		res.Reason = fmt.Sprintf("placement violation: %v", err)
		return res, nil
	}
	place.Refine(work, fp, pp.Blockages, 3)
	res.HPWLUm = float64(place.HPWL(work, fp)) / 1000

	// --- Algorithm 1: pin redistribution + netlist partition -----------------------
	pa, err := AssignPins(lib, cfg.BackPinFraction, cfg.Seed, work)
	if err != nil {
		return nil, err
	}
	pinAt := func(ref netlist.PinRef) geom.Point { return pinLocation(ref, fp) }
	sides, err := Partition(work, pa, cfg.Pattern, pinAt)
	if err != nil {
		return nil, err
	}
	res.PinStats = sides.Stats()
	res.Rerouted = sides.Rerouted

	// --- Dual-sided routing ----------------------------------------------------------
	ropt := cfg.Route
	if ropt.GCellNm == 0 {
		ropt = route.DefaultOptions()
	}
	if st.Arch == tech.CFET && ropt.PinAccessFactor <= 1 {
		// Every CFET pin is reached from the single frontside through a
		// 4T-tall cell whose drain supervias block access tracks; the
		// FFET's symmetric structure removes these (Section II.B).
		ropt.PinAccessFactor = 1.5
	}
	// The two sides route concurrently: Algorithm 1 already split the
	// nets into disjoint per-side tasks over independent grids ("the
	// global & detailed routing are performed independently on both
	// sides"), so dual-sided routing is embarrassingly parallel and the
	// results are identical to routing the sides back to back.
	var (
		frontRes, backRes *route.Result
		frontErr, backErr error
		wg                sync.WaitGroup
	)
	runSide := func(side tech.Side, nets []*route.Net, out **route.Result, errOut *error) {
		defer wg.Done()
		layers := st.SideRoutingLayers(cfg.Pattern, side)
		r, err := route.NewRouter(fp.Core, side, layers, ropt)
		if err != nil {
			*errOut = err
			return
		}
		*out, *errOut = r.Run(nets)
	}
	if len(sides.Front) > 0 {
		wg.Add(1)
		go runSide(tech.Front, sides.Front, &frontRes, &frontErr)
	}
	if len(sides.Back) > 0 {
		wg.Add(1)
		go runSide(tech.Back, sides.Back, &backRes, &backErr)
	}
	wg.Wait()
	if frontErr != nil {
		return nil, frontErr
	}
	if backErr != nil {
		return nil, backErr
	}
	if frontRes != nil {
		res.DRVsFront = frontRes.DRVs
		res.WirelenFrontUm = float64(frontRes.WirelenNm) / 1000
		res.Vias += frontRes.ViaCount
	}
	if backRes != nil {
		res.DRVsBack = backRes.DRVs
		res.WirelenBackUm = float64(backRes.WirelenNm) / 1000
		res.Vias += backRes.ViaCount
	}
	if res.DRVs() >= cfg.MaxDRVs {
		res.Reason = fmt.Sprintf("routing violations: %d DRVs (front %d, back %d) >= %d",
			res.DRVs(), res.DRVsFront, res.DRVsBack, cfg.MaxDRVs)
		// Continue analysis anyway (the paper reports only valid points;
		// callers filter on Valid).
	}

	// --- DEF generation + merge ---------------------------------------------------------
	res.FrontDEF = buildDEF(work, fp, pp, frontRes, tech.Front, cfg)
	res.BackDEF = buildDEF(work, fp, pp, backRes, tech.Back, cfg)
	merged, err := def.Merge(work.Name, res.FrontDEF, res.BackDEF)
	if err != nil {
		return nil, err
	}
	res.MergedDEF = merged

	// --- Dual-sided RC extraction ----------------------------------------------------------
	// The extraction database is dense: one NetRC per net, indexed by the
	// net's Seq, backed by a single contiguous store. STA and power read
	// it by Seq — no name-keyed maps anywhere on the analysis tail.
	eopt := extract.DefaultOptions()
	rcStore := make([]extract.NetRC, len(work.Nets))
	netRC := make([]*extract.NetRC, len(work.Nets))
	// Pre-carve every net's Elmore storage from one flat arena; ExtractInto
	// reuses storage of sufficient capacity, so the whole extraction makes
	// three allocations total.
	totalSinks := 0
	for _, n := range work.Nets {
		totalSinks += len(n.Sinks)
	}
	elArena := make([]float64, totalSinks)
	carved := 0
	for _, n := range work.Nets {
		rcStore[n.Seq].ElmorePs = elArena[carved : carved+len(n.Sinks) : carved+len(n.Sinks)]
		carved += len(n.Sinks)
	}
	ex := extract.NewExtractor()
	for _, n := range work.Nets {
		var ft, bt *route.Tree
		if frontRes != nil {
			ft = frontRes.Trees[n.Name]
		}
		if backRes != nil {
			bt = backRes.Trees[n.Name]
		}
		ex.ExtractInto(&rcStore[n.Seq], st, extract.NetInput{
			Name:      n.Name,
			Front:     ft,
			Back:      bt,
			SinkPos:   sides.SinkPos[n.Seq],
			SinkCapFF: sides.SinkCapFF[n.Seq],
			Order:     sides.SinkOrder[n.Seq],
		}, eopt)
		netRC[n.Seq] = &rcStore[n.Seq]
	}

	// --- STA ---------------------------------------------------------------------------------
	staOpt := cfg.STA
	if staOpt.InputSlewPs == 0 {
		staOpt = sta.DefaultOptions()
	}
	eng, err := sta.NewEngine(work)
	if err != nil {
		return nil, err
	}
	staRes, err := eng.Analyze(sta.Input{
		NetRC:          netRC,
		ClockArrivalPs: ctsRes.ArrivalPs,
	}, staOpt)
	if err != nil {
		return nil, err
	}
	// Detach: FlowResults are memoized by exp.Suite, and the raw Result
	// aliases the Engine's reusable storage (keeping it alive).
	res.STA = staRes.Clone()
	res.MinPeriodPs = staRes.MinPeriodPs
	res.AchievedFreqGHz = staRes.AchievedFreqGHz

	// --- Power -----------------------------------------------------------------------------------
	pwOpt := cfg.Power
	if pwOpt.Activity == 0 {
		pwOpt = power.DefaultOptions()
	}
	pw := power.Analyze(work, st, netRC, res.AchievedFreqGHz, pwOpt)
	res.Power = pw
	res.PowerUW = pw.TotalUW
	res.EffGHzPerW = pw.EfficiencyGHzPerW()

	res.Valid = res.Reason == ""
	return res, nil
}

// pinLocation returns the physical location of a pin: port position or the
// instance pin offset on its row.
func pinLocation(ref netlist.PinRef, fp *floorplan.Plan) geom.Point {
	if ref.IsPort() {
		return ref.Port.Pos
	}
	inst := ref.Inst
	var offCPP float64
	if p, ok := inst.Cell.InputPin(ref.Pin); ok {
		offCPP = p.OffsetCPP
	} else {
		offCPP = inst.Cell.Out.OffsetCPP
	}
	return geom.Pt(
		inst.Pos.X+int64(offCPP*float64(fp.Stack.CPPNm)),
		inst.Pos.Y+fp.Stack.CellHeightNm()/2,
	)
}

// buildDEF renders one side's physical database.
func buildDEF(nl *netlist.Netlist, fp *floorplan.Plan, pp *powerplan.Result, rr *route.Result, side tech.Side, cfg FlowConfig) *def.Design {
	d := def.New(nl.Name + "_" + sideSuffix(side))
	d.Die = fp.Core
	d.Rows = make([]def.Row, 0, len(fp.Rows))
	d.Components = make([]*def.Component, 0, len(nl.Instances)+len(pp.TapComponents()))
	d.Pins = make([]*def.IOPin, 0, len(nl.Ports))
	for _, r := range fp.Rows {
		d.Rows = append(d.Rows, def.Row{
			Name:   fmt.Sprintf("row%d", r.Index),
			Site:   "core_site",
			Origin: geom.Pt(r.X0, r.Y),
			NumX:   r.SitesX(fp.Stack.CPPNm),
			StepX:  fp.Stack.CPPNm,
		})
	}
	for _, inst := range nl.Instances {
		d.AddComponent(&def.Component{
			Name:  inst.Name,
			Macro: inst.Cell.Name,
			Pos:   inst.Pos,
			Fixed: inst.Fixed,
		})
	}
	for _, p := range nl.Ports {
		dir := "INPUT"
		if p.Dir == netlist.Out {
			dir = "OUTPUT"
		}
		d.Pins = append(d.Pins, &def.IOPin{
			Name: p.Name, Net: p.Name, Dir: dir,
			Layer: fmt.Sprintf("%sM2", side), Pos: p.Pos,
		})
	}
	// BSPDN stripes live on the backside; tap cells appear in both views
	// (they span the wafer).
	if side == tech.Back {
		d.SpecialNets = pp.SpecialNets(fp)
	}
	for _, c := range pp.TapComponents() {
		d.AddComponent(c)
	}
	if rr != nil {
		d.Nets = make([]*def.Net, 0, len(rr.Trees))
		for _, tree := range rr.Trees {
			dn := &def.Net{
				Name:  tree.Name,
				Pins:  make([]def.NetPin, 0, len(tree.Pins)),
				Wires: make([]def.Wire, 0, len(tree.Edges)),
			}
			// Names are rendered only here, at the serialization
			// boundary — and "rendered" means referencing the existing
			// instance/pin name strings, never concatenating them.
			for _, p := range tree.Pins {
				comp, pin := nl.PinNames(p.ID)
				dn.Pins = append(dn.Pins, def.NetPin{Comp: comp, Pin: pin})
			}
			sortNetPins(dn)
			for _, e := range tree.Edges {
				layer := e.Layer.Name
				if layer == "" {
					layer = fmt.Sprintf("%sM1", side)
				}
				dn.Wires = append(dn.Wires, def.Wire{
					Layer: layer,
					From:  tree.Nodes[e.From],
					To:    tree.Nodes[e.To],
				})
				if e.Vias > 0 {
					dn.Vias = append(dn.Vias, def.Via{
						At:        tree.Nodes[e.To],
						FromLayer: layer,
						ToLayer:   layer,
					})
				}
			}
			d.Nets = append(d.Nets, dn)
		}
		sortNets(d)
	}
	return d
}

func sideSuffix(s tech.Side) string {
	if s == tech.Front {
		return "front"
	}
	return "back"
}

// sortNetPins and sortNets canonicalize DEF ordering. Keys are unique
// ((comp,pin) within a net; net names within a design), so any correct
// sort produces the same result the seed's insertion sorts did — without
// their O(n²) cost on thousands of nets.
func sortNetPins(n *def.Net) {
	slices.SortFunc(n.Pins, func(a, b def.NetPin) int {
		if c := strings.Compare(a.Comp, b.Comp); c != 0 {
			return c
		}
		return strings.Compare(a.Pin, b.Pin)
	})
}

func sortNets(d *def.Design) {
	slices.SortFunc(d.Nets, func(a, b *def.Net) int {
		return strings.Compare(a.Name, b.Name)
	})
}
