package core

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/cts"
	"repro/internal/def"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/powerplan"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
)

// FlowConfig parameterizes one physical implementation + PPA run.
//
// Every field is consumed by exactly one earliest pipeline stage (see
// Stage); Flow.Fork diffs two configs against that table to find the
// deepest shared prefix two runs can reuse.
type FlowConfig struct {
	Name          string
	Pattern       tech.Pattern // routing layers per side (e.g. FM12BM12)
	TargetFreqGHz float64
	Utilization   float64
	AspectRatio   float64
	// BackPinFraction is the backside input-pin density ratio
	// (FP(1-x)BP(x)); must be 0 for CFET or frontside-only patterns.
	BackPinFraction float64
	Seed            int64
	// MaxDRVs is the validity rule: a P&R result is valid only if the
	// total design-rule violation count stays below this (paper: 10).
	MaxDRVs int

	// Stage options (zero values pick defaults).
	Synth synth.Options
	Place place.Options
	Route route.Options
	CTS   cts.Options
	STA   sta.Options
	Power power.Options
}

// DefaultFlowConfig returns the evaluation defaults for a target.
func DefaultFlowConfig(pattern tech.Pattern, targetGHz, util float64) FlowConfig {
	return FlowConfig{
		Pattern:       pattern,
		TargetFreqGHz: targetGHz,
		Utilization:   util,
		AspectRatio:   1.0,
		Seed:          1,
		MaxDRVs:       10,
	}
}

// validateFlowConfig rejects structurally impossible configs and
// normalizes defaulted knobs. Shared by NewFlow and Flow.Fork so a
// mutated fork config passes exactly the checks a fresh session would.
// Failures are classified as ErrInvalidConfig.
func validateFlowConfig(st *tech.Stack, cfg *FlowConfig) error {
	invalid := func(err error) error {
		return &FlowError{Kind: ErrInvalidConfig, Stage: stageNone, Config: cfg.Name, Err: err}
	}
	if err := st.Validate(cfg.Pattern); err != nil {
		return invalid(err)
	}
	if cfg.BackPinFraction > 0 && cfg.Pattern.Back == 0 {
		return invalid(fmt.Errorf("backside pins need backside routing layers"))
	}
	if cfg.MaxDRVs <= 0 {
		cfg.MaxDRVs = 10
	}
	return nil
}

// FlowResult is the complete outcome of one run.
type FlowResult struct {
	Config FlowConfig
	Arch   tech.Arch

	Valid  bool
	Reason string // why the run is invalid, if it is

	// Err carries the classified error that killed this point's run when
	// the result is a failure placeholder in a sweep table (exp fills it
	// in so one dead point cannot abort its whole table). Always nil on a
	// result produced by a completed run.
	Err error

	// Physical metrics.
	CoreAreaUm2     float64
	CoreW, CoreH    int64 // nm
	RealUtilization float64
	CellAreaUm2     float64
	HPWLUm          float64
	WirelenFrontUm  float64
	WirelenBackUm   float64
	DRVsFront       int
	DRVsBack        int
	Vias            int
	CTSBuffers      int
	SynthBuffers    int
	Rerouted        int

	// PPA.
	AchievedFreqGHz float64
	MinPeriodPs     float64
	PowerUW         float64
	EffGHzPerW      float64

	// StageTimes records the wall-clock spent in each pipeline stage,
	// indexed by Stage. Forked sessions inherit the entries of the
	// stages they reuse from their parent (the prefix was computed once;
	// its cost is attributed to every run built on it). Deliberately
	// excluded from golden artifacts — it is the one nondeterministic
	// field here.
	StageTimes [NumStages]time.Duration

	// Artifacts.
	FrontDEF  *def.Design
	BackDEF   *def.Design
	MergedDEF *def.Design
	STA       *sta.Result
	Power     *power.Result
	PinStats  PartitionStats
}

// DRVs returns the total violation count.
func (r *FlowResult) DRVs() int { return r.DRVsFront + r.DRVsBack }

// RunFlow executes the full Fig. 7 framework over a technology-mapped
// netlist: synthesis sizing -> floorplan -> powerplan (BSPDN + Power Tap
// Cells) -> placement -> CTS -> Algorithm 1 partition -> dual-sided
// routing -> DEF merge -> dual-sided RC extraction -> STA -> power.
//
// It is a thin facade over the staged pipeline: NewFlow(nl, cfg).Run()
// with checkpointing disabled (a one-shot run forks nothing, so it skips
// the stage-boundary netlist snapshots a Flow session keeps).
//
// Invalid runs (tap-cell placement violations or DRVs >= MaxDRVs) return a
// FlowResult with Valid=false rather than an error; errors indicate
// malformed inputs.
func RunFlow(nl *netlist.Netlist, cfg FlowConfig) (*FlowResult, error) {
	return RunFlowCtx(context.Background(), nl, cfg)
}

// RunFlowCtx is RunFlow under a context; see Flow.RunToCtx for the
// cancellation and error-classification semantics.
func RunFlowCtx(ctx context.Context, nl *netlist.Netlist, cfg FlowConfig) (*FlowResult, error) {
	f, err := newFlow(nl, cfg, false)
	if err != nil {
		return nil, err
	}
	return f.RunCtx(ctx)
}

// pinLocation returns the physical location of a pin: port position or the
// instance pin offset on its row.
func pinLocation(ref netlist.PinRef, fp *floorplan.Plan) geom.Point {
	if ref.IsPort() {
		return ref.Port.Pos
	}
	inst := ref.Inst
	var offCPP float64
	if p, ok := inst.Cell.InputPin(ref.Pin); ok {
		offCPP = p.OffsetCPP
	} else {
		offCPP = inst.Cell.Out.OffsetCPP
	}
	return geom.Pt(
		inst.Pos.X+int64(offCPP*float64(fp.Stack.CPPNm)),
		inst.Pos.Y+fp.Stack.CellHeightNm()/2,
	)
}

// buildDEF renders one side's physical database.
// buildDEF renders one side's physical database. adoptNets, when non-nil,
// is a previously rendered nets section proven bit-identical to what this
// call would rebuild (a synth-diff fork that adopted the side's routed
// result); it is shared instead of re-rendered.
func buildDEF(nl *netlist.Netlist, fp *floorplan.Plan, pp *powerplan.Result, rr *route.Result, side tech.Side, cfg FlowConfig, adoptNets []*def.Net) *def.Design {
	d := def.New(nl.Name + "_" + sideSuffix(side))
	d.Die = fp.Core
	d.Rows = make([]def.Row, 0, len(fp.Rows))
	d.Components = make([]*def.Component, 0, len(nl.Instances)+len(pp.TapComponents()))
	d.Pins = make([]*def.IOPin, 0, len(nl.Ports))
	for _, r := range fp.Rows {
		d.Rows = append(d.Rows, def.Row{
			Name:   fmt.Sprintf("row%d", r.Index),
			Site:   "core_site",
			Origin: geom.Pt(r.X0, r.Y),
			NumX:   r.SitesX(fp.Stack.CPPNm),
			StepX:  fp.Stack.CPPNm,
		})
	}
	// Components, pins and nets are bulk-allocated (one arena per kind,
	// pointers into it): a DEF view is rebuilt per side per flow, and
	// per-object allocation here dominated the whole flow's alloc count.
	compArena := make([]def.Component, len(nl.Instances))
	for i, inst := range nl.Instances {
		compArena[i] = def.Component{
			Name:  inst.Name,
			Macro: inst.Cell.Name,
			Pos:   inst.Pos,
			Fixed: inst.Fixed,
		}
		d.AddComponent(&compArena[i])
	}
	pinLayer := fmt.Sprintf("%sM2", side)
	ioArena := make([]def.IOPin, len(nl.Ports))
	for i, p := range nl.Ports {
		dir := "INPUT"
		if p.Dir == netlist.Out {
			dir = "OUTPUT"
		}
		ioArena[i] = def.IOPin{
			Name: p.Name, Net: p.Name, Dir: dir,
			Layer: pinLayer, Pos: p.Pos,
		}
		d.Pins = append(d.Pins, &ioArena[i])
	}
	// BSPDN stripes live on the backside; tap cells appear in both views
	// (they span the wafer).
	if side == tech.Back {
		d.SpecialNets = pp.SpecialNets(fp)
	}
	for _, c := range pp.TapComponents() {
		d.AddComponent(c)
	}
	if rr != nil && adoptNets != nil {
		d.Nets = adoptNets
	} else if rr != nil {
		// Trees is net-Seq indexed; nets without a sub-net on this side
		// are nil slots. Pre-count so every per-net slice comes out of a
		// shared arena (capacity-capped, so stray appends reallocate
		// instead of clobbering the next net's range).
		nNets, nPins, nWires, nVias := 0, 0, 0, 0
		for _, tree := range rr.Trees {
			if tree == nil {
				continue
			}
			nNets++
			nPins += len(tree.Pins)
			nWires += len(tree.Edges)
			for _, e := range tree.Edges {
				if e.Vias > 0 {
					nVias++
				}
			}
		}
		d.Nets = make([]*def.Net, 0, nNets)
		netArena := make([]def.Net, 0, nNets)
		pinArena := make([]def.NetPin, 0, nPins)
		wireArena := make([]def.Wire, 0, nWires)
		viaArena := make([]def.Via, 0, nVias)
		m1Layer := fmt.Sprintf("%sM1", side)
		for _, tree := range rr.Trees {
			if tree == nil {
				continue
			}
			po, wo, vo := len(pinArena), len(wireArena), len(viaArena)
			nv := 0
			for _, e := range tree.Edges {
				if e.Vias > 0 {
					nv++
				}
			}
			pinArena = pinArena[:po+len(tree.Pins)]
			wireArena = wireArena[:wo+len(tree.Edges)]
			viaArena = viaArena[:vo+nv]
			netArena = append(netArena, def.Net{
				Name:  tree.Name,
				Pins:  pinArena[po : po : po+len(tree.Pins)],
				Wires: wireArena[wo : wo : wo+len(tree.Edges)],
				Vias:  viaArena[vo : vo : vo+nv],
			})
			dn := &netArena[len(netArena)-1]
			// Names are rendered only here, at the serialization
			// boundary — and "rendered" means referencing the existing
			// instance/pin name strings, never concatenating them.
			for _, p := range tree.Pins {
				comp, pin := nl.PinNames(p.ID)
				dn.Pins = append(dn.Pins, def.NetPin{Comp: comp, Pin: pin})
			}
			sortNetPins(dn)
			for _, e := range tree.Edges {
				layer := e.Layer.Name
				if layer == "" {
					layer = m1Layer
				}
				dn.Wires = append(dn.Wires, def.Wire{
					Layer: layer,
					From:  tree.Nodes[e.From],
					To:    tree.Nodes[e.To],
				})
				if e.Vias > 0 {
					dn.Vias = append(dn.Vias, def.Via{
						At:        tree.Nodes[e.To],
						FromLayer: layer,
						ToLayer:   layer,
					})
				}
			}
			d.Nets = append(d.Nets, dn)
		}
		sortNets(d)
	}
	return d
}

func sideSuffix(s tech.Side) string {
	if s == tech.Front {
		return "front"
	}
	return "back"
}

// sortNetPins and sortNets canonicalize DEF ordering. Keys are unique
// ((comp,pin) within a net; net names within a design), so any correct
// sort produces the same result the seed's insertion sorts did — without
// their O(n²) cost on thousands of nets.
func sortNetPins(n *def.Net) {
	slices.SortFunc(n.Pins, func(a, b def.NetPin) int {
		if c := strings.Compare(a.Comp, b.Comp); c != 0 {
			return c
		}
		return strings.Compare(a.Pin, b.Pin)
	})
}

func sortNets(d *def.Design) {
	slices.SortFunc(d.Nets, func(a, b *def.Net) int {
		return strings.Compare(a.Name, b.Name)
	})
}
