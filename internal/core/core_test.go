package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/def"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/route"
	"repro/internal/tech"
)

var (
	ffetLib = cell.NewLibrary(tech.NewFFET())
	cfetLib = cell.NewLibrary(tech.NewCFET())
)

func smallCore(t testing.TB, lib *cell.Library) *netlist.Netlist {
	t.Helper()
	nl, _, err := riscv.Generate(lib, riscv.Config{Name: "t", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestAssignPinsShares(t *testing.T) {
	nl := smallCore(t, ffetLib)
	for _, frac := range []float64{0, 0.16, 0.3, 0.5} {
		pa, err := AssignPins(ffetLib, frac, 1, nl)
		if err != nil {
			t.Fatal(err)
		}
		// Check the realized share over the actual netlist's sink pins.
		var back, total float64
		for _, inst := range nl.Instances {
			for _, p := range inst.Cell.Inputs {
				if p.Clock {
					total++
					if pa.Side(inst.Cell.Name, p.Name) == tech.Back {
						back++
					}
					continue
				}
				total++
				if pa.Side(inst.Cell.Name, p.Name) == tech.Back {
					back++
				}
			}
		}
		got := back / total
		if got < frac-0.12 || got > frac+0.12 {
			t.Errorf("frac %.2f: realized instance-weighted share %.3f", frac, got)
		}
	}
}

func TestAssignPinsCFETRestriction(t *testing.T) {
	if _, err := AssignPins(cfetLib, 0.5, 1); err == nil {
		t.Fatal("CFET with backside pins must be rejected")
	}
	if _, err := AssignPins(cfetLib, 0, 1); err != nil {
		t.Fatalf("CFET with frontside pins: %v", err)
	}
	if _, err := AssignPins(ffetLib, 1.5, 1); err == nil {
		t.Fatal("fraction > 1 must be rejected")
	}
}

func TestPartitionAlgorithm1Invariants(t *testing.T) {
	nl := smallCore(t, ffetLib)
	pa, _ := AssignPins(ffetLib, 0.5, 1, nl)
	at := func(ref netlist.PinRef) geom.Point { return geom.Pt(0, 0) }
	sides, err := Partition(nl, pa, tech.Pattern{Front: 12, Back: 12}, at)
	if err != nil {
		t.Fatal(err)
	}
	// Invariant 1: every sink of every net appears on exactly one side.
	seen := make(map[string]map[netlist.PinID]int) // net -> pinID -> count
	for _, n := range sides.Front {
		for _, p := range n.Pins {
			if p.Driver {
				continue
			}
			if seen[n.Name] == nil {
				seen[n.Name] = map[netlist.PinID]int{}
			}
			seen[n.Name][p.ID]++
		}
	}
	for _, n := range sides.Back {
		for _, p := range n.Pins {
			if p.Driver {
				continue
			}
			if seen[n.Name] == nil {
				seen[n.Name] = map[netlist.PinID]int{}
			}
			seen[n.Name][p.ID]++
		}
	}
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			id := s.ID()
			if seen[n.Name][id] != 1 {
				t.Fatalf("net %s sink %v assigned %d times, want exactly 1",
					n.Name, id, seen[n.Name][id])
			}
		}
	}
	// Invariant 2: each sub-net is rooted at the (dual-sided) driver.
	for _, n := range append(toRN(sides.Front), toRN(sides.Back)...) {
		drivers := 0
		for _, p := range n.pins {
			if p.driver {
				drivers++
			}
		}
		if drivers != 1 {
			t.Fatalf("sub-net %s has %d drivers", n.name, drivers)
		}
	}
	// Invariant 3: no bridging cells were needed on a dual-sided pattern.
	if sides.Rerouted != 0 {
		t.Errorf("rerouted = %d, want 0 with both sides routable", sides.Rerouted)
	}
}

func TestPartitionFallbackWithoutBackside(t *testing.T) {
	nl := smallCore(t, ffetLib)
	pa, _ := AssignPins(ffetLib, 0.5, 1, nl)
	at := func(ref netlist.PinRef) geom.Point { return geom.Pt(0, 0) }
	sides, err := Partition(nl, pa, tech.Pattern{Front: 12}, at)
	if err != nil {
		t.Fatal(err)
	}
	if len(sides.Back) != 0 {
		t.Fatalf("backside nets = %d on an FM12 pattern", len(sides.Back))
	}
	if sides.Rerouted == 0 {
		t.Error("expected rerouted sinks when backside pins exist but FM-only pattern")
	}
}

func TestRunFlowFFETDualSided(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	cfg.BackPinFraction = 0.5
	res, err := RunFlow(nl, cfg)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	if res.AchievedFreqGHz <= 0 || res.PowerUW <= 0 {
		t.Fatalf("missing PPA: freq=%v power=%v", res.AchievedFreqGHz, res.PowerUW)
	}
	if res.CoreAreaUm2 <= 0 {
		t.Error("missing core area")
	}
	if res.WirelenBackUm == 0 {
		t.Error("dual-sided run has no backside wirelength")
	}
	if res.FrontDEF == nil || res.BackDEF == nil || res.MergedDEF == nil {
		t.Fatal("missing DEF artifacts")
	}
	// Merged DEF must contain wires from both sides.
	wl := res.MergedDEF.WirelengthByLayerNm()
	var front, back bool
	for layer := range wl {
		if strings.HasPrefix(layer, "FM") {
			front = true
		}
		if strings.HasPrefix(layer, "BM") {
			back = true
		}
	}
	if !front || !back {
		t.Errorf("merged DEF layers front=%v back=%v, want both", front, back)
	}
	// The merged DEF must serialize and re-parse.
	var buf bytes.Buffer
	if err := res.MergedDEF.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := def.Parse(&buf)
	if err != nil {
		t.Fatalf("merged DEF does not re-parse: %v", err)
	}
	if parsed.TotalWirelengthNm() != res.MergedDEF.TotalWirelengthNm() {
		t.Error("merged DEF wirelength changed through serialization")
	}
}

func TestRunFlowCFET(t *testing.T) {
	nl := smallCore(t, cfetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, 0.70)
	res, err := RunFlow(nl, cfg)
	if err != nil {
		t.Fatalf("RunFlow: %v", err)
	}
	if res.WirelenBackUm != 0 || res.DRVsBack != 0 {
		t.Error("CFET must not route the backside")
	}
	if res.AchievedFreqGHz <= 0 {
		t.Error("missing frequency")
	}
}

func TestRunFlowTapCapInfeasible(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.92)
	res, err := RunFlow(nl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("92% utilization must be invalid (tap cells)")
	}
	if res.Reason == "" {
		t.Error("missing reason")
	}
}

func TestRunFlowRejectsBadConfigs(t *testing.T) {
	nl := smallCore(t, cfetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.7)
	if _, err := RunFlow(nl, cfg); err == nil {
		t.Fatal("CFET with backside layers must error")
	}
	nlF := smallCore(t, ffetLib)
	cfg = DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, 0.7)
	cfg.BackPinFraction = 0.5
	if _, err := RunFlow(nlF, cfg); err == nil {
		t.Fatal("backside pins without backside layers must error")
	}
}

func TestLEFSideConfigExport(t *testing.T) {
	nl := smallCore(t, ffetLib)
	pa, _ := AssignPins(ffetLib, 0.5, 1, nl)
	sc := pa.LEFSideConfig()
	nBack := 0
	for _, c := range ffetLib.Cells() {
		for _, p := range c.Inputs {
			if pa.Side(c.Name, p.Name) == tech.Back {
				nBack++
				if got := sc.Get(c.Name, p.Name); got.String() != "BACK" {
					t.Errorf("%s/%s LEF side = %v", c.Name, p.Name, got)
				}
			}
		}
	}
	if nBack == 0 {
		t.Error("no backside pins in a 50% assignment")
	}
}

// Small adapters so the invariants test can treat route.Net generically.
type routeNet struct {
	name string
	pins []routePin
}
type routePin struct {
	id     netlist.PinID
	driver bool
}

func toRN(nets []*route.Net) []*routeNet {
	out := make([]*routeNet, 0, len(nets))
	for _, n := range nets {
		rn := &routeNet{name: n.Name}
		for _, p := range n.Pins {
			rn.pins = append(rn.pins, routePin{id: p.ID, driver: p.Driver})
		}
		out = append(out, rn)
	}
	return out
}
