// Package core implements the paper's primary contribution: the FFET
// dual-sided physical implementation and block-level PPA evaluation
// framework — input-pin redistribution, the Algorithm 1 netlist partition
// into frontside and backside nets, independent per-side routing, DEF
// merging, dual-sided RC extraction, and the end-to-end flow of Fig. 7.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/lef"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// PinAssignment is the input-pin redistribution: cell master + pin name ->
// wafer side. It corresponds to the paper's "modified standard cell LEF
// files" — every instance of a master uses the same pin side.
type PinAssignment struct {
	// BackFraction is the requested backside input-pin density ratio
	// (e.g. 0.5 for FP0.5BP0.5).
	BackFraction float64
	Seed         int64
	sides        map[string]tech.Side // "CELL/PIN" -> side
}

// AssignPins builds a deterministic redistribution over a library: a
// BackFraction share of input pins is assigned to the backside. When a
// netlist is given, (cell, pin) pairs are weighted by how many instances
// of the cell the design actually uses, so the realized pin-density ratio
// over the placed design matches the request (the paper's FPxBPy knobs).
// CFET libraries only admit fraction 0.
func AssignPins(lib *cell.Library, backFraction float64, seed int64, weightBy ...*netlist.Netlist) (*PinAssignment, error) {
	if backFraction < 0 || backFraction > 1 {
		return nil, fmt.Errorf("core: back fraction %.2f out of [0,1]", backFraction)
	}
	if lib.Arch == tech.CFET && backFraction > 0 {
		return nil, fmt.Errorf("core: CFET pins cannot move to the backside")
	}
	pa := &PinAssignment{
		BackFraction: backFraction,
		Seed:         seed,
		sides:        make(map[string]tech.Side),
	}
	weights := make(map[string]float64)
	if len(weightBy) > 0 && weightBy[0] != nil {
		for _, inst := range weightBy[0].Instances {
			weights[inst.Cell.Name] += 1
		}
	}
	// Collect all (cell, pin) input pairs in hashed order, then greedily
	// fill the backside until its weighted share reaches the request.
	type cp struct {
		key    string
		rank   uint64
		weight float64
	}
	var pairs []cp
	var total float64
	for _, c := range lib.Cells() {
		w := weights[c.Name]
		if w == 0 {
			w = 1
		}
		for _, p := range c.Inputs {
			key := c.Name + "/" + p.Name
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|%d", key, seed)
			pairs = append(pairs, cp{key: key, rank: h.Sum64(), weight: w})
			total += w
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].rank != pairs[j].rank {
			return pairs[i].rank < pairs[j].rank
		}
		return pairs[i].key < pairs[j].key
	})
	var backW float64
	for _, p := range pairs {
		if backW+p.weight/2 <= backFraction*total {
			pa.sides[p.key] = tech.Back
			backW += p.weight
		} else {
			pa.sides[p.key] = tech.Front
		}
	}
	return pa, nil
}

// Side returns the assigned side of a cell input pin.
func (pa *PinAssignment) Side(cellName, pin string) tech.Side {
	if s, ok := pa.sides[cellName+"/"+pin]; ok {
		return s
	}
	return tech.Front
}

// BackShare reports the realized backside share.
func (pa *PinAssignment) BackShare() float64 {
	if len(pa.sides) == 0 {
		return 0
	}
	n := 0
	for _, s := range pa.sides {
		if s == tech.Back {
			n++
		}
	}
	return float64(n) / float64(len(pa.sides))
}

// LEFSideConfig renders the assignment as the modified-LEF side config.
func (pa *PinAssignment) LEFSideConfig() lef.SideConfig {
	sc := lef.SideConfig{}
	for key, s := range pa.sides {
		var cellName, pin string
		for i := len(key) - 1; i >= 0; i-- {
			if key[i] == '/' {
				cellName, pin = key[:i], key[i+1:]
				break
			}
		}
		side := lef.SideFront
		if s == tech.Back {
			side = lef.SideBack
		}
		sc.Set(cellName, pin, side)
	}
	return sc
}

// SideNets is the output of the Algorithm 1 partition: routing tasks per
// wafer side, plus the dense per-net sink tables extraction consumes.
type SideNets struct {
	Front []*route.Net
	Back  []*route.Net
	// SinkIDs[seq] and SinkCapFF[seq] are parallel slices over net seq's
	// sinks in canonical netlist order: the routed pin ID and the input
	// capacitance of each sink. Both index into one flat arena, so the
	// whole partition's extraction view costs two allocations.
	SinkIDs   [][]string
	SinkCapFF [][]float64
	// Rerouted counts sinks that required the (optional) bridging-cell
	// path: sinks whose assigned side has no routing layers in the
	// pattern. They are rerouted on the available side instead.
	Rerouted int
}

// Partition implements Algorithm 1: decompose every net into a frontside
// net and a backside net according to the redistributed input-pin sides.
// The driver output pin is dual-sided in FFET (Drain Merge), so each
// sub-net is rooted at the driver on its own side; no bridging cells are
// needed. Sinks assigned to a side with no routing resources in the
// pattern fall back to the other side (the flow "also supports bridging
// cells" — modeled as a reroute, counted in Rerouted).
func Partition(nl *netlist.Netlist, pa *PinAssignment, pattern tech.Pattern, pinAt func(ref netlist.PinRef) geom.Point) (*SideNets, error) {
	totalSinks := 0
	for _, n := range nl.Nets {
		totalSinks += len(n.Sinks)
	}
	// Per-net sink tables are carved out of two flat arenas, indexed by
	// net Seq. The arenas are sized exactly, so the appends below never
	// reallocate and the subslices stay valid.
	idArena := make([]string, 0, totalSinks)
	capArena := make([]float64, 0, totalSinks)
	out := &SideNets{
		SinkIDs:   make([][]string, len(nl.Nets)),
		SinkCapFF: make([][]float64, len(nl.Nets)),
	}
	frontOK := pattern.Front > 0
	backOK := pattern.Back > 0
	if !frontOK && !backOK {
		return nil, fmt.Errorf("core: pattern %v has no routing side", pattern)
	}
	// sideOf is reused across nets to remember each sink's resolved side,
	// so the per-side pin slices can be allocated at exact size in one
	// shot (nets are extremely numerous; per-net slice regrowth dominated
	// this function's allocation profile).
	var sideOf []tech.Side
	for _, n := range nl.Nets {
		if n.Driver == (netlist.PinRef{}) {
			return nil, fmt.Errorf("core: net %s undriven", n.Name)
		}
		driverID := pinIDOf(n.Driver)
		sinkStart := len(idArena)

		sideOf = sideOf[:0]
		nFront, nBack := 0, 0
		for _, s := range n.Sinks {
			id := pinIDOf(s)
			capFF := 1.0 // external load for port sinks
			side := tech.Front
			if !s.IsPort() {
				capFF = s.Inst.Cell.InputCap(s.Pin)
				side = pa.Side(s.Inst.Cell.Name, s.Pin)
			}
			idArena = append(idArena, id)
			capArena = append(capArena, capFF)
			// Fall back when the assigned side has no layers.
			if side == tech.Back && !backOK {
				side = tech.Front
				out.Rerouted++
			}
			if side == tech.Front && !frontOK {
				side = tech.Back
				out.Rerouted++
			}
			if side == tech.Back {
				nBack++
			} else {
				nFront++
			}
			sideOf = append(sideOf, side)
		}
		out.SinkIDs[n.Seq] = idArena[sinkStart:len(idArena):len(idArena)]
		out.SinkCapFF[n.Seq] = capArena[sinkStart:len(capArena):len(capArena)]
		drv := route.Pin{ID: driverID, At: pinAt(n.Driver), Driver: true}
		// The dual-sided output pin roots a sub-net on each side that has
		// sinks ("each output signal can be placed on the frontside, the
		// backside, or both").
		var frontPins, backPins []route.Pin
		if nFront > 0 {
			frontPins = make([]route.Pin, 1, nFront+1)
			frontPins[0] = drv
		}
		if nBack > 0 {
			backPins = make([]route.Pin, 1, nBack+1)
			backPins[0] = drv
		}
		for i, s := range n.Sinks {
			p := route.Pin{ID: out.SinkIDs[n.Seq][i], At: pinAt(s), CapFF: out.SinkCapFF[n.Seq][i]}
			if sideOf[i] == tech.Back {
				backPins = append(backPins, p)
			} else {
				frontPins = append(frontPins, p)
			}
		}
		if nFront > 0 {
			out.Front = append(out.Front, &route.Net{Name: n.Name, Pins: frontPins})
		}
		if nBack > 0 {
			out.Back = append(out.Back, &route.Net{Name: n.Name, Pins: backPins})
		}
	}
	return out, nil
}

// pinIDOf renders the flow-wide routed pin naming ("inst/pin", ports as
// "PIN/name") used for route.Pin IDs, tree PinNode keys, extraction
// SinkIDs, and DEF net pins (split back apart by flow.go's splitPinID).
func pinIDOf(ref netlist.PinRef) string {
	if ref.IsPort() {
		return "PIN/" + ref.Port.Name
	}
	return ref.Inst.Name + "/" + ref.Pin
}

// PartitionStats summarizes a partition for reporting.
type PartitionStats struct {
	FrontNets, BackNets int
	FrontPins, BackPins int
}

// Stats computes per-side net/pin counts.
func (s *SideNets) Stats() PartitionStats {
	st := PartitionStats{FrontNets: len(s.Front), BackNets: len(s.Back)}
	for _, n := range s.Front {
		st.FrontPins += len(n.Pins)
	}
	for _, n := range s.Back {
		st.BackPins += len(n.Pins)
	}
	return st
}
