// Package core implements the paper's primary contribution: the FFET
// dual-sided physical implementation and block-level PPA evaluation
// framework — input-pin redistribution, the Algorithm 1 netlist partition
// into frontside and backside nets, independent per-side routing, DEF
// merging, dual-sided RC extraction, and the end-to-end flow of Fig. 7.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/lef"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/tech"
)

// PinAssignment is the input-pin redistribution: cell master + pin name ->
// wafer side. It corresponds to the paper's "modified standard cell LEF
// files" — every instance of a master uses the same pin side.
type PinAssignment struct {
	// BackFraction is the requested backside input-pin density ratio
	// (e.g. 0.5 for FP0.5BP0.5).
	BackFraction float64
	Seed         int64
	sides        map[string]tech.Side // "CELL/PIN" -> side
}

// AssignPins builds a deterministic redistribution over a library: a
// BackFraction share of input pins is assigned to the backside. When a
// netlist is given, (cell, pin) pairs are weighted by how many instances
// of the cell the design actually uses, so the realized pin-density ratio
// over the placed design matches the request (the paper's FPxBPy knobs).
// CFET libraries only admit fraction 0.
func AssignPins(lib *cell.Library, backFraction float64, seed int64, weightBy ...*netlist.Netlist) (*PinAssignment, error) {
	if backFraction < 0 || backFraction > 1 {
		return nil, fmt.Errorf("core: back fraction %.2f out of [0,1]", backFraction)
	}
	if lib.Arch == tech.CFET && backFraction > 0 {
		return nil, fmt.Errorf("core: CFET pins cannot move to the backside")
	}
	pa := &PinAssignment{
		BackFraction: backFraction,
		Seed:         seed,
		sides:        make(map[string]tech.Side),
	}
	weights := make(map[string]float64)
	if len(weightBy) > 0 && weightBy[0] != nil {
		for _, inst := range weightBy[0].Instances {
			weights[inst.Cell.Name] += 1
		}
	}
	// Collect all (cell, pin) input pairs in hashed order, then greedily
	// fill the backside until its weighted share reaches the request.
	type cp struct {
		key    string
		rank   uint64
		weight float64
	}
	var pairs []cp
	var total float64
	for _, c := range lib.Cells() {
		w := weights[c.Name]
		if w == 0 {
			w = 1
		}
		for _, p := range c.Inputs {
			key := c.Name + "/" + p.Name
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|%d", key, seed)
			pairs = append(pairs, cp{key: key, rank: h.Sum64(), weight: w})
			total += w
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].rank != pairs[j].rank {
			return pairs[i].rank < pairs[j].rank
		}
		return pairs[i].key < pairs[j].key
	})
	var backW float64
	for _, p := range pairs {
		if backW+p.weight/2 <= backFraction*total {
			pa.sides[p.key] = tech.Back
			backW += p.weight
		} else {
			pa.sides[p.key] = tech.Front
		}
	}
	return pa, nil
}

// Side returns the assigned side of a cell input pin.
func (pa *PinAssignment) Side(cellName, pin string) tech.Side {
	if s, ok := pa.sides[cellName+"/"+pin]; ok {
		return s
	}
	return tech.Front
}

// BackShare reports the realized backside share.
func (pa *PinAssignment) BackShare() float64 {
	if len(pa.sides) == 0 {
		return 0
	}
	n := 0
	for _, s := range pa.sides {
		if s == tech.Back {
			n++
		}
	}
	return float64(n) / float64(len(pa.sides))
}

// LEFSideConfig renders the assignment as the modified-LEF side config.
func (pa *PinAssignment) LEFSideConfig() lef.SideConfig {
	sc := lef.SideConfig{}
	for key, s := range pa.sides {
		var cellName, pin string
		for i := len(key) - 1; i >= 0; i-- {
			if key[i] == '/' {
				cellName, pin = key[:i], key[i+1:]
				break
			}
		}
		side := lef.SideFront
		if s == tech.Back {
			side = lef.SideBack
		}
		sc.Set(cellName, pin, side)
	}
	return sc
}

// SideNets is the output of the Algorithm 1 partition: routing tasks per
// wafer side, plus the dense per-net sink tables extraction consumes.
// All per-net tables are parallel slices over net seq's sinks in
// canonical netlist order, carved from flat arenas sized up front, so
// the whole partition's extraction view costs a handful of allocations
// regardless of design size.
type SideNets struct {
	Front []*route.Net
	Back  []*route.Net
	// SinkIDs[seq][i] is the packed identity of sink i — the same ID
	// carried by the sink's route.Pin (names are rendered from PinIDs
	// only at the DEF serialization boundary, via Tree.Pins).
	SinkIDs [][]netlist.PinID
	// SinkCapFF[seq][i] is the input capacitance of sink i.
	SinkCapFF [][]float64
	// SinkPos[seq][i] locates sink i in its routed side sub-net, packed
	// as (index into the side net's Pins << 1) | side bit (0 front,
	// 1 back). Extraction uses it to find the sink's tree node without
	// any name-keyed lookup.
	SinkPos [][]int32
	// SinkOrder[seq] is the canonical sink visit order for float
	// accumulation during extraction: sink indices sorted by the legacy
	// rendered pin name ("inst/pin", ports as "PIN/name"). Keeping this
	// exact order makes every extracted metric bit-identical to the
	// string-keyed flow it replaces.
	SinkOrder [][]int32
	// Rerouted counts sinks that required the (optional) bridging-cell
	// path: sinks whose assigned side has no routing layers in the
	// pattern. They are rerouted on the available side instead.
	Rerouted int
}

// Partition implements Algorithm 1: decompose every net into a frontside
// net and a backside net according to the redistributed input-pin sides.
// The driver output pin is dual-sided in FFET (Drain Merge), so each
// sub-net is rooted at the driver on its own side; no bridging cells are
// needed. Sinks assigned to a side with no routing resources in the
// pattern fall back to the other side (the flow "also supports bridging
// cells" — modeled as a reroute, counted in Rerouted).
func Partition(nl *netlist.Netlist, pa *PinAssignment, pattern tech.Pattern, pinAt func(ref netlist.PinRef) geom.Point) (*SideNets, error) {
	totalSinks := 0
	for _, n := range nl.Nets {
		totalSinks += len(n.Sinks)
	}
	// Per-net sink tables are carved out of flat arenas, indexed by net
	// Seq. The arenas are sized exactly, so the appends below never
	// reallocate and the subslices stay valid. The route.Pin and
	// route.Net payloads are arena-backed too: pin slices need at most
	// totalSinks + 2 driver slots per net (the dual-sided driver roots a
	// sub-net on each side), and at most two sub-nets exist per net.
	idArena := make([]netlist.PinID, 0, totalSinks)
	capArena := make([]float64, 0, totalSinks)
	posArena := make([]int32, 0, totalSinks)
	ordArena := make([]int32, 0, totalSinks)
	pinArena := make([]route.Pin, 0, totalSinks+2*len(nl.Nets))
	netArena := make([]route.Net, 0, 2*len(nl.Nets))
	out := &SideNets{
		SinkIDs:   make([][]netlist.PinID, len(nl.Nets)),
		SinkCapFF: make([][]float64, len(nl.Nets)),
		SinkPos:   make([][]int32, len(nl.Nets)),
		SinkOrder: make([][]int32, len(nl.Nets)),
	}
	frontOK := pattern.Front > 0
	backOK := pattern.Back > 0
	if !frontOK && !backOK {
		return nil, fmt.Errorf("core: pattern %v has no routing side", pattern)
	}
	// sideOf is reused across nets to remember each sink's resolved side,
	// so the per-side pin slices can be carved at exact size in one shot.
	var sideOf []tech.Side
	for _, n := range nl.Nets {
		if n.Driver == (netlist.PinRef{}) {
			return nil, fmt.Errorf("core: net %s undriven", n.Name)
		}
		sinkStart := len(idArena)

		sideOf = sideOf[:0]
		nFront, nBack := 0, 0
		for _, s := range n.Sinks {
			capFF := 1.0 // external load for port sinks
			side := tech.Front
			if !s.IsPort() {
				capFF = s.Inst.Cell.InputCap(s.Pin)
				side = pa.Side(s.Inst.Cell.Name, s.Pin)
			}
			idArena = append(idArena, s.ID())
			capArena = append(capArena, capFF)
			// Fall back when the assigned side has no layers.
			if side == tech.Back && !backOK {
				side = tech.Front
				out.Rerouted++
			}
			if side == tech.Front && !frontOK {
				side = tech.Back
				out.Rerouted++
			}
			if side == tech.Back {
				nBack++
			} else {
				nFront++
			}
			sideOf = append(sideOf, side)
		}
		k := len(n.Sinks)
		out.SinkIDs[n.Seq] = idArena[sinkStart:len(idArena):len(idArena)]
		out.SinkCapFF[n.Seq] = capArena[sinkStart:len(capArena):len(capArena)]
		out.SinkOrder[n.Seq] = sortSinksByLegacyName(ordArena[len(ordArena):len(ordArena):len(ordArena)+k], n.Sinks)
		ordArena = ordArena[:len(ordArena)+k]
		drv := route.Pin{ID: n.Driver.ID(), At: pinAt(n.Driver), Driver: true}
		// The dual-sided output pin roots a sub-net on each side that has
		// sinks ("each output signal can be placed on the frontside, the
		// backside, or both").
		var frontPins, backPins []route.Pin
		base := len(pinArena)
		fLen, bLen := 0, 0
		if nFront > 0 {
			fLen = nFront + 1
		}
		if nBack > 0 {
			bLen = nBack + 1
		}
		pinArena = pinArena[:base+fLen+bLen]
		if fLen > 0 {
			frontPins = append(pinArena[base:base:base+fLen], drv)
		}
		if bLen > 0 {
			backPins = append(pinArena[base+fLen:base+fLen:base+fLen+bLen], drv)
		}
		posStart := len(posArena)
		for i, s := range n.Sinks {
			p := route.Pin{ID: out.SinkIDs[n.Seq][i], At: pinAt(s), CapFF: out.SinkCapFF[n.Seq][i]}
			if sideOf[i] == tech.Back {
				posArena = append(posArena, int32(len(backPins))<<1|1)
				backPins = append(backPins, p)
			} else {
				posArena = append(posArena, int32(len(frontPins))<<1)
				frontPins = append(frontPins, p)
			}
		}
		out.SinkPos[n.Seq] = posArena[posStart:len(posArena):len(posArena)]
		if nFront > 0 {
			netArena = append(netArena, route.Net{Name: n.Name, Seq: n.Seq, Pins: frontPins})
			out.Front = append(out.Front, &netArena[len(netArena)-1])
		}
		if nBack > 0 {
			netArena = append(netArena, route.Net{Name: n.Name, Seq: n.Seq, Pins: backPins})
			out.Back = append(out.Back, &netArena[len(netArena)-1])
		}
	}
	return out, nil
}

// sortSinksByLegacyName fills dst (len 0, cap >= len(sinks)) with sink
// indices ordered by the legacy rendered pin name — "inst/pin", ports as
// "PIN/name" — without building any string. This is the canonical float
// accumulation order of extraction; preserving it keeps every extracted
// metric bit-identical to the string-keyed flow this replaced. Keys are
// unique within a net (a pin appears on exactly one net position), so
// the simple insertion sort is order-equivalent to any comparison sort.
func sortSinksByLegacyName(dst []int32, sinks []netlist.PinRef) []int32 {
	for i := range sinks {
		dst = append(dst, int32(i))
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && cmpLegacyPinName(sinks[dst[j]], sinks[dst[j-1]]) < 0; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// legacyNameParts returns the two halves of the legacy pin name; the
// rendered form was head + "/" + tail.
func legacyNameParts(r netlist.PinRef) (head, tail string) {
	if r.IsPort() {
		return "PIN", r.Port.Name
	}
	return r.Inst.Name, r.Pin
}

// cmpLegacyPinName compares two pins exactly as strings.Compare over
// their rendered "head/tail" names would, walking the three virtual
// segments without concatenating them.
func cmpLegacyPinName(a, b netlist.PinRef) int {
	ah, at := legacyNameParts(a)
	bh, bt := legacyNameParts(b)
	as := [3]string{ah, "/", at}
	bs := [3]string{bh, "/", bt}
	ai, ao := 0, 0
	bi, bo := 0, 0
	for {
		for ai < 3 && ao == len(as[ai]) {
			ai++
			ao = 0
		}
		for bi < 3 && bo == len(bs[bi]) {
			bi++
			bo = 0
		}
		if ai == 3 || bi == 3 {
			switch {
			case ai == 3 && bi == 3:
				return 0
			case ai == 3:
				return -1
			default:
				return 1
			}
		}
		ca, cb := as[ai][ao], bs[bi][bo]
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		ao++
		bo++
	}
}

// PartitionStats summarizes a partition for reporting.
type PartitionStats struct {
	FrontNets, BackNets int
	FrontPins, BackPins int
}

// Stats computes per-side net/pin counts.
func (s *SideNets) Stats() PartitionStats {
	st := PartitionStats{FrontNets: len(s.Front), BackNets: len(s.Back)}
	for _, n := range s.Front {
		st.FrontPins += len(n.Pins)
	}
	for _, n := range s.Back {
		st.BackPins += len(n.Pins)
	}
	return st
}
