package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/tech"
)

// robustCfg is the small dual-sided config the robustness tests run.
func robustCfg() FlowConfig {
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.70)
	cfg.BackPinFraction = 0.5
	cfg.Name = "robust"
	return cfg
}

func TestErrInvalidConfigTaxonomy(t *testing.T) {
	nl := smallCore(t, ffetLib)
	cfg := DefaultFlowConfig(tech.Pattern{Front: 6}, 1.5, 0.70)
	cfg.BackPinFraction = 0.5 // backside pins without backside layers
	cfg.Name = "badcfg"
	_, err := NewFlow(nl, cfg)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("err = %v, want ErrInvalidConfig", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("err %T is not a *FlowError", err)
	}
	if fe.Config != "badcfg" {
		t.Errorf("Config provenance = %q, want badcfg", fe.Config)
	}
	if fe.Stage >= 0 {
		t.Errorf("pre-stage error carries stage %v", fe.Stage)
	}
}

func TestCancelledBeforeRunKillsSession(t *testing.T) {
	nl := smallCore(t, ffetLib)
	f, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = f.RunToCtx(ctx, StagePower)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context cause lost from chain: %v", err)
	}
	// A cancelled run is a hard error: the session is dead, and the
	// original classified error stays reachable through ErrSessionDead.
	err = f.RunTo(StagePower)
	if !errors.Is(err, ErrSessionDead) || !errors.Is(err, ErrCancelled) {
		t.Fatalf("post-death RunTo = %v, want ErrSessionDead wrapping ErrCancelled", err)
	}
	if _, err := f.Fork(nil); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("Fork off dead session = %v, want ErrSessionDead", err)
	}
	if f.Err() == nil {
		t.Error("Err() nil on a dead session")
	}
}

func TestStagePanicContained(t *testing.T) {
	nl := smallCore(t, ffetLib)
	f, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	deactivate := faultinject.Activate(faultinject.New(1,
		faultinject.WithRate(1),
		faultinject.WithKinds(faultinject.Panic),
		faultinject.WithSites("core.stage.route")))
	defer deactivate()
	_, err = f.Run()
	if !errors.Is(err, ErrStagePanic) {
		t.Fatalf("err = %v, want ErrStagePanic", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageRoute {
		t.Fatalf("panic provenance = %+v, want StageRoute", fe)
	}
	// Session dead, process alive.
	if err := f.RunTo(StagePower); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("post-panic RunTo = %v, want ErrSessionDead", err)
	}
}

func TestInjectedErrorClassifiedStageFailed(t *testing.T) {
	nl := smallCore(t, ffetLib)
	f, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	deactivate := faultinject.Activate(faultinject.New(1,
		faultinject.WithRate(1),
		faultinject.WithKinds(faultinject.Error),
		faultinject.WithSites("core.stage.cts")))
	defer deactivate()
	_, err = f.Run()
	if !errors.Is(err, ErrStageFailed) {
		t.Fatalf("err = %v, want ErrStageFailed", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected sentinel lost from chain: %v", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) || fe.Stage != StageCTS {
		t.Fatalf("provenance = %+v, want StageCTS", fe)
	}
}

// TestCancellationObservedWithinOneStage injects a Cancel fault at route
// stage entry and requires the pipeline to die inside that same stage —
// the cancel must be observed by the route inner loop, not dragged
// through later stages — and promptly.
func TestCancellationObservedWithinOneStage(t *testing.T) {
	nl := smallCore(t, ffetLib)
	f, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cancelledAt time.Time
	deactivate := faultinject.Activate(faultinject.New(1,
		faultinject.WithRate(1),
		faultinject.WithKinds(faultinject.Cancel),
		faultinject.WithSites("core.stage.route"),
		faultinject.WithCancelFunc(func() { cancelledAt = time.Now(); cancel() })))
	defer deactivate()
	err = f.RunToCtx(ctx, StagePower)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatalf("err %T is not a *FlowError", err)
	}
	if fe.Stage != StageRoute {
		t.Fatalf("cancel observed at stage %v, want StageRoute (within one stage)", fe.Stage)
	}
	if elapsed := time.Since(cancelledAt); elapsed > 10*time.Second {
		t.Fatalf("cancel took %v to be observed", elapsed)
	}
}

func TestDoubleRunAndDeadForkSemantics(t *testing.T) {
	nl := smallCore(t, ffetLib)
	f, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A second Run on a completed session re-executes nothing and returns
	// the same result object.
	res2, err := f.Run()
	if err != nil {
		t.Fatalf("double Run: %v", err)
	}
	if res1 != res2 {
		t.Error("double Run produced a different result object")
	}
	// Forking a healthy, halted parent works (covered in session_test);
	// forking a dead parent must not. Kill a fresh session and pin the
	// chain: ErrSessionDead wraps the original classified error.
	g, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	deactivate := faultinject.Activate(faultinject.New(3,
		faultinject.WithRate(1),
		faultinject.WithKinds(faultinject.Error),
		faultinject.WithSites("core.stage.synth")))
	_, runErr := g.Run()
	deactivate()
	if !errors.Is(runErr, ErrStageFailed) {
		t.Fatalf("injected synth failure = %v", runErr)
	}
	_, err = g.Fork(nil)
	if !errors.Is(err, ErrSessionDead) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Fork off dead parent = %v, want ErrSessionDead wrapping the injected cause", err)
	}
}

func TestForkAndRunToRaceFailFast(t *testing.T) {
	nl := smallCore(t, ffetLib)
	f, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Hold the session mid-RunTo at StagePlace entry via the test hook.
	entered := make(chan struct{})
	release := make(chan struct{})
	stageEnterHook = func(flow *Flow, s Stage) {
		if flow == f && s == StagePlace {
			close(entered)
			<-release
		}
	}
	defer func() { stageEnterHook = nil }()

	runDone := make(chan error, 1)
	go func() { runDone <- f.RunTo(StageCTS) }()
	<-entered

	if _, err := f.Fork(nil); !errors.Is(err, ErrForkRace) {
		t.Errorf("Fork mid-RunTo = %v, want ErrForkRace", err)
	}
	if err := f.RunTo(StagePower); !errors.Is(err, ErrForkRace) {
		t.Errorf("overlapping RunTo = %v, want ErrForkRace", err)
	}
	close(release)
	if err := <-runDone; err != nil {
		t.Fatalf("held RunTo failed: %v", err)
	}
	// Quiescent again: Fork works.
	if _, err := f.Fork(nil); err != nil {
		t.Fatalf("Fork after RunTo returned: %v", err)
	}
}

// TestConcurrentForkRunCancelStress hammers one parent session with
// randomized concurrent fork/run/cancel interleavings under -race. Every
// operation must either succeed or fail with a classified taxonomy error;
// successful sibling runs of the same config must agree bit-identically.
func TestConcurrentForkRunCancelStress(t *testing.T) {
	nl := smallCore(t, ffetLib)
	parent, err := NewFlow(nl, robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(StageCTS); err != nil {
		t.Fatal(err)
	}

	workers := 8
	itersPer := 3
	if testing.Short() {
		workers, itersPer = 4, 2
	}
	type outcome struct {
		bp   float64
		freq float64
	}
	var mu sync.Mutex
	seen := map[float64]outcome{}
	var wg sync.WaitGroup
	// One goroutine advances the parent itself, creating genuine windows
	// where Fork must fail fast instead of copying torn state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = parent.RunTo(StagePower)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			bps := []float64{0.5, 0.3, 0.16}
			for i := 0; i < itersPer; i++ {
				bp := bps[rng.Intn(len(bps))]
				child, err := parent.Fork(func(c *FlowConfig) { c.BackPinFraction = bp })
				if err != nil {
					if !errors.Is(err, ErrForkRace) && !errors.Is(err, ErrSessionDead) {
						t.Errorf("Fork: unclassified error %v", err)
					}
					continue
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(3) == 0 {
					ctx, cancel = context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
						cancel()
					}()
				}
				res, err := child.RunCtx(ctx)
				if cancel != nil {
					defer cancel()
				}
				if err != nil {
					if !errors.Is(err, ErrCancelled) && !errors.Is(err, ErrForkRace) &&
						!errors.Is(err, ErrSessionDead) {
						t.Errorf("RunCtx: unclassified error %v", err)
					}
					continue
				}
				mu.Lock()
				if prev, ok := seen[bp]; ok && prev.freq != res.AchievedFreqGHz {
					t.Errorf("bp=%.2f: freq %v vs %v across siblings", bp, prev.freq, res.AchievedFreqGHz)
				} else {
					seen[bp] = outcome{bp, res.AchievedFreqGHz}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if parent.Err() != nil {
		t.Fatalf("parent session died under concurrent forks: %v", parent.Err())
	}
}
