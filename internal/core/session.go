package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cell"
	"repro/internal/cts"
	"repro/internal/def"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/powerplan"
	"repro/internal/route"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/tech"
	"repro/internal/variation"
)

// Stage identifies one step of the physical implementation pipeline
// (Fig. 7), in execution order. Flow.RunTo executes up to and including a
// stage; Flow.Fork resumes a cloned session at the earliest stage a
// config change affects.
type Stage int

// Pipeline stages, in execution order.
const (
	StageSynth     Stage = iota // synthesis sizing + fanout buffering
	StageFloorplan              // core sizing + placement rows
	StagePowerplan              // BSPDN stripes + power tap cells
	StagePlace                  // global placement + IO port placement
	StageCTS                    // clock tree + legalization + refinement
	StagePartition              // Algorithm 1 pin redistribution + net split
	StageRoute                  // dual-sided global routing
	StageDEF                    // per-side DEF rendering + merge
	StageExtract                // dual-sided RC extraction
	StageSTA                    // static timing analysis
	StagePower                  // power analysis

	// NumStages is the pipeline length (StageTimes array size).
	NumStages = int(iota)
)

var stageNames = [NumStages]string{
	"synth", "floorplan", "powerplan", "place", "cts",
	"partition", "route", "def", "extract", "sta", "power",
}

// stageSites are the fault-injection site names consulted at each stage
// entry, precomputed so the (normally disabled) hook costs no per-call
// string concatenation.
var stageSites = func() (sites [NumStages]string) {
	for i, name := range stageNames {
		sites[i] = "core.stage." + name
	}
	return
}()

// String returns the stage's short name.
func (s Stage) String() string {
	if s < 0 || int(s) >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// stageFns dispatches a stage to its method; the index is the Stage.
var stageFns = [NumStages]func(*Flow) error{
	(*Flow).stageSynth,
	(*Flow).stageFloorplan,
	(*Flow).stagePowerplan,
	(*Flow).stagePlace,
	(*Flow).stageCTS,
	(*Flow).stagePartition,
	(*Flow).stageRoute,
	(*Flow).stageDEF,
	(*Flow).stageExtract,
	(*Flow).stageSTA,
	(*Flow).stagePower,
}

// firstAffectedStage returns the earliest pipeline stage whose inputs
// differ between two configs — the stage a forked session must resume
// from. Cases are ordered by stage; a field consumed by several stages
// (Seed feeds placement and pin assignment, Pattern feeds powerplan,
// partition and routing) is listed at its earliest consumer, since
// resuming there re-runs every later stage anyway. Returns
// Stage(NumStages) when no stage reads a changed field (e.g. only the
// cosmetic Name differs).
func firstAffectedStage(old, new FlowConfig) Stage {
	switch {
	case old.TargetFreqGHz != new.TargetFreqGHz || old.Synth != new.Synth:
		return StageSynth
	case old.Utilization != new.Utilization || old.AspectRatio != new.AspectRatio:
		return StageFloorplan
	case old.Pattern != new.Pattern:
		return StagePowerplan
	case old.Seed != new.Seed || old.Place != new.Place:
		return StagePlace
	case old.CTS != new.CTS:
		return StageCTS
	case old.BackPinFraction != new.BackPinFraction:
		return StagePartition
	case old.Route != new.Route || old.MaxDRVs != new.MaxDRVs:
		return StageRoute
	case old.STA != new.STA:
		return StageSTA
	case old.Power != new.Power:
		return StagePower
	}
	return Stage(NumStages)
}

// Flow is one checkpointable physical-implementation session: the
// pipeline of RunFlow split into explicit stages with inspectable
// intermediate state.
//
//	f, _ := core.NewFlow(nl, cfg)
//	f.RunTo(core.StageCTS)                     // shared prefix, once
//	g, _ := f.Fork(func(c *core.FlowConfig) {  // resumes at StagePartition
//	    c.BackPinFraction = 0.3
//	})
//	res, _ := g.Run()
//
// Fork clones the session at the deepest stage unaffected by the config
// delta, so a parameter sweep re-runs only the divergent suffix. Stage
// outputs are immutable once produced and shared between parent and
// children; the netlist — which placement and CTS mutate in place — is
// checkpointed at the two mutation boundaries (post-synth and
// post-global-placement) and forked children get their own Snapshot.
// Forked runs are bit-identical to from-scratch runs of the same config.
//
// Independent forked sessions may run concurrently: from StagePartition
// on, every stage only reads the shared netlist. A single session is
// guarded against concurrent misuse rather than serialized: overlapping
// RunTo calls, or a Fork while the parent is mid-RunTo, fail fast with
// ErrForkRace instead of corrupting checkpoint state.
type Flow struct {
	cfg   FlowConfig
	input *netlist.Netlist
	lib   *cell.Library
	st    *tech.Stack
	// keepSnaps enables the stage-boundary netlist checkpoints Fork
	// needs. Off for one-shot RunFlow calls, which fork nothing.
	keepSnaps bool

	// mu guards the session bookkeeping below (next, halted, err,
	// running, epoch). The long stage bodies execute outside the lock
	// under the running flag's exclusive ownership; Fork copies
	// checkpoint state under the lock and fails fast when it cannot.
	mu sync.Mutex
	// running marks a RunToCtx in flight. A second RunTo, or a Fork,
	// arriving while it is set returns ErrForkRace.
	running bool
	// epoch counts observable state transitions (stage completions,
	// halts, hard errors). Fork records it before the expensive
	// netlist snapshot it takes outside the lock and fails with
	// ErrForkRace if the parent advanced mid-copy.
	epoch uint64
	// runCtx is the context of the RunToCtx in flight; stage bodies
	// thread it into the cancellable inner loops. Only touched by the
	// running goroutine.
	runCtx context.Context

	next        Stage // first stage not yet executed
	halted      bool  // an early stage declared the run invalid
	reasonStage Stage // stage that set res.Reason (meaningful when Reason != "")
	err         error // first hard error; the session is dead once set

	res *FlowResult

	// Intermediate state, each slot owned by exactly one stage and
	// immutable afterwards (the netlist is the exception; see the
	// checkpoints).
	work      *netlist.Netlist // the working netlist (synth output, mutated through CTS)
	synthSnap *netlist.Netlist // checkpoint: post-synth, before placement mutates positions
	placeSnap *netlist.Netlist // checkpoint: post-global-placement, before CTS mutates structure
	fp        *floorplan.Plan
	pp        *powerplan.Result
	ctsRes    *cts.Result
	pa        *PinAssignment
	sides     *SideNets
	frontRes  *route.Result
	backRes   *route.Result
	netRC     []*extract.NetRC

	// Incremental STA state. staEng is the session's timing engine,
	// persisted as part of the StageSTA checkpoint: once this session's
	// STA has run, forked children that resume at StagePartition or later
	// (the netlist is shared read-only from there on, so the engine's
	// graph tables stay valid) inherit a Fork of it plus the RC database
	// it was timed against, and re-propagate only the cones their config
	// delta actually dirtied. Each child gets its own clone of the
	// engine's mutable arrival state, so concurrent forked children never
	// share engine scratch.
	staEng *sta.Engine
	// baseRC is the extraction database staEng's retained state was
	// computed under (the parent's post-STA view for a forked child; this
	// session's own view once its STA has run).
	baseRC []*extract.NetRC
	// dirtyRC lists the net Seqs whose re-extracted view differs from
	// baseRC; valid only when haveDirty is set (an empty dirty set is
	// meaningful — it means no cone needs re-timing at all).
	dirtyRC   []int32
	haveDirty bool

	// Incremental placement state, persisted as part of the StagePlace
	// checkpoint. placeBasis retains the legalizer's per-row
	// free-interval fold over the placeSnap positions; refineBasis
	// retains the refinement endpoint collection. Both are immutable
	// once built, so Fork shares them by pointer with children resuming
	// at StageCTS: the child re-legalizes only the CTS buffer delta
	// (place.LegalizeDelta) and re-collects refinement refs only for
	// clock-cone endpoints, instead of replaying full legalization + 3
	// Refine collections from the snapshot. Full Legalize/RefineCtx stay
	// the fallback on basis mismatch, mirroring the incremental-STA
	// contract above.
	placeBasis  *place.LegalBasis
	refineBasis *place.RefineBasis
	// noIncPlace disables the retained-placement fast path (scratch
	// arm for A/B benchmarks and bit-identity tests). Inherited by forks.
	noIncPlace bool
	// placeDeltaHits counts StageCTS executions that went through the
	// delta legalizer (observability for tests; owned by the running
	// goroutine).
	placeDeltaHits int

	// diff carries the parent artifacts a synth-diff fork stages for
	// adoption (see ForkSynthDiff); nil on every other session. Cleared at
	// the end of StageSTA so diff chains do not retain their ancestors.
	diff *synthDiffState
}

// NewFlow opens a staged flow session over a technology-mapped netlist.
// The input netlist is never mutated (synthesis works on a copy). Errors
// indicate structurally impossible configs; per-stage failures surface
// from RunTo/Run.
func NewFlow(nl *netlist.Netlist, cfg FlowConfig) (*Flow, error) {
	return newFlow(nl, cfg, true)
}

func newFlow(nl *netlist.Netlist, cfg FlowConfig, keepSnaps bool) (*Flow, error) {
	lib := nl.Lib
	st := lib.Stack
	if err := validateFlowConfig(st, &cfg); err != nil {
		return nil, err
	}
	return &Flow{
		cfg:       cfg,
		input:     nl,
		lib:       lib,
		st:        st,
		keepSnaps: keepSnaps,
		res:       &FlowResult{Config: cfg, Arch: st.Arch},
	}, nil
}

// Config returns the session's (normalized) configuration.
func (f *Flow) Config() FlowConfig { return f.cfg }

// SetIncrementalPlacement toggles the retained-placement fast path for
// this session and its future forks (on by default for checkpointed
// sessions). Placements are bit-identical either way; turning it off
// forces the full Legalize + Refine replay, which is the scratch arm of
// the A/B benchmarks. Call it before the session reaches StagePlace —
// it must not race a RunTo in flight.
func (f *Flow) SetIncrementalPlacement(on bool) {
	f.mu.Lock()
	f.noIncPlace = !on
	f.mu.Unlock()
}

// NextStage returns the first stage that has not yet executed;
// Stage(NumStages) once the pipeline is complete.
func (f *Flow) NextStage() Stage {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Done reports whether the stage has executed (or was skipped because an
// earlier stage halted the run as invalid).
func (f *Flow) Done(s Stage) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return s < f.next || f.halted
}

// Halted reports whether an early stage declared the run invalid
// (infeasible powerplan, placement violation); later stages are skipped.
func (f *Flow) Halted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.halted
}

// Err returns the hard error that killed the session, nil while it is
// healthy.
func (f *Flow) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Workspace exposes the working netlist after StageSynth (nil before):
// positions after StagePlace, clock buffers after StageCTS. Callers must
// not mutate it.
func (f *Flow) Workspace() *netlist.Netlist { return f.work }

// Floorplan exposes the plan after StageFloorplan (nil before).
func (f *Flow) Floorplan() *floorplan.Plan { return f.fp }

// Powerplan exposes the BSPDN plan after StagePowerplan (nil before).
func (f *Flow) Powerplan() *powerplan.Result { return f.pp }

// SideNets exposes the Algorithm 1 partition after StagePartition (nil
// before).
func (f *Flow) SideNets() *SideNets { return f.sides }

// RouteResult exposes one side's routing outcome after StageRoute (nil
// before, and nil for a side with no routing task).
func (f *Flow) RouteResult(side tech.Side) *route.Result {
	if side == tech.Back {
		return f.backRes
	}
	return f.frontRes
}

// VariationBasis exposes the StageSTA checkpoint as a Monte Carlo
// overlay-variation basis: the session's retained timing engine (the
// study forks it per worker — extraction is never re-run), the RC view
// its state was computed under, the analysis conditions, the target
// period, and the per-net per-side routed lengths that weight the two
// overlay axes. The session must have completed StageSTA on a valid run;
// the basis borrows session state, so the session must not be re-run or
// forked-and-analyzed while a sampler is being built from it.
func (f *Flow) VariationBasis() (*variation.Basis, error) {
	if !f.Done(StageSTA) || f.Halted() {
		return nil, fmt.Errorf("core: variation basis needs a valid session past StageSTA")
	}
	if f.staEng == nil || f.baseRC == nil {
		return nil, fmt.Errorf("core: session has no retained timing basis")
	}
	staOpt := f.cfg.STA
	if staOpt.InputSlewPs == 0 {
		staOpt = sta.DefaultOptions()
	}
	fw := make([]int64, len(f.work.Nets))
	bw := make([]int64, len(f.work.Nets))
	for _, n := range f.work.Nets {
		if t := f.frontRes.Tree(n.Seq); t != nil {
			fw[n.Seq] = t.WirelenNm
		}
		if t := f.backRes.Tree(n.Seq); t != nil {
			bw[n.Seq] = t.WirelenNm
		}
	}
	return &variation.Basis{
		Engine:         f.staEng,
		NetRC:          f.baseRC,
		ClockArrivalPs: f.ctsRes.ArrivalPs,
		STAOpt:         staOpt,
		PeriodPs:       1000.0 / f.cfg.TargetFreqGHz,
		FrontWirelenNm: fw,
		BackWirelenNm:  bw,
	}, nil
}

// RunTo executes pipeline stages up to and including target (clamped to
// StagePower). Already-executed stages never re-run — calling RunTo
// twice with the same target is free, which makes a Flow a resumable
// checkpoint. If an earlier stage halted the run as invalid, RunTo is a
// no-op; inspect Result. A hard error kills the session; every
// subsequent call returns ErrSessionDead wrapping the original error.
func (f *Flow) RunTo(target Stage) error {
	return f.RunToCtx(context.Background(), target)
}

// stageEnterHook, when set (tests only), runs at every stage entry before
// the stage body — the deterministic way to hold a session mid-RunTo.
var stageEnterHook func(*Flow, Stage)

// RunToCtx is RunTo under a context: cancellation is observed at every
// stage boundary and inside the three long-running inner loops (route A*
// expansion, placement refinement passes, STA levelized propagation), so
// a cancel returns within one stage — classified as ErrCancelled — after
// a bounded number of inner iterations. A cancelled run is a hard error:
// a stage was interrupted mid-mutation, so the session is dead and retry
// means forking a healthy parent or opening a fresh session.
//
// A RunToCtx overlapping another RunToCtx on the same session fails fast
// with ErrForkRace without touching the pipeline.
func (f *Flow) RunToCtx(ctx context.Context, target Stage) error {
	if ctx == nil {
		ctx = context.Background()
	}
	f.mu.Lock()
	if f.err != nil {
		defer f.mu.Unlock()
		return f.deadErrLocked()
	}
	if f.running {
		defer f.mu.Unlock()
		return &FlowError{Kind: ErrForkRace, Stage: f.next, Config: f.cfg.Name,
			Err: errors.New("RunTo while another RunTo is in flight")}
	}
	f.running = true
	f.runCtx = ctx
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.running = false
		f.runCtx = nil
		f.mu.Unlock()
	}()

	if target > StagePower {
		target = StagePower
	}
	done := ctx.Done()
	for !f.halted && f.next <= target {
		s := f.next
		if done != nil {
			select {
			case <-done:
				return f.kill(&FlowError{Kind: ErrCancelled, Stage: s,
					Config: f.cfg.Name, Err: ctx.Err()})
			default:
			}
		}
		if stageEnterHook != nil {
			stageEnterHook(f, s)
		}
		t0 := time.Now()
		if err := f.runStage(s); err != nil {
			return f.kill(classify(s, f.cfg.Name, err))
		}
		f.res.StageTimes[s] = time.Since(t0)
		f.mu.Lock()
		f.next = s + 1
		f.epoch++
		f.mu.Unlock()
	}
	return nil
}

// runStage executes one stage body with panic containment and the fault
// hook: a panicking stage surfaces as ErrStagePanic on this session only,
// never as a process crash.
func (f *Flow) runStage(s Stage) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError(s, f.cfg.Name, r)
		}
	}()
	if err := faultinject.Fire(stageSites[s]); err != nil {
		return err
	}
	return stageFns[s](f)
}

// kill records the session's first hard error — the session is dead from
// here on — and returns it.
func (f *Flow) kill(err error) error {
	f.mu.Lock()
	f.err = err
	f.epoch++
	f.mu.Unlock()
	return err
}

// deadErrLocked wraps the error that killed the session as
// ErrSessionDead for calls arriving after the death; callers hold mu.
func (f *Flow) deadErrLocked() error {
	return &FlowError{Kind: ErrSessionDead, Stage: f.next, Config: f.cfg.Name, Err: f.err}
}

// Run executes the remaining stages and returns the assembled result.
func (f *Flow) Run() (*FlowResult, error) {
	return f.RunCtx(context.Background())
}

// RunCtx is Run under a context; see RunToCtx for cancellation and
// error-classification semantics.
func (f *Flow) RunCtx(ctx context.Context) (*FlowResult, error) {
	if err := f.RunToCtx(ctx, StagePower); err != nil {
		return nil, err
	}
	return f.Result(), nil
}

// Result assembles the FlowResult from the stages executed so far. A run
// is Valid only when the whole pipeline completed with no violation
// Reason; a halted or partial pipeline yields Valid=false with the
// metrics of the stages that did run.
func (f *Flow) Result() *FlowResult {
	f.mu.Lock()
	next := f.next
	f.mu.Unlock()
	f.res.Valid = int(next) == NumStages && f.res.Reason == ""
	return f.res
}

// halt marks the run invalid at the given stage: the reason is recorded
// and all later stages are skipped, matching the one-shot flow's early
// return. The session itself stays healthy (Fork can still branch off
// any stage before the halt).
func (f *Flow) halt(s Stage, reason string) {
	f.mu.Lock()
	f.res.Reason = reason
	f.reasonStage = s
	f.halted = true
	f.epoch++
	f.mu.Unlock()
}

// stageCtx returns the context of the RunToCtx in flight (Background for
// stage bodies invoked outside a run, which cannot happen today).
func (f *Flow) stageCtx() context.Context {
	if f.runCtx != nil {
		return f.runCtx
	}
	return context.Background()
}

// Fork clones the session under a mutated config, resuming at the
// deepest stage unaffected by the config delta: every stage before the
// resume point is inherited from the parent instead of re-running. The
// parent is left untouched and can keep running or fork again; the child
// is independent (mutable state is snapshotted, immutable stage outputs
// are shared). Fork(nil) clones at the parent's current stage.
//
// Forking never executes stages: if the parent has not yet reached the
// divergence stage, the child simply resumes wherever the parent
// stopped. Run the parent to the deepest shared stage first (e.g.
// RunTo(StageCTS) before a BackPinFraction sweep) to maximize reuse.
//
// Fork is safe under arbitrary concurrency: forking a parent that is
// mid-RunTo fails fast with ErrForkRace (no partial checkpoint is ever
// shared), as does a fork that observes the parent advancing while the
// child's netlist snapshot was being taken. Concurrent forks off a
// quiescent parent serialize on the session lock; the expensive deep
// snapshot happens outside it.
func (f *Flow) Fork(mutate func(*FlowConfig)) (*Flow, error) {
	f.mu.Lock()
	if f.err != nil {
		defer f.mu.Unlock()
		return nil, f.deadErrLocked()
	}
	if f.running {
		defer f.mu.Unlock()
		return nil, &FlowError{Kind: ErrForkRace, Stage: f.next, Config: f.cfg.Name,
			Err: errors.New("fork off a parent mid-RunTo")}
	}
	epoch := f.epoch
	cfg := f.cfg
	if mutate != nil {
		mutate(&cfg)
	}
	if err := validateFlowConfig(f.st, &cfg); err != nil {
		f.mu.Unlock()
		return nil, err
	}
	resume := firstAffectedStage(f.cfg, cfg)
	if resume > f.next {
		resume = f.next
	}
	// Resuming between floorplan and CTS needs a checkpoint of the
	// netlist as it stood at that boundary; without one (one-shot
	// sessions don't keep them) fall back to a full re-run.
	if resume > StageSynth && resume <= StagePlace && f.synthSnap == nil {
		resume = StageSynth
	}
	if resume == StageCTS && f.placeSnap == nil {
		resume = StageSynth
	}

	child := &Flow{
		cfg:        cfg,
		input:      f.input,
		lib:        f.lib,
		st:         f.st,
		keepSnaps:  f.keepSnaps,
		noIncPlace: f.noIncPlace,
		next:       resume,
		res:        &FlowResult{Config: cfg, Arch: f.st.Arch},
	}
	copyResultPrefix(child.res, f.res, resume)
	if f.res.Reason != "" && f.reasonStage < resume {
		// The invalidating stage is part of the inherited prefix; the
		// child is halted exactly like a from-scratch run would be.
		child.res.Reason = f.res.Reason
		child.reasonStage = f.reasonStage
		child.halted = f.halted
	}

	// Inherit stage outputs below the resume point. All are immutable
	// once produced except the netlist, which later stages mutate up
	// through StageCTS: a child that re-runs any mutating stage gets its
	// own Snapshot of the matching checkpoint; from StagePartition on,
	// the final netlist is shared read-only. A child that inherited a
	// halt will never execute a stage, so it skips the deep copies (the
	// checkpoint pointers still carry over for its own forks). The deep
	// Snapshot is deferred to after the session lock is released — the
	// checkpoints are immutable once recorded, so only the pointer reads
	// need the lock.
	var snapSrc *netlist.Netlist
	if resume > StageSynth {
		child.synthSnap = f.synthSnap
		switch {
		case resume <= StagePlace:
			if !child.halted {
				snapSrc = f.synthSnap
			}
		case resume == StageCTS:
			child.placeSnap = f.placeSnap
			if !child.halted {
				snapSrc = f.placeSnap
			}
		default:
			child.placeSnap = f.placeSnap
			child.work = f.work
		}
	}
	// Incremental placement basis: both bases describe the placeSnap
	// positions and are immutable once built, so any child that will not
	// re-run StagePlace (and therefore works on a snapshot with those
	// exact positions, or only hands the pointers on to its own forks)
	// shares them.
	if resume >= StageCTS {
		child.placeBasis = f.placeBasis
		child.refineBasis = f.refineBasis
	}
	if resume > StageFloorplan {
		child.fp = f.fp
	}
	if resume > StagePowerplan {
		child.pp = f.pp
	}
	if resume > StageCTS {
		child.ctsRes = f.ctsRes
	}
	if resume > StagePartition {
		child.pa = f.pa
		child.sides = f.sides
	}
	if resume > StageRoute {
		child.frontRes = f.frontRes
		child.backRes = f.backRes
	}
	if resume > StageExtract {
		child.netRC = f.netRC
	}
	// Incremental STA basis: once this session holds a timed state
	// (its own StageSTA ran, or it inherited a basis it hasn't re-timed
	// yet), a child resuming at StagePartition or later shares the same
	// netlist, so the engine's graph tables are valid for it — hand it a
	// clone of the propagation state plus the RC view that state was
	// computed under. That view is baseRC, not netRC: a session forked
	// between StageExtract and StageSTA has re-extracted (netRC is new)
	// without re-timing, and diffing against the newer view would let
	// stale cones survive. The child's StageExtract diffs its
	// re-extracted view against baseRC and StageSTA re-times only the
	// dirty cones. (Children resuming earlier get a netlist snapshot of
	// their own; the engine is bound to the parent's instances and must
	// not carry over.)
	if resume >= StagePartition && f.staEng != nil && f.baseRC != nil {
		// Only a child that will actually re-time (it resumes at or
		// before StageSTA and isn't halted) mutates its engine, so only
		// it pays for a clone of the propagation state. Every other
		// child shares the parent's engine read-only: its own StageSTA
		// never runs (an engine is mutated solely by its owning
		// session's StageSTA, which executes at most once), and it only
		// passes the state on to its own forks.
		if resume <= StageSTA && !child.halted {
			child.staEng = f.staEng.Fork()
		} else {
			child.staEng = f.staEng
		}
		child.baseRC = f.baseRC
	}
	f.mu.Unlock()

	if snapSrc != nil {
		child.work = snapSrc.Snapshot()
	}

	// Epoch recheck: if the parent ran, halted, or died while the deep
	// snapshot was being taken, the prefix this child copied may mix two
	// generations of parent state — fail fast rather than hand it out.
	f.mu.Lock()
	raced := f.epoch != epoch
	f.mu.Unlock()
	if raced {
		return nil, &FlowError{Kind: ErrForkRace, Stage: resume, Config: cfg.Name,
			Err: errors.New("parent advanced while fork was copying checkpoint state")}
	}
	return child, nil
}

// copyResultPrefix copies into dst the FlowResult fields owned by stages
// strictly before upTo. Fields of later stages stay zero — the child
// either recomputes them or, for a halted run, legitimately never had
// them.
func copyResultPrefix(dst, src *FlowResult, upTo Stage) {
	if upTo > StageSynth {
		dst.SynthBuffers = src.SynthBuffers
	}
	if upTo > StageFloorplan {
		dst.CoreAreaUm2 = src.CoreAreaUm2
		dst.CoreW, dst.CoreH = src.CoreW, src.CoreH
		dst.CellAreaUm2 = src.CellAreaUm2
	}
	if upTo > StageCTS {
		dst.CTSBuffers = src.CTSBuffers
		dst.RealUtilization = src.RealUtilization
		dst.HPWLUm = src.HPWLUm
	}
	if upTo > StagePartition {
		dst.PinStats = src.PinStats
		dst.Rerouted = src.Rerouted
	}
	if upTo > StageRoute {
		dst.DRVsFront, dst.DRVsBack = src.DRVsFront, src.DRVsBack
		dst.WirelenFrontUm = src.WirelenFrontUm
		dst.WirelenBackUm = src.WirelenBackUm
		dst.Vias = src.Vias
	}
	if upTo > StageDEF {
		dst.FrontDEF, dst.BackDEF, dst.MergedDEF = src.FrontDEF, src.BackDEF, src.MergedDEF
	}
	if upTo > StageSTA {
		dst.STA = src.STA
		dst.MinPeriodPs = src.MinPeriodPs
		dst.AchievedFreqGHz = src.AchievedFreqGHz
	}
	if upTo > StagePower {
		dst.Power = src.Power
		dst.PowerUW = src.PowerUW
		dst.EffGHzPerW = src.EffGHzPerW
	}
	for s := StageSynth; s < upTo && int(s) < NumStages; s++ {
		dst.StageTimes[s] = src.StageTimes[s]
	}
}

// --- Stage bodies -----------------------------------------------------------
//
// The bodies below are RunFlow's original sections, unchanged in
// operation order so the staged pipeline is bit-identical to the
// monolithic flow it replaced (core.TestFlowGolden holds both to the
// same artifacts).

// stageSynth sizes and buffers a copy of the input netlist.
func (f *Flow) stageSynth() error {
	sopt := f.cfg.Synth
	if sopt.TargetFreqGHz == 0 {
		sopt = synth.DefaultOptions(f.cfg.TargetFreqGHz)
	}
	syn, err := synth.Run(f.input, sopt)
	if err != nil {
		return err
	}
	f.work = syn.Netlist
	f.res.SynthBuffers = syn.BuffersAdded
	if f.keepSnaps {
		f.synthSnap = f.work.Snapshot()
	}
	return nil
}

// stageFloorplan sizes the core and generates placement rows.
func (f *Flow) stageFloorplan() error {
	// Reserve ~2.5% headroom for clock tree buffers inserted after the
	// floorplan is frozen, so the requested utilization refers to the
	// post-CTS cell area (as the paper reports it).
	fpArea := int64(float64(f.work.CellAreaNm2()) * 1.025)
	fp, err := floorplan.New(f.st, fpArea, f.cfg.Utilization, f.cfg.AspectRatio)
	if err != nil {
		return err
	}
	f.fp = fp
	f.res.CoreAreaUm2 = fp.CoreAreaUm2()
	f.res.CoreW, f.res.CoreH = fp.Core.W(), fp.Core.H()
	f.res.CellAreaUm2 = f.work.CellAreaUm2()
	return nil
}

// stagePowerplan plans the BSPDN stripes and power tap cells; an
// infeasible plan halts the run as invalid.
func (f *Flow) stagePowerplan() error {
	pp, err := powerplan.Plan(f.fp, f.cfg.Pattern)
	if err != nil {
		return err
	}
	f.pp = pp
	if !pp.Feasible {
		f.halt(StagePowerplan, pp.Reason)
	}
	return nil
}

// stagePlace runs global placement (and IO port placement).
func (f *Flow) stagePlace() error {
	popt := f.cfg.Place
	if popt.GlobalIters == 0 {
		popt = place.DefaultOptions()
		popt.Seed = f.cfg.Seed
	}
	if err := place.GlobalCtx(f.stageCtx(), f.work, f.fp, popt); err != nil {
		return err
	}
	if f.keepSnaps {
		f.placeSnap = f.work.Snapshot()
		f.mu.Lock()
		inc := !f.noIncPlace
		f.mu.Unlock()
		if inc {
			// Retain the legalization fold and refinement endpoint
			// collection over the checkpoint positions. Children forked
			// at StageCTS share both by pointer; this session's own
			// StageCTS recoups the fold cost through the delta path. A
			// nil basis (config cannot legalize) leaves the full path,
			// which halts the run with the same violation.
			f.placeBasis = place.NewLegalBasis(f.work, f.fp, f.pp.Blockages)
			f.refineBasis = place.NewRefineBasis(f.work, f.fp)
		}
	}
	return nil
}

// stageCTS builds the clock tree, then legalizes and refines the full
// placement (CTS buffers included); a legalization failure halts the run
// as invalid.
func (f *Flow) stageCTS() error {
	copt := f.cfg.CTS
	if copt.MaxLeafFanout == 0 {
		copt = cts.DefaultOptions()
	}
	// The refinement dirty set needs the clock net's endpoints as they
	// stood before CTS rewires them onto leaf buffer nets.
	var dirty []int32
	if f.refineBasis != nil {
		dirty = clockEndpointSeqs(f.work, nil)
	}
	ctsRes, err := cts.Run(f.work, f.fp, copt)
	if err != nil {
		return err
	}
	f.ctsRes = ctsRes
	f.res.CTSBuffers = ctsRes.Buffers
	f.res.RealUtilization = float64(f.work.CellAreaNm2()) / float64(f.fp.Core.Area())
	ctx := f.stageCtx()
	// CTS only appends buffers (base positions untouched), so the moved
	// set for delta legalization is the appended instances — plus, on a
	// synth-diff fork sharing a neighbor's basis, the base cells whose
	// width diverged from the recording (resized drives no longer fit
	// their recorded slots and must be re-probed). On any basis mismatch
	// LegalizeDelta restores the input positions and the full legalizer
	// runs as if the fast path never existed.
	legal := false
	if f.placeBasis != nil {
		diverged := f.placeBasis.DivergedWidthSeqs(f.work, f.fp)
		moved := make([]*netlist.Instance, 0, len(diverged)+len(f.work.Instances)-f.placeBasis.NumBaseInstances())
		for _, seq := range diverged {
			moved = append(moved, f.work.Instances[seq])
		}
		for _, inst := range f.work.Instances[f.placeBasis.NumBaseInstances():] {
			if !inst.Fixed {
				moved = append(moved, inst)
			}
		}
		if place.LegalizeDelta(f.work, f.fp, f.pp.Blockages, f.placeBasis, moved) == nil {
			legal = true
			f.placeDeltaHits++
		}
		if f.refineBasis != nil {
			// Resized cells also invalidate their recorded refinement
			// widths; the patched collection refreshes dirty seqs.
			dirty = append(dirty, diverged...)
		}
	}
	if !legal {
		if err := place.Legalize(f.work, f.fp, f.pp.Blockages); err != nil {
			// A legalization failure is a property of the config (run invalid,
			// session healthy), not a session fault.
			f.halt(StageCTS, fmt.Sprintf("placement violation: %v", err))
			return nil
		}
	}
	refined := false
	if f.refineBasis != nil {
		// Connectivity changed only for the old clock endpoints (flops
		// rewired onto leaf nets, the old root driver), the new clock
		// endpoints, and the appended buffers (re-collected
		// automatically for Seqs past the basis).
		dirty = clockEndpointSeqs(f.work, dirty)
		if refs, widths, ok := f.refineBasis.PatchedRefs(f.work, f.fp, dirty); ok {
			if err := place.RefineRefsCtx(ctx, f.work, f.fp, f.pp.Blockages, 3, refs, widths); err != nil {
				return err
			}
			refined = true
		}
	}
	if !refined {
		if err := place.RefineCtx(ctx, f.work, f.fp, f.pp.Blockages, 3); err != nil {
			return err
		}
	}
	f.res.HPWLUm = float64(place.HPWL(f.work, f.fp)) / 1000
	return nil
}

// clockEndpointSeqs appends the instance Seqs on the current clock net
// (driver + sinks) to buf. Called before and after cts.Run, it yields
// the instances whose connectivity the tree build touches.
func clockEndpointSeqs(nl *netlist.Netlist, buf []int32) []int32 {
	clk := nl.ClockNet()
	if clk == nil {
		return buf
	}
	if clk.Driver.Inst != nil {
		buf = append(buf, int32(clk.Driver.Inst.Seq))
	}
	for _, s := range clk.Sinks {
		if s.Inst != nil {
			buf = append(buf, int32(s.Inst.Seq))
		}
	}
	return buf
}

// stagePartition redistributes input pins and splits every net into
// per-side routing tasks (Algorithm 1). From here on no stage mutates
// the netlist, so forked sessions share it read-only.
func (f *Flow) stagePartition() error {
	pa, err := AssignPins(f.lib, f.cfg.BackPinFraction, f.cfg.Seed, f.work)
	if err != nil {
		return err
	}
	f.pa = pa
	pinAt := func(ref netlist.PinRef) geom.Point { return pinLocation(ref, f.fp) }
	var sides *SideNets
	if d := f.diff; d != nil {
		if sides = d.tryPatchPartition(f, pa, pinAt); sides != nil {
			d.stats.PartitionPatched = true
		}
	}
	if sides == nil {
		var err error
		sides, err = Partition(f.work, pa, f.cfg.Pattern, pinAt)
		if err != nil {
			return err
		}
	}
	f.sides = sides
	f.res.PinStats = sides.Stats()
	f.res.Rerouted = sides.Rerouted
	return nil
}

// stageRoute routes both sides concurrently; crossing the MaxDRVs budget
// records the violation Reason but analysis continues (the paper reports
// only valid points; callers filter on Valid).
func (f *Flow) stageRoute() error {
	ropt := f.cfg.Route
	if ropt.GCellNm == 0 {
		ropt = route.DefaultOptions()
	}
	if f.st.Arch == tech.CFET && ropt.PinAccessFactor <= 1 {
		// Every CFET pin is reached from the single frontside through a
		// 4T-tall cell whose drain supervias block access tracks; the
		// FFET's symmetric structure removes these (Section II.B).
		ropt.PinAccessFactor = 1.5
	}
	// The two sides route concurrently: Algorithm 1 already split the
	// nets into disjoint per-side tasks over independent grids ("the
	// global & detailed routing are performed independently on both
	// sides"), so dual-sided routing is embarrassingly parallel and the
	// results are identical to routing the sides back to back.
	var (
		frontRes, backRes *route.Result
		frontErr, backErr error
		wg                sync.WaitGroup
	)
	ctx := f.stageCtx()
	runSide := func(side tech.Side, nets []*route.Net, out **route.Result, errOut *error) {
		defer wg.Done()
		layers := f.st.SideRoutingLayers(f.cfg.Pattern, side)
		r, err := route.NewRouter(f.fp.Core, side, layers, ropt)
		if err != nil {
			*errOut = err
			return
		}
		*out, *errOut = r.RunCtx(ctx, nets)
	}
	// A synth-diff fork adopts the parent's routed result wholesale for a
	// side whose routing computation is provably unchanged (see
	// tryAdoptRoute); only non-adopted sides run the router.
	adoptedFront, adoptedBack := false, false
	if d := f.diff; d != nil {
		if res, ok := d.tryAdoptRoute(f, tech.Front, f.sides.Front, ropt); ok {
			frontRes, adoptedFront = res, true
			d.stats.RouteAdoptedFront = true
		}
		if res, ok := d.tryAdoptRoute(f, tech.Back, f.sides.Back, ropt); ok {
			backRes, adoptedBack = res, true
			d.stats.RouteAdoptedBack = true
		}
	}
	if len(f.sides.Front) > 0 && !adoptedFront {
		wg.Add(1)
		go runSide(tech.Front, f.sides.Front, &frontRes, &frontErr)
	}
	if len(f.sides.Back) > 0 && !adoptedBack {
		wg.Add(1)
		go runSide(tech.Back, f.sides.Back, &backRes, &backErr)
	}
	wg.Wait()
	if frontErr != nil {
		return frontErr
	}
	if backErr != nil {
		return backErr
	}
	f.frontRes, f.backRes = frontRes, backRes
	res := f.res
	if frontRes != nil {
		res.DRVsFront = frontRes.DRVs
		res.WirelenFrontUm = float64(frontRes.WirelenNm) / 1000
		res.Vias += frontRes.ViaCount
	}
	if backRes != nil {
		res.DRVsBack = backRes.DRVs
		res.WirelenBackUm = float64(backRes.WirelenNm) / 1000
		res.Vias += backRes.ViaCount
	}
	if res.DRVs() >= f.cfg.MaxDRVs {
		res.Reason = fmt.Sprintf("routing violations: %d DRVs (front %d, back %d) >= %d",
			res.DRVs(), res.DRVsFront, res.DRVsBack, f.cfg.MaxDRVs)
		f.reasonStage = StageRoute
	}
	return nil
}

// stageDEF renders both per-side physical databases and their merge.
func (f *Flow) stageDEF() error {
	// A side whose routed result was adopted from the diff parent renders
	// a bit-identical nets section (pin names, gcell-center wire nodes and
	// vias are all resize-invariant), so the parent's is shared outright.
	// Components are always rebuilt: resized instances change masters.
	var adoptFront, adoptBack []*def.Net
	if d := f.diff; d != nil {
		if d.stats.RouteAdoptedFront && d.frontDEF != nil {
			adoptFront = d.frontDEF.Nets
			d.stats.DEFNetsShared++
		}
		if d.stats.RouteAdoptedBack && d.backDEF != nil {
			adoptBack = d.backDEF.Nets
			d.stats.DEFNetsShared++
		}
	}
	f.res.FrontDEF = buildDEF(f.work, f.fp, f.pp, f.frontRes, tech.Front, f.cfg, adoptFront)
	f.res.BackDEF = buildDEF(f.work, f.fp, f.pp, f.backRes, tech.Back, f.cfg, adoptBack)
	merged, err := def.Merge(f.work.Name, f.res.FrontDEF, f.res.BackDEF)
	if err != nil {
		return err
	}
	f.res.MergedDEF = merged
	return nil
}

// stageExtract runs dual-sided RC extraction into the dense Seq-indexed
// database.
func (f *Flow) stageExtract() error {
	// The extraction database is dense: one NetRC per net, indexed by the
	// net's Seq, backed by a single contiguous store. STA and power read
	// it by Seq — no name-keyed maps anywhere on the analysis tail.
	work, sides := f.work, f.sides
	eopt := extract.DefaultOptions()
	rcStore := make([]extract.NetRC, len(work.Nets))
	netRC := make([]*extract.NetRC, len(work.Nets))
	// Pre-carve every net's Elmore storage from one flat arena; ExtractInto
	// reuses storage of sufficient capacity, so the whole extraction makes
	// three allocations total.
	totalSinks := 0
	for _, n := range work.Nets {
		totalSinks += len(n.Sinks)
	}
	elArena := make([]float64, totalSinks)
	carved := 0
	for _, n := range work.Nets {
		rcStore[n.Seq].ElmorePs = elArena[carved : carved+len(n.Sinks) : carved+len(n.Sinks)]
		carved += len(n.Sinks)
	}
	ex := extract.NewExtractor()
	for _, n := range work.Nets {
		ex.ExtractInto(&rcStore[n.Seq], f.st, extract.NetInput{
			Name:      n.Name,
			Front:     f.frontRes.Tree(n.Seq),
			Back:      f.backRes.Tree(n.Seq),
			SinkPos:   sides.SinkPos[n.Seq],
			SinkCapFF: sides.SinkCapFF[n.Seq],
			Order:     sides.SinkOrder[n.Seq],
		}, eopt)
		netRC[n.Seq] = &rcStore[n.Seq]
	}
	f.netRC = netRC
	// Report the changed-net set against the inherited timing basis:
	// nets whose re-extracted view is bit-identical to the parent's are
	// clean and their cones keep the parent's arrivals; everything else
	// is dirty and gets re-propagated at StageSTA.
	if f.baseRC != nil {
		f.dirtyRC = extract.DiffRC(f.dirtyRC[:0], f.baseRC, netRC)
		if d := f.diff; d != nil && len(d.changedNets) > 0 {
			// A resized driver can leave its output net's RC bit-identical
			// while its own delay arcs changed; seed the dirty set with the
			// diff's changed nets so Reanalyze re-evaluates those cones too.
			seen := make([]bool, len(work.Nets))
			for _, s := range f.dirtyRC {
				seen[s] = true
			}
			for _, s := range d.changedNets {
				if int(s) < len(seen) && !seen[s] {
					f.dirtyRC = append(f.dirtyRC, s)
				}
			}
		}
		f.haveDirty = true
	}
	return nil
}

// stageSTA analyzes timing over the extracted RC database. A session that
// inherited a timing basis from its fork parent re-propagates only the
// cones of nets whose RC changed (sta.Engine.Reanalyze); everything else
// — including a session whose basis didn't survive the fork, or whose STA
// options diverged — runs the full propagation. Both paths produce
// bit-identical results; the incremental one just skips work.
func (f *Flow) stageSTA() error {
	staOpt := f.cfg.STA
	if staOpt.InputSlewPs == 0 {
		staOpt = sta.DefaultOptions()
	}
	eng := f.staEng
	if eng == nil && f.diff != nil && f.diff.eng != nil {
		// Synth-diff fork: re-stamp the parent's engine over the child's
		// netlist (same graph shape by SeqStable; resized instances get
		// fresh arc rows) so the parent's arrival state seeds Reanalyze.
		// Any restamp failure just builds a fresh engine, whose analysis
		// runs the full propagation — bit-identical either way.
		if faultinject.Fire("core.sta.restamp") == nil {
			if e2, err := f.diff.eng.ForkRestamped(f.work, f.diff.resized); err == nil {
				eng = e2
				f.diff.stats.STARestamped = true
			}
		}
	}
	if eng == nil {
		var err error
		if eng, err = sta.NewEngine(f.work); err != nil {
			return err
		}
	}
	in := sta.Input{
		NetRC:          f.netRC,
		ClockArrivalPs: f.ctsRes.ArrivalPs,
	}
	// Analyze directly into a detached Result: FlowResults are memoized
	// by exp.Suite, so the stored Result must not alias the Engine's
	// reusable storage.
	staRes := &sta.Result{}
	ctx := f.stageCtx()
	var err error
	if f.haveDirty {
		err = eng.ReanalyzeIntoCtx(ctx, staRes, in, staOpt, f.dirtyRC)
	} else {
		err = eng.AnalyzeIntoCtx(ctx, staRes, in, staOpt)
	}
	if err != nil {
		return err
	}
	// The engine now holds this session's post-STA state over f.netRC:
	// persist both as the StageSTA checkpoint future forks seed from.
	f.staEng = eng
	f.baseRC = f.netRC
	f.res.STA = staRes
	f.res.MinPeriodPs = staRes.MinPeriodPs
	f.res.AchievedFreqGHz = staRes.AchievedFreqGHz
	// The diff state has served every adopting stage; drop it so a chain
	// of diff forks does not retain each ancestor's netlist and routing.
	f.diff = nil
	return nil
}

// stagePower runs power analysis at the achieved frequency.
func (f *Flow) stagePower() error {
	pwOpt := f.cfg.Power
	if pwOpt.Activity == 0 {
		pwOpt = power.DefaultOptions()
	}
	pw := power.Analyze(f.work, f.st, f.netRC, f.res.AchievedFreqGHz, pwOpt)
	f.res.Power = pw
	f.res.PowerUW = pw.TotalUW
	f.res.EffGHzPerW = pw.EfficiencyGHzPerW()
	return nil
}
