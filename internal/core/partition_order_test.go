package core

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

// legacyPinName renders the pre-refactor string pin id ("inst/pin",
// ports as "PIN/name"); the allocation-free comparator must order
// exactly like strings.Compare over these.
func legacyPinName(r netlist.PinRef) string {
	if r.IsPort() {
		return "PIN/" + r.Port.Name
	}
	return r.Inst.Name + "/" + r.Pin
}

// TestCmpLegacyPinNameMatchesStrings drives the segment-walking
// comparator with adversarial name pairs — prefixes, characters sorting
// below and above '/', and port/instance mixes — and checks it agrees
// with strings.Compare over the rendered concatenations in every
// direction. This is the property that keeps extraction's float
// accumulation order (and hence every FlowResult metric) bit-identical
// to the string-keyed flow.
func TestCmpLegacyPinNameMatchesStrings(t *testing.T) {
	insts := []string{
		"a", "ab", "a-b", "a.b", "a_b", "u1", "u10", "u2", "u_buf_1",
		"PIN", "PINX", "PI", "z", "A", "", "u!x", "u/x",
	}
	pins := []string{"I", "A1", "A2", "Z", "ZN", "CP", "D", "", "a"}
	var refs []netlist.PinRef
	for _, in := range insts {
		inst := &netlist.Instance{Name: in}
		for _, p := range pins {
			refs = append(refs, netlist.PinRef{Inst: inst, Pin: p})
		}
	}
	for _, p := range []string{"clk", "x0", "x10", "x2", "out"} {
		refs = append(refs, netlist.PinRef{Port: &netlist.Port{Name: p}})
	}
	for _, a := range refs {
		for _, b := range refs {
			want := strings.Compare(legacyPinName(a), legacyPinName(b))
			if got := cmpLegacyPinName(a, b); got != want {
				t.Fatalf("cmp(%q, %q) = %d, want %d",
					legacyPinName(a), legacyPinName(b), got, want)
			}
		}
	}
}

// TestSortSinksByLegacyNameOrder checks the arena-backed insertion sort
// produces the exact permutation sorting the rendered names would.
func TestSortSinksByLegacyNameOrder(t *testing.T) {
	mk := func(inst, pin string) netlist.PinRef {
		return netlist.PinRef{Inst: &netlist.Instance{Name: inst}, Pin: pin}
	}
	sinks := []netlist.PinRef{
		mk("u10", "I"), mk("u2", "A1"), mk("u1", "ZN"),
		{Port: &netlist.Port{Name: "out"}}, mk("u1", "A2"), mk("a-b", "I"),
	}
	got := sortSinksByLegacyName(make([]int32, 0, len(sinks)), sinks)
	names := make([]string, len(sinks))
	for i, s := range sinks {
		names[i] = legacyPinName(s)
	}
	for i := 1; i < len(got); i++ {
		if !(names[got[i-1]] < names[got[i]]) {
			t.Fatalf("order %v not sorted by legacy name: %q !< %q",
				got, names[got[i-1]], names[got[i]])
		}
	}
	if len(got) != len(sinks) {
		t.Fatalf("order has %d entries, want %d", len(got), len(sinks))
	}
}
