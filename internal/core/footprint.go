package core

import (
	"unsafe"

	"repro/internal/extract"
	"repro/internal/floorplan"
	"repro/internal/netlist"
	"repro/internal/route"
)

// FootprintBytes estimates the bytes of heap state this session retains
// as its checkpoint: the working netlist and its stage-boundary
// snapshots, the floorplan/powerplan/CTS/partition/routing/extraction
// artifacts, the incremental STA engine with its RC baseline, the
// retained placement bases, and the DEF artifacts on the result.
//
// The estimate is an accounting sum for cache budgeting (allocator slack
// and map overhead approximated), deterministic for a quiescent session.
// It must only be called on a session with no RunToCtx in flight — the
// stage bodies write these slots outside the session lock, so measuring a
// running session would race. State a forked child shares with its parent
// (snapshots, bases, engine graph tables) is charged to both: a cache
// holding root and prefix double-counts the shared snapshot, which errs
// on the safe side of a byte budget.
func (f *Flow) FootprintBytes() int64 {
	b := int64(unsafe.Sizeof(*f))

	// Netlists: work, and each snapshot only when it is a distinct object
	// (a fork resuming late shares work with its parent's snapshot; the
	// early stages alias work and synthSnap until placement mutates).
	b += f.work.FootprintBytes()
	if f.synthSnap != nil && f.synthSnap != f.work {
		b += f.synthSnap.FootprintBytes()
	}
	if f.placeSnap != nil && f.placeSnap != f.work && f.placeSnap != f.synthSnap {
		b += f.placeSnap.FootprintBytes()
	}

	if f.fp != nil {
		b += int64(unsafe.Sizeof(*f.fp))
		b += int64(len(f.fp.Rows)) * int64(unsafe.Sizeof(floorplan.Row{}))
	}
	b += f.pp.FootprintBytes()
	if f.ctsRes != nil {
		b += int64(unsafe.Sizeof(*f.ctsRes))
		b += int64(len(f.ctsRes.ArrivalPs)) * int64(unsafe.Sizeof(float64(0)))
	}
	b += f.pa.footprintBytes()
	b += f.sides.footprintBytes()
	b += f.frontRes.FootprintBytes()
	b += f.backRes.FootprintBytes()

	b += extract.FootprintBytes(f.netRC)
	if len(f.baseRC) > 0 && !sameRCSlice(f.baseRC, f.netRC) {
		b += extract.FootprintBytes(f.baseRC)
	}
	b += f.staEng.FootprintBytes()
	b += int64(len(f.dirtyRC)) * int64(unsafe.Sizeof(int32(0)))

	b += f.placeBasis.FootprintBytes()
	b += f.refineBasis.FootprintBytes()

	if f.res != nil {
		b += int64(unsafe.Sizeof(*f.res))
		b += f.res.FrontDEF.FootprintBytes()
		b += f.res.BackDEF.FootprintBytes()
		b += f.res.MergedDEF.FootprintBytes()
	}
	return b
}

// sameRCSlice reports whether two RC tables are the same backing slice
// (the session's own post-STA view aliases netRC as baseRC; a forked
// child's baseRC is the parent's table and must be counted).
func sameRCSlice(a, b []*extract.NetRC) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

func (pa *PinAssignment) footprintBytes() int64 {
	if pa == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*pa))
	for k := range pa.sides {
		b += int64(unsafe.Sizeof("")) + int64(len(k)) + 1 + 24 // key + side + slot share
	}
	return b
}

func (sn *SideNets) footprintBytes() int64 {
	if sn == nil {
		return 0
	}
	const (
		ptrSize  = int64(unsafe.Sizeof(uintptr(0)))
		sliceHdr = int64(unsafe.Sizeof([]int32{}))
	)
	b := int64(unsafe.Sizeof(*sn))
	b += int64(len(sn.Front)+len(sn.Back)) * ptrSize
	for _, nets := range [2][]*route.Net{sn.Front, sn.Back} {
		for _, n := range nets {
			b += int64(unsafe.Sizeof(*n)) + int64(len(n.Name))
			b += int64(len(n.Pins)) * int64(unsafe.Sizeof(route.Pin{}))
		}
	}
	b += int64(len(sn.SinkIDs)) * sliceHdr
	for _, s := range sn.SinkIDs {
		b += int64(len(s)) * int64(unsafe.Sizeof(netlist.PinID(0)))
	}
	b += int64(len(sn.SinkCapFF)) * sliceHdr
	for _, s := range sn.SinkCapFF {
		b += int64(len(s)) * int64(unsafe.Sizeof(float64(0)))
	}
	b += int64(len(sn.SinkPos)) * sliceHdr
	for _, s := range sn.SinkPos {
		b += int64(len(s)) * int64(unsafe.Sizeof(int32(0)))
	}
	b += int64(len(sn.SinkOrder)) * sliceHdr
	for _, s := range sn.SinkOrder {
		b += int64(len(s)) * int64(unsafe.Sizeof(int32(0)))
	}
	return b
}
