package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// The flow error taxonomy. Every error a Flow entry point (NewFlow,
// RunTo/RunToCtx, Run/RunCtx, Fork, RunFlow/RunFlowCtx) returns carries
// exactly one of these sentinels, matchable with errors.Is, wrapped in a
// *FlowError with stage and config provenance, extractable with errors.As.
var (
	// ErrInvalidConfig reports a structurally impossible FlowConfig
	// (invalid metal pattern, backside pins without backside layers).
	ErrInvalidConfig = errors.New("core: invalid flow config")

	// ErrCancelled reports cooperative cancellation: the run's context was
	// cancelled and the pipeline stopped at a stage boundary or inside one
	// of the long inner loops. The context's own error (context.Canceled
	// or context.DeadlineExceeded) stays in the chain.
	ErrCancelled = errors.New("core: flow cancelled")

	// ErrStagePanic reports a stage body that panicked. The panic is
	// contained to the session: the recovered value and stack are in the
	// chain, and only this session dies.
	ErrStagePanic = errors.New("core: stage panicked")

	// ErrStageFailed reports an organic stage failure that fits no more
	// specific class (synthesis, partition, routing, DEF or STA errors).
	ErrStageFailed = errors.New("core: stage failed")

	// ErrSessionDead reports a call on a session a previous hard error
	// already killed. The original classified error stays in the chain.
	ErrSessionDead = errors.New("core: flow session dead")

	// ErrForkRace reports a fork/run collision: Fork or RunTo was called
	// while the session was mid-RunTo, or the parent advanced while Fork
	// was copying checkpoint state. The operation fails fast without
	// touching the session; retry once the parent is quiescent.
	ErrForkRace = errors.New("core: concurrent fork/run race")
)

// stageNone marks a FlowError with no stage provenance (config
// validation, which happens before any stage exists).
const stageNone Stage = -1

// FlowError is the structured error the flow layer returns: one taxonomy
// sentinel (Kind), stage and config provenance, and the underlying cause.
// Unwrap exposes both Kind and Err, so errors.Is matches the sentinel and
// anything in the cause chain (e.g. context.Canceled under ErrCancelled,
// or faultinject.ErrInjected under ErrStageFailed).
type FlowError struct {
	Kind   error  // taxonomy sentinel (never nil)
	Stage  Stage  // stage provenance; stageNone when no stage applies
	Config string // config name provenance; "" for an unnamed config
	Err    error  // underlying cause; may be nil when Kind says it all
}

// Error renders the classified error with its provenance.
func (e *FlowError) Error() string {
	msg := e.Kind.Error()
	if e.Stage >= 0 {
		msg += fmt.Sprintf(" [stage %v]", e.Stage)
	}
	if e.Config != "" {
		msg += fmt.Sprintf(" [config %s]", e.Config)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the taxonomy sentinel and the cause for errors.Is/As.
func (e *FlowError) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Err}
}

// Classify wraps err into the taxonomy if it is not already classified:
// context cancellation maps to ErrCancelled, everything else to
// ErrStageFailed. A *FlowError anywhere in the chain passes through
// unchanged, so provenance is never double-wrapped. Exposed for sweep
// drivers (exp) that fail points with errors of their own.
func Classify(cfgName string, err error) error {
	return classify(stageNone, cfgName, err)
}

// NewPanicError classifies a recovered panic value from a worker outside
// any stage (exp sweep goroutines) as ErrStagePanic.
func NewPanicError(cfgName string, recovered any) error {
	return &FlowError{
		Kind:   ErrStagePanic,
		Stage:  stageNone,
		Config: cfgName,
		Err:    fmt.Errorf("panic: %v", recovered),
	}
}

// classify wraps a stage (or pre-stage) error into the taxonomy.
func classify(stage Stage, cfgName string, err error) error {
	if err == nil {
		return nil
	}
	var fe *FlowError
	if errors.As(err, &fe) {
		return err
	}
	kind := ErrStageFailed
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		kind = ErrCancelled
	}
	return &FlowError{Kind: kind, Stage: stage, Config: cfgName, Err: err}
}

// panicError builds the ErrStagePanic error for a recovered stage panic,
// capturing the stack at the recovery site.
func panicError(stage Stage, cfgName string, recovered any) error {
	return &FlowError{
		Kind:   ErrStagePanic,
		Stage:  stage,
		Config: cfgName,
		Err:    fmt.Errorf("panic: %v\n%s", recovered, debug.Stack()),
	}
}
