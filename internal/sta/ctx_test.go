package sta

import (
	"context"
	"errors"
	"testing"
)

// TestAnalyzeCtxCancelled pins the cancellation contract: a cancelled
// context aborts the propagation with the context cause in the chain, and
// the engine drops its retained basis so the next incremental call falls
// back to a full — and correct — analysis.
func TestAnalyzeCtxCancelled(t *testing.T) {
	nl := pipeline(t, 4)
	e, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res Result
	if err := e.AnalyzeIntoCtx(ctx, &res, Input{}, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled analyze = %v, want context.Canceled in chain", err)
	}

	// The half-propagated state must not be trusted: a Reanalyze right
	// after the cancel must run full (not incremental) and match a fresh
	// engine's answer exactly.
	got, err := e.Reanalyze(Input{}, DefaultOptions(), nil)
	if err != nil {
		t.Fatalf("Reanalyze after cancel: %v", err)
	}
	if e.Stats().Incremental {
		t.Error("Reanalyze after cancel ran incrementally off a dropped basis")
	}
	want, err := Analyze(nl, Input{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.MinPeriodPs != want.MinPeriodPs || got.MaxArrivalPs != want.MaxArrivalPs {
		t.Errorf("post-cancel result (%.3f, %.3f) != fresh (%.3f, %.3f)",
			got.MinPeriodPs, got.MaxArrivalPs, want.MinPeriodPs, want.MaxArrivalPs)
	}
}

// TestReanalyzeCtxCancelled covers the incremental path's cancel check.
func TestReanalyzeCtxCancelled(t *testing.T) {
	nl := pipeline(t, 4)
	e, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(Input{}, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var res Result
	err = e.ReanalyzeIntoCtx(ctx, &res, Input{}, DefaultOptions(), []int32{int32(nl.Net("s1").Seq)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled reanalyze = %v, want context.Canceled in chain", err)
	}
}
