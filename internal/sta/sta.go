// Package sta implements graph-based static timing analysis over the
// placed-and-routed design: NLDM cell arcs with slew propagation, extracted
// net Elmore delays, clock insertion delays from CTS, and setup checks at
// the flops. Its headline output is the achieved clock frequency — the
// metric the paper sweeps in Figs. 9-11 and Table III.
//
// The analysis is split into a reusable Engine and per-call inputs. The
// Engine levelizes the combinational graph once and snapshots every
// netlist-derived lookup (timing arcs, net fanin/fanout indices, flop
// endpoints) into flat Seq-indexed arrays; repeated Analyze calls then
// propagate arrivals over epoch-stamped scratch without allocating.
//
// On top of the reusable build, the Engine is incremental: Analyze retains
// the full propagation state (per-net arrivals/slews plus a per-endpoint
// setup table), Fork clones that state into an independent child sharing
// the immutable graph tables, and Reanalyze re-propagates only the forward
// fanout cones of nets whose RC changed — the unit of work behind the
// paper's dense frequency/DoE sweeps, where neighboring points differ in a
// handful of nets.
package sta

import (
	"context"
	"fmt"
	"math"

	"repro/internal/extract"
	"repro/internal/liberty"
	"repro/internal/netlist"
)

// cancelCheckEvery is the interval, in propagated cells, between
// cancellation checks inside the levelized loops: a cancel lands within a
// bounded number of inner iterations without the check ever showing up in
// a profile. Must be a power of two.
const cancelCheckEvery = 4096

// cancelled builds the error a cancelled propagation returns. The engine's
// retained state is partially updated at that point, so callers of the
// Ctx variants also see hasBase dropped: the next Reanalyze falls back to
// a full pass instead of trusting a half-propagated basis.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("sta: cancelled during propagation: %w", ctx.Err())
}

// Options configures analysis.
type Options struct {
	InputSlewPs   float64 // slew at primary inputs and flop clock pins
	PortLoadFF    float64 // load on output ports
	ClockSlewPs   float64
	DefaultSkewPs float64 // used when no CTS arrivals are provided
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{InputSlewPs: 15, PortLoadFF: 1.0, ClockSlewPs: 12, DefaultSkewPs: 5}
}

// Input bundles the per-analysis design view. Both slices are dense,
// indexed by the netlist's stable Seq ids.
type Input struct {
	// NetRC holds extracted parasitics indexed by Net.Seq. A nil slice or
	// a nil entry falls back to a lumped estimate from pin caps only.
	NetRC []*extract.NetRC
	// ClockArrivalPs holds clock insertion delays (ps) indexed by
	// Instance.Seq (only flop entries are read). A nil slice means no CTS
	// ran; endpoint checks then charge Options.DefaultSkewPs instead.
	ClockArrivalPs []float64
}

// PathPoint is one hop of the reported critical path.
type PathPoint struct {
	Inst      string
	ArrivalPs float64
}

// Result is the analysis outcome.
type Result struct {
	MinPeriodPs     float64
	AchievedFreqGHz float64
	CriticalPath    []PathPoint
	MaxArrivalPs    float64
	WorstSlewPs     float64
	// RegToReg is the number of constrained endpoint checks.
	RegToReg int
}

// Clone returns a detached copy of the Result. Engine.Analyze returns a
// view into the Engine's reusable storage; results that outlive the
// Engine (or the next Analyze call) should be cloned so they don't pin
// the Engine's flat tables in memory.
func (r *Result) Clone() *Result {
	out := *r
	out.CriticalPath = append([]PathPoint(nil), r.CriticalPath...)
	return &out
}

// ReStats summarizes what the last Analyze/Reanalyze call on an Engine
// actually did — the observability hook incremental tests and benchmarks
// assert against.
type ReStats struct {
	// Incremental is true when the call took the cone-re-propagation
	// path; false for a full (re)analysis.
	Incremental bool
	// DirtyNets is the size of the dirty set handed to Reanalyze.
	DirtyNets int
	// RecomputedCells counts combinational cells whose output was
	// re-evaluated (full analysis: every driven cell).
	RecomputedCells int
	// RecomputedEndpoints counts flop setup checks re-evaluated.
	RecomputedEndpoints int
}

// Engine is a reusable analyzer bound to one netlist snapshot. Building it
// levelizes the combinational graph and flattens every connectivity lookup
// the propagation needs; Analyze afterwards runs without allocations. The
// Engine caches connectivity, so it must be rebuilt after netlist edits
// (reconnects, buffer insertion, resizing).
//
// After an Analyze the Engine holds the complete propagation state of that
// run; Reanalyze updates it in place for a changed RC view, and Fork
// clones it for an independent session (shared immutable graph tables,
// private mutable arrival/endpoint state).
type Engine struct {
	nl *netlist.Netlist

	// Levels is the levelized combinational order (level 0 = cells fed
	// only by sources). Retained for incremental use; the full analysis
	// walks the flattened order.
	Levels [][]*netlist.Instance

	order []*netlist.Instance // Levels flattened
	flops []*netlist.Instance

	// Flat per-(instance, input-pin) arc tables: the rows of instance i
	// are arcNet/arcSink/arcTab[arcStart[i]:arcStart[i+1]], one per input
	// pin in canonical cell order. arcNet is the driving net's Seq (-1
	// for unconnected or clock inputs, which timing skips); arcSink is
	// this pin's index in that net's sink list (-1 when absent); arcTab
	// is the cell's NLDM arc for the pin.
	arcStart []int32
	arcNet   []int32
	arcSink  []int32
	arcTab   []*liberty.Arc

	// outSeq[i] is instance i's output net Seq, -1 when unconnected or a
	// clock net (which combinational propagation never writes).
	outSeq []int32

	// Flop endpoint tables, aligned with flops: the D-pin net and sink
	// index, and the Q output net Seq.
	dNet, dSink, qNet []int32

	// Per-net arrival state, epoch-stamped: arr/slew/from are valid only
	// while stamp matches the current epoch, so each Analyze starts from
	// a logically cleared state without clearing (the same arena pattern
	// as the router's search scratch).
	epoch uint32
	stamp []uint32
	arr   []float64
	slew  []float64
	from  []int32 // Seq of the instance that set the arrival; -1 at sources

	// Per-endpoint setup state, aligned with flops: the required period
	// and D-pin arrival of every constrained check from the last
	// analysis. Keeping the whole table (not just the running max) is
	// what lets Reanalyze handle cones whose slack improves — the worst
	// endpoint is recomputed exactly over all entries, never monotonically.
	endNeed []float64
	endArr  []float64
	endOK   []bool

	// Reanalyze basis bookkeeping: the options and clock arrivals the
	// retained state was computed under. A Reanalyze under different
	// analysis conditions falls back to a full pass.
	hasBase bool
	baseOpt Options
	baseClk []float64
	// baseClkNil distinguishes a nil clock table (endpoint checks charge
	// DefaultSkewPs) from a present-but-empty one (they don't).
	baseClkNil bool

	// Reanalyze dirty tracking, epoch-stamped like the arrival state:
	// rcStamp marks nets whose RC changed this call, valStamp nets whose
	// recomputed arrival or slew differs from the retained state.
	reEpoch  uint32
	rcStamp  []uint32
	valStamp []uint32

	stats ReStats
	res   Result
}

// NewEngine levelizes the netlist and builds the dense timing graph.
// It fails if the combinational graph is cyclic.
func NewEngine(nl *netlist.Netlist) (*Engine, error) {
	levels, cyclic := nl.TopoLevels()
	if len(cyclic) > 0 {
		return nil, fmt.Errorf("sta: %d instances in combinational cycles", len(cyclic))
	}
	e := &Engine{nl: nl, Levels: levels, flops: nl.Flops()}
	for _, level := range levels {
		e.order = append(e.order, level...)
	}

	nInst, nNet := len(nl.Instances), len(nl.Nets)
	e.arcStart = make([]int32, nInst+1)
	e.outSeq = make([]int32, nInst)
	for _, inst := range nl.Instances {
		e.arcStart[inst.Seq+1] = int32(len(inst.Cell.Inputs))
		e.outSeq[inst.Seq] = -1
		if out := inst.OutputNet(); out != nil && !out.IsClock {
			e.outSeq[inst.Seq] = int32(out.Seq)
		}
	}
	for i := 0; i < nInst; i++ {
		e.arcStart[i+1] += e.arcStart[i]
	}
	nArcs := int(e.arcStart[nInst])
	e.arcNet = make([]int32, nArcs)
	e.arcSink = make([]int32, nArcs)
	e.arcTab = make([]*liberty.Arc, nArcs)
	for _, inst := range nl.Instances {
		row := e.arcStart[inst.Seq]
		for _, p := range inst.Cell.Inputs {
			e.arcNet[row], e.arcSink[row] = -1, -1
			if n := inst.Conn(p.Name); n != nil && !n.IsClock {
				e.arcNet[row] = int32(n.Seq)
			}
			e.arcTab[row] = inst.Cell.Arc(p.Name)
			row++
		}
	}
	// One pass over the nets resolves every pin's sink index — O(total
	// sinks), instead of rescanning each net's sink list per fanin pin.
	for _, n := range nl.Nets {
		if n.IsClock {
			continue
		}
		for i, s := range n.Sinks {
			if s.IsPort() {
				continue
			}
			if row, ok := e.arcRow(s.Inst, s.Pin); ok {
				e.arcSink[row] = int32(i)
			}
		}
	}

	e.dNet = make([]int32, len(e.flops))
	e.dSink = make([]int32, len(e.flops))
	e.qNet = make([]int32, len(e.flops))
	for i, ff := range e.flops {
		e.dNet[i], e.dSink[i] = -1, -1
		if row, ok := e.arcRow(ff, ff.Cell.Seq.DataPin); ok {
			e.dNet[i], e.dSink[i] = e.arcNet[row], e.arcSink[row]
		}
		e.qNet[i] = -1
		if q := ff.OutputNet(); q != nil {
			e.qNet[i] = int32(q.Seq)
		}
	}

	e.stamp = make([]uint32, nNet)
	e.arr = make([]float64, nNet)
	e.slew = make([]float64, nNet)
	e.from = make([]int32, nNet)
	e.endNeed = make([]float64, len(e.flops))
	e.endArr = make([]float64, len(e.flops))
	e.endOK = make([]bool, len(e.flops))
	return e, nil
}

// arcRow locates the arc-table row of an instance input pin (rows follow
// the cell's canonical input order).
func (e *Engine) arcRow(inst *netlist.Instance, pin string) (int32, bool) {
	row := e.arcStart[inst.Seq]
	for _, p := range inst.Cell.Inputs {
		if p.Name == pin {
			return row, true
		}
		row++
	}
	return -1, false
}

// Fork clones the Engine's mutable propagation state — arrival epoch
// arrays, endpoint tables, reanalysis basis — into an independent child
// that shares the immutable graph tables (levelized order, arc/sink/flop
// indices) with the parent. Forked engines may run concurrently with each
// other and with the parent, as long as the parent itself is not analyzing
// while children are being forked off it.
func (e *Engine) Fork() *Engine {
	c := *e
	c.stamp = append([]uint32(nil), e.stamp...)
	c.arr = append([]float64(nil), e.arr...)
	c.slew = append([]float64(nil), e.slew...)
	c.from = append([]int32(nil), e.from...)
	c.endNeed = append([]float64(nil), e.endNeed...)
	c.endArr = append([]float64(nil), e.endArr...)
	c.endOK = append([]bool(nil), e.endOK...)
	// The basis clock table is Engine-owned and rewritten by recordBase,
	// so the child needs its own copy or a re-timing child would scribble
	// over a concurrently-read parent buffer.
	c.baseClk = append([]float64(nil), e.baseClk...)
	// Dirty-tracking scratch is per-call state; the child rebuilds its own
	// lazily. The result buffer must not alias the parent's path storage.
	c.reEpoch, c.rcStamp, c.valStamp = 0, nil, nil
	c.stats = ReStats{}
	c.res = Result{}
	return &c
}

// Stats reports what the last Analyze/Reanalyze call on this Engine did.
func (e *Engine) Stats() ReStats { return e.stats }

// Analyze runs full STA and derives the minimum feasible clock period.
//
// The returned Result (including its CriticalPath backing array) is owned
// by the Engine and reused by the next Analyze call; clone it if it must
// outlive that, or use AnalyzeInto to fill caller-owned storage.
func (e *Engine) Analyze(in Input, opt Options) (*Result, error) {
	if err := e.AnalyzeInto(&e.res, in, opt); err != nil {
		return nil, err
	}
	return &e.res, nil
}

// AnalyzeInto runs full STA into dst, reusing dst's CriticalPath storage
// when its capacity suffices: a warmed caller-owned Result makes repeated
// analysis allocation-free without borrowing Engine-owned storage.
func (e *Engine) AnalyzeInto(dst *Result, in Input, opt Options) error {
	return e.AnalyzeIntoCtx(context.Background(), dst, in, opt)
}

// AnalyzeIntoCtx is AnalyzeInto under a context: cancellation is observed
// every cancelCheckEvery cells of the levelized propagation. A cancelled
// analysis leaves the engine without a retained basis (the propagation
// state is partial), so the next call on this engine runs full.
func (e *Engine) AnalyzeIntoCtx(ctx context.Context, dst *Result, in Input, opt Options) error {
	done := ctx.Done()
	e.beginEpoch()
	e.stats = ReStats{}
	e.seedSources(in, opt)
	for i, inst := range e.order {
		if done != nil && i&(cancelCheckEvery-1) == 0 {
			select {
			case <-done:
				e.hasBase = false
				return cancelled(ctx)
			default:
			}
		}
		out := e.outSeq[inst.Seq]
		if out < 0 {
			continue
		}
		e.stats.RecomputedCells++
		bestArr, bestSlew, ok := e.evalCell(inst, out, in, opt)
		if !ok {
			continue
		}
		e.set(out, bestArr, bestSlew, int32(inst.Seq))
	}
	for i, ff := range e.flops {
		if done != nil && i&(cancelCheckEvery-1) == 0 {
			select {
			case <-done:
				e.hasBase = false
				return cancelled(ctx)
			default:
			}
		}
		e.stats.RecomputedEndpoints++
		e.checkEndpoint(i, ff, in, opt)
	}
	e.recordBase(in, opt)
	return e.finishInto(dst, in)
}

// Reanalyze re-times the design after an RC change, given the dense set of
// net Seqs whose extracted view differs from the one the Engine's retained
// state was computed under (extract.DiffRC emits exactly that set; a net
// absent from dirtyNets must be bit-identical in both views). Only the
// forward fanout cones of dirty nets are re-propagated, over the existing
// levelized order; everything outside the cones keeps its retained
// arrivals, and the worst endpoint is recomputed exactly over the full
// per-endpoint table — cones whose slack improves are handled, not just
// degradations. The merged state, and therefore the Result, is bit-identical
// to a full Analyze of the new view.
//
// A Reanalyze under different Options or clock arrivals than the retained
// basis — or on an Engine with no retained state — falls back to a full
// Analyze. The returned Result is Engine-owned like Analyze's.
func (e *Engine) Reanalyze(in Input, opt Options, dirtyNets []int32) (*Result, error) {
	if err := e.ReanalyzeInto(&e.res, in, opt, dirtyNets); err != nil {
		return nil, err
	}
	return &e.res, nil
}

// ReanalyzeInto is Reanalyze filling caller-owned storage (see AnalyzeInto).
func (e *Engine) ReanalyzeInto(dst *Result, in Input, opt Options, dirtyNets []int32) error {
	return e.ReanalyzeIntoCtx(context.Background(), dst, in, opt, dirtyNets)
}

// ReanalyzeIntoCtx is ReanalyzeInto under a context; see AnalyzeIntoCtx
// for the cancellation semantics (a cancelled re-propagation likewise
// drops the retained basis).
func (e *Engine) ReanalyzeIntoCtx(ctx context.Context, dst *Result, in Input, opt Options, dirtyNets []int32) error {
	if !e.hasBase || opt != e.baseOpt || !e.clkMatchesBase(in) {
		return e.AnalyzeIntoCtx(ctx, dst, in, opt)
	}
	done := ctx.Done()
	e.beginReEpoch()
	e.stats = ReStats{Incremental: true, DirtyNets: len(dirtyNets)}
	for _, s := range dirtyNets {
		if s < 0 || int(s) >= len(e.rcStamp) {
			// A Seq outside the engine's net table means the RC views
			// disagree with the netlist this Engine was built on
			// (extract.DiffRC reports exactly that for mismatched view
			// sizes) — not a valid incremental basis. Honor the fallback
			// contract instead of silently dropping the net.
			return e.AnalyzeIntoCtx(ctx, dst, in, opt)
		}
		e.rcStamp[s] = e.reEpoch
	}

	// Re-seed flop Q sources whose output net's RC changed: the clk->Q
	// delay depends on the net's load. Primary-input seeds are
	// RC-independent and keep their retained values.
	for i, ff := range e.flops {
		q := e.qNet[i]
		if q < 0 || e.rcStamp[q] != e.reEpoch {
			continue
		}
		load := e.loadOf(q, in, opt)
		d := ff.Cell.Seq.ClkQWorst(opt.ClockSlewPs, load)
		arr := e.clkArr(in, ff.Seq) + d
		slew := extract.SlewDegrade(opt.InputSlewPs, 0)
		if e.stamp[q] != e.epoch || arr != e.arr[q] || slew != e.slew[q] {
			e.valStamp[q] = e.reEpoch
		}
		e.set(q, arr, slew, int32(ff.Seq))
	}

	// Cone propagation over the levelized order: a cell re-evaluates iff
	// its output net's RC changed (load), any fanin net's RC changed
	// (wire delay / slew degradation into this cell), or any fanin's
	// recomputed arrival differs from the retained state. Levelization
	// guarantees every fanin's valStamp is final before its consumers are
	// visited; a re-evaluation that reproduces the retained value
	// bit-identically stops the cone right there.
	for i, inst := range e.order {
		if done != nil && i&(cancelCheckEvery-1) == 0 {
			select {
			case <-done:
				e.hasBase = false
				return cancelled(ctx)
			default:
			}
		}
		out := e.outSeq[inst.Seq]
		if out < 0 {
			continue
		}
		need := e.rcStamp[out] == e.reEpoch
		if !need {
			for row := e.arcStart[inst.Seq]; row < e.arcStart[inst.Seq+1]; row++ {
				if n := e.arcNet[row]; n >= 0 && (e.rcStamp[n] == e.reEpoch || e.valStamp[n] == e.reEpoch) {
					need = true
					break
				}
			}
		}
		if !need {
			continue
		}
		e.stats.RecomputedCells++
		bestArr, bestSlew, ok := e.evalCell(inst, out, in, opt)
		if !ok {
			// Whether a net is driven at all is structural, not
			// RC-dependent: it was unset in the retained state too.
			continue
		}
		if e.stamp[out] != e.epoch || bestArr != e.arr[out] || bestSlew != e.slew[out] {
			e.valStamp[out] = e.reEpoch
		}
		e.set(out, bestArr, bestSlew, int32(inst.Seq))
	}

	// Endpoint checks: re-evaluate only flops whose D net is in a dirty
	// cone (arrival changed) or carries changed RC (wire-to-D changed).
	// All other entries of the endpoint table are still exact.
	for i, ff := range e.flops {
		d := e.dNet[i]
		if d < 0 || (e.rcStamp[d] != e.reEpoch && e.valStamp[d] != e.reEpoch) {
			continue
		}
		e.stats.RecomputedEndpoints++
		e.checkEndpoint(i, ff, in, opt)
	}
	e.recordBase(in, opt)
	return e.finishInto(dst, in)
}

// seedSources stamps arrivals at primary inputs and flop Q outputs.
func (e *Engine) seedSources(in Input, opt Options) {
	for _, p := range e.nl.Ports {
		if p.Dir == netlist.In && p.Net != nil && !p.Net.IsClock {
			e.set(int32(p.Net.Seq), 0, opt.InputSlewPs, -1)
		}
	}
	for i, ff := range e.flops {
		q := e.qNet[i]
		if q < 0 {
			continue
		}
		load := e.loadOf(q, in, opt)
		d := ff.Cell.Seq.ClkQWorst(opt.ClockSlewPs, load)
		e.set(q, e.clkArr(in, ff.Seq)+d, extract.SlewDegrade(opt.InputSlewPs, 0), int32(ff.Seq))
	}
}

// evalCell computes one combinational cell's output arrival and slew from
// its stamped fanin nets — the single unit of propagation work, shared
// verbatim by the full and the incremental pass so both produce
// bit-identical values. ok is false when no fanin is driven.
func (e *Engine) evalCell(inst *netlist.Instance, out int32, in Input, opt Options) (bestArr, bestSlew float64, ok bool) {
	load := e.loadOf(out, in, opt)
	bestArr = math.Inf(-1)
	for row := e.arcStart[inst.Seq]; row < e.arcStart[inst.Seq+1]; row++ {
		inNet := e.arcNet[row]
		if inNet < 0 || e.stamp[inNet] != e.epoch {
			continue // clock, unconnected, or undriven/constant-like
		}
		a := e.arcTab[row]
		if a == nil {
			continue
		}
		wire := e.elmoreOf(inNet, e.arcSink[row], in)
		sinkSlew := extract.SlewDegrade(e.slew[inNet], wire)
		d := a.WorstDelay(sinkSlew, load)
		cand := e.arr[inNet] + wire + d
		if cand > bestArr {
			bestArr = cand
			outSlewR := a.SlewRise.Lookup(sinkSlew, load)
			outSlewF := a.SlewFall.Lookup(sinkSlew, load)
			bestSlew = math.Max(outSlewR, outSlewF)
		}
	}
	if math.IsInf(bestArr, -1) {
		return 0, 0, false
	}
	return bestArr, bestSlew, true
}

// checkEndpoint evaluates flop i's setup check into the per-endpoint
// table: period >= arrival + setup - capture clock arrival (launch arrival
// already includes its clock insertion).
func (e *Engine) checkEndpoint(i int, ff *netlist.Instance, in Input, opt Options) {
	dNet := e.dNet[i]
	if dNet < 0 || e.stamp[dNet] != e.epoch {
		e.endOK[i] = false
		return
	}
	a := e.arr[dNet]
	wire := e.elmoreOf(dNet, e.dSink[i], in)
	need := a + wire + ff.Cell.Seq.SetupPs - e.clkArr(in, ff.Seq)
	if in.ClockArrivalPs == nil {
		need += opt.DefaultSkewPs
	}
	e.endNeed[i] = need
	e.endArr[i] = a
	e.endOK[i] = true
}

// finishInto reduces the propagation state and endpoint table into dst:
// worst slew over all driven combinational outputs, the binding endpoint
// (recomputed exactly over the whole table, so improved cones can unseat a
// previously-critical check), and the traced critical path.
func (e *Engine) finishInto(dst *Result, in Input) error {
	*dst = Result{CriticalPath: dst.CriticalPath[:0]}
	worstSlew := 0.0
	for _, inst := range e.order {
		out := e.outSeq[inst.Seq]
		if out < 0 || e.stamp[out] != e.epoch {
			continue
		}
		if e.slew[out] > worstSlew {
			worstSlew = e.slew[out]
		}
	}
	dst.WorstSlewPs = worstSlew

	minPeriod := 0.0
	critNet, critFF := int32(-1), -1
	for i := range e.flops {
		if !e.endOK[i] {
			continue
		}
		dst.RegToReg++
		if e.endNeed[i] > minPeriod {
			minPeriod = e.endNeed[i]
			critNet = e.dNet[i]
			critFF = i
		}
		if e.endArr[i] > dst.MaxArrivalPs {
			dst.MaxArrivalPs = e.endArr[i]
		}
	}
	if minPeriod <= 0 {
		return fmt.Errorf("sta: no constrained register-to-register paths")
	}
	dst.MinPeriodPs = minPeriod
	dst.AchievedFreqGHz = 1000.0 / minPeriod

	// Trace the critical path backwards.
	if critFF >= 0 {
		dst.CriticalPath = append(dst.CriticalPath, PathPoint{Inst: e.flops[critFF].Name, ArrivalPs: minPeriod})
		n := critNet
		for n >= 0 {
			drvSeq := e.from[n]
			if drvSeq < 0 {
				break
			}
			drv := e.nl.Instances[drvSeq]
			dst.CriticalPath = append(dst.CriticalPath, PathPoint{Inst: drv.Name, ArrivalPs: e.arr[n]})
			if drv.Cell.IsSeq() {
				break
			}
			// Walk to the input that set the arrival (worst input).
			best := int32(-1)
			bestArr := math.Inf(-1)
			for row := e.arcStart[drvSeq]; row < e.arcStart[drvSeq+1]; row++ {
				inNet := e.arcNet[row]
				if inNet < 0 || e.stamp[inNet] != e.epoch {
					continue
				}
				if e.arr[inNet] > bestArr {
					bestArr = e.arr[inNet]
					best = inNet
				}
			}
			n = best
		}
		// Reverse for launch-to-capture order.
		for i, j := 0, len(dst.CriticalPath)-1; i < j; i, j = i+1, j-1 {
			dst.CriticalPath[i], dst.CriticalPath[j] = dst.CriticalPath[j], dst.CriticalPath[i]
		}
	}
	return nil
}

// recordBase marks the retained state as a valid Reanalyze basis under the
// given analysis conditions. The clock table is copied into Engine-owned
// storage: a caller that reuses one clock buffer and mutates it in place
// between analyses must not make clkMatchesBase compare the buffer against
// itself.
func (e *Engine) recordBase(in Input, opt Options) {
	e.hasBase = true
	e.baseOpt = opt
	e.baseClk = append(e.baseClk[:0], in.ClockArrivalPs...)
	e.baseClkNil = in.ClockArrivalPs == nil
}

// clkMatchesBase reports whether an input's clock arrivals are the ones
// the retained state was computed under (element-exact; nil and empty are
// distinct because nil switches the default-skew charge on).
func (e *Engine) clkMatchesBase(in Input) bool {
	if (in.ClockArrivalPs == nil) != e.baseClkNil || len(in.ClockArrivalPs) != len(e.baseClk) {
		return false
	}
	for i, v := range in.ClockArrivalPs {
		if v != e.baseClk[i] {
			return false
		}
	}
	return true
}

// beginEpoch opens a fresh arrival epoch, lazily invalidating arr/slew/from.
// On uint32 wraparound the stamps are hard-cleared so stale entries can
// never alias the new epoch.
func (e *Engine) beginEpoch() {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.stamp {
			e.stamp[i] = 0
		}
		e.epoch = 1
	}
}

// beginReEpoch opens a fresh dirty-tracking epoch for one Reanalyze call,
// lazily sizing the stamp arrays on first use.
func (e *Engine) beginReEpoch() {
	if e.rcStamp == nil {
		e.rcStamp = make([]uint32, len(e.stamp))
		e.valStamp = make([]uint32, len(e.stamp))
	}
	e.reEpoch++
	if e.reEpoch == 0 {
		for i := range e.rcStamp {
			e.rcStamp[i] = 0
			e.valStamp[i] = 0
		}
		e.reEpoch = 1
	}
}

// set records a net's arrival in the current epoch.
func (e *Engine) set(net int32, arr, slew float64, from int32) {
	e.stamp[net] = e.epoch
	e.arr[net] = arr
	e.slew[net] = slew
	e.from[net] = from
}

// clkArr returns the clock insertion delay at an instance.
func (e *Engine) clkArr(in Input, seq int) float64 {
	if seq < len(in.ClockArrivalPs) {
		return in.ClockArrivalPs[seq]
	}
	return 0
}

// loadOf returns the capacitive load on a net: extracted total cap when
// available, else a lumped sum of sink pin caps.
func (e *Engine) loadOf(net int32, in Input, opt Options) float64 {
	if rc := e.rc(net, in); rc != nil {
		return rc.TotalCapFF
	}
	var c float64
	for _, s := range e.nl.Nets[net].Sinks {
		if !s.IsPort() {
			c += s.Inst.Cell.InputCap(s.Pin)
		} else {
			c += opt.PortLoadFF
		}
	}
	return c
}

// elmoreOf returns the wire delay from a net's driver to one of its sinks.
func (e *Engine) elmoreOf(net, sink int32, in Input) float64 {
	rc := e.rc(net, in)
	if rc == nil || sink < 0 || int(sink) >= len(rc.ElmorePs) {
		return 0
	}
	return rc.ElmorePs[sink]
}

// rc returns the extracted view of a net, nil when absent.
func (e *Engine) rc(net int32, in Input) *extract.NetRC {
	if int(net) < len(in.NetRC) {
		return in.NetRC[net]
	}
	return nil
}

// Analyze is the one-shot convenience wrapper: levelize, analyze, done.
// The returned Result is detached, so the temporary Engine is freed with
// this frame. Flows that sweep parameters should build an Engine once and
// call its Analyze repeatedly instead.
func Analyze(nl *netlist.Netlist, in Input, opt Options) (*Result, error) {
	e, err := NewEngine(nl)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := e.AnalyzeInto(&res, in, opt); err != nil {
		return nil, err
	}
	return &res, nil
}
