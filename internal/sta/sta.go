// Package sta implements graph-based static timing analysis over the
// placed-and-routed design: NLDM cell arcs with slew propagation, extracted
// net Elmore delays, clock insertion delays from CTS, and setup checks at
// the flops. Its headline output is the achieved clock frequency — the
// metric the paper sweeps in Figs. 9-11 and Table III.
package sta

import (
	"fmt"
	"math"

	"repro/internal/extract"
	"repro/internal/netlist"
)

// Options configures analysis.
type Options struct {
	InputSlewPs   float64 // slew at primary inputs and flop clock pins
	PortLoadFF    float64 // load on output ports
	ClockSlewPs   float64
	DefaultSkewPs float64 // used when no CTS arrivals are provided
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{InputSlewPs: 15, PortLoadFF: 1.0, ClockSlewPs: 12, DefaultSkewPs: 5}
}

// Input bundles the design view.
type Input struct {
	Netlist *netlist.Netlist
	// NetRC maps net name -> extracted parasitics. Nets without an entry
	// fall back to a lumped estimate from pin caps only.
	NetRC map[string]*extract.NetRC
	// ClockArrival maps flop instance name -> clock insertion delay (ps).
	ClockArrival map[string]float64
}

// PathPoint is one hop of the reported critical path.
type PathPoint struct {
	Inst      string
	ArrivalPs float64
}

// Result is the analysis outcome.
type Result struct {
	MinPeriodPs     float64
	AchievedFreqGHz float64
	CriticalPath    []PathPoint
	MaxArrivalPs    float64
	WorstSlewPs     float64
	// RegToReg is the number of constrained endpoint checks.
	RegToReg int
}

// Analyze runs STA and derives the minimum feasible clock period.
func Analyze(in Input, opt Options) (*Result, error) {
	nl := in.Netlist
	levels, cyclic := nl.TopoLevels()
	if len(cyclic) > 0 {
		return nil, fmt.Errorf("sta: %d instances in combinational cycles", len(cyclic))
	}

	arr := make(map[*netlist.Net]float64, len(nl.Nets))
	slew := make(map[*netlist.Net]float64, len(nl.Nets))
	from := make(map[*netlist.Net]*netlist.Instance, len(nl.Nets))

	clkArr := func(instName string) float64 {
		if in.ClockArrival == nil {
			return 0
		}
		return in.ClockArrival[instName]
	}
	loadOf := func(n *netlist.Net) float64 {
		if rc, ok := in.NetRC[n.Name]; ok {
			return rc.TotalCapFF
		}
		var c float64
		for _, s := range n.Sinks {
			if !s.IsPort() {
				c += s.Inst.Cell.InputCap(s.Pin)
			} else {
				c += opt.PortLoadFF
			}
		}
		return c
	}
	elmoreOf := func(n *netlist.Net, ref netlist.PinRef) float64 {
		rc, ok := in.NetRC[n.Name]
		if !ok {
			return 0
		}
		return rc.ElmorePs[pinID(ref)]
	}

	// Sources: primary inputs and flop Q outputs.
	for _, p := range nl.Ports {
		if p.Dir == netlist.In && p.Net != nil && !p.Net.IsClock {
			arr[p.Net] = 0
			slew[p.Net] = opt.InputSlewPs
		}
	}
	res := &Result{}
	for _, ff := range nl.Flops() {
		q := ff.OutputNet()
		if q == nil {
			continue
		}
		load := loadOf(q)
		d := ff.Cell.Seq.ClkQWorst(opt.ClockSlewPs, load)
		arr[q] = clkArr(ff.Name) + d
		slew[q] = extract.SlewDegrade(opt.InputSlewPs, 0) // nominal Q slew
		from[q] = ff
	}

	worstSlew := 0.0
	// Topological propagation through combinational cells.
	for _, level := range levels {
		for _, inst := range level {
			out := inst.OutputNet()
			if out == nil || out.IsClock {
				continue
			}
			load := loadOf(out)
			bestArr := math.Inf(-1)
			bestSlew := 0.0
			for _, p := range inst.Cell.Inputs {
				inNet := inst.Conn(p.Name)
				if inNet == nil || inNet.IsClock {
					continue
				}
				inArr, ok := arr[inNet]
				if !ok {
					continue // undriven or constant-like
				}
				inSlew := slew[inNet]
				wire := elmoreOf(inNet, netlist.PinRef{Inst: inst, Pin: p.Name})
				sinkSlew := extract.SlewDegrade(inSlew, wire)
				a := inst.Cell.Arc(p.Name)
				if a == nil {
					continue
				}
				d := a.WorstDelay(sinkSlew, load)
				cand := inArr + wire + d
				if cand > bestArr {
					bestArr = cand
					outSlewR := a.SlewRise.Lookup(sinkSlew, load)
					outSlewF := a.SlewFall.Lookup(sinkSlew, load)
					bestSlew = math.Max(outSlewR, outSlewF)
				}
			}
			if math.IsInf(bestArr, -1) {
				continue
			}
			arr[out] = bestArr
			slew[out] = bestSlew
			from[out] = inst
			if bestSlew > worstSlew {
				worstSlew = bestSlew
			}
		}
	}
	res.WorstSlewPs = worstSlew

	// Endpoint checks at flop D pins: period >= arrival + setup - capture
	// clock arrival (launch arrival already includes its clock insertion).
	minPeriod := 0.0
	var critNet *netlist.Net
	var critFF *netlist.Instance
	for _, ff := range nl.Flops() {
		dNet := ff.Conn(ff.Cell.Seq.DataPin)
		if dNet == nil {
			continue
		}
		a, ok := arr[dNet]
		if !ok {
			continue
		}
		wire := elmoreOf(dNet, netlist.PinRef{Inst: ff, Pin: ff.Cell.Seq.DataPin})
		need := a + wire + ff.Cell.Seq.SetupPs - clkArr(ff.Name)
		if in.ClockArrival == nil {
			need += opt.DefaultSkewPs
		}
		res.RegToReg++
		if need > minPeriod {
			minPeriod = need
			critNet = dNet
			critFF = ff
		}
		if a > res.MaxArrivalPs {
			res.MaxArrivalPs = a
		}
	}
	if minPeriod <= 0 {
		return nil, fmt.Errorf("sta: no constrained register-to-register paths")
	}
	res.MinPeriodPs = minPeriod
	res.AchievedFreqGHz = 1000.0 / minPeriod

	// Trace the critical path backwards.
	if critFF != nil {
		res.CriticalPath = append(res.CriticalPath, PathPoint{Inst: critFF.Name, ArrivalPs: minPeriod})
		n := critNet
		for n != nil {
			drv := from[n]
			if drv == nil {
				break
			}
			res.CriticalPath = append(res.CriticalPath, PathPoint{Inst: drv.Name, ArrivalPs: arr[n]})
			if drv.Cell.IsSeq() {
				break
			}
			// Walk to the input that set the arrival (worst input).
			var bestNet *netlist.Net
			bestArr := math.Inf(-1)
			for _, p := range drv.Cell.Inputs {
				inNet := drv.Conn(p.Name)
				if inNet == nil || inNet.IsClock {
					continue
				}
				if v, ok := arr[inNet]; ok && v > bestArr {
					bestArr = v
					bestNet = inNet
				}
			}
			n = bestNet
		}
		// Reverse for launch-to-capture order.
		for i, j := 0, len(res.CriticalPath)-1; i < j; i, j = i+1, j-1 {
			res.CriticalPath[i], res.CriticalPath[j] = res.CriticalPath[j], res.CriticalPath[i]
		}
	}
	return res, nil
}

// pinID renders the extraction pin naming convention.
func pinID(ref netlist.PinRef) string {
	if ref.IsPort() {
		return "PIN/" + ref.Port.Name
	}
	return ref.Inst.Name + "/" + ref.Pin
}

// PinID is the exported naming helper shared with the flow when building
// route tasks.
func PinID(ref netlist.PinRef) string { return pinID(ref) }
