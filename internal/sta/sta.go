// Package sta implements graph-based static timing analysis over the
// placed-and-routed design: NLDM cell arcs with slew propagation, extracted
// net Elmore delays, clock insertion delays from CTS, and setup checks at
// the flops. Its headline output is the achieved clock frequency — the
// metric the paper sweeps in Figs. 9-11 and Table III.
//
// The analysis is split into a reusable Engine and per-call inputs. The
// Engine levelizes the combinational graph once and snapshots every
// netlist-derived lookup (timing arcs, net fanin/fanout indices, flop
// endpoints) into flat Seq-indexed arrays; repeated Analyze calls then
// propagate arrivals over epoch-stamped scratch without allocating.
//
// On top of the reusable build, the Engine is incremental: Analyze retains
// the full propagation state (per-net arrivals/slews plus a per-endpoint
// setup table), Fork clones that state into an independent child sharing
// the immutable graph tables, and Reanalyze re-propagates only the forward
// fanout cones of nets whose RC changed — the unit of work behind the
// paper's dense frequency/DoE sweeps, where neighboring points differ in a
// handful of nets.
package sta

import (
	"context"
	"fmt"
	"math"

	"repro/internal/extract"
	"repro/internal/liberty"
	"repro/internal/netlist"
)

// cancelCheckEvery is the interval, in propagated cells, between
// cancellation checks inside the levelized loops: a cancel lands within a
// bounded number of inner iterations without the check ever showing up in
// a profile. Must be a power of two.
const cancelCheckEvery = 4096

// cancelled builds the error a cancelled propagation returns. The engine's
// retained state is partially updated at that point, so callers of the
// Ctx variants also see hasBase dropped: the next Reanalyze falls back to
// a full pass instead of trusting a half-propagated basis.
func cancelled(ctx context.Context) error {
	return fmt.Errorf("sta: cancelled during propagation: %w", ctx.Err())
}

// Options configures analysis.
type Options struct {
	InputSlewPs   float64 // slew at primary inputs and flop clock pins
	PortLoadFF    float64 // load on output ports
	ClockSlewPs   float64
	DefaultSkewPs float64 // used when no CTS arrivals are provided
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{InputSlewPs: 15, PortLoadFF: 1.0, ClockSlewPs: 12, DefaultSkewPs: 5}
}

// Input bundles the per-analysis design view. Both slices are dense,
// indexed by the netlist's stable Seq ids.
type Input struct {
	// NetRC holds extracted parasitics indexed by Net.Seq. A nil slice or
	// a nil entry falls back to a lumped estimate from pin caps only.
	NetRC []*extract.NetRC
	// ClockArrivalPs holds clock insertion delays (ps) indexed by
	// Instance.Seq (only flop entries are read). A nil slice means no CTS
	// ran; endpoint checks then charge Options.DefaultSkewPs instead.
	ClockArrivalPs []float64
}

// PathPoint is one hop of the reported critical path.
type PathPoint struct {
	Inst      string
	ArrivalPs float64
}

// Result is the analysis outcome.
type Result struct {
	MinPeriodPs     float64
	AchievedFreqGHz float64
	CriticalPath    []PathPoint
	MaxArrivalPs    float64
	WorstSlewPs     float64
	// RegToReg is the number of constrained endpoint checks.
	RegToReg int
}

// Clone returns a detached copy of the Result. Engine.Analyze returns a
// view into the Engine's reusable storage; results that outlive the
// Engine (or the next Analyze call) should be cloned so they don't pin
// the Engine's flat tables in memory.
func (r *Result) Clone() *Result {
	out := *r
	out.CriticalPath = append([]PathPoint(nil), r.CriticalPath...)
	return &out
}

// ReStats summarizes what the last Analyze/Reanalyze call on an Engine
// actually did — the observability hook incremental tests and benchmarks
// assert against.
type ReStats struct {
	// Incremental is true when the call took the cone-re-propagation
	// path; false for a full (re)analysis.
	Incremental bool
	// DirtyNets is the size of the dirty set handed to Reanalyze.
	DirtyNets int
	// RecomputedCells counts combinational cells whose output was
	// re-evaluated (full analysis: every driven cell).
	RecomputedCells int
	// RecomputedEndpoints counts flop setup checks re-evaluated.
	RecomputedEndpoints int
}

// Engine is a reusable analyzer bound to one netlist snapshot. Building it
// levelizes the combinational graph and flattens every connectivity lookup
// the propagation needs; Analyze afterwards runs without allocations. The
// Engine caches connectivity, so it must be rebuilt after netlist edits
// (reconnects, buffer insertion, resizing).
//
// After an Analyze the Engine holds the complete propagation state of that
// run; Reanalyze updates it in place for a changed RC view, and Fork
// clones it for an independent session (shared immutable graph tables,
// private mutable arrival/endpoint state).
type Engine struct {
	nl *netlist.Netlist

	// Levels is the levelized combinational order (level 0 = cells fed
	// only by sources). Retained for incremental use; the full analysis
	// walks the flattened order.
	Levels [][]*netlist.Instance

	order []*netlist.Instance // Levels flattened
	flops []*netlist.Instance

	// Flat per-(instance, input-pin) arc tables: the rows of instance i
	// are arcNet/arcSink/arcTab[arcStart[i]:arcStart[i+1]], one per input
	// pin in canonical cell order. arcNet is the driving net's Seq (-1
	// for unconnected or clock inputs, which timing skips); arcSink is
	// this pin's index in that net's sink list (-1 when absent); arcTab
	// is the cell's NLDM arc for the pin.
	arcStart []int32
	arcNet   []int32
	arcSink  []int32
	arcTab   []*liberty.Arc

	// Flattened NLDM fast path (immutable, fork-shared): arcFlat maps an
	// arc row to an entry of flats, or -1 when the arc's four tables do
	// not share one axis pair and the generic liberty lookup applies.
	// Sharing the axes lets one segment search + fraction pair serve the
	// rise/fall delay and slew tables of an arc — the dominant cost of
	// cell evaluation at Monte Carlo sampling rates.
	arcFlat []int32
	flats   []flatArc

	// outSeq[i] is instance i's output net Seq, -1 when unconnected or a
	// clock net (which combinational propagation never writes).
	outSeq []int32

	// Flop endpoint tables, aligned with flops: the D-pin net and sink
	// index, and the Q output net Seq.
	dNet, dSink, qNet []int32

	// Per-net arrival state, epoch-stamped: arr/slew/from are valid only
	// while stamp matches the current epoch, so each Analyze starts from
	// a logically cleared state without clearing (the same arena pattern
	// as the router's search scratch).
	epoch uint32
	stamp []uint32
	arr   []float64
	slew  []float64
	from  []int32 // Seq of the instance that set the arrival; -1 at sources

	// Flat mirrors of the RC view the retained state was computed under
	// (mutable, fork-copied): per-net load, per-arc-row wire delay into
	// the row's sink pin, and per-flop wire delay into the D pin. A full
	// analysis refreshes all three from the Input; Reanalyze refreshes
	// only the dirty nets' entries. Propagation reads these flat arrays
	// instead of chasing *extract.NetRC pointers per arc.
	loadFF  []float64
	wireArc []float64
	wireD   []float64

	// Per-endpoint setup state, aligned with flops: the required period
	// and D-pin arrival of every constrained check from the last
	// analysis. Keeping the whole table (not just the running max) is
	// what lets Reanalyze handle cones whose slack improves — the worst
	// endpoint is recomputed exactly over all entries, never monotonically.
	endNeed []float64
	endArr  []float64
	endOK   []bool

	// Reanalyze basis bookkeeping: the options and clock arrivals the
	// retained state was computed under. A Reanalyze under different
	// analysis conditions falls back to a full pass.
	hasBase bool
	baseOpt Options
	baseClk []float64
	// baseClkNil distinguishes a nil clock table (endpoint checks charge
	// DefaultSkewPs) from a present-but-empty one (they don't).
	baseClkNil bool

	// Cone-walk adjacency (immutable, shared by forks): the forward
	// indices Reanalyze needs to touch only the dirty fanout cones
	// instead of scanning the whole levelized order per call.
	levelOf   []int32 // per instance: levelized level index, -1 for flops/sources
	driverOf  []int32 // per net: Seq of its combinational driver, -1 if flop/port-driven
	consStart []int32 // per net: consumer rows consInst[consStart[n]:consStart[n+1]]
	consInst  []int32 // combinational consumers (with a driven output), level order
	dfStart   []int32 // per net: endpoint rows dFlop[dfStart[n]:dfStart[n+1]]
	dFlop     []int32 // flop indices (into flops) whose D pin loads the net
	qFlopOf   []int32 // per net: flop index whose Q output drives it, -1 otherwise

	// Reanalyze dirty tracking, epoch-stamped like the arrival state:
	// rcStamp marks nets whose RC changed this call, valStamp nets whose
	// recomputed arrival or slew differs from the retained state.
	reEpoch  uint32
	rcStamp  []uint32
	valStamp []uint32
	// Cone-walk scratch, sized lazily with the stamps: a per-instance
	// dedup stamp plus an intrusive per-level worklist (levelHead heads,
	// instNext links), and the endpoint recheck list with its own stamp.
	instStamp []uint32
	endStamp  []uint32
	instNext  []int32
	levelHead []int32
	endList   []int32

	stats ReStats
	res   Result
}

// carveI32 slices n entries off the front of a shared int32 arena,
// capacity-capped so a stray append can never clobber the next table.
func carveI32(arena *[]int32, n int) []int32 {
	s := (*arena)[:n:n]
	*arena = (*arena)[n:]
	return s
}

// carveF64 is carveI32 for float64 arenas.
func carveF64(arena *[]float64, n int) []float64 {
	s := (*arena)[:n:n]
	*arena = (*arena)[n:]
	return s
}

// flatArc is one NLDM arc with its four tables flattened over a shared
// (slew, load) axis pair. The segment selection mirrors
// liberty.Table.Lookup exactly; the interpolation itself computes its
// fractions by reciprocal multiply (axis deltas are inverted once at
// flatten time) and factors the four bilinear corner weights out of the
// per-table expressions — same math, fewer divides and multiplies per
// evaluation, at worst one ULP from the generic lookup. The golden
// artifacts carry the flat path's values. blk holds, per interpolation
// cell, the four corner values of all four tables contiguously
// ([v00 v10 v01 v11] × dR, dF, sR, sF — 16 floats, two cache lines), so
// one cell evaluation touches one block instead of four scattered
// matrices.
type flatArc struct {
	slews, loads []float64
	// invDS/invDL are the precomputed segment-width reciprocals:
	// invDS[i] = 1/(slews[i+1]-slews[i]), likewise invDL over loads.
	invDS, invDL []float64
	blk          []float64 // [(i*(len(loads)-1)+j)*16 : +16]
}

// segLin mirrors liberty's interpolation-cell selection (first axis entry
// >= v, clamped to the boundary cells): the insertion point is the count
// of axis entries below v. The characterization axes are 5-point, so a
// fixed-trip counting scan (no early exit, no mispredicted break) beats
// binary search.
func segLin(axis []float64, v float64) int {
	i := 0
	for _, x := range axis {
		if x < v {
			i++
		}
	}
	switch n := len(axis); {
	case i <= 0:
		return 0
	case i >= n:
		return n - 2
	default:
		return i - 1
	}
}

// sameAxis reports element-exact axis equality — the condition under
// which one segment/fraction pair is bit-identical for all tables.
func sameAxis(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// flattenArc builds the fast-path representation of an arc, or reports
// that the arc must use the generic lookup (missing tables, degenerate or
// mismatched axes).
func flattenArc(a *liberty.Arc) (flatArc, bool) {
	if a == nil || a.DelayRise == nil || a.DelayFall == nil || a.SlewRise == nil || a.SlewFall == nil {
		return flatArc{}, false
	}
	s, l := a.DelayRise.Slews, a.DelayRise.Loads
	if len(s) < 2 || len(l) < 2 {
		return flatArc{}, false
	}
	for _, t := range []*liberty.Table{a.DelayFall, a.SlewRise, a.SlewFall} {
		if !sameAxis(t.Slews, s) || !sameAxis(t.Loads, l) {
			return flatArc{}, false
		}
	}
	f := flatArc{
		slews: s, loads: l,
		invDS: make([]float64, len(s)-1),
		invDL: make([]float64, len(l)-1),
		blk:   make([]float64, (len(s)-1)*(len(l)-1)*16),
	}
	for i := range f.invDS {
		f.invDS[i] = 1 / (s[i+1] - s[i])
	}
	for j := range f.invDL {
		f.invDL[j] = 1 / (l[j+1] - l[j])
	}
	tabs := [4]*liberty.Table{a.DelayRise, a.DelayFall, a.SlewRise, a.SlewFall}
	for i := 0; i < len(s)-1; i++ {
		for j := 0; j < len(l)-1; j++ {
			off := (i*(len(l)-1) + j) * 16
			for k, t := range tabs {
				f.blk[off+4*k+0] = t.Values[i][j]
				f.blk[off+4*k+1] = t.Values[i+1][j]
				f.blk[off+4*k+2] = t.Values[i][j+1]
				f.blk[off+4*k+3] = t.Values[i+1][j+1]
			}
		}
	}
	return f, true
}

// NewEngine levelizes the netlist and builds the dense timing graph.
// It fails if the combinational graph is cyclic.
//
// The build tables are carved from a handful of per-type arenas (one
// int32, one float64, plus the arc-pointer and per-arc tables): an MC
// variation study builds one engine per population and forks it per
// worker, so the one-time build cost shows up multiplied.
func NewEngine(nl *netlist.Netlist) (*Engine, error) {
	levels, cyclic := nl.TopoLevels()
	if len(cyclic) > 0 {
		return nil, fmt.Errorf("sta: %d instances in combinational cycles", len(cyclic))
	}
	e := &Engine{nl: nl, Levels: levels, flops: nl.Flops()}
	nOrder := 0
	for _, level := range levels {
		nOrder += len(level)
	}
	e.order = make([]*netlist.Instance, 0, nOrder)
	for _, level := range levels {
		e.order = append(e.order, level...)
	}

	nInst, nNet, nFlop := len(nl.Instances), len(nl.Nets), len(e.flops)
	ints := make([]int32, (nInst+1)+2*nInst+3*nFlop+5*nNet+2)
	e.arcStart = carveI32(&ints, nInst+1)
	e.outSeq = carveI32(&ints, nInst)
	e.levelOf = carveI32(&ints, nInst)
	e.dNet = carveI32(&ints, nFlop)
	e.dSink = carveI32(&ints, nFlop)
	e.qNet = carveI32(&ints, nFlop)
	e.from = carveI32(&ints, nNet)
	e.driverOf = carveI32(&ints, nNet)
	e.qFlopOf = carveI32(&ints, nNet)
	e.consStart = carveI32(&ints, nNet+1)
	e.dfStart = carveI32(&ints, nNet+1)

	for _, inst := range nl.Instances {
		e.arcStart[inst.Seq+1] = int32(len(inst.Cell.Inputs))
		e.outSeq[inst.Seq] = -1
		if out := inst.OutputNet(); out != nil && !out.IsClock {
			e.outSeq[inst.Seq] = int32(out.Seq)
		}
	}
	for i := 0; i < nInst; i++ {
		e.arcStart[i+1] += e.arcStart[i]
	}
	nArcs := int(e.arcStart[nInst])
	arcInts := make([]int32, 2*nArcs)
	e.arcNet = carveI32(&arcInts, nArcs)
	e.arcSink = carveI32(&arcInts, nArcs)
	e.arcTab = make([]*liberty.Arc, nArcs)
	for _, inst := range nl.Instances {
		row := e.arcStart[inst.Seq]
		for _, p := range inst.Cell.Inputs {
			e.arcNet[row], e.arcSink[row] = -1, -1
			if n := inst.Conn(p.Name); n != nil && !n.IsClock {
				e.arcNet[row] = int32(n.Seq)
			}
			e.arcTab[row] = inst.Cell.Arc(p.Name)
			row++
		}
	}
	// Deduplicate the arc tables into the flattened fast-path forms: a
	// netlist instantiates a handful of cell types, so the flats table is
	// tiny and stays cache-resident through propagation.
	e.arcFlat = make([]int32, nArcs)
	flatOf := make(map[*liberty.Arc]int32, 16)
	for row, a := range e.arcTab {
		fi, seen := flatOf[a]
		if !seen {
			fi = -1
			if f, ok := flattenArc(a); ok {
				fi = int32(len(e.flats))
				e.flats = append(e.flats, f)
			}
			flatOf[a] = fi
		}
		e.arcFlat[row] = fi
	}

	// One pass over the nets resolves every pin's sink index — O(total
	// sinks), instead of rescanning each net's sink list per fanin pin.
	for _, n := range nl.Nets {
		if n.IsClock {
			continue
		}
		for i, s := range n.Sinks {
			if s.IsPort() {
				continue
			}
			if row, ok := e.arcRow(s.Inst, s.Pin); ok {
				e.arcSink[row] = int32(i)
			}
		}
	}

	for i, ff := range e.flops {
		e.dNet[i], e.dSink[i] = -1, -1
		if row, ok := e.arcRow(ff, ff.Cell.Seq.DataPin); ok {
			e.dNet[i], e.dSink[i] = e.arcNet[row], e.arcSink[row]
		}
		e.qNet[i] = -1
		if q := ff.OutputNet(); q != nil {
			e.qNet[i] = int32(q.Seq)
		}
	}

	e.stamp = make([]uint32, nNet)
	floats := make([]float64, 3*nNet+3*nFlop+nArcs)
	e.arr = carveF64(&floats, nNet)
	e.slew = carveF64(&floats, nNet)
	e.endNeed = carveF64(&floats, nFlop)
	e.endArr = carveF64(&floats, nFlop)
	e.loadFF = carveF64(&floats, nNet)
	e.wireArc = carveF64(&floats, nArcs)
	e.wireD = carveF64(&floats, nFlop)
	e.endOK = make([]bool, nFlop)

	e.buildConeIndex()
	return e, nil
}

// buildConeIndex derives the forward adjacency the incremental cone walk
// seeds from: per-net combinational driver and consumers, per-net flop
// endpoints, the Q-driving flop, and each instance's level. Consumers are
// counting-sorted in levelized order, so worklist seeding is deterministic.
func (e *Engine) buildConeIndex() {
	nNet := len(e.stamp)
	for i := range e.levelOf {
		e.levelOf[i] = -1
	}
	for li, level := range e.Levels {
		for _, inst := range level {
			e.levelOf[inst.Seq] = int32(li)
		}
	}
	for i := 0; i < nNet; i++ {
		e.driverOf[i] = -1
		e.qFlopOf[i] = -1
	}
	for i, q := range e.qNet {
		if q >= 0 {
			e.qFlopOf[q] = int32(i)
		}
	}
	// Count, prefix-sum, fill with moving cursors, then shift the starts
	// back — the standard in-place counting sort. Instances whose output
	// is unconnected (or a clock net) never propagate, so they are not
	// consumers of anything.
	nCons := 0
	for _, inst := range e.order {
		seq := inst.Seq
		if e.outSeq[seq] < 0 {
			continue
		}
		e.driverOf[e.outSeq[seq]] = int32(seq)
		for row := e.arcStart[seq]; row < e.arcStart[seq+1]; row++ {
			if n := e.arcNet[row]; n >= 0 {
				e.consStart[n+1]++
				nCons++
			}
		}
	}
	nDF := 0
	for _, d := range e.dNet {
		if d >= 0 {
			e.dfStart[d+1]++
			nDF++
		}
	}
	for i := 0; i < nNet; i++ {
		e.consStart[i+1] += e.consStart[i]
		e.dfStart[i+1] += e.dfStart[i]
	}
	tail := make([]int32, nCons+nDF)
	e.consInst = tail[:nCons:nCons]
	e.dFlop = tail[nCons:]
	for _, inst := range e.order {
		seq := inst.Seq
		if e.outSeq[seq] < 0 {
			continue
		}
		for row := e.arcStart[seq]; row < e.arcStart[seq+1]; row++ {
			if n := e.arcNet[row]; n >= 0 {
				e.consInst[e.consStart[n]] = int32(seq)
				e.consStart[n]++
			}
		}
	}
	for i, d := range e.dNet {
		if d >= 0 {
			e.dFlop[e.dfStart[d]] = int32(i)
			e.dfStart[d]++
		}
	}
	for i := nNet; i > 0; i-- {
		e.consStart[i] = e.consStart[i-1]
		e.dfStart[i] = e.dfStart[i-1]
	}
	e.consStart[0] = 0
	e.dfStart[0] = 0
}

// arcRow locates the arc-table row of an instance input pin (rows follow
// the cell's canonical input order).
func (e *Engine) arcRow(inst *netlist.Instance, pin string) (int32, bool) {
	row := e.arcStart[inst.Seq]
	for _, p := range inst.Cell.Inputs {
		if p.Name == pin {
			return row, true
		}
		row++
	}
	return -1, false
}

// Fork clones the Engine's mutable propagation state — arrival epoch
// arrays, endpoint tables, reanalysis basis — into an independent child
// that shares the immutable graph tables (levelized order, arc/sink/flop
// indices) with the parent. Forked engines may run concurrently with each
// other and with the parent, as long as the parent itself is not analyzing
// while children are being forked off it.
func (e *Engine) Fork() *Engine {
	c := *e
	nNet, nFlop, nArcs := len(e.stamp), len(e.endOK), len(e.wireArc)
	// The mutable float state is cloned through one arena (MC studies
	// fork an engine per worker, so per-slice clone allocations add up).
	// The basis clock table rides along: it is Engine-owned and rewritten
	// by recordBase, so the child needs its own copy or a re-timing child
	// would scribble over a concurrently-read parent buffer. The RC
	// mirrors are part of the retained basis (they reflect the view the
	// state was computed under), so they clone too.
	floats := make([]float64, 3*nNet+3*nFlop+nArcs+len(e.baseClk))
	c.arr = carveF64(&floats, nNet)
	c.slew = carveF64(&floats, nNet)
	c.endNeed = carveF64(&floats, nFlop)
	c.endArr = carveF64(&floats, nFlop)
	c.loadFF = carveF64(&floats, nNet)
	c.wireArc = carveF64(&floats, nArcs)
	c.wireD = carveF64(&floats, nFlop)
	c.baseClk = carveF64(&floats, len(e.baseClk))
	copy(c.arr, e.arr)
	copy(c.slew, e.slew)
	copy(c.endNeed, e.endNeed)
	copy(c.endArr, e.endArr)
	copy(c.loadFF, e.loadFF)
	copy(c.wireArc, e.wireArc)
	copy(c.wireD, e.wireD)
	copy(c.baseClk, e.baseClk)
	c.stamp = append([]uint32(nil), e.stamp...)
	c.from = append([]int32(nil), e.from...)
	c.endOK = append([]bool(nil), e.endOK...)
	// Dirty-tracking and cone-walk scratch is per-call state; the child
	// rebuilds its own lazily (sharing the parent's would race). The
	// result buffer must not alias the parent's path storage.
	c.reEpoch, c.rcStamp, c.valStamp = 0, nil, nil
	c.instStamp, c.endStamp, c.instNext, c.levelHead, c.endList = nil, nil, nil, nil, nil
	c.stats = ReStats{}
	c.res = Result{}
	return &c
}

// ForkRestamped forks the Engine onto a Seq-corresponding netlist that
// differs from the build netlist only by drive resizing of the listed
// instances (netlist.Diff's SeqStable contract). The fork shares the
// structural tables — connectivity is identical by precondition — but
// re-points every instance reference into nl and rebuilds the arc tables
// of the resized rows, so a later Reanalyze with the resized cells'
// output nets in its dirty set re-times their cones through the new
// arcs. The retained propagation state carries over: it is the exact
// state of the parent's last analysis, which is the correct Reanalyze
// basis for the child as long as the caller supplies a dirty set
// covering every net whose RC or driving arcs changed.
//
// Returns an error when nl does not correspond to the build netlist
// (callers fall back to building a fresh Engine).
func (e *Engine) ForkRestamped(nl *netlist.Netlist, resized []int32) (*Engine, error) {
	if len(nl.Instances) != len(e.nl.Instances) || len(nl.Nets) != len(e.stamp) || len(nl.Ports) != len(e.nl.Ports) {
		return nil, fmt.Errorf("sta: restamp netlist shape mismatch")
	}
	isResized := make([]bool, len(nl.Instances))
	for _, seq := range resized {
		if seq < 0 || int(seq) >= len(isResized) {
			return nil, fmt.Errorf("sta: restamp resized seq %d out of range", seq)
		}
		isResized[seq] = true
	}
	for i, inst := range nl.Instances {
		old := e.nl.Instances[i]
		if inst.Name != old.Name {
			return nil, fmt.Errorf("sta: restamp instance %d name mismatch", i)
		}
		if isResized[i] {
			if inst.Cell.Base != old.Cell.Base || len(inst.Cell.Inputs) != len(old.Cell.Inputs) {
				return nil, fmt.Errorf("sta: restamp %s is not a drive change", inst.Name)
			}
		} else if inst.Cell.Name != old.Cell.Name {
			return nil, fmt.Errorf("sta: restamp %s resized but not listed", inst.Name)
		}
	}

	c := e.Fork()
	c.nl = nl
	arena := make([]*netlist.Instance, len(e.order))
	for i, inst := range e.order {
		arena[i] = nl.Instances[inst.Seq]
	}
	c.order = arena
	c.Levels = make([][]*netlist.Instance, len(e.Levels))
	off := 0
	for li, level := range e.Levels {
		c.Levels[li] = arena[off : off+len(level) : off+len(level)]
		off += len(level)
	}
	c.flops = make([]*netlist.Instance, len(e.flops))
	for i, ff := range e.flops {
		c.flops[i] = nl.Instances[ff.Seq]
	}
	// Rebuild the arc-table rows of the resized cells, then re-deduplicate
	// the flattened fast-path forms over the new table (the parent's flats
	// arena must not be appended to — forks share it).
	arcTab := make([]*liberty.Arc, len(e.arcTab))
	copy(arcTab, e.arcTab)
	for _, seq := range resized {
		inst := nl.Instances[seq]
		row := e.arcStart[seq]
		if int(e.arcStart[seq+1]-row) != len(inst.Cell.Inputs) {
			return nil, fmt.Errorf("sta: restamp %s input count changed", inst.Name)
		}
		for _, p := range inst.Cell.Inputs {
			arcTab[row] = inst.Cell.Arc(p.Name)
			row++
		}
	}
	c.arcTab = arcTab
	c.arcFlat = make([]int32, len(arcTab))
	c.flats = nil
	flatOf := make(map[*liberty.Arc]int32, 16)
	for row, a := range arcTab {
		fi, seen := flatOf[a]
		if !seen {
			fi = -1
			if f, ok := flattenArc(a); ok {
				fi = int32(len(c.flats))
				c.flats = append(c.flats, f)
			}
			flatOf[a] = fi
		}
		c.arcFlat[row] = fi
	}
	return c, nil
}

// Stats reports what the last Analyze/Reanalyze call on this Engine did.
func (e *Engine) Stats() ReStats { return e.stats }

// Analyze runs full STA and derives the minimum feasible clock period.
//
// The returned Result (including its CriticalPath backing array) is owned
// by the Engine and reused by the next Analyze call; clone it if it must
// outlive that, or use AnalyzeInto to fill caller-owned storage.
func (e *Engine) Analyze(in Input, opt Options) (*Result, error) {
	if err := e.AnalyzeInto(&e.res, in, opt); err != nil {
		return nil, err
	}
	return &e.res, nil
}

// AnalyzeInto runs full STA into dst, reusing dst's CriticalPath storage
// when its capacity suffices: a warmed caller-owned Result makes repeated
// analysis allocation-free without borrowing Engine-owned storage.
func (e *Engine) AnalyzeInto(dst *Result, in Input, opt Options) error {
	return e.AnalyzeIntoCtx(context.Background(), dst, in, opt)
}

// AnalyzeIntoCtx is AnalyzeInto under a context: cancellation is observed
// every cancelCheckEvery cells of the levelized propagation. A cancelled
// analysis leaves the engine without a retained basis (the propagation
// state is partial), so the next call on this engine runs full.
func (e *Engine) AnalyzeIntoCtx(ctx context.Context, dst *Result, in Input, opt Options) error {
	if err := e.analyzeState(ctx, in, opt); err != nil {
		return err
	}
	return e.finishInto(dst, in)
}

// analyzeState runs the full propagation and endpoint pass, updating the
// retained state and recording the basis — everything AnalyzeIntoCtx does
// short of reducing a Result.
func (e *Engine) analyzeState(ctx context.Context, in Input, opt Options) error {
	done := ctx.Done()
	e.beginEpoch()
	e.stats = ReStats{}
	e.refreshAllRC(in, opt)
	e.seedSources(in, opt)
	for i, inst := range e.order {
		if done != nil && i&(cancelCheckEvery-1) == 0 {
			select {
			case <-done:
				e.hasBase = false
				return cancelled(ctx)
			default:
			}
		}
		out := e.outSeq[inst.Seq]
		if out < 0 {
			continue
		}
		e.stats.RecomputedCells++
		bestArr, bestSlew, ok := e.evalCell(int32(inst.Seq), out, opt)
		if !ok {
			continue
		}
		e.set(out, bestArr, bestSlew, int32(inst.Seq))
	}
	for i, ff := range e.flops {
		if done != nil && i&(cancelCheckEvery-1) == 0 {
			select {
			case <-done:
				e.hasBase = false
				return cancelled(ctx)
			default:
			}
		}
		e.stats.RecomputedEndpoints++
		e.checkEndpoint(i, ff, in, opt)
	}
	e.recordBase(in, opt)
	return nil
}

// Reanalyze re-times the design after an RC change, given the dense set of
// net Seqs whose extracted view differs from the one the Engine's retained
// state was computed under (extract.DiffRC emits exactly that set; a net
// absent from dirtyNets must be bit-identical in both views). Only the
// forward fanout cones of dirty nets are re-propagated, over the existing
// levelized order; everything outside the cones keeps its retained
// arrivals, and the worst endpoint is recomputed exactly over the full
// per-endpoint table — cones whose slack improves are handled, not just
// degradations. The merged state, and therefore the Result, is bit-identical
// to a full Analyze of the new view.
//
// A Reanalyze under different Options or clock arrivals than the retained
// basis — or on an Engine with no retained state — falls back to a full
// Analyze. The returned Result is Engine-owned like Analyze's.
func (e *Engine) Reanalyze(in Input, opt Options, dirtyNets []int32) (*Result, error) {
	if err := e.ReanalyzeInto(&e.res, in, opt, dirtyNets); err != nil {
		return nil, err
	}
	return &e.res, nil
}

// ReanalyzeInto is Reanalyze filling caller-owned storage (see AnalyzeInto).
func (e *Engine) ReanalyzeInto(dst *Result, in Input, opt Options, dirtyNets []int32) error {
	return e.ReanalyzeIntoCtx(context.Background(), dst, in, opt, dirtyNets)
}

// ReanalyzeIntoCtx is ReanalyzeInto under a context; see AnalyzeIntoCtx
// for the cancellation semantics (a cancelled re-propagation likewise
// drops the retained basis).
func (e *Engine) ReanalyzeIntoCtx(ctx context.Context, dst *Result, in Input, opt Options, dirtyNets []int32) error {
	if err := e.ReanalyzeStateCtx(ctx, in, opt, dirtyNets); err != nil {
		return err
	}
	return e.finishInto(dst, in)
}

// ReanalyzeStateCtx updates the retained propagation and endpoint state
// for a changed RC view without reducing a Result — the unit of work of a
// Monte Carlo sampling loop, which only needs SlackStats afterwards and
// would otherwise pay a full-design reduction (worst slew scan, critical
// path trace) per sample. Fallback and cancellation semantics match
// ReanalyzeIntoCtx; the state after a call is bit-identical to a full
// analysis of the new view.
func (e *Engine) ReanalyzeStateCtx(ctx context.Context, in Input, opt Options, dirtyNets []int32) error {
	if !e.hasBase || opt != e.baseOpt || !e.clkMatchesBase(in) {
		return e.analyzeState(ctx, in, opt)
	}
	done := ctx.Done()
	if done != nil {
		// The cone walk visits only dirty fanout — often a handful of
		// cells, fewer than any periodic check interval — so an already
		// cancelled context is observed up front (matching the full
		// pass, whose first loop iteration checks immediately).
		select {
		case <-done:
			e.hasBase = false
			return cancelled(ctx)
		default:
		}
	}
	e.beginReEpoch()
	e.stats = ReStats{Incremental: true, DirtyNets: len(dirtyNets)}
	for _, s := range dirtyNets {
		if s < 0 || int(s) >= len(e.rcStamp) {
			// A Seq outside the engine's net table means the RC views
			// disagree with the netlist this Engine was built on
			// (extract.DiffRC reports exactly that for mismatched view
			// sizes) — not a valid incremental basis. Honor the fallback
			// contract instead of silently dropping the net.
			return e.analyzeState(ctx, in, opt)
		}
		e.rcStamp[s] = e.reEpoch
		e.refreshNetRC(s, in, opt)
	}
	for i := range e.levelHead {
		e.levelHead[i] = -1
	}
	e.endList = e.endList[:0]

	// Seed the cone walk from each dirty net: re-seed the Q source whose
	// clk->Q delay depends on the net's load, then enqueue the net's
	// combinational driver (its load changed), its consumers (their wire
	// delay / input slew changed), and its D endpoints. Duplicate dirty
	// entries are harmless — re-seeding is idempotent and the worklist
	// stamps deduplicate.
	for _, s := range dirtyNets {
		if fi := e.qFlopOf[s]; fi >= 0 {
			ff := e.flops[fi]
			load := e.loadFF[s]
			d := ff.Cell.Seq.ClkQWorst(opt.ClockSlewPs, load)
			arr := e.clkArr(in, ff.Seq) + d
			slew := extract.SlewDegrade(opt.InputSlewPs, 0)
			if e.stamp[s] != e.epoch || arr != e.arr[s] || slew != e.slew[s] {
				e.valStamp[s] = e.reEpoch
			}
			e.set(s, arr, slew, int32(ff.Seq))
		}
		if drv := e.driverOf[s]; drv >= 0 {
			e.enqueue(drv)
		}
		for r := e.consStart[s]; r < e.consStart[s+1]; r++ {
			e.enqueue(e.consInst[r])
		}
		e.pushEndpoints(s)
	}

	// Cone propagation, level by level: a cell re-evaluates iff it was
	// enqueued — its output net's RC changed (load), a fanin net's RC
	// changed (wire delay / slew degradation into this cell), or a
	// fanin's recomputed arrival differs from the retained state. The
	// level buckets guarantee every fanin's value is final before its
	// consumers run, exactly like the full levelized scan, so a
	// re-evaluation that reproduces the retained value bit-identically
	// stops the cone right there — and nets outside the cones are never
	// touched at all, which is what holds the per-sample cost to the
	// cone size instead of the design size.
	visited := 0
	for l := 0; l < len(e.levelHead); l++ {
		for seq := e.levelHead[l]; seq >= 0; seq = e.instNext[seq] {
			visited++
			if done != nil && visited&(cancelCheckEvery-1) == 0 {
				select {
				case <-done:
					e.hasBase = false
					return cancelled(ctx)
				default:
				}
			}
			out := e.outSeq[seq]
			e.stats.RecomputedCells++
			bestArr, bestSlew, ok := e.evalCell(seq, out, opt)
			if !ok {
				// Whether a net is driven at all is structural, not
				// RC-dependent: it was unset in the retained state too.
				continue
			}
			if e.stamp[out] != e.epoch || bestArr != e.arr[out] || bestSlew != e.slew[out] {
				e.valStamp[out] = e.reEpoch
				for r := e.consStart[out]; r < e.consStart[out+1]; r++ {
					e.enqueue(e.consInst[r])
				}
				e.pushEndpoints(out)
			}
			e.set(out, bestArr, bestSlew, int32(seq))
		}
	}

	// Endpoint checks, after every cone value is final: exactly the flops
	// whose D net carries changed RC or a changed arrival. All other
	// entries of the endpoint table are still exact.
	for _, fi := range e.endList {
		e.stats.RecomputedEndpoints++
		e.checkEndpoint(int(fi), e.flops[fi], in, opt)
	}
	// No recordBase here: the basis was verified identical on entry, so
	// the retained Options/clock copies are already exact.
	return nil
}

// enqueue adds a combinational instance to its level's worklist bucket
// once per reanalysis epoch. Only instances with a driven, non-clock
// output are ever enqueued (the adjacency excludes the rest).
func (e *Engine) enqueue(seq int32) {
	if e.instStamp[seq] == e.reEpoch {
		return
	}
	e.instStamp[seq] = e.reEpoch
	l := e.levelOf[seq]
	e.instNext[seq] = e.levelHead[l]
	e.levelHead[l] = seq
}

// pushEndpoints schedules the setup re-checks of every flop whose D pin
// loads the net, deduplicated per epoch; the checks run after propagation
// so they read final arrivals.
func (e *Engine) pushEndpoints(net int32) {
	for r := e.dfStart[net]; r < e.dfStart[net+1]; r++ {
		fi := e.dFlop[r]
		if e.endStamp[fi] == e.reEpoch {
			continue
		}
		e.endStamp[fi] = e.reEpoch
		e.endList = append(e.endList, fi)
	}
}

// SlackStats reduces the retained endpoint table against a clock period:
// WNS is the worst endpoint slack, TNS the sum of negative slacks, both
// in ps. The reduction runs in fixed flop order, so it is deterministic
// for a given retained state. It reads whatever state the last
// Analyze/Reanalyze call left behind (a Monte Carlo loop pairs it with
// ReanalyzeStateCtx); with no constrained endpoints both are 0.
func (e *Engine) SlackStats(periodPs float64) (wnsPs, tnsPs float64) {
	wns := math.Inf(1)
	for i, ok := range e.endOK {
		if !ok {
			continue
		}
		s := periodPs - e.endNeed[i]
		if s < wns {
			wns = s
		}
		if s < 0 {
			tnsPs += s
		}
	}
	if math.IsInf(wns, 1) {
		wns = 0
	}
	return wns, tnsPs
}

// seedSources stamps arrivals at primary inputs and flop Q outputs.
func (e *Engine) seedSources(in Input, opt Options) {
	for _, p := range e.nl.Ports {
		if p.Dir == netlist.In && p.Net != nil && !p.Net.IsClock {
			e.set(int32(p.Net.Seq), 0, opt.InputSlewPs, -1)
		}
	}
	for i, ff := range e.flops {
		q := e.qNet[i]
		if q < 0 {
			continue
		}
		load := e.loadFF[q]
		d := ff.Cell.Seq.ClkQWorst(opt.ClockSlewPs, load)
		e.set(q, e.clkArr(in, ff.Seq)+d, extract.SlewDegrade(opt.InputSlewPs, 0), int32(ff.Seq))
	}
}

// evalCell computes one combinational cell's output arrival and slew from
// its stamped fanin nets — the single unit of propagation work, shared
// verbatim by the full and the incremental pass so both produce
// bit-identical values. ok is false when no fanin is driven.
func (e *Engine) evalCell(seq, out int32, opt Options) (bestArr, bestSlew float64, ok bool) {
	load := e.loadFF[out]
	bestArr = math.Inf(-1)
	// The load-axis segment depends only on the output load, which is
	// constant across the cell's arcs, and the characterization shares one
	// loads slice per drive class — so the segment/fraction pair is cached
	// keyed on the axis' backing array and recomputed (identically) only
	// when an arc carries a different axis.
	var curLoads *float64
	var jOff, stride int
	var fl, gl float64
	for row := e.arcStart[seq]; row < e.arcStart[seq+1]; row++ {
		inNet := e.arcNet[row]
		if inNet < 0 || e.stamp[inNet] != e.epoch {
			continue // clock, unconnected, or undriven/constant-like
		}
		wire := e.wireArc[row]
		sinkSlew := extract.SlewDegrade(e.slew[inNet], wire)
		fi := e.arcFlat[row]
		if fi < 0 {
			// Generic path: tables with mismatched or degenerate axes.
			a := e.arcTab[row]
			if a == nil {
				continue
			}
			d := a.WorstDelay(sinkSlew, load)
			cand := e.arr[inNet] + wire + d
			if cand > bestArr {
				bestArr = cand
				oR := a.SlewRise.Lookup(sinkSlew, load)
				oF := a.SlewFall.Lookup(sinkSlew, load)
				if oR > oF {
					bestSlew = oR
				} else {
					bestSlew = oF
				}
			}
			continue
		}
		// Fast path: one interpolation cell serves all four tables. The
		// segment selection matches liberty.Table.Lookup exactly; the
		// fractions are reciprocal multiplies against the flatten-time
		// inverted axis deltas, and the four bilinear corner weights are
		// hoisted once per row instead of being re-multiplied per table
		// term — the MC sampling hot path's dominant arithmetic.
		f := &e.flats[fi]
		i := segLin(f.slews, sinkSlew)
		if lp := &f.loads[0]; lp != curLoads {
			curLoads = lp
			j := segLin(f.loads, load)
			fl = (load - f.loads[j]) * f.invDL[j]
			gl = 1 - fl
			jOff, stride = j*16, (len(f.loads)-1)*16
		}
		fs := (sinkSlew - f.slews[i]) * f.invDS[i]
		gs := 1 - fs
		w00, w10, w01, w11 := gs*gl, fs*gl, gs*fl, fs*fl
		off := i*stride + jOff
		blk := f.blk[off : off+16]
		dRv := blk[0]*w00 + blk[1]*w10 + blk[2]*w01 + blk[3]*w11
		dFv := blk[4]*w00 + blk[5]*w10 + blk[6]*w01 + blk[7]*w11
		d := dRv
		if dFv > d {
			d = dFv
		}
		cand := e.arr[inNet] + wire + d
		if cand > bestArr {
			bestArr = cand
			oR := blk[8]*w00 + blk[9]*w10 + blk[10]*w01 + blk[11]*w11
			oF := blk[12]*w00 + blk[13]*w10 + blk[14]*w01 + blk[15]*w11
			if oR > oF {
				bestSlew = oR
			} else {
				bestSlew = oF
			}
		}
	}
	if math.IsInf(bestArr, -1) {
		return 0, 0, false
	}
	return bestArr, bestSlew, true
}

// checkEndpoint evaluates flop i's setup check into the per-endpoint
// table: period >= arrival + setup - capture clock arrival (launch arrival
// already includes its clock insertion).
func (e *Engine) checkEndpoint(i int, ff *netlist.Instance, in Input, opt Options) {
	dNet := e.dNet[i]
	if dNet < 0 || e.stamp[dNet] != e.epoch {
		e.endOK[i] = false
		return
	}
	a := e.arr[dNet]
	wire := e.wireD[i]
	need := a + wire + ff.Cell.Seq.SetupPs - e.clkArr(in, ff.Seq)
	if in.ClockArrivalPs == nil {
		need += opt.DefaultSkewPs
	}
	e.endNeed[i] = need
	e.endArr[i] = a
	e.endOK[i] = true
}

// finishInto reduces the propagation state and endpoint table into dst:
// worst slew over all driven combinational outputs, the binding endpoint
// (recomputed exactly over the whole table, so improved cones can unseat a
// previously-critical check), and the traced critical path.
func (e *Engine) finishInto(dst *Result, in Input) error {
	*dst = Result{CriticalPath: dst.CriticalPath[:0]}
	worstSlew := 0.0
	for _, inst := range e.order {
		out := e.outSeq[inst.Seq]
		if out < 0 || e.stamp[out] != e.epoch {
			continue
		}
		if e.slew[out] > worstSlew {
			worstSlew = e.slew[out]
		}
	}
	dst.WorstSlewPs = worstSlew

	minPeriod := 0.0
	critNet, critFF := int32(-1), -1
	for i := range e.flops {
		if !e.endOK[i] {
			continue
		}
		dst.RegToReg++
		if e.endNeed[i] > minPeriod {
			minPeriod = e.endNeed[i]
			critNet = e.dNet[i]
			critFF = i
		}
		if e.endArr[i] > dst.MaxArrivalPs {
			dst.MaxArrivalPs = e.endArr[i]
		}
	}
	if minPeriod <= 0 {
		return fmt.Errorf("sta: no constrained register-to-register paths")
	}
	dst.MinPeriodPs = minPeriod
	dst.AchievedFreqGHz = 1000.0 / minPeriod

	// Trace the critical path backwards.
	if critFF >= 0 {
		dst.CriticalPath = append(dst.CriticalPath, PathPoint{Inst: e.flops[critFF].Name, ArrivalPs: minPeriod})
		n := critNet
		for n >= 0 {
			drvSeq := e.from[n]
			if drvSeq < 0 {
				break
			}
			drv := e.nl.Instances[drvSeq]
			dst.CriticalPath = append(dst.CriticalPath, PathPoint{Inst: drv.Name, ArrivalPs: e.arr[n]})
			if drv.Cell.IsSeq() {
				break
			}
			// Walk to the input that set the arrival (worst input).
			best := int32(-1)
			bestArr := math.Inf(-1)
			for row := e.arcStart[drvSeq]; row < e.arcStart[drvSeq+1]; row++ {
				inNet := e.arcNet[row]
				if inNet < 0 || e.stamp[inNet] != e.epoch {
					continue
				}
				if e.arr[inNet] > bestArr {
					bestArr = e.arr[inNet]
					best = inNet
				}
			}
			n = best
		}
		// Reverse for launch-to-capture order.
		for i, j := 0, len(dst.CriticalPath)-1; i < j; i, j = i+1, j-1 {
			dst.CriticalPath[i], dst.CriticalPath[j] = dst.CriticalPath[j], dst.CriticalPath[i]
		}
	}
	return nil
}

// recordBase marks the retained state as a valid Reanalyze basis under the
// given analysis conditions. The clock table is copied into Engine-owned
// storage: a caller that reuses one clock buffer and mutates it in place
// between analyses must not make clkMatchesBase compare the buffer against
// itself.
func (e *Engine) recordBase(in Input, opt Options) {
	e.hasBase = true
	e.baseOpt = opt
	e.baseClk = append(e.baseClk[:0], in.ClockArrivalPs...)
	e.baseClkNil = in.ClockArrivalPs == nil
}

// clkMatchesBase reports whether an input's clock arrivals are the ones
// the retained state was computed under (element-exact; nil and empty are
// distinct because nil switches the default-skew charge on).
func (e *Engine) clkMatchesBase(in Input) bool {
	if (in.ClockArrivalPs == nil) != e.baseClkNil || len(in.ClockArrivalPs) != len(e.baseClk) {
		return false
	}
	for i, v := range in.ClockArrivalPs {
		if v != e.baseClk[i] {
			return false
		}
	}
	return true
}

// beginEpoch opens a fresh arrival epoch, lazily invalidating arr/slew/from.
// On uint32 wraparound the stamps are hard-cleared so stale entries can
// never alias the new epoch.
func (e *Engine) beginEpoch() {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.stamp {
			e.stamp[i] = 0
		}
		e.epoch = 1
	}
}

// beginReEpoch opens a fresh dirty-tracking epoch for one Reanalyze call,
// lazily sizing the stamp arrays and cone-walk scratch on first use (so a
// warmed engine's steady-state reanalysis allocates nothing).
func (e *Engine) beginReEpoch() {
	if e.rcStamp == nil {
		nNet, nInst, nFlop := len(e.stamp), len(e.nl.Instances), len(e.flops)
		stamps := make([]uint32, 2*nNet+nInst+nFlop)
		e.rcStamp = stamps[:nNet:nNet]
		e.valStamp = stamps[nNet : 2*nNet : 2*nNet]
		e.instStamp = stamps[2*nNet : 2*nNet+nInst : 2*nNet+nInst]
		e.endStamp = stamps[2*nNet+nInst:]
		e.instNext = make([]int32, nInst)
		e.levelHead = make([]int32, len(e.Levels))
		e.endList = make([]int32, 0, nFlop)
	}
	e.reEpoch++
	if e.reEpoch == 0 {
		for i := range e.rcStamp {
			e.rcStamp[i] = 0
			e.valStamp[i] = 0
		}
		for i := range e.instStamp {
			e.instStamp[i] = 0
		}
		for i := range e.endStamp {
			e.endStamp[i] = 0
		}
		e.reEpoch = 1
	}
}

// set records a net's arrival in the current epoch.
func (e *Engine) set(net int32, arr, slew float64, from int32) {
	e.stamp[net] = e.epoch
	e.arr[net] = arr
	e.slew[net] = slew
	e.from[net] = from
}

// clkArr returns the clock insertion delay at an instance.
func (e *Engine) clkArr(in Input, seq int) float64 {
	if seq < len(in.ClockArrivalPs) {
		return in.ClockArrivalPs[seq]
	}
	return 0
}

// refreshAllRC fills the flat RC mirrors from an input view — the
// sequential pass a full analysis pays once so propagation never chases
// NetRC pointers per arc.
func (e *Engine) refreshAllRC(in Input, opt Options) {
	for n := range e.loadFF {
		e.loadFF[n] = e.loadOf(int32(n), in, opt)
	}
	for row, n := range e.arcNet {
		if n >= 0 {
			e.wireArc[row] = e.elmoreOf(n, e.arcSink[row], in)
		}
	}
	for i, d := range e.dNet {
		if d >= 0 {
			e.wireD[i] = e.elmoreOf(d, e.dSink[i], in)
		}
	}
}

// refreshNetRC re-mirrors one dirty net: its load, the wire delay into
// every combinational consumer row reading it, and into every flop D pin
// it feeds. Consumers whose output is undriven have no mirror entries to
// refresh — they are never evaluated.
func (e *Engine) refreshNetRC(s int32, in Input, opt Options) {
	e.loadFF[s] = e.loadOf(s, in, opt)
	for r := e.consStart[s]; r < e.consStart[s+1]; r++ {
		seq := e.consInst[r]
		for row := e.arcStart[seq]; row < e.arcStart[seq+1]; row++ {
			if e.arcNet[row] == s {
				e.wireArc[row] = e.elmoreOf(s, e.arcSink[row], in)
			}
		}
	}
	for r := e.dfStart[s]; r < e.dfStart[s+1]; r++ {
		fi := e.dFlop[r]
		e.wireD[fi] = e.elmoreOf(s, e.dSink[fi], in)
	}
}

// loadOf returns the capacitive load on a net: extracted total cap when
// available, else a lumped sum of sink pin caps.
func (e *Engine) loadOf(net int32, in Input, opt Options) float64 {
	if rc := e.rc(net, in); rc != nil {
		return rc.TotalCapFF
	}
	var c float64
	for _, s := range e.nl.Nets[net].Sinks {
		if !s.IsPort() {
			c += s.Inst.Cell.InputCap(s.Pin)
		} else {
			c += opt.PortLoadFF
		}
	}
	return c
}

// elmoreOf returns the wire delay from a net's driver to one of its sinks.
func (e *Engine) elmoreOf(net, sink int32, in Input) float64 {
	rc := e.rc(net, in)
	if rc == nil || sink < 0 || int(sink) >= len(rc.ElmorePs) {
		return 0
	}
	return rc.ElmorePs[sink]
}

// rc returns the extracted view of a net, nil when absent.
func (e *Engine) rc(net int32, in Input) *extract.NetRC {
	if int(net) < len(in.NetRC) {
		return in.NetRC[net]
	}
	return nil
}

// Analyze is the one-shot convenience wrapper: levelize, analyze, done.
// The returned Result is detached, so the temporary Engine is freed with
// this frame. Flows that sweep parameters should build an Engine once and
// call its Analyze repeatedly instead.
func Analyze(nl *netlist.Netlist, in Input, opt Options) (*Result, error) {
	e, err := NewEngine(nl)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := e.AnalyzeInto(&res, in, opt); err != nil {
		return nil, err
	}
	return &res, nil
}
