// Package sta implements graph-based static timing analysis over the
// placed-and-routed design: NLDM cell arcs with slew propagation, extracted
// net Elmore delays, clock insertion delays from CTS, and setup checks at
// the flops. Its headline output is the achieved clock frequency — the
// metric the paper sweeps in Figs. 9-11 and Table III.
//
// The analysis is split into a reusable Engine and per-call inputs. The
// Engine levelizes the combinational graph once and snapshots every
// netlist-derived lookup (timing arcs, net fanin/fanout indices, flop
// endpoints) into flat Seq-indexed arrays; repeated Analyze calls then
// propagate arrivals over epoch-stamped scratch without allocating, which
// is what makes the paper's dense frequency/utilization sweeps cheap per
// point.
package sta

import (
	"fmt"
	"math"

	"repro/internal/extract"
	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Options configures analysis.
type Options struct {
	InputSlewPs   float64 // slew at primary inputs and flop clock pins
	PortLoadFF    float64 // load on output ports
	ClockSlewPs   float64
	DefaultSkewPs float64 // used when no CTS arrivals are provided
}

// DefaultOptions returns flow defaults.
func DefaultOptions() Options {
	return Options{InputSlewPs: 15, PortLoadFF: 1.0, ClockSlewPs: 12, DefaultSkewPs: 5}
}

// Input bundles the per-analysis design view. Both slices are dense,
// indexed by the netlist's stable Seq ids.
type Input struct {
	// NetRC holds extracted parasitics indexed by Net.Seq. A nil slice or
	// a nil entry falls back to a lumped estimate from pin caps only.
	NetRC []*extract.NetRC
	// ClockArrivalPs holds clock insertion delays (ps) indexed by
	// Instance.Seq (only flop entries are read). A nil slice means no CTS
	// ran; endpoint checks then charge Options.DefaultSkewPs instead.
	ClockArrivalPs []float64
}

// PathPoint is one hop of the reported critical path.
type PathPoint struct {
	Inst      string
	ArrivalPs float64
}

// Result is the analysis outcome.
type Result struct {
	MinPeriodPs     float64
	AchievedFreqGHz float64
	CriticalPath    []PathPoint
	MaxArrivalPs    float64
	WorstSlewPs     float64
	// RegToReg is the number of constrained endpoint checks.
	RegToReg int
}

// Clone returns a detached copy of the Result. Engine.Analyze returns a
// view into the Engine's reusable storage; results that outlive the
// Engine (or the next Analyze call) should be cloned so they don't pin
// the Engine's flat tables in memory.
func (r *Result) Clone() *Result {
	out := *r
	out.CriticalPath = append([]PathPoint(nil), r.CriticalPath...)
	return &out
}

// Engine is a reusable analyzer bound to one netlist snapshot. Building it
// levelizes the combinational graph and flattens every connectivity lookup
// the propagation needs; Analyze afterwards runs without allocations. The
// Engine caches connectivity, so it must be rebuilt after netlist edits
// (reconnects, buffer insertion, resizing). The level structure is kept —
// it is the natural seed for incremental fanout-cone propagation.
type Engine struct {
	nl *netlist.Netlist

	// Levels is the levelized combinational order (level 0 = cells fed
	// only by sources). Retained for incremental use; the full analysis
	// walks the flattened order.
	Levels [][]*netlist.Instance

	order []*netlist.Instance // Levels flattened
	flops []*netlist.Instance

	// Flat per-(instance, input-pin) arc tables: the rows of instance i
	// are arcNet/arcSink/arcTab[arcStart[i]:arcStart[i+1]], one per input
	// pin in canonical cell order. arcNet is the driving net's Seq (-1
	// for unconnected or clock inputs, which timing skips); arcSink is
	// this pin's index in that net's sink list (-1 when absent); arcTab
	// is the cell's NLDM arc for the pin.
	arcStart []int32
	arcNet   []int32
	arcSink  []int32
	arcTab   []*liberty.Arc

	// outSeq[i] is instance i's output net Seq, -1 when unconnected or a
	// clock net (which combinational propagation never writes).
	outSeq []int32

	// Flop endpoint tables, aligned with flops: the D-pin net and sink
	// index, and the Q output net Seq.
	dNet, dSink, qNet []int32

	// Per-net arrival state, epoch-stamped: arr/slew/from are valid only
	// while stamp matches the current epoch, so each Analyze starts from
	// a logically cleared state without clearing (the same arena pattern
	// as the router's search scratch).
	epoch uint32
	stamp []uint32
	arr   []float64
	slew  []float64
	from  []int32 // Seq of the instance that set the arrival; -1 at sources

	res Result
}

// NewEngine levelizes the netlist and builds the dense timing graph.
// It fails if the combinational graph is cyclic.
func NewEngine(nl *netlist.Netlist) (*Engine, error) {
	levels, cyclic := nl.TopoLevels()
	if len(cyclic) > 0 {
		return nil, fmt.Errorf("sta: %d instances in combinational cycles", len(cyclic))
	}
	e := &Engine{nl: nl, Levels: levels, flops: nl.Flops()}
	for _, level := range levels {
		e.order = append(e.order, level...)
	}

	nInst, nNet := len(nl.Instances), len(nl.Nets)
	e.arcStart = make([]int32, nInst+1)
	e.outSeq = make([]int32, nInst)
	for _, inst := range nl.Instances {
		e.arcStart[inst.Seq+1] = int32(len(inst.Cell.Inputs))
		e.outSeq[inst.Seq] = -1
		if out := inst.OutputNet(); out != nil && !out.IsClock {
			e.outSeq[inst.Seq] = int32(out.Seq)
		}
	}
	for i := 0; i < nInst; i++ {
		e.arcStart[i+1] += e.arcStart[i]
	}
	nArcs := int(e.arcStart[nInst])
	e.arcNet = make([]int32, nArcs)
	e.arcSink = make([]int32, nArcs)
	e.arcTab = make([]*liberty.Arc, nArcs)
	for _, inst := range nl.Instances {
		row := e.arcStart[inst.Seq]
		for _, p := range inst.Cell.Inputs {
			e.arcNet[row], e.arcSink[row] = -1, -1
			if n := inst.Conn(p.Name); n != nil && !n.IsClock {
				e.arcNet[row] = int32(n.Seq)
			}
			e.arcTab[row] = inst.Cell.Arc(p.Name)
			row++
		}
	}
	// One pass over the nets resolves every pin's sink index — O(total
	// sinks), instead of rescanning each net's sink list per fanin pin.
	for _, n := range nl.Nets {
		if n.IsClock {
			continue
		}
		for i, s := range n.Sinks {
			if s.IsPort() {
				continue
			}
			if row, ok := e.arcRow(s.Inst, s.Pin); ok {
				e.arcSink[row] = int32(i)
			}
		}
	}

	e.dNet = make([]int32, len(e.flops))
	e.dSink = make([]int32, len(e.flops))
	e.qNet = make([]int32, len(e.flops))
	for i, ff := range e.flops {
		e.dNet[i], e.dSink[i] = -1, -1
		if row, ok := e.arcRow(ff, ff.Cell.Seq.DataPin); ok {
			e.dNet[i], e.dSink[i] = e.arcNet[row], e.arcSink[row]
		}
		e.qNet[i] = -1
		if q := ff.OutputNet(); q != nil {
			e.qNet[i] = int32(q.Seq)
		}
	}

	e.stamp = make([]uint32, nNet)
	e.arr = make([]float64, nNet)
	e.slew = make([]float64, nNet)
	e.from = make([]int32, nNet)
	return e, nil
}

// arcRow locates the arc-table row of an instance input pin (rows follow
// the cell's canonical input order).
func (e *Engine) arcRow(inst *netlist.Instance, pin string) (int32, bool) {
	row := e.arcStart[inst.Seq]
	for _, p := range inst.Cell.Inputs {
		if p.Name == pin {
			return row, true
		}
		row++
	}
	return -1, false
}

// Analyze runs STA and derives the minimum feasible clock period.
//
// The returned Result (including its CriticalPath backing array) is owned
// by the Engine and reused by the next Analyze call; clone it if it must
// outlive that.
func (e *Engine) Analyze(in Input, opt Options) (*Result, error) {
	nl := e.nl
	e.beginEpoch()
	e.res = Result{CriticalPath: e.res.CriticalPath[:0]}
	res := &e.res

	// Sources: primary inputs and flop Q outputs.
	for _, p := range nl.Ports {
		if p.Dir == netlist.In && p.Net != nil && !p.Net.IsClock {
			e.set(int32(p.Net.Seq), 0, opt.InputSlewPs, -1)
		}
	}
	for i, ff := range e.flops {
		q := e.qNet[i]
		if q < 0 {
			continue
		}
		load := e.loadOf(q, in, opt)
		d := ff.Cell.Seq.ClkQWorst(opt.ClockSlewPs, load)
		e.set(q, e.clkArr(in, ff.Seq)+d, extract.SlewDegrade(opt.InputSlewPs, 0), int32(ff.Seq))
	}

	worstSlew := 0.0
	// Propagation through combinational cells in levelized topo order.
	for _, inst := range e.order {
		out := e.outSeq[inst.Seq]
		if out < 0 {
			continue
		}
		load := e.loadOf(out, in, opt)
		bestArr := math.Inf(-1)
		bestSlew := 0.0
		for row := e.arcStart[inst.Seq]; row < e.arcStart[inst.Seq+1]; row++ {
			inNet := e.arcNet[row]
			if inNet < 0 || e.stamp[inNet] != e.epoch {
				continue // clock, unconnected, or undriven/constant-like
			}
			a := e.arcTab[row]
			if a == nil {
				continue
			}
			wire := e.elmoreOf(inNet, e.arcSink[row], in)
			sinkSlew := extract.SlewDegrade(e.slew[inNet], wire)
			d := a.WorstDelay(sinkSlew, load)
			cand := e.arr[inNet] + wire + d
			if cand > bestArr {
				bestArr = cand
				outSlewR := a.SlewRise.Lookup(sinkSlew, load)
				outSlewF := a.SlewFall.Lookup(sinkSlew, load)
				bestSlew = math.Max(outSlewR, outSlewF)
			}
		}
		if math.IsInf(bestArr, -1) {
			continue
		}
		e.set(out, bestArr, bestSlew, int32(inst.Seq))
		if bestSlew > worstSlew {
			worstSlew = bestSlew
		}
	}
	res.WorstSlewPs = worstSlew

	// Endpoint checks at flop D pins: period >= arrival + setup - capture
	// clock arrival (launch arrival already includes its clock insertion).
	minPeriod := 0.0
	critNet, critFF := int32(-1), -1
	for i, ff := range e.flops {
		dNet := e.dNet[i]
		if dNet < 0 || e.stamp[dNet] != e.epoch {
			continue
		}
		a := e.arr[dNet]
		wire := e.elmoreOf(dNet, e.dSink[i], in)
		need := a + wire + ff.Cell.Seq.SetupPs - e.clkArr(in, ff.Seq)
		if in.ClockArrivalPs == nil {
			need += opt.DefaultSkewPs
		}
		res.RegToReg++
		if need > minPeriod {
			minPeriod = need
			critNet = dNet
			critFF = i
		}
		if a > res.MaxArrivalPs {
			res.MaxArrivalPs = a
		}
	}
	if minPeriod <= 0 {
		return nil, fmt.Errorf("sta: no constrained register-to-register paths")
	}
	res.MinPeriodPs = minPeriod
	res.AchievedFreqGHz = 1000.0 / minPeriod

	// Trace the critical path backwards.
	if critFF >= 0 {
		res.CriticalPath = append(res.CriticalPath, PathPoint{Inst: e.flops[critFF].Name, ArrivalPs: minPeriod})
		n := critNet
		for n >= 0 {
			drvSeq := e.from[n]
			if drvSeq < 0 {
				break
			}
			drv := nl.Instances[drvSeq]
			res.CriticalPath = append(res.CriticalPath, PathPoint{Inst: drv.Name, ArrivalPs: e.arr[n]})
			if drv.Cell.IsSeq() {
				break
			}
			// Walk to the input that set the arrival (worst input).
			best := int32(-1)
			bestArr := math.Inf(-1)
			for row := e.arcStart[drvSeq]; row < e.arcStart[drvSeq+1]; row++ {
				inNet := e.arcNet[row]
				if inNet < 0 || e.stamp[inNet] != e.epoch {
					continue
				}
				if e.arr[inNet] > bestArr {
					bestArr = e.arr[inNet]
					best = inNet
				}
			}
			n = best
		}
		// Reverse for launch-to-capture order.
		for i, j := 0, len(res.CriticalPath)-1; i < j; i, j = i+1, j-1 {
			res.CriticalPath[i], res.CriticalPath[j] = res.CriticalPath[j], res.CriticalPath[i]
		}
	}
	return res, nil
}

// beginEpoch opens a fresh arrival epoch, lazily invalidating arr/slew/from.
// On uint32 wraparound the stamps are hard-cleared so stale entries can
// never alias the new epoch.
func (e *Engine) beginEpoch() {
	e.epoch++
	if e.epoch == 0 {
		for i := range e.stamp {
			e.stamp[i] = 0
		}
		e.epoch = 1
	}
}

// set records a net's arrival in the current epoch.
func (e *Engine) set(net int32, arr, slew float64, from int32) {
	e.stamp[net] = e.epoch
	e.arr[net] = arr
	e.slew[net] = slew
	e.from[net] = from
}

// clkArr returns the clock insertion delay at an instance.
func (e *Engine) clkArr(in Input, seq int) float64 {
	if seq < len(in.ClockArrivalPs) {
		return in.ClockArrivalPs[seq]
	}
	return 0
}

// loadOf returns the capacitive load on a net: extracted total cap when
// available, else a lumped sum of sink pin caps.
func (e *Engine) loadOf(net int32, in Input, opt Options) float64 {
	if rc := e.rc(net, in); rc != nil {
		return rc.TotalCapFF
	}
	var c float64
	for _, s := range e.nl.Nets[net].Sinks {
		if !s.IsPort() {
			c += s.Inst.Cell.InputCap(s.Pin)
		} else {
			c += opt.PortLoadFF
		}
	}
	return c
}

// elmoreOf returns the wire delay from a net's driver to one of its sinks.
func (e *Engine) elmoreOf(net, sink int32, in Input) float64 {
	rc := e.rc(net, in)
	if rc == nil || sink < 0 || int(sink) >= len(rc.ElmorePs) {
		return 0
	}
	return rc.ElmorePs[sink]
}

// rc returns the extracted view of a net, nil when absent.
func (e *Engine) rc(net int32, in Input) *extract.NetRC {
	if int(net) < len(in.NetRC) {
		return in.NetRC[net]
	}
	return nil
}

// Analyze is the one-shot convenience wrapper: levelize, analyze, done.
// The returned Result is detached, so the temporary Engine is freed with
// this frame. Flows that sweep parameters should build an Engine once and
// call its Analyze repeatedly instead.
func Analyze(nl *netlist.Netlist, in Input, opt Options) (*Result, error) {
	e, err := NewEngine(nl)
	if err != nil {
		return nil, err
	}
	res, err := e.Analyze(in, opt)
	if err != nil {
		return nil, err
	}
	return res.Clone(), nil
}
