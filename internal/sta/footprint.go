package sta

import "unsafe"

// FootprintBytes estimates the engine's retained heap bytes: the flat
// graph/arrival/RC tables, the flop endpoint state, the cone-walk
// adjacency and scratch, and the flattened NLDM blocks. The bound netlist
// is deliberately not counted — the session that owns the engine retains
// (and accounts for) the netlist separately, and double-counting it would
// skew any cache budget the estimate feeds. An accounting estimate, not
// an exact heap measurement.
func (e *Engine) FootprintBytes() int64 {
	if e == nil {
		return 0
	}
	const (
		ptrSize  = int64(unsafe.Sizeof(uintptr(0)))
		sliceHdr = int64(unsafe.Sizeof([]int32{}))
		i32      = int64(unsafe.Sizeof(int32(0)))
		f64      = int64(unsafe.Sizeof(float64(0)))
	)
	b := int64(unsafe.Sizeof(*e))
	b += int64(len(e.Levels)) * sliceHdr
	for _, lv := range e.Levels {
		b += int64(len(lv)) * ptrSize
	}
	b += ptrSize * int64(len(e.order)+len(e.flops)+len(e.arcTab))
	b += i32 * int64(len(e.arcStart)+len(e.arcNet)+len(e.arcSink)+len(e.arcFlat)+
		len(e.outSeq)+len(e.dNet)+len(e.dSink)+len(e.qNet)+len(e.from)+
		len(e.levelOf)+len(e.driverOf)+len(e.consStart)+len(e.consInst)+
		len(e.dfStart)+len(e.dFlop)+len(e.qFlopOf)+
		len(e.instNext)+len(e.levelHead)+len(e.endList))
	b += i32 * int64(len(e.stamp)+len(e.rcStamp)+len(e.valStamp)+
		len(e.instStamp)+len(e.endStamp)) // uint32 tables
	b += f64 * int64(len(e.arr)+len(e.slew)+len(e.loadFF)+len(e.wireArc)+
		len(e.wireD)+len(e.endNeed)+len(e.endArr)+len(e.baseClk))
	b += int64(len(e.endOK))
	b += int64(len(e.flats)) * int64(unsafe.Sizeof(flatArc{}))
	for i := range e.flats {
		f := &e.flats[i]
		b += f64 * int64(len(f.slews)+len(f.loads)+len(f.blk))
	}
	return b
}
