package sta

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/extract"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

// pipeline builds: ff1.Q -> inv chain (n stages) -> ff2.D, shared clock.
func pipeline(t *testing.T, stages int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("pipe", lib)
	nl.AddPort("clk", netlist.In)
	nl.MarkClock("clk")
	nl.MustAdd("ff1", lib.MustCell("DFFD1"), map[string]string{"D": "loop", "CP": "clk", "Q": "s0"})
	prev := "s0"
	for i := 0; i < stages; i++ {
		out := "s" + string(rune('1'+i))
		nl.MustAdd("inv"+out, lib.MustCell("INVD1"), map[string]string{"I": prev, "ZN": out})
		prev = out
	}
	nl.MustAdd("ff2", lib.MustCell("DFFD1"), map[string]string{"D": prev, "CP": "clk", "Q": "loop"})
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// arrivals builds a dense Instance.Seq-indexed clock arrival table.
func arrivals(nl *netlist.Netlist, byName map[string]float64) []float64 {
	out := make([]float64, len(nl.Instances))
	for name, a := range byName {
		out[nl.Instance(name).Seq] = a
	}
	return out
}

func TestAnalyzePipeline(t *testing.T) {
	nl := pipeline(t, 4)
	res, err := Analyze(nl, Input{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MinPeriodPs <= 0 || res.AchievedFreqGHz <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.RegToReg != 2 {
		t.Errorf("endpoints = %d, want 2", res.RegToReg)
	}
	// More stages -> longer period.
	nl8 := pipeline(t, 8)
	res8, err := Analyze(nl8, Input{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(res8.MinPeriodPs > res.MinPeriodPs) {
		t.Errorf("8-stage period %.1f must exceed 4-stage %.1f",
			res8.MinPeriodPs, res.MinPeriodPs)
	}
	if len(res.CriticalPath) < 3 {
		t.Errorf("critical path too short: %v", res.CriticalPath)
	}
}

func TestNetRCSlowsPath(t *testing.T) {
	nl := pipeline(t, 2)
	base, err := Analyze(nl, Input{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Attach heavy RC to the mid net (single sink: invs2/I).
	rc := make([]*extract.NetRC, len(nl.Nets))
	rc[nl.Net("s1").Seq] = &extract.NetRC{
		Name:       "s1",
		TotalCapFF: 20,
		ElmorePs:   []float64{40},
	}
	slow, err := Analyze(nl, Input{NetRC: rc}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(slow.MinPeriodPs > base.MinPeriodPs+30) {
		t.Errorf("RC-loaded period %.1f should exceed unloaded %.1f by the wire delay",
			slow.MinPeriodPs, base.MinPeriodPs)
	}
}

func TestClockArrivalsBalance(t *testing.T) {
	nl := pipeline(t, 4)
	base, err := Analyze(nl, Input{ClockArrivalPs: []float64{}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A common insertion delay on both flops cancels exactly.
	arr := arrivals(nl, map[string]float64{"ff1": 20, "ff2": 20})
	res, err := Analyze(nl, Input{ClockArrivalPs: arr}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.MinPeriodPs - base.MinPeriodPs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("balanced insertion delay must not change the period (%.2f vs %.2f)",
			res.MinPeriodPs, base.MinPeriodPs)
	}
	// Skewing the capture flop of the long path moves the binding path to
	// the loop-back check instead; the period must never beat the pure
	// clk-q + setup bound.
	skew, err := Analyze(nl,
		Input{ClockArrivalPs: arrivals(nl, map[string]float64{"ff1": 0, "ff2": 15})},
		DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The binding endpoint shifts to the loop-back check; with the two
	// paths nearly balanced the period stays within a few ps of base.
	if d := skew.MinPeriodPs - base.MinPeriodPs; d > 5 || d < -20 {
		t.Errorf("skewed period %.2f implausible vs base %.2f", skew.MinPeriodPs, base.MinPeriodPs)
	}
}

func TestNoEndpointsRejected(t *testing.T) {
	nl := netlist.New("comb", lib)
	nl.AddPort("a", netlist.In)
	nl.MustAdd("i1", lib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "y"})
	if _, err := Analyze(nl, Input{}, DefaultOptions()); err == nil {
		t.Fatal("design without reg-to-reg paths must error")
	}
}

// TestEngineReuseMatchesOneShot pins the Engine contract: repeated Analyze
// calls on one Engine reproduce the one-shot result exactly, for both the
// bare and the RC-loaded view.
func TestEngineReuseMatchesOneShot(t *testing.T) {
	nl := pipeline(t, 4)
	rc := make([]*extract.NetRC, len(nl.Nets))
	rc[nl.Net("s2").Seq] = &extract.NetRC{Name: "s2", TotalCapFF: 8, ElmorePs: []float64{12}}
	inputs := []Input{{}, {NetRC: rc}, {ClockArrivalPs: arrivals(nl, map[string]float64{"ff1": 7, "ff2": 3})}}

	eng, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i, in := range inputs {
			want, err := Analyze(nl, in, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			wantPath := append([]PathPoint(nil), want.CriticalPath...)
			got, err := eng.Analyze(in, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got.MinPeriodPs != want.MinPeriodPs || got.WorstSlewPs != want.WorstSlewPs ||
				got.MaxArrivalPs != want.MaxArrivalPs || got.RegToReg != want.RegToReg {
				t.Fatalf("round %d input %d: engine %+v != one-shot %+v", round, i, got, want)
			}
			if len(got.CriticalPath) != len(wantPath) {
				t.Fatalf("round %d input %d: path length %d != %d", round, i, len(got.CriticalPath), len(wantPath))
			}
			for j := range wantPath {
				if got.CriticalPath[j] != wantPath[j] {
					t.Fatalf("round %d input %d: path[%d] %+v != %+v", round, i, j, got.CriticalPath[j], wantPath[j])
				}
			}
		}
	}
}

// TestEngineAnalyzeAllocsFree pins the arena property the sweep throughput
// depends on: once warmed, repeated Analyze on one Engine allocates nothing.
func TestEngineAnalyzeAllocsFree(t *testing.T) {
	nl := pipeline(t, 8)
	eng, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	in := Input{}
	opt := DefaultOptions()
	if _, err := eng.Analyze(in, opt); err != nil { // warm the path buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Analyze(in, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Analyze allocates %.1f objects/op, want 0", allocs)
	}
}

// TestGoldenPipeline pins the analysis end to end on a fixed netlist with
// a fixed dense RC view and CTS arrivals: MinPeriodPs and the full
// critical path must reproduce the recorded values exactly (up to one
// part in 1e12 for cross-platform float safety). Any change to arrival
// propagation, Elmore application, or endpoint checks shows up here.
func TestGoldenPipeline(t *testing.T) {
	nl := pipeline(t, 4)
	rc := make([]*extract.NetRC, len(nl.Nets))
	for i, n := range nl.Nets {
		if n.IsClock {
			continue
		}
		el := make([]float64, len(n.Sinks))
		for j := range el {
			el[j] = float64(3 + i + 2*j)
		}
		rc[n.Seq] = &extract.NetRC{Name: n.Name, TotalCapFF: float64(2 + i), ElmorePs: el}
	}
	arr := arrivals(nl, map[string]float64{"ff1": 21.5, "ff2": 18.25})
	res, err := Analyze(nl, Input{NetRC: rc, ClockArrivalPs: arr}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	near := func(got, want float64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= 1e-12*want
	}
	if !near(res.MinPeriodPs, 285.82197054791351) {
		t.Errorf("MinPeriodPs = %.17g, want 285.82197054791351", res.MinPeriodPs)
	}
	if !near(res.MaxArrivalPs, 288.33019257219894) {
		t.Errorf("MaxArrivalPs = %.17g, want 288.33019257219894", res.MaxArrivalPs)
	}
	if !near(res.WorstSlewPs, 179.14064534258659) {
		t.Errorf("WorstSlewPs = %.17g, want 179.14064534258659", res.WorstSlewPs)
	}
	if res.RegToReg != 2 {
		t.Errorf("RegToReg = %d, want 2", res.RegToReg)
	}
	want := []PathPoint{
		{Inst: "ff1", ArrivalPs: 57.141395132069462},
		{Inst: "invs1", ArrivalPs: 96.955443074666249},
		{Inst: "invs2", ArrivalPs: 151.30407812325973},
		{Inst: "invs3", ArrivalPs: 215.22696312258034},
		{Inst: "invs4", ArrivalPs: 288.33019257219894},
		{Inst: "ff2", ArrivalPs: 285.82197054791351},
	}
	if len(res.CriticalPath) != len(want) {
		t.Fatalf("critical path = %+v, want %d points", res.CriticalPath, len(want))
	}
	for i, w := range want {
		g := res.CriticalPath[i]
		if g.Inst != w.Inst || !near(g.ArrivalPs, w.ArrivalPs) {
			t.Errorf("path[%d] = %s@%.17g, want %s@%.17g", i, g.Inst, g.ArrivalPs, w.Inst, w.ArrivalPs)
		}
	}
}
