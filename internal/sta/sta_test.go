package sta

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/extract"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

// pipeline builds: ff1.Q -> inv chain (n stages) -> ff2.D, shared clock.
func pipeline(t *testing.T, stages int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("pipe", lib)
	nl.AddPort("clk", netlist.In)
	nl.MarkClock("clk")
	nl.MustAdd("ff1", lib.MustCell("DFFD1"), map[string]string{"D": "loop", "CP": "clk", "Q": "s0"})
	prev := "s0"
	for i := 0; i < stages; i++ {
		out := "s" + string(rune('1'+i))
		nl.MustAdd("inv"+out, lib.MustCell("INVD1"), map[string]string{"I": prev, "ZN": out})
		prev = out
	}
	nl.MustAdd("ff2", lib.MustCell("DFFD1"), map[string]string{"D": prev, "CP": "clk", "Q": "loop"})
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestAnalyzePipeline(t *testing.T) {
	nl := pipeline(t, 4)
	res, err := Analyze(Input{Netlist: nl}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MinPeriodPs <= 0 || res.AchievedFreqGHz <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.RegToReg != 2 {
		t.Errorf("endpoints = %d, want 2", res.RegToReg)
	}
	// More stages -> longer period.
	nl8 := pipeline(t, 8)
	res8, err := Analyze(Input{Netlist: nl8}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(res8.MinPeriodPs > res.MinPeriodPs) {
		t.Errorf("8-stage period %.1f must exceed 4-stage %.1f",
			res8.MinPeriodPs, res.MinPeriodPs)
	}
	if len(res.CriticalPath) < 3 {
		t.Errorf("critical path too short: %v", res.CriticalPath)
	}
}

func TestNetRCSlowsPath(t *testing.T) {
	nl := pipeline(t, 2)
	base, err := Analyze(Input{Netlist: nl}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Attach heavy RC to the mid net.
	rc := map[string]*extract.NetRC{
		"s1": {
			Name:       "s1",
			TotalCapFF: 20,
			ElmorePs:   map[string]float64{"invs2/I": 40},
		},
	}
	slow, err := Analyze(Input{Netlist: nl, NetRC: rc}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(slow.MinPeriodPs > base.MinPeriodPs+30) {
		t.Errorf("RC-loaded period %.1f should exceed unloaded %.1f by the wire delay",
			slow.MinPeriodPs, base.MinPeriodPs)
	}
}

func TestClockArrivalsBalance(t *testing.T) {
	nl := pipeline(t, 4)
	base, err := Analyze(Input{Netlist: nl, ClockArrival: map[string]float64{}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A common insertion delay on both flops cancels exactly.
	arr := map[string]float64{"ff1": 20, "ff2": 20}
	res, err := Analyze(Input{Netlist: nl, ClockArrival: arr}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.MinPeriodPs - base.MinPeriodPs; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("balanced insertion delay must not change the period (%.2f vs %.2f)",
			res.MinPeriodPs, base.MinPeriodPs)
	}
	// Skewing the capture flop of the long path moves the binding path to
	// the loop-back check instead; the period must never beat the pure
	// clk-q + setup bound.
	skew, err := Analyze(Input{Netlist: nl,
		ClockArrival: map[string]float64{"ff1": 0, "ff2": 15}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The binding endpoint shifts to the loop-back check; with the two
	// paths nearly balanced the period stays within a few ps of base.
	if d := skew.MinPeriodPs - base.MinPeriodPs; d > 5 || d < -20 {
		t.Errorf("skewed period %.2f implausible vs base %.2f", skew.MinPeriodPs, base.MinPeriodPs)
	}
}

func TestNoEndpointsRejected(t *testing.T) {
	nl := netlist.New("comb", lib)
	nl.AddPort("a", netlist.In)
	nl.MustAdd("i1", lib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "y"})
	if _, err := Analyze(Input{Netlist: nl}, DefaultOptions()); err == nil {
		t.Fatal("design without reg-to-reg paths must error")
	}
}
