package sta

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/extract"
	"repro/internal/netlist"
)

// web builds a deterministic pseudo-random reconvergent circuit: nFlops
// flops whose Q outputs feed a DAG of nGates 1- and 2-input gates, with
// every flop's D pin capturing one of the generated signals. Multiple
// endpoints with crossing cones is exactly the shape where incremental
// cone re-timing can go wrong (an improved cone must be able to unseat
// the critical endpoint).
func web(t *testing.T, nFlops, nGates int, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("web%d", seed), lib)
	nl.AddPort("clk", netlist.In)
	nl.MarkClock("clk")
	nl.AddPort("pi0", netlist.In)
	nl.AddPort("pi1", netlist.In)

	// Signal pool the gate DAG draws fanins from (always already driven,
	// so the combinational graph is acyclic by construction).
	pool := []string{"pi0", "pi1"}
	for i := 0; i < nFlops; i++ {
		q := fmt.Sprintf("q%d", i)
		pool = append(pool, q)
	}
	for g := 0; g < nGates; g++ {
		out := fmt.Sprintf("g%d", g)
		a := pool[rng.Intn(len(pool))]
		if rng.Intn(3) == 0 {
			nl.MustAdd("inv"+out, lib.MustCell("INVD1"), map[string]string{"I": a, "ZN": out})
		} else {
			b := pool[rng.Intn(len(pool))]
			nl.MustAdd("nd"+out, lib.MustCell("NAND2D1"), map[string]string{"A1": a, "A2": b, "ZN": out})
		}
		pool = append(pool, out)
	}
	for i := 0; i < nFlops; i++ {
		d := pool[2+nFlops+rng.Intn(nGates)] // capture a gate output
		nl.MustAdd(fmt.Sprintf("ff%d", i), lib.MustCell("DFFD1"),
			map[string]string{"D": d, "CP": "clk", "Q": fmt.Sprintf("q%d", i)})
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// randomRC builds a dense RC view with pseudo-random caps and Elmore
// tables for every non-clock net.
func randomRC(nl *netlist.Netlist, rng *rand.Rand) []*extract.NetRC {
	rc := make([]*extract.NetRC, len(nl.Nets))
	for _, n := range nl.Nets {
		if n.IsClock {
			continue
		}
		el := make([]float64, len(n.Sinks))
		for j := range el {
			el[j] = 2 + 30*rng.Float64()
		}
		rc[n.Seq] = &extract.NetRC{
			Name:       n.Name,
			TotalCapFF: 1 + 8*rng.Float64(),
			WireCapFF:  rng.Float64(),
			ElmorePs:   el,
			WirelenNm:  int64(rng.Intn(5000)),
		}
	}
	return rc
}

// perturbRC returns a copy of rc where a random subset of nets got a new
// view — scaled up (degraded cones) or down (improved cones, the case a
// monotonic worst-endpoint update would get wrong). Clean nets keep the
// identical *NetRC. The returned dirty set is what extract.DiffRC would
// report.
func perturbRC(rc []*extract.NetRC, rng *rand.Rand, frac float64) []*extract.NetRC {
	out := make([]*extract.NetRC, len(rc))
	copy(out, rc)
	for seq, v := range rc {
		if v == nil || rng.Float64() >= frac {
			continue
		}
		scale := 0.25 + 1.5*rng.Float64() // [0.25, 1.75): both directions
		el := make([]float64, len(v.ElmorePs))
		for j, e := range v.ElmorePs {
			el[j] = e * scale
		}
		out[seq] = &extract.NetRC{
			Name:       v.Name,
			TotalCapFF: v.TotalCapFF * scale,
			WireCapFF:  v.WireCapFF,
			ElmorePs:   el,
			WirelenNm:  v.WirelenNm,
		}
	}
	return out
}

// requireSameResult asserts exact (bit-level) equality of two results.
func requireSameResult(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.MinPeriodPs != want.MinPeriodPs || got.AchievedFreqGHz != want.AchievedFreqGHz ||
		got.MaxArrivalPs != want.MaxArrivalPs || got.WorstSlewPs != want.WorstSlewPs ||
		got.RegToReg != want.RegToReg {
		t.Fatalf("%s: incremental %+v != full %+v", tag, got, want)
	}
	if len(got.CriticalPath) != len(want.CriticalPath) {
		t.Fatalf("%s: path length %d != %d", tag, len(got.CriticalPath), len(want.CriticalPath))
	}
	for i := range want.CriticalPath {
		if got.CriticalPath[i] != want.CriticalPath[i] {
			t.Fatalf("%s: path[%d] %+v != %+v", tag, i, got.CriticalPath[i], want.CriticalPath[i])
		}
	}
}

// TestReanalyzeMatchesFullAnalyze is the incremental-correctness property
// test: over many random circuits and random dirty subsets — including
// improved-slack cones, empty dirty sets, and chains of successive
// reanalyses — Reanalyze on a forked engine must reproduce a from-scratch
// full Analyze bit for bit.
func TestReanalyzeMatchesFullAnalyze(t *testing.T) {
	opt := DefaultOptions()
	for round := int64(0); round < 8; round++ {
		rng := rand.New(rand.NewSource(100 + round))
		nl := web(t, 4+int(round%3), 24+int(round)*7, round)
		clk := make([]float64, len(nl.Instances))
		for i := range clk {
			clk[i] = 10 * rng.Float64()
		}

		rc := randomRC(nl, rng)
		base, err := NewEngine(nl)
		if err != nil {
			t.Fatal(err)
		}
		var baseRes Result
		if err := base.AnalyzeInto(&baseRes, Input{NetRC: rc, ClockArrivalPs: clk}, opt); err != nil {
			t.Fatal(err)
		}

		// A chain of successive perturbations on one forked engine: each
		// step's retained state is the previous step's output, exactly
		// how a fork chain of flow sessions uses it.
		eng := base.Fork()
		cur := rc
		for step := 0; step < 5; step++ {
			next := perturbRC(cur, rng, 0.15)
			dirty := extract.DiffRC(nil, cur, next)
			var got Result
			if err := eng.ReanalyzeInto(&got, Input{NetRC: next, ClockArrivalPs: clk}, opt, dirty); err != nil {
				t.Fatal(err)
			}
			if !eng.Stats().Incremental {
				t.Fatalf("round %d step %d: Reanalyze did not take the incremental path", round, step)
			}
			if len(dirty) > 0 && eng.Stats().RecomputedCells == 0 && eng.Stats().RecomputedEndpoints == 0 {
				t.Fatalf("round %d step %d: dirty set %d but nothing recomputed", round, step, len(dirty))
			}
			var want Result
			fresh, err := NewEngine(nl)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.AnalyzeInto(&want, Input{NetRC: next, ClockArrivalPs: clk}, opt); err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("round %d step %d (%d dirty)", round, step, len(dirty)), &got, &want)
			cur = next
		}

		// Empty dirty set: nothing may be recomputed, and the result must
		// reproduce the retained analysis exactly.
		empty := base.Fork()
		var got Result
		if err := empty.ReanalyzeInto(&got, Input{NetRC: rc, ClockArrivalPs: clk}, opt, nil); err != nil {
			t.Fatal(err)
		}
		if st := empty.Stats(); !st.Incremental || st.RecomputedCells != 0 || st.RecomputedEndpoints != 0 {
			t.Fatalf("round %d: empty dirty set recomputed work: %+v", round, st)
		}
		requireSameResult(t, fmt.Sprintf("round %d empty-dirty", round), &got, &baseRes)

		// Dirty superset: listing clean nets as dirty costs work but must
		// not change a single bit (their re-evaluation reproduces the
		// retained values and the cone stops).
		super := base.Fork()
		all := make([]int32, len(nl.Nets))
		for i := range all {
			all[i] = int32(i)
		}
		if err := super.ReanalyzeInto(&got, Input{NetRC: rc, ClockArrivalPs: clk}, opt, all); err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("round %d superset", round), &got, &baseRes)
	}
}

// TestReanalyzeImprovedCriticalCone pins the non-monotonic case directly:
// when the dirty cone is the one holding the critical endpoint and its RC
// improves, the reported period must drop to the full-analysis value —
// a max that is only ever ratcheted up would keep the stale worst.
func TestReanalyzeImprovedCriticalCone(t *testing.T) {
	nl := pipeline(t, 6)
	opt := DefaultOptions()

	// Heavy RC on a mid net makes the forward path the binding check.
	heavy := make([]*extract.NetRC, len(nl.Nets))
	s3 := nl.Net("s3")
	heavy[s3.Seq] = &extract.NetRC{Name: "s3", TotalCapFF: 30, ElmorePs: make([]float64, len(s3.Sinks))}
	for j := range heavy[s3.Seq].ElmorePs {
		heavy[s3.Seq].ElmorePs[j] = 80
	}

	base, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	heavyRes, err := base.Analyze(Input{NetRC: heavy}, opt)
	if err != nil {
		t.Fatal(err)
	}
	heavyPeriod := heavyRes.MinPeriodPs

	// Improve the critical net: same structure, light RC.
	light := make([]*extract.NetRC, len(nl.Nets))
	copy(light, heavy)
	light[s3.Seq] = &extract.NetRC{Name: "s3", TotalCapFF: 2, ElmorePs: make([]float64, len(s3.Sinks))}
	for j := range light[s3.Seq].ElmorePs {
		light[s3.Seq].ElmorePs[j] = 1
	}
	dirty := extract.DiffRC(nil, heavy, light)
	if len(dirty) != 1 || dirty[0] != int32(s3.Seq) {
		t.Fatalf("dirty = %v, want exactly [%d]", dirty, s3.Seq)
	}

	eng := base.Fork()
	got, err := eng.Reanalyze(Input{NetRC: light}, opt, dirty)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(nl, Input{NetRC: light}, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "improved cone", got, want)
	if !(got.MinPeriodPs < heavyPeriod) {
		t.Fatalf("improved cone did not lower the period: %.3f -> %.3f", heavyPeriod, got.MinPeriodPs)
	}
	if !eng.Stats().Incremental {
		t.Fatal("expected the incremental path")
	}
}

// TestReanalyzeBasisMismatchFallsBack locks the safety valve: a Reanalyze
// under different options or clock arrivals than the retained basis must
// run a full analysis (and say so in Stats), never a wrong incremental one.
func TestReanalyzeBasisMismatchFallsBack(t *testing.T) {
	nl := pipeline(t, 4)
	eng, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	if _, err := eng.Analyze(Input{}, opt); err != nil {
		t.Fatal(err)
	}

	slower := opt
	slower.InputSlewPs = 22
	got, err := eng.Reanalyze(Input{}, slower, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Incremental {
		t.Fatal("option change must force a full analysis")
	}
	want, err := Analyze(nl, Input{}, slower)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "opt fallback", got, want)

	// Clock-table change (including nil vs non-nil) is a basis change too.
	arr := arrivals(nl, map[string]float64{"ff1": 4, "ff2": 9})
	got, err = eng.Reanalyze(Input{ClockArrivalPs: arr}, slower, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Incremental {
		t.Fatal("clock change must force a full analysis")
	}
	want, err = Analyze(nl, Input{ClockArrivalPs: arr}, slower)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "clk fallback", got, want)

	// An engine with no retained state at all falls back as well.
	cold, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Reanalyze(Input{}, opt, nil); err != nil {
		t.Fatal(err)
	}
	if cold.Stats().Incremental {
		t.Fatal("cold engine must run a full analysis")
	}

	// The basis must not alias a caller's clock buffer: mutating the same
	// slice in place between analyses is a basis change and must be
	// detected (an aliased compare would see the buffer equal to itself).
	clk := arrivals(nl, map[string]float64{"ff1": 4, "ff2": 9})
	if _, err := eng.Analyze(Input{ClockArrivalPs: clk}, opt); err != nil {
		t.Fatal(err)
	}
	clk[nl.Instance("ff2").Seq] = 25 // in-place mutation of the caller buffer
	got, err = eng.Reanalyze(Input{ClockArrivalPs: clk}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Incremental {
		t.Fatal("in-place clock mutation must force a full analysis")
	}
	want, err = Analyze(nl, Input{ClockArrivalPs: clk}, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "aliased clk fallback", got, want)

	// A dirty Seq outside the engine's net table (DiffRC emits those when
	// the RC views disagree on the design size) is a basis mismatch, not
	// a net to skip.
	got, err = eng.Reanalyze(Input{ClockArrivalPs: clk}, opt, []int32{int32(len(nl.Nets)) + 3})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Incremental {
		t.Fatal("out-of-range dirty Seq must force a full analysis")
	}
	requireSameResult(t, "out-of-range fallback", got, want)
}

// TestForkIsolation guards the clone-on-fork contract: re-timing a forked
// engine must not perturb the parent's retained state or results, and
// sibling forks must be independent of each other.
func TestForkIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nl := web(t, 5, 40, 7)
	rc := randomRC(nl, rng)
	opt := DefaultOptions()

	parent, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	parentRes, err := parent.Analyze(Input{NetRC: rc}, opt)
	if err != nil {
		t.Fatal(err)
	}
	parentSnap := parentRes.Clone()

	a, b := parent.Fork(), parent.Fork()
	rcA := perturbRC(rc, rng, 0.5)
	rcB := perturbRC(rc, rng, 0.5)
	var resA, resB Result
	if err := a.ReanalyzeInto(&resA, Input{NetRC: rcA}, opt, extract.DiffRC(nil, rc, rcA)); err != nil {
		t.Fatal(err)
	}
	if err := b.ReanalyzeInto(&resB, Input{NetRC: rcB}, opt, extract.DiffRC(nil, rc, rcB)); err != nil {
		t.Fatal(err)
	}

	// The parent re-running over its original view must reproduce its
	// original result: no child write leaked into its state.
	again, err := parent.Reanalyze(Input{NetRC: rc}, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "parent after child reanalyses", again, parentSnap)

	for tag, pair := range map[string]struct {
		in  []*extract.NetRC
		got *Result
	}{"fork A": {rcA, &resA}, "fork B": {rcB, &resB}} {
		want, err := Analyze(nl, Input{NetRC: pair.in}, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, tag, pair.got, want)
	}
}

// TestAnalyzeIntoAllocsFree pins the caller-reusable storage contract:
// once the destination Result is warmed, both AnalyzeInto and a dirty
// ReanalyzeInto run without a single allocation.
func TestAnalyzeIntoAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := web(t, 4, 30, 3)
	rc := randomRC(nl, rng)
	rc2 := perturbRC(rc, rng, 0.3)
	dirty := extract.DiffRC(nil, rc, rc2)
	opt := DefaultOptions()

	eng, err := NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	var dst Result
	if err := eng.AnalyzeInto(&dst, Input{NetRC: rc}, opt); err != nil { // warm path buffer
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := eng.AnalyzeInto(&dst, Input{NetRC: rc}, opt); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("AnalyzeInto allocates %.1f objects/op, want 0", allocs)
	}
	if err := eng.ReanalyzeInto(&dst, Input{NetRC: rc2}, opt, dirty); err != nil { // warm dirty scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := eng.ReanalyzeInto(&dst, Input{NetRC: rc2}, opt, dirty); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ReanalyzeInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestReanalyzeStateMatchesFull covers the state-only reanalysis entry
// the Monte Carlo loop drives: chained ReanalyzeStateCtx calls on forked
// engines (including forks of forks) must leave endpoint state whose
// SlackStats match a from-scratch full analysis of the same view bit for
// bit, at every chain step and fork depth.
func TestReanalyzeStateMatchesFull(t *testing.T) {
	opt := DefaultOptions()
	for round := int64(0); round < 6; round++ {
		rng := rand.New(rand.NewSource(500 + round))
		nl := web(t, 5+int(round%3), 30+int(round)*5, 900+round)
		clk := make([]float64, len(nl.Instances))
		for i := range clk {
			clk[i] = 12 * rng.Float64()
		}
		rc := randomRC(nl, rng)
		base, err := NewEngine(nl)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		if err := base.AnalyzeInto(&res, Input{NetRC: rc, ClockArrivalPs: clk}, opt); err != nil {
			t.Fatal(err)
		}
		period := res.MinPeriodPs * 0.97 // slightly infeasible: nonzero TNS

		eng := base.Fork()
		cur := rc
		for step := 0; step < 6; step++ {
			if step == 3 {
				// Re-fork mid-chain: the child inherits the chain state
				// and must keep producing exact results.
				eng = eng.Fork()
			}
			next := perturbRC(cur, rng, 0.2)
			dirty := extract.DiffRC(nil, cur, next)
			in := Input{NetRC: next, ClockArrivalPs: clk}
			if err := eng.ReanalyzeStateCtx(context.Background(), in, opt, dirty); err != nil {
				t.Fatal(err)
			}
			if !eng.Stats().Incremental {
				t.Fatalf("round %d step %d: state reanalysis not incremental", round, step)
			}
			gotW, gotT := eng.SlackStats(period)

			fresh, err := NewEngine(nl)
			if err != nil {
				t.Fatal(err)
			}
			var want Result
			if err := fresh.AnalyzeInto(&want, in, opt); err != nil {
				t.Fatal(err)
			}
			wantW, wantT := fresh.SlackStats(period)
			if gotW != wantW || gotT != wantT {
				t.Fatalf("round %d step %d: SlackStats (%v, %v) != full (%v, %v)",
					round, step, gotW, gotT, wantW, wantT)
			}
			// The state must also still reduce into a bit-identical full
			// Result (state-only and Into variants share one propagation).
			var got Result
			if err := eng.ReanalyzeInto(&got, in, opt, nil); err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("round %d step %d state", round, step), &got, &want)
			cur = next
		}
	}
}
