package gatesim

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

func TestCombinationalEval(t *testing.T) {
	nl := netlist.New("comb", lib)
	nl.AddPort("a", netlist.In)
	nl.AddPort("b", netlist.In)
	nl.AddPort("y", netlist.Out)
	nl.MustAdd("g1", lib.MustCell("NAND2D1"), map[string]string{"A1": "a", "A2": "b", "ZN": "n1"})
	nl.MustAdd("g2", lib.MustCell("INVD1"), map[string]string{"I": "n1", "ZN": "y"})
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ a, b, want bool }{
		{false, false, false}, {true, false, false}, {false, true, false}, {true, true, true},
	} {
		sim.SetPort("a", c.a)
		sim.SetPort("b", c.b)
		sim.Eval()
		got, err := sim.Port("y")
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("AND(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDFFStep(t *testing.T) {
	nl := netlist.New("ff", lib)
	nl.AddPort("d", netlist.In)
	nl.AddPort("clk", netlist.In)
	nl.AddPort("q", netlist.Out)
	nl.MarkClock("clk")
	nl.MustAdd("ff", lib.MustCell("DFFD1"), map[string]string{"D": "d", "CP": "clk", "Q": "q"})
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetPort("d", true)
	sim.Eval()
	if q, _ := sim.Port("q"); q {
		t.Error("q should still be 0 before the clock edge")
	}
	sim.Step()
	sim.Eval()
	if q, _ := sim.Port("q"); !q {
		t.Error("q should be 1 after the edge")
	}
	sim.SetPort("d", false)
	sim.Cycle()
	if q, _ := sim.Port("q"); q {
		t.Error("q should be 0 after second edge")
	}
}

func TestDFFRSOverrides(t *testing.T) {
	nl := netlist.New("ffrs", lib)
	for _, p := range []string{"d", "clk", "rn", "sn"} {
		nl.AddPort(p, netlist.In)
	}
	nl.AddPort("q", netlist.Out)
	nl.MustAdd("ff", lib.MustCell("DFFRSD1"), map[string]string{
		"D": "d", "CP": "clk", "RN": "rn", "SN": "sn", "Q": "q",
	})
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	set := func(d, rn, sn bool) {
		sim.SetPort("d", d)
		sim.SetPort("rn", rn)
		sim.SetPort("sn", sn)
	}
	// Set wins over D.
	set(false, true, false)
	sim.Cycle()
	if q, _ := sim.Port("q"); !q {
		t.Error("SN low should set q=1")
	}
	// Reset wins over set.
	set(true, false, false)
	sim.Cycle()
	if q, _ := sim.Port("q"); q {
		t.Error("RN low should reset q=0 (reset dominant)")
	}
	// Normal capture with both inactive.
	set(true, true, true)
	sim.Cycle()
	if q, _ := sim.Port("q"); !q {
		t.Error("normal capture failed")
	}
}

func TestRejectsCombinationalCycle(t *testing.T) {
	nl := netlist.New("cyc", lib)
	nl.AddPort("a", netlist.In)
	nl.MustAdd("u1", lib.MustCell("NAND2D1"), map[string]string{"A1": "a", "A2": "n2", "ZN": "n1"})
	nl.MustAdd("u2", lib.MustCell("NAND2D1"), map[string]string{"A1": "a", "A2": "n1", "ZN": "n2"})
	if _, err := New(nl); err == nil {
		t.Fatal("combinational cycle must be rejected")
	}
}

func TestShiftRegister(t *testing.T) {
	nl := netlist.New("sr", lib)
	nl.AddPort("d", netlist.In)
	nl.AddPort("clk", netlist.In)
	nl.MarkClock("clk")
	prev := "d"
	for i := 0; i < 4; i++ {
		out := "q" + string(rune('0'+i))
		nl.MustAdd("ff"+string(rune('0'+i)), lib.MustCell("DFFD1"),
			map[string]string{"D": prev, "CP": "clk", "Q": out})
		prev = out
	}
	sim, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []bool{true, false, true, true, false, false, true, false}
	var got []bool
	for _, bit := range pattern {
		sim.SetPort("d", bit)
		sim.Cycle()
		v, _ := sim.Net("q3")
		got = append(got, v)
	}
	// After cycle i, q3 holds the bit sampled 3 cycles earlier.
	for i := 3; i < len(pattern); i++ {
		if got[i] != pattern[i-3] {
			t.Errorf("cycle %d: q3 = %v, want %v", i, got[i], pattern[i-3])
		}
	}
}

// Property test: a random DAG of library gates simulated by gatesim matches
// direct functional evaluation of the same DAG.
func TestRandomDAGMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bases := []string{"NAND2D1", "NOR2D1", "AND2D1", "OR2D1", "INVD1", "MUX2D1", "AOI21D1", "OAI22D1"}
	for trial := 0; trial < 25; trial++ {
		nl := netlist.New("rnd", lib)
		const numIn = 5
		type node struct {
			c   *cell.Cell
			ins []int // indices into signal list
		}
		var nodes []node
		nSignals := numIn
		for i := 0; i < numIn; i++ {
			nl.AddPort(sigName(i), netlist.In)
		}
		nGates := 3 + rng.Intn(30)
		for g := 0; g < nGates; g++ {
			c := lib.MustCell(bases[rng.Intn(len(bases))])
			n := node{c: c}
			conns := map[string]string{}
			for _, p := range c.Inputs {
				k := rng.Intn(nSignals)
				n.ins = append(n.ins, k)
				conns[p.Name] = sigName(k)
			}
			conns[c.Out.Name] = sigName(nSignals)
			nl.MustAdd(gName(g), c, conns)
			nodes = append(nodes, n)
			nSignals++
		}
		sim, err := New(nl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for vec := 0; vec < 16; vec++ {
			vals := make([]bool, nSignals)
			for i := 0; i < numIn; i++ {
				vals[i] = rng.Intn(2) == 1
				sim.SetPort(sigName(i), vals[i])
			}
			sim.Eval()
			// Reference evaluation in creation order (a topological order).
			for g, n := range nodes {
				ins := make([]bool, len(n.ins))
				for k, idx := range n.ins {
					ins[k] = vals[idx]
				}
				vals[numIn+g] = n.c.Fn.Eval(ins)
			}
			for g := range nodes {
				got, err := sim.Net(sigName(numIn + g))
				if err != nil {
					t.Fatal(err)
				}
				if got != vals[numIn+g] {
					t.Fatalf("trial %d vec %d: gate %d (%s) = %v, want %v",
						trial, vec, g, nodes[g].c.Name, got, vals[numIn+g])
				}
			}
		}
	}
}

func sigName(i int) string { return "s" + itoa(i) }
func gName(i int) string   { return "g" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
