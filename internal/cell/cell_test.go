package cell

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tech"
)

func libs(t *testing.T) (*Library, *Library) {
	t.Helper()
	return NewLibrary(tech.NewFFET()), NewLibrary(tech.NewCFET())
}

func TestLibraryHas28Cells(t *testing.T) {
	ffet, cfet := libs(t)
	if got := len(ffet.Cells()); got != 28 {
		t.Errorf("FFET library has %d cells, want 28 (Fig. 4)", got)
	}
	if got := len(cfet.Cells()); got != 28 {
		t.Errorf("CFET library has %d cells, want 28", got)
	}
	for _, name := range ffet.CellNames() {
		if cfet.Cell(name) == nil {
			t.Errorf("CFET library missing %s", name)
		}
	}
}

func TestFig4AreaGains(t *testing.T) {
	ffet, cfet := libs(t)
	gain := func(name string) float64 {
		f, c := ffet.MustCell(name), cfet.MustCell(name)
		return 100 * (1 - f.AreaUm2(ffet.Stack)/c.AreaUm2(cfet.Stack))
	}
	// Pure height-scaling cells: exactly 0.5T/4T = 12.5%.
	for _, n := range []string{"INVD1", "INVD4", "BUFD2", "NAND2D1", "NOR2D2",
		"AND2D1", "OR2D2", "AOI21D1", "OAI21D2"} {
		if g := gain(n); g < 12.4 || g > 12.6 {
			t.Errorf("%s area gain = %.2f%%, want 12.5%%", n, g)
		}
	}
	// Split Gate cells must beat 12.5% clearly (paper: MUX/DFF extra gain).
	for _, n := range []string{"MUX2D1", "MUX2D2", "DFFD1", "DFFRSD1"} {
		if g := gain(n); g < 25 {
			t.Errorf("%s area gain = %.2f%%, want > 25%% from Split Gate", n, g)
		}
	}
	// Extra-Drain-Merge cells must be below 12.5% (near zero or negative).
	for _, n := range []string{"AOI22D1", "AOI22D2", "OAI22D1", "OAI22D2"} {
		if g := gain(n); g > 5 {
			t.Errorf("%s area gain = %.2f%%, want <= 5%% (extra Drain Merge)", n, g)
		}
	}
}

func TestCellGeometry(t *testing.T) {
	ffet, cfet := libs(t)
	inv := ffet.MustCell("INVD1")
	if inv.WidthNm(ffet.Stack) != 100 {
		t.Errorf("INVD1 width = %d nm, want 100 (2 CPP)", inv.WidthNm(ffet.Stack))
	}
	if got := inv.AreaNm2(ffet.Stack); got != 100*105 {
		t.Errorf("FFET INVD1 area = %d nm², want 10500", got)
	}
	if got := cfet.MustCell("INVD1").AreaNm2(cfet.Stack); got != 100*120 {
		t.Errorf("CFET INVD1 area = %d nm², want 12000", got)
	}
}

func TestTable1CharacterizationShape(t *testing.T) {
	ffet, cfet := libs(t)
	diff := func(name string, get func(c *Cell) float64) float64 {
		return 100 * (get(ffet.MustCell(name))/get(cfet.MustCell(name)) - 1)
	}
	at := func(c *Cell) (slew, load float64) { return 20, float64(c.Drive) }

	for _, name := range []string{"INVD1", "INVD2", "INVD4", "BUFD1", "BUFD2", "BUFD4"} {
		// Leakage identical across archs (same intrinsic transistors).
		if d := diff(name, func(c *Cell) float64 { return c.LeakageNW }); d != 0 {
			t.Errorf("%s leakage diff = %.2f%%, want 0", name, d)
		}
		// FFET timing strictly better on the fall edge.
		dFall := diff(name, func(c *Cell) float64 {
			s, l := at(c)
			return c.Arc("I").DelayFall.Lookup(s, l)
		})
		if dFall >= 0 {
			t.Errorf("%s fall delay diff = %.2f%%, want negative", name, dFall)
		}
		dRise := diff(name, func(c *Cell) float64 {
			s, l := at(c)
			return c.Arc("I").DelayRise.Lookup(s, l)
		})
		if dRise >= 0 {
			t.Errorf("%s rise delay diff = %.2f%%, want negative", name, dRise)
		}
		// Fall gains exceed rise gains (Table I trend).
		if !(dFall < dRise) {
			t.Errorf("%s: fall gain (%.2f%%) should exceed rise gain (%.2f%%)",
				name, dFall, dRise)
		}
	}

	// INV transition power ~parity (paper +0.2..0.3%); BUF clearly lower.
	transE := func(c *Cell) float64 {
		s, l := at(c)
		return c.Arc("I").EnergyRise.Lookup(s, l) + c.Arc("I").EnergyFall.Lookup(s, l)
	}
	for _, name := range []string{"INVD1", "INVD2", "INVD4"} {
		d := diff(name, transE)
		if d < -0.5 || d > 1.5 {
			t.Errorf("%s transition power diff = %.2f%%, want ~parity", name, d)
		}
	}
	prev := 0.0
	for _, name := range []string{"BUFD1", "BUFD2", "BUFD4"} {
		d := diff(name, transE)
		if d >= -2 {
			t.Errorf("%s transition power diff = %.2f%%, want clearly negative", name, d)
		}
		if d > prev {
			t.Errorf("%s transition power gain should grow with drive (%.2f > %.2f)",
				name, d, prev)
		}
		prev = d
	}
}

func TestFuncEval(t *testing.T) {
	cases := []struct {
		fn   Func
		in   []bool
		want bool
	}{
		{FnINV, []bool{true}, false},
		{FnBUF, []bool{true}, true},
		{FnNAND2, []bool{true, true}, false},
		{FnNAND2, []bool{true, false}, true},
		{FnNOR2, []bool{false, false}, true},
		{FnNOR2, []bool{true, false}, false},
		{FnAND2, []bool{true, true}, true},
		{FnOR2, []bool{false, true}, true},
		{FnAOI21, []bool{true, true, false}, false},
		{FnAOI21, []bool{true, false, false}, true},
		{FnAOI21, []bool{false, false, true}, false},
		{FnOAI21, []bool{false, false, true}, true},
		{FnOAI21, []bool{true, false, true}, false},
		{FnAOI22, []bool{true, true, false, false}, false},
		{FnAOI22, []bool{true, false, false, true}, true},
		{FnOAI22, []bool{true, false, false, true}, false},
		{FnOAI22, []bool{false, false, true, true}, true},
		{FnMUX2, []bool{true, false, false}, true},
		{FnMUX2, []bool{true, false, true}, false},
		{FnMUX2, []bool{false, true, true}, true},
	}
	for _, c := range cases {
		if got := c.fn.Eval(c.in); got != c.want {
			t.Errorf("%v.Eval(%v) = %v, want %v", c.fn, c.in, got, c.want)
		}
	}
}

func TestFuncEvalPanicsOnSequential(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval on DFF should panic")
		}
	}()
	FnDFF.Eval([]bool{true, false})
}

func TestPinSides(t *testing.T) {
	ffet, cfet := libs(t)
	for _, c := range ffet.Cells() {
		if !c.Out.DualSided {
			t.Errorf("FFET %s output pin must be dual-sided (Drain Merge)", c.Name)
		}
		for _, p := range c.Inputs {
			if !p.DualSided {
				t.Errorf("FFET %s input %s must be dual-side capable", c.Name, p.Name)
			}
		}
	}
	for _, c := range cfet.Cells() {
		if c.Out.DualSided {
			t.Errorf("CFET %s output pin must be frontside-only", c.Name)
		}
	}
}

func TestSequentialCells(t *testing.T) {
	ffet, cfet := libs(t)
	for _, lib := range []*Library{ffet, cfet} {
		dff := lib.MustCell("DFFD1")
		if !dff.IsSeq() || dff.Seq == nil {
			t.Fatalf("%s DFFD1 must be sequential", lib.Arch)
		}
		if dff.Seq.ClockPin != "CP" || dff.Seq.DataPin != "D" {
			t.Errorf("DFF pins = %s/%s", dff.Seq.ClockPin, dff.Seq.DataPin)
		}
		if dff.Seq.SetupPs <= 0 {
			t.Errorf("setup = %v", dff.Seq.SetupPs)
		}
		if q := dff.Seq.ClkQWorst(20, 1); q <= 0 || q > 100 {
			t.Errorf("clk-q = %v ps implausible", q)
		}
	}
	// FFET DFF must be faster than CFET DFF (fewer internal supervias).
	fq := ffet.MustCell("DFFD1").Seq.ClkQWorst(20, 1)
	cq := cfet.MustCell("DFFD1").Seq.ClkQWorst(20, 1)
	if fq >= cq {
		t.Errorf("FFET clk-q (%.2f) must beat CFET (%.2f)", fq, cq)
	}
}

func TestLibraryLookups(t *testing.T) {
	ffet, _ := libs(t)
	if got := len(ffet.ByBase("INV")); got != 4 {
		t.Errorf("INV drives = %d, want 4", got)
	}
	if c := ffet.Smallest("INV"); c == nil || c.Drive != 1 {
		t.Errorf("Smallest INV = %+v", c)
	}
	if c := ffet.PickDrive("INV", 3); c == nil || c.Drive != 4 {
		t.Errorf("PickDrive(INV,3) = %+v, want D4", c)
	}
	if c := ffet.PickDrive("INV", 100); c == nil || c.Drive != 8 {
		t.Errorf("PickDrive(INV,100) = %+v, want D8 fallback", c)
	}
	if c := ffet.PickDrive("NOPE", 1); c != nil {
		t.Errorf("PickDrive on unknown base = %+v, want nil", c)
	}
	inv := ffet.MustCell("INVD1")
	if _, ok := inv.InputPin("I"); !ok {
		t.Error("INVD1 missing pin I")
	}
	if _, ok := inv.InputPin("ZZ"); ok {
		t.Error("INVD1 should not have pin ZZ")
	}
	if cap := inv.InputCap("I"); cap <= 0 {
		t.Errorf("INVD1 input cap = %v", cap)
	}
}

func TestArcsExistForAllInputs(t *testing.T) {
	ffet, cfet := libs(t)
	for _, lib := range []*Library{ffet, cfet} {
		for _, c := range lib.Cells() {
			if c.IsSeq() {
				continue
			}
			for _, p := range c.Inputs {
				arc := c.Arc(p.Name)
				if arc == nil {
					t.Errorf("%s %s: missing arc from %s", lib.Arch, c.Name, p.Name)
					continue
				}
				if arc.From != p.Name || arc.To != c.Out.Name {
					t.Errorf("%s %s arc endpoints %s->%s", lib.Arch, c.Name, arc.From, arc.To)
				}
				if arc.DelayRise.Lookup(20, 1) <= 0 {
					t.Errorf("%s %s: non-positive delay", lib.Arch, c.Name)
				}
			}
		}
	}
}

// Property: delay tables are monotone non-decreasing in load for every arc
// in both libraries.
func TestDelayMonotoneInLoad(t *testing.T) {
	ffet, cfet := libs(t)
	for _, lib := range []*Library{ffet, cfet} {
		for _, c := range lib.Cells() {
			if c.IsSeq() {
				continue
			}
			for _, p := range c.Inputs {
				arc := c.Arc(p.Name)
				prop := func(l1Raw, l2Raw uint16) bool {
					l1 := float64(l1Raw%800)/100 + 0.1
					l2 := float64(l2Raw%800)/100 + 0.1
					if l1 > l2 {
						l1, l2 = l2, l1
					}
					return arc.DelayFall.Lookup(20, l1) <= arc.DelayFall.Lookup(20, l2)+1e-9 &&
						arc.DelayRise.Lookup(20, l1) <= arc.DelayRise.Lookup(20, l2)+1e-9
				}
				if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
					t.Errorf("%s %s arc %s: %v", lib.Arch, c.Name, p.Name, err)
				}
			}
		}
	}
}

// Property: larger drives are faster at the same absolute load.
func TestDriveStrengthOrdering(t *testing.T) {
	ffet, _ := libs(t)
	for _, base := range []string{"INV", "BUF"} {
		cs := ffet.ByBase(base)
		for i := 1; i < len(cs); i++ {
			lo, hi := cs[i-1], cs[i]
			load := 4.0
			dLo := lo.Arc("I").DelayFall.Lookup(20, load)
			dHi := hi.Arc("I").DelayFall.Lookup(20, load)
			if dHi >= dLo {
				t.Errorf("%s: D%d (%.2fps) not faster than D%d (%.2fps) at %v fF",
					base, hi.Drive, dHi, lo.Drive, dLo, load)
			}
		}
	}
}

func TestFO4Plausibility(t *testing.T) {
	// A 5 nm-class inverter FO4 should land in single-digit to low-teens ps.
	ffet, _ := libs(t)
	inv := ffet.MustCell("INVD1")
	fo4 := inv.Arc("I").DelayFall.Lookup(10, 4*inv.InputCap("I"))
	if fo4 < 2 || fo4 > 25 {
		t.Errorf("FO4 = %.2f ps outside plausible band [2,25]", fo4)
	}
}

func TestWriteLiberty(t *testing.T) {
	ffet, _ := libs(t)
	var buf strings.Builder
	if err := WriteLiberty(&buf, ffet); err != nil {
		t.Fatalf("WriteLiberty: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"library (FFET_5nm_3.5T)",
		"cell (INVD1)",
		"cell (DFFD1)",
		"related_pin : \"I\"",
		"timing_sense : negative_unate",
		"clocked_on : \"CP\"",
		"cell_rise (tpl_5x5)",
		"internal_power ()",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("liberty output missing %q", want)
		}
	}
	// Every cell appears exactly once.
	for _, c := range ffet.Cells() {
		if n := strings.Count(text, "cell ("+c.Name+")"); n != 1 {
			t.Errorf("cell %s appears %d times", c.Name, n)
		}
	}
}
