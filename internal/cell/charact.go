package cell

import (
	"math"

	"repro/internal/liberty"
	"repro/internal/tech"
)

// Analytic switched-RC characterization.
//
// Each cell is modeled as one or two RC stages. Architecture differences
// enter through structural parasitics:
//
//   - CFET: the bottom-tier pFET must reach the frontside M0 through
//     supervias, adding series resistance on the output stage and extra
//     capacitance on internal nets; the taller 4T cell adds intra-cell
//     wire capacitance.
//   - FFET: the symmetric cell removes all supervias except the Drain
//     Merge; the output pin presents short M0 stubs on *both* sides
//     (dual-sided pin), so the output-node capacitance is close to the
//     CFET's, while internal nets (which need no dual-sided pin) are much
//     lighter. This reproduces the paper's Table I trends: INV transition
//     power ≈ parity (slightly above), BUF transition power clearly lower,
//     timing better across the board with fall edges gaining most.
//
// Units: kΩ, fF, ps (kΩ·fF = ps), fJ, V.
const (
	// Drive-1 pull-down resistance of a two-fin stage.
	r1Fall = 8.0 // kΩ
	// Pull-up is weaker by the p/n mobility ratio.
	riseRatio = 1.15

	// Input gate capacitance per unit drive per pin.
	cinPerDrive = 0.22 // fF

	// Output diffusion parasitic per unit drive.
	cparPerDrive = 0.080 // fF

	// Fixed output-node extras.
	cparStubFFET = 0.104 // dual-sided M0 stubs + Drain Merge
	cparStubCFET = 0.097 // single frontside stub + supervia landing

	// CFET supervia series resistance at drive 1 (scales ~d^-0.55: bigger
	// cells use more parallel supervia cuts, but sublinearly).
	rsvFallCFET = 0.95 // kΩ, pull-down path through the shared drain stack
	rsvRiseCFET = 0.30 // kΩ, pull-up path
	rsvExponent = -0.55

	// Internal-net capacitance of two-stage cells.
	cintBase = 0.06 // fF, both archs
	// CFET internal nets carry a supervia between tiers whose cut count
	// (hence capacitance) scales with the second-stage drive.
	csvIntCFET = 0.06 // fF per unit of stage-2 drive

	// Intra-cell wiring capacitance per track of cell height (the 4T CFET
	// cell is taller than the 3.5T FFET cell).
	cHeightPerTrack = 0.012 // fF per track

	// Slew sensitivity of delay and output slew.
	kSlewDelay = 0.08
	kSlewSlew  = 0.08
	slewGain   = 2.2 // output slew = slewGain * R * C

	// Energy model.
	shortCircuitFJ = 0.0025 // fJ per ps of input slew per unit drive

	// Leakage: intrinsic-device quantity, identical across archs.
	leakPerDriveNW = 0.40 // nW per unit drive per stage-equivalent

	// Flip-flop internals.
	ffInternalCapFFET = 0.55 // fF equivalent internal switched cap
	ffInternalCapCFET = 0.95 // extra supervias on master/slave nets
	ffClockPinCap     = 0.30 // fF
)

// charSlews and the load grid span the operating range seen in P&R.
var charSlews = []float64{5, 10, 20, 40, 80} // ps

func charLoads(drive int) []float64 {
	base := []float64{0.25, 0.5, 1, 2, 4}
	out := make([]float64, len(base))
	for i, b := range base {
		out[i] = b * float64(drive)
	}
	return out
}

// inputCapFF returns a pin's input capacitance. MUX select and flip-flop
// data pins land on first-stage devices sized below the output drive.
func inputCapFF(tpl template, pin string, drive int) float64 {
	switch tpl.fn {
	case FnDFF, FnDFFRS:
		if pin == "CP" {
			return ffClockPinCap
		}
		return 0.9 * cinPerDrive // input stage of the FF, drive-independent
	case FnMUX2:
		if pin == "S" {
			return cinPerDrive * float64(drive) * 0.8
		}
		return cinPerDrive * float64(drive) * 0.6
	case FnBUF:
		return cinPerDrive * float64(stage1Drive(drive))
	case FnAND2, FnOR2:
		return cinPerDrive * float64(drive)
	default:
		return cinPerDrive * float64(drive)
	}
}

// stage1Drive is the first-stage size of two-stage cells.
func stage1Drive(drive int) int {
	d := drive / 2
	if d < 1 {
		d = 1
	}
	return d
}

// archParasitics bundles the architecture-dependent stage parasitics.
type archParasitics struct {
	rsvFall, rsvRise float64 // series supervia R at drive d (already scaled)
	cparFixed        float64 // fixed output-node cap
	cHeight          float64 // intra-cell wiring cap from cell height
	csvInt           float64 // internal-net supervia cap coefficient
}

func parasitics(arch tech.Arch, stack *tech.Stack, drive int) archParasitics {
	scale := math.Pow(float64(drive), rsvExponent)
	h := stack.HeightTracks * cHeightPerTrack
	if arch == tech.CFET {
		return archParasitics{
			rsvFall:   rsvFallCFET * scale,
			rsvRise:   rsvRiseCFET * scale,
			cparFixed: cparStubCFET,
			cHeight:   h,
			csvInt:    csvIntCFET,
		}
	}
	return archParasitics{
		cparFixed: cparStubFFET,
		cHeight:   h,
	}
}

// stageModel is one switched-RC stage.
type stageModel struct {
	rFall, rRise float64 // effective drive resistance per edge, kΩ
	cpar         float64 // output-node parasitic, fF
}

// newStage builds a stage for the given drive with per-input stack factors.
func newStage(drive int, fFall, fRise float64, p archParasitics, nInputs int) stageModel {
	d := float64(drive)
	sizeFactor := 1 + 0.15*float64(nInputs-1)
	return stageModel{
		rFall: r1Fall/d*fFall + p.rsvFall,
		rRise: r1Fall*riseRatio/d*fRise + p.rsvRise,
		cpar:  cparPerDrive*d*sizeFactor + p.cparFixed + p.cHeight,
	}
}

const ln2 = 0.6931471805599453

// delay returns the stage propagation delay for one output edge.
func (st stageModel) delay(r float64, slewIn, load float64) float64 {
	return ln2*r*(st.cpar+load) + kSlewDelay*slewIn
}

// outSlew returns the stage output transition time for one edge.
func (st stageModel) outSlew(r float64, slewIn, load float64) float64 {
	return slewGain*r*(st.cpar+load) + kSlewSlew*slewIn
}

// characterize fills in the Arcs / Seq tables of a built cell.
func characterize(c *Cell, tpl template, stack *tech.Stack) {
	if tpl.fn.Sequential() {
		characterizeFF(c, tpl, stack)
		return
	}
	p := parasitics(stack.Arch, stack, c.Drive)
	loads := charLoads(c.Drive)
	nIn := len(tpl.inputs)

	for _, pf := range tpl.inputs {
		var arc *liberty.Arc
		if tpl.stages == 1 {
			arc = singleStageArc(c, pf, p, loads, nIn)
		} else {
			arc = twoStageArc(c, tpl, pf, p, stack, loads, nIn)
		}
		arc.From = pf.name
		arc.To = c.Out.Name
		arc.Unate = unateness(tpl.fn, pf.name)
		c.Arcs[pf.name] = arc
	}
	c.LeakageNW = leakPerDriveNW * float64(c.Drive) * float64(tpl.stages) *
		(1 + 0.3*float64(nIn-1))
}

// unateness assigns arc sense from the cell function.
func unateness(fn Func, pin string) liberty.Unateness {
	switch fn {
	case FnINV, FnNAND2, FnNOR2, FnAOI21, FnOAI21, FnAOI22, FnOAI22:
		return liberty.NegativeUnate
	case FnBUF, FnAND2, FnOR2:
		return liberty.PositiveUnate
	case FnMUX2:
		if pin == "S" {
			return liberty.NonUnate
		}
		return liberty.PositiveUnate
	default:
		return liberty.NonUnate
	}
}

func singleStageArc(c *Cell, pf pinFactors, p archParasitics, loads []float64, nIn int) *liberty.Arc {
	st := newStage(c.Drive, pf.fall, pf.rise, p, nIn)
	return &liberty.Arc{
		DelayRise: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return st.delay(st.rRise, s, l)
		}),
		DelayFall: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return st.delay(st.rFall, s, l)
		}),
		SlewRise: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return st.outSlew(st.rRise, s, l)
		}),
		SlewFall: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return st.outSlew(st.rFall, s, l)
		}),
		EnergyRise: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return transitionEnergy(st.cpar, 0, s, c.Drive, c.Arch)
		}),
		EnergyFall: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return transitionEnergy(st.cpar, 0, s, c.Drive, c.Arch)
		}),
	}
}

func twoStageArc(c *Cell, tpl template, pf pinFactors, p archParasitics, stack *tech.Stack, loads []float64, nIn int) *liberty.Arc {
	d1 := stage1Drive(c.Drive)
	st1 := newStage(d1, pf.fall, pf.rise, p, nIn)
	st2 := newStage(c.Drive, 1, 1, p, 1)
	// Internal net: base + stage-2 input gate + (CFET) supervia cap.
	cint := cintBase + cinPerDrive*float64(c.Drive) +
		p.csvInt*float64(c.Drive)

	// For a positive-unate two-stage cell, output rise = stage1 fall then
	// stage2 rise; output fall = stage1 rise then stage2 fall.
	mk := func(r1, r2 float64, slewFn bool) *liberty.Table {
		return liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			d1v := st1.delay(r1, s, cint)
			s1 := st1.outSlew(r1, s, cint)
			if slewFn {
				return st2.outSlew(r2, s1, l)
			}
			return d1v + st2.delay(r2, s1, l)
		})
	}
	energy := func(s float64) float64 {
		// Internal energy: stage-1 output node (the internal net) plus the
		// stage-2 output parasitic switch together on each transition.
		return transitionEnergy(st2.cpar, st1.cpar+cint, s, c.Drive, c.Arch)
	}
	return &liberty.Arc{
		DelayRise: mk(st1.rFall, st2.rRise, false),
		DelayFall: mk(st1.rRise, st2.rFall, false),
		SlewRise:  mk(st1.rFall, st2.rRise, true),
		SlewFall:  mk(st1.rRise, st2.rFall, true),
		EnergyRise: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return energy(s)
		}),
		EnergyFall: liberty.NewTable(charSlews, loads, func(s, l float64) float64 {
			return energy(s)
		}),
	}
}

// transitionEnergy is the internal energy of one output transition: the
// cell's own switched capacitance at VDD² plus input-slew-dependent
// short-circuit current. Load energy is accounted separately by the power
// analyzer from extracted net capacitance.
func transitionEnergy(cpar, cInternalNets, slew float64, drive int, arch tech.Arch) float64 {
	vdd := 0.7
	cap := cpar + cInternalNets
	return cap*vdd*vdd + shortCircuitFJ*slew*float64(drive)
}

// characterizeFF builds the sequential spec for DFF / DFFRS.
func characterizeFF(c *Cell, tpl template, stack *tech.Stack) {
	p := parasitics(stack.Arch, stack, 1)
	loads := charLoads(c.Drive)

	cInt := ffInternalCapFFET
	if stack.Arch == tech.CFET {
		cInt = ffInternalCapCFET
	}
	// Internal master/slave stages at drive 1, output stage at cell drive.
	stInt := newStage(1, 1.2, 1.2, p, 2)
	stOut := newStage(c.Drive, 1, 1, p, 1)

	clkq := func(rOut float64) func(s, l float64) float64 {
		return func(s, l float64) float64 {
			// Clock edge -> master/slave internal transfer (2 internal
			// stages driving cInt each) -> output stage driving the load.
			internal := 2 * stInt.delay(stInt.rFall, s*0.5, cInt/2)
			return internal + stOut.delay(rOut, stInt.outSlew(stInt.rFall, s*0.5, cInt/2), l)
		}
	}
	vdd := stack.VDD
	c.Seq = &liberty.SeqSpec{
		ClockPin: "CP",
		DataPin:  "D",
		SetupPs:  1.6 * stInt.delay(stInt.rFall, 10, cInt/2),
		HoldPs:   2.0,
		ClkQRise: liberty.NewTable(charSlews, loads, clkq(stOut.rRise)),
		ClkQFall: liberty.NewTable(charSlews, loads, clkq(stOut.rFall)),
		// Clock pin energy: internal clock inverters + (CFET) supervias.
		ClockEnergy: (cInt*0.5 + ffClockPinCap) * vdd * vdd,
	}
	// Q output arc energy is folded into the clkq path; model D->Q energy
	// as one internal transfer.
	c.LeakageNW = leakPerDriveNW * 6 // ~6 stage-equivalents in a DFF
	if tpl.fn == FnDFFRS {
		c.LeakageNW = leakPerDriveNW * 7
	}
}
