package cell

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/tech"
)

// pinFactors are the per-input effective drive-resistance multipliers from
// transistor stacking: a 2-high series stack slows the corresponding edge.
// fall applies to output-fall (pull-down network), rise to output-rise.
type pinFactors struct {
	name string
	fall float64
	rise float64
}

// template describes one base cell: footprint per architecture and drive,
// input pins with stack factors, and stage structure for characterization.
type template struct {
	base   string
	fn     Func
	drives []int
	// widthCPP[arch][drive] footprint width. Keys are drive strengths.
	widthCFET map[int]int
	widthFFET map[int]int
	inputs    []pinFactors
	stages    int // 1 = single stage, 2 = two-stage (BUF/AND2/OR2/MUX2)
	// splitGate marks cells whose FFET variant exploits the Split Gate
	// (MUX2, DFF, DFFRS): area saved and internal parasitics reduced.
	splitGate bool
	// extraDrainMerge marks FFET cells paying an extra Drain Merge
	// (AOI22/OAI22), costing footprint (paper Section II.B).
	extraDrainMerge bool
}

// Canonical library templates. Footprints are chosen so the Fig. 4 area
// comparison reproduces: equal widths give the pure 3.5T/4T height gain of
// 12.5%; Split Gate cells save CPPs in FFET; AOI22/OAI22 pay one extra CPP
// in FFET for the second Drain Merge.
var templates = []template{
	{
		base: "INV", fn: FnINV, drives: []int{1, 2, 4, 8},
		widthCFET: map[int]int{1: 2, 2: 3, 4: 5, 8: 9},
		widthFFET: map[int]int{1: 2, 2: 3, 4: 5, 8: 9},
		inputs:    []pinFactors{{"I", 1, 1}},
		stages:    1,
	},
	{
		base: "BUF", fn: FnBUF, drives: []int{1, 2, 4, 8},
		widthCFET: map[int]int{1: 3, 2: 4, 4: 6, 8: 10},
		widthFFET: map[int]int{1: 3, 2: 4, 4: 6, 8: 10},
		inputs:    []pinFactors{{"I", 1, 1}},
		stages:    2,
	},
	{
		base: "NAND2", fn: FnNAND2, drives: []int{1, 2},
		widthCFET: map[int]int{1: 3, 2: 5},
		widthFFET: map[int]int{1: 3, 2: 5},
		inputs:    []pinFactors{{"A1", 1.45, 1.0}, {"A2", 1.52, 1.0}},
		stages:    1,
	},
	{
		base: "NOR2", fn: FnNOR2, drives: []int{1, 2},
		widthCFET: map[int]int{1: 3, 2: 5},
		widthFFET: map[int]int{1: 3, 2: 5},
		inputs:    []pinFactors{{"A1", 1.0, 1.45}, {"A2", 1.0, 1.52}},
		stages:    1,
	},
	{
		base: "AND2", fn: FnAND2, drives: []int{1, 2},
		widthCFET: map[int]int{1: 4, 2: 6},
		widthFFET: map[int]int{1: 4, 2: 6},
		inputs:    []pinFactors{{"A1", 1.45, 1.0}, {"A2", 1.52, 1.0}},
		stages:    2,
	},
	{
		base: "OR2", fn: FnOR2, drives: []int{1, 2},
		widthCFET: map[int]int{1: 4, 2: 6},
		widthFFET: map[int]int{1: 4, 2: 6},
		inputs:    []pinFactors{{"A1", 1.0, 1.45}, {"A2", 1.0, 1.52}},
		stages:    2,
	},
	{
		base: "AOI21", fn: FnAOI21, drives: []int{1, 2},
		widthCFET: map[int]int{1: 4, 2: 7},
		widthFFET: map[int]int{1: 4, 2: 7},
		inputs: []pinFactors{
			{"A1", 1.45, 1.52}, {"A2", 1.52, 1.52}, {"B", 1.0, 1.52},
		},
		stages: 1,
	},
	{
		base: "OAI21", fn: FnOAI21, drives: []int{1, 2},
		widthCFET: map[int]int{1: 4, 2: 7},
		widthFFET: map[int]int{1: 4, 2: 7},
		inputs: []pinFactors{
			{"A1", 1.52, 1.45}, {"A2", 1.52, 1.52}, {"B", 1.52, 1.0},
		},
		stages: 1,
	},
	{
		base: "AOI22", fn: FnAOI22, drives: []int{1, 2},
		widthCFET: map[int]int{1: 5, 2: 9},
		widthFFET: map[int]int{1: 6, 2: 10},
		inputs: []pinFactors{
			{"A1", 1.45, 1.55}, {"A2", 1.52, 1.55},
			{"B1", 1.45, 1.60}, {"B2", 1.52, 1.60},
		},
		stages:          1,
		extraDrainMerge: true,
	},
	{
		base: "OAI22", fn: FnOAI22, drives: []int{1, 2},
		widthCFET: map[int]int{1: 5, 2: 9},
		widthFFET: map[int]int{1: 6, 2: 10},
		inputs: []pinFactors{
			{"A1", 1.55, 1.45}, {"A2", 1.55, 1.52},
			{"B1", 1.60, 1.45}, {"B2", 1.60, 1.52},
		},
		stages:          1,
		extraDrainMerge: true,
	},
	{
		base: "MUX2", fn: FnMUX2, drives: []int{1, 2},
		widthCFET: map[int]int{1: 8, 2: 10},
		widthFFET: map[int]int{1: 6, 2: 8},
		inputs: []pinFactors{
			{"I0", 1.30, 1.30}, {"I1", 1.30, 1.30}, {"S", 1.55, 1.55},
		},
		stages:    2,
		splitGate: true,
	},
	{
		base: "DFF", fn: FnDFF, drives: []int{1},
		widthCFET: map[int]int{1: 12},
		widthFFET: map[int]int{1: 9},
		inputs:    []pinFactors{{"D", 1, 1}, {"CP", 1, 1}},
		stages:    1,
		splitGate: true,
	},
	{
		base: "DFFRS", fn: FnDFFRS, drives: []int{1},
		widthCFET: map[int]int{1: 14},
		widthFFET: map[int]int{1: 11},
		inputs: []pinFactors{
			{"D", 1, 1}, {"CP", 1, 1}, {"RN", 1, 1}, {"SN", 1, 1},
		},
		stages:    1,
		splitGate: true,
	},
}

// OutPinName is the output pin name convention: inverting cells use ZN,
// non-inverting use Z, flip-flops use Q.
func outPinName(fn Func) string {
	switch fn {
	case FnINV, FnNAND2, FnNOR2, FnAOI21, FnOAI21, FnAOI22, FnOAI22:
		return "ZN"
	case FnDFF, FnDFFRS:
		return "Q"
	default:
		return "Z"
	}
}

// buildCell assembles the physical/logical (un-characterized) cell.
func buildCell(tpl template, drive int, stack *tech.Stack) *Cell {
	width := tpl.widthFFET[drive]
	if stack.Arch == tech.CFET {
		width = tpl.widthCFET[drive]
	}
	c := &Cell{
		Name:     fmt.Sprintf("%sD%d", tpl.base, drive),
		Base:     tpl.base,
		Drive:    drive,
		Fn:       tpl.fn,
		Arch:     stack.Arch,
		WidthCPP: width,
		Arcs:     make(map[string]*liberty.Arc),
	}
	dual := stack.Arch == tech.FFET
	n := len(tpl.inputs)
	for i, pf := range tpl.inputs {
		clock := tpl.fn.Sequential() && pf.name == "CP"
		c.Inputs = append(c.Inputs, Pin{
			Name:      pf.name,
			Dir:       Input,
			CapFF:     inputCapFF(tpl, pf.name, drive),
			Clock:     clock,
			OffsetCPP: float64(width) * float64(i+1) / float64(n+1),
			DualSided: dual,
		})
	}
	c.Out = Pin{
		Name:      outPinName(tpl.fn),
		Dir:       Output,
		OffsetCPP: float64(width) * 0.5,
		DualSided: dual, // Drain Merge makes every FFET output dual-sided
	}
	return c
}
