// Package cell models standard cells and generates the two libraries the
// paper evaluates: the 3.5T FFET library and the 4T CFET library (Fig. 4,
// 28 cells). Cells carry physical footprints (CPP width × track height),
// dual-side pin capability, logic functions, and NLDM characterization
// produced by an analytic switched-RC model (see charact.go).
package cell

import (
	"fmt"
	"sort"

	"repro/internal/liberty"
	"repro/internal/tech"
)

// Func identifies the logic function of a cell.
type Func int

// Logic functions implemented by the 28-cell library.
const (
	FnINV Func = iota
	FnBUF
	FnNAND2
	FnNOR2
	FnAND2
	FnOR2
	FnAOI21
	FnOAI21
	FnAOI22
	FnOAI22
	FnMUX2
	FnDFF
	FnDFFRS
)

var funcNames = map[Func]string{
	FnINV: "INV", FnBUF: "BUF", FnNAND2: "NAND2", FnNOR2: "NOR2",
	FnAND2: "AND2", FnOR2: "OR2", FnAOI21: "AOI21", FnOAI21: "OAI21",
	FnAOI22: "AOI22", FnOAI22: "OAI22", FnMUX2: "MUX2", FnDFF: "DFF",
	FnDFFRS: "DFFRS",
}

func (f Func) String() string { return funcNames[f] }

// Sequential reports whether the function holds state.
func (f Func) Sequential() bool { return f == FnDFF || f == FnDFFRS }

// Eval computes the combinational function over inputs given in the cell's
// canonical pin order. It panics for sequential functions or wrong arity.
func (f Func) Eval(in []bool) bool {
	need := map[Func]int{
		FnINV: 1, FnBUF: 1, FnNAND2: 2, FnNOR2: 2, FnAND2: 2, FnOR2: 2,
		FnAOI21: 3, FnOAI21: 3, FnAOI22: 4, FnOAI22: 4, FnMUX2: 3,
	}[f]
	if f.Sequential() {
		panic("cell: Eval on sequential function " + f.String())
	}
	if len(in) != need {
		panic(fmt.Sprintf("cell: %v wants %d inputs, got %d", f, need, len(in)))
	}
	switch f {
	case FnINV:
		return !in[0]
	case FnBUF:
		return in[0]
	case FnNAND2:
		return !(in[0] && in[1])
	case FnNOR2:
		return !(in[0] || in[1])
	case FnAND2:
		return in[0] && in[1]
	case FnOR2:
		return in[0] || in[1]
	case FnAOI21:
		return !((in[0] && in[1]) || in[2])
	case FnOAI21:
		return !((in[0] || in[1]) && in[2])
	case FnAOI22:
		return !((in[0] && in[1]) || (in[2] && in[3]))
	case FnOAI22:
		return !((in[0] || in[1]) && (in[2] || in[3]))
	case FnMUX2:
		if in[2] {
			return in[1]
		}
		return in[0]
	}
	panic("cell: unhandled function")
}

// PinDir distinguishes inputs from outputs.
type PinDir int

// Pin directions.
const (
	Input PinDir = iota
	Output
)

// Pin is one logical pin of a cell.
type Pin struct {
	Name      string
	Dir       PinDir
	CapFF     float64 // input capacitance (0 for outputs)
	Clock     bool    // true for CP on flip-flops
	OffsetCPP float64 // pin location along the cell width, in CPP units
	// DualSided reports whether the pin can physically sit on either
	// wafer side. In the FFET library every pin is dual-side capable
	// (output pins are made dual-sided by the Drain Merge; input pins
	// can be redistributed per the paper's Section III.A). CFET pins
	// are frontside-only.
	DualSided bool
}

// Cell is one characterized standard cell.
type Cell struct {
	Name     string // e.g. "NAND2D2"
	Base     string // e.g. "NAND2"
	Drive    int    // 1, 2, 4, 8
	Fn       Func
	Arch     tech.Arch
	WidthCPP int // footprint width in CPP units

	Inputs []Pin // canonical order (matches Func.Eval)
	Out    Pin

	// Arcs maps input pin name -> combinational timing arc to Out.
	Arcs map[string]*liberty.Arc
	// Seq is set for flip-flops.
	Seq *liberty.SeqSpec

	LeakageNW float64 // identical across archs (same intrinsic devices)

	// Interned pin tables, computed once per cell by initPinTables:
	// pinIdx maps a pin name to its canonical index (inputs in order,
	// then the output), and sortedPins lists the canonical indices in
	// lexicographic pin-name order. Accessors fall back to on-the-fly
	// scans so hand-built cells in tests keep working.
	pinIdx     map[string]int
	sortedPins []int
}

// NumPins returns the number of logical pins (inputs plus the output).
func (c *Cell) NumPins() int { return len(c.Inputs) + 1 }

// OutIndex returns the canonical pin index of the output pin.
func (c *Cell) OutIndex() int { return len(c.Inputs) }

// PinName returns the name of the pin at a canonical index: Inputs in
// order, then Out.
func (c *Cell) PinName(idx int) string {
	if idx < len(c.Inputs) {
		return c.Inputs[idx].Name
	}
	return c.Out.Name
}

// PinIndex returns the canonical index of the named pin, or -1. The
// index is the dense per-cell half of the flow-wide packed pin identity
// (netlist.PinID); interned cells answer from a precomputed table.
func (c *Cell) PinIndex(name string) int {
	if c.pinIdx != nil {
		if i, ok := c.pinIdx[name]; ok {
			return i
		}
		return -1
	}
	for i, p := range c.Inputs {
		if p.Name == name {
			return i
		}
	}
	if name == c.Out.Name {
		return len(c.Inputs)
	}
	return -1
}

// PinOrderByName returns the canonical pin indices sorted by pin name —
// the iteration order netlist.AddInstance uses so that net creation
// order never depends on map iteration. Interned cells return the
// precomputed slice; callers must not mutate it.
func (c *Cell) PinOrderByName() []int {
	if c.sortedPins != nil {
		return c.sortedPins
	}
	order := make([]int, c.NumPins())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return c.PinName(order[a]) < c.PinName(order[b]) })
	return order
}

// initPinTables interns the pin-name tables. Called once per cell at
// library build time (never lazily: libraries are shared by concurrent
// flow runs, so post-publication mutation would be a data race).
func (c *Cell) initPinTables() {
	c.pinIdx = make(map[string]int, c.NumPins())
	for i, p := range c.Inputs {
		c.pinIdx[p.Name] = i
	}
	c.pinIdx[c.Out.Name] = len(c.Inputs)
	c.sortedPins = nil // force the generic path to compute, then intern
	c.sortedPins = c.PinOrderByName()
}

// IsSeq reports whether the cell is a flip-flop.
func (c *Cell) IsSeq() bool { return c.Seq != nil }

// WidthNm returns the cell width for a given stack.
func (c *Cell) WidthNm(s *tech.Stack) int64 { return int64(c.WidthCPP) * s.CPPNm }

// AreaNm2 returns the footprint area on a given stack.
func (c *Cell) AreaNm2(s *tech.Stack) int64 { return c.WidthNm(s) * s.CellHeightNm() }

// AreaUm2 returns the footprint area in µm².
func (c *Cell) AreaUm2(s *tech.Stack) float64 { return float64(c.AreaNm2(s)) / 1e6 }

// InputPin returns the named input pin.
func (c *Cell) InputPin(name string) (Pin, bool) {
	for _, p := range c.Inputs {
		if p.Name == name {
			return p, true
		}
	}
	return Pin{}, false
}

// InputCap returns the capacitance of the named input pin (0 if unknown).
func (c *Cell) InputCap(name string) float64 {
	p, ok := c.InputPin(name)
	if !ok {
		return 0
	}
	return p.CapFF
}

// TotalInputCap sums all input pin capacitances.
func (c *Cell) TotalInputCap() float64 {
	var sum float64
	for _, p := range c.Inputs {
		sum += p.CapFF
	}
	return sum
}

// DataInputs returns the non-clock input pins.
func (c *Cell) DataInputs() []Pin {
	var out []Pin
	for _, p := range c.Inputs {
		if !p.Clock {
			out = append(out, p)
		}
	}
	return out
}

// Arc returns the timing arc from the named input, or nil for clock pins
// (flip-flop clock timing lives in Seq).
func (c *Cell) Arc(input string) *liberty.Arc { return c.Arcs[input] }

// Library is a characterized standard-cell library for one architecture.
type Library struct {
	Name  string
	Arch  tech.Arch
	Stack *tech.Stack

	cells  map[string]*Cell
	order  []string           // deterministic listing order (Fig. 4 order)
	byBase map[string][]*Cell // base name -> cells sorted by drive
}

// NewLibrary generates and characterizes the full 28-cell library for the
// given stack.
func NewLibrary(stack *tech.Stack) *Library {
	lib := &Library{
		Name:   fmt.Sprintf("%s_5nm_%0.1fT", stack.Arch, stack.HeightTracks),
		Arch:   stack.Arch,
		Stack:  stack,
		cells:  make(map[string]*Cell),
		byBase: make(map[string][]*Cell),
	}
	for _, tpl := range templates {
		for _, d := range tpl.drives {
			c := buildCell(tpl, d, stack)
			characterize(c, tpl, stack)
			c.initPinTables()
			lib.cells[c.Name] = c
			lib.order = append(lib.order, c.Name)
			lib.byBase[c.Base] = append(lib.byBase[c.Base], c)
		}
	}
	for _, cs := range lib.byBase {
		sort.Slice(cs, func(i, j int) bool { return cs[i].Drive < cs[j].Drive })
	}
	return lib
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// MustCell returns the named cell and panics if absent.
func (l *Library) MustCell(name string) *Cell {
	c := l.cells[name]
	if c == nil {
		panic("cell: library " + l.Name + " has no cell " + name)
	}
	return c
}

// Cells returns all cells in the canonical Fig. 4 order.
func (l *Library) Cells() []*Cell {
	out := make([]*Cell, 0, len(l.order))
	for _, n := range l.order {
		out = append(out, l.cells[n])
	}
	return out
}

// CellNames returns the canonical cell name order.
func (l *Library) CellNames() []string { return append([]string(nil), l.order...) }

// ByBase returns the drive-sorted cells of one base function (e.g. "INV").
func (l *Library) ByBase(base string) []*Cell { return l.byBase[base] }

// Smallest returns the lowest-drive cell of a base function.
func (l *Library) Smallest(base string) *Cell {
	cs := l.byBase[base]
	if len(cs) == 0 {
		return nil
	}
	return cs[0]
}

// PickDrive returns the smallest cell of the base whose drive is >= want,
// falling back to the largest available drive.
func (l *Library) PickDrive(base string, want int) *Cell {
	cs := l.byBase[base]
	if len(cs) == 0 {
		return nil
	}
	for _, c := range cs {
		if c.Drive >= want {
			return c
		}
	}
	return cs[len(cs)-1]
}
