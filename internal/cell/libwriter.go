package cell

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/liberty"
)

// WriteLiberty emits the library in a Liberty-like text format: lu_table
// templates, per-cell area/leakage, pin capacitances, and the NLDM delay /
// transition / internal-power tables of every timing arc. The output is
// the characterization artifact a downstream STA user would consume.
func WriteLiberty(w io.Writer, lib *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", lib.Name)
	fmt.Fprintf(bw, "  technology (cmos);\n")
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  nom_voltage : %.2f;\n", lib.Stack.VDD)

	for _, c := range lib.Cells() {
		fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
		fmt.Fprintf(bw, "    area : %.4f;\n", c.AreaUm2(lib.Stack))
		fmt.Fprintf(bw, "    cell_leakage_power : %.4f;\n", c.LeakageNW)
		for _, p := range c.Inputs {
			fmt.Fprintf(bw, "    pin (%s) {\n      direction : input;\n", p.Name)
			fmt.Fprintf(bw, "      capacitance : %.4f;\n", p.CapFF)
			if p.Clock {
				fmt.Fprintf(bw, "      clock : true;\n")
			}
			fmt.Fprintf(bw, "    }\n")
		}
		fmt.Fprintf(bw, "    pin (%s) {\n      direction : output;\n", c.Out.Name)
		if c.IsSeq() {
			writeSeqArcs(bw, c)
		} else {
			writeCombArcs(bw, c)
		}
		fmt.Fprintf(bw, "    }\n")
		if c.IsSeq() {
			fmt.Fprintf(bw, "    ff (IQ) {\n      clocked_on : \"%s\";\n      next_state : \"%s\";\n    }\n",
				c.Seq.ClockPin, c.Seq.DataPin)
		}
		fmt.Fprintf(bw, "  }\n")
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func writeCombArcs(bw *bufio.Writer, c *Cell) {
	for _, p := range c.Inputs {
		arc := c.Arc(p.Name)
		if arc == nil {
			continue
		}
		fmt.Fprintf(bw, "      timing () {\n")
		fmt.Fprintf(bw, "        related_pin : \"%s\";\n", p.Name)
		fmt.Fprintf(bw, "        timing_sense : %s;\n", arc.Unate)
		writeTable(bw, "cell_rise", arc.DelayRise)
		writeTable(bw, "cell_fall", arc.DelayFall)
		writeTable(bw, "rise_transition", arc.SlewRise)
		writeTable(bw, "fall_transition", arc.SlewFall)
		fmt.Fprintf(bw, "      }\n")
		fmt.Fprintf(bw, "      internal_power () {\n")
		fmt.Fprintf(bw, "        related_pin : \"%s\";\n", p.Name)
		writeTable(bw, "rise_power", arc.EnergyRise)
		writeTable(bw, "fall_power", arc.EnergyFall)
		fmt.Fprintf(bw, "      }\n")
	}
}

func writeSeqArcs(bw *bufio.Writer, c *Cell) {
	fmt.Fprintf(bw, "      timing () {\n")
	fmt.Fprintf(bw, "        related_pin : \"%s\";\n", c.Seq.ClockPin)
	fmt.Fprintf(bw, "        timing_type : rising_edge;\n")
	writeTable(bw, "cell_rise", c.Seq.ClkQRise)
	writeTable(bw, "cell_fall", c.Seq.ClkQFall)
	fmt.Fprintf(bw, "      }\n")
	fmt.Fprintf(bw, "      /* setup %.2f ps, hold %.2f ps at %s */\n",
		c.Seq.SetupPs, c.Seq.HoldPs, c.Seq.DataPin)
}

// writeTable emits one lu_table group straight from the NLDM table.
func writeTable(bw *bufio.Writer, kind string, t *liberty.Table) {
	if t == nil {
		return
	}
	fmt.Fprintf(bw, "        %s (tpl_%dx%d) {\n", kind, len(t.Slews), len(t.Loads))
	fmt.Fprintf(bw, "          index_1 (\"%s\");\n", joinF(t.Slews))
	fmt.Fprintf(bw, "          index_2 (\"%s\");\n", joinF(t.Loads))
	fmt.Fprintf(bw, "          values ( \\\n")
	for i := range t.Slews {
		fmt.Fprintf(bw, "            \"")
		for j := range t.Loads {
			if j > 0 {
				fmt.Fprintf(bw, ", ")
			}
			fmt.Fprintf(bw, "%.4f", t.Values[i][j])
		}
		if i == len(t.Slews)-1 {
			fmt.Fprintf(bw, "\" );\n")
		} else {
			fmt.Fprintf(bw, "\", \\\n")
		}
	}
	fmt.Fprintf(bw, "        }\n")
}

func joinF(v []float64) string {
	out := ""
	for i, x := range v {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%g", x)
	}
	return out
}
