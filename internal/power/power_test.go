package power

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/extract"
	"repro/internal/netlist"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

func design(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("p", lib)
	nl.AddPort("clk", netlist.In)
	nl.AddPort("a", netlist.In)
	nl.MarkClock("clk")
	nl.MustAdd("i1", lib.MustCell("INVD4"), map[string]string{"I": "a", "ZN": "n1"})
	nl.MustAdd("ff", lib.MustCell("DFFD1"), map[string]string{"D": "n1", "CP": "clk", "Q": "q"})
	nl.MustAdd("i2", lib.MustCell("INVD1"), map[string]string{"I": "q", "ZN": "y"})
	return nl
}

func TestPowerScalesWithFrequency(t *testing.T) {
	nl := design(t)
	p1 := Analyze(nl, lib.Stack, nil, 1.0, DefaultOptions())
	p2 := Analyze(nl, lib.Stack, nil, 2.0, DefaultOptions())
	if !(p2.TotalUW > p1.TotalUW*1.8) {
		t.Errorf("power should ~double with frequency: %.3f vs %.3f", p1.TotalUW, p2.TotalUW)
	}
	// Leakage is frequency independent.
	if p1.LeakageUW != p2.LeakageUW {
		t.Error("leakage must not scale with frequency")
	}
	if p1.TotalUW != p1.SwitchingUW+p1.InternalUW+p1.ClockUW+p1.LeakageUW {
		t.Error("breakdown does not sum to total")
	}
}

func TestWireCapAddsSwitching(t *testing.T) {
	nl := design(t)
	base := Analyze(nl, lib.Stack, nil, 1.0, DefaultOptions())
	rc := make([]*extract.NetRC, len(nl.Nets))
	rc[nl.Net("n1").Seq] = &extract.NetRC{Name: "n1", TotalCapFF: 50}
	loaded := Analyze(nl, lib.Stack, rc, 1.0, DefaultOptions())
	if !(loaded.SwitchingUW > base.SwitchingUW) {
		t.Errorf("extracted wire cap must raise switching power (%.3f vs %.3f)",
			loaded.SwitchingUW, base.SwitchingUW)
	}
}

func TestClockPowerCounted(t *testing.T) {
	nl := design(t)
	p := Analyze(nl, lib.Stack, nil, 1.0, DefaultOptions())
	if p.ClockUW <= 0 {
		t.Error("flop clock power missing")
	}
	if p.EfficiencyGHzPerW() <= 0 {
		t.Error("efficiency must be positive")
	}
	var zero Result
	if zero.EfficiencyGHzPerW() != 0 {
		t.Error("zero power must not divide")
	}
}
