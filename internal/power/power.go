// Package power computes block power at the achieved frequency: net
// switching power from extracted capacitance, cell-internal power from the
// characterized transition energies, clock tree power, and leakage. The
// paper's power-frequency trade-off figures (Figs. 9, 11, 13) come from
// this analysis.
package power

import (
	"repro/internal/extract"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Options sets the activity model.
type Options struct {
	// Activity is the average data toggle rate per cycle.
	Activity float64
	// ClockActivity is the clock toggle factor (full swing every cycle).
	ClockActivity float64
	// InputSlewPs picks the internal-energy table operating point.
	InputSlewPs float64
}

// DefaultOptions returns flow defaults (α = 0.15, matching typical RISC-V
// datapath activity).
func DefaultOptions() Options {
	return Options{Activity: 0.15, ClockActivity: 1.0, InputSlewPs: 20}
}

// Result is the power breakdown in µW.
type Result struct {
	TotalUW     float64
	SwitchingUW float64 // net capacitance charging
	InternalUW  float64 // cell self-energy (incl. short-circuit)
	ClockUW     float64 // clock net + clock pin power
	LeakageUW   float64
	FreqGHz     float64
}

// EfficiencyGHzPerW returns the paper's Fig. 13 metric.
func (r *Result) EfficiencyGHzPerW() float64 {
	if r.TotalUW <= 0 {
		return 0
	}
	return r.FreqGHz / (r.TotalUW * 1e-6)
}

// Analyze computes power for the design at the given frequency.
// netRC supplies extracted capacitance indexed by Net.Seq (the flow's
// dense extraction database); nets with no entry (nil, or a short/nil
// slice) use pin caps.
func Analyze(nl *netlist.Netlist, stack *tech.Stack, netRC []*extract.NetRC, freqGHz float64, opt Options) *Result {
	if opt.Activity <= 0 {
		opt = DefaultOptions()
	}
	res := &Result{FreqGHz: freqGHz}
	vdd2 := stack.VDD * stack.VDD

	capOf := func(n *netlist.Net) float64 {
		if n.Seq < len(netRC) && netRC[n.Seq] != nil {
			return netRC[n.Seq].TotalCapFF
		}
		var c float64
		for _, s := range n.Sinks {
			if !s.IsPort() {
				c += s.Inst.Cell.InputCap(s.Pin)
			}
		}
		return c
	}

	// Net switching power: α · C · V² · f (fF·V²·GHz = µW).
	for _, n := range nl.Nets {
		c := capOf(n)
		alpha := opt.Activity
		if n.IsClock || isClockTreeNet(n) {
			alpha = opt.ClockActivity
			res.ClockUW += alpha * c * vdd2 * freqGHz
			continue
		}
		res.SwitchingUW += alpha * c * vdd2 * freqGHz
	}

	// Cell internal power.
	for _, inst := range nl.Instances {
		if inst.Cell.IsSeq() {
			// Clock pin energy every cycle + data transfer at α.
			res.ClockUW += inst.Cell.Seq.ClockEnergy * freqGHz
			res.InternalUW += opt.Activity * 0.5 * vdd2 * freqGHz // internal transfer
			res.LeakageUW += inst.Cell.LeakageNW / 1000
			continue
		}
		out := inst.OutputNet()
		if out == nil {
			res.LeakageUW += inst.Cell.LeakageNW / 1000
			continue
		}
		alpha := opt.Activity
		if isClockTreeNet(out) {
			alpha = opt.ClockActivity
		}
		load := capOf(out)
		var e float64
		for _, p := range inst.Cell.Inputs {
			if a := inst.Cell.Arc(p.Name); a != nil {
				er := a.EnergyRise.Lookup(opt.InputSlewPs, load)
				ef := a.EnergyFall.Lookup(opt.InputSlewPs, load)
				e = (er + ef) / 2
				break // representative arc
			}
		}
		contribution := alpha * e * freqGHz
		if isClockTreeNet(out) {
			res.ClockUW += contribution
		} else {
			res.InternalUW += contribution
		}
		res.LeakageUW += inst.Cell.LeakageNW / 1000
	}

	res.TotalUW = res.SwitchingUW + res.InternalUW + res.ClockUW + res.LeakageUW
	return res
}

// isClockTreeNet identifies CTS buffer output nets by naming convention.
func isClockTreeNet(n *netlist.Net) bool {
	return len(n.Name) > 7 && n.Name[:7] == "ctsbuf_"
}
