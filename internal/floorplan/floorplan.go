// Package floorplan sizes the core area from target utilization and aspect
// ratio and generates placement rows, the first stage of the paper's
// physical implementation flow (Fig. 7).
package floorplan

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Row is one placement row spanning the core horizontally.
type Row struct {
	Index int
	Y     int64 // bottom edge
	X0    int64
	X1    int64
}

// SitesX returns the number of CPP sites in the row.
func (r Row) SitesX(cppNm int64) int { return int((r.X1 - r.X0) / cppNm) }

// Plan is a sized floorplan.
type Plan struct {
	Stack       *tech.Stack
	Core        geom.Rect
	Rows        []Row
	Utilization float64 // requested cell-area / core-area
	AspectRatio float64 // height / width
	CellAreaNm2 int64
}

// New computes a floorplan for the given total standard-cell area.
// Utilization must be in (0, 1]; aspect is core height / width (1 = square).
func New(stack *tech.Stack, cellAreaNm2 int64, utilization, aspect float64) (*Plan, error) {
	if utilization <= 0 || utilization > 1 {
		return nil, fmt.Errorf("floorplan: utilization %.3f out of (0,1]", utilization)
	}
	if aspect <= 0 {
		aspect = 1.0
	}
	if cellAreaNm2 <= 0 {
		return nil, fmt.Errorf("floorplan: empty design")
	}
	coreArea := float64(cellAreaNm2) / utilization
	w := math.Sqrt(coreArea / aspect)
	h := coreArea / w

	rowH := stack.CellHeightNm()
	cpp := stack.CPPNm
	// Snap up so the snapped core never drops below the target area.
	wNm := geom.SnapDown(int64(w), 0, cpp) + cpp
	hRows := int64(math.Ceil(h / float64(rowH)))
	if hRows < 1 {
		hRows = 1
	}
	hNm := hRows * rowH

	p := &Plan{
		Stack:       stack,
		Core:        geom.R(0, 0, wNm, hNm),
		Utilization: utilization,
		AspectRatio: aspect,
		CellAreaNm2: cellAreaNm2,
	}
	for i := int64(0); i < hRows; i++ {
		p.Rows = append(p.Rows, Row{
			Index: int(i),
			Y:     i * rowH,
			X0:    0,
			X1:    wNm,
		})
	}
	return p, nil
}

// CoreAreaUm2 returns the core area in µm².
func (p *Plan) CoreAreaUm2() float64 { return geom.Um2(p.Core.Area()) }

// RealUtilization is cell area over snapped core area.
func (p *Plan) RealUtilization() float64 {
	return float64(p.CellAreaNm2) / float64(p.Core.Area())
}

// RowAt returns the row whose span contains y, or nil.
func (p *Plan) RowAt(y int64) *Row {
	if y < 0 {
		return nil
	}
	rowH := p.Stack.CellHeightNm()
	i := y / rowH
	if int(i) >= len(p.Rows) {
		return nil
	}
	return &p.Rows[i]
}

// PlaceIOPorts distributes the netlist's ports evenly around the core
// boundary (left/right edges top-to-bottom, then top/bottom), filling in
// Port.Pos. Deterministic in port declaration order.
func (p *Plan) PlaceIOPorts(nl *netlist.Netlist) {
	n := len(nl.Ports)
	if n == 0 {
		return
	}
	perim := 2 * (p.Core.W() + p.Core.H())
	step := perim / int64(n)
	if step < 1 {
		step = 1
	}
	pos := int64(0)
	for _, port := range nl.Ports {
		port.Pos = p.perimeterPoint(pos)
		pos += step
	}
}

// perimeterPoint maps a distance along the boundary (counterclockwise from
// the lower-left corner) to a point.
func (p *Plan) perimeterPoint(d int64) geom.Point {
	w, h := p.Core.W(), p.Core.H()
	d %= 2 * (w + h)
	switch {
	case d < w:
		return geom.Pt(d, 0)
	case d < w+h:
		return geom.Pt(w, d-w)
	case d < 2*w+h:
		return geom.Pt(w-(d-w-h), h)
	default:
		return geom.Pt(0, h-(d-2*w-h))
	}
}
