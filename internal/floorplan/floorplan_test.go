package floorplan

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func TestPlanGeometry(t *testing.T) {
	st := tech.NewFFET()
	// 300 µm² of cells at 75% → 400 µm² core.
	p, err := New(st, 300_000_000, 0.75, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	got := p.CoreAreaUm2()
	if got < 395 || got > 410 {
		t.Errorf("core area = %.1f µm², want ~400", got)
	}
	if len(p.Rows) == 0 {
		t.Fatal("no rows")
	}
	rowH := st.CellHeightNm()
	for i, r := range p.Rows {
		if r.Y != int64(i)*rowH {
			t.Errorf("row %d at y=%d, want %d", i, r.Y, int64(i)*rowH)
		}
		if r.X0 != 0 || r.X1 != p.Core.Hi.X {
			t.Errorf("row %d span [%d,%d]", i, r.X0, r.X1)
		}
	}
	if u := p.RealUtilization(); u < 0.70 || u > 0.76 {
		t.Errorf("real utilization = %.3f, want ≈0.75 (slightly below from snapping)", u)
	}
}

func TestAspectRatio(t *testing.T) {
	st := tech.NewCFET()
	p, err := New(st, 200_000_000, 0.7, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(p.Core.H()) / float64(p.Core.W())
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("aspect = %.2f, want ≈2", ratio)
	}
}

func TestInvalidInputs(t *testing.T) {
	st := tech.NewFFET()
	if _, err := New(st, 1000, 0, 1); err == nil {
		t.Error("zero utilization must fail")
	}
	if _, err := New(st, 1000, 1.2, 1); err == nil {
		t.Error("utilization > 1 must fail")
	}
	if _, err := New(st, 0, 0.5, 1); err == nil {
		t.Error("empty design must fail")
	}
}

func TestRowAt(t *testing.T) {
	st := tech.NewFFET()
	p, _ := New(st, 100_000_000, 0.8, 1.0)
	r := p.RowAt(0)
	if r == nil || r.Index != 0 {
		t.Fatalf("RowAt(0) = %+v", r)
	}
	r = p.RowAt(st.CellHeightNm())
	if r == nil || r.Index != 1 {
		t.Errorf("RowAt(rowH) = %+v, want row 1", r)
	}
	if p.RowAt(-5) != nil {
		t.Error("negative y must return nil")
	}
	if p.RowAt(p.Core.Hi.Y+1000) != nil {
		t.Error("beyond-core y must return nil")
	}
}

func TestPlaceIOPorts(t *testing.T) {
	st := tech.NewFFET()
	lib := cell.NewLibrary(st)
	nl := netlist.New("io", lib)
	for _, n := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		nl.AddPort(n, netlist.In)
	}
	p, _ := New(st, 100_000_000, 0.8, 1.0)
	p.PlaceIOPorts(nl)
	onBoundary := func(pt int64) bool { return true }
	_ = onBoundary
	seen := make(map[[2]int64]bool)
	for _, port := range nl.Ports {
		pos := port.Pos
		onEdge := pos.X == 0 || pos.Y == 0 || pos.X == p.Core.Hi.X || pos.Y == p.Core.Hi.Y
		if !onEdge {
			t.Errorf("port %s at %v not on boundary", port.Name, pos)
		}
		seen[[2]int64{pos.X, pos.Y}] = true
	}
	if len(seen) < len(nl.Ports) {
		t.Errorf("ports share positions: %d unique of %d", len(seen), len(nl.Ports))
	}
}

// Property: the snapped core always has at least the requested area, and
// utilization never exceeds the request.
func TestCoreAreaProperty(t *testing.T) {
	st := tech.NewFFET()
	prop := func(areaRaw uint32, utilRaw, aspectRaw uint8) bool {
		area := int64(areaRaw%500_000_000) + 1_000_000
		util := 0.3 + float64(utilRaw%60)/100.0
		aspect := 0.5 + float64(aspectRaw%30)/10.0
		p, err := New(st, area, util, aspect)
		if err != nil {
			return false
		}
		return p.RealUtilization() <= util+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
