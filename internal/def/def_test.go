package def

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
)

func sample() *Design {
	d := New("core")
	d.Die = geom.R(0, 0, 20000, 21000)
	d.Rows = append(d.Rows, Row{Name: "row0", Site: "ffet", Origin: geom.Pt(0, 0), NumX: 400, StepX: 50})
	d.AddComponent(&Component{Name: "u1", Macro: "INVD1", Pos: geom.Pt(100, 0)})
	d.AddComponent(&Component{Name: "tap0", Macro: "PWRTAP", Pos: geom.Pt(3200, 0), Fixed: true})
	d.Pins = append(d.Pins, &IOPin{Name: "a", Net: "a", Dir: "INPUT", Layer: "FM2", Pos: geom.Pt(0, 105)})
	d.SpecialNets = append(d.SpecialNets, &SNet{
		Name: "VDD", Use: "POWER",
		Wires: []Wire{{Layer: "BM2", WidthNm: 1200, From: geom.Pt(0, 0), To: geom.Pt(0, 21000)}},
	})
	d.Nets = append(d.Nets, &Net{
		Name: "n1",
		Pins: []NetPin{{Comp: "u1", Pin: "ZN"}, {Comp: "PIN", Pin: "a"}},
		Wires: []Wire{
			{Layer: "FM2", From: geom.Pt(100, 0), To: geom.Pt(100, 500)},
			{Layer: "FM3", From: geom.Pt(100, 500), To: geom.Pt(700, 500)},
		},
		Vias: []Via{{At: geom.Pt(100, 500), FromLayer: "FM2", ToLayer: "FM3"}},
	})
	return d
}

func TestWirelength(t *testing.T) {
	d := sample()
	if got := d.Net("n1").WirelengthNm(); got != 1100 {
		t.Errorf("net wirelength = %d, want 1100", got)
	}
	if got := d.TotalWirelengthNm(); got != 1100 {
		t.Errorf("total = %d", got)
	}
	byLayer := d.WirelengthByLayerNm()
	if byLayer["FM2"] != 500 || byLayer["FM3"] != 600 {
		t.Errorf("by layer = %v", byLayer)
	}
}

func TestRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"DESIGN core ;", "DIEAREA ( 0 0 ) ( 20000 21000 )",
		"- u1 INVD1 + PLACED ( 100 0 )", "- tap0 PWRTAP + FIXED", "SPECIALNETS 1 ;",
		"( u1 ZN ) ( PIN a )"} {
		if !strings.Contains(text, want) {
			t.Errorf("DEF missing %q", want)
		}
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if back.Name != "core" || back.DBU != 1000 {
		t.Errorf("header lost: %q %d", back.Name, back.DBU)
	}
	if back.Die != d.Die {
		t.Errorf("die = %v", back.Die)
	}
	if len(back.Rows) != 1 || back.Rows[0].NumX != 400 || back.Rows[0].StepX != 50 {
		t.Errorf("rows = %+v", back.Rows)
	}
	if len(back.Components) != 2 {
		t.Fatalf("components = %d", len(back.Components))
	}
	if c := back.Component("tap0"); c == nil || !c.Fixed {
		t.Errorf("tap0 = %+v", c)
	}
	if len(back.Pins) != 1 || back.Pins[0].Layer != "FM2" {
		t.Errorf("pins = %+v", back.Pins[0])
	}
	n := back.Net("n1")
	if n == nil || len(n.Pins) != 2 || len(n.Wires) != 2 || len(n.Vias) != 1 {
		t.Fatalf("net n1 = %+v", n)
	}
	if n.WirelengthNm() != 1100 {
		t.Errorf("parsed wirelength = %d", n.WirelengthNm())
	}
	sn := back.SpecialNets[0]
	if sn.Name != "VDD" || sn.Use != "POWER" || sn.Wires[0].WidthNm != 1200 {
		t.Errorf("snet = %+v", sn)
	}
}

func TestMergeDualSided(t *testing.T) {
	front := New("core")
	front.Die = geom.R(0, 0, 10000, 10000)
	front.AddComponent(&Component{Name: "u1", Macro: "INVD1", Pos: geom.Pt(0, 0)})
	front.AddComponent(&Component{Name: "u2", Macro: "INVD1", Pos: geom.Pt(500, 0)})
	front.Nets = append(front.Nets, &Net{
		Name:  "n1",
		Pins:  []NetPin{{Comp: "u1", Pin: "ZN"}, {Comp: "u2", Pin: "I"}},
		Wires: []Wire{{Layer: "FM2", From: geom.Pt(0, 0), To: geom.Pt(500, 0)}},
	})
	back := New("core")
	back.Die = geom.R(0, 0, 10000, 10000)
	back.AddComponent(&Component{Name: "u1", Macro: "INVD1", Pos: geom.Pt(0, 0)})
	back.AddComponent(&Component{Name: "u3", Macro: "NAND2D1", Pos: geom.Pt(900, 0)})
	back.Nets = append(back.Nets, &Net{
		Name:  "n1",
		Pins:  []NetPin{{Comp: "u1", Pin: "ZN"}, {Comp: "u3", Pin: "A1"}},
		Wires: []Wire{{Layer: "BM2", From: geom.Pt(0, 0), To: geom.Pt(900, 0)}},
	})
	back.SpecialNets = append(back.SpecialNets, &SNet{Name: "VDD", Use: "POWER"})

	m, err := Merge("core", front, back)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(m.Components) != 3 {
		t.Errorf("merged components = %d, want 3", len(m.Components))
	}
	n := m.Net("n1")
	if n == nil {
		t.Fatal("merged net n1 missing")
	}
	if len(n.Pins) != 3 {
		t.Errorf("merged net pins = %d, want 3 (u1 deduped)", len(n.Pins))
	}
	if len(n.Wires) != 2 {
		t.Errorf("merged wires = %d, want both sides", len(n.Wires))
	}
	wl := m.WirelengthByLayerNm()
	if wl["FM2"] != 500 || wl["BM2"] != 900 {
		t.Errorf("merged per-layer = %v", wl)
	}
	if len(m.SpecialNets) != 1 {
		t.Errorf("special nets = %d", len(m.SpecialNets))
	}
}

func TestMergeConflictRejected(t *testing.T) {
	a := New("x")
	a.AddComponent(&Component{Name: "u1", Macro: "INVD1", Pos: geom.Pt(0, 0)})
	b := New("x")
	b.AddComponent(&Component{Name: "u1", Macro: "INVD2", Pos: geom.Pt(0, 0)})
	if _, err := Merge("x", a, b); err == nil {
		t.Fatal("conflicting component macros must be rejected")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		d := New(fmt.Sprintf("rnd%d", trial))
		d.Die = geom.R(0, 0, 1+rng.Int63n(50000), 1+rng.Int63n(50000))
		nc := 1 + rng.Intn(30)
		for i := 0; i < nc; i++ {
			d.AddComponent(&Component{
				Name:  fmt.Sprintf("c%d", i),
				Macro: "INVD1",
				Pos:   geom.Pt(rng.Int63n(50000), rng.Int63n(50000)),
				Fixed: rng.Intn(2) == 0,
			})
		}
		nn := rng.Intn(20)
		for i := 0; i < nn; i++ {
			n := &Net{Name: fmt.Sprintf("n%d", i)}
			n.Pins = append(n.Pins, NetPin{Comp: fmt.Sprintf("c%d", rng.Intn(nc)), Pin: "ZN"})
			for s := 0; s < 1+rng.Intn(3); s++ {
				from := geom.Pt(rng.Int63n(50000), rng.Int63n(50000))
				var to geom.Point
				if rng.Intn(2) == 0 {
					to = geom.Pt(from.X, rng.Int63n(50000))
				} else {
					to = geom.Pt(rng.Int63n(50000), from.Y)
				}
				n.Wires = append(n.Wires, Wire{Layer: "FM2", From: from, To: to})
			}
			d.Nets = append(d.Nets, n)
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			t.Fatalf("trial %d write: %v", trial, err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("trial %d parse: %v", trial, err)
		}
		if len(back.Components) != nc || len(back.Nets) != nn {
			t.Fatalf("trial %d: lost structure", trial)
		}
		if back.TotalWirelengthNm() != d.TotalWirelengthNm() {
			t.Fatalf("trial %d: wirelength %d != %d", trial,
				back.TotalWirelengthNm(), d.TotalWirelengthNm())
		}
	}
}
