package def

import "unsafe"

// FootprintBytes estimates the design's retained heap bytes: rows,
// components, IO pins, special nets and routed nets, including their name
// strings and segment/via tables. An accounting estimate for cache
// budgeting, not an exact heap measurement.
func (d *Design) FootprintBytes() int64 {
	if d == nil {
		return 0
	}
	const ptrSize = int64(unsafe.Sizeof(uintptr(0)))
	b := int64(unsafe.Sizeof(*d)) + int64(len(d.Name))
	b += int64(len(d.Rows)) * int64(unsafe.Sizeof(Row{}))
	for i := range d.Rows {
		b += int64(len(d.Rows[i].Name) + len(d.Rows[i].Site))
	}
	b += int64(len(d.Components)) * (ptrSize + int64(unsafe.Sizeof(Component{})))
	for _, c := range d.Components {
		b += int64(len(c.Name) + len(c.Macro))
	}
	b += int64(len(d.Pins)) * (ptrSize + int64(unsafe.Sizeof(IOPin{})))
	for _, p := range d.Pins {
		b += int64(len(p.Name) + len(p.Net) + len(p.Dir) + len(p.Layer))
	}
	for _, sn := range d.SpecialNets {
		b += ptrSize + int64(unsafe.Sizeof(*sn)) + int64(len(sn.Name)+len(sn.Use))
		b += int64(len(sn.Wires)) * int64(unsafe.Sizeof(Wire{}))
		for i := range sn.Wires {
			b += int64(len(sn.Wires[i].Layer))
		}
	}
	for _, n := range d.Nets {
		b += ptrSize + int64(unsafe.Sizeof(*n)) + int64(len(n.Name))
		b += int64(len(n.Pins)) * int64(unsafe.Sizeof(NetPin{}))
		for i := range n.Pins {
			b += int64(len(n.Pins[i].Comp) + len(n.Pins[i].Pin))
		}
		b += int64(len(n.Wires)) * int64(unsafe.Sizeof(Wire{}))
		for i := range n.Wires {
			b += int64(len(n.Wires[i].Layer))
		}
		b += int64(len(n.Vias)) * int64(unsafe.Sizeof(Via{}))
		for i := range n.Vias {
			b += int64(len(n.Vias[i].FromLayer) + len(n.Vias[i].ToLayer))
		}
	}
	return b
}
