// Package def models the physical design database exchanged between flow
// stages — a DEF (Design Exchange Format) subset: die area, placement rows,
// components, IO pins, special (power) nets and routed signal nets.
//
// The dual-sided flow produces one Design per wafer side ("two DEFs", paper
// Section III.A); Merge combines them into a single database for dual-sided
// RC extraction (Section III.C). Database units are 1 nm (DBU 1000/µm).
package def

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Design is one DEF database.
type Design struct {
	Name string
	DBU  int64 // database units per micron; always 1000 here
	Die  geom.Rect

	Rows        []Row
	Components  []*Component
	Pins        []*IOPin
	SpecialNets []*SNet
	Nets        []*Net
}

// New creates an empty design with 1000 DBU/µm.
func New(name string) *Design { return &Design{Name: name, DBU: 1000} }

// Row is one placement row.
type Row struct {
	Name   string
	Site   string
	Origin geom.Point
	NumX   int   // sites along X
	StepX  int64 // site pitch
}

// Component is a placed cell instance.
type Component struct {
	Name  string
	Macro string
	Pos   geom.Point // lower-left
	Fixed bool       // FIXED vs PLACED
}

// IOPin is a top-level pin.
type IOPin struct {
	Name  string
	Net   string
	Dir   string // INPUT or OUTPUT
	Layer string
	Pos   geom.Point
}

// Wire is a routed segment on one layer. Segments are axis-parallel.
type Wire struct {
	Layer   string
	WidthNm int64
	From    geom.Point
	To      geom.Point
}

// LengthNm returns the Manhattan length of the segment.
func (w Wire) LengthNm() int64 { return w.From.ManhattanDist(w.To) }

// Via is a cut between two adjacent layers at a point.
type Via struct {
	At        geom.Point
	FromLayer string
	ToLayer   string
}

// NetPin is a logical connection of a net: component pin or IO pin
// (Comp == "PIN" denotes a top-level pin, matching DEF convention).
type NetPin struct {
	Comp string
	Pin  string
}

// Net is a routed signal net.
type Net struct {
	Name  string
	Pins  []NetPin
	Wires []Wire
	Vias  []Via
}

// WirelengthNm sums routed segment lengths.
func (n *Net) WirelengthNm() int64 {
	var sum int64
	for _, w := range n.Wires {
		sum += w.LengthNm()
	}
	return sum
}

// SNet is a special (power) net with wide stripes.
type SNet struct {
	Name  string
	Use   string // POWER or GROUND
	Wires []Wire
}

// AddComponent appends a component.
func (d *Design) AddComponent(c *Component) { d.Components = append(d.Components, c) }

// Component returns the named component (linear scan; callers cache).
func (d *Design) Component(name string) *Component {
	for _, c := range d.Components {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Net returns the named net, or nil.
func (d *Design) Net(name string) *Net {
	for _, n := range d.Nets {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// TotalWirelengthNm sums all signal net wirelength.
func (d *Design) TotalWirelengthNm() int64 {
	var sum int64
	for _, n := range d.Nets {
		sum += n.WirelengthNm()
	}
	return sum
}

// WirelengthByLayerNm returns routed length per layer name.
func (d *Design) WirelengthByLayerNm() map[string]int64 {
	out := make(map[string]int64)
	for _, n := range d.Nets {
		for _, w := range n.Wires {
			out[w.Layer] += w.LengthNm()
		}
	}
	return out
}

// Merge combines per-side designs into one database for dual-sided RC
// extraction. Components and IO pins are deduplicated by name (they must
// agree across sides); nets with the same name have their pins, wires and
// vias unioned; special nets are concatenated; the die is the union box.
//
// The merge is two-pass: a counting pass over the input sides sizes
// every merged slice exactly (per-net payloads are carved from three
// shared arenas), so nothing grows by append and the whole merge costs a
// fixed handful of allocations per design instead of thousands.
func Merge(name string, sides ...*Design) (*Design, error) {
	out := New(name)
	// Pass 1: count rows, special nets, components, IO pins, and the
	// per-unique-net pin/wire/via totals.
	maxComps, maxPins, maxNets, nRows, nSNets := 0, 0, 0, 0, 0
	for _, d := range sides {
		if d == nil {
			continue
		}
		maxComps += len(d.Components)
		maxPins += len(d.Pins)
		maxNets += len(d.Nets)
		nRows += len(d.Rows)
		nSNets += len(d.SpecialNets)
	}
	type netCount struct{ pins, wires, vias int }
	netIdx := make(map[string]int32, maxNets)
	counts := make([]netCount, 0, maxNets)
	netOrder := make([]string, 0, maxNets)
	totPins, totWires, totVias := 0, 0, 0
	for _, d := range sides {
		if d == nil {
			continue
		}
		for _, n := range d.Nets {
			i, ok := netIdx[n.Name]
			if !ok {
				i = int32(len(counts))
				netIdx[n.Name] = i
				counts = append(counts, netCount{})
				netOrder = append(netOrder, n.Name)
			}
			counts[i].pins += len(n.Pins) // dedup below only shrinks this
			counts[i].wires += len(n.Wires)
			counts[i].vias += len(n.Vias)
			totPins += len(n.Pins)
			totWires += len(n.Wires)
			totVias += len(n.Vias)
		}
	}
	// Pass 2: exact-size storage, then fill.
	out.Rows = make([]Row, 0, nRows)
	out.SpecialNets = make([]*SNet, 0, nSNets)
	netStore := make([]Net, len(counts))
	pinArena := make([]NetPin, 0, totPins)
	wireArena := make([]Wire, 0, totWires)
	viaArena := make([]Via, 0, totVias)
	for i, name := range netOrder {
		m := &netStore[i]
		m.Name = name
		c := counts[i]
		m.Pins = pinArena[len(pinArena) : len(pinArena) : len(pinArena)+c.pins]
		pinArena = pinArena[:len(pinArena)+c.pins]
		m.Wires = wireArena[len(wireArena) : len(wireArena) : len(wireArena)+c.wires]
		wireArena = wireArena[:len(wireArena)+c.wires]
		if c.vias > 0 {
			m.Vias = viaArena[len(viaArena) : len(viaArena) : len(viaArena)+c.vias]
			viaArena = viaArena[:len(viaArena)+c.vias]
		}
	}
	comps := make(map[string]*Component, maxComps)
	pins := make(map[string]*IOPin, maxPins)

	for _, d := range sides {
		if d == nil {
			continue
		}
		out.Die = out.Die.Union(d.Die)
		out.Rows = append(out.Rows, d.Rows...)
		for _, c := range d.Components {
			if prev, ok := comps[c.Name]; ok {
				if prev.Macro != c.Macro || prev.Pos != c.Pos {
					return nil, fmt.Errorf("def: component %q differs between sides", c.Name)
				}
				continue
			}
			cc := *c
			comps[c.Name] = &cc
		}
		for _, p := range d.Pins {
			if _, ok := pins[p.Name]; ok {
				continue
			}
			pp := *p
			pins[p.Name] = &pp
		}
		for _, sn := range d.SpecialNets {
			snCopy := *sn
			snCopy.Wires = append([]Wire(nil), sn.Wires...)
			out.SpecialNets = append(out.SpecialNets, &snCopy)
		}
		for _, n := range d.Nets {
			m := &netStore[netIdx[n.Name]]
			for _, p := range n.Pins {
				if !containsPin(m.Pins, p) {
					m.Pins = append(m.Pins, p)
				}
			}
			m.Wires = append(m.Wires, n.Wires...)
			m.Vias = append(m.Vias, n.Vias...)
		}
	}
	compNames := make([]string, 0, len(comps))
	for n := range comps {
		compNames = append(compNames, n)
	}
	sort.Strings(compNames)
	out.Components = make([]*Component, 0, len(compNames))
	for _, n := range compNames {
		out.Components = append(out.Components, comps[n])
	}
	pinNames := make([]string, 0, len(pins))
	for n := range pins {
		pinNames = append(pinNames, n)
	}
	sort.Strings(pinNames)
	out.Pins = make([]*IOPin, 0, len(pinNames))
	for _, n := range pinNames {
		out.Pins = append(out.Pins, pins[n])
	}
	out.Nets = make([]*Net, 0, len(netOrder))
	for i := range netStore {
		out.Nets = append(out.Nets, &netStore[i])
	}
	return out, nil
}

func containsPin(ps []NetPin, p NetPin) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}
