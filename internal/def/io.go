package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Write emits the design as DEF 5.8 text.
func (d *Design) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", d.Name, d.DBU)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", d.Die.Lo.X, d.Die.Lo.Y, d.Die.Hi.X, d.Die.Hi.Y)
	for _, r := range d.Rows {
		fmt.Fprintf(bw, "ROW %s %s %d %d N DO %d BY 1 STEP %d 0 ;\n",
			r.Name, r.Site, r.Origin.X, r.Origin.Y, r.NumX, r.StepX)
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(d.Components))
	for _, c := range d.Components {
		kind := "PLACED"
		if c.Fixed {
			kind = "FIXED"
		}
		fmt.Fprintf(bw, "- %s %s + %s ( %d %d ) N ;\n", c.Name, c.Macro, kind, c.Pos.X, c.Pos.Y)
	}
	fmt.Fprintln(bw, "END COMPONENTS")
	fmt.Fprintf(bw, "PINS %d ;\n", len(d.Pins))
	for _, p := range d.Pins {
		fmt.Fprintf(bw, "- %s + NET %s + DIRECTION %s + LAYER %s + PLACED ( %d %d ) N ;\n",
			p.Name, p.Net, p.Dir, p.Layer, p.Pos.X, p.Pos.Y)
	}
	fmt.Fprintln(bw, "END PINS")
	fmt.Fprintf(bw, "SPECIALNETS %d ;\n", len(d.SpecialNets))
	for _, sn := range d.SpecialNets {
		fmt.Fprintf(bw, "- %s + USE %s", sn.Name, sn.Use)
		for i, wseg := range sn.Wires {
			kw := "+ ROUTED"
			if i > 0 {
				kw = "NEW"
			}
			fmt.Fprintf(bw, "\n  %s %s %d ( %d %d ) ( %d %d )",
				kw, wseg.Layer, wseg.WidthNm, wseg.From.X, wseg.From.Y, wseg.To.X, wseg.To.Y)
		}
		fmt.Fprintln(bw, " ;")
	}
	fmt.Fprintln(bw, "END SPECIALNETS")
	fmt.Fprintf(bw, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "- %s", n.Name)
		for _, p := range n.Pins {
			fmt.Fprintf(bw, " ( %s %s )", p.Comp, p.Pin)
		}
		for i, wseg := range n.Wires {
			kw := "+ ROUTED"
			if i > 0 {
				kw = "NEW"
			}
			fmt.Fprintf(bw, "\n  %s %s ( %d %d ) ( %d %d )",
				kw, wseg.Layer, wseg.From.X, wseg.From.Y, wseg.To.X, wseg.To.Y)
		}
		for _, v := range n.Vias {
			fmt.Fprintf(bw, "\n  NEW VIA %s %s ( %d %d )", v.FromLayer, v.ToLayer, v.At.X, v.At.Y)
		}
		fmt.Fprintln(bw, " ;")
	}
	fmt.Fprintln(bw, "END NETS")
	fmt.Fprintln(bw, "END DESIGN")
	return bw.Flush()
}

// Parse reads the DEF subset produced by Write.
func Parse(r io.Reader) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 256*1024*1024)
	var toks []string
	for sc.Scan() {
		line := line(sc.Text())
		toks = append(toks, strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parse()
}

func line(s string) string {
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	return s
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string { t := p.peek(); p.pos++; return t }

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("def: expected %q got %q at token %d", t, got, p.pos-1)
	}
	return nil
}

func (p *parser) int() (int64, error) {
	t := p.next()
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("def: bad integer %q at token %d", t, p.pos-1)
	}
	return v, nil
}

func (p *parser) point() (geom.Point, error) {
	if err := p.expect("("); err != nil {
		return geom.Point{}, err
	}
	x, err := p.int()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := p.int()
	if err != nil {
		return geom.Point{}, err
	}
	if err := p.expect(")"); err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}

func (p *parser) skipToSemi() {
	for p.peek() != ";" && p.peek() != "" {
		p.next()
	}
	p.next()
}

func (p *parser) parse() (*Design, error) {
	d := New("")
	for {
		switch p.peek() {
		case "":
			return d, nil
		case "VERSION":
			p.skipToSemi()
		case "DESIGN":
			p.next()
			d.Name = p.next()
			p.skipToSemi()
		case "UNITS":
			p.next()
			p.next() // DISTANCE
			p.next() // MICRONS
			v, err := p.int()
			if err != nil {
				return nil, err
			}
			d.DBU = v
			p.skipToSemi()
		case "DIEAREA":
			p.next()
			lo, err := p.point()
			if err != nil {
				return nil, err
			}
			hi, err := p.point()
			if err != nil {
				return nil, err
			}
			d.Die = geom.Rect{Lo: lo, Hi: hi}
			p.skipToSemi()
		case "ROW":
			p.next()
			r := Row{Name: p.next(), Site: p.next()}
			x, err := p.int()
			if err != nil {
				return nil, err
			}
			y, err := p.int()
			if err != nil {
				return nil, err
			}
			r.Origin = geom.Pt(x, y)
			p.next() // orientation
			p.next() // DO
			n, err := p.int()
			if err != nil {
				return nil, err
			}
			r.NumX = int(n)
			p.next() // BY
			p.next() // 1
			p.next() // STEP
			step, err := p.int()
			if err != nil {
				return nil, err
			}
			r.StepX = step
			d.Rows = append(d.Rows, r)
			p.skipToSemi()
		case "COMPONENTS":
			if err := p.parseComponents(d); err != nil {
				return nil, err
			}
		case "PINS":
			if err := p.parsePins(d); err != nil {
				return nil, err
			}
		case "SPECIALNETS":
			if err := p.parseSpecialNets(d); err != nil {
				return nil, err
			}
		case "NETS":
			if err := p.parseNets(d); err != nil {
				return nil, err
			}
		case "END":
			p.next()
			p.next() // DESIGN or section name
		default:
			return nil, fmt.Errorf("def: unexpected token %q at %d", p.peek(), p.pos)
		}
	}
}

func (p *parser) parseComponents(d *Design) error {
	p.next() // COMPONENTS
	p.skipToSemi()
	for p.peek() == "-" {
		p.next()
		c := &Component{Name: p.next(), Macro: p.next()}
		if err := p.expect("+"); err != nil {
			return err
		}
		kind := p.next()
		c.Fixed = kind == "FIXED"
		pt, err := p.point()
		if err != nil {
			return err
		}
		c.Pos = pt
		d.Components = append(d.Components, c)
		p.skipToSemi()
	}
	p.next() // END
	p.next() // COMPONENTS
	return nil
}

func (p *parser) parsePins(d *Design) error {
	p.next()
	p.skipToSemi()
	for p.peek() == "-" {
		p.next()
		pin := &IOPin{Name: p.next()}
		for p.peek() == "+" {
			p.next()
			switch p.next() {
			case "NET":
				pin.Net = p.next()
			case "DIRECTION":
				pin.Dir = p.next()
			case "LAYER":
				pin.Layer = p.next()
			case "PLACED":
				pt, err := p.point()
				if err != nil {
					return err
				}
				pin.Pos = pt
				p.next() // orientation
			}
		}
		d.Pins = append(d.Pins, pin)
		p.skipToSemi()
	}
	p.next()
	p.next()
	return nil
}

func (p *parser) parseWire() (Wire, error) {
	var w Wire
	w.Layer = p.next()
	// Optional width (specialnets carry one).
	if v, err := strconv.ParseInt(p.peek(), 10, 64); err == nil {
		w.WidthNm = v
		p.next()
	}
	from, err := p.point()
	if err != nil {
		return w, err
	}
	to, err := p.point()
	if err != nil {
		return w, err
	}
	w.From, w.To = from, to
	return w, nil
}

func (p *parser) parseSpecialNets(d *Design) error {
	p.next()
	p.skipToSemi()
	for p.peek() == "-" {
		p.next()
		sn := &SNet{Name: p.next()}
		for p.peek() != ";" && p.peek() != "" {
			switch p.next() {
			case "+":
				switch p.next() {
				case "USE":
					sn.Use = p.next()
				case "ROUTED":
					w, err := p.parseWire()
					if err != nil {
						return err
					}
					sn.Wires = append(sn.Wires, w)
				}
			case "NEW":
				w, err := p.parseWire()
				if err != nil {
					return err
				}
				sn.Wires = append(sn.Wires, w)
			}
		}
		p.next() // ;
		d.SpecialNets = append(d.SpecialNets, sn)
	}
	p.next()
	p.next()
	return nil
}

func (p *parser) parseNets(d *Design) error {
	p.next()
	p.skipToSemi()
	for p.peek() == "-" {
		p.next()
		n := &Net{Name: p.next()}
		for p.peek() == "(" {
			p.next()
			np := NetPin{Comp: p.next(), Pin: p.next()}
			if err := p.expect(")"); err != nil {
				return err
			}
			n.Pins = append(n.Pins, np)
		}
		for p.peek() != ";" && p.peek() != "" {
			switch p.next() {
			case "+":
				if err := p.expect("ROUTED"); err != nil {
					return err
				}
				w, err := p.parseWire()
				if err != nil {
					return err
				}
				n.Wires = append(n.Wires, w)
			case "NEW":
				if p.peek() == "VIA" {
					p.next()
					v := Via{FromLayer: p.next(), ToLayer: p.next()}
					pt, err := p.point()
					if err != nil {
						return err
					}
					v.At = pt
					n.Vias = append(n.Vias, v)
					continue
				}
				w, err := p.parseWire()
				if err != nil {
					return err
				}
				n.Wires = append(n.Wires, w)
			}
		}
		p.next() // ;
		d.Nets = append(d.Nets, n)
	}
	p.next()
	p.next()
	return nil
}
