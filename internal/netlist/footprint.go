package netlist

import "unsafe"

// FootprintBytes estimates the retained heap footprint of the netlist in
// bytes: the instance/net/port objects, their connection and sink slices,
// name strings, and the name-lookup maps. It is an accounting estimate
// for cache budgeting (map bucket overhead is approximated, allocator
// slack ignored), not an exact heap measurement — but it is deterministic
// for a given netlist, which is what an eviction policy needs.
func (nl *Netlist) FootprintBytes() int64 {
	if nl == nil {
		return 0
	}
	const (
		ptrSize = int64(unsafe.Sizeof(uintptr(0)))
		// mapSlot approximates the per-entry share of a string-keyed
		// pointer map: key header + value pointer + bucket overhead.
		mapSlot = int64(unsafe.Sizeof("")) + int64(unsafe.Sizeof(uintptr(0))) + 24
	)
	b := int64(unsafe.Sizeof(*nl)) + int64(len(nl.Name))
	b += int64(len(nl.Instances)) * ptrSize
	for _, in := range nl.Instances {
		b += int64(unsafe.Sizeof(*in)) + int64(len(in.Name))
		b += int64(len(in.conns)) * ptrSize
	}
	b += int64(len(nl.Nets)) * ptrSize
	for _, n := range nl.Nets {
		b += int64(unsafe.Sizeof(*n)) + int64(len(n.Name))
		b += int64(len(n.Sinks)) * int64(unsafe.Sizeof(PinRef{}))
	}
	b += int64(len(nl.Ports)) * ptrSize
	for _, p := range nl.Ports {
		b += int64(unsafe.Sizeof(*p)) + int64(len(p.Name))
	}
	for name := range nl.instByName {
		b += mapSlot + int64(len(name))
	}
	for name := range nl.netByName {
		b += mapSlot + int64(len(name))
	}
	for name := range nl.portByName {
		b += mapSlot + int64(len(name))
	}
	return b
}
