package netlist

import (
	"slices"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	a := buildSmall(t)
	b := a.Snapshot()
	d := Diff(a, b)
	if !d.SeqStable || !d.Identical() || !d.ResizeOnly() {
		t.Fatalf("identical snapshot: %+v", d)
	}
	if len(d.ChangedNets) != 0 {
		t.Fatalf("changed nets on identical pair: %v", d.ChangedNets)
	}
}

func TestDiffResizeOnly(t *testing.T) {
	a := buildSmall(t)
	b := a.Snapshot()
	u2 := b.Instance("u2")
	if err := b.Resize(u2, testLib.PickDrive("INV", 4)); err != nil {
		t.Fatal(err)
	}
	d := Diff(a, b)
	if !d.SeqStable || !d.ResizeOnly() || d.Identical() {
		t.Fatalf("resize pair: %+v", d)
	}
	if !slices.Equal(d.Resized, []int32{int32(u2.Seq)}) {
		t.Fatalf("Resized = %v, want [%d]", d.Resized, u2.Seq)
	}
	// u2 drives n2 and sinks n1: both nets' physical content changes.
	want := []int32{int32(b.Net("n1").Seq), int32(b.Net("n2").Seq)}
	slices.Sort(want)
	if !slices.Equal(d.ChangedNets, want) {
		t.Fatalf("ChangedNets = %v, want %v", d.ChangedNets, want)
	}
}

func TestDiffInsertedInstance(t *testing.T) {
	a := buildSmall(t)
	b := a.Snapshot()
	b.MustAdd("ux", testLib.MustCell("INVD1"), map[string]string{
		"I": "n2", "ZN": "nx",
	})
	d := Diff(a, b)
	if d.SeqStable || d.ResizeOnly() {
		t.Fatalf("inserted instance must break the correspondence: %+v", d)
	}
	if !slices.Equal(d.InsertedB, []int32{int32(b.Instance("ux").Seq)}) {
		t.Fatalf("InsertedB = %v", d.InsertedB)
	}
	// The nets ux touches are changed.
	for _, seq := range []int{b.Net("n2").Seq, b.Net("nx").Seq} {
		if !slices.Contains(d.ChangedNets, int32(seq)) {
			t.Fatalf("net %d missing from ChangedNets %v", seq, d.ChangedNets)
		}
	}
}

func TestDiffRemovedInstance(t *testing.T) {
	a := buildSmall(t)
	a.MustAdd("ux", testLib.MustCell("INVD1"), map[string]string{
		"I": "n2", "ZN": "nx",
	})
	b := buildSmall(t)
	d := Diff(a, b)
	if d.SeqStable {
		t.Fatalf("removed instance must break the correspondence: %+v", d)
	}
	if !slices.Equal(d.RemovedA, []int32{int32(a.Instance("ux").Seq)}) {
		t.Fatalf("RemovedA = %v", d.RemovedA)
	}
}

func TestDiffRewired(t *testing.T) {
	a := buildSmall(t)
	b := a.Snapshot()
	if err := b.Reconnect(b.Instance("u2"), "I", b.EnsureNet("n2b")); err != nil {
		t.Fatal(err)
	}
	d := Diff(a, b)
	if d.SeqStable {
		t.Fatalf("rewire must break the correspondence: %+v", d)
	}
	if !slices.Contains(d.RewiredB, int32(b.Instance("u2").Seq)) {
		t.Fatalf("RewiredB = %v", d.RewiredB)
	}
}
