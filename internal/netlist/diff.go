// Synth-aware netlist diffing. Two synthesized netlists of the same arch
// at neighboring frequency targets differ mostly in drive resizing: the
// generator and the buffering passes are target-independent, so instance
// and net creation order — and therefore Seq — usually coincide, and only
// the sizing pass picked different drive variants. Diff establishes that
// correspondence (or reports that it does not hold) so the staged flow
// can fork a sweep point off its completed neighbor and patch only what
// the resizes touched instead of re-running the whole back end.
package netlist

// NetlistDiff is the result of Diff: the changed-instance and changed-net
// sets between two netlists, with a stable Seq correspondence for the
// unchanged majority when one exists.
type NetlistDiff struct {
	// SeqStable reports that the two netlists are structurally identical —
	// same instances, nets, ports, connectivity and ordering at every Seq —
	// up to drive resizing. All Seq-indexed state (placement arrays, dense
	// STA tables) then corresponds one-to-one between them.
	SeqStable bool

	// Resized lists the Seqs of matched instances whose cell changed (always
	// a drive change of the same base when SeqStable). Sorted ascending.
	Resized []int32

	// ChangedNets lists the Seqs (in b) of nets whose physical content can
	// differ: any endpoint instance resized or rewired, plus — when the
	// correspondence broke — inserted nets and nets with changed endpoint
	// sets. Sorted ascending.
	ChangedNets []int32

	// InsertedB / RemovedA list instance Seqs present only in b / only in a
	// (inserted or removed buffer trees). Empty when SeqStable.
	InsertedB []int32
	RemovedA  []int32

	// RewiredB lists Seqs (in b) of name-matched instances whose pin→net
	// connectivity changed. Empty when SeqStable.
	RewiredB []int32
}

// Identical reports a fully unchanged netlist: stable correspondence and
// not a single resize.
func (d *NetlistDiff) Identical() bool { return d.SeqStable && len(d.Resized) == 0 }

// ResizeOnly reports that b differs from a purely by drive resizing over a
// stable Seq correspondence — the precondition for the patched fork path.
func (d *NetlistDiff) ResizeOnly() bool { return d.SeqStable }

// sameRef reports that two endpoint refs of Seq-corresponding netlists
// denote the same endpoint.
func sameRef(ra, rb PinRef) bool {
	if (ra.Inst == nil) != (rb.Inst == nil) || (ra.Port == nil) != (rb.Port == nil) {
		return false
	}
	if ra.Inst != nil && (ra.Inst.Seq != rb.Inst.Seq || ra.Pin != rb.Pin) {
		return false
	}
	if ra.Port != nil && ra.Port.Seq != rb.Port.Seq {
		return false
	}
	return true
}

// seqCorresponds verifies the full structural correspondence between a and
// b at every Seq, recording resized instances as it goes. On any
// structural difference it reports false; d.Resized is then discarded by
// the caller.
func seqCorresponds(a, b *Netlist, d *NetlistDiff) bool {
	if len(a.Instances) != len(b.Instances) || len(a.Nets) != len(b.Nets) || len(a.Ports) != len(b.Ports) {
		return false
	}
	for i := range a.Instances {
		ia, ib := a.Instances[i], b.Instances[i]
		if ia.Name != ib.Name || ia.Fixed != ib.Fixed || len(ia.conns) != len(ib.conns) {
			return false
		}
		if ia.Cell.Name != ib.Cell.Name {
			if ia.Cell.Base != ib.Cell.Base {
				return false
			}
			d.Resized = append(d.Resized, int32(i))
		}
		for pi := range ia.conns {
			na, nb := ia.conns[pi], ib.conns[pi]
			if (na == nil) != (nb == nil) || (na != nil && na.Seq != nb.Seq) {
				return false
			}
		}
	}
	for i := range a.Nets {
		na, nb := a.Nets[i], b.Nets[i]
		if na.Name != nb.Name || na.IsClock != nb.IsClock || len(na.Sinks) != len(nb.Sinks) {
			return false
		}
		if !sameRef(na.Driver, nb.Driver) {
			return false
		}
		for si := range na.Sinks {
			if !sameRef(na.Sinks[si], nb.Sinks[si]) {
				return false
			}
		}
	}
	for i := range a.Ports {
		pa, pb := a.Ports[i], b.Ports[i]
		if pa.Name != pb.Name || pa.Dir != pb.Dir ||
			(pa.Net == nil) != (pb.Net == nil) || (pa.Net != nil && pa.Net.Seq != pb.Net.Seq) {
			return false
		}
	}
	return true
}

// connSignature renders an instance's connectivity as pin→net names for
// the name-based fallback comparison.
func connSignature(i *Instance) string {
	sig := i.Cell.Name
	for pi, n := range i.conns {
		sig += "|" + i.Cell.PinName(pi) + "="
		if n != nil {
			sig += n.Name
		}
	}
	return sig
}

// Diff computes the changed-instance/changed-net sets between two
// netlists of the same design. The fast path establishes the Seq
// correspondence of resize-only pairs; when the structures genuinely
// diverge (inserted/removed buffer trees, rewired conns) it falls back to
// a name-based comparison so callers still see what changed.
func Diff(a, b *Netlist) *NetlistDiff {
	d := &NetlistDiff{}
	if seqCorresponds(a, b, d) {
		d.SeqStable = true
		// A net's physical content changes exactly when one of its endpoint
		// instances was resized: sink input caps and pin offsets move with
		// the drive variant; pure wiring is untouched under SeqStable.
		if len(d.Resized) > 0 {
			resized := make([]bool, len(b.Instances))
			for _, seq := range d.Resized {
				resized[seq] = true
			}
			for _, n := range b.Nets {
				touched := n.Driver.Inst != nil && resized[n.Driver.Inst.Seq]
				if !touched {
					for _, s := range n.Sinks {
						if s.Inst != nil && resized[s.Inst.Seq] {
							touched = true
							break
						}
					}
				}
				if touched {
					d.ChangedNets = append(d.ChangedNets, int32(n.Seq))
				}
			}
		}
		return d
	}
	// Structural divergence: match by name.
	d.Resized = d.Resized[:0]
	changedNet := make([]bool, len(b.Nets))
	touch := func(n *Net) {
		if n != nil && !changedNet[n.Seq] {
			changedNet[n.Seq] = true
		}
	}
	for _, ib := range b.Instances {
		ia := a.instByName[ib.Name]
		if ia == nil {
			d.InsertedB = append(d.InsertedB, int32(ib.Seq))
			for _, n := range ib.conns {
				touch(n)
			}
			continue
		}
		if ia.Cell.Name != ib.Cell.Name {
			d.Resized = append(d.Resized, int32(ib.Seq))
			for _, n := range ib.conns {
				touch(n)
			}
		}
		if connSignature(ia) != connSignature(ib) {
			d.RewiredB = append(d.RewiredB, int32(ib.Seq))
			for _, n := range ib.conns {
				touch(n)
			}
		}
	}
	for _, ia := range a.Instances {
		if b.instByName[ia.Name] == nil {
			d.RemovedA = append(d.RemovedA, int32(ia.Seq))
		}
	}
	for _, nb := range b.Nets {
		if a.netByName[nb.Name] == nil {
			touch(nb)
		}
	}
	for seq, c := range changedNet {
		if c {
			d.ChangedNets = append(d.ChangedNets, int32(seq))
		}
	}
	return d
}
