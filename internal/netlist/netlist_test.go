package netlist

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/tech"
)

var testLib = cell.NewLibrary(tech.NewFFET())

// buildSmall creates: in a,b,clk; out q.
// n1 = NAND2(a,b); n2 = INV(n1); q = DFF(D=n2, CP=clk)
func buildSmall(t testing.TB) *Netlist {
	nl := New("small", testLib)
	nl.AddPort("a", In)
	nl.AddPort("b", In)
	nl.AddPort("clk", In)
	nl.AddPort("q", Out)
	nl.MustAdd("u1", testLib.MustCell("NAND2D1"), map[string]string{
		"A1": "a", "A2": "b", "ZN": "n1",
	})
	nl.MustAdd("u2", testLib.MustCell("INVD1"), map[string]string{
		"I": "n1", "ZN": "n2",
	})
	nl.MustAdd("ff", testLib.MustCell("DFFD1"), map[string]string{
		"D": "n2", "CP": "clk", "Q": "q",
	})
	nl.MarkClock("clk")
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return nl
}

func TestBuildAndValidate(t *testing.T) {
	nl := buildSmall(t)
	if got := len(nl.Instances); got != 3 {
		t.Errorf("instances = %d", got)
	}
	if nl.Net("n1").Fanout() != 1 {
		t.Errorf("n1 fanout = %d", nl.Net("n1").Fanout())
	}
	if d := nl.Net("n1").Driver; d.Inst == nil || d.Inst.Name != "u1" {
		t.Errorf("n1 driver = %v", d)
	}
	if nl.ClockNet() == nil || nl.ClockNet().Name != "clk" {
		t.Error("clock net not marked")
	}
	if got := len(nl.Flops()); got != 1 {
		t.Errorf("flops = %d", got)
	}
	st := nl.Stats()
	if st.Instances != 3 || st.Flops != 1 || st.ByBase["NAND2"] != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.AreaUm2 <= 0 {
		t.Error("zero area")
	}
}

func TestDuplicateDriverRejected(t *testing.T) {
	nl := New("x", testLib)
	nl.AddPort("a", In)
	nl.MustAdd("u1", testLib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "n"})
	_, err := nl.AddInstance("u2", testLib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "n"})
	if err == nil {
		t.Fatal("second driver on net n must be rejected")
	}
}

func TestUnknownPinRejected(t *testing.T) {
	nl := New("x", testLib)
	_, err := nl.AddInstance("u1", testLib.MustCell("INVD1"), map[string]string{"NOPE": "a", "ZN": "n"})
	if err == nil {
		t.Fatal("unknown pin must be rejected")
	}
	// The failed add must leave no ghost connections behind: the valid
	// "ZN" entry in the rejected map must not have claimed net "n".
	if n := nl.Net("n"); n != nil && n.Driver != (PinRef{}) {
		t.Fatalf("rejected instance left net %q driven by %v", "n", n.Driver)
	}
	inst, err := nl.AddInstance("u2", testLib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "n"})
	if err != nil {
		t.Fatalf("driving %q after a rejected add: %v", "n", err)
	}
	if inst.OutputNet().Name != "n" {
		t.Fatal("u2 output not bound to n")
	}
}

func TestDuplicateInstanceRejected(t *testing.T) {
	nl := New("x", testLib)
	nl.AddPort("a", In)
	nl.MustAdd("u1", testLib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "n1"})
	_, err := nl.AddInstance("u1", testLib.MustCell("INVD1"), map[string]string{"I": "a", "ZN": "n2"})
	if err == nil {
		t.Fatal("duplicate instance name must be rejected")
	}
}

func TestValidateCatchesDangling(t *testing.T) {
	nl := New("x", testLib)
	nl.AddPort("a", In)
	// Output connected, input "I" missing.
	cellINV := testLib.MustCell("INVD1")
	inst := &Instance{Name: "u1", Cell: cellINV, conns: make([]*Net, cellINV.NumPins())}
	out := nl.EnsureNet("n1")
	inst.conns[cellINV.PinIndex("ZN")] = out
	out.Driver = PinRef{Inst: inst, Pin: "ZN"}
	nl.Instances = append(nl.Instances, inst)
	nl.instByName["u1"] = inst
	if err := nl.Validate(); err == nil {
		t.Fatal("dangling input must fail validation")
	}
}

func TestTopoLevels(t *testing.T) {
	nl := buildSmall(t)
	levels, cyclic := nl.TopoLevels()
	if len(cyclic) != 0 {
		t.Fatalf("unexpected cycles: %v", cyclic)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	if levels[0][0].Name != "u1" || levels[1][0].Name != "u2" {
		t.Errorf("topo order wrong: %v then %v", levels[0][0].Name, levels[1][0].Name)
	}
}

func TestTopoDetectsCycle(t *testing.T) {
	nl := New("cyc", testLib)
	nl.AddPort("a", In)
	// u1 and u2 feed each other through NAND2s (combinational loop).
	nl.MustAdd("u1", testLib.MustCell("NAND2D1"), map[string]string{
		"A1": "a", "A2": "n2", "ZN": "n1",
	})
	nl.MustAdd("u2", testLib.MustCell("NAND2D1"), map[string]string{
		"A1": "a", "A2": "n1", "ZN": "n2",
	})
	_, cyclic := nl.TopoLevels()
	if len(cyclic) != 2 {
		t.Fatalf("cycle detection found %d instances, want 2", len(cyclic))
	}
}

func TestRemapToCFET(t *testing.T) {
	nl := buildSmall(t)
	cfet := cell.NewLibrary(tech.NewCFET())
	mapped, err := nl.Remap(cfet)
	if err != nil {
		t.Fatalf("Remap: %v", err)
	}
	if err := mapped.Validate(); err != nil {
		t.Fatalf("remapped Validate: %v", err)
	}
	if mapped.Lib.Arch != tech.CFET {
		t.Error("wrong target library")
	}
	if mapped.Instance("u1").Cell.Arch != tech.CFET {
		t.Error("instance cell not rebound")
	}
	// Same connectivity.
	if mapped.Net("n1").Fanout() != nl.Net("n1").Fanout() {
		t.Error("fanout changed in remap")
	}
	if !mapped.Net("clk").IsClock {
		t.Error("clock mark lost in remap")
	}
	// CFET instances are larger (4T vs 3.5T).
	if !(mapped.CellAreaUm2() > nl.CellAreaUm2()) {
		t.Errorf("CFET area %.4f should exceed FFET %.4f",
			mapped.CellAreaUm2(), nl.CellAreaUm2())
	}
}

func TestVerilogRoundTrip(t *testing.T) {
	nl := buildSmall(t)
	var buf bytes.Buffer
	if err := nl.WriteVerilog(&buf); err != nil {
		t.Fatalf("WriteVerilog: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"module small", "NAND2D1 u1", ".CP(clk)", "endmodule"} {
		if !strings.Contains(text, want) {
			t.Errorf("verilog missing %q:\n%s", want, text)
		}
	}
	back, err := ParseVerilog(&buf, testLib)
	if err != nil {
		t.Fatalf("ParseVerilog: %v", err)
	}
	if back.Name != "small" {
		t.Errorf("module name = %q", back.Name)
	}
	if len(back.Instances) != len(nl.Instances) || len(back.Ports) != len(nl.Ports) {
		t.Errorf("round trip lost structure: %d/%d instances, %d/%d ports",
			len(back.Instances), len(nl.Instances), len(back.Ports), len(nl.Ports))
	}
	for _, inst := range nl.Instances {
		b := back.Instance(inst.Name)
		if b == nil {
			t.Errorf("lost instance %s", inst.Name)
			continue
		}
		for _, pin := range inst.PinNames() {
			if inst.Conn(pin) == nil {
				continue
			}
			if b.Conn(pin) == nil || b.Conn(pin).Name != inst.Conn(pin).Name {
				t.Errorf("%s.%s connectivity mismatch", inst.Name, pin)
			}
		}
	}
}

func TestParseVerilogErrors(t *testing.T) {
	bad := []string{
		"modul x (); endmodule",
		"module x (a); input a; UNKNOWNCELL u1 (.I(a), .ZN(n)); endmodule",
		"module x (a); input a;",
	}
	for _, src := range bad {
		if _, err := ParseVerilog(strings.NewReader(src), testLib); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

// Property-flavored test: random DAG netlists round-trip through Verilog
// with identical connectivity and pass validation.
func TestVerilogRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nl := randomNetlist(rng, 5+rng.Intn(40))
		if err := nl.Validate(); err != nil {
			t.Fatalf("trial %d: source invalid: %v", trial, err)
		}
		var buf bytes.Buffer
		if err := nl.WriteVerilog(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		back, err := ParseVerilog(&buf, testLib)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if len(back.Instances) != len(nl.Instances) {
			t.Fatalf("trial %d: %d instances, want %d", trial, len(back.Instances), len(nl.Instances))
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("trial %d: round-tripped invalid: %v", trial, err)
		}
	}
}

// randomNetlist builds a random combinational DAG over the library's
// 2-input cells, driven by 4 input ports.
func randomNetlist(rng *rand.Rand, n int) *Netlist {
	nl := New("rnd", testLib)
	var avail []string
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("in%d", i)
		nl.AddPort(p, In)
		avail = append(avail, p)
	}
	bases := []string{"NAND2D1", "NOR2D1", "AND2D1", "OR2D1"}
	for i := 0; i < n; i++ {
		c := testLib.MustCell(bases[rng.Intn(len(bases))])
		out := fmt.Sprintf("w%d", i)
		nl.MustAdd(fmt.Sprintf("g%d", i), c, map[string]string{
			"A1":       avail[rng.Intn(len(avail))],
			"A2":       avail[rng.Intn(len(avail))],
			c.Out.Name: out,
		})
		avail = append(avail, out)
	}
	// Tie the last wire to an output port so nothing dangles structurally.
	nl.AddPort("out", Out)
	last := nl.Net(fmt.Sprintf("w%d", n-1))
	port := nl.Port("out")
	// Bridge with a buffer to keep single-driver discipline.
	nl.MustAdd("obuf", testLib.MustCell("BUFD1"), map[string]string{
		"I": last.Name, "Z": "out_pre",
	})
	pre := nl.Net("out_pre")
	port.Net.Driver = PinRef{} // out port net should be driven by buffer: rewire
	// Simplest: make port net the buffer output by renaming — instead drive
	// port net via a second buffer stage.
	nl.MustAdd("obuf2", testLib.MustCell("BUFD1"), map[string]string{
		"I": pre.Name, "Z": "out",
	})
	return nl
}
