package netlist

import (
	"testing"

	"repro/internal/geom"
)

// sameStructure asserts b is an exact structural copy of a (same order,
// Seq ids, connectivity and physical state) sharing no mutable objects.
func sameStructure(t *testing.T, a, b *Netlist) {
	t.Helper()
	if a.Name != b.Name || a.Lib != b.Lib {
		t.Fatalf("header differs: %s/%p vs %s/%p", a.Name, a.Lib, b.Name, b.Lib)
	}
	if len(a.Instances) != len(b.Instances) || len(a.Nets) != len(b.Nets) || len(a.Ports) != len(b.Ports) {
		t.Fatalf("sizes differ: %d/%d/%d vs %d/%d/%d",
			len(a.Instances), len(a.Nets), len(a.Ports),
			len(b.Instances), len(b.Nets), len(b.Ports))
	}
	refEq := func(x, y PinRef) bool {
		if (x.Inst == nil) != (y.Inst == nil) || (x.Port == nil) != (y.Port == nil) || x.Pin != y.Pin {
			return false
		}
		if x.Inst != nil && (x.Inst.Name != y.Inst.Name || x.Inst.Seq != y.Inst.Seq) {
			return false
		}
		if x.Port != nil && x.Port.Name != y.Port.Name {
			return false
		}
		return true
	}
	for i, an := range a.Nets {
		bn := b.Nets[i]
		if an == bn {
			t.Fatalf("net %s shared between copies", an.Name)
		}
		if an.Name != bn.Name || an.Seq != bn.Seq || an.IsClock != bn.IsClock {
			t.Fatalf("net %d differs: %+v vs %+v", i, an, bn)
		}
		if !refEq(an.Driver, bn.Driver) {
			t.Fatalf("net %s driver differs: %v vs %v", an.Name, an.Driver, bn.Driver)
		}
		if len(an.Sinks) != len(bn.Sinks) {
			t.Fatalf("net %s sink count differs", an.Name)
		}
		for j := range an.Sinks {
			if !refEq(an.Sinks[j], bn.Sinks[j]) {
				t.Fatalf("net %s sink %d differs (order must be preserved)", an.Name, j)
			}
		}
	}
	for i, ai := range a.Instances {
		bi := b.Instances[i]
		if ai == bi {
			t.Fatalf("instance %s shared between copies", ai.Name)
		}
		if ai.Name != bi.Name || ai.Seq != bi.Seq || ai.Cell != bi.Cell ||
			ai.Pos != bi.Pos || ai.Fixed != bi.Fixed {
			t.Fatalf("instance %d differs: %+v vs %+v", i, ai, bi)
		}
		for j := range ai.conns {
			an, bn := ai.conns[j], bi.conns[j]
			if (an == nil) != (bn == nil) {
				t.Fatalf("instance %s pin %d connectivity differs", ai.Name, j)
			}
			if an != nil && (an.Name != bn.Name || bn != b.Nets[an.Seq]) {
				t.Fatalf("instance %s pin %d bound to wrong net copy", ai.Name, j)
			}
		}
	}
	for i, ap := range a.Ports {
		bp := b.Ports[i]
		if ap == bp {
			t.Fatalf("port %s shared between copies", ap.Name)
		}
		if ap.Name != bp.Name || ap.Dir != bp.Dir || ap.Seq != bp.Seq || ap.Pos != bp.Pos {
			t.Fatalf("port %d differs: %+v vs %+v", i, ap, bp)
		}
		if bp.Net != b.Nets[ap.Net.Seq] {
			t.Fatalf("port %s bound to wrong net copy", ap.Name)
		}
	}
}

func TestSnapshotExactCopy(t *testing.T) {
	nl := buildSmall(t)
	// Give the netlist physical state a Clone/Remap would drop.
	nl.Instances[0].Pos = geom.Pt(1234, 567)
	nl.Instances[1].Fixed = true
	nl.Ports[2].Pos = geom.Pt(9, 8)

	snap := nl.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	sameStructure(t, nl, snap)
	// Name lookups must work on the copy.
	if snap.Instance("u1") == nil || snap.Net("n1") == nil || snap.Port("a") == nil {
		t.Fatal("snapshot lookup maps not rebuilt")
	}
	if snap.ClockNet() == nil || snap.ClockNet().Name != "clk" {
		t.Fatal("clock flag lost")
	}
}

func TestSnapshotIndependence(t *testing.T) {
	nl := buildSmall(t)
	snap := nl.Snapshot()

	// Mutate the copy the way placement and CTS do: move cells, add a
	// buffer instance, reconnect a sink.
	snap.Instances[0].Pos = geom.Pt(777, 777)
	buf := snap.MustAdd("ctsbuf_x", testLib.MustCell("BUFD1"), map[string]string{
		"I": "n1", "Z": "bufnet",
	})
	if err := snap.Reconnect(snap.Instance("u2"), "I", snap.Net("bufnet")); err != nil {
		t.Fatal(err)
	}
	_ = buf

	if nl.Instances[0].Pos == (geom.Pt(777, 777)) {
		t.Error("mutating snapshot moved original instance")
	}
	if nl.Instance("ctsbuf_x") != nil || nl.Net("bufnet") != nil {
		t.Error("snapshot mutation leaked new objects into original")
	}
	if got := nl.Net("n1").Fanout(); got != 1 {
		t.Errorf("original n1 fanout = %d after snapshot reconnect, want 1", got)
	}
	if err := nl.Validate(); err != nil {
		t.Errorf("original invalid after snapshot mutation: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("snapshot invalid after mutation: %v", err)
	}

	// And the reverse direction: mutating the original leaves the copy alone.
	snap2 := nl.Snapshot()
	nl.Instances[1].Pos = geom.Pt(42, 42)
	if snap2.Instances[1].Pos == (geom.Pt(42, 42)) {
		t.Error("mutating original moved snapshot instance")
	}
}
