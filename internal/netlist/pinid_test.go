package netlist

import (
	"math/rand"
	"testing"
)

// TestPinIDRoundTrip is the pack/unpack property test: for a large
// random population of (instance Seq, pin index) pairs and port seqs,
// packing then unpacking must return the inputs exactly, the port flag
// must partition the two spaces, and distinct inputs must map to
// distinct ids.
func TestPinIDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type pair struct{ seq, idx int }
	seen := make(map[PinID]pair)
	for i := 0; i < 20000; i++ {
		seq := rng.Intn(1 << 30)
		idx := rng.Intn(256)
		id := InstPinID(seq, idx)
		if id.IsPort() {
			t.Fatalf("InstPinID(%d,%d) claims to be a port", seq, idx)
		}
		if id.InstSeq() != seq || id.PinIndex() != idx {
			t.Fatalf("InstPinID(%d,%d) round-trips to (%d,%d)",
				seq, idx, id.InstSeq(), id.PinIndex())
		}
		if prev, dup := seen[id]; dup && prev != (pair{seq, idx}) {
			t.Fatalf("id %v collides: (%d,%d) and (%d,%d)",
				id, prev.seq, prev.idx, seq, idx)
		}
		seen[id] = pair{seq, idx}
	}
	for i := 0; i < 20000; i++ {
		seq := rng.Intn(1 << 30)
		id := PortPinID(seq)
		if !id.IsPort() {
			t.Fatalf("PortPinID(%d) not flagged as port", seq)
		}
		if id.PortSeq() != seq {
			t.Fatalf("PortPinID(%d) round-trips to %d", seq, id.PortSeq())
		}
		if inst := InstPinID(seq, seq%256); inst == id {
			t.Fatalf("port id %v collides with instance id space", id)
		}
	}
	// Boundary values.
	for _, seq := range []int{0, 1, 1<<40 - 1} {
		for _, idx := range []int{0, 1, 255} {
			id := InstPinID(seq, idx)
			if id.InstSeq() != seq || id.PinIndex() != idx || id.IsPort() {
				t.Fatalf("boundary (%d,%d) mangled: (%d,%d,port=%v)",
					seq, idx, id.InstSeq(), id.PinIndex(), id.IsPort())
			}
		}
	}
}

// TestPinRefIDAndNames walks a real netlist end to end: every driver and
// sink PinRef must pack to an id that PinNames renders back to the
// original instance/pin (or PIN/port) naming, and ids must be unique
// across all net endpoints.
func TestPinRefIDAndNames(t *testing.T) {
	nl := buildSmall(t)
	seen := make(map[PinID]string)
	check := func(ref PinRef) {
		id := ref.ID()
		comp, pin := nl.PinNames(id)
		if ref.IsPort() {
			if comp != "PIN" || pin != ref.Port.Name {
				t.Fatalf("port %s renders as %s/%s", ref.Port.Name, comp, pin)
			}
		} else if comp != ref.Inst.Name || pin != ref.Pin {
			t.Fatalf("pin %s/%s renders as %s/%s", ref.Inst.Name, ref.Pin, comp, pin)
		}
		key := comp + "/" + pin
		if prev, dup := seen[id]; dup && prev != key {
			t.Fatalf("id %v names both %s and %s", id, prev, key)
		}
		seen[id] = key
	}
	for _, n := range nl.Nets {
		check(n.Driver)
		for _, s := range n.Sinks {
			check(s)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no endpoints checked")
	}
}
