package netlist

// PinID is the flow-wide packed identity of one routed pin endpoint. It
// replaces the seed's rendered "inst/pin" strings: an instance pin packs
// the instance's dense Seq with the cell's canonical pin index, and a
// top-level port packs its dense position in Netlist.Ports under a flag
// bit. Partition emits PinIDs, the router and extraction carry them
// opaquely, and names are rendered only at the DEF serialization
// boundary (Netlist.PinNames) — no string is ever built on the hot path.
type PinID uint64

const (
	// pinIdxBits is the width reserved for the per-cell pin index; every
	// library cell has at most a handful of pins, 256 is far above any
	// realistic cell.
	pinIdxBits = 8
	pinIdxMask = (1 << pinIdxBits) - 1
	// portFlag marks a top-level port id; the remaining bits hold the
	// port's position in Netlist.Ports.
	portFlag PinID = 1 << 63
)

// InstPinID packs an instance pin: the instance's Seq and the cell's
// canonical pin index (cell.Cell.PinIndex).
func InstPinID(instSeq, pinIdx int) PinID {
	return PinID(instSeq)<<pinIdxBits | PinID(pinIdx&pinIdxMask)
}

// PortPinID packs a top-level port by its Seq (position in Ports).
func PortPinID(portSeq int) PinID { return portFlag | PinID(portSeq) }

// IsPort reports whether the id names a top-level port.
func (id PinID) IsPort() bool { return id&portFlag != 0 }

// InstSeq returns the instance Seq of an instance-pin id.
func (id PinID) InstSeq() int { return int(id >> pinIdxBits) }

// PinIndex returns the canonical cell pin index of an instance-pin id.
func (id PinID) PinIndex() int { return int(id & pinIdxMask) }

// PortSeq returns the port position of a port id.
func (id PinID) PortSeq() int { return int(id &^ portFlag) }

// ID packs the endpoint into its flow-wide PinID. It panics on a PinRef
// whose pin name is not on its cell: packing would otherwise silently
// truncate the -1 index into a wrong-but-plausible id, which — unlike
// the rendered strings this replaced — would not be visibly corrupt in
// the emitted DEF.
func (p PinRef) ID() PinID {
	if p.IsPort() {
		return PortPinID(p.Port.Seq)
	}
	idx := p.Inst.Cell.PinIndex(p.Pin)
	if idx < 0 {
		panic("netlist: pin " + p.Pin + " is not on cell " + p.Inst.Cell.Name)
	}
	return InstPinID(p.Inst.Seq, idx)
}

// PinNames resolves a PinID to its DEF naming: the component name and
// pin name for instance pins, or the DEF "PIN" pseudo-component and the
// port name for ports. Both returned strings are references to existing
// netlist strings — rendering a pin allocates nothing.
func (nl *Netlist) PinNames(id PinID) (comp, pin string) {
	if id.IsPort() {
		return "PIN", nl.Ports[id.PortSeq()].Name
	}
	inst := nl.Instances[id.InstSeq()]
	return inst.Name, inst.Cell.PinName(id.PinIndex())
}
