// Package netlist models gate-level netlists: standard-cell instances,
// nets with a single driver and multiple sinks, and top-level ports. It is
// the common currency between synthesis, placement, routing, timing and
// power analysis, and can be serialized to/from structural Verilog.
package netlist

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/cell"
	"repro/internal/geom"
)

// PortDir is the direction of a top-level port.
type PortDir int

// Port directions.
const (
	In PortDir = iota
	Out
)

// Port is a top-level interface pin of the block.
type Port struct {
	Name string
	Dir  PortDir
	Net  *Net
	// Seq is the port's position in Netlist.Ports, assigned at AddPort
	// time; PinID packs it as the dense port identity.
	Seq int
	// Pos is the port's placed location on the core boundary (filled by
	// floorplanning/IO placement).
	Pos geom.Point
}

// PinRef identifies one endpoint of a net: either an instance pin or a
// top-level port.
type PinRef struct {
	Inst *Instance // nil when the endpoint is a port
	Pin  string    // pin name on the instance ("" for ports)
	Port *Port     // nil when the endpoint is an instance pin
}

// IsPort reports whether the endpoint is a top-level port.
func (p PinRef) IsPort() bool { return p.Port != nil }

// String renders the endpoint as inst/pin or port name.
func (p PinRef) String() string {
	if p.IsPort() {
		return p.Port.Name
	}
	return p.Inst.Name + "/" + p.Pin
}

// Net is a signal net: exactly one driver, zero or more sinks.
type Net struct {
	Name   string
	Driver PinRef
	Sinks  []PinRef
	// Seq is the net's position in Netlist.Nets, assigned at EnsureNet
	// time and kept in sync by SortNetsByName. Like Instance.Seq it is the
	// dense id the flow stages (extraction, STA, CTS, power) use to keep
	// per-net state in flat slices instead of name- or pointer-keyed maps.
	Seq     int
	IsClock bool
}

// Fanout returns the number of sinks.
func (n *Net) Fanout() int { return len(n.Sinks) }

// Instance is a placed (or yet-unplaced) standard-cell instance.
type Instance struct {
	Name string
	Cell *cell.Cell
	// Seq is the instance's position in Netlist.Instances, assigned at
	// AddInstance time. Hot loops (placement attraction, refinement) use
	// it to keep per-instance state in flat slices instead of
	// pointer-keyed maps.
	Seq int
	// conns holds the net on each pin, indexed by the cell's canonical
	// pin index (inputs in order, then the output; cell.Cell.PinIndex).
	// nil entries are unconnected pins.
	conns []*Net

	// Physical state, managed by floorplan/placement.
	Pos   geom.Point // lower-left corner
	Fixed bool       // true for power tap cells and other pre-placed cells
}

// Conn returns the net bound to the named pin (nil if unconnected).
func (i *Instance) Conn(pin string) *Net {
	idx := i.Cell.PinIndex(pin)
	if idx < 0 {
		return nil
	}
	return i.conns[idx]
}

// ConnAt returns the net bound to the canonical pin index.
func (i *Instance) ConnAt(idx int) *Net { return i.conns[idx] }

// PinNames returns the instance pin names in canonical cell order
// (inputs first, then the output).
func (i *Instance) PinNames() []string {
	var out []string
	for _, p := range i.Cell.Inputs {
		out = append(out, p.Name)
	}
	out = append(out, i.Cell.Out.Name)
	return out
}

// InputNets returns the nets on the instance's input pins, canonical order.
func (i *Instance) InputNets() []*Net {
	out := make([]*Net, len(i.Cell.Inputs))
	copy(out, i.conns)
	return out
}

// OutputNet returns the net driven by the instance (nil if unconnected).
func (i *Instance) OutputNet() *Net { return i.conns[len(i.Cell.Inputs)] }

// Center returns the instance center point given its library stack height.
func (i *Instance) Center() geom.Point {
	// Width is resolved lazily by callers holding the stack; the X center
	// uses the cell's CPP width at 50nm/CPP which is constant across archs.
	return i.Pos
}

// Netlist is a flat gate-level design.
type Netlist struct {
	Name string
	Lib  *cell.Library

	Instances []*Instance
	Nets      []*Net
	Ports     []*Port

	instByName map[string]*Instance
	netByName  map[string]*Net
	portByName map[string]*Port
}

// New creates an empty netlist bound to a library.
func New(name string, lib *cell.Library) *Netlist {
	return &Netlist{
		Name:       name,
		Lib:        lib,
		instByName: make(map[string]*Instance),
		netByName:  make(map[string]*Net),
		portByName: make(map[string]*Port),
	}
}

// AddPort declares a top-level port and its bound net (created if needed).
func (nl *Netlist) AddPort(name string, dir PortDir) *Port {
	if p, ok := nl.portByName[name]; ok {
		return p
	}
	p := &Port{Name: name, Dir: dir, Seq: len(nl.Ports)}
	n := nl.EnsureNet(name)
	p.Net = n
	if dir == In {
		n.Driver = PinRef{Port: p}
	} else {
		n.Sinks = append(n.Sinks, PinRef{Port: p})
	}
	nl.Ports = append(nl.Ports, p)
	nl.portByName[name] = p
	return p
}

// Port returns the named port, or nil.
func (nl *Netlist) Port(name string) *Port { return nl.portByName[name] }

// EnsureNet returns the named net, creating it if absent.
func (nl *Netlist) EnsureNet(name string) *Net {
	if n, ok := nl.netByName[name]; ok {
		return n
	}
	n := &Net{Name: name, Seq: len(nl.Nets)}
	nl.Nets = append(nl.Nets, n)
	nl.netByName[name] = n
	return n
}

// Net returns the named net, or nil.
func (nl *Netlist) Net(name string) *Net { return nl.netByName[name] }

// Instance returns the named instance, or nil.
func (nl *Netlist) Instance(name string) *Instance { return nl.instByName[name] }

// AddInstance creates an instance of c with pin connections given as
// pin name -> net name. Nets are created on demand. The output pin
// connection establishes the net driver.
func (nl *Netlist) AddInstance(name string, c *cell.Cell, conns map[string]string) (*Instance, error) {
	if _, dup := nl.instByName[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate instance %q", name)
	}
	// Validate every connection name before touching any net: an invalid
	// name must not leave ghost sinks or a ghost driver behind.
	matched := 0
	for _, pi := range c.PinOrderByName() {
		if _, ok := conns[c.PinName(pi)]; ok {
			matched++
		}
	}
	if matched != len(conns) {
		// Some connection names no cell pin: report the first in sorted
		// order, matching the pre-interning error.
		var bad []string
		for pin := range conns {
			if c.PinIndex(pin) < 0 {
				bad = append(bad, pin)
			}
		}
		slices.Sort(bad)
		return nil, fmt.Errorf("netlist: %s has no pin %q", c.Name, bad[0])
	}
	inst := &Instance{Name: name, Cell: c, Seq: len(nl.Instances), conns: make([]*Net, c.NumPins())}
	// Process pins in sorted-name order, not map order: net creation order
	// and per-net sink order must not depend on Go's randomized map
	// iteration, or the whole flow downstream (placement, routing
	// tie-breaks, PPA) becomes nondeterministic run to run. The sorted
	// order is interned once per cell (cell.PinOrderByName), so no
	// per-instance sort or scratch buffer is needed.
	outIdx := c.OutIndex()
	for _, pi := range c.PinOrderByName() {
		pin := c.PinName(pi)
		netName, ok := conns[pin]
		if !ok {
			continue
		}
		n := nl.EnsureNet(netName)
		inst.conns[pi] = n
		ref := PinRef{Inst: inst, Pin: pin}
		if pi == outIdx {
			if n.Driver != (PinRef{}) {
				return nil, fmt.Errorf("netlist: net %q already driven by %s", netName, n.Driver)
			}
			n.Driver = ref
		} else {
			n.Sinks = append(n.Sinks, ref)
		}
	}
	nl.Instances = append(nl.Instances, inst)
	nl.instByName[name] = inst
	return inst, nil
}

// MustAdd is AddInstance that panics on error; for generator code building
// netlists from trusted templates.
func (nl *Netlist) MustAdd(name string, c *cell.Cell, conns map[string]string) *Instance {
	inst, err := nl.AddInstance(name, c, conns)
	if err != nil {
		panic(err)
	}
	return inst
}

// MarkClock flags the named net (and its name) as the clock.
func (nl *Netlist) MarkClock(netName string) {
	if n := nl.netByName[netName]; n != nil {
		n.IsClock = true
	}
}

// ClockNet returns the first net marked as clock, or nil.
func (nl *Netlist) ClockNet() *Net {
	for _, n := range nl.Nets {
		if n.IsClock {
			return n
		}
	}
	return nil
}

// Flops returns all sequential instances in deterministic order.
func (nl *Netlist) Flops() []*Instance {
	var out []*Instance
	for _, i := range nl.Instances {
		if i.Cell.IsSeq() {
			out = append(out, i)
		}
	}
	return out
}

// CellAreaNm2 sums the footprint area of all instances.
func (nl *Netlist) CellAreaNm2() int64 {
	var sum int64
	for _, i := range nl.Instances {
		sum += i.Cell.AreaNm2(nl.Lib.Stack)
	}
	return sum
}

// CellAreaUm2 is CellAreaNm2 in µm².
func (nl *Netlist) CellAreaUm2() float64 { return float64(nl.CellAreaNm2()) / 1e6 }

// Stats summarizes a netlist.
type Stats struct {
	Instances int
	Nets      int
	Ports     int
	Flops     int
	AreaUm2   float64
	ByBase    map[string]int
}

// Stats computes summary statistics.
func (nl *Netlist) Stats() Stats {
	s := Stats{
		Instances: len(nl.Instances),
		Nets:      len(nl.Nets),
		Ports:     len(nl.Ports),
		AreaUm2:   nl.CellAreaUm2(),
		ByBase:    make(map[string]int),
	}
	for _, i := range nl.Instances {
		s.ByBase[i.Cell.Base]++
		if i.Cell.IsSeq() {
			s.Flops++
		}
	}
	return s
}

// Validate checks structural invariants: every net has a driver, every
// sink refers to an existing pin, no instance input is dangling, and pin
// connection tables are consistent with net endpoint lists.
func (nl *Netlist) Validate() error {
	for _, n := range nl.Nets {
		if n.Driver == (PinRef{}) {
			return fmt.Errorf("netlist: net %q has no driver", n.Name)
		}
		if !n.Driver.IsPort() {
			if n.Driver.Inst.Conn(n.Driver.Pin) != n {
				return fmt.Errorf("netlist: net %q driver back-reference broken", n.Name)
			}
		}
		for _, s := range n.Sinks {
			if s.IsPort() {
				continue
			}
			if s.Inst.Conn(s.Pin) != n {
				return fmt.Errorf("netlist: net %q sink %s back-reference broken", n.Name, s)
			}
		}
	}
	for _, i := range nl.Instances {
		for pi, p := range i.Cell.Inputs {
			if i.conns[pi] == nil {
				return fmt.Errorf("netlist: %s input %s dangling", i.Name, p.Name)
			}
		}
		if i.OutputNet() == nil {
			return fmt.Errorf("netlist: %s output dangling", i.Name)
		}
	}
	return nil
}

// Remap returns a deep copy of the netlist bound to another library. Cell
// names must exist in the target library (the FFET and CFET libraries are
// name-compatible, enabling the paper's like-for-like block comparison).
func (nl *Netlist) Remap(lib *cell.Library) (*Netlist, error) {
	out := New(nl.Name, lib)
	for _, p := range nl.Ports {
		out.AddPort(p.Name, p.Dir)
	}
	for _, i := range nl.Instances {
		c := lib.Cell(i.Cell.Name)
		if c == nil {
			return nil, fmt.Errorf("netlist: target library lacks %s", i.Cell.Name)
		}
		conns := make(map[string]string, len(i.conns))
		for pi, n := range i.conns {
			if n != nil {
				conns[i.Cell.PinName(pi)] = n.Name
			}
		}
		if _, err := out.AddInstance(i.Name, c, conns); err != nil {
			return nil, err
		}
	}
	for _, n := range nl.Nets {
		if n.IsClock {
			out.MarkClock(n.Name)
		}
	}
	return out, nil
}

// Clone returns a deep copy bound to the same library. It rebuilds the
// netlist by replaying AddPort/AddInstance (via Remap), so physical state
// (instance and port positions, Fixed flags) is NOT carried over and net
// creation order follows the replay, not the source's history. Use
// Snapshot for an exact state-preserving copy.
func (nl *Netlist) Clone() *Netlist {
	out, err := nl.Remap(nl.Lib)
	if err != nil {
		panic("netlist: clone failed: " + err.Error())
	}
	return out
}

// Snapshot returns an exact deep copy of the netlist: every instance,
// net and port is duplicated at the same Seq and slice position with its
// physical state (Pos, Fixed, port positions), connection tables and
// sink order preserved bit-for-bit. Mutating either copy never affects
// the other. This is the checkpoint primitive of the staged flow
// (core.Flow): placement and CTS mutate instances in place, so forking a
// flow session at a stage boundary requires the netlist state at that
// boundary, not a structural replay like Clone/Remap (which resets
// positions and may reorder nets relative to the source's history).
func (nl *Netlist) Snapshot() *Netlist {
	out := &Netlist{
		Name:       nl.Name,
		Lib:        nl.Lib,
		Instances:  make([]*Instance, len(nl.Instances)),
		Nets:       make([]*Net, len(nl.Nets)),
		Ports:      make([]*Port, len(nl.Ports)),
		instByName: make(map[string]*Instance, len(nl.Instances)),
		netByName:  make(map[string]*Net, len(nl.Nets)),
		portByName: make(map[string]*Port, len(nl.Ports)),
	}
	// Seq doubles as the slice index for nets, instances and ports, so
	// cross references resolve through out's own slices — no pointer
	// remap tables. Structs and per-object tables come out of bulk
	// arenas (full slice expressions below keep later appends from
	// clobbering arena neighbors); a fork-heavy sweep snapshots per
	// point, and the arena layout cuts both the allocation count and
	// the GC scan surface of every retained checkpoint.
	netArena := make([]Net, len(nl.Nets))
	for i, n := range nl.Nets {
		nn := &netArena[i]
		*nn = Net{Name: n.Name, Seq: n.Seq, IsClock: n.IsClock}
		out.Nets[i] = nn
		out.netByName[n.Name] = nn
	}
	nConns := 0
	for _, inst := range nl.Instances {
		nConns += len(inst.conns)
	}
	instArena := make([]Instance, len(nl.Instances))
	connArena := make([]*Net, nConns)
	for i, inst := range nl.Instances {
		ni := &instArena[i]
		conns := connArena[:len(inst.conns):len(inst.conns)]
		connArena = connArena[len(inst.conns):]
		*ni = Instance{
			Name:  inst.Name,
			Cell:  inst.Cell,
			Seq:   inst.Seq,
			Pos:   inst.Pos,
			Fixed: inst.Fixed,
			conns: conns,
		}
		for j, c := range inst.conns {
			if c != nil {
				conns[j] = out.Nets[c.Seq]
			}
		}
		out.Instances[i] = ni
		out.instByName[inst.Name] = ni
	}
	portArena := make([]Port, len(nl.Ports))
	for i, p := range nl.Ports {
		np := &portArena[i]
		*np = Port{Name: p.Name, Dir: p.Dir, Seq: p.Seq, Pos: p.Pos}
		if p.Net != nil {
			np.Net = out.Nets[p.Net.Seq]
		}
		out.Ports[i] = np
		out.portByName[p.Name] = np
	}
	ref := func(r PinRef) PinRef {
		nr := PinRef{Pin: r.Pin}
		if r.Inst != nil {
			nr.Inst = out.Instances[r.Inst.Seq]
		}
		if r.Port != nil {
			nr.Port = out.Ports[r.Port.Seq]
		}
		return nr
	}
	nSinks := 0
	for _, n := range nl.Nets {
		nSinks += len(n.Sinks)
	}
	sinkArena := make([]PinRef, nSinks)
	for i, n := range nl.Nets {
		nn := out.Nets[i]
		nn.Driver = ref(n.Driver)
		if n.Sinks != nil {
			sinks := sinkArena[:len(n.Sinks):len(n.Sinks)]
			sinkArena = sinkArena[len(n.Sinks):]
			for j, s := range n.Sinks {
				sinks[j] = ref(s)
			}
			nn.Sinks = sinks
		}
	}
	return out
}

// TopoLevels returns instances in topological order of the combinational
// graph (flip-flop outputs and ports are level-0 sources; flip-flop data
// inputs are sinks). The second return lists any instances caught in
// combinational cycles (empty for well-formed designs).
func (nl *Netlist) TopoLevels() ([][]*Instance, []*Instance) {
	indeg := make([]int, len(nl.Instances))
	comb := 0
	for _, i := range nl.Instances {
		if i.Cell.IsSeq() {
			continue // flops break the graph
		}
		comb++
		deg := 0
		for pi := range i.Cell.Inputs {
			n := i.conns[pi]
			if n == nil || n.Driver.IsPort() {
				continue
			}
			if d := n.Driver.Inst; d != nil && !d.Cell.IsSeq() {
				deg++
			}
		}
		indeg[i.Seq] = deg
	}
	var levels [][]*Instance
	frontier := make([]*Instance, 0)
	for _, i := range nl.Instances { // deterministic order
		if !i.Cell.IsSeq() && indeg[i.Seq] == 0 {
			frontier = append(frontier, i)
		}
	}
	seen := 0
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		seen += len(frontier)
		var next []*Instance
		for _, i := range frontier {
			out := i.OutputNet()
			if out == nil {
				continue
			}
			for _, s := range out.Sinks {
				if s.IsPort() || s.Inst.Cell.IsSeq() {
					continue
				}
				indeg[s.Inst.Seq]--
				if indeg[s.Inst.Seq] == 0 {
					next = append(next, s.Inst)
				}
			}
		}
		frontier = next
	}
	var cyclic []*Instance
	if seen < comb {
		for _, i := range nl.Instances {
			if !i.Cell.IsSeq() && indeg[i.Seq] > 0 {
				cyclic = append(cyclic, i)
			}
		}
	}
	return levels, cyclic
}

// SortNetsByName orders the net list deterministically (useful before
// emitting artifacts). Net Seq ids are re-stamped to match the new order,
// which invalidates any Seq-indexed side tables built beforehand.
func (nl *Netlist) SortNetsByName() {
	sort.Slice(nl.Nets, func(i, j int) bool { return nl.Nets[i].Name < nl.Nets[j].Name })
	for i, n := range nl.Nets {
		n.Seq = i
	}
}

// Reconnect moves an instance input pin from its current net to another
// net, updating both sink lists. Used by buffering and clock tree
// construction.
func (nl *Netlist) Reconnect(inst *Instance, pin string, to *Net) error {
	idx := inst.Cell.PinIndex(pin)
	if idx < 0 || idx == inst.Cell.OutIndex() {
		return fmt.Errorf("netlist: %s has no input pin %q", inst.Cell.Name, pin)
	}
	from := inst.conns[idx]
	if from == to {
		return nil
	}
	if from != nil {
		for i, s := range from.Sinks {
			if s.Inst == inst && s.Pin == pin {
				from.Sinks = append(from.Sinks[:i], from.Sinks[i+1:]...)
				break
			}
		}
	}
	inst.conns[idx] = to
	to.Sinks = append(to.Sinks, PinRef{Inst: inst, Pin: pin})
	return nil
}

// Resize swaps an instance to a different drive strength of the same base
// cell (pin names must be identical).
func (nl *Netlist) Resize(inst *Instance, to *cell.Cell) error {
	if to.Base != inst.Cell.Base {
		return fmt.Errorf("netlist: resize %s: %s -> %s is not a drive change",
			inst.Name, inst.Cell.Name, to.Name)
	}
	inst.Cell = to
	return nil
}
