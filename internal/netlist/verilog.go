package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cell"
)

// WriteVerilog emits the netlist as flat structural Verilog. Instances are
// written in creation order; pin connections use named association.
func (nl *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var portNames []string
	for _, p := range nl.Ports {
		portNames = append(portNames, p.Name)
	}
	fmt.Fprintf(bw, "module %s (%s);\n", nl.Name, strings.Join(portNames, ", "))
	for _, p := range nl.Ports {
		dir := "input"
		if p.Dir == Out {
			dir = "output"
		}
		fmt.Fprintf(bw, "  %s %s;\n", dir, p.Name)
	}
	// Wires: every net that is not a port net.
	var wires []string
	for _, n := range nl.Nets {
		if nl.portByName[n.Name] == nil {
			wires = append(wires, n.Name)
		}
	}
	sort.Strings(wires)
	for _, wname := range wires {
		fmt.Fprintf(bw, "  wire %s;\n", wname)
	}
	for _, inst := range nl.Instances {
		var conns []string
		for _, pin := range inst.PinNames() {
			if n := inst.Conn(pin); n != nil {
				conns = append(conns, fmt.Sprintf(".%s(%s)", pin, n.Name))
			}
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", inst.Cell.Name, inst.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// ParseVerilog reads a flat structural Verilog module written in the
// subset produced by WriteVerilog and binds it to lib.
func ParseVerilog(r io.Reader, lib *cell.Library) (*Netlist, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &vParser{toks: toks, lib: lib}
	return p.parseModule()
}

type vParser struct {
	toks []string
	pos  int
	lib  *cell.Library
}

func tokenize(r io.Reader) ([]string, error) {
	var toks []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for _, sym := range []string{"(", ")", ";", ",", "."} {
			line = strings.ReplaceAll(line, sym, " "+sym+" ")
		}
		toks = append(toks, strings.Fields(line)...)
	}
	return toks, sc.Err()
}

func (p *vParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *vParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *vParser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("verilog: expected %q, got %q (token %d)", t, got, p.pos-1)
	}
	return nil
}

func (p *vParser) parseModule() (*Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if name == "" {
		return nil, fmt.Errorf("verilog: missing module name")
	}
	nl := New(name, p.lib)
	if err := p.expect("("); err != nil {
		return nil, err
	}
	// Header port list (names only); directions come from declarations.
	for p.peek() != ")" && p.peek() != "" {
		tok := p.next()
		if tok == "," {
			continue
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	for {
		switch tok := p.peek(); tok {
		case "endmodule":
			p.next()
			if err := nl.Validate(); err != nil {
				return nil, err
			}
			return nl, nil
		case "":
			return nil, fmt.Errorf("verilog: unexpected EOF")
		case "input", "output":
			p.next()
			dir := In
			if tok == "output" {
				dir = Out
			}
			for {
				n := p.next()
				if n == ";" {
					break
				}
				if n == "," {
					continue
				}
				nl.AddPort(n, dir)
			}
		case "wire":
			p.next()
			for {
				n := p.next()
				if n == ";" {
					break
				}
				if n == "," {
					continue
				}
				nl.EnsureNet(n)
			}
		default:
			if err := p.parseInstance(nl); err != nil {
				return nil, err
			}
		}
	}
}

func (p *vParser) parseInstance(nl *Netlist) error {
	cellName := p.next()
	c := p.lib.Cell(cellName)
	if c == nil {
		return fmt.Errorf("verilog: unknown cell %q", cellName)
	}
	instName := p.next()
	if err := p.expect("("); err != nil {
		return err
	}
	conns := make(map[string]string)
	for p.peek() != ")" {
		if p.peek() == "," {
			p.next()
			continue
		}
		if err := p.expect("."); err != nil {
			return err
		}
		pin := p.next()
		if err := p.expect("("); err != nil {
			return err
		}
		net := p.next()
		if err := p.expect(")"); err != nil {
			return err
		}
		conns[pin] = net
	}
	p.next() // ")"
	if err := p.expect(";"); err != nil {
		return err
	}
	_, err := nl.AddInstance(instName, c, conns)
	return err
}
