package variation

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/extract"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

var lib = cell.NewLibrary(tech.NewFFET())

// web builds a deterministic pseudo-random reconvergent circuit (the
// sta-package property-test shape): flops feeding a gate DAG whose
// outputs the flops recapture.
func web(t *testing.T, nFlops, nGates int, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New(fmt.Sprintf("mcweb%d", seed), lib)
	nl.AddPort("clk", netlist.In)
	nl.MarkClock("clk")
	nl.AddPort("pi0", netlist.In)
	nl.AddPort("pi1", netlist.In)
	pool := []string{"pi0", "pi1"}
	for i := 0; i < nFlops; i++ {
		pool = append(pool, fmt.Sprintf("q%d", i))
	}
	for g := 0; g < nGates; g++ {
		out := fmt.Sprintf("g%d", g)
		a := pool[rng.Intn(len(pool))]
		if rng.Intn(3) == 0 {
			nl.MustAdd("inv"+out, lib.MustCell("INVD1"), map[string]string{"I": a, "ZN": out})
		} else {
			b := pool[rng.Intn(len(pool))]
			nl.MustAdd("nd"+out, lib.MustCell("NAND2D1"), map[string]string{"A1": a, "A2": b, "ZN": out})
		}
		pool = append(pool, out)
	}
	for i := 0; i < nFlops; i++ {
		d := pool[2+nFlops+rng.Intn(nGates)]
		nl.MustAdd(fmt.Sprintf("ff%d", i), lib.MustCell("DFFD1"),
			map[string]string{"D": d, "CP": "clk", "Q": fmt.Sprintf("q%d", i)})
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// testBasis builds an analyzed basis over a synthetic circuit with
// pseudo-random RC and per-side wirelen splits, returning the netlist
// alongside so tests can build fresh reference engines.
func testBasis(t *testing.T, seed int64) (*Basis, *netlist.Netlist) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := web(t, 6, 40, seed)
	clk := make([]float64, len(nl.Instances))
	for i := range clk {
		clk[i] = 8 * rng.Float64()
	}
	rc := make([]*extract.NetRC, len(nl.Nets))
	fw := make([]int64, len(nl.Nets))
	bw := make([]int64, len(nl.Nets))
	for _, n := range nl.Nets {
		if n.IsClock {
			continue
		}
		el := make([]float64, len(n.Sinks))
		for j := range el {
			el[j] = 2 + 25*rng.Float64()
		}
		wl := int64(500 + rng.Intn(8000))
		fw[n.Seq] = int64(float64(wl) * rng.Float64())
		bw[n.Seq] = wl - fw[n.Seq]
		rc[n.Seq] = &extract.NetRC{
			Name:       n.Name,
			TotalCapFF: 2 + 10*rng.Float64(),
			WireCapFF:  0.2 + 4*rng.Float64(),
			ElmorePs:   el,
			WirelenNm:  wl,
		}
	}
	eng, err := sta.NewEngine(nl)
	if err != nil {
		t.Fatal(err)
	}
	opt := sta.DefaultOptions()
	var res sta.Result
	if err := eng.AnalyzeInto(&res, sta.Input{NetRC: rc, ClockArrivalPs: clk}, opt); err != nil {
		t.Fatal(err)
	}
	return &Basis{
		Engine:         eng,
		NetRC:          rc,
		ClockArrivalPs: clk,
		STAOpt:         opt,
		// Slightly infeasible target so TNS is nonzero and both tails of
		// the distribution are exercised.
		PeriodPs:       res.MinPeriodPs * 0.99,
		FrontWirelenNm: fw,
		BackWirelenNm:  bw,
	}, nl
}

// TestStudyDeterministicAcrossWorkers pins the headline determinism
// contract: for a fixed seed, the per-sample arrays and every summary
// statistic are bit-identical for any worker count.
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	b, _ := testBasis(t, 7)
	opt := Options{Samples: 257, Seed: 42, FloorFF: 0.1}
	opt.Workers = 1
	ref, err := Study(context.Background(), b, opt)
	if err != nil {
		t.Fatal(err)
	}
	varies := false
	for _, v := range ref.WNSPs {
		if v != ref.WNSPs[0] {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("degenerate study: every sample produced the same WNS")
	}
	for _, workers := range []int{2, 3, 7} {
		opt.Workers = workers
		got, err := Study(context.Background(), b, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.WNSPs {
			if math.Float64bits(got.WNSPs[i]) != math.Float64bits(ref.WNSPs[i]) ||
				math.Float64bits(got.TNSPs[i]) != math.Float64bits(ref.TNSPs[i]) {
				t.Fatalf("workers=%d: sample %d (%v, %v) != workers=1 (%v, %v)",
					workers, i, got.WNSPs[i], got.TNSPs[i], ref.WNSPs[i], ref.TNSPs[i])
			}
		}
		if !sameScalars(got, ref) {
			t.Fatalf("workers=%d: summary %+v != workers=1 %+v", workers, got, ref)
		}
	}
}

// sameScalars compares every scalar summary statistic bit-exactly (the
// per-sample slices are compared element-wise by the caller).
func sameScalars(a, b *Summary) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Samples == b.Samples &&
		eq(a.MeanWNSPs, b.MeanWNSPs) && eq(a.SigmaWNSPs, b.SigmaWNSPs) &&
		eq(a.P50WNSPs, b.P50WNSPs) && eq(a.P95WNSPs, b.P95WNSPs) && eq(a.P997WNSPs, b.P997WNSPs) &&
		eq(a.MeanTNSPs, b.MeanTNSPs) && eq(a.SigmaTNSPs, b.SigmaTNSPs) &&
		eq(a.P50TNSPs, b.P50TNSPs) && eq(a.P95TNSPs, b.P95TNSPs) && eq(a.P997TNSPs, b.P997TNSPs)
}

// TestSampleMatchesFullAnalyze is the correctness property of the MC
// inner loop: after each chained sample on one worker, the worker
// engine's slack stats must be bit-identical to a fresh engine running a
// full analysis of that worker's current perturbed view — across random
// samples, the restore path (nets falling out of the perturbed set
// between consecutive samples), and a re-forked worker engine mid-chain.
func TestSampleMatchesFullAnalyze(t *testing.T) {
	b, nl := testBasis(t, 11)
	s, err := NewSampler(b, Options{Samples: 64, Workers: 1, Seed: 9, FloorFF: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Candidates() == 0 {
		t.Fatal("no screenable candidates")
	}
	w := s.workers[0]
	sawPerturbed, sawRestored := false, false
	inSet := func(set []int32, v int32) bool {
		for _, x := range set {
			if x == v {
				return true
			}
		}
		return false
	}
	for i := 0; i < 64; i++ {
		if i == 32 {
			w.eng = w.eng.Fork()
		}
		// After sample() the current perturbed-net list lives in w.prev
		// (buffers are swapped at the end of each sample), so snapshot it
		// before the call to detect nets that fall out and get restored.
		before := append([]int32(nil), w.prev...)
		if err := s.sample(context.Background(), w, i); err != nil {
			t.Fatal(err)
		}
		if len(w.prev) > 0 {
			sawPerturbed = true
		}
		for _, seq := range before {
			if !inSet(w.prev, seq) {
				sawRestored = true
			}
		}
		fresh, err := sta.NewEngine(nl)
		if err != nil {
			t.Fatal(err)
		}
		var res sta.Result
		in := sta.Input{NetRC: w.view, ClockArrivalPs: b.ClockArrivalPs}
		if err := fresh.AnalyzeInto(&res, in, b.STAOpt); err != nil {
			t.Fatal(err)
		}
		wantW, wantT := fresh.SlackStats(b.PeriodPs)
		if math.Float64bits(s.wns[i]) != math.Float64bits(wantW) ||
			math.Float64bits(s.tns[i]) != math.Float64bits(wantT) {
			t.Fatalf("sample %d (perturbed=%d, before=%d): incremental (%v, %v) != full (%v, %v)",
				i, len(w.prev), len(before), s.wns[i], s.tns[i], wantW, wantT)
		}
	}
	if !sawPerturbed || !sawRestored {
		t.Fatalf("weak coverage: perturbed=%v restored=%v — tune test sigma/floor", sawPerturbed, sawRestored)
	}
}

// TestAllocsPerRunZero pins the steady-state inner loop at zero
// allocations per sample once the sampler is warmed (mirroring
// BenchmarkSTAReuse's contract).
func TestAllocsPerRunZero(t *testing.T) {
	b, _ := testBasis(t, 13)
	s, err := NewSampler(b, Options{Samples: 512, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := s.workers[0]
	ctx := context.Background()
	// Warm: one pass over a few samples seeds the engine scratch and the
	// perturbation prefix bookkeeping.
	for i := 0; i < 8; i++ {
		if err := s.sample(ctx, w, i); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		if err := s.sample(ctx, w, i%512); err != nil {
			t.Fatal(err)
		}
		i++
	}); allocs != 0 {
		t.Errorf("sample allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStudyCancellation: a cancelled context aborts the run with the
// cause in the chain.
func TestStudyCancellation(t *testing.T) {
	b, _ := testBasis(t, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Study(ctx, b, Options{Samples: 128, Workers: 2}); err == nil {
		t.Fatal("cancelled study returned nil error")
	}
}

// TestQuantileReduction pins the exact order-statistic definition on a
// hand-checkable array.
func TestQuantileReduction(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i) // sorted ascending: worst (smallest) first
	}
	if got := worstQuantile(vals, 0.95); got != 4 {
		t.Errorf("P95 = %v, want 4 (5th-worst of 100)", got)
	}
	if got := worstQuantile(vals, 0.997); got != 0 {
		t.Errorf("P99.7 = %v, want 0 (worst of 100)", got)
	}
	if got := worstQuantile(vals, 0.50); got != 49 {
		t.Errorf("P50 = %v, want 49", got)
	}
	mean, sigma := meanSigma(vals)
	if math.Abs(mean-49.5) > 1e-12 {
		t.Errorf("mean = %v, want 49.5", mean)
	}
	if math.Abs(sigma-math.Sqrt(833.25)) > 1e-9 {
		t.Errorf("sigma = %v", sigma)
	}
}
