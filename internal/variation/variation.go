// Package variation implements Monte Carlo overlay-variation STA: the
// workload of PAPERS.md's "Overlay-aware Variation Study of Flip FET and
// Benchmark with CFET", which re-times one placed-and-routed design
// thousands of times under sampled per-side overlay and parasitic
// perturbations.
//
// Each sample draws a per-side overlay shift and parasitic multiplier
// from seeded per-sample PRNG streams, perturbs a scratch RC view
// (scaling each affected net's wire capacitance and Elmore delays by its
// side-weighted multiplier; pin capacitance is overlay-independent), and
// re-times only the perturbed fanout cones via sta.Engine.ReanalyzeState
// on a per-worker engine fork. The screening floor keeps the per-sample
// dirty set to the nets whose wire cap actually moves by a material
// amount: candidates are sorted by wire cap once, a conservative prefix
// bounds the scan, and a per-net check of the sample's side-blended
// scale picks the perturbed subset inside it.
//
// The steady-state inner loop is allocation-free, and results are
// bit-identical for any worker count: sample i's perturbation depends
// only on (seed, i), per-sample WNS/TNS land in index-addressed arrays,
// and the summary reduces them in sample order.
package variation

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/extract"
	"repro/internal/sta"
)

// Options configures a study. Zero values pick defaults.
type Options struct {
	// Samples is the number of Monte Carlo samples (default 4096).
	Samples int
	// Workers is the number of sampling goroutines, each owning a forked
	// engine and a private RC scratch view (default GOMAXPROCS).
	Workers int
	// Seed keys the per-sample PRNG streams: sample i draws from a
	// splitmix64 stream derived from (Seed, i) alone, so results are
	// reproducible and independent of scheduling (default 1).
	Seed uint64
	// SigmaNm is the per-side overlay-shift sigma in nm (default 2).
	SigmaNm float64
	// CapSensPerNm is the relative wire-cap increase per nm of absolute
	// overlay shift on a side (default 0.02): misalignment tightens the
	// effective wire-to-wire spacing on that side of the wafer.
	CapSensPerNm float64
	// ParasiticSigma is the sigma of the per-side lognormal parasitic
	// multiplier stacked on the overlay term (default 0.05).
	ParasiticSigma float64
	// FloorFF screens the dirty set: a net is perturbed only when its
	// side-blended scale actually moves its wire cap by at least this
	// floor (default 0.40 fF). Nets below the floor keep their base view
	// bit-identically, which is what holds the per-sample dirty set to
	// the nets whose perturbation is material.
	//
	// The floor is the study's speed/fidelity dial: lowering it admits
	// smaller-cap nets into the perturbed set, recovering more of the
	// distribution's sigma at the cost of larger re-timed cones. On the
	// quick-scale RISC-V core, 0.40 sustains >10k samples/sec while 0.25
	// retains nearly the full-fidelity sigma at ~3x the cost — the exp
	// suite's variation tables use the latter.
	FloorFF float64
}

// DefaultOptions returns the study defaults.
func DefaultOptions() Options {
	return Options{
		Samples:        4096,
		Workers:        runtime.GOMAXPROCS(0),
		Seed:           1,
		SigmaNm:        2,
		CapSensPerNm:   0.02,
		ParasiticSigma: 0.05,
		FloorFF:        0.40,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Samples <= 0 {
		o.Samples = d.Samples
	}
	if o.Workers <= 0 {
		o.Workers = d.Workers
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.SigmaNm == 0 {
		o.SigmaNm = d.SigmaNm
	}
	if o.CapSensPerNm == 0 {
		o.CapSensPerNm = d.CapSensPerNm
	}
	if o.ParasiticSigma == 0 {
		o.ParasiticSigma = d.ParasiticSigma
	}
	if o.FloorFF == 0 {
		o.FloorFF = d.FloorFF
	}
	return o
}

// Basis is the timing checkpoint a study perturbs around: the analyzed
// engine (its retained state must match NetRC and ClockArrivalPs under
// STAOpt — core.Flow.VariationBasis hands exactly that out of the
// StageSTA checkpoint), the base extraction view, and the per-net
// per-side routed lengths that weight the two overlay axes.
type Basis struct {
	// Engine holds the base view's full propagation state. The study
	// forks it per worker and never mutates it; the caller must not run
	// analyses on it concurrently with NewSampler.
	Engine *sta.Engine
	// NetRC is the base extraction database, net-Seq indexed.
	NetRC []*extract.NetRC
	// ClockArrivalPs and STAOpt are the analysis conditions the engine's
	// retained state was computed under.
	ClockArrivalPs []float64
	STAOpt         sta.Options
	// PeriodPs is the target clock period slacks are taken against.
	PeriodPs float64
	// FrontWirelenNm/BackWirelenNm are per-net routed lengths by side,
	// net-Seq indexed; they weight each net's sensitivity to the two
	// sides' overlay shifts. A net absent from both is treated as
	// front-only.
	FrontWirelenNm []int64
	BackWirelenNm  []int64
}

// Summary is the outcome of a study. Quantiles are taken from the worst
// side of the distribution: PqWNSPs is the WNS met or beaten by fraction
// q of the samples (the 1-q worst-tail bound), and likewise for TNS.
// All reductions run in sample order over the index-addressed per-sample
// arrays, so a Summary is bit-identical for any worker count.
type Summary struct {
	Samples int
	// WNSPs and TNSPs are the per-sample results, sample-indexed.
	WNSPs, TNSPs []float64

	MeanWNSPs, SigmaWNSPs         float64
	P50WNSPs, P95WNSPs, P997WNSPs float64
	MeanTNSPs, SigmaTNSPs         float64
	P50TNSPs, P95TNSPs, P997TNSPs float64
}

// Study runs a Monte Carlo study over a basis: NewSampler + Run.
func Study(ctx context.Context, b *Basis, opt Options) (*Summary, error) {
	s, err := NewSampler(b, opt)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}

// candidate is one screenable net, precomputed at sampler build time.
type candidate struct {
	seq       int32
	wireCapFF float64 // base wire cap — the screening magnitude
	frontFrac float64 // fraction of routed length on the front side
}

// Sampler is a reusable study: workers (forked engines, RC scratch,
// perturbed-net arenas) are built once, and Run may be called repeatedly
// (not concurrently with itself). Reuse is what lets a benchmark measure
// the steady-state sampling loop alone.
type Sampler struct {
	opt   Options
	basis *Basis

	cands   []candidate // sorted by wireCapFF descending (ties: seq asc)
	candCap []float64   // cands[i].wireCapFF, for threshold search
	candSeq []int32     // cands[i].seq — every dirty set is a prefix of this

	wns, tns []float64 // per-sample results, index-addressed

	workers []*worker
}

// worker owns one shard's mutable state. Its engine basis is always its
// own previous sample's view, so the dirty set handed to ReanalyzeState
// is the union of the nets perturbed now and the nets perturbed last
// time — both ascending candidate-index lists, merged per sample.
type worker struct {
	eng   *sta.Engine
	view  []*extract.NetRC // base pointers, except the perturbed nets
	pert  []extract.NetRC  // perturbed copies, aligned with cands
	cur   []int32          // scratch for this sample's perturbed candidate indices
	prev  []int32          // previous sample's perturbed candidate indices, ascending
	dirty []int32          // scratch for the merged dirty net-Seq list
}

// NewSampler validates the basis, screens and sorts the candidate nets,
// and builds the per-worker engines and scratch arenas.
func NewSampler(b *Basis, opt Options) (*Sampler, error) {
	if b == nil || b.Engine == nil || len(b.NetRC) == 0 {
		return nil, fmt.Errorf("variation: basis needs an analyzed engine and an RC view")
	}
	if b.PeriodPs <= 0 {
		return nil, fmt.Errorf("variation: basis needs a positive target period")
	}
	opt = opt.withDefaults()
	s := &Sampler{opt: opt, basis: b}

	for seq, rc := range b.NetRC {
		if rc == nil || rc.WireCapFF <= 0 {
			continue
		}
		var fw, bw int64
		if seq < len(b.FrontWirelenNm) {
			fw = b.FrontWirelenNm[seq]
		}
		if seq < len(b.BackWirelenNm) {
			bw = b.BackWirelenNm[seq]
		}
		frac := 1.0
		if fw+bw > 0 {
			frac = float64(fw) / float64(fw+bw)
		}
		s.cands = append(s.cands, candidate{seq: int32(seq), wireCapFF: rc.WireCapFF, frontFrac: frac})
	}
	sort.Slice(s.cands, func(i, j int) bool {
		if s.cands[i].wireCapFF != s.cands[j].wireCapFF {
			return s.cands[i].wireCapFF > s.cands[j].wireCapFF
		}
		return s.cands[i].seq < s.cands[j].seq
	})
	s.candCap = make([]float64, len(s.cands))
	s.candSeq = make([]int32, len(s.cands))
	totalSinks := 0
	for i, c := range s.cands {
		s.candCap[i] = c.wireCapFF
		s.candSeq[i] = c.seq
		totalSinks += len(b.NetRC[c.seq].ElmorePs)
	}

	s.wns = make([]float64, opt.Samples)
	s.tns = make([]float64, opt.Samples)

	nw := opt.Workers
	if nw > opt.Samples {
		nw = opt.Samples
	}
	s.workers = make([]*worker, nw)
	for wi := range s.workers {
		w := &worker{
			eng:   b.Engine.Fork(),
			view:  append([]*extract.NetRC(nil), b.NetRC...),
			pert:  make([]extract.NetRC, len(s.cands)),
			cur:   make([]int32, 0, len(s.cands)),
			prev:  make([]int32, 0, len(s.cands)),
			dirty: make([]int32, 0, len(s.cands)),
		}
		elm := make([]float64, totalSinks)
		carved := 0
		for i, c := range s.cands {
			base := b.NetRC[c.seq]
			n := len(base.ElmorePs)
			w.pert[i] = *base
			w.pert[i].ElmorePs = elm[carved : carved+n : carved+n]
			carved += n
		}
		// Warm the fork's reanalysis scratch with an empty-dirty call, so
		// the first real sample is already in the allocation-free steady
		// state.
		in := sta.Input{NetRC: w.view, ClockArrivalPs: b.ClockArrivalPs}
		if err := w.eng.ReanalyzeStateCtx(context.Background(), in, b.STAOpt, nil); err != nil {
			return nil, err
		}
		s.workers[wi] = w
	}
	return s, nil
}

// Candidates reports how many nets survive screening eligibility (have
// wire cap at all); the per-sample dirty set is a floor-dependent subset
// of them.
func (s *Sampler) Candidates() int { return len(s.cands) }

// Run executes the study: workers sample disjoint contiguous index
// ranges, then the per-sample arrays are reduced in sample order. The
// Summary (and its per-sample arrays) is freshly allocated per call; the
// workers' engines and scratch are reused across calls.
func (s *Sampler) Run(ctx context.Context) (*Summary, error) {
	n := s.opt.Samples
	nw := len(s.workers)
	chunk := (n + nw - 1) / nw
	var wg sync.WaitGroup
	errs := make([]error, nw)
	for wi, w := range s.workers {
		lo := wi * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w *worker, lo, hi int, errp *error) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if i&63 == 0 && ctx.Err() != nil {
					*errp = ctx.Err()
					return
				}
				if err := s.sample(ctx, w, i); err != nil {
					*errp = err
					return
				}
			}
		}(w, lo, hi, &errs[wi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s.summarize(), nil
}

// sample perturbs worker w's RC view for sample i and re-times the dirty
// cones. Steady-state allocation-free: perturbations write into
// preallocated per-candidate copies, the perturbed/dirty lists live in
// preallocated worker scratch, and the engine's state-only reanalysis
// reuses its warmed scratch.
func (s *Sampler) sample(ctx context.Context, w *worker, i int) error {
	r := rngFor(s.opt.Seed, i)
	shiftF, shiftB := r.normPair()
	parF, parB := r.normPair()
	o := &s.opt
	mF := (1 + o.CapSensPerNm*math.Abs(shiftF*o.SigmaNm)) * math.Exp(o.ParasiticSigma*parF)
	mB := (1 + o.CapSensPerNm*math.Abs(shiftB*o.SigmaNm)) * math.Exp(o.ParasiticSigma*parB)
	dev := math.Max(math.Abs(mF-1), math.Abs(mB-1))
	kMax := 0
	if dev > 0 {
		thr := o.FloorFF / dev
		// candCap is sorted descending: beyond this prefix even the worse
		// of the two side multipliers cannot move a net's wire cap by the
		// floor, so the per-net screen below never scans further.
		kMax = sort.Search(len(s.candCap), func(j int) bool { return s.candCap[j] < thr })
	}

	// Per-net screen over the conservative prefix: a net is perturbed only
	// when its own side-blended scale actually moves its wire cap by the
	// floor. Nets whose front/back deviations cancel drop out here, which
	// is what keeps the re-timed cones to the nets that matter.
	base := s.basis.NetRC
	cur := w.cur[:0]
	for j := 0; j < kMax; j++ {
		c := &s.cands[j]
		scale := 1 + c.frontFrac*(mF-1) + (1-c.frontFrac)*(mB-1)
		if math.Abs(scale-1)*c.wireCapFF < o.FloorFF {
			continue
		}
		cur = append(cur, int32(j))
		rc := base[c.seq]
		p := &w.pert[j]
		wire := rc.WireCapFF * scale
		p.WireCapFF = wire
		p.TotalCapFF = rc.TotalCapFF - rc.WireCapFF + wire
		pe, be := p.ElmorePs, rc.ElmorePs
		for t := range be {
			pe[t] = be[t] * scale
		}
		w.view[c.seq] = p
	}

	// Merge this sample's perturbed list with the previous one (both
	// ascending): nets that fell out revert to the base view
	// bit-identically, and the union is the dirty set — every net whose
	// RC differs between the worker engine's basis (last sample's view)
	// and the current view.
	dirty := w.dirty[:0]
	pi, ci := 0, 0
	for pi < len(w.prev) || ci < len(cur) {
		switch {
		case ci >= len(cur) || (pi < len(w.prev) && w.prev[pi] < cur[ci]):
			j := w.prev[pi]
			pi++
			w.view[s.candSeq[j]] = base[s.candSeq[j]]
			dirty = append(dirty, s.candSeq[j])
		case pi >= len(w.prev) || cur[ci] < w.prev[pi]:
			dirty = append(dirty, s.candSeq[cur[ci]])
			ci++
		default:
			dirty = append(dirty, s.candSeq[cur[ci]])
			pi++
			ci++
		}
	}
	w.prev, w.cur = cur, w.prev[:0]
	w.dirty = dirty[:0]

	in := sta.Input{NetRC: w.view, ClockArrivalPs: s.basis.ClockArrivalPs}
	if err := w.eng.ReanalyzeStateCtx(ctx, in, s.basis.STAOpt, dirty); err != nil {
		return err
	}
	s.wns[i], s.tns[i] = w.eng.SlackStats(s.basis.PeriodPs)
	return nil
}

// summarize reduces the per-sample arrays in sample order. The quantiles
// are exact order statistics of the full sample multiset, so they (like
// the Welford mean/sigma, which runs strictly in sample index order) are
// independent of which worker produced which sample.
func (s *Sampler) summarize() *Summary {
	out := &Summary{
		Samples: s.opt.Samples,
		WNSPs:   append([]float64(nil), s.wns...),
		TNSPs:   append([]float64(nil), s.tns...),
	}
	out.MeanWNSPs, out.SigmaWNSPs = meanSigma(s.wns)
	out.MeanTNSPs, out.SigmaTNSPs = meanSigma(s.tns)
	sw := append([]float64(nil), s.wns...)
	st := append([]float64(nil), s.tns...)
	sort.Float64s(sw)
	sort.Float64s(st)
	out.P50WNSPs = worstQuantile(sw, 0.50)
	out.P95WNSPs = worstQuantile(sw, 0.95)
	out.P997WNSPs = worstQuantile(sw, 0.997)
	out.P50TNSPs = worstQuantile(st, 0.50)
	out.P95TNSPs = worstQuantile(st, 0.95)
	out.P997TNSPs = worstQuantile(st, 0.997)
	return out
}

// meanSigma is Welford's algorithm in sample order (population sigma).
func meanSigma(v []float64) (mean, sigma float64) {
	if len(v) == 0 {
		return 0, 0
	}
	m2 := 0.0
	for i, x := range v {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
	}
	return mean, math.Sqrt(m2 / float64(len(v)))
}

// worstQuantile returns, from an ascending-sorted sample array (worst
// values first for slack metrics), the value met or beaten by fraction q
// of the samples: the exact (1-q) worst-tail order statistic.
func worstQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	// Nudge below the exact rank before ceiling so binary fractions like
	// (1-0.95)*100 = 5.000000000000004 don't round an exact rank upward.
	idx := int(math.Ceil((1-q)*float64(len(sorted))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// rng is a splitmix64 stream; rngFor derives an independent stream per
// (seed, sample) pair, so a sample's draws never depend on scheduling.
type rng struct{ s uint64 }

func rngFor(seed uint64, sample int) rng {
	return rng{s: seed + 0x9E3779B97F4A7C15*uint64(sample+1)}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// normPair draws two independent standard gaussians (Box-Muller).
func (r *rng) normPair() (float64, float64) {
	u1 := (float64(r.next()>>11) + 1) / (1 << 53) // (0,1]
	u2 := float64(r.next()>>11) / (1 << 53)       // [0,1)
	rad := math.Sqrt(-2 * math.Log(u1))
	sin, cos := math.Sincos(2 * math.Pi * u2)
	return rad * cos, rad * sin
}
