package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/riscv"
	"repro/internal/tech"
)

// faultSpecs is the sweep the fault-injection tests hammer: a three-point
// back-pin-fraction group (shared synth root + placed-and-clocked prefix,
// leader + two leaf forks) plus one CFET singleton — together they cross
// every exp.* fault site and, through the flows they launch, every
// core.stage.* site.
func faultSpecs() []runSpec {
	var specs []runSpec
	for _, bp := range []float64{0.5, 0.3, 0.16} {
		cfg := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.70)
		cfg.BackPinFraction = bp
		cfg.Name = fmt.Sprintf("bp%.2f", bp)
		specs = append(specs, runSpec{arch: tech.FFET, cfg: cfg})
	}
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, 0.70)
	cfg.Name = "cfet12"
	specs = append(specs, runSpec{arch: tech.CFET, cfg: cfg})
	return specs
}

// sameOutcome is the bit-identity proxy the retry checks compare on: the
// PPA numbers a table would render. The flow is deterministic, so a clean
// rerun must reproduce these exactly — any drift means a fault leaked
// state into a cache or session.
func sameOutcome(a, b *core.FlowResult) bool {
	return a.Valid == b.Valid && a.Reason == b.Reason &&
		a.AchievedFreqGHz == b.AchievedFreqGHz && a.PowerUW == b.PowerUW &&
		a.WirelenFrontUm == b.WirelenFrontUm && a.WirelenBackUm == b.WirelenBackUm
}

// TestFaultScheduleSweep is the property test of ISSUE 6: sweep hundreds
// of seeded deterministic fault schedules over a shared-prefix sweep and
// require, for every schedule:
//
//   - runAll always returns a full-length, nil-free result slice;
//   - every failed point carries exactly one classified taxonomy error,
//     and the sweep's joined error contains each of them;
//   - the sweep errors iff some point failed; a schedule that fired
//     nothing yields the baseline tables exactly;
//   - a clean retry on the SAME suite reproduces the no-fault baseline
//     bit-identically — no cache poisoning, no poisoned synth roots;
//   - the test ends with no leaked goroutines.
func TestFaultScheduleSweep(t *testing.T) {
	tmpl := quickSuite(t)
	// An 8-register core keeps a full flow run cheap enough to afford
	// hundreds of schedules.
	nlF, _, err := riscv.Generate(tmpl.FFET, riscv.Config{Name: "rv8", Registers: 8})
	if err != nil {
		t.Fatal(err)
	}
	nlC, err := nlF.Remap(tmpl.CFET)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Suite {
		return &Suite{
			Scale:       Quick,
			FFET:        tmpl.FFET,
			CFET:        tmpl.CFET,
			ffetNl:      nlF,
			cfetNl:      nlC,
			results:     make(map[RunKey]*core.FlowResult),
			synthRoots:  make(map[SynthClass]*synthRoot),
			MaxParallel: 4,
		}
	}
	specs := faultSpecs()
	baseline, err := fresh().runAll(specs)
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	goroutinesBefore := runtime.NumGoroutine()

	seeds := 200
	retryEvery := 5
	if testing.Short() {
		seeds, retryEvery = 24, 3
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		s := fresh()
		// Alternate sharing modes so the scratch path's containment and
		// site are swept too.
		s.DisablePrefixSharing = seed%4 == 3
		ctx, cancel := context.WithCancel(context.Background())
		s.Ctx = ctx
		sched := faultinject.New(seed,
			faultinject.WithRate(2+seed%8),
			faultinject.WithCancelFunc(cancel))
		deactivate := faultinject.Activate(sched)
		rs, err := s.runAll(specs)
		deactivate()
		cancel()

		if len(rs) != len(specs) {
			t.Fatalf("seed %d: %d results for %d specs", seed, len(rs), len(specs))
		}
		failed := 0
		for i, r := range rs {
			if r == nil {
				t.Fatalf("seed %d: nil result at %d", seed, i)
			}
			if r.Err == nil {
				continue
			}
			failed++
			if c := ErrClass(r.Err); c == "unclassified" {
				t.Errorf("seed %d point %d: unclassified error %v", seed, i, r.Err)
			}
			if !errors.Is(err, r.Err) {
				t.Errorf("seed %d point %d: error missing from sweep join", seed, i)
			}
			if r.Valid {
				t.Errorf("seed %d point %d: failed point marked valid", seed, i)
			}
		}
		if (err != nil) != (failed > 0) {
			t.Errorf("seed %d: sweep err %v with %d failed points", seed, err, failed)
		}
		if len(sched.Fired()) == 0 {
			for i, r := range rs {
				if !sameOutcome(r, baseline[i]) {
					t.Errorf("seed %d (no faults fired) point %d: %+v != baseline", seed, i, r)
				}
			}
		}
		if seed%uint64(retryEvery) != 0 {
			continue
		}
		// Clean retry on the same suite: failed points rerun from scratch,
		// healthy memo entries are reused, and the output is bit-identical
		// to the never-faulted baseline.
		s.Ctx = nil
		rs2, err2 := s.runAll(specs)
		if err2 != nil {
			t.Errorf("seed %d: clean retry failed: %v", seed, err2)
			continue
		}
		for i, r := range rs2 {
			if r.Err != nil {
				t.Errorf("seed %d retry point %d: error survived deactivation: %v", seed, i, r.Err)
			} else if !sameOutcome(r, baseline[i]) {
				t.Errorf("seed %d retry point %d differs from baseline", seed, i)
			}
		}
	}

	// Every pool goroutine must have drained; give stragglers a moment.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > goroutinesBefore {
		t.Errorf("goroutines leaked: %d before sweep, %d after", goroutinesBefore, g)
	}
}

// TestLeafFaultErrorCells pins the table-facing containment contract
// deterministically: a fault that kills only leaf forks leaves the group
// leader's numbers in the table, renders classified error cells for the
// dead siblings, and clears completely on the next sweep.
func TestLeafFaultErrorCells(t *testing.T) {
	s := quickSuite(t)
	specs := faultSpecs()[:3]
	deactivate := faultinject.Activate(faultinject.New(11,
		faultinject.WithRate(1),
		faultinject.WithKinds(faultinject.Error),
		faultinject.WithSites("exp.leaf")))
	rs, err := s.runAll(specs)
	deactivate()
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Err != nil {
		t.Fatalf("leader point died off an exp.leaf fault: %v", rs[0].Err)
	}
	if err == nil {
		t.Fatal("sweep with dead leaves reported no error")
	}
	for i := 1; i < 3; i++ {
		if rs[i].Err == nil {
			t.Fatalf("leaf %d survived a rate-1 leaf fault", i)
		}
		if !errors.Is(rs[i].Err, faultinject.ErrInjected) {
			t.Errorf("leaf %d: injected sentinel lost: %v", i, rs[i].Err)
		}
		if got := validCell(rs[i]); got != "error: stage-failed" {
			t.Errorf("leaf %d valid cell = %q", i, got)
		}
		if got := numCell(rs[i], "1.23"); got != "-" {
			t.Errorf("leaf %d numeric cell = %q, want -", i, got)
		}
		if !errors.Is(err, rs[i].Err) {
			t.Errorf("leaf %d error missing from sweep join", i)
		}
	}
	// Error placeholders are never memoized: the next sweep reruns only
	// the dead leaves and reuses the leader's memo entry by pointer.
	rs2, err2 := s.runAll(specs)
	if err2 != nil {
		t.Fatalf("post-fault sweep: %v", err2)
	}
	if rs2[0] != rs[0] {
		t.Error("leader result not reused from memo")
	}
	for i := 1; i < 3; i++ {
		if rs2[i].Err != nil {
			t.Errorf("leaf %d still failing after deactivation: %v", i, rs2[i].Err)
		}
	}
}
