package exp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/tech"
	"repro/internal/variation"
)

// ErrClass names the taxonomy kind of a classified sweep-point error,
// for compact table cells.
func ErrClass(err error) string {
	switch {
	case errors.Is(err, core.ErrCancelled):
		return "cancelled"
	case errors.Is(err, core.ErrStagePanic):
		return "panic"
	case errors.Is(err, core.ErrInvalidConfig):
		return "invalid-config"
	case errors.Is(err, core.ErrSessionDead):
		return "session-dead"
	case errors.Is(err, core.ErrForkRace):
		return "fork-race"
	case errors.Is(err, core.ErrStageFailed):
		return "stage-failed"
	}
	return "unclassified"
}

// validCell renders a result's validity column: the usual true/false, or
// the error class when the point is a failure placeholder.
func validCell(r *core.FlowResult) string {
	if r.Err != nil {
		return "error: " + ErrClass(r.Err)
	}
	return fmt.Sprintf("%v", r.Valid)
}

// numCell blanks a metric cell when its point died: a dead point's
// zero-valued metrics would otherwise read as real data.
func numCell(r *core.FlowResult, rendered string) string {
	if r.Err != nil {
		return "-"
	}
	return rendered
}

// Fig04 reproduces the standard-cell area comparison (3.5T FFET vs 4T
// CFET, 28 cells).
func (s *Suite) Fig04() *Table {
	t := &Table{
		ID:     "fig04",
		Title:  "Standard cell area: 3.5T FFET vs 4T CFET",
		Header: []string{"cell", "FFET um2", "CFET um2", "gain %"},
		Notes: []string{
			"paper: ~12.5% for plain cells; extra gain for MUX/DFF (Split Gate); <=0 for AOI22/OAI22 (extra Drain Merge)",
		},
	}
	for _, name := range s.FFET.CellNames() {
		f := s.FFET.Cell(name)
		c := s.CFET.Cell(name)
		gain := 100 * (1 - f.AreaUm2(s.FFET.Stack)/c.AreaUm2(s.CFET.Stack))
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.4f", f.AreaUm2(s.FFET.Stack)),
			fmt.Sprintf("%.4f", c.AreaUm2(s.CFET.Stack)),
			pc(gain),
		})
	}
	return t
}

// Table1 reproduces the library characterization KPI diffs for INV/BUF
// D1/D2/D4.
func (s *Suite) Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Library characterization: FFET KPI diff w.r.t. CFET",
		Header: []string{"KPI", "INVD1", "INVD2", "INVD4", "BUFD1", "BUFD2", "BUFD4"},
		Notes: []string{
			"paper trends: transition power ~parity on INV / clearly lower on BUF; timing better everywhere, fall > rise; leakage identical",
		},
	}
	cells := []string{"INVD1", "INVD2", "INVD4", "BUFD1", "BUFD2", "BUFD4"}
	row := func(kpi string, get func(name string, ffet bool) float64) {
		cols := []string{kpi}
		for _, cn := range cells {
			d := 100 * (get(cn, true)/get(cn, false) - 1)
			cols = append(cols, pc(d))
		}
		t.Rows = append(t.Rows, cols)
	}
	at := func(name string, ffet bool) (slew, load float64) {
		c := s.FFET.MustCell(name)
		return 20, float64(c.Drive)
	}
	row("Transition power", func(name string, ffet bool) float64 {
		lib := s.CFET
		if ffet {
			lib = s.FFET
		}
		sl, ld := at(name, ffet)
		a := lib.MustCell(name).Arc("I")
		return a.EnergyRise.Lookup(sl, ld) + a.EnergyFall.Lookup(sl, ld)
	})
	row("Leakage power", func(name string, ffet bool) float64 {
		lib := s.CFET
		if ffet {
			lib = s.FFET
		}
		return lib.MustCell(name).LeakageNW
	})
	row("Rise timing", func(name string, ffet bool) float64 {
		lib := s.CFET
		if ffet {
			lib = s.FFET
		}
		sl, ld := at(name, ffet)
		return lib.MustCell(name).Arc("I").DelayRise.Lookup(sl, ld)
	})
	row("Fall timing", func(name string, ffet bool) float64 {
		lib := s.CFET
		if ffet {
			lib = s.FFET
		}
		sl, ld := at(name, ffet)
		return lib.MustCell(name).Arc("I").DelayFall.Lookup(sl, ld)
	})
	row("Rise transition", func(name string, ffet bool) float64 {
		lib := s.CFET
		if ffet {
			lib = s.FFET
		}
		sl, ld := at(name, ffet)
		return lib.MustCell(name).Arc("I").SlewRise.Lookup(sl, ld)
	})
	row("Fall transition", func(name string, ffet bool) float64 {
		lib := s.CFET
		if ffet {
			lib = s.FFET
		}
		sl, ld := at(name, ffet)
		return lib.MustCell(name).Arc("I").SlewFall.Lookup(sl, ld)
	})
	return t
}

// Table2 dumps the design-rule metal stacks.
func (s *Suite) Table2() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Design rules: metal layer pitches (nm)",
		Header: []string{"layer", "4T CFET", "3.5T FFET"},
	}
	names := []string{"Poly", "BPR"}
	for i := 0; i <= tech.MaxMetal; i++ {
		names = append(names, fmt.Sprintf("FM%d", i))
	}
	for i := 0; i <= tech.MaxMetal; i++ {
		names = append(names, fmt.Sprintf("BM%d", i))
	}
	get := func(st *tech.Stack, name string) string {
		if name == "Poly" {
			return fmt.Sprintf("%d", tech.PolyPitchNm)
		}
		l, ok := st.Layer(name)
		if !ok {
			return "-"
		}
		suffix := ""
		if l.PDNOnly {
			suffix = " (PDN)"
		}
		return fmt.Sprintf("%d%s", l.PitchNm, suffix)
	}
	for _, n := range names {
		c := get(s.CFET.Stack, n)
		f := get(s.FFET.Stack, n)
		if c == "-" && f == "-" {
			continue
		}
		t.Rows = append(t.Rows, []string{n, c, f})
	}
	return t
}

// areaUtilSweep runs a utilization sweep for one configuration. The
// result slice always covers the full grid — dead points are failure
// placeholders — and the error joins whatever killed them.
func (s *Suite) areaUtilSweep(arch tech.Arch, pattern tech.Pattern, backPins float64, target float64) ([]*core.FlowResult, error) {
	var specs []runSpec
	for _, u := range s.utilSweep() {
		cfg := core.DefaultFlowConfig(pattern, target, u)
		cfg.BackPinFraction = backPins
		specs = append(specs, runSpec{arch, cfg})
	}
	return s.runAll(specs)
}

func maxValidUtil(results []*core.FlowResult) (float64, float64) {
	maxU, minArea := 0.0, math.Inf(1)
	for _, r := range results {
		if !r.Valid {
			continue
		}
		if r.Config.Utilization > maxU {
			maxU = r.Config.Utilization
			minArea = r.CoreAreaUm2
		}
	}
	return maxU, minArea
}

// Fig08a compares core area vs utilization: CFET vs FFET FM12BM12.
func (s *Suite) Fig08a() (*Table, error) {
	ffet, fErr := s.areaUtilSweep(tech.FFET, tech.Pattern{Front: 12, Back: 12}, 0.5, 1.5)
	cfet, cErr := s.areaUtilSweep(tech.CFET, tech.Pattern{Front: 12}, 0, 1.5)
	t := &Table{
		ID:     "fig08a",
		Title:  "Core area vs utilization: CFET vs FFET FM12BM12 (target 1.5 GHz)",
		Header: []string{"util %", "CFET um2", "CFET valid", "FFET um2", "FFET valid"},
	}
	for i := range ffet {
		t.Rows = append(t.Rows, []string{
			f1(ffet[i].Config.Utilization * 100),
			numCell(cfet[i], f1(cfet[i].CoreAreaUm2)), validCell(cfet[i]),
			numCell(ffet[i], f1(ffet[i].CoreAreaUm2)), validCell(ffet[i]),
		})
	}
	fu, fa := maxValidUtil(ffet)
	cu, ca := maxValidUtil(cfet)
	t.Notes = append(t.Notes,
		fmt.Sprintf("max util: FFET FM12BM12 %.0f%% (paper 86%%), CFET %.0f%%", fu*100, cu*100),
		fmt.Sprintf("min core area: FFET %.1f um2, CFET %.1f um2 -> %.1f%% reduction (paper -25.1%%)",
			fa, ca, 100*(1-fa/ca)))
	return t, errors.Join(fErr, cErr)
}

// Fig08b reports the core layouts at a common utilization (dimensions and
// per-side wire usage; the DEFs themselves are the layout artifact).
func (s *Suite) Fig08b() (*Table, error) {
	util := 0.84
	cfgF := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, util)
	cfgF.BackPinFraction = 0.5
	rf, err := s.Run(tech.FFET, cfgF)
	if err != nil {
		return nil, err
	}
	rc, err := s.Run(tech.CFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, util))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig08b",
		Title:  "Core layout at 84% utilization",
		Header: []string{"metric", "CFET", "FFET FM12BM12"},
	}
	t.Rows = append(t.Rows,
		[]string{"die W x H (um)", fmt.Sprintf("%.2f x %.2f", float64(rc.CoreW)/1000, float64(rc.CoreH)/1000),
			fmt.Sprintf("%.2f x %.2f", float64(rf.CoreW)/1000, float64(rf.CoreH)/1000)},
		[]string{"core area (um2)", f1(rc.CoreAreaUm2), f1(rf.CoreAreaUm2)},
		[]string{"front wire (um)", f1(rc.WirelenFrontUm), f1(rf.WirelenFrontUm)},
		[]string{"back wire (um)", f1(rc.WirelenBackUm), f1(rf.WirelenBackUm)},
		[]string{"power stripes", fmt.Sprintf("%d", len(rc.BackDEF.SpecialNets)), fmt.Sprintf("%d", len(rf.BackDEF.SpecialNets))},
		[]string{"valid", fmt.Sprintf("%v", rc.Valid), fmt.Sprintf("%v", rf.Valid)},
	)
	t.Notes = append(t.Notes, "paper: CFET 21.11x21.12 um vs FFET 18.54x18.47 um")
	return t, nil
}

// Fig08c compares core area vs utilization: CFET vs FFET FM12 (frontside
// signals only).
func (s *Suite) Fig08c() (*Table, error) {
	ffet, fErr := s.areaUtilSweep(tech.FFET, tech.Pattern{Front: 12}, 0, 1.5)
	cfet, cErr := s.areaUtilSweep(tech.CFET, tech.Pattern{Front: 12}, 0, 1.5)
	t := &Table{
		ID:     "fig08c",
		Title:  "Core area vs utilization: CFET vs FFET FM12 (single-sided signals)",
		Header: []string{"util %", "CFET um2", "CFET valid", "FFET um2", "FFET valid"},
	}
	for i := range ffet {
		t.Rows = append(t.Rows, []string{
			f1(ffet[i].Config.Utilization * 100),
			numCell(cfet[i], f1(cfet[i].CoreAreaUm2)), validCell(cfet[i]),
			numCell(ffet[i], f1(ffet[i].CoreAreaUm2)), validCell(ffet[i]),
		})
	}
	fu, fa := maxValidUtil(ffet)
	cu, ca := maxValidUtil(cfet)
	t.Notes = append(t.Notes,
		fmt.Sprintf("max util: FFET FM12 %.0f%% (paper 76%%), CFET %.0f%%", fu*100, cu*100),
		fmt.Sprintf("min area gain %.1f%% (paper -15.4%%)", 100*(1-fa/ca)))
	return t, errors.Join(fErr, cErr)
}

// Fig09 sweeps the synthesis target and reports power vs achieved
// frequency for CFET and FFET FM12 at 76% utilization.
func (s *Suite) Fig09() (*Table, error) {
	util := 0.76
	var specs []runSpec
	for _, tgt := range s.freqSweep() {
		specs = append(specs, runSpec{tech.CFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, tgt, util)})
		specs = append(specs, runSpec{tech.FFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, tgt, util)})
	}
	rs, sweepErr := s.runAll(specs)
	t := &Table{
		ID:     "fig09",
		Title:  "Power vs achieved frequency at 76% utilization: CFET vs FFET FM12",
		Header: []string{"target GHz", "CFET GHz", "CFET mW", "FFET GHz", "FFET mW"},
	}
	var cMax, fMax, cPwr, fPwr float64
	for i := 0; i < len(rs); i += 2 {
		c, f := rs[i], rs[i+1]
		t.Rows = append(t.Rows, []string{
			f2(c.Config.TargetFreqGHz),
			numCell(c, f3s(c.AchievedFreqGHz)), numCell(c, f3s(c.PowerUW/1000)),
			numCell(f, f3s(f.AchievedFreqGHz)), numCell(f, f3s(f.PowerUW/1000)),
		})
		if f.AchievedFreqGHz > fMax {
			fMax, fPwr = f.AchievedFreqGHz, f.PowerUW
		}
		if c.AchievedFreqGHz > cMax {
			cMax, cPwr = c.AchievedFreqGHz, c.PowerUW
		}
	}
	if fMax > 0 && cMax > 0 {
		// Power compared at matched frequency (energy per cycle), the
		// iso-frequency reading of the paper's Fig. 9 curves.
		fE := fPwr / fMax
		cE := cPwr / cMax
		t.Notes = append(t.Notes,
			fmt.Sprintf("max achieved: FFET %.3f GHz vs CFET %.3f GHz -> freq %+.1f%% (paper +25.0%%)",
				fMax, cMax, 100*(fMax/cMax-1)),
			fmt.Sprintf("energy/cycle: FFET %.3f vs CFET %.3f pJ -> %+.1f%% (paper power -11.9%% at matched freq)",
				fE/1000, cE/1000, 100*(fE/cE-1)))
	}
	return t, sweepErr
}

// Fig10 reports achieved frequency vs core area at a 1.5 GHz target
// (area varied through utilization).
func (s *Suite) Fig10() (*Table, error) {
	var specs []runSpec
	utils := []float64{0.56, 0.62, 0.68, 0.72, 0.76}
	if s.Scale == Full {
		utils = []float64{0.52, 0.56, 0.60, 0.64, 0.68, 0.72, 0.76, 0.80}
	}
	for _, u := range utils {
		specs = append(specs, runSpec{tech.CFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, u)})
		specs = append(specs, runSpec{tech.FFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, u)})
	}
	rs, sweepErr := s.runAll(specs)
	t := &Table{
		ID:     "fig10",
		Title:  "Achieved frequency vs core area (target 1.5 GHz): CFET vs FFET FM12",
		Header: []string{"util %", "CFET um2", "CFET GHz", "FFET um2", "FFET GHz"},
	}
	var fBest, cBest float64
	for i := 0; i < len(rs); i += 2 {
		c, f := rs[i], rs[i+1]
		t.Rows = append(t.Rows, []string{
			f1(c.Config.Utilization * 100),
			numCell(c, f1(c.CoreAreaUm2)), numCell(c, f3s(c.AchievedFreqGHz)),
			numCell(f, f1(f.CoreAreaUm2)), numCell(f, f3s(f.AchievedFreqGHz)),
		})
		if f.Valid && f.AchievedFreqGHz > fBest {
			fBest = f.AchievedFreqGHz
		}
		if c.Valid && c.AchievedFreqGHz > cBest {
			cBest = c.AchievedFreqGHz
		}
	}
	if cBest > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"max freq: FFET %.3f vs CFET %.3f GHz -> %+.1f%% (paper +23.4%% at respective max)",
			fBest, cBest, 100*(fBest/cBest-1)))
	}
	return t, sweepErr
}

// Fig11 sweeps the input-pin density DoEs on FM12BM12 across utilization.
func (s *Suite) Fig11() (*Table, error) {
	does := []float64{0.5, 0.4, 0.3, 0.16, 0.04}
	utils := []float64{0.46, 0.56, 0.66, 0.76}
	if s.Scale == Full {
		utils = []float64{0.46, 0.51, 0.56, 0.61, 0.66, 0.71, 0.76}
	}
	var specs []runSpec
	for _, bp := range does {
		for _, u := range utils {
			cfg := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, u)
			cfg.BackPinFraction = bp
			specs = append(specs, runSpec{tech.FFET, cfg})
		}
	}
	rs, sweepErr := s.runAll(specs)
	t := &Table{
		ID:     "fig11",
		Title:  "Power-frequency across pin-density DoEs (FM12BM12, util 46-76%)",
		Header: []string{"DoE", "util %", "freq GHz", "power mW", "valid"},
	}
	type agg struct {
		f, p float64
		n    int
	}
	means := map[float64]*agg{}
	i := 0
	for _, bp := range does {
		for range utils {
			r := rs[i]
			i++
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("FP%.2gBP%.2g", 1-bp, bp),
				f1(r.Config.Utilization * 100),
				numCell(r, f3s(r.AchievedFreqGHz)), numCell(r, f3s(r.PowerUW/1000)),
				validCell(r),
			})
			if r.Valid {
				if means[bp] == nil {
					means[bp] = &agg{}
				}
				means[bp].f += r.AchievedFreqGHz
				means[bp].p += r.PowerUW
				means[bp].n++
			}
		}
	}
	for _, bp := range does {
		if a := means[bp]; a != nil && a.n > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"FP%.2gBP%.2g mean: %.3f GHz, %.3f mW over %d valid points",
				1-bp, bp, a.f/float64(a.n), a.p/float64(a.n)/1000, a.n))
		}
	}
	t.Notes = append(t.Notes, "paper: FP0.5BP0.5 and FP0.6BP0.4 best; FP0.96BP0.04 worst")
	return t, sweepErr
}

// Table3 co-optimizes pin density and layer splits at 12 total layers
// against the FFET FM12 baseline.
func (s *Suite) Table3() (*Table, error) {
	util := 0.76
	base, err := s.Run(tech.FFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, util))
	if err != nil {
		return nil, err
	}
	type doe struct {
		bp       float64
		patterns []tech.Pattern
	}
	does := []doe{
		{0.04, []tech.Pattern{{Front: 10, Back: 2}, {Front: 9, Back: 3}}},
		{0.16, []tech.Pattern{{Front: 9, Back: 3}, {Front: 8, Back: 4}}},
		{0.30, []tech.Pattern{{Front: 9, Back: 3}, {Front: 8, Back: 4}, {Front: 7, Back: 5}}},
		{0.40, []tech.Pattern{{Front: 8, Back: 4}, {Front: 7, Back: 5}, {Front: 6, Back: 6}}},
		{0.50, []tech.Pattern{{Front: 8, Back: 4}, {Front: 7, Back: 5}, {Front: 6, Back: 6}}},
	}
	var specs []runSpec
	for _, d := range does {
		for _, p := range d.patterns {
			cfg := core.DefaultFlowConfig(p, 1.5, util)
			cfg.BackPinFraction = d.bp
			specs = append(specs, runSpec{tech.FFET, cfg})
		}
	}
	rs, sweepErr := s.runAll(specs)
	t := &Table{
		ID:     "table3",
		Title:  "Pin density x routing layer co-optimization vs FFET FM12 baseline",
		Header: []string{"pin density", "pattern", "freq diff", "energy/cycle diff", "valid"},
		Notes: []string{
			fmt.Sprintf("baseline FFET FM12: %.3f GHz, %.3f mW", base.AchievedFreqGHz, base.PowerUW/1000),
			"paper best: FP0.5BP0.5 FM6BM6 +10.6% freq no power cost; FP0.7BP0.3 FM8BM4 +12.8% freq +1.4% power",
		},
	}
	i := 0
	for _, d := range does {
		for _, p := range d.patterns {
			r := rs[i]
			i++
			baseE := base.PowerUW / base.AchievedFreqGHz
			rE := r.PowerUW / r.AchievedFreqGHz
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("FP%.2gBP%.2g", 1-d.bp, d.bp),
				p.String(),
				numCell(r, pc(100*(r.AchievedFreqGHz/base.AchievedFreqGHz-1))),
				numCell(r, pc(100*(rE/baseE-1))),
				validCell(r),
			})
		}
	}
	return t, sweepErr
}

// Fig12 finds max utilization while shrinking both sides' layer counts.
func (s *Suite) Fig12() (*Table, error) {
	layerCounts := []int{12, 8, 6, 5, 4, 3, 2}
	if s.Scale == Full {
		layerCounts = []int{12, 10, 8, 7, 6, 5, 4, 3, 2}
	}
	t := &Table{
		ID:     "fig12",
		Title:  "Max utilization of FFET FP0.5BP0.5 vs routing layers per side",
		Header: []string{"layers/side", "max util %"},
		Notes:  []string{"paper: flat 86% down to 4 layers/side, ~70% at 2"},
	}
	var errs []error
	for _, n := range layerCounts {
		rs, err := s.areaUtilSweep(tech.FFET, tech.Pattern{Front: n, Back: n}, 0.5, 1.5)
		if err != nil {
			errs = append(errs, err)
		}
		u, _ := maxValidUtil(rs)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f1(u * 100)})
	}
	return t, errors.Join(errs...)
}

// Fig13 tracks power efficiency while shrinking both sides' layer counts
// at fixed 76% utilization.
func (s *Suite) Fig13() (*Table, error) {
	layerCounts := []int{12, 8, 6, 5, 4, 3}
	if s.Scale == Full {
		layerCounts = []int{12, 10, 9, 8, 7, 6, 5, 4, 3}
	}
	var specs []runSpec
	for _, n := range layerCounts {
		cfg := core.DefaultFlowConfig(tech.Pattern{Front: n, Back: n}, 1.5, 0.76)
		cfg.BackPinFraction = 0.5
		specs = append(specs, runSpec{tech.FFET, cfg})
	}
	rs, sweepErr := s.runAll(specs)
	t := &Table{
		ID:     "fig13",
		Title:  "Power efficiency of FFET FP0.5BP0.5 vs routing layers per side (util 76%)",
		Header: []string{"layers/side", "freq GHz", "power mW", "GHz/W", "valid"},
		Notes:  []string{"paper: only -0.68% efficiency from 12 to 5 layers/side"},
	}
	var eff12 float64
	for i, n := range layerCounts {
		r := rs[i]
		eff := r.EffGHzPerW
		if n == 12 && r.Err == nil {
			eff12 = eff
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), numCell(r, f3s(r.AchievedFreqGHz)), numCell(r, f3s(r.PowerUW/1000)),
			numCell(r, f1(eff)), validCell(r),
		})
	}
	if eff12 > 0 {
		for i, n := range layerCounts {
			if n == 5 {
				t.Notes = append(t.Notes, fmt.Sprintf("efficiency diff 12->5 layers: %+.2f%%",
					100*(rs[i].EffGHzPerW/eff12-1)))
			}
		}
	}
	return t, sweepErr
}

// VariationMC runs the overlay-variation Monte Carlo study of PAPERS.md's
// FlipFET-vs-CFET benchmark on one placed-and-clocked FFET session: the
// leader runs dual-sided pins (FP0.5BP0.5) through CTS, a fork flips the
// back pins off (all-front — the single-sided CFET-like proxy with the
// same cells, placement and clock tree), and both variants' StageSTA
// checkpoints are sampled under the same overlay model and seed, so the
// distributions differ only through pin sidedness.
func (s *Suite) VariationMC() (*Table, error) {
	pattern := tech.Pattern{Front: 6, Back: 6}
	samples := 2048
	if s.Scale == Full {
		pattern = tech.Pattern{Front: 12, Back: 12}
		samples = 8192
	}
	cfg := core.DefaultFlowConfig(pattern, 1.5, 0.72)
	cfg.BackPinFraction = 0.5
	leader, err := core.NewFlow(s.Netlist(tech.FFET), cfg)
	if err != nil {
		return nil, err
	}
	ctx := s.ctx()
	if err := leader.RunToCtx(ctx, core.StageCTS); err != nil {
		return nil, err
	}
	proxy, err := leader.Fork(func(c *core.FlowConfig) { c.BackPinFraction = 0 })
	if err != nil {
		return nil, err
	}
	opt := variation.DefaultOptions()
	opt.Samples = samples
	// The exp tables trade throughput for fidelity: the lowered screening
	// floor admits the mid-cap nets that carry much of the distribution's
	// sigma (see variation.Options.FloorFF).
	opt.FloorFF = 0.25
	t := &Table{
		ID:    "mc",
		Title: "Overlay-variation Monte Carlo: dual-sided pins vs all-front proxy",
		Header: []string{"variant", "mean WNS ps", "sigma ps",
			"P50 ps", "P95 ps", "P99.7 ps", "mean TNS ps"},
		Notes: []string{fmt.Sprintf(
			"%d samples, overlay sigma %g nm/side, cap sens %g/nm, parasitic sigma %g, floor %g fF, seed %d",
			opt.Samples, opt.SigmaNm, opt.CapSensPerNm, opt.ParasiticSigma, opt.FloorFF, opt.Seed)},
	}
	var sig [2]float64
	for i, v := range []struct {
		name string
		f    *core.Flow
	}{{"FP0.5BP0.5", leader}, {"FP1.0 proxy", proxy}} {
		if err := v.f.RunToCtx(ctx, core.StageSTA); err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		basis, err := v.f.VariationBasis()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		sum, err := variation.Study(ctx, basis, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		sig[i] = sum.SigmaWNSPs
		t.Rows = append(t.Rows, []string{
			v.name, f2(sum.MeanWNSPs), f2(sum.SigmaWNSPs),
			f2(sum.P50WNSPs), f2(sum.P95WNSPs), f2(sum.P997WNSPs), f2(sum.MeanTNSPs),
		})
	}
	if sig[1] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"WNS sigma, dual-sided vs all-front: %+.1f%% (positive = dual-sided pins are more overlay-sensitive)",
			100*(sig[0]/sig[1]-1)))
	}
	return t, nil
}

// experimentIDs is the report order of the experiment registry.
var experimentIDs = []string{
	"fig04", "table1", "table2", "fig08a", "fig08b", "fig08c",
	"fig09", "fig10", "fig11", "table3", "fig12", "fig13", "mc",
}

// ExperimentIDs lists every experiment id in report order.
func ExperimentIDs() []string {
	out := make([]string, len(experimentIDs))
	copy(out, experimentIDs)
	return out
}

// Experiment returns the runner of the experiment with the given id, or
// false when the id is unknown. Both cmd/ffetexp and the serve daemon's
// /v1/exp endpoint dispatch through this registry.
func (s *Suite) Experiment(id string) (func() (*Table, error), bool) {
	switch id {
	case "fig04":
		return func() (*Table, error) { return s.Fig04(), nil }, true
	case "table1":
		return func() (*Table, error) { return s.Table1(), nil }, true
	case "table2":
		return func() (*Table, error) { return s.Table2(), nil }, true
	case "fig08a":
		return s.Fig08a, true
	case "fig08b":
		return s.Fig08b, true
	case "fig08c":
		return s.Fig08c, true
	case "fig09":
		return s.Fig09, true
	case "fig10":
		return s.Fig10, true
	case "fig11":
		return s.Fig11, true
	case "table3":
		return s.Table3, true
	case "fig12":
		return s.Fig12, true
	case "fig13":
		return s.Fig13, true
	case "mc":
		return s.VariationMC, true
	}
	return nil, false
}
