// Package exp contains one runner per table and figure of the paper's
// evaluation (Section IV): workload setup, parameter sweep, baseline and a
// printer that emits the same rows/series the paper reports. The bench
// harness at the repository root and cmd/ffetexp both drive this package.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/riscv"
	"repro/internal/tech"
)

// Scale selects sweep density and workload size. Quick keeps every
// experiment's structure but runs the reduced 16-register core on coarser
// sweeps so the whole suite fits in a test run; Full reproduces the
// paper's sweep resolution on the full RV32 core.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig09"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders the table as RFC 4180 comma-separated text: cells containing
// commas, quotes, or line breaks are quoted, with embedded quotes doubled.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\r\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Suite owns the libraries and benchmark netlists shared by experiments.
type Suite struct {
	Scale Scale
	FFET  *cell.Library
	CFET  *cell.Library
	// MaxParallel bounds the goroutine pool sweep experiments fan their
	// flow runs over (the flow is deterministic and data-race-free, so
	// points are independent). 0 picks min(GOMAXPROCS, 12); 1 forces
	// serial execution. Tables are byte-identical at any setting —
	// results land by sweep index, never by completion order.
	MaxParallel int
	ffetNl      *netlist.Netlist
	cfetNl      *netlist.Netlist
	mu          sync.Mutex
	results     map[string]*core.FlowResult
}

// NewSuite builds libraries and the RISC-V benchmark core for both archs.
func NewSuite(scale Scale) (*Suite, error) {
	s := &Suite{
		Scale:   scale,
		FFET:    cell.NewLibrary(tech.NewFFET()),
		CFET:    cell.NewLibrary(tech.NewCFET()),
		results: make(map[string]*core.FlowResult),
	}
	regs := 32
	if scale == Quick {
		regs = 16
	}
	nlF, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32", Registers: regs})
	if err != nil {
		return nil, err
	}
	s.ffetNl = nlF
	nlC, err := nlF.Remap(s.CFET)
	if err != nil {
		return nil, err
	}
	s.cfetNl = nlC
	return s, nil
}

// netlistFor returns the pre-synthesis netlist for an arch.
func (s *Suite) netlistFor(arch tech.Arch) *netlist.Netlist {
	if arch == tech.FFET {
		return s.ffetNl
	}
	return s.cfetNl
}

// runKey builds the memo key for a flow config.
func runKey(arch tech.Arch, cfg core.FlowConfig) string {
	return fmt.Sprintf("%v|%v|%.3f|%.3f|%.3f|%d",
		arch, cfg.Pattern, cfg.TargetFreqGHz, cfg.Utilization, cfg.BackPinFraction, cfg.Seed)
}

// Run executes (or recalls) one flow run.
func (s *Suite) Run(arch tech.Arch, cfg core.FlowConfig) (*core.FlowResult, error) {
	key := runKey(arch, cfg)
	s.mu.Lock()
	if r, ok := s.results[key]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	res, err := core.RunFlow(s.netlistFor(arch), cfg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.results[key] = res
	s.mu.Unlock()
	return res, nil
}

// runSpec is one point of a parallel sweep.
type runSpec struct {
	arch tech.Arch
	cfg  core.FlowConfig
}

// runAll executes specs over the suite's bounded goroutine pool,
// preserving order.
func (s *Suite) runAll(specs []runSpec) ([]*core.FlowResult, error) {
	out := make([]*core.FlowResult, len(specs))
	errs := make([]error, len(specs))
	sem := make(chan struct{}, s.maxParallel())
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec runSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = s.Run(spec.arch, spec.cfg)
		}(i, spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *Suite) maxParallel() int {
	if s.MaxParallel > 0 {
		return s.MaxParallel
	}
	n := runtime.GOMAXPROCS(0)
	if n > 12 {
		n = 12
	}
	if n < 1 {
		n = 1
	}
	return n
}

// utilSweep returns the utilization grid for max-util experiments.
func (s *Suite) utilSweep() []float64 {
	if s.Scale == Quick {
		return []float64{0.68, 0.72, 0.76, 0.80, 0.84, 0.86, 0.88}
	}
	return []float64{0.68, 0.70, 0.72, 0.74, 0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90}
}

// freqSweep returns the synthesis-target grid (paper: 0.5 to 3 GHz).
func (s *Suite) freqSweep() []float64 {
	if s.Scale == Quick {
		return []float64{0.5, 1.0, 1.5, 2.0, 3.0}
	}
	return []float64{0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3s(v float64) string { return fmt.Sprintf("%.3f", v) }
func pc(v float64) string  { return fmt.Sprintf("%+.1f%%", v) }
