// Package exp contains one runner per table and figure of the paper's
// evaluation (Section IV): workload setup, parameter sweep, baseline and a
// printer that emits the same rows/series the paper reports. The bench
// harness at the repository root and cmd/ffetexp both drive this package.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/riscv"
	"repro/internal/synth"
	"repro/internal/tech"
)

// Scale selects sweep density and workload size. Quick keeps every
// experiment's structure but runs the reduced 16-register core on coarser
// sweeps so the whole suite fits in a test run; Full reproduces the
// paper's sweep resolution on the full RV32 core.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// Table is a printable experiment result.
type Table struct {
	ID     string // e.g. "fig09"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table as aligned text.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders the table as RFC 4180 comma-separated text: cells containing
// commas, quotes, or line breaks are quoted, with embedded quotes doubled.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\r\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Suite owns the libraries and benchmark netlists shared by experiments.
type Suite struct {
	Scale Scale
	FFET  *cell.Library
	CFET  *cell.Library
	// MaxParallel bounds the goroutine pool sweep experiments fan their
	// flow runs over (the flow is deterministic and data-race-free, so
	// points are independent). 0 picks min(GOMAXPROCS, 12); 1 forces
	// serial execution. Tables are byte-identical at any setting —
	// results land by sweep index, never by completion order.
	MaxParallel int
	// DisablePrefixSharing forces every sweep point through a full
	// from-scratch flow instead of forking staged sessions at their
	// deepest shared stage. Sharing is purely a work optimization —
	// forked runs are bit-identical to scratch runs — so this knob
	// exists only for differential tests and apples-to-apples
	// benchmarking of the sharing itself.
	DisablePrefixSharing bool
	// Ctx, when non-nil, cancels in-flight sweeps: every flow session a
	// sweep starts runs under it, so a cancel drains the pool within one
	// stage per in-flight point and the cancelled points report
	// core.ErrCancelled in their error cells.
	Ctx     context.Context
	ffetNl  *netlist.Netlist
	cfetNl  *netlist.Netlist
	mu      sync.Mutex
	results map[RunKey]*core.FlowResult
	// synthRoots caches one staged session per synthesis-input class,
	// run through StageSynth only: every sweep point in that class forks
	// off it instead of re-running synthesis — across tables, not just
	// within one sweep.
	synthRoots map[SynthClass]*synthRoot
	// Cache observability (guarded by mu): memo lookups and synth-root
	// resolutions, split hit/miss. The serve daemon republishes these on
	// /debug/stats next to its own checkpoint counters.
	memoHits, memoMisses           int64
	synthRootHits, synthRootMisses int64
	// Frequency-axis diff-chain observability (guarded by mu): sweep
	// group leaders that re-used a neighboring target's completed session
	// through core.Flow.ForkSynthDiff, leaders whose diff attempt fell
	// back to the full pipeline (structural divergence, floorplan drift,
	// oversized diff), and leaders synthesized with no diff attempt at
	// all (first of a chain, or no close-target neighbor).
	diffForks, diffFallbacks, fullSynthForks int64
}

// DiffChainMaxRelGap bounds the relative target gap between neighboring
// sweep points worth attempting a synth-diff hop across. Past it the
// resized fraction (and with it the floorplan) almost always diverges, so
// the attempt would serialize the two groups for nothing: groups further
// apart run as independent full-synthesis groups in parallel, exactly as
// before. Tunable; see ROADMAP ("diff-size threshold tuning").
var DiffChainMaxRelGap = 0.12

// CacheStats is a point-in-time snapshot of the suite's result-memo and
// synthesis-root caches.
type CacheStats struct {
	MemoHits         int64 `json:"memo_hits"`
	MemoMisses       int64 `json:"memo_misses"`
	MemoEntries      int   `json:"memo_entries"`
	SynthRootHits    int64 `json:"synth_root_hits"`
	SynthRootMisses  int64 `json:"synth_root_misses"`
	SynthRootEntries int   `json:"synth_root_entries"`
	// Frequency-axis diff-chain counters: group leaders that took the
	// synth-diff path off a neighboring target, leaders whose diff
	// attempt fell back to the full pipeline, and leaders synthesized
	// without any diff attempt.
	DiffForks      int64 `json:"diff_forks"`
	DiffFallbacks  int64 `json:"diff_fallbacks"`
	FullSynthForks int64 `json:"full_synth_forks"`
}

// Stats snapshots the suite's cache counters.
func (s *Suite) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		MemoHits:         s.memoHits,
		MemoMisses:       s.memoMisses,
		MemoEntries:      len(s.results),
		SynthRootHits:    s.synthRootHits,
		SynthRootMisses:  s.synthRootMisses,
		SynthRootEntries: len(s.synthRoots),
		DiffForks:        s.diffForks,
		DiffFallbacks:    s.diffFallbacks,
		FullSynthForks:   s.fullSynthForks,
	}
}

// NewSuite builds libraries and the RISC-V benchmark core for both archs.
func NewSuite(scale Scale) (*Suite, error) {
	s := &Suite{
		Scale:      scale,
		FFET:       cell.NewLibrary(tech.NewFFET()),
		CFET:       cell.NewLibrary(tech.NewCFET()),
		results:    make(map[RunKey]*core.FlowResult),
		synthRoots: make(map[SynthClass]*synthRoot),
	}
	regs := 32
	if scale == Quick {
		regs = 16
	}
	nlF, _, err := riscv.Generate(s.FFET, riscv.Config{Name: "rv32", Registers: regs})
	if err != nil {
		return nil, err
	}
	s.ffetNl = nlF
	nlC, err := nlF.Remap(s.CFET)
	if err != nil {
		return nil, err
	}
	s.cfetNl = nlC
	return s, nil
}

// Netlist returns the pre-synthesis netlist for an arch.
func (s *Suite) Netlist(arch tech.Arch) *netlist.Netlist {
	if arch == tech.FFET {
		return s.ffetNl
	}
	return s.cfetNl
}

// ctx returns the suite's sweep context.
func (s *Suite) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// RunKey is the comparable memo key of a flow run: the architecture and
// the entire FlowConfig (which is comparable) at full float precision,
// minus only the cosmetic Name, which no stage reads. Embedding the
// whole config means every result-affecting field — including MaxDRVs
// and the per-stage option structs — keeps distinct memo entries. (The
// old key stringified six fields at %.3f, so two configs closer than
// 1e-3, or differing only in stage options, could collide on one
// entry.)
type RunKey struct {
	arch tech.Arch
	cfg  core.FlowConfig
}

// MemoKey builds the memo key of (arch, cfg): the exact-config identity
// under which a completed run may be replayed from cache. The serve
// daemon's result memo uses the same key, so daemon and batch memoization
// can never disagree about which configs are "the same run".
func MemoKey(arch tech.Arch, cfg core.FlowConfig) RunKey {
	cfg.Name = ""
	return RunKey{arch: arch, cfg: cfg}
}

// SynthClass identifies the synthesis-input class of a run: two configs in
// the same class produce identical StageSynth output, so their sessions
// can fork off one shared root.
type SynthClass struct {
	arch   tech.Arch
	target float64
	synth  synth.Options
}

// PrefixClass identifies the placed prefix class: configs in the same
// class share everything through StagePlace. CTS options are deliberately
// not part of the key — a point whose CTS delta diverges from the group
// leader forks at StageCTS and re-legalizes only the buffer delta against
// the retained placement basis (place.LegalizeDelta), so CTS-option
// sweeps share one placed prefix instead of replaying placement per
// option. Points that also match the leader's CTS diverge at
// StagePartition or later (back-pin fraction, routing, analysis knobs)
// exactly as before.
type PrefixClass struct {
	sk      SynthClass
	util    float64
	aspect  float64
	pattern tech.Pattern
	seed    int64
	place   place.Options
}

// ClassKeys computes both sharing classes of (arch, cfg). Both are
// comparable and usable as map keys; the serve daemon's checkpoint cache
// keys its staged prefixes by them, so a daemon checkpoint and an exp
// sweep group describe exactly the same shareable work.
func ClassKeys(arch tech.Arch, cfg core.FlowConfig) (SynthClass, PrefixClass) {
	sk := SynthClass{arch: arch, target: cfg.TargetFreqGHz, synth: cfg.Synth}
	return sk, PrefixClass{
		sk:      sk,
		util:    cfg.Utilization,
		aspect:  cfg.AspectRatio,
		pattern: cfg.Pattern,
		seed:    cfg.Seed,
		place:   cfg.Place,
	}
}

// RootConfig returns the neutralized config a synthesis-root session of
// this class is opened under: only the class fields (target frequency,
// synthesis options) are set, everything else is the default single-sided
// configuration. A root built under it is valid for every class member —
// its cached session (or cached build error) can never depend on
// per-point fields like Pattern or BackPinFraction.
func (sc SynthClass) RootConfig() core.FlowConfig {
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: 1}, sc.target, 0.70)
	cfg.Synth = sc.synth
	return cfg
}

// Config returns the neutralized config of this class's
// placed-and-clocked prefix: every field the prefix stages read
// (synthesis class, pattern, utilization, aspect, seed, placement
// options) comes from the class; the point-divergent fields stay at
// defaults (BackPinFraction 0, default CTS/route/analysis options). A
// prefix staged under it through StageCTS is a valid fork base for any
// class member — a leaf's Fork resumes at StageCTS or StagePartition
// depending on its own delta — and is identical no matter which request
// arrived first, which is what a cross-request checkpoint cache needs.
func (pc PrefixClass) Config() core.FlowConfig {
	cfg := core.DefaultFlowConfig(pc.pattern, pc.sk.target, pc.util)
	cfg.Synth = pc.sk.synth
	cfg.AspectRatio = pc.aspect
	cfg.Seed = pc.seed
	cfg.Place = pc.place
	return cfg
}

// Synth returns the synthesis class the prefix class refines.
func (pc PrefixClass) Synth() SynthClass { return pc.sk }

// synthRoot is a lazily-built shared session run through StageSynth.
// Build failures are never cached: the next point of the class retries
// from scratch, so a transient fault (an injected error, a cancelled
// context) cannot poison every later sweep of the class.
type synthRoot struct {
	mu   sync.Mutex
	flow *core.Flow
}

// lookup returns a memoized result, or nil, counting the hit or miss.
func (s *Suite) lookup(key RunKey) *core.FlowResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.results[key]
	if r != nil {
		s.memoHits++
	} else {
		s.memoMisses++
	}
	return r
}

// store memoizes a result (first writer wins, matching lookup).
func (s *Suite) store(key RunKey, res *core.FlowResult) *core.FlowResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.results[key]; ok {
		return r
	}
	s.results[key] = res
	return res
}

// SynthRootFor returns the shared post-synthesis session of cfg's class,
// building it on first use. The root is opened under a neutralized
// config carrying only the class fields (arch, target, synth options):
// the cached session (and in particular a cached error) must never
// depend on per-point fields like Pattern or BackPinFraction, or one
// invalid point would poison every later sweep of the same class.
// Point-specific validation happens where it belongs, at the Fork that
// adopts the point's full config.
func (s *Suite) SynthRootFor(arch tech.Arch, cfg core.FlowConfig) (flow *core.Flow, err error) {
	sk, _ := ClassKeys(arch, cfg)
	s.mu.Lock()
	root, ok := s.synthRoots[sk]
	if !ok {
		root = &synthRoot{}
		s.synthRoots[sk] = root
	}
	s.mu.Unlock()
	root.mu.Lock()
	defer root.mu.Unlock()
	if root.flow != nil {
		s.countSynthRoot(true)
		return root.flow, nil
	}
	s.countSynthRoot(false)
	defer func() {
		if r := recover(); r != nil {
			flow, err = nil, core.NewPanicError(cfg.Name, r)
		}
	}()
	if err := faultinject.Fire("exp.synthroot"); err != nil {
		return nil, err
	}
	f, err := core.NewFlow(s.Netlist(arch), sk.RootConfig())
	if err != nil {
		return nil, err
	}
	if err := f.RunToCtx(s.ctx(), core.StageSynth); err != nil {
		return nil, err
	}
	root.flow = f
	return root.flow, nil
}

// countSynthRoot records one synth-root resolution.
func (s *Suite) countSynthRoot(hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.synthRootHits++
	} else {
		s.synthRootMisses++
	}
}

// countDiffChain records one diff-chain leader outcome: a hop that stayed
// on the synth-diff fast path, or one that internally fell back to the
// full pipeline (still correct, just not cheaper).
func (s *Suite) countDiffChain(diffPath bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if diffPath {
		s.diffForks++
	} else {
		s.diffFallbacks++
	}
}

// countFullSynthFork records a group leader built from the synthesis root
// with no chain predecessor to diff against.
func (s *Suite) countFullSynthFork() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fullSynthForks++
}

// Run executes (or recalls) one flow run.
func (s *Suite) Run(arch tech.Arch, cfg core.FlowConfig) (*core.FlowResult, error) {
	key := MemoKey(arch, cfg)
	if r := s.lookup(key); r != nil {
		return r, nil
	}
	res, err := core.RunFlowCtx(s.ctx(), s.Netlist(arch), cfg)
	if err != nil {
		return nil, err
	}
	return s.store(key, res), nil
}

// errorResult builds the failure placeholder a dead sweep point
// contributes to its table: an invalid result carrying the classified
// error. Placeholders are never memoized, so a retry after the fault
// clears gets a clean run.
func errorResult(spec runSpec, err error) *core.FlowResult {
	return &core.FlowResult{
		Config: spec.cfg,
		Arch:   spec.arch,
		Valid:  false,
		Reason: "error: " + err.Error(),
		Err:    err,
	}
}

// runSpec is one point of a parallel sweep.
type runSpec struct {
	arch tech.Arch
	cfg  core.FlowConfig
}

// runAll executes specs over the suite's bounded goroutine pool,
// preserving order.
//
// Sweep points that share a flow prefix do not recompute it: pending
// specs are grouped by synthesis class and by placed-and-clocked prefix
// class, one staged session per class runs the shared stages once, and
// each point forks off its class session at the divergence stage
// (core.Flow.Fork) — the paper's sweeps (Figs. 9-13) only diverge at
// floorplanning (utilization grids) or at the Algorithm 1 partition
// (back-pin-fraction DoEs). Forked runs are bit-identical to
// from-scratch runs, so tables are byte-identical to the unshared path
// at any parallelism.
//
// Failures are contained per point: a dead point (hard error, contained
// panic, cancellation) lands in the table as an errorResult placeholder
// while its siblings, the synthesis-root cache, and the memo stay
// healthy. runAll still reports the damage — the returned error joins
// every distinct point error — but callers get the full table either
// way.
func (s *Suite) runAll(specs []runSpec) ([]*core.FlowResult, error) {
	out := make([]*core.FlowResult, len(specs))
	// Dedupe pending work by memo key so one sweep never runs a point
	// twice (tables routinely repeat a baseline config). Each pending
	// point resolves to exactly one of res or err; every point has a
	// single writer (its worker goroutine, or its group's builder before
	// any leaf spawns), so neither field needs a lock.
	type pendingPoint struct {
		spec runSpec
		idxs []int
		res  *core.FlowResult
		err  error
	}
	pending := make(map[RunKey]*pendingPoint)
	var pendingOrder []RunKey
	for i, spec := range specs {
		key := MemoKey(spec.arch, spec.cfg)
		if r := s.lookup(key); r != nil {
			out[i] = r
			continue
		}
		p, ok := pending[key]
		if !ok {
			p = &pendingPoint{spec: spec}
			pending[key] = p
			pendingOrder = append(pendingOrder, key)
		}
		p.idxs = append(p.idxs, i)
	}
	if len(pending) == 0 {
		return out, nil
	}

	sem := make(chan struct{}, s.maxParallel())
	var wg sync.WaitGroup
	finish := func(p *pendingPoint, res *core.FlowResult) {
		p.res = s.store(MemoKey(p.spec.arch, p.spec.cfg), res)
	}
	// collect runs after the pool drains: it fans each point's result (or
	// failure placeholder) out to its sweep slots and joins the distinct
	// point errors. Points a group failure killed share one error value,
	// so the root cause is reported once, not once per sibling.
	collect := func() ([]*core.FlowResult, error) {
		var errs []error
		seen := make(map[error]bool)
		for _, key := range pendingOrder {
			p := pending[key]
			if p.err == nil && p.res == nil {
				p.err = core.Classify(p.spec.cfg.Name, errors.New("exp: sweep point never resolved"))
			}
			res := p.res
			if p.err != nil {
				res = errorResult(p.spec, p.err)
				if !seen[p.err] {
					seen[p.err] = true
					errs = append(errs, p.err)
				}
			}
			for _, i := range p.idxs {
				out[i] = res
			}
		}
		return out, errors.Join(errs...)
	}
	// runScratch is the unshared path: one full flow per point.
	runScratch := func(p *pendingPoint) {
		defer wg.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		defer func() {
			if r := recover(); r != nil {
				p.err = core.NewPanicError(p.spec.cfg.Name, r)
			}
		}()
		if err := faultinject.Fire("exp.scratch"); err != nil {
			p.err = core.Classify(p.spec.cfg.Name, err)
			return
		}
		res, err := core.RunFlowCtx(s.ctx(), s.Netlist(p.spec.arch), p.spec.cfg)
		if err != nil {
			p.err = core.Classify(p.spec.cfg.Name, err)
			return
		}
		finish(p, res)
	}

	if s.DisablePrefixSharing {
		for _, key := range pendingOrder {
			wg.Add(1)
			go runScratch(pending[key])
		}
		wg.Wait()
		return collect()
	}

	// Group pending points by shared-prefix class.
	type prefixGroup struct {
		first  runSpec
		points []*pendingPoint
	}
	groups := make(map[PrefixClass]*prefixGroup)
	var groupOrder []PrefixClass
	for _, key := range pendingOrder {
		p := pending[key]
		_, pk := ClassKeys(p.spec.arch, p.spec.cfg)
		g, ok := groups[pk]
		if !ok {
			g = &prefixGroup{first: p.spec}
			groups[pk] = g
			groupOrder = append(groupOrder, pk)
		}
		g.points = append(g.points, p)
	}

	// runLeaf forks one point off its group session and runs the
	// divergent tail: partition -> route -> ... -> power. When base is a
	// completed leader run, the fork inherits its post-STA timing engine
	// and the leaf re-times only the cones its config delta dirtied.
	runLeaf := func(base *core.Flow, p *pendingPoint) {
		defer wg.Done()
		sem <- struct{}{}
		defer func() { <-sem }()
		defer func() {
			if r := recover(); r != nil {
				p.err = core.NewPanicError(p.spec.cfg.Name, r)
			}
		}()
		if err := faultinject.Fire("exp.leaf"); err != nil {
			p.err = core.Classify(p.spec.cfg.Name, err)
			return
		}
		cfg := p.spec.cfg
		leaf, err := base.Fork(func(c *core.FlowConfig) { *c = cfg })
		if err != nil {
			p.err = core.Classify(p.spec.cfg.Name, err)
			return
		}
		res, err := leaf.RunCtx(s.ctx())
		if err != nil {
			p.err = core.Classify(p.spec.cfg.Name, err)
			return
		}
		finish(p, res)
	}
	// buildPrefix builds a group's shared placed-and-clocked prefix: a
	// fork of the synthesis root run through StageCTS. A panic here is
	// contained and surfaces as the group error.
	buildPrefix := func(g *prefixGroup) (mid *core.Flow, err error) {
		defer func() {
			if r := recover(); r != nil {
				mid, err = nil, core.NewPanicError(g.first.cfg.Name, r)
			}
		}()
		if err := faultinject.Fire("exp.group"); err != nil {
			return nil, err
		}
		root, err := s.SynthRootFor(g.first.arch, g.first.cfg)
		if err != nil {
			return nil, err
		}
		first := g.first.cfg
		mid, err = root.Fork(func(c *core.FlowConfig) { *c = first })
		if err == nil {
			err = mid.RunToCtx(s.ctx(), core.StageCTS)
		}
		if err != nil {
			return nil, err
		}
		return mid, nil
	}
	// runLeader runs a group's first point to completion off the shared
	// prefix. On success the finished session becomes the fork base for
	// every sibling, which then inherits the leader's StageSTA checkpoint
	// (timing engine + RC baseline) and pays only for the timing cones
	// its own partition/routing delta touches. On any failure — hard
	// error, contained panic, per-point validation — only the leader's
	// point dies; siblings fall back to forking the placed-and-clocked
	// prefix, whose session a dead leader cannot corrupt (leader work
	// happens in the leader's own fork).
	runLeader := func(leader *pendingPoint, mid *core.Flow) (base *core.Flow) {
		base = mid
		defer func() {
			if r := recover(); r != nil {
				leader.err = core.NewPanicError(leader.spec.cfg.Name, r)
			}
		}()
		if err := faultinject.Fire("exp.leader"); err != nil {
			leader.err = core.Classify(leader.spec.cfg.Name, err)
			return
		}
		leaderCfg := leader.spec.cfg
		leaderFlow, err := mid.Fork(func(c *core.FlowConfig) { *c = leaderCfg })
		if err != nil {
			leader.err = core.Classify(leader.spec.cfg.Name, err)
			return
		}
		res, err := leaderFlow.RunCtx(s.ctx())
		if err != nil {
			leader.err = core.Classify(leader.spec.cfg.Name, err)
			return
		}
		finish(leader, res)
		return leaderFlow
	}
	// runLeaderSession runs an already-forked, fully-configured leader
	// session to completion; returns nil when the leader died.
	runLeaderSession := func(leader *pendingPoint, lf *core.Flow) (base *core.Flow) {
		defer func() {
			if r := recover(); r != nil {
				leader.err = core.NewPanicError(leader.spec.cfg.Name, r)
				base = nil
			}
		}()
		if err := faultinject.Fire("exp.leader"); err != nil {
			leader.err = core.Classify(leader.spec.cfg.Name, err)
			return nil
		}
		res, err := lf.RunCtx(s.ctx())
		if err != nil {
			leader.err = core.Classify(leader.spec.cfg.Name, err)
			return nil
		}
		finish(leader, res)
		return lf
	}
	// runGroupFrom builds and runs one group while holding a pool slot
	// through its prefix+leader phase, then fans the remaining points out
	// as forks of whatever base the leader left behind. prev, when
	// non-nil, is the group's chain predecessor — the completed leader of
	// the nearest lower synthesis target — and the group leader forks
	// from it through the synth-diff path (core.Flow.ForkSynthDiff)
	// instead of re-running the back end off the synthesis root. Every
	// gate failure inside the diff fork degrades to the same full
	// pipeline the unchained path runs, so chaining changes wall-clock,
	// never results. Returns the session the next chain hop forks from.
	runGroupFrom := func(g *prefixGroup, prev *core.Flow) *core.Flow {
		sem <- struct{}{}
		if prev != nil {
			leaderCfg := g.points[0].spec.cfg
			if child, st, err := prev.ForkSynthDiffCtx(s.ctx(), func(c *core.FlowConfig) { *c = leaderCfg }); err == nil {
				s.countDiffChain(st.DiffPath)
				base := runLeaderSession(g.points[0], child)
				<-sem
				if base == nil {
					// Leader death must not sink its siblings: they
					// re-run from scratch, exactly as containment demands.
					for _, p := range g.points[1:] {
						wg.Add(1)
						go runScratch(p)
					}
					return nil
				}
				for _, p := range g.points[1:] {
					wg.Add(1)
					go runLeaf(base, p)
				}
				return base
			}
			// A hard fork failure (race, cancellation) falls through to
			// the full path, which classifies its own errors.
		}
		s.countFullSynthFork()
		mid, err := buildPrefix(g)
		if err != nil {
			<-sem
			// The whole group shares the prefix, so its death fails every
			// point at once — with one shared classified error value, so
			// the sweep's joined error reports the root cause once.
			err = core.Classify(g.first.cfg.Name, err)
			for _, p := range g.points {
				p.err = err
			}
			return nil
		}
		base := runLeader(g.points[0], mid)
		<-sem
		for _, p := range g.points[1:] {
			wg.Add(1)
			go runLeaf(base, p)
		}
		return base
	}
	// Partition the groups into frequency chains: groups identical up to
	// the synthesis target, sorted by target and split wherever
	// consecutive targets sit further apart than DiffChainMaxRelGap.
	// Each chain runs sequentially — every hop forks the nearest
	// completed neighbor through the synth-diff path — while distinct
	// chains (and far-apart target clusters) keep running in parallel.
	// Singleton chains go through the staged path too: they still share
	// synthesis via the cross-table root cache.
	chainKeyOf := func(pk PrefixClass) PrefixClass {
		pk.sk.target = 0
		pk.sk.synth.TargetFreqGHz = 0
		return pk
	}
	chainOf := make(map[PrefixClass][]PrefixClass)
	var chainOrder []PrefixClass
	for _, pk := range groupOrder {
		ck := chainKeyOf(pk)
		if _, ok := chainOf[ck]; !ok {
			chainOrder = append(chainOrder, ck)
		}
		chainOf[ck] = append(chainOf[ck], pk)
	}
	runChain := func(gs []*prefixGroup) {
		defer wg.Done()
		var prev *core.Flow
		for _, g := range gs {
			prev = runGroupFrom(g, prev)
		}
	}
	for _, ck := range chainOrder {
		pks := chainOf[ck]
		sort.Slice(pks, func(i, j int) bool { return pks[i].sk.target < pks[j].sk.target })
		var run []*prefixGroup
		for i, pk := range pks {
			if i > 0 {
				lo := pks[i-1].sk.target
				if lo <= 0 || pk.sk.target-lo > DiffChainMaxRelGap*lo {
					wg.Add(1)
					go runChain(run)
					run = nil
				}
			}
			run = append(run, groups[pk])
		}
		wg.Add(1)
		go runChain(run)
	}
	wg.Wait()
	return collect()
}

func (s *Suite) maxParallel() int {
	if s.MaxParallel > 0 {
		return s.MaxParallel
	}
	n := runtime.GOMAXPROCS(0)
	if n > 12 {
		n = 12
	}
	if n < 1 {
		n = 1
	}
	return n
}

// utilSweep returns the utilization grid for max-util experiments.
func (s *Suite) utilSweep() []float64 {
	if s.Scale == Quick {
		return []float64{0.68, 0.72, 0.76, 0.80, 0.84, 0.86, 0.88}
	}
	return []float64{0.68, 0.70, 0.72, 0.74, 0.76, 0.78, 0.80, 0.82, 0.84, 0.86, 0.88, 0.90}
}

// freqSweep returns the synthesis-target grid (paper: 0.5 to 3 GHz).
func (s *Suite) freqSweep() []float64 {
	if s.Scale == Quick {
		return []float64{0.5, 1.0, 1.5, 2.0, 3.0}
	}
	return []float64{0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3s(v float64) string { return fmt.Sprintf("%.3f", v) }
func pc(v float64) string  { return fmt.Sprintf("%+.1f%%", v) }
