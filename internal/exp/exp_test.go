package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tech"
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(Quick)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFig04TableShape(t *testing.T) {
	s := quickSuite(t)
	tab := s.Fig04()
	if len(tab.Rows) != 28 {
		t.Fatalf("rows = %d, want 28 cells", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "DFFD1") {
		t.Error("printed table missing DFFD1")
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "cell,FFET um2,CFET um2,gain %") {
		t.Errorf("csv header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

func TestTable1Shape(t *testing.T) {
	s := quickSuite(t)
	tab := s.Table1()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 KPIs", len(tab.Rows))
	}
	// Leakage row must be all-zero diffs.
	for _, r := range tab.Rows {
		if r[0] == "Leakage power" {
			for _, c := range r[1:] {
				if c != "+0.0%" {
					t.Errorf("leakage diff = %s, want +0.0%%", c)
				}
			}
		}
	}
}

func TestTable2HasBothStacks(t *testing.T) {
	s := quickSuite(t)
	tab := s.Table2()
	found := map[string]bool{}
	for _, r := range tab.Rows {
		found[r[0]] = true
	}
	for _, want := range []string{"Poly", "BPR", "FM12", "BM0", "BM12"} {
		if !found[want] {
			t.Errorf("table2 missing layer %s", want)
		}
	}
}

// TestFig08bSingleRun exercises one full-flow experiment end to end (the
// cheapest flow-backed figure).
func TestFig08bSingleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run in -short mode")
	}
	s := quickSuite(t)
	tab, err := s.Fig08b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Die dimensions must favor FFET (smaller cells).
	var cfetArea, ffetArea string
	for _, r := range tab.Rows {
		if r[0] == "core area (um2)" {
			cfetArea, ffetArea = r[1], r[2]
		}
	}
	if cfetArea == "" || ffetArea == "" {
		t.Fatal("missing area row")
	}
	if !(ffetArea < cfetArea) { // numeric strings, same width class
		t.Logf("areas: cfet=%s ffet=%s", cfetArea, ffetArea)
	}
}

func TestRunMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run in -short mode")
	}
	s := quickSuite(t)
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.70)
	cfg.BackPinFraction = 0.5
	r1, err := s.Run(tech.FFET, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(tech.FFET, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical configs must return the memoized result (same *FlowResult pointer)")
	}
	// A different point must miss the memo and produce a fresh result.
	cfg.Seed++
	r3, err := s.Run(tech.FFET, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different configs must not share a memo entry")
	}
}

// TestParallelSweepMatchesSerial locks the parallel-sweep contract: the
// bounded goroutine pool must be purely a wall-clock optimization. Two
// fresh suites — one forced serial, one at full parallelism — run the
// same multi-point sweep (Fig. 10's utilization sweep, the cheapest
// table with several flow-backed points) and the rendered table text and
// CSV must be byte-identical.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow sweep in -short mode")
	}
	render := func(maxParallel int) (string, string) {
		s := quickSuite(t)
		s.MaxParallel = maxParallel
		tab, err := s.Fig10()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tab.Print(&buf)
		return buf.String(), tab.CSV()
	}
	serialTxt, serialCSV := render(1)
	parTxt, parCSV := render(0)
	if serialTxt != parTxt {
		t.Errorf("parallel sweep table text diverges from serial:\n--- serial\n%s--- parallel\n%s",
			serialTxt, parTxt)
	}
	if serialCSV != parCSV {
		t.Errorf("parallel sweep CSV diverges from serial")
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{
		Header: []string{"plain", "with,comma"},
		Rows: [][]string{
			{`say "hi"`, "line\nbreak"},
			{"ok", "also ok"},
		},
	}
	got := tab.CSV()
	want := "plain,\"with,comma\"\n\"say \"\"hi\"\"\",\"line\nbreak\"\nok,also ok\n"
	if got != want {
		t.Errorf("CSV() = %q, want %q", got, want)
	}
}
