package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sta"
	"repro/internal/tech"
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(Quick)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFig04TableShape(t *testing.T) {
	s := quickSuite(t)
	tab := s.Fig04()
	if len(tab.Rows) != 28 {
		t.Fatalf("rows = %d, want 28 cells", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	if !strings.Contains(buf.String(), "DFFD1") {
		t.Error("printed table missing DFFD1")
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "cell,FFET um2,CFET um2,gain %") {
		t.Errorf("csv header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

func TestTable1Shape(t *testing.T) {
	s := quickSuite(t)
	tab := s.Table1()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 KPIs", len(tab.Rows))
	}
	// Leakage row must be all-zero diffs.
	for _, r := range tab.Rows {
		if r[0] == "Leakage power" {
			for _, c := range r[1:] {
				if c != "+0.0%" {
					t.Errorf("leakage diff = %s, want +0.0%%", c)
				}
			}
		}
	}
}

func TestTable2HasBothStacks(t *testing.T) {
	s := quickSuite(t)
	tab := s.Table2()
	found := map[string]bool{}
	for _, r := range tab.Rows {
		found[r[0]] = true
	}
	for _, want := range []string{"Poly", "BPR", "FM12", "BM0", "BM12"} {
		if !found[want] {
			t.Errorf("table2 missing layer %s", want)
		}
	}
}

// TestFig08bSingleRun exercises one full-flow experiment end to end (the
// cheapest flow-backed figure).
func TestFig08bSingleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run in -short mode")
	}
	s := quickSuite(t)
	tab, err := s.Fig08b()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Die dimensions must favor FFET (smaller cells).
	var cfetArea, ffetArea string
	for _, r := range tab.Rows {
		if r[0] == "core area (um2)" {
			cfetArea, ffetArea = r[1], r[2]
		}
	}
	if cfetArea == "" || ffetArea == "" {
		t.Fatal("missing area row")
	}
	if !(ffetArea < cfetArea) { // numeric strings, same width class
		t.Logf("areas: cfet=%s ffet=%s", cfetArea, ffetArea)
	}
}

func TestRunMemoization(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run in -short mode")
	}
	s := quickSuite(t)
	cfg := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.70)
	cfg.BackPinFraction = 0.5
	r1, err := s.Run(tech.FFET, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(tech.FFET, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical configs must return the memoized result (same *FlowResult pointer)")
	}
	// A different point must miss the memo and produce a fresh result.
	cfg.Seed++
	r3, err := s.Run(tech.FFET, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different configs must not share a memo entry")
	}
}

// TestParallelSweepMatchesSerial locks the parallel-sweep contract: the
// bounded goroutine pool must be purely a wall-clock optimization. Two
// fresh suites — one forced serial, one at full parallelism — run the
// same multi-point sweep (Fig. 10's utilization sweep, the cheapest
// table with several flow-backed points) and the rendered table text and
// CSV must be byte-identical.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow sweep in -short mode")
	}
	render := func(maxParallel int) (string, string) {
		s := quickSuite(t)
		s.MaxParallel = maxParallel
		tab, err := s.Fig10()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tab.Print(&buf)
		return buf.String(), tab.CSV()
	}
	serialTxt, serialCSV := render(1)
	parTxt, parCSV := render(0)
	if serialTxt != parTxt {
		t.Errorf("parallel sweep table text diverges from serial:\n--- serial\n%s--- parallel\n%s",
			serialTxt, parTxt)
	}
	if serialCSV != parCSV {
		t.Errorf("parallel sweep CSV diverges from serial")
	}
}

// sweepTable renders a Fig11-style table over a mixed
// utilization × back-pin-fraction × arch sweep — points sharing a synth
// prefix, points sharing a placed-and-clocked prefix, and a lone CFET
// point — exercising every level of the fork tree, including the
// incremental re-timing paths: back-pin deltas (dirty cones), a
// validity-threshold delta whose re-route extracts bit-identically (empty
// dirty set), and an STA-option delta (inherited engine must fall back to
// a full pass under the new options).
func sweepTable(t *testing.T, s *Suite) *Table {
	t.Helper()
	var specs []runSpec
	for _, util := range []float64{0.70, 0.72} {
		for _, bp := range []float64{0.5, 0.16} {
			cfg := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, util)
			cfg.BackPinFraction = bp
			specs = append(specs, runSpec{tech.FFET, cfg})
		}
	}
	drvs := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	drvs.BackPinFraction = 0.5
	drvs.MaxDRVs = 500
	specs = append(specs, runSpec{tech.FFET, drvs})
	staPt := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	staPt.BackPinFraction = 0.5
	staPt.STA = sta.DefaultOptions()
	staPt.STA.InputSlewPs = 18
	specs = append(specs, runSpec{tech.FFET, staPt})
	specs = append(specs, runSpec{tech.CFET, core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, 0.70)})
	// Repeat the first point: memo dedup must hand back the same result.
	specs = append(specs, specs[0])
	rs, err := s.runAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	tab := &Table{
		ID:     "forktest",
		Title:  "fork-identity sweep",
		Header: []string{"arch", "util %", "bp", "freq GHz", "power mW", "hpwl um", "wl F um", "wl B um", "drv", "valid"},
	}
	for i, r := range rs {
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%v", specs[i].arch),
			f1(r.Config.Utilization * 100),
			f2(r.Config.BackPinFraction),
			f3s(r.AchievedFreqGHz), f3s(r.PowerUW / 1000),
			f1(r.HPWLUm), f1(r.WirelenFrontUm), f1(r.WirelenBackUm),
			fmt.Sprintf("%d", r.DRVs()),
			fmt.Sprintf("%v", r.Valid),
		})
	}
	return tab
}

// TestForkedSweepMatchesScratch locks the fork-reuse contract at the
// experiment level: a sweep fanned out as forked staged sessions
// (shared synthesis root, shared placed-and-clocked prefixes) must
// render byte-identical tables to a suite that runs every point from
// scratch.
func TestForkedSweepMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow sweep in -short mode")
	}
	render := func(disableSharing bool) (string, string) {
		s := quickSuite(t)
		s.DisablePrefixSharing = disableSharing
		tab := sweepTable(t, s)
		var buf bytes.Buffer
		tab.Print(&buf)
		return buf.String(), tab.CSV()
	}
	scratchTxt, scratchCSV := render(true)
	forkedTxt, forkedCSV := render(false)
	if scratchTxt != forkedTxt {
		t.Errorf("forked sweep table diverges from scratch:\n--- scratch\n%s--- forked\n%s",
			scratchTxt, forkedTxt)
	}
	if scratchCSV != forkedCSV {
		t.Errorf("forked sweep CSV diverges from scratch")
	}
}

// TestDiffChainSweep locks the frequency-axis chaining contract: a dense
// same-prefix target sweep routes its later group leaders through the
// synth-diff fork (the Stats counters prove it) while producing results
// identical to an unshared scratch suite at full float precision.
func TestDiffChainSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow sweep in -short mode")
	}
	specsFor := func() []runSpec {
		var specs []runSpec
		for _, tgt := range []float64{2.0, 2.005, 2.01} {
			cfg := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, tgt, 0.70)
			cfg.BackPinFraction = 0.5
			specs = append(specs, runSpec{tech.FFET, cfg})
		}
		return specs
	}
	render := func(disableSharing bool) (string, CacheStats) {
		s := quickSuite(t)
		s.DisablePrefixSharing = disableSharing
		rs, err := s.runAll(specsFor())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range rs {
			fmt.Fprintf(&b, "%.17g %.17g %.17g %.17g %.17g %d %v\n",
				r.AchievedFreqGHz, r.PowerUW, r.HPWLUm,
				r.WirelenFrontUm, r.WirelenBackUm, r.DRVs(), r.Valid)
		}
		return b.String(), s.Stats()
	}
	scratchTxt, scratchStats := render(true)
	chainTxt, chainStats := render(false)
	if scratchTxt != chainTxt {
		t.Errorf("diff-chained sweep diverges from scratch:\n--- scratch\n%s--- chained\n%s",
			scratchTxt, chainTxt)
	}
	if scratchStats.DiffForks != 0 || scratchStats.DiffFallbacks != 0 {
		t.Errorf("scratch suite must not chain: %+v", scratchStats)
	}
	if chainStats.FullSynthForks != 1 {
		t.Errorf("chain must synthesize exactly one root leader from scratch, got %+v", chainStats)
	}
	if got := chainStats.DiffForks + chainStats.DiffFallbacks; got != 2 {
		t.Errorf("chain must attempt 2 diff hops, got %d (%+v)", got, chainStats)
	}
	if chainStats.DiffForks == 0 {
		t.Errorf("no hop stayed on the diff path: %+v", chainStats)
	}
}

// TestDiffChainGapSplit pins the chain partitioning: targets further apart
// than DiffChainMaxRelGap must not be serialized into one chain — each
// cluster becomes its own full-synth leader and no diff hop is attempted
// across the gap.
func TestDiffChainGapSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow sweep in -short mode")
	}
	s := quickSuite(t)
	var specs []runSpec
	for _, tgt := range []float64{1.0, 2.0} { // 100% apart >> 12% gap cap
		cfg := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, tgt, 0.70)
		cfg.BackPinFraction = 0.5
		specs = append(specs, runSpec{tech.FFET, cfg})
	}
	if _, err := s.runAll(specs); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FullSynthForks != 2 || st.DiffForks != 0 || st.DiffFallbacks != 0 {
		t.Errorf("far-apart targets must split into independent chains: %+v", st)
	}
}

// TestInvalidPointDoesNotPoisonClass guards the synth-root cache keying:
// a structurally invalid sweep point must fail its own runAll call but
// must not leave a cached error on its {arch, target, synth} class — a
// later sweep of valid configs in the same class has to succeed.
func TestInvalidPointDoesNotPoisonClass(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run in -short mode")
	}
	s := quickSuite(t)
	bad := core.DefaultFlowConfig(tech.Pattern{Front: 12}, 1.5, 0.70)
	bad.BackPinFraction = 0.5 // backside pins without backside layers
	if _, err := s.runAll([]runSpec{{tech.FFET, bad}}); err == nil {
		t.Fatal("invalid point must fail its sweep")
	}
	good := core.DefaultFlowConfig(tech.Pattern{Front: 12, Back: 12}, 1.5, 0.70)
	good.BackPinFraction = 0.5
	rs, err := s.runAll([]runSpec{{tech.FFET, good}})
	if err != nil {
		t.Fatalf("valid sweep in the same synth class failed after an invalid point: %v", err)
	}
	if len(rs) != 1 || rs[0] == nil || rs[0].AchievedFreqGHz <= 0 {
		t.Fatal("valid sweep returned no usable result")
	}
}

// TestRunKeyPrecision guards the memo key against the float collision
// the old fmt.Sprintf("%.3f") key had: two configs 1e-4 apart in
// utilization must occupy distinct memo entries.
func TestRunKeyPrecision(t *testing.T) {
	a := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.7000)
	b := core.DefaultFlowConfig(tech.Pattern{Front: 6, Back: 6}, 1.5, 0.7001)
	if MemoKey(tech.FFET, a) == MemoKey(tech.FFET, b) {
		t.Error("distinct utilizations collide on one memo key")
	}
	if MemoKey(tech.FFET, a) != MemoKey(tech.FFET, a) {
		t.Error("identical configs produce different keys")
	}
	if MemoKey(tech.FFET, a) == MemoKey(tech.CFET, a) {
		t.Error("arch not part of the key")
	}
	// Stage options and MaxDRVs change results, so they must be keyed.
	c := a
	c.CTS.MaxLeafFanout = 12
	if MemoKey(tech.FFET, a) == MemoKey(tech.FFET, c) {
		t.Error("CTS options not part of the key")
	}
	d := a
	d.MaxDRVs = 1
	if MemoKey(tech.FFET, a) == MemoKey(tech.FFET, d) {
		t.Error("MaxDRVs not part of the key")
	}
	// The cosmetic Name must not split memo entries.
	e := a
	e.Name = "renamed"
	if MemoKey(tech.FFET, a) != MemoKey(tech.FFET, e) {
		t.Error("Name must be excluded from the key")
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{
		Header: []string{"plain", "with,comma"},
		Rows: [][]string{
			{`say "hi"`, "line\nbreak"},
			{"ok", "also ok"},
		},
	}
	got := tab.CSV()
	want := "plain,\"with,comma\"\n\"say \"\"hi\"\"\",\"line\nbreak\"\nok,also ok\n"
	if got != want {
		t.Errorf("CSV() = %q, want %q", got, want)
	}
}

// TestVariationMCTable exercises the Monte Carlo overlay experiment end
// to end at quick scale: one leader flow, one back-pins-off fork, two
// studies. Both variants must produce a non-degenerate distribution.
func TestVariationMCTable(t *testing.T) {
	if testing.Short() {
		t.Skip("flow run in -short mode")
	}
	s := quickSuite(t)
	tab, err := s.VariationMC()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[2] == "0.00" {
			t.Errorf("variant %s: degenerate distribution (sigma %s)", r[0], r[2])
		}
	}
}
