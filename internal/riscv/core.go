package riscv

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Config controls core generation.
type Config struct {
	Name string
	// Registers is the architectural register count (32 for RV32I; 16 or 8
	// produce smaller cores for fast unit tests — the ISS masks register
	// indices the same way).
	Registers int
}

// DefaultConfig is the full RV32I evaluation core.
func DefaultConfig() Config { return Config{Name: "rv32_core", Registers: 32} }

// CoreInfo records generated structure needed by the co-simulation
// harness and tests: flip-flop instance names for architectural state.
type CoreInfo struct {
	Config Config
	// RegFlop[r][b] is the instance name of register r bit b.
	RegFlop [][]string
	// PCFlop[b] is the instance name of PC bit b (b >= 2; PC[1:0] = 0).
	PCFlop map[int]string
}

// regBits returns the register-address width for the configured count.
func (c Config) regBits() int {
	switch c.Registers {
	case 32:
		return 5
	case 16:
		return 4
	case 8:
		return 3
	default:
		panic(fmt.Sprintf("riscv: unsupported register count %d", c.Registers))
	}
}

// Generate builds the gate-level RV32I-subset core over lib.
//
// Interface (all scalar ports, little-endian bit suffixes):
//
//	in:  clk, rst_n, imem_rdata_0..31, dmem_rdata_0..31
//	out: imem_addr_0..31, dmem_addr_0..31, dmem_wdata_0..31,
//	     dmem_we, dmem_be_0..3
//
// The core is a single-cycle microarchitecture: fetch, decode, execute,
// memory and writeback settle combinationally within one clock.
func Generate(lib *cell.Library, cfg Config) (*netlist.Netlist, *CoreInfo, error) {
	if cfg.Name == "" {
		cfg.Name = "rv32_core"
	}
	nl := netlist.New(cfg.Name, lib)
	info := &CoreInfo{Config: cfg, PCFlop: make(map[int]string)}

	nl.AddPort("clk", netlist.In)
	nl.AddPort("rst_n", netlist.In)
	nl.MarkClock("clk")
	instr := make(bus, 32)
	rdata := make(bus, 32)
	for i := 0; i < 32; i++ {
		instr[i] = fmt.Sprintf("imem_rdata_%d", i)
		rdata[i] = fmt.Sprintf("dmem_rdata_%d", i)
		nl.AddPort(instr[i], netlist.In)
		nl.AddPort(rdata[i], netlist.In)
		nl.AddPort(fmt.Sprintf("imem_addr_%d", i), netlist.Out)
		nl.AddPort(fmt.Sprintf("dmem_addr_%d", i), netlist.Out)
		nl.AddPort(fmt.Sprintf("dmem_wdata_%d", i), netlist.Out)
	}
	nl.AddPort("dmem_we", netlist.Out)
	for i := 0; i < 4; i++ {
		nl.AddPort(fmt.Sprintf("dmem_be_%d", i), netlist.Out)
	}

	b := newBuilder(nl, lib, "rst_n")

	// --- Program counter ------------------------------------------------
	// PC[1:0] are hardwired zero; PC[31:2] are resettable flops whose D
	// inputs are wired after next-PC is built.
	pc := make(bus, 32)
	pc[0], pc[1] = b.Const0(), b.Const0()
	pcD := make(bus, 32) // next-PC nets, filled later
	type pcFlop struct {
		bit  int
		inst string
	}
	var pcFlops []pcFlop
	for i := 2; i < 32; i++ {
		dNet := b.fresh("pc_d")
		qNet := b.fresh("pc_q")
		instName := fmt.Sprintf("pc_reg_%d", i)
		nl.MustAdd(instName, lib.MustCell("DFFRSD1"), map[string]string{
			"D": dNet, "CP": "clk", "RN": "rst_n", "SN": b.Const1(), "Q": qNet,
		})
		pc[i] = qNet
		pcD[i] = dNet
		pcFlops = append(pcFlops, pcFlop{i, instName})
		info.PCFlop[i] = instName
	}
	// Drive the instruction address port from PC.
	for i := 0; i < 32; i++ {
		b.drivePort(fmt.Sprintf("imem_addr_%d", i), pc[i])
	}

	// --- Decode ----------------------------------------------------------
	opcode := instr[0:7]
	rdA := instr[7 : 7+cfg.regBits()]
	funct3 := instr[12:15]
	rs1A := instr[15 : 15+cfg.regBits()]
	rs2A := instr[20 : 20+cfg.regBits()]
	f7b5 := instr[30]

	isLUI := b.Eq(opcode, 0x37)
	isAUIPC := b.Eq(opcode, 0x17)
	isJAL := b.Eq(opcode, 0x6F)
	isJALR := b.Eq(opcode, 0x67)
	isBranch := b.Eq(opcode, 0x63)
	isLoad := b.Eq(opcode, 0x03)
	isStore := b.Eq(opcode, 0x23)
	isOPIMM := b.Eq(opcode, 0x13)
	isOP := b.Eq(opcode, 0x33)

	// --- Immediate generation ---------------------------------------------
	sign := instr[31]
	immI := make(bus, 32)
	immS := make(bus, 32)
	immB := make(bus, 32)
	immU := make(bus, 32)
	immJ := make(bus, 32)
	for i := 0; i < 32; i++ {
		switch {
		case i < 12:
			immI[i] = instr[20+i]
		default:
			immI[i] = sign
		}
		switch {
		case i < 5:
			immS[i] = instr[7+i]
		case i < 12:
			immS[i] = instr[25+i-5]
		default:
			immS[i] = sign
		}
		switch {
		case i == 0:
			immB[i] = b.Const0()
		case i < 5:
			immB[i] = instr[8+i-1]
		case i < 11:
			immB[i] = instr[25+i-5]
		case i == 11:
			immB[i] = instr[7]
		default:
			immB[i] = sign
		}
		if i < 12 {
			immU[i] = b.Const0()
		} else {
			immU[i] = instr[i]
		}
		switch {
		case i == 0:
			immJ[i] = b.Const0()
		case i < 11:
			immJ[i] = instr[21+i-1]
		case i == 11:
			immJ[i] = instr[20]
		case i < 20:
			immJ[i] = instr[12+i-12]
		default:
			immJ[i] = sign
		}
	}
	isU := b.Or(isLUI, isAUIPC)
	imm := b.MuxBus(immI, immS, isStore)
	imm = b.MuxBus(imm, immB, isBranch)
	imm = b.MuxBus(imm, immJ, isJAL)
	imm = b.MuxBus(imm, immU, isU)

	// --- Register file -----------------------------------------------------
	regs := make([]bus, cfg.Registers)
	regFlopNames := make([][]string, cfg.Registers)
	wb := make(bus, 32) // writeback data, filled later
	for i := range wb {
		wb[i] = b.fresh("wb")
	}
	regWE := b.fresh("reg_we")
	wdec := b.Decode2(rdA)
	for r := 0; r < cfg.Registers; r++ {
		regs[r] = make(bus, 32)
		regFlopNames[r] = make([]string, 32)
		wen := b.And(regWE, wdec[r])
		for bit := 0; bit < 32; bit++ {
			q := b.fresh(fmt.Sprintf("x%d_q", r))
			d := b.Mux(q, wb[bit], wen)
			instName := fmt.Sprintf("rf_x%d_b%d", r, bit)
			nl.MustAdd(instName, lib.MustCell("DFFD1"), map[string]string{
				"D": d, "CP": "clk", "Q": q,
			})
			regs[r][bit] = q
			regFlopNames[r][bit] = instName
		}
	}
	info.RegFlop = regFlopNames
	rs1nz := b.OrReduce(bus(rs1A))
	rs2nz := b.OrReduce(bus(rs2A))
	rs1Data := b.AndBus(b.MuxTree(regs, rs1A), rs1nz)
	rs2Data := b.AndBus(b.MuxTree(regs, rs2A), rs2nz)

	// --- ALU ---------------------------------------------------------------
	useImm := b.Or(b.Or(isOPIMM, isLoad), b.Or(isStore, isJALR))
	aluB := b.MuxBus(rs2Data, imm, useImm)
	f3is010 := b.Eq(funct3, 2)
	f3is011 := b.Eq(funct3, 3)
	f3is000 := b.Eq(funct3, 0)
	isSLTop := b.And(b.Or(isOP, isOPIMM), b.Or(f3is010, f3is011))
	subOP := b.And(b.And(isOP, f7b5), f3is000)
	sub := b.Or(b.Or(subOP, isSLTop), isBranch)
	bx := make(bus, 32)
	for i := range bx {
		bx[i] = b.Xor(aluB[i], sub)
	}
	addRes, cout := b.Adder(rs1Data, bx, sub)

	andRes := make(bus, 32)
	orRes := make(bus, 32)
	xorRes := make(bus, 32)
	for i := 0; i < 32; i++ {
		andRes[i] = b.And(rs1Data[i], aluB[i])
		orRes[i] = b.Or(rs1Data[i], aluB[i])
		xorRes[i] = b.Xor(rs1Data[i], aluB[i])
	}

	// Shared shifter: reverse operand for left shifts, shift right, reverse
	// back. Reversal is pure wiring; direction costs two mux layers.
	isLeft := b.Eq(funct3, 1)
	shIn := make(bus, 32)
	for i := 0; i < 32; i++ {
		shIn[i] = b.Mux(rs1Data[i], rs1Data[31-i], isLeft)
	}
	fill := b.And(b.And(rs1Data[31], f7b5), b.Inv(isLeft))
	cur := shIn
	for k := 0; k < 5; k++ {
		amt := 1 << uint(k)
		next := make(bus, 32)
		for i := 0; i < 32; i++ {
			from := fill
			if i+amt < 32 {
				from = cur[i+amt]
			}
			next[i] = b.Mux(cur[i], from, aluB[k])
		}
		cur = next
	}
	shOut := make(bus, 32)
	for i := 0; i < 32; i++ {
		shOut[i] = b.Mux(cur[i], cur[31-i], isLeft)
	}

	// Set-less-than.
	signsDiffer := b.Xor(rs1Data[31], aluB[31])
	ltS := b.Mux(addRes[31], rs1Data[31], signsDiffer)
	ltU := b.Inv(cout)
	sltRes := make(bus, 32)
	sltRes[0] = b.Mux(ltS, ltU, funct3[0])
	for i := 1; i < 32; i++ {
		sltRes[i] = b.Const0()
	}

	aluOut := b.MuxTree([]bus{
		addRes, shOut, sltRes, sltRes, xorRes, shOut, orRes, andRes,
	}, funct3)

	// --- Branch resolution ---------------------------------------------------
	eq := b.NorReduceIsZero(b.XorBus(rs1Data, rs2Data))
	takeSel := []bus{
		{eq}, {b.Inv(eq)}, {eq}, {eq},
		{ltS}, {b.Inv(ltS)}, {ltU}, {b.Inv(ltU)},
	}
	take := b.MuxTree(takeSel, funct3)[0]
	doBranch := b.And(isBranch, take)

	// --- Next PC --------------------------------------------------------------
	pc4 := make(bus, 32)
	pc4[0], pc4[1] = b.Const0(), b.Const0()
	inc := b.Incr(pc[2:32])
	copy(pc4[2:], inc)
	tgt, _ := b.Adder(pc, imm, b.Const0())
	jump := b.Or(doBranch, isJAL)
	nextPC := b.MuxBus(pc4, tgt, jump)
	jalrTgt := make(bus, 32)
	copy(jalrTgt, addRes)
	jalrTgt[0] = b.Const0()
	nextPC = b.MuxBus(nextPC, jalrTgt, isJALR)
	for i := 2; i < 32; i++ {
		// Bind the pre-created PC D nets.
		b.inst("BUF", map[string]string{"I": nextPC[i], "Z": pcD[i]})
	}

	// --- Data memory interface --------------------------------------------------
	for i := 0; i < 32; i++ {
		b.drivePort(fmt.Sprintf("dmem_addr_%d", i), addRes[i])
	}
	// Store aligner: rotate rs2 left by 8*addr[1:0]; byte enables mask.
	rot16 := make(bus, 32)
	for i := 0; i < 32; i++ {
		rot16[i] = b.Mux(rs2Data[i], rs2Data[(i+16)%32], addRes[1])
	}
	rot8 := make(bus, 32)
	for i := 0; i < 32; i++ {
		rot8[i] = b.Mux(rot16[i], rot16[(i+24)%32], addRes[0])
	}
	for i := 0; i < 32; i++ {
		b.drivePort(fmt.Sprintf("dmem_wdata_%d", i), rot8[i])
	}
	b.drivePort("dmem_we", isStore)
	// Byte enables: SB -> one-hot(addr[1:0]); SH -> pair; SW -> all.
	a0, a1 := addRes[0], addRes[1]
	isByteSz := b.Eq(funct3[0:2], 0)
	isHalfSz := b.Eq(funct3[0:2], 1)
	isWordSz := b.Eq(funct3[0:2], 2)
	na0, na1 := b.Inv(a0), b.Inv(a1)
	beLane := []string{
		b.And(na1, na0), b.And(na1, a0), b.And(a1, na0), b.And(a1, a0),
	}
	halfLo, halfHi := na1, a1
	beHalf := []string{halfLo, halfLo, halfHi, halfHi}
	for i := 0; i < 4; i++ {
		be := b.And(isByteSz, beLane[i])
		be = b.Or(be, b.And(isHalfSz, beHalf[i]))
		be = b.Or(be, isWordSz)
		b.drivePort(fmt.Sprintf("dmem_be_%d", i), be)
	}

	// Load aligner: rotate read data right by 8*addr[1:0], then extend.
	lrot16 := make(bus, 32)
	for i := 0; i < 32; i++ {
		lrot16[i] = b.Mux(rdata[i], rdata[(i+16)%32], a1)
	}
	lrot8 := make(bus, 32)
	for i := 0; i < 32; i++ {
		lrot8[i] = b.Mux(lrot16[i], lrot16[(i+8)%32], a0)
	}
	unsignedLoad := funct3[2]
	byteSign := b.And(lrot8[7], b.Inv(unsignedLoad))
	halfSign := b.And(lrot8[15], b.Inv(unsignedLoad))
	loadRes := make(bus, 32)
	for i := 0; i < 32; i++ {
		switch {
		case i < 8:
			loadRes[i] = lrot8[i]
		case i < 16:
			loadRes[i] = b.Mux(lrot8[i], byteSign, isByteSz)
		default:
			ext := b.Mux(halfSign, byteSign, isByteSz)
			loadRes[i] = b.Mux(lrot8[i], ext, b.Inv(isWordSz))
		}
	}

	// --- Writeback ---------------------------------------------------------------
	isLink := b.Or(isJAL, isJALR)
	wbData := b.MuxBus(aluOut, loadRes, isLoad)
	wbData = b.MuxBus(wbData, pc4, isLink)
	wbData = b.MuxBus(wbData, imm, isLUI)
	wbData = b.MuxBus(wbData, tgt, isAUIPC)
	for i := 0; i < 32; i++ {
		b.inst("BUF", map[string]string{"I": wbData[i], "Z": wb[i]})
	}
	we := b.Or(b.Or(b.Or(isLUI, isAUIPC), isLink), b.Or(b.Or(isLoad, isOP), isOPIMM))
	b.inst("BUF", map[string]string{"I": we, "Z": regWE})

	_ = pcFlops // names captured in info.PCFlop
	if err := nl.Validate(); err != nil {
		return nil, nil, fmt.Errorf("riscv: generated netlist invalid: %w", err)
	}
	return nl, info, nil
}

// drivePort buffers a net onto a top-level output port net.
func (b *builder) drivePort(port, from string) {
	b.inst("BUF", map[string]string{"I": from, "Z": port})
}
